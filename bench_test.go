// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation as testing.B targets:
//
//	go test -bench=. -benchmem
//
// Throughput benches report MB/s and CPU utilization as custom metrics;
// latency benches report microseconds per round trip. The cmd/qpipbench
// tool prints the same results as paper-style tables, and EXPERIMENTS.md
// records measured-vs-paper numbers for a full run.
package repro

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// metric sanitizes a label into a ReportMetric unit (no whitespace).
func metric(parts ...string) string {
	s := strings.Join(parts, "_")
	s = strings.NewReplacer(" ", "_", "(", "", ")", "", "/", "-").Replace(s)
	return s
}

// BenchmarkFigure3RTT measures the 1-byte round trip for every stack
// (Figure 3). One b.N unit = one full Figure 3 sweep at 30 iterations.
func BenchmarkFigure3RTT(b *testing.B) {
	var rows []bench.RTTRow
	for i := 0; i < b.N; i++ {
		rows = bench.Figure3(30)
	}
	for _, r := range rows {
		b.ReportMetric(r.UDPus, metric(r.Stack, "UDP_us"))
		b.ReportMetric(r.TCPus, metric(r.Stack, "TCP_us"))
	}
}

// BenchmarkFigure4Throughput runs the ttcp matrix (Figure 4) with a 4 MB
// transfer per configuration.
func BenchmarkFigure4Throughput(b *testing.B) {
	var rows []bench.TtcpRow
	for i := 0; i < b.N; i++ {
		rows = bench.Figure4(4 << 20)
	}
	for _, r := range rows {
		b.ReportMetric(r.MBps, metric(r.Stack, "MBps"))
		b.ReportMetric(r.HostCPU*100, metric(r.Stack, "hostCPU_pct"))
	}
}

// BenchmarkTable1HostOverhead measures the host send+receive overhead for
// a 1-byte TCP message (Table 1).
func BenchmarkTable1HostOverhead(b *testing.B) {
	var rows []bench.OverheadRow
	for i := 0; i < b.N; i++ {
		rows = bench.Table1(30)
	}
	for _, r := range rows {
		b.ReportMetric(r.Micros, metric(r.Stack, "us_per_msg"))
	}
}

// BenchmarkTable2TransmitOccupancy measures NIC transmit-side per-stage
// costs (Table 2).
func BenchmarkTable2TransmitOccupancy(b *testing.B) {
	var rows []bench.StageRow
	for i := 0; i < b.N; i++ {
		rows = bench.Table2(30)
	}
	for _, r := range rows {
		if r.DataUS > 0 {
			b.ReportMetric(r.DataUS, metric("tx", r.Stage, "us"))
		}
	}
}

// BenchmarkTable3ReceiveOccupancy measures NIC receive-side per-stage
// costs (Table 3).
func BenchmarkTable3ReceiveOccupancy(b *testing.B) {
	var rows []bench.StageRow
	for i := 0; i < b.N; i++ {
		rows = bench.Table3(30)
	}
	for _, r := range rows {
		if r.DataUS > 0 {
			b.ReportMetric(r.DataUS, metric("rx", r.Stage, "us"))
		}
	}
}

// BenchmarkFigure7NBD runs the NBD storage benchmark (Figure 7) at a
// 32 MB working set per stack (use cmd/qpipbench -full for the paper's
// 409 MB).
func BenchmarkFigure7NBD(b *testing.B) {
	var rows []bench.NBDRow
	for i := 0; i < b.N; i++ {
		rows = bench.Figure7(32 << 20)
	}
	for _, r := range rows {
		b.ReportMetric(r.ReadMBps, metric(r.Stack, "read_MBps"))
		b.ReportMetric(r.WriteMBps, metric(r.Stack, "write_MBps"))
		b.ReportMetric(r.ReadEff, metric(r.Stack, "read_MB_per_CPUs"))
	}
}

// BenchmarkAblationChecksum isolates receive checksum placement.
func BenchmarkAblationChecksum(b *testing.B) {
	var row bench.AblationRow
	for i := 0; i < b.N; i++ {
		row = bench.AblationChecksum(2 << 20)
	}
	b.ReportMetric(row.Baseline.MBps, "hw_csum_MBps")
	b.ReportMetric(row.Variant.MBps, "fw_csum_MBps")
}

// BenchmarkAblationPipelinedTX isolates transmit FSM / send engine overlap.
func BenchmarkAblationPipelinedTX(b *testing.B) {
	var row bench.AblationRow
	for i := 0; i < b.N; i++ {
		row = bench.AblationPipelinedTX(2 << 20)
	}
	b.ReportMetric(row.Baseline.MBps, "serialized_MBps")
	b.ReportMetric(row.Variant.MBps, "pipelined_MBps")
}

// BenchmarkAblationDelAck isolates the firmware ack policy.
func BenchmarkAblationDelAck(b *testing.B) {
	var row bench.AblationRow
	for i := 0; i < b.N; i++ {
		row = bench.AblationDelAck(2 << 20)
	}
	b.ReportMetric(row.Baseline.MBps, "delack_MBps")
	b.ReportMetric(row.Variant.MBps, "ack_every_seg_MBps")
}

// BenchmarkAblationMTU sweeps the QPIP MTU.
func BenchmarkAblationMTU(b *testing.B) {
	var rows []bench.TtcpRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationMTU(2 << 20)
	}
	for _, r := range rows {
		b.ReportMetric(r.MBps, "MBps_at_MTU")
	}
}
