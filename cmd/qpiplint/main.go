// Command qpiplint is the repo's domain multichecker: the static
// analyzers that prove the simulator's determinism and datapath
// invariants over the whole tree on every `make check` (DESIGN §12, §17).
//
// Per-package analyzers (each package checked in isolation):
//
//	simclock     no wall-clock reads in simulated packages
//	nogoroutine  no raw goroutines or sync primitives in simulated packages
//	maporder     no order-sensitive range-over-map loops
//	bufref       pooled packet/segment/frame lifecycles balance per path
//	hotalloc     //qpip:hotpath functions stay allocation-free
//
// Whole-program analyzers (cross-package call graph, DESIGN §17):
//
//	hotprop      //qpip:hotpath propagates through calls: reachable
//	             callees are allocation-checked, diagnostics carry the
//	             hot call chain from the annotated root
//	bufown       pooled buffer ownership balances across functions via
//	             per-function consume/own summaries
//	shardsafe    //qpip:barrier confinement, shard-runner call
//	             discipline, no scheduling on foreign engines
//
// Usage:
//
//	qpiplint [-run name,name] [-baseline file] [packages...]   # default ./...
//	qpiplint -write-baseline file [packages...]
//	go vet -vettool=$(command -v qpiplint) ./...
//
// The vettool form speaks the go command's unit-checking protocol and
// gets per-package caching, but a package unit has no whole-program
// view, so only the per-package analyzers run there; the first form is
// what `make check` uses and runs everything.
//
// -write-baseline serializes current findings (analyzer, file, message —
// no line numbers, so pure movement doesn't churn) to a JSON file;
// -baseline suppresses findings present in such a file, making `make
// check` fail only on NEW findings while the recorded debt is paid down.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// are suppressed line-by-line with
//
//	//lint:qpip-allow <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is mandatory, and
// for hotprop an allow on a call site severs that propagation edge.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/bufown"
	"repro/internal/analysis/bufref"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/hotprop"
	"repro/internal/analysis/interproc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nogoroutine"
	"repro/internal/analysis/shardsafe"
	"repro/internal/analysis/simclock"
)

var all = []*framework.Analyzer{
	simclock.Analyzer,
	nogoroutine.Analyzer,
	maporder.Analyzer,
	bufref.Analyzer,
	hotalloc.Analyzer,
}

var program = []*interproc.Analyzer{
	hotprop.Analyzer,
	bufown.Analyzer,
	shardsafe.Analyzer,
}

func main() {
	// go vet's vettool handshake: version for the build cache key, flag
	// inventory, then one .cfg file per package unit.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			fmt.Println("qpiplint version qpip-2")
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			unitCheck(os.Args[1])
			return
		}
	}

	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	baseline := flag.String("baseline", "", "suppress findings recorded in this JSON baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this JSON baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qpiplint [-run name,name] [-baseline file | -write-baseline file] [packages...]\n\nper-package analyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nwhole-program analyzers:\n")
		for _, a := range program {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	unitAs, progAs, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}

	pkgs, err := load.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}

	var findings []framework.Finding
	for _, pkg := range pkgs {
		fs, err := framework.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, unitAs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpiplint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}

	// The loader shares one FileSet across packages, so the whole tree
	// assembles into a single Program for the interprocedural analyzers.
	if len(progAs) > 0 && len(pkgs) > 0 {
		units := make([]*interproc.Unit, 0, len(pkgs))
		for _, pkg := range pkgs {
			units = append(units, &interproc.Unit{
				Path: pkg.Path, Files: pkg.Files, Types: pkg.Types, Info: pkg.Info,
			})
		}
		prog := interproc.NewProgram(pkgs[0].Fset, units)
		fs, err := interproc.Run(prog, progAs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpiplint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, findings); err != nil {
			fmt.Fprintln(os.Stderr, "qpiplint:", err)
			os.Exit(2)
		}
		fmt.Printf("qpiplint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baseline != "" {
		known, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpiplint:", err)
			os.Exit(2)
		}
		findings = filterBaseline(findings, known)
	}

	exit := 0
	for _, f := range findings {
		fmt.Println(f)
		exit = 1
	}
	os.Exit(exit)
}

func selectAnalyzers(names string) ([]*framework.Analyzer, []*interproc.Analyzer, error) {
	if names == "" {
		return all, program, nil
	}
	unitBy := map[string]*framework.Analyzer{}
	for _, a := range all {
		unitBy[a.Name] = a
	}
	progBy := map[string]*interproc.Analyzer{}
	for _, a := range program {
		progBy[a.Name] = a
	}
	var units []*framework.Analyzer
	var progs []*interproc.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		switch {
		case unitBy[n] != nil:
			units = append(units, unitBy[n])
		case progBy[n] != nil:
			progs = append(progs, progBy[n])
		default:
			return nil, nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return units, progs, nil
}

// baselineEntry identifies one accepted finding. Line numbers are
// deliberately absent: moving code around must not churn the baseline,
// only genuinely new findings should.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func (e baselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// relFile normalizes a finding's filename to a cwd-relative slash path
// so baselines are stable across checkouts.
func relFile(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(name)
}

func saveBaseline(path string, findings []framework.Finding) error {
	entries := make([]baselineEntry, 0, len(findings))
	for _, f := range findings {
		entries = append(entries, baselineEntry{
			Analyzer: f.Analyzer, File: relFile(f.Pos.Filename), Message: f.Message,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key() < entries[j].key() })
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	known := make(map[string]bool, len(entries))
	for _, e := range entries {
		known[e.key()] = true
	}
	return known, nil
}

func filterBaseline(findings []framework.Finding, known map[string]bool) []framework.Finding {
	var out []framework.Finding
	for _, f := range findings {
		e := baselineEntry{Analyzer: f.Analyzer, File: relFile(f.Pos.Filename), Message: f.Message}
		if !known[e.key()] {
			out = append(out, f)
		}
	}
	return out
}

// vetConfig is the JSON the go command hands a vettool for one package
// (the same schema x/tools' unitchecker reads).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one package unit under `go vet -vettool=qpiplint`.
// Whole-program analyzers don't run here: a vet unit sees one package
// against export data, never the full source program.
func unitCheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qpiplint: parsing %s: %v\n", cfgFile, err)
		os.Exit(2)
	}

	// The go command requires the facts output file to exist afterwards;
	// qpiplint keeps no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "qpiplint:", err)
			os.Exit(2)
		}
	}
	if cfg.VetxOnly {
		return
	}

	// Imports resolve through the export files the go command already
	// compiled, after mapping through ImportMap (vendoring, test variants).
	exportFor := load.ExportLookup(cfg.PackageFile)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return exportFor(path)
	})
	pkg, err := load.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}
	findings, err := framework.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, all)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(2)
	}
}
