// Command qpiplint is the repo's domain multichecker: five static
// analyzers that prove the simulator's determinism and datapath
// invariants over the whole tree on every `make check` (DESIGN §12).
//
//	simclock     no wall-clock reads in simulated packages
//	nogoroutine  no raw goroutines or sync primitives in simulated packages
//	maporder     no order-sensitive range-over-map loops
//	bufref       pooled packet/segment/frame lifecycles balance
//	hotalloc     //qpip:hotpath functions stay allocation-free
//
// Usage:
//
//	qpiplint [-run name,name] [packages...]     # default ./...
//	go vet -vettool=$(command -v qpiplint) ./...
//
// The second form speaks the go command's vettool protocol (-V=full,
// -flags, and the JSON .cfg unit-checking mode), so qpiplint slots into
// `go vet` with per-package caching. Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
//
// Findings are suppressed line-by-line with
//
//	//lint:qpip-allow <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis/bufref"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nogoroutine"
	"repro/internal/analysis/simclock"
)

var all = []*framework.Analyzer{
	simclock.Analyzer,
	nogoroutine.Analyzer,
	maporder.Analyzer,
	bufref.Analyzer,
	hotalloc.Analyzer,
}

func main() {
	// go vet's vettool handshake: version for the build cache key, flag
	// inventory, then one .cfg file per package unit.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			fmt.Println("qpiplint version qpip-1")
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			unitCheck(os.Args[1])
			return
		}
	}

	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qpiplint [-run name,name] [packages...]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}

	pkgs, err := load.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		findings, err := framework.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpiplint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			exit = 1
		}
	}
	os.Exit(exit)
}

func selectAnalyzers(names string) ([]*framework.Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := map[string]*framework.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*framework.Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig is the JSON the go command hands a vettool for one package
// (the same schema x/tools' unitchecker reads).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one package unit under `go vet -vettool=qpiplint`.
func unitCheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qpiplint: parsing %s: %v\n", cfgFile, err)
		os.Exit(2)
	}

	// The go command requires the facts output file to exist afterwards;
	// qpiplint keeps no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "qpiplint:", err)
			os.Exit(2)
		}
	}
	if cfg.VetxOnly {
		return
	}

	// Imports resolve through the export files the go command already
	// compiled, after mapping through ImportMap (vendoring, test variants).
	exportFor := load.ExportLookup(cfg.PackageFile)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return exportFor(path)
	})
	pkg, err := load.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}
	findings, err := framework.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, all)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpiplint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(2)
	}
}
