// Command qpipbench regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	qpipbench [-exp all|fig3|fig4|table1|table2|table3|fig7|chaos|ablations]
//	          [-bytes N] [-nbd-bytes N] [-iters N] [-full]
//
// -full runs the paper's exact workload sizes (10 MB ttcp, 409 MB NBD);
// the default sizes are reduced for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig3, fig4, table1, table2, table3, fig7, chaos, ablations")
	bytes := flag.Int("bytes", 4<<20, "ttcp transfer size in bytes")
	nbdBytes := flag.Int("nbd-bytes", 64<<20, "NBD benchmark size in bytes")
	iters := flag.Int("iters", 50, "ping-pong iterations for latency experiments")
	full := flag.Bool("full", false, "use the paper's workload sizes (10 MB ttcp, 409 MB NBD)")
	flag.Parse()

	if *full {
		*bytes = 10 << 20
		*nbdBytes = 409 << 20
	}

	run := func(name string, fn func()) {
		if *exp == "all" || *exp == name {
			fn()
			fmt.Println()
		}
	}

	ran := false
	mark := func(fn func()) func() {
		return func() { ran = true; fn() }
	}

	run("fig3", mark(func() { fmt.Print(bench.RenderFigure3(bench.Figure3(*iters))) }))
	run("fig4", mark(func() { fmt.Print(bench.RenderFigure4(bench.Figure4(*bytes))) }))
	run("table1", mark(func() { fmt.Print(bench.RenderTable1(bench.Table1(*iters))) }))
	run("table2", mark(func() { fmt.Print(bench.RenderTable2(bench.Table2(*iters))) }))
	run("table3", mark(func() { fmt.Print(bench.RenderTable3(bench.Table3(*iters))) }))
	run("fig7", mark(func() { fmt.Print(bench.RenderFigure7(bench.Figure7(*nbdBytes))) }))
	run("chaos", mark(func() { fmt.Print(bench.RenderChaos(bench.Chaos(*bytes))) }))
	run("ablations", mark(func() {
		fmt.Print(bench.RenderAblation(bench.AblationChecksum(*bytes)))
		fmt.Println()
		fmt.Print(bench.RenderAblation(bench.AblationPipelinedTX(*bytes)))
		fmt.Println()
		fmt.Print(bench.RenderAblation(bench.AblationDelAck(*bytes)))
		fmt.Println()
		fmt.Print(bench.RenderMTUSweep(bench.AblationMTU(*bytes)))
	}))

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
