// Command qpipbench regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	qpipbench [-exp all|fig3|fig4|table1|table2|table3|fig7|chaos|recovery|ablations|irq|perf|perfguard|perfscale|scaleguard|collective|collguard|connscale|connguard]
//	          [-bytes N] [-nbd-bytes N] [-iters N] [-full]
//	          [-parallel N] [-shards N] [-pairs N]
//	          [-coll-nodes LIST] [-coll-iters N] [-vec-words N]
//	          [-conn-counts LIST] [-conn-msgs N]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	          [-json FILE] [-seed-json FILE] [-perf-repeats N]
//
// -full runs the paper's exact workload sizes (10 MB ttcp, 409 MB NBD);
// the default sizes are reduced for quick runs.
//
// -parallel N runs independent sweep points (each with its own engine and
// cluster) across up to N goroutines; 0 means GOMAXPROCS. Reports are
// byte-identical to a sequential run. -exp perf compares the optimized
// engine against the seed's mechanisms and, with -json, writes the
// machine-readable report (BENCH_PR4.json). -exp irq sweeps the CQ
// interrupt-coalescing delay (latency vs host CPU). -exp perfguard checks
// the batched boundary is no slower than the per-token datapath and exits
// nonzero on regression (CI smoke).
//
// -exp perfscale measures the conservative parallel simulation core
// (internal/sim/par): a many-pair workload run sequentially and sharded up
// to -shards engines, in both isolated and cross-shard placements; with
// -json it writes the machine-readable report (BENCH_PR7.json). -exp
// scaleguard is the CI gate form: it checks sharded runs fire the exact
// sequential event count and meet the wall-clock bound the host's core
// count can express, exiting nonzero on failure.
//
// -exp collective sweeps collective operations (barrier, ring allreduce)
// over switched topologies (-coll-nodes group sizes on ring, mesh and
// fat-tree fabrics), comparing the host-based reference over plain QPs
// against the NIC-offloaded engine; with -json it writes the
// machine-readable report (BENCH_PR8.json). -exp collguard is the CI
// gate: at 8 nodes the offloaded barrier must beat the host-based one in
// simulated latency and host CPU on every topology, else exit nonzero.
//
// -exp connscale sweeps connection density (-conn-counts, default
// 64..8192) across three workloads (N->1 incast, RPC connection churn,
// many-client NBD) and four variants (QPIP with shared receive queues,
// QPIP with private per-QP receive queues, and the two host stacks),
// reporting per-connection memory and host CPU per request; with -json
// it writes the machine-readable report (BENCH_PR9.json). -exp connguard
// is the CI gate: the SRQ variant must at least halve per-connection
// memory at 1024 connections without regressing CPU per request at 64,
// and churn must leave no residual connection state.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig3, fig4, table1, table2, table3, fig7, chaos, recovery, ablations, irq, perf, perfguard, perfscale, scaleguard, collective, collguard, connscale, connguard")
	bytes := flag.Int("bytes", 4<<20, "ttcp transfer size in bytes")
	nbdBytes := flag.Int("nbd-bytes", 64<<20, "NBD benchmark size in bytes")
	iters := flag.Int("iters", 50, "ping-pong iterations for latency experiments")
	full := flag.Bool("full", false, "use the paper's workload sizes (10 MB ttcp, 409 MB NBD)")
	parallel := flag.Int("parallel", 1, "concurrent sweep points (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	jsonPath := flag.String("json", "", "write the -exp perf report as JSON to this file")
	seedJSON := flag.String("seed-json", "", "seed-commit baseline JSON (from scripts/bench_seed.sh) to fold into the perf report")
	perfRepeats := flag.Int("perf-repeats", 3, "ttcp repetitions per config in -exp perf (best-of)")
	shards := flag.Int("shards", 4, "max shard engines in -exp perfscale/scaleguard")
	pairs := flag.Int("pairs", 4, "communicating node pairs in -exp perfscale/scaleguard")
	collNodes := flag.String("coll-nodes", "2,8,32,128", "comma-separated group sizes for -exp collective")
	collIters := flag.Int("coll-iters", 4, "timed operations per point in -exp collective/collguard")
	vecWords := flag.Int("vec-words", 64, "allreduce vector length in 64-bit words for -exp collective")
	connCounts := flag.String("conn-counts", "64,512,2048,8192", "comma-separated connection counts for -exp connscale")
	connMsgs := flag.Int("conn-msgs", 4, "requests per connection for -exp connscale/connguard")
	flag.Parse()

	if *full {
		*bytes = 10 << 20
		*nbdBytes = 409 << 20
	}
	bench.SetParallelism(*parallel)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	run := func(name string, fn func()) {
		if *exp == "all" || *exp == name {
			fn()
			fmt.Println()
		}
	}

	ran := false
	mark := func(fn func()) func() {
		return func() { ran = true; fn() }
	}

	run("fig3", mark(func() { fmt.Print(bench.RenderFigure3(bench.Figure3(*iters))) }))
	run("fig4", mark(func() { fmt.Print(bench.RenderFigure4(bench.Figure4(*bytes))) }))
	run("table1", mark(func() { fmt.Print(bench.RenderTable1(bench.Table1(*iters))) }))
	run("table2", mark(func() { fmt.Print(bench.RenderTable2(bench.Table2(*iters))) }))
	run("table3", mark(func() { fmt.Print(bench.RenderTable3(bench.Table3(*iters))) }))
	run("fig7", mark(func() { fmt.Print(bench.RenderFigure7(bench.Figure7(*nbdBytes))) }))
	run("chaos", mark(func() { fmt.Print(bench.RenderChaos(bench.Chaos(*bytes))) }))
	run("recovery", mark(func() {
		rows := bench.Recovery(*bytes)
		fmt.Print(bench.RenderRecovery(rows))
		js, err := bench.RecoveryJSON(rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recovery json: %v\n", err)
			os.Exit(1)
		}
		if *jsonPath != "" && *exp == "recovery" {
			if err := os.WriteFile(*jsonPath, []byte(js), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		} else {
			fmt.Print(js)
		}
		for _, r := range rows {
			if !r.Verified || r.Failed {
				fmt.Fprintf(os.Stderr, "recovery: %s/%s point not byte-exact\n", r.Scenario, r.Backoff)
				os.Exit(1)
			}
		}
	}))
	run("irq", mark(func() { fmt.Print(bench.RenderIRQ(bench.IRQAblation(*bytes, *iters))) }))
	run("ablations", mark(func() {
		fmt.Print(bench.RenderAblation(bench.AblationChecksum(*bytes)))
		fmt.Println()
		fmt.Print(bench.RenderAblation(bench.AblationPipelinedTX(*bytes)))
		fmt.Println()
		fmt.Print(bench.RenderAblation(bench.AblationDelAck(*bytes)))
		fmt.Println()
		fmt.Print(bench.RenderMTUSweep(bench.AblationMTU(*bytes)))
	}))
	// perf runs last: its baseline phase flips the process-wide legacy
	// knobs, which must not overlap the experiments above.
	run("perf", mark(func() {
		rep := bench.Perf(*bytes, *perfRepeats)
		if *seedJSON != "" {
			data, err := os.ReadFile(*seedJSON)
			if err == nil {
				err = bench.AttachSeedBaseline(&rep, data)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed baseline: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Print(bench.RenderPerf(rep))
		if *jsonPath != "" {
			if err := bench.WritePerfJSON(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}))

	// perfscale is excluded from -exp all like perf: its sharded clusters
	// spawn worker threads, which must not overlap -parallel sweeps.
	if *exp == "perfscale" {
		ran = true
		rep := bench.Perfscale(*pairs, *shards, *bytes, *perfRepeats)
		fmt.Print(bench.RenderPerfscale(rep))
		if *jsonPath != "" {
			if err := bench.WriteScaleJSON(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}

	// perfguard/scaleguard are CI-only: never part of -exp all, exit 1 on
	// regression.
	if *exp == "perfguard" {
		ran = true
		report, ok := bench.PerfGuard(*bytes)
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}
	if *exp == "scaleguard" {
		ran = true
		report, ok := bench.PerfscaleGuard(*pairs, *shards, *bytes)
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}

	// collective sweeps large clusters (up to 128 nodes per point); like
	// perfscale it is excluded from -exp all.
	if *exp == "collective" {
		ran = true
		nodes, err := parseNodeList(*collNodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-coll-nodes: %v\n", err)
			os.Exit(2)
		}
		rep := bench.Collective(nodes, *collIters, *vecWords)
		fmt.Print(bench.RenderCollective(rep))
		if *jsonPath != "" {
			if err := bench.WriteCollJSON(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}
	if *exp == "collguard" {
		ran = true
		report, ok := bench.CollectiveGuard(*collIters)
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}

	// connscale sweeps up to 8192 connections per point; like perfscale it
	// is excluded from -exp all.
	if *exp == "connscale" {
		ran = true
		counts, err := parseNodeList(*connCounts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-conn-counts: %v\n", err)
			os.Exit(2)
		}
		rep := bench.Connscale(counts, *connMsgs)
		fmt.Print(bench.RenderConnscale(rep))
		if *jsonPath != "" {
			if err := bench.WriteConnJSON(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}
	if *exp == "connguard" {
		ran = true
		report, ok := bench.ConnGuard(*connMsgs)
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// parseNodeList parses a comma-separated list of positive group sizes.
func parseNodeList(s string) ([]int, error) {
	var nodes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad group size %q", part)
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return nodes, nil
}
