// Command qpipnbd runs the Network Block Device scenario (paper §4.2.3)
// on a chosen stack and reports per-phase throughput and client CPU
// effectiveness — a single Figure 7 cell on demand.
//
// Usage:
//
//	qpipnbd [-stack qpip|gige|gm] [-mb N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	stack := flag.String("stack", "qpip", "stack: qpip, gige, gm")
	mb := flag.Int("mb", 128, "megabytes to write and read back")
	flag.Parse()

	var rows []bench.NBDRow
	switch *stack {
	case "qpip":
		rows = bench.Figure7Single(bench.QPIP, *mb<<20)
	case "gige":
		rows = bench.Figure7Single(bench.IPGigE, *mb<<20)
	case "gm":
		rows = bench.Figure7Single(bench.IPMyrinet, *mb<<20)
	default:
		fmt.Fprintf(os.Stderr, "unknown stack %q\n", *stack)
		flag.Usage()
		os.Exit(2)
	}
	if len(rows) == 0 {
		log.Fatal("no results")
	}
	fmt.Print(bench.RenderFigure7(rows))
}
