// Storage runs the paper's Network Block Device scenario (§4.2.3, Figure
// 6) on the public API: an ext2-lite filesystem on the client, mounted on
// an NBD device whose requests travel over a reliable QP to a server with
// a simulated disk. It writes a file, syncs, drops the cache, reads it
// back, and reports throughput and client CPU cost for each phase.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/nbd"
	"repro/internal/params"
	"repro/internal/storage"
	"repro/qpip"
)

func main() {
	mb := flag.Int("mb", 64, "megabytes to write and read back")
	flag.Parse()
	total := *mb << 20

	c := qpip.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMTU: params.MTUJumbo})
	diskSize := int64(total) + (64 << 20)
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	maxMsg := c.Nodes[0].QPIP.MaxMessage()

	c.Spawn("nbd-server", func(p *qpip.Proc) {
		qp, scq, rcq, err := qpip.NewReliableQP(c.Nodes[1], 512)
		if err != nil {
			log.Fatal(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(10809)
		if err != nil {
			log.Fatal(err)
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			log.Fatal(err)
		}
		nbd.ServeQP(p, c.Nodes[1].CPU, qp, scq, rcq, maxMsg, disk)
	})

	c.Spawn("client", func(p *qpip.Proc) {
		qp, scq, rcq, err := qpip.NewReliableQP(c.Nodes[0], 512)
		if err != nil {
			log.Fatal(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 10809); err != nil {
			log.Fatal(err)
		}
		cli := nbd.NewQPClient(c.Eng, c.Nodes[0].CPU, qp, scq, rcq, maxMsg, diskSize, params.NBDQueueDepth)
		fs := storage.NewFS(cli, c.Nodes[0].CPU, 8<<20)

		const chunk = 256 * 1024
		cpu := c.Nodes[0].CPU

		start, busy0 := p.Now(), cpu.BusyTotal()
		for off := 0; off < total; off += chunk {
			if err := fs.WriteAt(p, int64(off), qpip.VirtualMessage(chunk)); err != nil {
				log.Fatal(err)
			}
		}
		if err := fs.Sync(p); err != nil {
			log.Fatal(err)
		}
		report("write+sync", total, p.Now()-start, cpu.BusyTotal()-busy0)

		fs.Invalidate() // unmount between phases, as the paper does

		start, busy0 = p.Now(), cpu.BusyTotal()
		for off := 0; off < total; off += chunk {
			if _, err := fs.ReadAt(p, int64(off), chunk); err != nil {
				log.Fatal(err)
			}
		}
		report("read", total, p.Now()-start, cpu.BusyTotal()-busy0)
	})

	c.Run()
}

func report(phase string, bytes int, dur, busy qpip.Time) {
	mbps := float64(bytes) / 1e6 / dur.Seconds()
	eff := float64(bytes) / 1e6 / busy.Seconds()
	fmt.Printf("%-10s %7.1f MB/s   client CPU %4.0f%%   %6.1f MB per CPU-second\n",
		phase, mbps, float64(busy)/float64(dur)*100, eff)
}
