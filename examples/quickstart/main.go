// Quickstart: the smallest complete QPIP program. Two simulated nodes on
// a Myrinet fabric; the server parks an idle QP on a listening TCP port,
// the client connects, sends one reliable message, and both sides reap
// completions — the queue pair interface of paper §3 end to end.
package main

import (
	"fmt"
	"log"

	"repro/qpip"
)

func main() {
	c := qpip.NewQPIPCluster(2)

	// Server: create a QP, park it on a monitored TCP port, post a
	// receive buffer, and wait for the message.
	c.Spawn("server", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[1], 64)
		if err != nil {
			log.Fatal(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(7000)
		if err != nil {
			log.Fatal(err)
		}
		if err := lst.Post(qp); err != nil {
			log.Fatal(err)
		}
		if err := qp.WaitEstablished(p); err != nil {
			log.Fatal(err)
		}
		// Post receive space; this is also what opens the connection's
		// TCP receive window.
		if err := qp.PostRecv(p, qpip.RecvWR{ID: 1, Capacity: 4096}); err != nil {
			log.Fatal(err)
		}
		comp := rcq.Wait(p)
		fmt.Printf("[%8v] server: received %d bytes: %q\n",
			p.Now(), comp.ByteLen, string(comp.Payload.Data()))
	})

	// Client: connect (the SYN/ACK rendezvous runs entirely inside the
	// adapters), send, and wait for the send completion — which fires
	// when the peer's TCP acknowledged the whole message.
	c.Spawn("client", func(p *qpip.Proc) {
		qp, scq, _, err := qpip.NewReliableQP(c.Nodes[0], 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 7000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] client: connected to %v:7000\n", p.Now(), c.Nodes[1].Addr6)
		msg := qpip.Message([]byte("hello, queue pair IP"))
		if err := qp.PostSend(p, qpip.SendWR{ID: 1, Payload: msg}); err != nil {
			log.Fatal(err)
		}
		comp := scq.Wait(p)
		fmt.Printf("[%8v] client: send completion, status=%v\n", p.Now(), comp.Status)
	})

	c.Run()
	fmt.Printf("simulation finished at %v\n", c.Eng.Now())
}
