// Datagram demonstrates unreliable (UDP) queue pairs and CQ multiplexing:
// several sender nodes fire datagrams at one collector, whose single
// receive CQ aggregates completions from the shared unreliable QP —
// "the binding of multiple queues to a CQ permits applications to group
// related QPs into a single monitoring point" (paper §2.1). It also shows
// UDP's unreliable contract: datagrams arriving with no posted receive WR
// are dropped and counted.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/qpip"
)

func main() {
	senders := flag.Int("senders", 3, "number of sender nodes")
	msgs := flag.Int("msgs", 50, "datagrams per sender")
	flag.Parse()

	c := qpip.NewCluster(*senders+1, core.NodeConfig{QPIP: true})
	collector := c.Nodes[0]
	const port = 5353

	received := map[string]int{}
	c.Spawn("collector", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewUnreliableQP(collector, 4096)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := qp.BindUDP(port); err != nil {
			log.Fatal(err)
		}
		// Deliberately post fewer buffers than the total offered load:
		// the excess is dropped, as UDP promises nothing.
		posted := *senders * *msgs * 3 / 4
		for i := 0; i < posted; i++ {
			if err := qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: 256}); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < posted; i++ {
			comp := rcq.Wait(p)
			received[comp.RemoteAddr.String()]++
		}
	})

	for s := 1; s <= *senders; s++ {
		s := s
		c.Spawn(fmt.Sprintf("sender%d", s), func(p *qpip.Proc) {
			qp, scq, _, err := qpip.NewUnreliableQP(c.Nodes[s], 256)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := qp.BindUDP(0); err != nil {
				log.Fatal(err)
			}
			for i := 0; i < *msgs; i++ {
				err := qp.PostSend(p, qpip.SendWR{
					ID:         uint64(i),
					Payload:    qpip.Message([]byte(fmt.Sprintf("sender %d msg %d", s, i))),
					RemoteAddr: collector.Addr6,
					RemotePort: port,
				})
				if err != nil {
					log.Fatal(err)
				}
				scq.Wait(p) // UDP sends complete as soon as transmitted
			}
		})
	}

	c.RunFor(2 * 1e9) // 2 simulated seconds is ample

	fmt.Printf("offered: %d datagrams from %d senders\n", *senders**msgs, *senders)
	total := 0
	for addr, n := range received {
		fmt.Printf("  from %-22s %4d received\n", addr, n)
		total += n
	}
	drops := collector.QPIP.Stats().NoWRDrops
	fmt.Printf("received %d, dropped for lack of receive WRs: %d\n", total, drops)
}
