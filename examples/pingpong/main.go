// Pingpong measures application-to-application round-trip time over QPIP
// reliable (TCP) and unreliable (UDP) queue pairs — the experiment behind
// the paper's Figure 3. Run with -iters to change the measurement count
// and -fw to use the firmware receive checksum (the paper's 73/113 us
// configuration).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/qpipnic"
	"repro/qpip"
)

func main() {
	iters := flag.Int("iters", 100, "round trips to measure")
	fw := flag.Bool("fw", false, "firmware receive checksum (default: emulated hardware)")
	flag.Parse()

	cs := qpip.ChecksumEmulatedHW
	if *fw {
		cs = qpip.ChecksumFirmware
	}
	for _, transport := range []struct {
		name string
		udp  bool
	}{{"TCP (reliable QP)", false}, {"UDP (unreliable QP)", true}} {
		rtt := measure(cs, transport.udp, *iters)
		fmt.Printf("%-22s 1-byte RTT: %.1f us over %d round trips\n", transport.name, rtt, *iters)
	}
}

func measure(cs qpipnic.ChecksumMode, udp bool, iters int) float64 {
	c := qpip.NewCluster(2, core.NodeConfig{QPIP: true, QPIPChecksum: cs})
	var rttUS float64
	total := iters + 1

	if udp {
		c.Spawn("server", func(p *qpip.Proc) {
			qp, _, rcq, err := qpip.NewUnreliableQP(c.Nodes[1], 2*total)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := qp.BindUDP(9001); err != nil {
				log.Fatal(err)
			}
			for i := 0; i < total; i++ {
				qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: 64})
			}
			for i := 0; i < total; i++ {
				comp := rcq.Wait(p)
				qp.PostSend(p, qpip.SendWR{
					ID: uint64(i), Payload: qpip.VirtualMessage(1),
					RemoteAddr: comp.RemoteAddr, RemotePort: comp.RemotePort,
				})
			}
		})
		c.Spawn("client", func(p *qpip.Proc) {
			qp, _, rcq, err := qpip.NewUnreliableQP(c.Nodes[0], 2*total)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := qp.BindUDP(9002); err != nil {
				log.Fatal(err)
			}
			for i := 0; i < total; i++ {
				qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: 64})
			}
			ping := func(i int) {
				qp.PostSend(p, qpip.SendWR{
					ID: uint64(i), Payload: qpip.VirtualMessage(1),
					RemoteAddr: c.Nodes[1].Addr6, RemotePort: 9001,
				})
				rcq.Wait(p)
			}
			ping(0) // warmup
			start := p.Now()
			for i := 1; i <= iters; i++ {
				ping(i)
			}
			rttUS = (p.Now() - start).Micros() / float64(iters)
		})
		c.Run()
		return rttUS
	}

	c.Spawn("server", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[1], 2*total)
		if err != nil {
			log.Fatal(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(9000)
		if err != nil {
			log.Fatal(err)
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: 64})
		}
		for i := 0; i < total; i++ {
			rcq.Wait(p)
			qp.PostSend(p, qpip.SendWR{ID: uint64(i), Payload: qpip.VirtualMessage(1)})
		}
	})
	c.Spawn("client", func(p *qpip.Proc) {
		qp, scq, rcq, err := qpip.NewReliableQP(c.Nodes[0], 2*total)
		if err != nil {
			log.Fatal(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 9000); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: 64})
		}
		ping := func(i int) {
			qp.PostSend(p, qpip.SendWR{ID: uint64(i), Payload: qpip.VirtualMessage(1)})
			rcq.Wait(p)
			scq.Wait(p)
		}
		ping(0) // warmup
		start := p.Now()
		for i := 1; i <= iters; i++ {
			ping(i)
		}
		rttUS = (p.Now() - start).Micros() / float64(iters)
	})
	c.Run()
	return rttUS
}
