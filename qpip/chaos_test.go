package qpip_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/buf"
	"repro/qpip"
)

// chaosResult is everything one chaos run produces that must be identical
// across two runs of the same seed.
type chaosResult struct {
	trace    string    // injector event log
	endTime  qpip.Time // simulation end
	received []byte    // server-side payload bytes, in delivery order
	statuses string    // per-WR completion statuses, in completion order
}

// runChaosTransfer pushes msgs records of msgLen bytes through a reliable
// QP pair while the fabric injects the seeded plan, and asserts the
// DESIGN §8 invariants: every byte arrives in order exactly once, every
// posted WR completes exactly once, and the simulation drains.
func runChaosTransfer(t *testing.T, seed uint64, msgs, msgLen int) chaosResult {
	t.Helper()
	c := qpip.NewQPIPCluster(2)
	inj := qpip.InjectFaults(c, qpip.FaultPlan{
		Seed:          seed,
		DropProb:      0.03,
		CorruptProb:   0.02,
		DupProb:       0.03,
		DelayProb:     0.05,
		MaxExtraDelay: 20_000, // 20 us of switch jitter
		SkipFirst:     8,      // spare the handshake; the bulk takes the abuse
	})

	var res chaosResult
	sendCount := make(map[uint64]int)
	recvCount := make(map[uint64]int)

	c.Spawn("server", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[1], 64)
		if err != nil {
			t.Errorf("server QP: %v", err)
			return
		}
		lst, err := c.Nodes[1].QPIP.Listen(7000)
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			t.Errorf("server establish: %v", err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: msgLen}); err != nil {
				t.Errorf("PostRecv %d: %v", i, err)
				return
			}
		}
		for i := 0; i < msgs; i++ {
			comp := rcq.Wait(p)
			recvCount[comp.WRID]++
			res.statuses += fmt.Sprintf("r%d=%v ", comp.WRID, comp.Status)
			if comp.Status != qpip.StatusSuccess {
				t.Errorf("recv WR %d completed %v", comp.WRID, comp.Status)
				return
			}
			res.received = append(res.received, comp.Payload.Data()...)
		}
	})
	c.Spawn("client", func(p *qpip.Proc) {
		qp, scq, _, err := qpip.NewReliableQP(c.Nodes[0], 64)
		if err != nil {
			t.Errorf("client QP: %v", err)
			return
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		inFlight := 0
		for i := 0; i < msgs; i++ {
			for inFlight >= 32 {
				comp := scq.Wait(p)
				sendCount[comp.WRID]++
				res.statuses += fmt.Sprintf("s%d=%v ", comp.WRID, comp.Status)
				if comp.Status != qpip.StatusSuccess {
					t.Errorf("send WR %d completed %v", comp.WRID, comp.Status)
					return
				}
				inFlight--
			}
			if err := qp.PostSend(p, qpip.SendWR{ID: uint64(i), Payload: buf.Pattern(msgLen, byte(i))}); err != nil {
				t.Errorf("PostSend %d: %v", i, err)
				return
			}
			inFlight++
		}
		for inFlight > 0 {
			comp := scq.Wait(p)
			sendCount[comp.WRID]++
			res.statuses += fmt.Sprintf("s%d=%v ", comp.WRID, comp.Status)
			if comp.Status != qpip.StatusSuccess {
				t.Errorf("send WR %d completed %v", comp.WRID, comp.Status)
				return
			}
			inFlight--
		}
	})
	c.Run() // must drain: a hang here is a deadline-less deadlock
	res.trace = inj.TraceString()
	res.endTime = c.Eng.Now()

	// The plan must actually have bitten.
	st := inj.Stats()
	if st.Drops == 0 || st.Corrupts == 0 || st.Dups == 0 {
		t.Fatalf("plan injected too little: %+v", st)
	}
	// Every byte, in order, exactly once.
	var want []byte
	for i := 0; i < msgs; i++ {
		want = append(want, buf.Pattern(msgLen, byte(i)).Data()...)
	}
	if !bytes.Equal(res.received, want) {
		t.Fatalf("delivered bytes differ: got %d bytes, want %d", len(res.received), len(want))
	}
	// Every WR completed exactly once on both sides.
	for i := 0; i < msgs; i++ {
		if n := sendCount[uint64(i)]; n != 1 {
			t.Fatalf("send WR %d completed %d times", i, n)
		}
		if n := recvCount[uint64(i)]; n != 1 {
			t.Fatalf("recv WR %d completed %d times", i, n)
		}
	}
	// Corruption was caught by real checksums, not delivered.
	if crpt := c.Nodes[0].QPIP.Stats().ChecksumErrors + c.Nodes[1].QPIP.Stats().ChecksumErrors; crpt == 0 {
		t.Error("frames were corrupted but no checksum error was counted")
	}
	return res
}

// TestChaosTransferInvariants is the tentpole property test: a seeded
// fault plan with drop + corruption + duplication must not break
// exactly-once in-order delivery or exactly-once WR completion, and the
// same seed must reproduce the identical fault trace and end time.
func TestChaosTransferInvariants(t *testing.T) {
	a := runChaosTransfer(t, 0xC0FFEE, 48, 8192)
	if t.Failed() {
		return
	}
	b := runChaosTransfer(t, 0xC0FFEE, 48, 8192)
	if a.trace != b.trace {
		t.Error("same seed produced different fault traces")
	}
	if a.endTime != b.endTime {
		t.Errorf("same seed produced different end times: %v vs %v", a.endTime, b.endTime)
	}
	if a.statuses != b.statuses {
		t.Error("same seed produced different completion sequences")
	}
	if !bytes.Equal(a.received, b.received) {
		t.Error("same seed produced different delivered bytes")
	}
	// A different seed must produce a different fault trace (the seed is
	// actually driving the decisions).
	c := runChaosTransfer(t, 0xBEEF, 48, 8192)
	if c.trace == a.trace {
		t.Error("different seeds produced identical fault traces")
	}
}

// TestConnectToBlackhole: with every frame dropped, an active open fails
// within the SYN retry budget — bounded, no hang, QP in error state.
func TestConnectToBlackhole(t *testing.T) {
	c := qpip.NewQPIPCluster(2)
	qpip.InjectFaults(c, qpip.FaultPlan{DropProb: 1})
	var connErr error
	var failedAt qpip.Time
	c.Spawn("client", func(p *qpip.Proc) {
		qp, _, _, err := qpip.NewReliableQP(c.Nodes[0], 16)
		if err != nil {
			t.Errorf("NewReliableQP: %v", err)
			return
		}
		connErr = qp.Connect(p, c.Nodes[1].Addr6, 7000)
		failedAt = p.Now()
		if qp.State() != qpip.QPError {
			t.Errorf("QP state = %v after failed connect, want error state", qp.State())
		}
	})
	c.Run()
	if !errors.Is(connErr, qpip.ErrRetryExceeded) {
		t.Fatalf("Connect = %v, want ErrRetryExceeded", connErr)
	}
	// SynMaxRetries=5 from a 3 s initial RTO: 3+6+12+24+48+96 = 189 s.
	if failedAt > 200*1_000_000_000 {
		t.Errorf("connect failed at %v, want within the ~189 s SYN budget", failedAt)
	}
}

// TestConnectRefusedByRST: a SYN to a port nobody listens on draws an RST
// and fails immediately — no retry budget burned against a silent drop.
func TestConnectRefusedByRST(t *testing.T) {
	c := qpip.NewQPIPCluster(2)
	var connErr error
	var failedAt qpip.Time
	c.Spawn("client", func(p *qpip.Proc) {
		qp, _, _, err := qpip.NewReliableQP(c.Nodes[0], 16)
		if err != nil {
			t.Errorf("NewReliableQP: %v", err)
			return
		}
		connErr = qp.Connect(p, c.Nodes[1].Addr6, 4242) // nobody listens
		failedAt = p.Now()
	})
	c.Run()
	if !errors.Is(connErr, qpip.ErrConnRefused) {
		t.Fatalf("Connect = %v, want ErrConnRefused", connErr)
	}
	if failedAt > 1_000_000_000 {
		t.Errorf("refusal took %v, want well under a second (RST, not timeout)", failedAt)
	}
}

// TestRetryExceededFlushesOutstandingWRs: a link that goes down after
// establishment must fail the QP with StatusRetryExceeded completions for
// every outstanding WR — and sends on an unrelated QP sharing the same
// CQs must stay isolated (completions carry the right QPN).
func TestRetryExceededFlushesOutstandingWRs(t *testing.T) {
	c := qpip.NewCluster(3, qpip.NodeConfig{QPIP: true})
	// Node 2's link goes down at t=50ms and stays down.
	deadPort := c.Nodes[2].QPIP.Attachment()
	qpip.InjectFaults(c, qpip.FaultPlan{
		Flaps: []qpip.Flap{{Port: deadPort, From: 50_000_000, To: 1 << 62}},
	})

	scq := qpip.NewCQ(c.Nodes[0], 64)
	rcq := qpip.NewCQ(c.Nodes[0], 64)
	mk := func() *qpip.QP {
		qp, err := qpip.NewQPWith(c.Nodes[0], qpip.QPConfig{
			Transport: qpip.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 16, RecvDepth: 16,
		})
		if err != nil {
			t.Fatalf("NewQPWith: %v", err)
		}
		return qp
	}
	qpA, qpB := mk(), mk() // A -> node1 (healthy), B -> node2 (doomed)

	serve := func(node int, port uint16, nmsg int) {
		c.Spawn(fmt.Sprintf("server%d", node), func(p *qpip.Proc) {
			qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[node], 32)
			if err != nil {
				t.Errorf("server %d: %v", node, err)
				return
			}
			lst, err := c.Nodes[node].QPIP.Listen(port)
			if err != nil {
				t.Errorf("Listen %d: %v", node, err)
				return
			}
			lst.Post(qp)
			if err := qp.WaitEstablished(p); err != nil {
				return
			}
			for i := 0; i < nmsg; i++ {
				qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: 4096})
			}
			// Reap whatever arrives; the doomed server hears nothing.
			for i := 0; i < nmsg; i++ {
				if comp := rcq.Wait(p); comp.Status != qpip.StatusSuccess {
					return
				}
			}
		})
	}
	const nmsg = 8
	serve(1, 7001, nmsg)
	serve(2, 7002, nmsg)

	// WRID ranges are disjoint so cross-QP completion mixups are visible.
	const baseA, baseB = 1000, 2000
	compA := make(map[uint64]int)
	compB := make(map[uint64]int)
	var statusB []string

	c.Spawn("client", func(p *qpip.Proc) {
		if err := qpA.Connect(p, c.Nodes[1].Addr6, 7001); err != nil {
			t.Errorf("connect A: %v", err)
			return
		}
		if err := qpB.Connect(p, c.Nodes[2].Addr6, 7002); err != nil {
			t.Errorf("connect B: %v", err)
			return
		}
		// Sleep past the flap start so B's sends face a dead link.
		p.Sleep(60_000_000)
		for i := 0; i < nmsg; i++ {
			if err := qpA.PostSend(p, qpip.SendWR{ID: baseA + uint64(i), Payload: buf.Pattern(2048, byte(i))}); err != nil {
				t.Errorf("post A %d: %v", i, err)
			}
			if err := qpB.PostSend(p, qpip.SendWR{ID: baseB + uint64(i), Payload: buf.Pattern(2048, byte(i))}); err != nil {
				t.Errorf("post B %d: %v", i, err)
			}
		}
		for seen := 0; seen < 2*nmsg; seen++ {
			comp := scq.Wait(p)
			switch {
			case comp.WRID >= baseB:
				compB[comp.WRID]++
				statusB = append(statusB, comp.Status.String())
				if comp.QPN != qpB.QPN {
					t.Errorf("WR %d completed on QPN %d, posted on %d", comp.WRID, comp.QPN, qpB.QPN)
				}
			case comp.WRID >= baseA:
				compA[comp.WRID]++
				if comp.QPN != qpA.QPN {
					t.Errorf("WR %d completed on QPN %d, posted on %d", comp.WRID, comp.QPN, qpA.QPN)
				}
				if comp.Status != qpip.StatusSuccess {
					t.Errorf("healthy QP send %d completed %v", comp.WRID, comp.Status)
				}
			default:
				t.Errorf("unknown completion WRID %d", comp.WRID)
			}
		}
	})
	c.Run() // must drain — retry exhaustion, not an infinite retransmit loop

	for i := uint64(0); i < nmsg; i++ {
		if n := compA[baseA+i]; n != 1 {
			t.Errorf("A WR %d completed %d times, want 1", i, n)
		}
		if n := compB[baseB+i]; n != 1 {
			t.Errorf("B WR %d completed %d times, want 1", i, n)
		}
	}
	for i, s := range statusB {
		if s != "retry-exceeded" {
			t.Errorf("doomed QP completion %d status %q, want retry-exceeded", i, s)
		}
	}
	if qpB.State() != qpip.QPError {
		t.Errorf("doomed QP state = %v, want error", qpB.State())
	}
	if !errors.Is(qpB.Err(), qpip.ErrRetryExceeded) {
		t.Errorf("doomed QP err = %v, want ErrRetryExceeded", qpB.Err())
	}
	if n := c.Nodes[0].QPIP.Net.Get("conn.retry-exceeded"); n != 1 {
		t.Errorf("conn.retry-exceeded = %d, want 1", n)
	}
}

// TestCreateQPRefusedOnStateTableExhaustion: the adapter's SRAM-resident
// QP table is finite; creation beyond it refuses with ErrNoResources
// instead of overcommitting.
func TestCreateQPRefusedOnStateTableExhaustion(t *testing.T) {
	c := qpip.NewCluster(1, qpip.NodeConfig{QPIP: true, QPIPMaxQPs: 4})
	for i := 0; i < 4; i++ {
		if _, _, _, err := qpip.NewReliableQP(c.Nodes[0], 4); err != nil {
			t.Fatalf("QP %d refused below the limit: %v", i, err)
		}
	}
	if _, _, _, err := qpip.NewReliableQP(c.Nodes[0], 4); !errors.Is(err, qpip.ErrNoResources) {
		t.Fatalf("QP beyond MaxQPs = %v, want ErrNoResources", err)
	}
	if n := c.Nodes[0].QPIP.Net.Get("mgmt.qp-refused"); n != 1 {
		t.Errorf("mgmt.qp-refused = %d, want 1", n)
	}
}
