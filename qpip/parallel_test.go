package qpip_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/buf"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/qpip"
)

// This file is the correctness gate for the conservative parallel
// simulation core (DESIGN §14): the same 4-node workload under the same
// seeded fault plan must produce bit-identical results — fault trace,
// per-flow byte streams, completion status sequences, per-node adapter
// counters, total event count, and end time — in three execution modes:
//
//	sequential: one engine, plain NewQPIPCluster (the reference)
//	1-shard:    the parallel runner's worker machinery, one engine
//	2-shard:    two engines, every flow crossing the shard boundary,
//	            frames exchanged at lookahead epoch barriers
//
// It extends qpip/boundary_test.go's equivalence pattern from a mode knob
// to the execution substrate itself.

// matrixResult is everything one matrix run produces that must be
// identical across modes. Every field is written by exactly one process
// (distinct array slots) — never shared between processes on different
// shards — so sharded runs stay race-free.
type matrixResult struct {
	trace    string      // canonical injector event log
	endTime  qpip.Time   // max last-event time across engines
	fired    uint64      // total events executed across engines
	received [2][]byte   // per-flow server-side payload bytes, delivery order
	statuses [4]string   // per-process completion status strings
	counters [4]string   // per-node adapter counter dumps
	stats    fault.Stats // injector totals
}

// The matrix runs two concurrent flows on four nodes: client node 0 →
// server node 1, client node 2 → server node 3. Round-robin placement at
// two shards puts nodes 0,2 on shard 0 and 1,3 on shard 1, so BOTH flows
// cross the shard boundary and every data, ack, and handshake frame rides
// the barrier mailboxes.
const (
	matrixMsgs   = 32
	matrixMsgLen = 4096
)

func matrixCluster(mode string) *qpip.Cluster {
	switch mode {
	case "sequential":
		return qpip.NewQPIPCluster(4)
	case "1-shard":
		return qpip.NewShardedQPIPCluster(4, 1)
	case "2-shard":
		return qpip.NewShardedQPIPCluster(4, 2)
	case "isolated":
		// Pair (2k, 2k+1) co-sharded: both flows stay shard-local, the
		// fabrics are severed, and the shards free-run in a single epoch.
		return qpip.NewShardedCluster(4, qpip.NodeConfig{QPIP: true}, qpip.ShardPlan{
			Shards:    2,
			NodeShard: func(i int) int { return i / 2 },
			Isolate:   true,
		})
	default:
		panic("unknown mode " + mode)
	}
}

// runMatrix executes the two-flow workload under plan in the given mode.
// strict asserts full success (the plan kills no WRs); non-strict plans
// (crashes) only require the run to drain and match across modes.
func runMatrix(t *testing.T, mode string, plan qpip.FaultPlan, strict bool) matrixResult {
	t.Helper()
	c := matrixCluster(mode)
	inj := qpip.InjectFaults(c, plan)

	var res matrixResult
	flows := [2][2]int{{0, 1}, {2, 3}}
	for fi, f := range flows {
		fi, client, server := fi, f[0], f[1]
		port := uint16(7000 + fi)
		c.SpawnOn(server, fmt.Sprintf("server%d", server), func(p *qpip.Proc) {
			qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[server], 64)
			if err != nil {
				t.Errorf("server %d QP: %v", server, err)
				return
			}
			lst, err := c.Nodes[server].QPIP.Listen(port)
			if err != nil {
				t.Errorf("Listen %d: %v", server, err)
				return
			}
			lst.Post(qp)
			if err := qp.WaitEstablished(p); err != nil {
				res.statuses[server] += fmt.Sprintf("est=%v ", err)
				return
			}
			for i := 0; i < matrixMsgs; i++ {
				if err := qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: matrixMsgLen}); err != nil {
					t.Errorf("PostRecv %d: %v", i, err)
					return
				}
			}
			for i := 0; i < matrixMsgs; i++ {
				comp := rcq.Wait(p)
				res.statuses[server] += fmt.Sprintf("r%d=%v ", comp.WRID, comp.Status)
				if comp.Status != qpip.StatusSuccess {
					if strict {
						t.Errorf("flow %d recv WR %d completed %v", fi, comp.WRID, comp.Status)
					}
					continue
				}
				res.received[fi] = append(res.received[fi], comp.Payload.Data()...)
			}
		})
		c.SpawnOn(client, fmt.Sprintf("client%d", client), func(p *qpip.Proc) {
			qp, scq, _, err := qpip.NewReliableQP(c.Nodes[client], 64)
			if err != nil {
				t.Errorf("client %d QP: %v", client, err)
				return
			}
			if err := qp.Connect(p, c.Nodes[server].Addr6, port); err != nil {
				res.statuses[client] += fmt.Sprintf("conn=%v ", err)
				return
			}
			inFlight := 0
			reap := func() {
				comp := scq.Wait(p)
				res.statuses[client] += fmt.Sprintf("s%d=%v ", comp.WRID, comp.Status)
				if strict && comp.Status != qpip.StatusSuccess {
					t.Errorf("flow %d send WR %d completed %v", fi, comp.WRID, comp.Status)
				}
				inFlight--
			}
			for i := 0; i < matrixMsgs; i++ {
				for inFlight >= 16 {
					reap()
				}
				if err := qp.PostSend(p, qpip.SendWR{ID: uint64(i), Payload: buf.Pattern(matrixMsgLen, byte(fi<<4|i&0xf))}); err != nil {
					res.statuses[client] += fmt.Sprintf("post%d=%v ", i, err)
					return
				}
				inFlight++
			}
			for inFlight > 0 {
				reap()
			}
		})
	}
	c.Run() // must drain in every mode: a hang is a barrier deadlock
	res.trace = inj.TraceString()
	res.stats = inj.Stats()
	res.endTime = c.EndTime()
	res.fired = c.FiredTotal()
	for i, n := range c.Nodes {
		res.counters[i] = n.QPIP.Net.String()
	}

	if strict {
		for fi := range flows {
			var want []byte
			for i := 0; i < matrixMsgs; i++ {
				want = append(want, buf.Pattern(matrixMsgLen, byte(fi<<4|i&0xf)).Data()...)
			}
			if !bytes.Equal(res.received[fi], want) {
				t.Errorf("mode %s flow %d: delivered %d bytes, want %d",
					mode, fi, len(res.received[fi]), len(want))
			}
		}
	}
	return res
}

// assertIdentical compares every observable of two modes' runs.
func assertIdentical(t *testing.T, name string, ref, got matrixResult, refMode, gotMode string) {
	t.Helper()
	if ref.trace != got.trace {
		t.Errorf("%s: fault traces diverge between %s and %s:\n--- %s ---\n%s--- %s ---\n%s",
			name, refMode, gotMode, refMode, ref.trace, gotMode, got.trace)
	}
	if ref.endTime != got.endTime {
		t.Errorf("%s: end times diverge: %s=%v %s=%v", name, refMode, ref.endTime, gotMode, got.endTime)
	}
	if ref.fired != got.fired {
		t.Errorf("%s: event counts diverge: %s=%d %s=%d", name, refMode, ref.fired, gotMode, got.fired)
	}
	if ref.stats != got.stats {
		t.Errorf("%s: fault stats diverge: %s=%+v %s=%+v", name, refMode, ref.stats, gotMode, got.stats)
	}
	for fi := range ref.received {
		if !bytes.Equal(ref.received[fi], got.received[fi]) {
			t.Errorf("%s: flow %d delivered bytes diverge (%d vs %d bytes)",
				name, fi, len(ref.received[fi]), len(got.received[fi]))
		}
	}
	for i := range ref.statuses {
		if ref.statuses[i] != got.statuses[i] {
			t.Errorf("%s: node %d completion sequences diverge:\n%s: %s\n%s: %s",
				name, i, refMode, ref.statuses[i], gotMode, got.statuses[i])
		}
	}
	for i := range ref.counters {
		if ref.counters[i] != got.counters[i] {
			t.Errorf("%s: node %d counters diverge:\n%s:\n%s\n%s:\n%s",
				name, i, refMode, ref.counters[i], gotMode, got.counters[i])
		}
	}
}

// matrixPlans is the chaos matrix: fault-free, link chaos (drops +
// corruption + duplication + jitter), a mid-transfer flap window, and an
// adapter crash/restart — each run in all three modes.
func matrixPlans() []struct {
	name   string
	plan   qpip.FaultPlan
	strict bool
} {
	return []struct {
		name   string
		plan   qpip.FaultPlan
		strict bool
	}{
		{name: "fault-free", plan: qpip.FaultPlan{}, strict: true},
		{name: "chaos", plan: qpip.FaultPlan{
			Seed:          0xC0FFEE,
			DropProb:      0.02,
			CorruptProb:   0.01,
			DupProb:       0.02,
			DelayProb:     0.05,
			MaxExtraDelay: 20_000,
			SkipFirst:     8,
		}, strict: true},
		{name: "flap", plan: qpip.FaultPlan{
			Seed:  7,
			Flaps: qpip.FlapTrain(1, 2*sim.Millisecond, 300*sim.Microsecond, 500*sim.Microsecond, 3),
		}, strict: true},
		{name: "crash", plan: qpip.FaultPlan{
			Seed:     11,
			DropProb: 0.005,
			Crashes:  []qpip.Crash{{Node: 3, At: 2 * sim.Millisecond, Down: 5 * sim.Millisecond}},
		}, strict: false},
	}
}

// TestParallelMatrixEquivalence is the acceptance gate: for every plan in
// the chaos matrix, the 1-shard and 2-shard runs are bit-identical to the
// sequential engine.
func TestParallelMatrixEquivalence(t *testing.T) {
	for _, tc := range matrixPlans() {
		t.Run(tc.name, func(t *testing.T) {
			seq := runMatrix(t, "sequential", tc.plan, tc.strict)
			if t.Failed() {
				return
			}
			one := runMatrix(t, "1-shard", tc.plan, tc.strict)
			two := runMatrix(t, "2-shard", tc.plan, tc.strict)
			assertIdentical(t, tc.name, seq, one, "sequential", "1-shard")
			assertIdentical(t, tc.name, seq, two, "sequential", "2-shard")
		})
	}
}

// TestParallelIsolatedPlacement covers the severed-fabric fast path: pairs
// co-sharded (Isolate), no cross-shard traffic, shards free-running in one
// epoch — still bit-identical to sequential.
func TestParallelIsolatedPlacement(t *testing.T) {
	seq := runMatrix(t, "sequential", qpip.FaultPlan{}, true)
	if t.Failed() {
		return
	}
	iso := runMatrix(t, "isolated", qpip.FaultPlan{}, true)
	assertIdentical(t, "isolated", seq, iso, "sequential", "isolated-2-shard")
}

// TestParallelRunFor pins RunFor equivalence: advancing a sharded cluster
// in bounded time slices must visit the same schedule as one Run.
func TestParallelRunFor(t *testing.T) {
	run := func(slices bool) (uint64, qpip.Time) {
		c := qpip.NewShardedQPIPCluster(4, 2)
		for fi := 0; fi < 2; fi++ {
			client, server := fi*2, fi*2+1
			port := uint16(7100 + fi)
			c.SpawnOn(server, "s", func(p *qpip.Proc) {
				qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[server], 16)
				if err != nil {
					t.Errorf("server QP: %v", err)
					return
				}
				lst, err := c.Nodes[server].QPIP.Listen(port)
				if err != nil {
					t.Errorf("Listen: %v", err)
					return
				}
				lst.Post(qp)
				if qp.WaitEstablished(p) != nil {
					return
				}
				for i := 0; i < 8; i++ {
					qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: 2048})
				}
				for i := 0; i < 8; i++ {
					rcq.Wait(p)
				}
			})
			c.SpawnOn(client, "c", func(p *qpip.Proc) {
				qp, scq, _, err := qpip.NewReliableQP(c.Nodes[client], 16)
				if err != nil {
					t.Errorf("client QP: %v", err)
					return
				}
				if qp.Connect(p, c.Nodes[server].Addr6, port) != nil {
					return
				}
				for i := 0; i < 8; i++ {
					qp.PostSend(p, qpip.SendWR{ID: uint64(i), Payload: qpip.VirtualMessage(2048)})
					scq.Wait(p)
				}
			})
		}
		if slices {
			for i := 0; i < 50; i++ {
				c.RunFor(sim.Millisecond)
			}
			c.Run() // drain any tail
		} else {
			c.Run()
		}
		return c.FiredTotal(), c.EndTime()
	}
	f1, e1 := run(false)
	f2, e2 := run(true)
	if f1 != f2 || e1 != e2 {
		t.Errorf("RunFor slicing diverges: fired %d vs %d, end %v vs %v", f1, f2, e1, e2)
	}
}

// --- Switched topologies and collectives under the parallel runner ---
//
// The multi-hop fabric (DESIGN §15) threads frames through switch egress
// arbiters whose grants depend only on timestamps, and the conservative
// runner's lookahead shrinks to the cheapest cut-crossing path. These
// tests pin the same bit-identity contract as the 4-node matrix on the
// two shapes that stress it most: a 4x4 mesh whose XY routes cross the
// shard cut mid-path, and a ring-topology NIC-offloaded allreduce whose
// firmware messages are the only traffic. Topology plans never use
// Isolate: severed shards refuse multi-hop routes by design.

// topoResult is everything a topology run produces that must be
// identical across shard placements.
type topoResult struct {
	trace    string
	endTime  qpip.Time
	fired    uint64
	stats    fault.Stats
	statuses [16]string
	counters [16]string
}

func (r *topoResult) capture(c *qpip.Cluster, inj *qpip.FaultInjector) {
	r.trace = inj.TraceString()
	r.stats = inj.Stats()
	r.endTime = c.EndTime()
	r.fired = c.FiredTotal()
	for i, n := range c.Nodes {
		r.counters[i] = n.QPIP.Net.String()
	}
}

func assertTopoIdentical(t *testing.T, name string, ref, got topoResult, refMode, gotMode string) {
	t.Helper()
	if ref.trace != got.trace {
		t.Errorf("%s: fault traces diverge between %s and %s", name, refMode, gotMode)
	}
	if ref.endTime != got.endTime {
		t.Errorf("%s: end times diverge: %s=%v %s=%v", name, refMode, ref.endTime, gotMode, got.endTime)
	}
	if ref.fired != got.fired {
		t.Errorf("%s: event counts diverge: %s=%d %s=%d", name, refMode, ref.fired, gotMode, got.fired)
	}
	if ref.stats != got.stats {
		t.Errorf("%s: fault stats diverge: %s=%+v %s=%+v", name, refMode, ref.stats, gotMode, got.stats)
	}
	for i := range ref.statuses {
		if ref.statuses[i] != got.statuses[i] {
			t.Errorf("%s: node %d observation sequences diverge:\n%s: %s\n%s: %s",
				name, i, refMode, ref.statuses[i], gotMode, got.statuses[i])
		}
	}
	for i := range ref.counters {
		if ref.counters[i] != got.counters[i] {
			t.Errorf("%s: node %d counters diverge:\n%s:\n%s\n%s:\n%s",
				name, i, refMode, ref.counters[i], gotMode, got.counters[i])
		}
	}
}

// topoCluster builds an n-node cluster on spec with the given shard
// count (0 = plain sequential engine).
func topoCluster(n, shards int, spec qpip.TopoSpec) *qpip.Cluster {
	cfg := qpip.NodeConfig{QPIP: true, Topology: spec}
	if shards == 0 {
		return qpip.NewCluster(n, cfg)
	}
	return qpip.NewShardedCluster(n, cfg, qpip.ShardPlan{Shards: shards})
}

// runTopoMesh runs four reliable flows across a 4x4 mesh — each route
// crosses the round-robin shard cut at least once — and captures every
// observable.
func runTopoMesh(t *testing.T, shards int, plan qpip.FaultPlan) topoResult {
	t.Helper()
	const n, msgs, msgLen = 16, 16, 2048
	c := topoCluster(n, shards, qpip.TopoSpec{Kind: qpip.TopoMesh, W: 4, H: 4})
	inj := qpip.InjectFaults(c, plan)
	var res topoResult
	flows := [4][2]int{{0, 5}, {2, 7}, {8, 13}, {10, 15}}
	for fi, f := range flows {
		fi, client, server := fi, f[0], f[1]
		port := uint16(7300 + fi)
		c.SpawnOn(server, fmt.Sprintf("mesh-server%d", server), func(p *qpip.Proc) {
			qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[server], 64)
			if err != nil {
				t.Errorf("server %d QP: %v", server, err)
				return
			}
			lst, err := c.Nodes[server].QPIP.Listen(port)
			if err != nil {
				t.Errorf("Listen %d: %v", server, err)
				return
			}
			lst.Post(qp)
			if err := qp.WaitEstablished(p); err != nil {
				res.statuses[server] += fmt.Sprintf("est=%v ", err)
				return
			}
			for i := 0; i < msgs; i++ {
				if err := qp.PostRecv(p, qpip.RecvWR{ID: uint64(i), Capacity: msgLen}); err != nil {
					t.Errorf("PostRecv %d: %v", i, err)
					return
				}
			}
			for i := 0; i < msgs; i++ {
				comp := rcq.Wait(p)
				res.statuses[server] += fmt.Sprintf("r%d=%v ", comp.WRID, comp.Status)
				if comp.Status == qpip.StatusSuccess {
					res.statuses[server] += fmt.Sprintf("len%d ", comp.Payload.Len())
				}
			}
		})
		c.SpawnOn(client, fmt.Sprintf("mesh-client%d", client), func(p *qpip.Proc) {
			qp, scq, _, err := qpip.NewReliableQP(c.Nodes[client], 64)
			if err != nil {
				t.Errorf("client %d QP: %v", client, err)
				return
			}
			if err := qp.Connect(p, c.Nodes[server].Addr6, port); err != nil {
				res.statuses[client] += fmt.Sprintf("conn=%v ", err)
				return
			}
			for i := 0; i < msgs; i++ {
				if err := qp.PostSend(p, qpip.SendWR{ID: uint64(i), Payload: buf.Pattern(msgLen, byte(fi<<4|i&0xf))}); err != nil {
					res.statuses[client] += fmt.Sprintf("post%d=%v ", i, err)
					return
				}
				comp := scq.Wait(p)
				res.statuses[client] += fmt.Sprintf("s%d=%v ", comp.WRID, comp.Status)
			}
		})
	}
	c.Run()
	res.capture(c, inj)
	return res
}

// TestParallelTopologyMesh: the 4x4 mesh workload is bit-identical in
// sequential, 2-shard, and 4-shard placements, fault-free and under
// full link chaos (multi-hop frames are retransmitted like any other).
func TestParallelTopologyMesh(t *testing.T) {
	plans := []struct {
		name string
		plan qpip.FaultPlan
	}{
		{name: "fault-free", plan: qpip.FaultPlan{}},
		{name: "chaos", plan: qpip.FaultPlan{
			Seed:          0xBEEF,
			DropProb:      0.01,
			DupProb:       0.02,
			DelayProb:     0.05,
			MaxExtraDelay: 20_000,
			SkipFirst:     16,
		}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			seq := runTopoMesh(t, 0, tc.plan)
			if t.Failed() {
				return
			}
			two := runTopoMesh(t, 2, tc.plan)
			four := runTopoMesh(t, 4, tc.plan)
			assertTopoIdentical(t, tc.name, seq, two, "sequential", "2-shard")
			assertTopoIdentical(t, tc.name, seq, four, "sequential", "4-shard")
		})
	}
}

// runTopoAllreduce runs three NIC-offloaded ring allreduces on a ring
// topology: the firmware's step messages are the only traffic, so the
// test isolates the collective engine's determinism under sharding.
func runTopoAllreduce(t *testing.T, shards int, plan qpip.FaultPlan) topoResult {
	t.Helper()
	const n, ops, words = 8, 3, 16
	c := topoCluster(n, shards, qpip.TopoSpec{Kind: qpip.TopoRing})
	inj := qpip.InjectFaults(c, plan)
	addrs := make([]qpip.Addr6, n)
	for i := range addrs {
		addrs[i] = c.Nodes[i].Addr6
	}
	var res topoResult
	for i := 0; i < n; i++ {
		i := i
		c.SpawnOn(i, fmt.Sprintf("rank%d", i), func(p *qpip.Proc) {
			cq := qpip.NewCQ(c.Nodes[i], 16)
			q, err := qpip.NewCollQ(c.Nodes[i], 1, i, addrs, cq)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			for op := 0; op < ops; op++ {
				vec := make([]uint64, words)
				for j := range vec {
					vec[j] = uint64(i*100 + op*10 + j)
				}
				if err := q.PostAllreduce(p, uint64(op), vec); err != nil {
					t.Errorf("rank %d op %d: %v", i, op, err)
					return
				}
				comp := cq.Wait(p)
				res.statuses[i] += fmt.Sprintf("c%d=%v:%x ", comp.WRID, comp.Status, comp.Payload.Data())
			}
		})
	}
	c.Run()
	res.capture(c, inj)
	return res
}

// TestParallelTopologyAllreduce: the ring-allreduce plan is bit-identical
// in sequential, 2-shard, and 4-shard placements, fault-free and under
// delay+duplication chaos (the collective engine is dup-safe and
// reorder-safe but has no retransmit, so drops are out of scope).
func TestParallelTopologyAllreduce(t *testing.T) {
	plans := []struct {
		name string
		plan qpip.FaultPlan
	}{
		{name: "fault-free", plan: qpip.FaultPlan{}},
		{name: "delay-dup-chaos", plan: qpip.FaultPlan{
			Seed:          0xABCD,
			DupProb:       0.05,
			DelayProb:     0.10,
			MaxExtraDelay: 15_000,
		}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			seq := runTopoAllreduce(t, 0, tc.plan)
			if t.Failed() {
				return
			}
			two := runTopoAllreduce(t, 2, tc.plan)
			four := runTopoAllreduce(t, 4, tc.plan)
			assertTopoIdentical(t, tc.name, seq, two, "sequential", "2-shard")
			assertTopoIdentical(t, tc.name, seq, four, "sequential", "4-shard")
		})
	}
}
