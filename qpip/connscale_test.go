package qpip_test

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/qpip"
)

// This file is the connection-density property test for the SRQ refactor
// (DESIGN §16): ~1k QPs on one server adapter, all drawing receive
// buffers from a single shared receive queue a fraction of their size,
// under link chaos and an adapter crash. Three properties are pinned:
//
//	exactly-once: every tagged message a client successfully sent is
//	    delivered to exactly one receive WR (chaos plan; the crash plan
//	    relaxes to at-most-once — no tag may ever be claimed twice)
//	replay: running the identical seeded plan twice produces the
//	    bit-identical claim log — the SRQ's device-wide FIFO claim order
//	    is deterministic, not an accident of map iteration
//	sharding: the 2-shard conservative runner, with client and server
//	    nodes on different engines, matches the sequential engine on
//	    every observable (qpip/parallel_test.go's contract, at 16x the
//	    connection count and through the SRQ claim path)

const (
	csConns  = 1024
	csMsgs   = 2
	csMsgLen = 256
	csPort   = 7500
	// csPool is deliberately far below csConns*csMsgs in-flight messages:
	// the storm must drain through claim/repost cycling and RNR
	// backpressure, not a pre-provisioned buffer per message.
	csPool = 384
)

// connscaleResult is everything one run produces that must be identical
// across replays and shard placements.
type connscaleResult struct {
	trace     string
	endTime   qpip.Time
	fired     uint64
	stats     fault.Stats
	delivered string // claim-order log: one "qpn/wr/tag " entry per success
	dupes     int
	missing   int
	counters  [2]string
	clients   string // concatenated per-client completion sequences
}

func connscaleCluster(mode string) *qpip.Cluster {
	cfg := qpip.NodeConfig{QPIP: true, QPIPMaxQPs: csConns + 64}
	switch mode {
	case "sequential":
		return qpip.NewCluster(2, cfg)
	case "2-shard":
		return qpip.NewShardedCluster(2, cfg, qpip.ShardPlan{Shards: 2})
	default:
		panic("unknown mode " + mode)
	}
}

// runConnscale drives csConns clients on node 0 into csConns SRQ-attached
// QPs on node 1 under plan. Each message carries its global tag in the
// payload; the server's claim loop decodes it and records the claim in
// delivery order. strict plans must deliver every tag exactly once;
// non-strict plans (crashes) only require a drained, duplicate-free run.
func runConnscale(t *testing.T, mode string, plan qpip.FaultPlan, strict bool) connscaleResult {
	t.Helper()
	c := connscaleCluster(mode)
	inj := qpip.InjectFaults(c, plan)

	var res connscaleResult
	seen := make([]int, csConns*csMsgs)
	clientLog := make([]string, csConns)

	c.SpawnOn(1, "connscale-server", func(p *qpip.Proc) {
		rcq := qpip.NewCQ(c.Nodes[1], csConns*csMsgs+64)
		scq := qpip.NewCQ(c.Nodes[1], 8)
		srq, err := qpip.NewSRQ(c.Nodes[1], qpip.SRQConfig{Depth: csPool})
		if err != nil {
			t.Errorf("NewSRQ: %v", err)
			return
		}
		lst, err := c.Nodes[1].QPIP.Listen(csPort)
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		for i := 0; i < csConns; i++ {
			qp, err := qpip.NewQPWith(c.Nodes[1], qpip.QPConfig{
				Transport: qpip.Reliable, SendCQ: scq, RecvCQ: rcq,
				SendDepth: 2, SRQ: srq,
			})
			if err != nil {
				t.Errorf("server QP %d: %v", i, err)
				return
			}
			if err := lst.Post(qp); err != nil {
				t.Errorf("Post QP %d: %v", i, err)
				return
			}
		}
		wrID := uint64(0)
		pool := make([]qpip.RecvWR, csPool)
		for i := range pool {
			pool[i] = qpip.RecvWR{ID: wrID, Capacity: csMsgLen}
			wrID++
		}
		if n, err := srq.PostRecvN(p, pool); n != csPool || err != nil {
			t.Errorf("PostRecvN: posted %d/%d, err %v", n, csPool, err)
			return
		}
		// One claim, one repost: a crash plan may starve the loop of its
		// remaining completions, parking it here — Run drains regardless.
		for got := 0; got < csConns*csMsgs; got++ {
			comp := rcq.Wait(p)
			if comp.Status != qpip.StatusSuccess {
				res.delivered += fmt.Sprintf("!%d=%v ", comp.WRID, comp.Status)
				continue
			}
			tag := int(binary.BigEndian.Uint32(comp.Payload.Data()))
			seen[tag]++
			res.delivered += fmt.Sprintf("%d/%d/%d ", comp.QPN, comp.WRID, tag)
			if err := srq.PostRecv(p, qpip.RecvWR{ID: wrID, Capacity: csMsgLen}); err != nil {
				t.Errorf("repost: %v", err)
				return
			}
			wrID++
		}
	})
	for ci := 0; ci < csConns; ci++ {
		ci := ci
		c.SpawnOn(0, fmt.Sprintf("connscale-cli%d", ci), func(p *qpip.Proc) {
			qp, scq, _, err := qpip.NewReliableQP(c.Nodes[0], 4)
			if err != nil {
				t.Errorf("client %d QP: %v", ci, err)
				return
			}
			if err := qp.Connect(p, c.Nodes[1].Addr6, csPort); err != nil {
				clientLog[ci] = fmt.Sprintf("conn=%v ", err)
				return
			}
			for m := 0; m < csMsgs; m++ {
				tag := ci*csMsgs + m
				data := make([]byte, csMsgLen)
				binary.BigEndian.PutUint32(data, uint32(tag))
				if err := qp.PostSend(p, qpip.SendWR{ID: uint64(tag), Payload: qpip.Message(data)}); err != nil {
					clientLog[ci] += fmt.Sprintf("post%d=%v ", m, err)
					return
				}
				comp := scq.Wait(p)
				clientLog[ci] += fmt.Sprintf("s%d=%v ", comp.WRID, comp.Status)
				if strict && comp.Status != qpip.StatusSuccess {
					t.Errorf("client %d send %d completed %v", ci, m, comp.Status)
				}
			}
		})
	}
	c.Run() // a hang here is an SRQ backpressure or shard barrier deadlock
	res.trace = inj.TraceString()
	res.stats = inj.Stats()
	res.endTime = c.EndTime()
	res.fired = c.FiredTotal()
	for i, n := range c.Nodes {
		res.counters[i] = n.QPIP.Net.String()
	}
	res.clients = strings.Join(clientLog, "")
	for _, n := range seen {
		if n > 1 {
			res.dupes++
		}
		if n == 0 {
			res.missing++
		}
	}

	if res.dupes > 0 {
		t.Errorf("mode %s: %d tags delivered more than once", mode, res.dupes)
	}
	if strict && res.missing > 0 {
		t.Errorf("mode %s: %d tags never delivered", mode, res.missing)
	}
	return res
}

// assertConnscaleIdentical compares every observable of two runs.
func assertConnscaleIdentical(t *testing.T, name string, ref, got connscaleResult, refMode, gotMode string) {
	t.Helper()
	if ref.trace != got.trace {
		t.Errorf("%s: fault traces diverge between %s and %s", name, refMode, gotMode)
	}
	if ref.endTime != got.endTime {
		t.Errorf("%s: end times diverge: %s=%v %s=%v", name, refMode, ref.endTime, gotMode, got.endTime)
	}
	if ref.fired != got.fired {
		t.Errorf("%s: event counts diverge: %s=%d %s=%d", name, refMode, ref.fired, gotMode, got.fired)
	}
	if ref.stats != got.stats {
		t.Errorf("%s: fault stats diverge: %s=%+v %s=%+v", name, refMode, ref.stats, gotMode, got.stats)
	}
	if ref.delivered != got.delivered {
		t.Errorf("%s: SRQ claim logs diverge between %s and %s (len %d vs %d)",
			name, refMode, gotMode, len(ref.delivered), len(got.delivered))
	}
	if ref.clients != got.clients {
		t.Errorf("%s: client completion sequences diverge between %s and %s", name, refMode, gotMode)
	}
	for i := range ref.counters {
		if ref.counters[i] != got.counters[i] {
			t.Errorf("%s: node %d counters diverge:\n%s:\n%s\n%s:\n%s",
				name, i, refMode, ref.counters[i], gotMode, got.counters[i])
		}
	}
}

// connscalePlans: seeded link chaos (strict — drops, corruption,
// duplication, and jitter all repair through retransmission), and a
// server-adapter crash/restart mid-storm (non-strict — surviving
// deliveries must still be duplicate-free and bit-identical).
func connscalePlans() []struct {
	name   string
	plan   qpip.FaultPlan
	strict bool
} {
	return []struct {
		name   string
		plan   qpip.FaultPlan
		strict bool
	}{
		{name: "chaos", plan: qpip.FaultPlan{
			Seed:          0x5129,
			DropProb:      0.01,
			CorruptProb:   0.005,
			DupProb:       0.01,
			DelayProb:     0.02,
			MaxExtraDelay: 10_000,
		}, strict: true},
		{name: "crash", plan: qpip.FaultPlan{
			Seed:     23,
			DropProb: 0.005,
			Crashes:  []qpip.Crash{{Node: 1, At: 2 * sim.Millisecond, Down: 10 * sim.Millisecond}},
		}, strict: false},
	}
}

// TestConnscaleSRQProperties is the satellite gate: for each plan, the
// sequential run satisfies the delivery property, a second sequential run
// replays it bit-identically, and the 2-shard run (client and server
// adapters on different engines, every frame crossing the barrier)
// matches both.
func TestConnscaleSRQProperties(t *testing.T) {
	for _, tc := range connscalePlans() {
		t.Run(tc.name, func(t *testing.T) {
			seq := runConnscale(t, "sequential", tc.plan, tc.strict)
			if t.Failed() {
				return
			}
			replay := runConnscale(t, "sequential", tc.plan, tc.strict)
			assertConnscaleIdentical(t, tc.name, seq, replay, "sequential", "sequential-replay")
			two := runConnscale(t, "2-shard", tc.plan, tc.strict)
			assertConnscaleIdentical(t, tc.name, seq, two, "sequential", "2-shard")
		})
	}
}
