package qpip_test

import (
	"bytes"
	"testing"

	"repro/internal/pool"
	"repro/internal/sim"
)

// TestPoolingAndWheelPreserveDeterminism is the PR-2 regression gate: the
// timer wheel, event free list and datapath pools are pure mechanism — the
// simulated world must be bit-for-bit the one the legacy binary heap and
// per-packet allocations produced. Each seed runs the chaos transfer (drops,
// corruption, duplication, jitter) once with every optimization disabled and
// once with everything enabled; the injector trace, completion order,
// delivered bytes and end-of-simulation clock must match exactly.
func TestPoolingAndWheelPreserveDeterminism(t *testing.T) {
	defer sim.SetLegacyQueue(false)
	defer pool.SetEnabled(true)

	run := func(legacy, pooled bool, seed uint64) chaosResult {
		sim.SetLegacyQueue(legacy)
		pool.SetEnabled(pooled)
		return runChaosTransfer(t, seed, 48, 8192)
	}

	for _, seed := range []uint64{0x51EE7, 0xC0FFEE, 7, 0xBEEF} {
		old := run(true, false, seed)
		if t.Failed() {
			return
		}
		new := run(false, true, seed)
		if t.Failed() {
			return
		}
		if old.trace != new.trace {
			t.Errorf("seed %#x: fault trace diverged between legacy and optimized engines", seed)
		}
		if old.endTime != new.endTime {
			t.Errorf("seed %#x: end time diverged: legacy %v, optimized %v", seed, old.endTime, new.endTime)
		}
		if old.statuses != new.statuses {
			t.Errorf("seed %#x: completion sequence diverged", seed)
		}
		if !bytes.Equal(old.received, new.received) {
			t.Errorf("seed %#x: delivered bytes diverged", seed)
		}
	}
}
