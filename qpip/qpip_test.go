package qpip_test

import (
	"testing"

	"repro/qpip"
)

// The facade's quickstart flow: a reliable message end to end, entirely
// through the public API.
func TestPublicAPIQuickstart(t *testing.T) {
	c := qpip.NewQPIPCluster(2)
	var got []byte
	var sendStatus qpip.Completion

	c.Spawn("server", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[1], 64)
		if err != nil {
			t.Errorf("NewReliableQP: %v", err)
			return
		}
		lst, err := c.Nodes[1].QPIP.Listen(7000)
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		if err := lst.Post(qp); err != nil {
			t.Errorf("Post: %v", err)
			return
		}
		if err := qp.WaitEstablished(p); err != nil {
			t.Errorf("establish: %v", err)
			return
		}
		if err := qp.PostRecv(p, qpip.RecvWR{ID: 1, Capacity: 4096}); err != nil {
			t.Errorf("PostRecv: %v", err)
			return
		}
		comp := rcq.Wait(p)
		got = comp.Payload.Data()
	})
	c.Spawn("client", func(p *qpip.Proc) {
		qp, scq, _, err := qpip.NewReliableQP(c.Nodes[0], 64)
		if err != nil {
			t.Errorf("NewReliableQP: %v", err)
			return
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		if err := qp.PostSend(p, qpip.SendWR{ID: 1, Payload: qpip.Message([]byte("hello"))}); err != nil {
			t.Errorf("PostSend: %v", err)
			return
		}
		sendStatus = scq.Wait(p)
	})
	c.Run()
	if string(got) != "hello" {
		t.Fatalf("received %q", got)
	}
	if sendStatus.Status != qpip.StatusSuccess {
		t.Fatalf("send status %v", sendStatus.Status)
	}
}

func TestVirtualMessageAndAddrs(t *testing.T) {
	if qpip.VirtualMessage(100).Len() != 100 {
		t.Error("VirtualMessage length")
	}
	if qpip.NodeAddr6(0) == qpip.NodeAddr6(1) {
		t.Error("node addresses collide")
	}
	if qpip.NodeAddr4(0) == qpip.NodeAddr4(1) {
		t.Error("node v4 addresses collide")
	}
}

func TestUnreliableQPOnFacade(t *testing.T) {
	c := qpip.NewQPIPCluster(2)
	var got qpip.Completion
	c.Spawn("recv", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewUnreliableQP(c.Nodes[1], 16)
		if err != nil {
			t.Errorf("NewUnreliableQP: %v", err)
			return
		}
		if _, err := qp.BindUDP(6000); err != nil {
			t.Errorf("BindUDP: %v", err)
			return
		}
		qp.PostRecv(p, qpip.RecvWR{ID: 1, Capacity: 128})
		got = rcq.Wait(p)
	})
	c.Spawn("send", func(p *qpip.Proc) {
		qp, scq, _, err := qpip.NewUnreliableQP(c.Nodes[0], 16)
		if err != nil {
			t.Errorf("NewUnreliableQP: %v", err)
			return
		}
		if _, err := qp.BindUDP(0); err != nil {
			t.Errorf("BindUDP: %v", err)
			return
		}
		qp.PostSend(p, qpip.SendWR{
			ID: 1, Payload: qpip.Message([]byte("dgram")),
			RemoteAddr: c.Nodes[1].Addr6, RemotePort: 6000,
		})
		scq.Wait(p)
	})
	c.Run()
	if string(got.Payload.Data()) != "dgram" {
		t.Fatalf("received %q", got.Payload.Data())
	}
}
