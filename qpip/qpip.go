// Package qpip is the public API of the QPIP reproduction: Queue Pair IP,
// a hybrid SAN architecture combining the Infiniband-style queue pair
// abstraction with the standard inter-network protocol suite (TCP, UDP,
// IPv6) offloaded onto an intelligent network adapter, after Buonadonna &
// Culler, "Queue Pair IP: A Hybrid Architecture for System Area Networks"
// (ISCA 2002).
//
// The package exposes three layers:
//
//   - Cluster construction: simulated testbeds of nodes carrying QPIP
//     adapters (Myrinet fabric), conventional GigE adapters, and/or
//     Myrinet-as-IP adapters, mirroring the paper's PowerEdge testbed.
//   - The verbs interface: QPs, CQs, work requests and completions —
//     PostSend, PostRecv, Poll, Wait and their batch forms PostSendN,
//     PostRecvN, PollN (one CPU charge and one vectored doorbell per
//     batch), plus TCP-rendezvous connection management handled entirely
//     by the adapter.
//   - Blocking sockets on the host-based baseline stacks, for
//     side-by-side comparison.
//
// A minimal reliable round trip:
//
//	c := qpip.NewQPIPCluster(2)
//	c.Spawn("server", func(p *qpip.Proc) {
//		qp, scq, rcq, _ := qpip.NewReliableQP(c.Node(1), 64)
//		lst, _ := c.Node(1).QPIP.Listen(7000)
//		lst.Post(qp)
//		qp.WaitEstablished(p)
//		qp.PostRecv(p, qpip.RecvWR{ID: 1, Capacity: 4096})
//		comp := rcq.Wait(p)
//		_ = comp.Payload // the message
//		_ = scq
//	})
//	c.Spawn("client", func(p *qpip.Proc) {
//		qp, scq, _, _ := qpip.NewReliableQP(c.Node(0), 64)
//		qp.Connect(p, c.Node(1).Addr6, 7000)
//		qp.PostSend(p, qpip.SendWR{ID: 1, Payload: qpip.Message([]byte("hi"))})
//		scq.Wait(p)
//	})
//	c.Run()
package qpip

import (
	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/qpipnic"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/verbs"
)

// Re-exported simulation types.
type (
	// Proc is a simulated application process.
	Proc = sim.Proc
	// Time is simulated time in nanoseconds.
	Time = sim.Time
)

// Re-exported verbs types: the queue pair interface of paper §3.
type (
	// QP is a queue pair.
	QP = verbs.QP
	// CQ is a completion queue.
	CQ = verbs.CQ
	// SendWR is a send work request.
	SendWR = verbs.SendWR
	// RecvWR is a receive work request.
	RecvWR = verbs.RecvWR
	// Completion is a CQ entry.
	Completion = verbs.Completion
	// Listener is a monitored TCP port that mates incoming connections
	// to idle QPs.
	Listener = verbs.Listener
	// QPConfig sizes a queue pair.
	QPConfig = verbs.QPConfig
	// SRQ is a shared receive queue: one host-resident pool of receive
	// WRs feeding many QPs (QPConfig.SRQ), claimed in FIFO order at
	// delivery time (DESIGN §16).
	SRQ = verbs.SRQ
	// SRQConfig sizes a shared receive queue.
	SRQConfig = verbs.SRQConfig
	// QPExhaustedError is the typed error returned when the adapter's QP
	// state table is full; it carries the table capacity.
	QPExhaustedError = verbs.QPExhaustedError
)

// Re-exported cluster types.
type (
	// Cluster is a simulated testbed.
	Cluster = core.Cluster
	// Node is one simulated server.
	Node = core.Node
	// NodeConfig selects a node's adapters.
	NodeConfig = core.NodeConfig
	// Addr6 is an IPv6 address (QPIP addressing).
	Addr6 = inet.Addr6
	// Addr4 is an IPv4 address (host-stack addressing).
	Addr4 = inet.Addr4
	// Payload is a message payload, real or virtual.
	Payload = buf.Buf
)

// Transport types.
const (
	// Reliable QPs run over offloaded TCP.
	Reliable = verbs.Reliable
	// Unreliable QPs run over offloaded UDP.
	Unreliable = verbs.Unreliable
)

// Switched multi-hop topologies (NodeConfig.Topology, DESIGN §15): the
// Myrinet fabric routes frames through a switch graph with per-egress
// cut-through arbitration instead of the single-crossbar star.
type (
	// TopoSpec selects and sizes a switch topology.
	TopoSpec = topo.Spec
	// TopoKind is a topology family.
	TopoKind = topo.Kind
)

// Topology families. The zero value (TopoNone) keeps the legacy
// single-crossbar star fast path.
const (
	TopoNone    = topo.None
	TopoStar    = topo.Star
	TopoRing    = topo.Ring
	TopoMesh    = topo.Mesh
	TopoFatTree = topo.FatTree
)

// ParseTopoKind parses a topology family name ("star", "ring", "mesh",
// "fattree").
func ParseTopoKind(s string) (TopoKind, error) { return topo.ParseKind(s) }

// NIC-offloaded collectives (DESIGN §15): barrier, broadcast and ring
// reductions executed entirely by the adapters after one initiating post.
type (
	// CollQ is the host handle on one rank's collective-group membership.
	CollQ = verbs.CollQ
	// CollWR is a collective work request.
	CollWR = verbs.CollWR
)

// Collective completion opcodes (Completion.Op).
const (
	OpSend          = verbs.OpSend
	OpRecv          = verbs.OpRecv
	OpBarrier       = verbs.OpBarrier
	OpBcast         = verbs.OpBcast
	OpAllreduce     = verbs.OpAllreduce
	OpReduceScatter = verbs.OpReduceScatter
)

// NewCollQ joins node's QPIP adapter to collective group `group` as rank
// `rank` of len(members); completions land on cq.
func NewCollQ(node *Node, group uint16, rank int, members []Addr6, cq *CQ) (*CollQ, error) {
	return verbs.NewCollQ(node.QPIP, group, rank, members, cq)
}

// MarshalVec / UnmarshalVec convert between result vectors and completion
// payloads (8 bytes per word).
func MarshalVec(vec []uint64) Payload { return verbs.MarshalVec(vec) }
func UnmarshalVec(b Payload) []uint64 { return verbs.UnmarshalVec(b) }

// QP lifecycle states (QP.State), following the Infiniband modify-QP
// model: RESET→INIT→RTR→RTS with SQD and ERR excursions, driven by
// QP.ModifyQP for the host-owned edges (the rendezvous edges belong to
// the adapter). QPConnecting/QPEstablished are the pre-state-machine
// aliases for RTR/RTS.
const (
	QPReset       = verbs.QPReset
	QPInit        = verbs.QPInit
	QPRTR         = verbs.QPRTR
	QPRTS         = verbs.QPRTS
	QPSQD         = verbs.QPSQD
	QPConnecting  = verbs.QPConnecting
	QPEstablished = verbs.QPEstablished
	QPError       = verbs.QPError
	QPClosed      = verbs.QPClosed
)

// QPState is the queue pair lifecycle state.
type QPState = verbs.QPState

// BackoffPolicy is the deterministic exponential-backoff schedule used by
// QP.Reconnect — jitter comes from the seed and attempt ordinal, never
// the wall clock, so reconnect instants replay identically.
type BackoffPolicy = verbs.BackoffPolicy

// Completion statuses.
const (
	StatusSuccess = verbs.StatusSuccess
	StatusFlushed = verbs.StatusFlushed
	// StatusRetryExceeded: the adapter's TCP retry budget ran out — the
	// peer is unreachable and the QP moved to the error state.
	StatusRetryExceeded = verbs.StatusRetryExceeded
	// StatusCQOverflow is the synthetic completion surfacing a CQ sized
	// too small for its completion rate.
	StatusCQOverflow = verbs.StatusCQOverflow
	// StatusRemoteDown: QP.Reconnect exhausted its bounded attempt
	// budget; the remote endpoint is declared down.
	StatusRemoteDown = verbs.StatusRemoteDown
)

// Terminal connection errors surfaced through QP.Err.
var (
	// ErrRetryExceeded: retransmission gave up; the peer is unreachable.
	ErrRetryExceeded = verbs.ErrRetryExceeded
	// ErrNoResources: the adapter's QP/TCB state table is exhausted.
	ErrNoResources = verbs.ErrNoResources
	// ErrConnRefused: the peer answered the connection attempt with a
	// reset (no listener on the port).
	ErrConnRefused = verbs.ErrConnRefused
	// ErrRemoteDown: QP.Reconnect exhausted its attempt budget.
	ErrRemoteDown = verbs.ErrRemoteDown
	// ErrNICDown: the local adapter is down (crashed, mid-reboot).
	ErrNICDown = verbs.ErrNICDown
	// ErrSQDraining: PostSend refused while the QP drains in SQD.
	ErrSQDraining = verbs.ErrSQDraining
	// ErrPeerRestarted: the connection was fenced because the remote
	// adapter rebooted (a frame carried a newer boot epoch).
	ErrPeerRestarted = verbs.ErrPeerRestarted
	// ErrQPExhausted: the adapter's QP state table is full (typed as
	// QPExhaustedError; matches with errors.Is/As).
	ErrQPExhausted = verbs.ErrQPExhausted
	// ErrSRQAttached: the operation is invalid on an SRQ-attached QP
	// (per-QP PostRecv moves to the SRQ).
	ErrSRQAttached = verbs.ErrSRQAttached
)

// NewSRQ creates a shared receive queue on node's QPIP adapter. Attach it
// to QPs at creation time via QPConfig.SRQ.
func NewSRQ(node *Node, cfg SRQConfig) (*SRQ, error) { return verbs.NewSRQ(node.QPIP, cfg) }

// Fault injection (chaos testing): a seeded deterministic plan of drops,
// corruption, duplication, delay and link flaps applied to the fabric.
type (
	// FaultPlan describes the faults to inject.
	FaultPlan = fault.Plan
	// FaultInjector applies a FaultPlan; it records stats and a
	// reproducible event trace.
	FaultInjector = fault.Injector
	// Flap is one scheduled link-down window.
	Flap = fault.Flap
	// Crash is one scheduled adapter crash/restart: the NIC's TCBs,
	// doorbells and firmware state are wiped; surviving peers observe a
	// new boot epoch.
	Crash = fault.Crash
	// Partition is one scheduled one-directional connectivity outage
	// (src→dst frames dropped; the reverse path stays up).
	Partition = fault.Partition
)

// FlapTrain schedules n consecutive down windows on the fabric port,
// starting at start, each down for downDur then up for upDur.
func FlapTrain(port int, start Time, downDur, upDur Time, n int) []Flap {
	return fault.FlapTrain(port, start, downDur, upDur, n)
}

// InjectFaults attaches a seeded fault plan to the cluster's primary
// fabric (Myrinet when present, Ethernet otherwise) and returns the
// injector for stats and trace inspection. Crash entries in the plan are
// scheduled against the nodes' QPIP adapters, indexed by Crash.Node.
func InjectFaults(c *Cluster, plan FaultPlan) *FaultInjector {
	in := fault.NewInjector(plan)
	if c.Myrinet != nil {
		in.Attach(c.Myrinet)
	} else if c.Eth != nil {
		in.Attach(c.Eth)
	}
	if len(plan.Crashes) > 0 {
		targets := make([]fault.Rebootable, len(c.Nodes))
		engs := make([]*sim.Engine, len(c.Nodes))
		for i, n := range c.Nodes {
			targets[i] = n.QPIP
			engs[i] = c.EngineOf(i)
		}
		in.ScheduleCrashesOn(engs, targets...)
	}
	return in
}

// Checksum placement modes for the adapter's receive path.
const (
	ChecksumEmulatedHW = qpipnic.ChecksumEmulatedHW
	ChecksumFirmware   = qpipnic.ChecksumFirmware
)

// SetBatchedBoundary switches the host↔NIC boundary mode process-wide:
// batched (the default — vectored doorbells via PostSendN/PostRecvN,
// whole-FIFO firmware drains, IRQ-coalesced CQ wakes) or per-token (the
// original one-doorbell/one-wake path, kept for equivalence testing and
// perf comparison). Call before building a cluster. With a CQ coalescing
// delay of 0 the two modes produce identical simulated timing.
func SetBatchedBoundary(on bool) { hw.SetBatchedBoundary(on) }

// BatchedBoundary reports the current boundary mode.
func BatchedBoundary() bool { return hw.BatchedBoundary() }

// NewCluster builds n nodes with the given adapter configuration.
func NewCluster(n int, cfg NodeConfig) *Cluster { return core.NewCluster(n, cfg) }

// NewQPIPCluster builds n nodes carrying QPIP adapters at the native
// 16 KB MTU on a Myrinet fabric — the paper's primary configuration.
func NewQPIPCluster(n int) *Cluster {
	return core.NewCluster(n, core.NodeConfig{QPIP: true})
}

// ShardPlan partitions a cluster across parallel shard engines
// (conservative parallel simulation, DESIGN §14). Runs are bit-identical
// to the sequential engine for any shard count.
type ShardPlan = core.ShardPlan

// NewShardedCluster builds n nodes partitioned across plan.Shards engines;
// Run drives them with the conservative parallel runner. Spawn workload
// processes with Cluster.SpawnOn so each runs on its node's shard.
func NewShardedCluster(n int, cfg NodeConfig, plan ShardPlan) *Cluster {
	return core.NewShardedCluster(n, cfg, plan)
}

// NewShardedQPIPCluster is NewQPIPCluster across shards engines, nodes
// assigned round-robin (node i on shard i%shards).
func NewShardedQPIPCluster(n, shards int) *Cluster {
	return core.NewShardedCluster(n, core.NodeConfig{QPIP: true}, core.ShardPlan{Shards: shards})
}

// NewReliableQP creates a reliable (TCP) QP on node with fresh send and
// receive CQs of the given depth.
func NewReliableQP(node *Node, depth int) (*QP, *CQ, *CQ, error) {
	scq := verbs.NewCQ(node.QPIP, depth*2)
	rcq := verbs.NewCQ(node.QPIP, depth*2)
	qp, err := verbs.NewQP(node.QPIP, verbs.QPConfig{
		Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
		SendDepth: depth, RecvDepth: depth,
	})
	return qp, scq, rcq, err
}

// NewCQ creates a standalone completion queue on node's QPIP adapter, for
// applications that share one CQ across several QPs.
func NewCQ(node *Node, depth int) *CQ { return verbs.NewCQ(node.QPIP, depth) }

// NewQPWith creates a QP on node's QPIP adapter with explicit CQs and
// depths (the general form of NewReliableQP/NewUnreliableQP).
func NewQPWith(node *Node, cfg QPConfig) (*QP, error) { return verbs.NewQP(node.QPIP, cfg) }

// NewUnreliableQP creates an unreliable (UDP) QP on node.
func NewUnreliableQP(node *Node, depth int) (*QP, *CQ, *CQ, error) {
	scq := verbs.NewCQ(node.QPIP, depth*2)
	rcq := verbs.NewCQ(node.QPIP, depth*2)
	qp, err := verbs.NewQP(node.QPIP, verbs.QPConfig{
		Transport: verbs.Unreliable, SendCQ: scq, RecvCQ: rcq,
		SendDepth: depth, RecvDepth: depth,
	})
	return qp, scq, rcq, err
}

// Message wraps real bytes as a payload.
func Message(data []byte) Payload { return buf.Bytes(data) }

// VirtualMessage is a content-free payload of n bytes for bulk benchmarks
// (checksums still compute correctly; zero content is implied).
func VirtualMessage(n int) Payload { return buf.Virtual(n) }

// NodeAddr6 returns the deterministic IPv6 address of the i-th node.
func NodeAddr6(i int) Addr6 { return inet.NodeAddr6(i) }

// NodeAddr4 returns the deterministic IPv4 address of the i-th node.
func NodeAddr4(i int) Addr4 { return inet.NodeAddr4(i) }
