package qpip_test

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/qpip"
)

// TestBatchedBoundaryPreservesDeterminism is the PR-4 regression gate: at
// a CQ coalescing delay of 0, the batched host↔NIC boundary (vectored
// doorbells, whole-FIFO drains, IRQ-routed CQ wakes, completion trains)
// is pure mechanism — the simulated world must be bit-for-bit the one the
// per-token boundary produces. Each seed runs the chaos transfer once per
// mode; the injector trace (which embeds event timestamps), completion
// order, delivered bytes and end-of-simulation clock must match exactly.
func TestBatchedBoundaryPreservesDeterminism(t *testing.T) {
	defer qpip.SetBatchedBoundary(true)

	run := func(batched bool, seed uint64) chaosResult {
		qpip.SetBatchedBoundary(batched)
		return runChaosTransfer(t, seed, 48, 8192)
	}

	for _, seed := range []uint64{0x51EE7, 0xC0FFEE, 7, 0xBEEF} {
		per := run(false, seed)
		if t.Failed() {
			return
		}
		bat := run(true, seed)
		if t.Failed() {
			return
		}
		if per.trace != bat.trace {
			t.Errorf("seed %#x: fault trace diverged between per-token and batched boundaries", seed)
		}
		if per.endTime != bat.endTime {
			t.Errorf("seed %#x: end time diverged: per-token %v, batched %v", seed, per.endTime, bat.endTime)
		}
		if per.statuses != bat.statuses {
			t.Errorf("seed %#x: completion sequence diverged", seed)
		}
		if !bytes.Equal(per.received, bat.received) {
			t.Errorf("seed %#x: delivered bytes diverged", seed)
		}
	}
}

// coalescedChaosTransfer is runChaosTransfer's workload on a cluster whose
// CQ event lines are paced (nonzero coalescing delay) — the configuration
// where wakes are deferred and batched, which must still be fully
// deterministic run-to-run.
func coalescedChaosTransfer(t *testing.T, seed uint64, delay qpip.Time) chaosResult {
	t.Helper()
	const msgs, msgLen = 32, 4096
	c := qpip.NewCluster(2, qpip.NodeConfig{
		QPIP:                true,
		QPIPCQCoalescePkts:  16,
		QPIPCQCoalesceDelay: delay,
	})
	inj := qpip.InjectFaults(c, qpip.FaultPlan{
		Seed: seed, DropProb: 0.03, CorruptProb: 0.02, DupProb: 0.03,
		DelayProb: 0.05, MaxExtraDelay: 20_000, SkipFirst: 8,
	})
	var res chaosResult
	c.Spawn("server", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[1], 64)
		if err != nil {
			t.Errorf("server QP: %v", err)
			return
		}
		lst, err := c.Nodes[1].QPIP.Listen(7000)
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			t.Errorf("establish: %v", err)
			return
		}
		rwrs := make([]qpip.RecvWR, msgs)
		for i := range rwrs {
			rwrs[i] = qpip.RecvWR{ID: uint64(i), Capacity: msgLen}
		}
		if _, err := qp.PostRecvN(p, rwrs); err != nil {
			t.Errorf("PostRecvN: %v", err)
			return
		}
		comps := make([]qpip.Completion, msgs)
		for got := 0; got < msgs; {
			rcq.Wait(p)
			got++
			n := rcq.PollN(p, comps[:msgs-got])
			got += n
		}
	})
	c.Spawn("client", func(p *qpip.Proc) {
		qp, scq, _, err := qpip.NewReliableQP(c.Nodes[0], 64)
		if err != nil {
			t.Errorf("client QP: %v", err)
			return
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		wrs := make([]qpip.SendWR, msgs)
		for i := range wrs {
			wrs[i] = qpip.SendWR{ID: uint64(i), Payload: qpip.VirtualMessage(msgLen)}
		}
		sent := 0
		for sent < msgs {
			n, err := qp.PostSendN(p, wrs[sent:])
			if err != nil {
				t.Errorf("PostSendN: %v", err)
				return
			}
			sent += n
		}
		for got := 0; got < msgs; got++ {
			scq.Wait(p)
		}
	})
	c.Run()
	res.trace = inj.TraceString()
	res.endTime = c.Eng.Now()
	return res
}

// TestCoalescedWakesDeterministic: with a nonzero coalescing delay the
// simulated world differs from immediate-wake timing — but the same seed
// must still reproduce the identical fault trace and end time, and the
// delay must actually move simulated time (the knob is live).
func TestCoalescedWakesDeterministic(t *testing.T) {
	if !qpip.BatchedBoundary() {
		t.Skip("coalescing requires the batched boundary")
	}
	const seed = 0xC0FFEE
	delay := 100 * sim.Microsecond
	a := coalescedChaosTransfer(t, seed, delay)
	if t.Failed() {
		return
	}
	b := coalescedChaosTransfer(t, seed, delay)
	if a.trace != b.trace {
		t.Error("same seed produced different fault traces under coalesced wakes")
	}
	if a.endTime != b.endTime {
		t.Errorf("same seed produced different end times: %v vs %v", a.endTime, b.endTime)
	}
	imm := coalescedChaosTransfer(t, seed, 0)
	if imm.endTime == a.endTime {
		t.Log("coalescing delay did not shift the end time (workload may be too sparse); knob liveness not proven here")
	}
}

// TestVectoredDoorbellBackpressure: a send burst far wider than the
// doorbell FIFO must not lose work requests — the batch verbs ring one
// vectored token per call, so even a 256-WR storm through a small FIFO
// stays within capacity and every WR completes.
func TestVectoredDoorbellBackpressure(t *testing.T) {
	defer qpip.SetBatchedBoundary(true)
	qpip.SetBatchedBoundary(true)
	c := qpip.NewQPIPCluster(2)
	const msgs = 256
	done := 0
	c.Spawn("server", func(p *qpip.Proc) {
		qp, _, rcq, err := qpip.NewReliableQP(c.Nodes[1], msgs)
		if err != nil {
			t.Errorf("server QP: %v", err)
			return
		}
		lst, err := c.Nodes[1].QPIP.Listen(7000)
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			t.Errorf("establish: %v", err)
			return
		}
		rwrs := make([]qpip.RecvWR, msgs)
		for i := range rwrs {
			rwrs[i] = qpip.RecvWR{ID: uint64(i), Capacity: 64}
		}
		if _, err := qp.PostRecvN(p, rwrs); err != nil {
			t.Errorf("PostRecvN: %v", err)
			return
		}
		for i := 0; i < msgs; i++ {
			rcq.Wait(p)
			done++
		}
	})
	c.Spawn("client", func(p *qpip.Proc) {
		qp, scq, _, err := qpip.NewReliableQP(c.Nodes[0], msgs)
		if err != nil {
			t.Errorf("client QP: %v", err)
			return
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		wrs := make([]qpip.SendWR, msgs)
		for i := range wrs {
			wrs[i] = qpip.SendWR{ID: uint64(i), Payload: qpip.VirtualMessage(32)}
		}
		sent := 0
		for sent < msgs {
			n, err := qp.PostSendN(p, wrs[sent:])
			if err != nil {
				t.Errorf("PostSendN: %v", err)
				return
			}
			sent += n
		}
		for i := 0; i < msgs; i++ {
			scq.Wait(p)
		}
	})
	c.Run()
	if done != msgs {
		t.Fatalf("delivered %d of %d messages", done, msgs)
	}
	if drops := c.Nodes[0].QPIP.Net.Get("db.drop"); drops != 0 {
		t.Errorf("db.drop = %d: vectored doorbells overran the FIFO", drops)
	}
}
