// Package fault is a deterministic, seeded fault-injection layer for the
// simulated fabrics. A Plan describes what real networks do to frames —
// loss (probabilistic or patterned), bit corruption, duplication, extra
// delay/jitter, and scheduled link down/up flaps — and an Injector applies
// it to a fabric.Fabric through the generalized fault hook.
//
// Determinism is the point: every per-frame decision is a pure function of
// (Plan.Seed, frame ordinal), computed with a self-contained splitmix64
// generator, so the same seed reproduces the identical fault sequence —
// and, because the simulation engine is itself deterministic, the
// identical end-to-end event trace. Chaos tests rely on this to assert the
// DESIGN §8 invariants under randomized-but-reproducible adversity.
//
// Corruption defaults to single-bit flips. The Internet checksum is a
// 16-bit ones'-complement sum, which provably detects any single-bit
// error; multi-bit flips can cancel (the same bit position in two words),
// so plans that need the "corrupted frames are never delivered" guarantee
// keep CorruptBits at 1. Fields no checksum covers (the IPv6 hop limit)
// may still pass through corrupted — as on real networks — without
// affecting payload integrity.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Flap is one scheduled link-down window: frames touching Port (as source
// or destination attachment; -1 matches every port) during [From, To) are
// lost. Two windows back to back model down/up/down cycling.
type Flap struct {
	Port     int
	From, To sim.Time
}

// Plan is a seeded, deterministic description of the faults to inject.
// The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// plan produce the same per-frame decisions.
	Seed uint64

	// DropProb is the probability a frame is lost in transit.
	DropProb float64
	// DropEvery, when > 0, deterministically drops every DropEvery-th
	// frame (ordinals n with (n+1)%DropEvery == 0), independent of Seed.
	DropEvery uint64
	// DropFrames lists explicit frame ordinals to drop (scripted loss).
	DropFrames []uint64

	// CorruptProb is the probability a frame's bytes are damaged in
	// transit. The receiver's real checksums are what catch it.
	CorruptProb float64
	// CorruptBits is how many bit flips a corrupted frame suffers
	// (default 1; see the package comment on checksum detectability).
	CorruptBits int
	// HeaderOnly restricts flips to the IP and transport headers, leaving
	// (possibly virtual) payloads untouched.
	HeaderOnly bool

	// DupProb is the probability a delivered frame arrives twice.
	DupProb float64

	// DelayProb is the probability a frame suffers extra queueing delay,
	// uniform in (0, MaxExtraDelay].
	DelayProb     float64
	MaxExtraDelay sim.Time

	// SkipFirst exempts the first SkipFirst frames from probabilistic
	// faults (handshake grace); patterned drops and flaps still apply.
	SkipFirst uint64

	// Flaps are scheduled link-down windows.
	Flaps []Flap

	// Partitions are scheduled one-directional connectivity holes
	// (crash.go); asymmetric by construction, unlike Flaps.
	Partitions []Partition

	// Crashes are scheduled adapter reboots, applied with
	// Injector.ScheduleCrashes (crash.go). They are time-driven, not
	// frame-driven, so they do not consume frame ordinals.
	Crashes []Crash
}

// Decision is the fault outcome for one frame. The zero value passes the
// frame through untouched.
type Decision struct {
	Drop    bool
	Flapped bool // Drop caused by a link-down window
	// CorruptBits are bit offsets (from the start of the corruptible
	// region) to flip in a cloned copy of the frame.
	CorruptBits []int
	Duplicate   bool
	ExtraDelay  sim.Time
}

// Event is one applied fault, recorded for trace comparison across runs.
type Event struct {
	N        uint64
	At       sim.Time
	Src, Dst int
	Kind     string // "drop", "flap", "corrupt", "dup", "delay"
	Arg      int64  // bit offset (corrupt) or ns (delay)
}

func (e Event) String() string {
	return fmt.Sprintf("n=%d t=%d %d->%d %s(%d)", e.N, int64(e.At), e.Src, e.Dst, e.Kind, e.Arg)
}

// Stats counts applied faults by kind.
type Stats struct {
	Drops, FlapDrops, Corrupts, Dups, Delays uint64
	PartitionDrops, Crashes                  uint64
}

// lane is one source's private fault record. Frame lanes are indexed by
// source attachment, crash lanes by node — each written only from that
// source's (or node's) shard engine, so sharded runs never share a lane.
type lane struct {
	stats Stats
	log   []Event
}

// Injector applies a Plan to frames. It is attached to a fabric with
// Attach, or driven directly through Decide by pure-protocol harnesses.
//
// All mutable state is partitioned into per-source lanes: frame ordinals,
// the decision RNG stream, statistics, and the event log are all keyed by
// the sending attachment. That makes every decision a pure function of
// (Plan, src, per-src ordinal, send time) — independent of how frames from
// different sources interleave — which is what lets a sharded run (sources
// advancing concurrently) reproduce the sequential run's fault sequence
// exactly. Events and TraceString present the lanes merged into one
// canonical order.
type Injector struct {
	plan       Plan
	frameLanes []lane // indexed by source attachment
	crashLanes []lane // indexed by crash target node
}

// NewInjector builds an injector for plan.
func NewInjector(plan Plan) *Injector {
	if plan.CorruptBits <= 0 {
		plan.CorruptBits = 1
	}
	return &Injector{plan: plan}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// frameLane returns src's lane, growing the table as needed. Growth only
// happens single-threaded (harness use, or Attach presizing before the
// run); during a sharded run every lane already exists.
func (in *Injector) frameLane(src int) *lane {
	for src >= len(in.frameLanes) {
		in.frameLanes = append(in.frameLanes, lane{})
	}
	return &in.frameLanes[src]
}

func (in *Injector) crashLane(node int) *lane {
	for node >= len(in.crashLanes) {
		in.crashLanes = append(in.crashLanes, lane{})
	}
	return &in.crashLanes[node]
}

// Stats reports applied-fault counts, summed over lanes.
func (in *Injector) Stats() Stats {
	var s Stats
	for _, set := range [][]lane{in.frameLanes, in.crashLanes} {
		for i := range set {
			l := &set[i].stats
			s.Drops += l.Drops
			s.FlapDrops += l.FlapDrops
			s.Corrupts += l.Corrupts
			s.Dups += l.Dups
			s.Delays += l.Delays
			s.PartitionDrops += l.PartitionDrops
			s.Crashes += l.Crashes
		}
	}
	return s
}

// eventClass separates frame-lane kinds from crash-lane kinds so the
// canonical merge has a total order even when a node's crash coincides with
// one of its frames.
func eventClass(kind string) int {
	if kind == "crash" || kind == "restart" {
		return 1
	}
	return 0
}

// Events returns the applied-fault log in canonical order: sorted by
// (time, source, kind class), with each lane's internal order preserved.
// The canonical order is a pure function of the per-lane logs, so
// sequential and sharded runs of the same plan render identical traces.
func (in *Injector) Events() []Event {
	var all []Event
	for _, set := range [][]lane{in.frameLanes, in.crashLanes} {
		for i := range set {
			all = append(all, set[i].log...)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		if all[i].Src != all[j].Src {
			return all[i].Src < all[j].Src
		}
		return eventClass(all[i].Kind) < eventClass(all[j].Kind)
	})
	return all
}

// TraceString renders the fault log, one event per line — two runs of the
// same seeded simulation must produce byte-identical trace strings,
// regardless of shard count.
func (in *Injector) TraceString() string {
	var b strings.Builder
	for _, e := range in.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// splitmix64 advances a splitmix64 state and returns the next value.
// Self-contained so fault sequences are stable across Go releases
// (math/rand's stream is not part of its compatibility promise).
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// frameRNG derives an independent generator for frame n, so decisions do
// not depend on the interleaving of frames across links.
func frameRNG(seed, n uint64) uint64 {
	s := seed ^ (n+1)*0x9e3779b97f4a7c15
	splitmix64(&s)
	return s
}

// laneSeed decorrelates the per-source decision streams: frame n from
// source 2 must not suffer the same faults as frame n from source 3.
func laneSeed(seed uint64, src int) uint64 {
	return seed ^ (uint64(src)+1)*0x9e3779b97f4a7c15
}

// roll returns a uniform float64 in [0, 1).
func roll(s *uint64) float64 { return float64(splitmix64(s)>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func intn(s *uint64, n int) int {
	if n <= 0 {
		return 0
	}
	return int(splitmix64(s) % uint64(n))
}

// flapped reports whether a frame touching src or dst at time now falls in
// a down window.
func (p *Plan) flapped(now sim.Time, src, dst int) bool {
	for _, f := range p.Flaps {
		if now < f.From || now >= f.To {
			continue
		}
		if f.Port < 0 || f.Port == src || f.Port == dst {
			return true
		}
	}
	return false
}

// Decide computes the fault decision for frame ordinal n sent at time now
// between attachments src and dst. The ordinal counts frames from THIS
// source (per-source, matching the fabric's per-port counters), so the
// decision stream of one source is untouched by traffic on others.
// corruptible is the number of bytes bit flips may land in (0 disables
// corruption for this frame). Each decision is logged in src's lane;
// Decide must be called at most once per (src, n).
func (in *Injector) Decide(n uint64, now sim.Time, src, dst int, corruptible int) Decision {
	p := &in.plan
	ln := in.frameLane(src)
	var d Decision
	note := func(kind string, arg int64) {
		ln.log = append(ln.log, Event{N: n, At: now, Src: src, Dst: dst, Kind: kind, Arg: arg})
	}
	// Scheduled and patterned faults fire regardless of SkipFirst.
	if p.flapped(now, src, dst) {
		d.Drop, d.Flapped = true, true
		ln.stats.FlapDrops++
		note("flap", 0)
		return d
	}
	if p.partitioned(now, src, dst) {
		d.Drop, d.Flapped = true, true
		ln.stats.PartitionDrops++
		note("partition", 0)
		return d
	}
	if p.DropEvery > 0 && (n+1)%p.DropEvery == 0 {
		d.Drop = true
		ln.stats.Drops++
		note("drop", 0)
		return d
	}
	for _, fn := range p.DropFrames {
		if fn == n {
			d.Drop = true
			ln.stats.Drops++
			note("drop", 0)
			return d
		}
	}
	if n < p.SkipFirst {
		return d
	}
	rng := frameRNG(laneSeed(p.Seed, src), n)
	if p.DropProb > 0 && roll(&rng) < p.DropProb {
		d.Drop = true
		ln.stats.Drops++
		note("drop", 0)
		return d
	}
	if p.CorruptProb > 0 && corruptible > 0 && roll(&rng) < p.CorruptProb {
		for i := 0; i < p.CorruptBits; i++ {
			bit := intn(&rng, corruptible*8)
			d.CorruptBits = append(d.CorruptBits, bit)
			ln.stats.Corrupts++
			note("corrupt", int64(bit))
		}
	}
	if p.DupProb > 0 && roll(&rng) < p.DupProb {
		d.Duplicate = true
		ln.stats.Dups++
		note("dup", 0)
	}
	if p.DelayProb > 0 && p.MaxExtraDelay > 0 && roll(&rng) < p.DelayProb {
		d.ExtraDelay = sim.Time(intn(&rng, int(p.MaxExtraDelay))) + 1
		ln.stats.Delays++
		note("delay", int64(d.ExtraDelay))
	}
	return d
}

// Attach installs the injector as fab's fault hook. The fabric supplies
// the frame's per-source ordinal and the sending engine's clock (flap and
// partition windows are evaluated against the source shard's time). Lanes
// are presized for every existing attachment so a sharded run never grows
// the lane table concurrently.
func (in *Injector) Attach(fab *fabric.Fabric) {
	if fab.Ports() > 0 {
		in.frameLane(fab.Ports() - 1)
	}
	fab.Fault = func(fr *fabric.Frame, n uint64, now sim.Time) fabric.FaultDecision {
		return in.Apply(fr, n, now)
	}
}

// Apply converts a Decide outcome into the fabric-level decision,
// materializing a corrupted clone of the frame when bits are flipped.
func (in *Injector) Apply(fr *fabric.Frame, n uint64, now sim.Time) fabric.FaultDecision {
	corruptible := 0
	pkt, isPkt := fr.Payload.(*wire.Packet)
	if isPkt {
		if in.plan.HeaderOnly {
			corruptible = len(pkt.IPHdr) + len(pkt.L4Hdr)
		} else {
			corruptible = pkt.Len()
		}
	}
	d := in.Decide(n, now, fr.Src, fr.Dst, corruptible)
	fd := fabric.FaultDecision{
		Drop:       d.Drop,
		Duplicate:  d.Duplicate,
		ExtraDelay: d.ExtraDelay,
	}
	if len(d.CorruptBits) > 0 && isPkt {
		clone := *fr
		clone.Payload = corruptPacket(pkt, d.CorruptBits)
		fd.Replace = &clone
	}
	return fd
}

// corruptPacket clones pkt and flips the given bits. Cloning matters: the
// original packet's payload Buf is shared with the sender's retransmission
// flight queue, and damaging it would corrupt the retransmission too —
// the wire damages the copy in transit, not the sender's memory.
func corruptPacket(pkt *wire.Packet, bits []int) *wire.Packet {
	clone := &wire.Packet{
		IsV4:    pkt.IsV4,
		IPHdr:   append([]byte(nil), pkt.IPHdr...),
		L4Hdr:   append([]byte(nil), pkt.L4Hdr...),
		Payload: pkt.Payload,
		Epoch:   pkt.Epoch,
	}
	var pay []byte
	ipLen, l4Len := len(clone.IPHdr), len(clone.L4Hdr)
	for _, bit := range bits {
		idx, mask := bit/8, byte(1)<<(bit%8)
		switch {
		case idx < ipLen:
			clone.IPHdr[idx] ^= mask
		case idx < ipLen+l4Len:
			clone.L4Hdr[idx-ipLen] ^= mask
		default:
			off := idx - ipLen - l4Len
			if off >= pkt.Payload.Len() {
				continue
			}
			if pay == nil {
				pay = append([]byte(nil), pkt.Payload.Data()...)
			}
			pay[off] ^= mask
		}
	}
	if pay != nil {
		clone.Payload = buf.Bytes(pay)
	}
	return clone
}
