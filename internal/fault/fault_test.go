package fault

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestDeterminism: two injectors built from the same plan must make
// byte-identical decision sequences — the property every chaos test's
// "same seed, same trace" assertion stands on.
func TestDeterminism(t *testing.T) {
	plan := Plan{
		Seed:          42,
		DropProb:      0.1,
		CorruptProb:   0.1,
		DupProb:       0.05,
		DelayProb:     0.2,
		MaxExtraDelay: 1000,
	}
	a, b := NewInjector(plan), NewInjector(plan)
	for n := uint64(0); n < 5000; n++ {
		da := a.Decide(n, sim.Time(n*10), 0, 1, 100)
		db := b.Decide(n, sim.Time(n*10), 0, 1, 100)
		if da.Drop != db.Drop || da.Duplicate != db.Duplicate ||
			da.ExtraDelay != db.ExtraDelay || len(da.CorruptBits) != len(db.CorruptBits) {
			t.Fatalf("frame %d: decisions diverge: %+v vs %+v", n, da, db)
		}
	}
	if a.TraceString() != b.TraceString() {
		t.Fatal("fault traces diverge for identical plans")
	}
	if a.TraceString() == "" {
		t.Fatal("plan with faults produced an empty trace")
	}
}

// TestInterleavingIndependence: the decision for frame ordinal n must not
// depend on which ordinals were decided before it (frames on different
// links interleave nondeterministically relative to each other).
func TestInterleavingIndependence(t *testing.T) {
	plan := Plan{Seed: 7, DropProb: 0.3, DupProb: 0.3}
	a, b := NewInjector(plan), NewInjector(plan)
	// a sees 0..99 in order; b sees only the even ordinals.
	var aDec, bDec []Decision
	for n := uint64(0); n < 100; n++ {
		aDec = append(aDec, a.Decide(n, 0, 0, 1, 0))
	}
	for n := uint64(0); n < 100; n += 2 {
		bDec = append(bDec, b.Decide(n, 0, 0, 1, 0))
	}
	for i, d := range bDec {
		ref := aDec[2*i]
		if d.Drop != ref.Drop || d.Duplicate != ref.Duplicate || d.ExtraDelay != ref.ExtraDelay {
			t.Fatalf("frame %d: decision depends on call history: %+v vs %+v", 2*i, d, ref)
		}
	}
}

func TestPatternedDrops(t *testing.T) {
	in := NewInjector(Plan{DropEvery: 10, DropFrames: []uint64{3}})
	var dropped []uint64
	for n := uint64(0); n < 30; n++ {
		if in.Decide(n, 0, 0, 1, 0).Drop {
			dropped = append(dropped, n)
		}
	}
	want := []uint64{3, 9, 19, 29}
	if len(dropped) != len(want) {
		t.Fatalf("dropped %v, want %v", dropped, want)
	}
	for i := range want {
		if dropped[i] != want[i] {
			t.Fatalf("dropped %v, want %v", dropped, want)
		}
	}
	if in.Stats().Drops != 4 {
		t.Fatalf("Drops = %d, want 4", in.Stats().Drops)
	}
}

func TestFlapWindows(t *testing.T) {
	in := NewInjector(Plan{Flaps: []Flap{
		{Port: 2, From: 100, To: 200},
		{Port: -1, From: 500, To: 600},
	}})
	cases := []struct {
		now      sim.Time
		src, dst int
		want     bool
	}{
		{50, 2, 3, false},  // before window
		{100, 2, 3, true},  // src matches, inclusive start
		{150, 0, 2, true},  // dst matches
		{150, 0, 1, false}, // port 2 window, other ports fine
		{200, 2, 3, false}, // exclusive end
		{550, 7, 8, true},  // -1 matches everything
	}
	for i, c := range cases {
		d := in.Decide(uint64(i), c.now, c.src, c.dst, 0)
		if d.Drop != c.want || d.Flapped != c.want {
			t.Errorf("case %d (t=%d %d->%d): Drop=%v Flapped=%v, want %v",
				i, c.now, c.src, c.dst, d.Drop, d.Flapped, c.want)
		}
	}
	if in.Stats().FlapDrops != 3 {
		t.Fatalf("FlapDrops = %d, want 3", in.Stats().FlapDrops)
	}
}

// TestSkipFirst: probabilistic faults spare the first SkipFirst frames
// (handshake grace) but patterned drops still fire.
func TestSkipFirst(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, DropProb: 1.0, SkipFirst: 10, DropEvery: 4})
	for n := uint64(0); n < 10; n++ {
		d := in.Decide(n, 0, 0, 1, 0)
		patterned := (n+1)%4 == 0
		if d.Drop != patterned {
			t.Fatalf("frame %d: Drop=%v, want %v (patterned only)", n, d.Drop, patterned)
		}
	}
	if !in.Decide(10, 0, 0, 1, 0).Drop {
		t.Fatal("frame 10: DropProb=1 must drop past SkipFirst")
	}
}

// TestDropRate sanity-checks the probabilistic drop frequency.
func TestDropRate(t *testing.T) {
	in := NewInjector(Plan{Seed: 99, DropProb: 0.25})
	const frames = 20000
	for n := uint64(0); n < frames; n++ {
		in.Decide(n, 0, 0, 1, 0)
	}
	got := float64(in.Stats().Drops) / frames
	if got < 0.22 || got > 0.28 {
		t.Fatalf("drop rate %.4f, want ~0.25", got)
	}
}

func testPacket() *wire.Packet {
	ip := make([]byte, 40)
	l4 := make([]byte, 20)
	for i := range ip {
		ip[i] = byte(i)
	}
	for i := range l4 {
		l4[i] = byte(0x40 + i)
	}
	return &wire.Packet{IPHdr: ip, L4Hdr: l4, Payload: buf.Pattern(64, 3)}
}

// TestCorruptionClones: Apply must damage a clone of the frame, never the
// original — the sender's retransmission queue shares the payload Buf.
func TestCorruptionClones(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, CorruptProb: 1.0})
	pkt := testPacket()
	origIP := append([]byte(nil), pkt.IPHdr...)
	origL4 := append([]byte(nil), pkt.L4Hdr...)
	origPay := append([]byte(nil), pkt.Payload.Data()...)
	fr := &fabric.Frame{Src: 0, Dst: 1, WireSize: pkt.Len(), Payload: pkt}

	fd := in.Apply(fr, 0, 0)
	if fd.Replace == nil {
		t.Fatal("CorruptProb=1 produced no replacement frame")
	}
	cpkt := fd.Replace.Payload.(*wire.Packet)
	diff := 0
	for i := range origIP {
		if cpkt.IPHdr[i] != origIP[i] {
			diff++
		}
	}
	for i := range origL4 {
		if cpkt.L4Hdr[i] != origL4[i] {
			diff++
		}
	}
	cpay := cpkt.Payload.Data()
	for i := range origPay {
		if cpay[i] != origPay[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("corrupted clone is identical to the original")
	}
	// Original untouched.
	for i := range origIP {
		if pkt.IPHdr[i] != origIP[i] {
			t.Fatal("corruption mutated the original IP header")
		}
	}
	for i := range origL4 {
		if pkt.L4Hdr[i] != origL4[i] {
			t.Fatal("corruption mutated the original L4 header")
		}
	}
	pay := pkt.Payload.Data()
	for i := range origPay {
		if pay[i] != origPay[i] {
			t.Fatal("corruption mutated the original payload")
		}
	}
}

// TestHeaderOnlyCorruption: with HeaderOnly set, payload bytes never flip.
func TestHeaderOnlyCorruption(t *testing.T) {
	in := NewInjector(Plan{Seed: 8, CorruptProb: 1.0, CorruptBits: 4, HeaderOnly: true})
	for n := uint64(0); n < 50; n++ {
		pkt := testPacket()
		orig := append([]byte(nil), pkt.Payload.Data()...)
		fr := &fabric.Frame{Src: 0, Dst: 1, WireSize: pkt.Len(), Payload: pkt}
		fd := in.Apply(fr, n, 0)
		if fd.Replace == nil {
			t.Fatalf("frame %d: no corruption applied", n)
		}
		got := fd.Replace.Payload.(*wire.Packet).Payload.Data()
		for i := range orig {
			if got[i] != orig[i] {
				t.Fatalf("frame %d: HeaderOnly plan flipped payload byte %d", n, i)
			}
		}
	}
}

// TestZeroPlanPassthrough: the zero plan touches nothing.
func TestZeroPlanPassthrough(t *testing.T) {
	in := NewInjector(Plan{})
	for n := uint64(0); n < 1000; n++ {
		d := in.Decide(n, sim.Time(n), 0, 1, 100)
		if d.Drop || d.Duplicate || d.ExtraDelay != 0 || len(d.CorruptBits) != 0 {
			t.Fatalf("frame %d: zero plan injected a fault: %+v", n, d)
		}
	}
	if len(in.Events()) != 0 {
		t.Fatalf("zero plan logged %d events", len(in.Events()))
	}
}
