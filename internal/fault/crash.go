package fault

import (
	"sort"

	"repro/internal/sim"
)

// This file extends the fault layer from link-level adversity (drops,
// flaps) to node-level adversity: adapter crash/restart windows,
// asymmetric partitions, and sustained-flap trains (DESIGN §13). Crash
// scheduling is time-driven (engine timers), not frame-driven, so it
// composes with the per-frame Decide pipeline without perturbing frame
// ordinals.

// Crash is one scheduled adapter reboot: the node's NIC crashes at At
// (wiping NIC-resident TCBs, doorbells, and firmware state) and restarts
// after Down. A zero Down restarts the adapter at the next instant —
// "power blink" — while a Down of forever (1<<62) models a dead node.
type Crash struct {
	// Node indexes Plan-level crash targets (ScheduleCrashes maps it onto
	// the Rebootable passed at the same position).
	Node int
	At   sim.Time
	Down sim.Time
}

// Partition is one scheduled one-directional connectivity hole: frames
// from attachment Src to attachment Dst during [From, To) are lost.
// -1 wildcards either side. Two mirrored entries model a symmetric
// partition; a single entry is the asymmetric case (A hears B, B does not
// hear A) that link-level flaps cannot express.
type Partition struct {
	Src, Dst int
	From, To sim.Time
}

// FlapTrain builds n back-to-back down windows on port: down for downDur,
// up for upDur, repeating — the sustained-flap scenario where a link
// bounces faster than connections can stabilize.
func FlapTrain(port int, start, downDur, upDur sim.Time, n int) []Flap {
	flaps := make([]Flap, 0, n)
	at := start
	for i := 0; i < n; i++ {
		flaps = append(flaps, Flap{Port: port, From: at, To: at + downDur})
		at += downDur + upDur
	}
	return flaps
}

// Rebootable is an adapter that can crash and restart — qpipnic.NIC
// implements it. Crash wipes device-resident state and fails every QP;
// Restart brings the device back with a fresh boot epoch.
type Rebootable interface {
	Crash()
	Restart()
}

// partitioned reports whether a frame from src to dst at time now falls in
// a partition hole.
func (p *Plan) partitioned(now sim.Time, src, dst int) bool {
	for _, pa := range p.Partitions {
		if now < pa.From || now >= pa.To {
			continue
		}
		if (pa.Src < 0 || pa.Src == src) && (pa.Dst < 0 || pa.Dst == dst) {
			return true
		}
	}
	return false
}

// ScheduleCrashes installs the plan's crash windows on eng: each Crash
// entry's Node indexes into targets. Crash/restart instants are logged as
// fault events (kinds "crash" and "restart") so two runs of the same plan
// produce identical trace strings. Entries are scheduled in (At, Node)
// order so coincident crashes fire deterministically.
func (in *Injector) ScheduleCrashes(eng *sim.Engine, targets ...Rebootable) {
	engs := make([]*sim.Engine, len(targets))
	for i := range engs {
		engs[i] = eng
	}
	in.ScheduleCrashesOn(engs, targets...)
}

// ScheduleCrashesOn is ScheduleCrashes with one engine per target: each
// node's crash and restart events run on that node's shard engine, and the
// log entries land in that node's private crash lane — so a sharded run
// reboots adapters at the same instants, in the same canonical trace order,
// as the sequential run.
func (in *Injector) ScheduleCrashesOn(engs []*sim.Engine, targets ...Rebootable) {
	if len(engs) != len(targets) {
		panic("fault: ScheduleCrashesOn needs one engine per target")
	}
	if len(targets) > 0 {
		in.crashLane(len(targets) - 1) // presize: no lane growth once shards run
	}
	crashes := append([]Crash(nil), in.plan.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].At != crashes[j].At {
			return crashes[i].At < crashes[j].At
		}
		return crashes[i].Node < crashes[j].Node
	})
	for _, c := range crashes {
		if c.Node < 0 || c.Node >= len(targets) {
			continue
		}
		t := targets[c.Node]
		eng := engs[c.Node]
		node := c.Node
		down := c.Down
		eng.At(c.At, "fault.crash", func() {
			ln := &in.crashLanes[node]
			ln.stats.Crashes++
			ln.log = append(ln.log, Event{At: eng.Now(), Src: node, Dst: node, Kind: "crash"})
			t.Crash()
			eng.After(down, "fault.restart", func() {
				ln.log = append(ln.log, Event{At: eng.Now(), Src: node, Dst: node, Kind: "restart"})
				t.Restart()
			})
		})
	}
}
