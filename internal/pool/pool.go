// Package pool holds the process-wide switch for datapath object pooling.
//
// The hot-path packages (tcp, wire, fabric) draw their per-packet objects —
// segments, packets, frames — from sync.Pools when pooling is enabled, and
// fall back to plain allocation when it is disabled. The switch exists so
// benchmarks and the chaos determinism tests can run the exact pre-pooling
// allocation behaviour ("old path") and the pooled behaviour in the same
// binary and compare traces and costs.
//
// SetEnabled must only be called while no simulation is running: the flag is
// read without synchronization on hot paths, so toggling it concurrently
// with engine execution is a data race. The benchmark harness toggles it
// between phases, before any worker goroutines start.
package pool

var enabled = true

// Enabled reports whether datapath pooling is on (the default).
func Enabled() bool { return enabled }

// SetEnabled switches datapath pooling on or off for subsequently created
// objects. Call only between simulation runs; see the package comment.
func SetEnabled(v bool) { enabled = v }
