package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestStagesAccumulate(t *testing.T) {
	s := NewStages()
	s.Add("Get WR", 5500*sim.Nanosecond)
	s.Add("Get WR", 5500*sim.Nanosecond)
	s.Add("Send", 1000*sim.Nanosecond)
	if got := s.Mean("Get WR"); got != 5.5 {
		t.Errorf("Mean = %v, want 5.5", got)
	}
	if st := s.Get("Get WR"); st.Count != 2 {
		t.Errorf("Count = %d", st.Count)
	}
	if got := s.Mean("missing"); got != 0 {
		t.Errorf("Mean(missing) = %v", got)
	}
}

func TestStagesNamesSorted(t *testing.T) {
	s := NewStages()
	s.Add("b", 1)
	s.Add("a", 1)
	s.Add("c", 1)
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
}

func TestStagesReset(t *testing.T) {
	s := NewStages()
	ctr := s.Counter("x")
	s.Add("x", 100)
	s.Reset()
	if st := s.Get("x"); st != nil && st.Count != 0 {
		t.Error("Reset did not clear")
	}
	if len(s.Names()) != 0 {
		t.Errorf("Names after Reset = %v, want none", s.Names())
	}
	// Counter pointers survive Reset so hot paths can cache them.
	ctr.Observe(200)
	if got := s.Mean("x"); got != 0.2 {
		t.Errorf("Mean after Reset+Observe = %v, want 0.2", got)
	}
}

func TestStagesString(t *testing.T) {
	s := NewStages()
	s.Add("Media Rcv", sim.Microsecond)
	out := s.String()
	if !strings.Contains(out, "Media Rcv") || !strings.Contains(out, "1.00") {
		t.Errorf("String() = %q", out)
	}
}

func TestMeanMicrosZeroCount(t *testing.T) {
	var st Stage
	if st.MeanMicros() != 0 {
		t.Error("empty stage mean nonzero")
	}
}
