// Package trace provides the instrumentation used to regenerate the
// paper's occupancy tables: named stage timers (Tables 2 and 3 are
// per-stage means measured with the LANai cycle counter) and simple
// counters.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Stage accumulates observations of one named processing stage.
type Stage struct {
	Count uint64
	Total sim.Time
}

// MeanMicros reports the mean stage time in microseconds.
func (s *Stage) MeanMicros() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Total.Micros() / float64(s.Count)
}

// Observe records one observation directly on the accumulator. Holders
// obtained via Counter use this on hot paths to skip the map lookup.
func (s *Stage) Observe(d sim.Time) {
	s.Count++
	s.Total += d
}

// Stages is a set of named stage timers.
type Stages struct {
	m map[string]*Stage
}

// NewStages returns an empty stage set.
func NewStages() *Stages { return &Stages{m: make(map[string]*Stage)} }

// Add records one observation of duration d for the named stage.
func (s *Stages) Add(name string, d sim.Time) {
	st := s.m[name]
	if st == nil {
		st = &Stage{}
		s.m[name] = st
	}
	st.Count++
	st.Total += d
}

// Counter returns the named stage accumulator, creating it if needed. The
// pointer stays valid across Reset (which zeroes accumulators in place), so
// callers can resolve it once and Observe per event with no map lookup.
func (s *Stages) Counter(name string) *Stage {
	st := s.m[name]
	if st == nil {
		st = &Stage{}
		s.m[name] = st
	}
	return st
}

// Get returns the named stage (nil if never observed).
func (s *Stages) Get(name string) *Stage { return s.m[name] }

// Mean reports the mean time in microseconds for the named stage (0 if
// never observed).
func (s *Stages) Mean(name string) float64 {
	st := s.m[name]
	if st == nil {
		return 0
	}
	return st.MeanMicros()
}

// Names reports all stage names with at least one observation, sorted.
// Counters resolved eagerly but never observed stay invisible.
func (s *Stages) Names() []string {
	out := make([]string, 0, len(s.m))
	for k, st := range s.m {
		if st.Count > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Reset zeroes all stages in place, preserving pointers handed out by
// Counter.
func (s *Stages) Reset() {
	for _, st := range s.m {
		st.Count, st.Total = 0, 0
	}
}

// String renders the stage table.
func (s *Stages) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		st := s.m[n]
		fmt.Fprintf(&b, "%-24s %8d x %8.2f us\n", n, st.Count, st.MeanMicros())
	}
	return b.String()
}

// Counters is a set of named monotonic event counters — the per-stack
// drop/corrupt/retransmit accounting the fault-injection layer and the
// chaos benches read. Names are dotted paths ("rx.corrupt",
// "tx.retransmit") so related counters sort together.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta uint64) { c.m[name] += delta }

// Get reports the named counter (0 if never incremented).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// AddAll merges every counter from src into c — the chaos report uses it
// to sum per-node adapter counters into one cluster-wide view.
func (c *Counters) AddAll(src *Counters) {
	for k, v := range src.m {
		c.m[k] += v
	}
}

// Names reports all incremented counter names, sorted.
func (c *Counters) Names() []string {
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset clears all counters.
func (c *Counters) Reset() { c.m = make(map[string]uint64) }

// String renders the counter table.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%-24s %10d\n", n, c.m[n])
	}
	return b.String()
}
