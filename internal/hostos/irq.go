package hostos

import (
	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/wire"
)

// RxCoalescer is the unified receive-interrupt model of the host side:
// arriving packets queue in the host rx ring, an hw.IRQLine paces their
// delivery, and the ISR charges one interrupt entry plus the per-packet
// reap cost before handing the whole batch to the kernel. Both
// conventional adapters (gige, gm) deliver through it, and the QPIP CQ
// event path runs on the same hw.IRQLine model — one coalescing
// abstraction across all three stacks.
type RxCoalescer struct {
	k    *Kernel
	name string
	line *hw.IRQLine
	rxQ  []*wire.Packet
}

// NewRxCoalescer builds a coalescer delivering to k; the ISR charge is
// the "<name>.isr" event on the kernel's CPU.
func NewRxCoalescer(k *Kernel, name string, pkts int, delay sim.Time) *RxCoalescer {
	c := &RxCoalescer{k: k, name: name}
	c.line = hw.NewIRQLine(k.Engine(), c.isr)
	c.line.SetCoalesce(pkts, delay)
	return c
}

// Enqueue queues one received packet (already DMA'd into host memory)
// and raises the interrupt line.
func (c *RxCoalescer) Enqueue(pkt *wire.Packet) {
	c.rxQ = append(c.rxQ, pkt)
	c.line.Raise()
}

// Line exposes the underlying IRQ line — the pacing knob and the
// Fired/Events coalescing-factor counters.
func (c *RxCoalescer) Line() *hw.IRQLine { return c.line }

// isr reaps the rx ring: interrupt entry/exit once, descriptor reap per
// packet, then protocol processing via DeliverPacket.
func (c *RxCoalescer) isr(events int) {
	q := c.rxQ
	c.rxQ = nil
	cost := params.US(params.HostIRQUS + params.HostDriverRxReapUS*float64(len(q)))
	c.k.CPU().Do(cost, c.name+".isr", func() {
		for _, pkt := range q {
			c.k.DeliverPacket(pkt)
		}
	})
}
