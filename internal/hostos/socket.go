package hostos

import (
	"errors"
	"fmt"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Socket buffer defaults (Linux 2.4-era).
const (
	defaultSndBuf = 64 * 1024
	defaultRcvBuf = 64 * 1024
)

// SockProto selects the socket protocol.
type SockProto int

// Socket protocols.
const (
	TCPSock SockProto = iota
	UDPSock
)

// Errors returned by socket operations.
var (
	ErrConnClosed   = errors.New("hostos: connection closed")
	ErrConnReset    = errors.New("hostos: connection reset by peer")
	ErrTimedOut     = errors.New("hostos: connection timed out")
	ErrNotConnected = errors.New("hostos: socket not connected")
	ErrInUse        = errors.New("hostos: address in use")
)

// datagram is one queued UDP receive.
type datagram struct {
	payload buf.Buf
	addr    inet.Addr4
	port    uint16
}

// Socket is a BSD-style socket. Blocking calls take the calling process;
// all kernel CPU costs land on the host CPU the process shares.
type Socket struct {
	k     *Kernel
	proto SockProto
	conn  *tcp.Conn
	route route

	localPort uint16
	raddr     inet.Addr4
	rport     uint16

	noDelay   bool
	sndBufCap int

	// Receive side: in-order data the app has not read yet.
	recvQ      []buf.Buf
	recvQBytes int
	dgramQ     []datagram
	recvWaiter *sim.Proc

	// Send side: writers block when the send buffer fills.
	sndWaiter *sim.Proc

	// Listener state.
	backlog       int
	acceptQ       []*Socket
	acceptWaiter  *sim.Proc
	pendingAccept *Socket // set on children until established

	estWaiter *sim.Proc
	timer     *sim.Event

	established bool
	peerClosed  bool
	reset       bool
	timedOut    bool
	closed      bool
}

// connErr distinguishes a retry-budget timeout (ETIMEDOUT) from a peer
// reset (ECONNRESET) when a dead connection is touched.
func (s *Socket) connErr() error {
	if s.timedOut {
		return ErrTimedOut
	}
	return ErrConnReset
}

func newSocket(k *Kernel, proto SockProto) *Socket {
	return &Socket{k: k, proto: proto, sndBufCap: defaultSndBuf}
}

// NewSocket creates a socket of the given protocol (the socket(2) call).
func (k *Kernel) NewSocket(proto SockProto) *Socket {
	return newSocket(k, proto)
}

// SetNoDelay sets TCP_NODELAY (must precede Connect/Listen).
func (s *Socket) SetNoDelay(v bool) { s.noDelay = v }

// SetSndBuf adjusts the send buffer bound.
func (s *Socket) SetSndBuf(n int) {
	if n > 0 {
		s.sndBufCap = n
	}
}

// LocalPort reports the bound local port.
func (s *Socket) LocalPort() uint16 { return s.localPort }

// RemoteAddr reports the peer address of a connected socket.
func (s *Socket) RemoteAddr() (inet.Addr4, uint16) { return s.raddr, s.rport }

// syscall charges syscall entry/exit to the calling process.
func (s *Socket) syscall(p *sim.Proc) {
	s.k.stats.Syscalls++
	p.Use(s.k.cpu.Server, params.US(params.HostSyscallUS))
}

// Connect performs an active open and blocks until established.
func (s *Socket) Connect(p *sim.Proc, raddr inet.Addr4, rport uint16) error {
	if s.proto != TCPSock {
		return fmt.Errorf("hostos: Connect on non-TCP socket")
	}
	if s.conn != nil {
		return ErrInUse
	}
	s.syscall(p)
	r, err := s.k.lookupRoute(raddr)
	if err != nil {
		return err
	}
	s.route = r
	s.raddr, s.rport = raddr, rport
	s.localPort = s.k.allocPort()
	s.conn = tcp.NewConn(s.k.connConfig(s.localPort, rport, r.dev.MTU(), s.noDelay))
	s.conn.ReuseActionBuffers(pool.Enabled())
	s.k.registerConn(tcpKey{s.localPort, raddr, rport}, s)
	now := int64(s.k.eng.Now())
	acts, err := s.conn.Connect(now)
	if err != nil {
		return err
	}
	s.k.applyActions(s, acts)
	for !s.established && !s.reset && !s.timedOut && !s.closed {
		s.estWaiter = p
		p.Suspend()
	}
	if !s.established {
		return s.connErr()
	}
	return nil
}

// Listen binds a TCP port and starts accepting.
func (s *Socket) Listen(port uint16, backlog int) error {
	if s.proto != TCPSock {
		return fmt.Errorf("hostos: Listen on non-TCP socket")
	}
	if s.k.listeners[port] != nil {
		return ErrInUse
	}
	if backlog <= 0 {
		backlog = 8
	}
	s.localPort = port
	s.backlog = backlog
	s.k.listeners[port] = s
	return nil
}

// Accept blocks until an established child connection is available.
func (s *Socket) Accept(p *sim.Proc) *Socket {
	s.syscall(p)
	for len(s.acceptQ) == 0 {
		s.acceptWaiter = p
		p.Suspend()
	}
	child := s.acceptQ[0]
	s.acceptQ = s.acceptQ[1:]
	return child
}

// Send writes b to a connected TCP socket, blocking while the send buffer
// is full. The user->kernel copy is charged per byte (the dominant
// per-byte cost Table 1's framing implies for bulk transfers).
func (s *Socket) Send(p *sim.Proc, b buf.Buf) error {
	if s.conn == nil {
		return ErrNotConnected
	}
	s.syscall(p)
	p.Use(s.k.cpu.Server, params.US(params.HostSockSendUS)+perByte(params.HostCopyCyclesPerByte, b.Len()))
	s.k.stats.BytesCopiedIn += uint64(b.Len())
	// Block while the socket buffer (unacked + unsent) is full.
	for s.conn.PendingSend()+s.conn.InFlight()+b.Len() > s.sndBufCap {
		if s.reset || s.timedOut || s.closed {
			return s.connErr()
		}
		s.sndWaiter = p
		p.Suspend()
	}
	if s.reset || s.timedOut {
		return s.connErr()
	}
	now := int64(s.k.eng.Now())
	acts, err := s.conn.Send(b, now)
	if err != nil {
		return err
	}
	s.k.applyActions(s, acts)
	return nil
}

// Recv reads up to max bytes, blocking until data (or EOF) is available.
// The kernel->user copy is charged per byte.
func (s *Socket) Recv(p *sim.Proc, max int) (buf.Buf, error) {
	if s.conn == nil {
		return buf.Empty, ErrNotConnected
	}
	s.syscall(p)
	for s.recvQBytes == 0 {
		if s.reset || s.timedOut {
			return buf.Empty, s.connErr()
		}
		if s.peerClosed || s.closed {
			return buf.Empty, ErrConnClosed // EOF
		}
		s.recvWaiter = p
		p.Suspend()
	}
	var parts []buf.Buf
	got := 0
	for got < max && len(s.recvQ) > 0 {
		head := s.recvQ[0]
		take := max - got
		if take >= head.Len() {
			parts = append(parts, head)
			got += head.Len()
			s.recvQ = s.recvQ[1:]
		} else {
			parts = append(parts, head.Slice(0, take))
			s.recvQ[0] = head.Slice(take, head.Len())
			got += take
		}
	}
	s.recvQBytes -= got
	p.Use(s.k.cpu.Server, perByte(params.HostCopyCyclesPerByte, got))
	s.k.stats.BytesCopiedOut += uint64(got)
	// Reading frees receive buffer: the window may reopen.
	now := int64(s.k.eng.Now())
	acts := s.conn.AppRead(got, now)
	s.k.applyActions(s, acts)
	if len(parts) == 1 {
		return parts[0], nil
	}
	return buf.Concat(parts...), nil
}

// RecvFull reads exactly n bytes unless the connection ends first.
func (s *Socket) RecvFull(p *sim.Proc, n int) (buf.Buf, error) {
	var parts []buf.Buf
	got := 0
	for got < n {
		b, err := s.Recv(p, n-got)
		if err != nil {
			return buf.Concat(parts...), err
		}
		parts = append(parts, b)
		got += b.Len()
	}
	return buf.Concat(parts...), nil
}

// Close performs an orderly release.
func (s *Socket) Close(p *sim.Proc) error {
	if s.proto == UDPSock {
		if s.localPort != 0 {
			s.k.udpPorts.Unbind(s.localPort)
		}
		s.closed = true
		return nil
	}
	if s.conn == nil || s.closed {
		s.closed = true
		return nil
	}
	s.syscall(p)
	now := int64(s.k.eng.Now())
	acts, err := s.conn.Close(now)
	if err != nil {
		return nil // already closing
	}
	s.closed = true
	s.k.applyActions(s, acts)
	return nil
}

// ---- UDP. ----

// BindUDP binds the socket to a UDP port (0 = ephemeral).
func (s *Socket) BindUDP(port uint16) (uint16, error) {
	if s.proto != UDPSock {
		return 0, fmt.Errorf("hostos: BindUDP on non-UDP socket")
	}
	got, err := s.k.udpPorts.Bind(port, s)
	if err != nil {
		return 0, err
	}
	s.localPort = got
	return got, nil
}

// SendTo transmits one datagram.
func (s *Socket) SendTo(p *sim.Proc, b buf.Buf, dst inet.Addr4, dstPort uint16) error {
	if s.proto != UDPSock {
		return fmt.Errorf("hostos: SendTo on non-UDP socket")
	}
	if s.localPort == 0 {
		if _, err := s.BindUDP(0); err != nil {
			return err
		}
	}
	s.syscall(p)
	p.Use(s.k.cpu.Server, params.US(params.HostSockSendUS)+perByte(params.HostCopyCyclesPerByte, b.Len()))
	s.k.stats.BytesCopiedIn += uint64(b.Len())
	return s.k.emitUDP(s, b, dst, dstPort)
}

// RecvFrom blocks for one datagram.
func (s *Socket) RecvFrom(p *sim.Proc) (buf.Buf, inet.Addr4, uint16, error) {
	if s.proto != UDPSock {
		return buf.Empty, inet.Addr4{}, 0, fmt.Errorf("hostos: RecvFrom on non-UDP socket")
	}
	s.syscall(p)
	for len(s.dgramQ) == 0 {
		if s.closed {
			return buf.Empty, inet.Addr4{}, 0, ErrConnClosed
		}
		s.recvWaiter = p
		p.Suspend()
	}
	d := s.dgramQ[0]
	s.dgramQ = s.dgramQ[1:]
	p.Use(s.k.cpu.Server, perByte(params.HostCopyCyclesPerByte, d.payload.Len()))
	s.k.stats.BytesCopiedOut += uint64(d.payload.Len())
	return d.payload, d.addr, d.port, nil
}

// ---- Kernel-side event hooks. ----

func (s *Socket) enqueueData(b buf.Buf) {
	s.recvQ = append(s.recvQ, b)
	s.recvQBytes += b.Len()
	s.wakeRecv()
}

func (s *Socket) enqueueDatagram(b buf.Buf, addr inet.Addr4, port uint16) {
	s.dgramQ = append(s.dgramQ, datagram{payload: b, addr: addr, port: port})
	s.wakeRecv()
}

// wakeRecv wakes a blocked reader, charging the scheduler.
func (s *Socket) wakeRecv() {
	if s.recvWaiter == nil {
		return
	}
	w := s.recvWaiter
	s.recvWaiter = nil
	s.k.chargeUS(params.HostWakeupUS, "wakeup", func() { w.Wake() })
}

func (s *Socket) onAcked() {
	if s.sndWaiter == nil {
		return
	}
	w := s.sndWaiter
	s.sndWaiter = nil
	s.k.chargeUS(params.HostWakeupUS, "wakeup", func() { w.Wake() })
}

func (s *Socket) onEstablished() {
	s.established = true
	if s.pendingAccept != nil {
		lst := s.pendingAccept
		s.pendingAccept = nil
		lst.acceptQ = append(lst.acceptQ, s)
		if lst.acceptWaiter != nil {
			w := lst.acceptWaiter
			lst.acceptWaiter = nil
			s.k.chargeUS(params.HostWakeupUS, "wakeup", func() { w.Wake() })
		}
	}
	if s.estWaiter != nil {
		w := s.estWaiter
		s.estWaiter = nil
		w.Wake()
	}
}

func (s *Socket) onPeerClosed() {
	s.peerClosed = true
	s.wakeRecv()
}

func (s *Socket) onReset() {
	s.reset = true
	s.wakeAll()
}

// onRetryExceeded fires when the TCB gave up retransmitting: the peer is
// unreachable, not refusing. Blocked callers fail with ErrTimedOut.
func (s *Socket) onRetryExceeded() {
	s.timedOut = true
	s.wakeAll()
}

func (s *Socket) onClosed() {
	s.wakeAll()
}

func (s *Socket) wakeAll() {
	s.wakeRecv()
	s.onAcked()
	if s.estWaiter != nil {
		w := s.estWaiter
		s.estWaiter = nil
		w.Wake()
	}
}
