package hostos

import "repro/internal/wire"

// loopback is the kernel's internal device: packets re-enter the receive
// path on the same host with no wire, no DMA and no interrupt — only
// protocol processing remains. Measuring RTT through it is how the paper
// derives the host-based stack's per-message overhead: "The overhead for
// the host-based inter-network stack was determined by measuring RTT
// through the loopback interface on an individual host" (§4.2.2).
type loopback struct {
	k *Kernel
}

// LoopbackMTU matches the Linux lo default of the era.
const LoopbackMTU = 16436

// Name implements NetDevice.
func (l *loopback) Name() string { return "lo" }

// MTU implements NetDevice.
func (l *loopback) MTU() int { return LoopbackMTU }

// Transmit implements NetDevice: immediate software delivery back into
// the local stack.
func (l *loopback) Transmit(pkt *wire.Packet, _ int) {
	//lint:qpip-allow shardsafe the loopback device shares its owning kernel's engine; delivery never leaves the shard
	l.k.eng.After(0, "lo.deliver", func() {
		l.k.DeliverPacket(pkt)
	})
}
