package hostos_test

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/gige"
	"repro/internal/gm"
	"repro/internal/hostos"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
)

// hostCluster is a two-node host-stack testbed over a chosen link type.
type hostCluster struct {
	eng     *sim.Engine
	kernels [2]*hostos.Kernel
}

func newGigECluster(t *testing.T, mtu int) *hostCluster {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.Config{
		Name:         "eth",
		Bandwidth:    params.GigEBandwidth,
		MTU:          mtu,
		LinkOverhead: params.EthernetOverhead,
		HopLatency:   params.GigESwitchLatency,
		PropDelay:    params.CableLatency,
	})
	c := &hostCluster{eng: eng}
	var devs [2]*gige.Device
	for i := 0; i < 2; i++ {
		bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
		c.kernels[i] = hostos.NewKernel(eng, "host", inet.NodeAddr4(i), nil, bus)
		devs[i] = gige.New(eng, c.kernels[i], fab, gige.Config{Name: "eth0", MTU: mtu})
	}
	c.kernels[0].AddRoute(inet.NodeAddr4(1), devs[0], devs[1].Attachment())
	c.kernels[1].AddRoute(inet.NodeAddr4(0), devs[1], devs[0].Attachment())
	return c
}

func newGMCluster(t *testing.T) *hostCluster {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.Config{
		Name:         "myri",
		Bandwidth:    params.MyrinetBandwidth,
		LinkOverhead: params.MyrinetHeaderBytes,
		CutThrough:   true,
		HopLatency:   params.MyrinetHopLatency,
		PropDelay:    params.CableLatency,
	})
	c := &hostCluster{eng: eng}
	var devs [2]*gm.Device
	for i := 0; i < 2; i++ {
		bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
		c.kernels[i] = hostos.NewKernel(eng, "host", inet.NodeAddr4(i), nil, bus)
		devs[i] = gm.New(eng, c.kernels[i], fab, gm.Config{Name: "myri0", MTU: params.MTUJumbo})
	}
	c.kernels[0].AddRoute(inet.NodeAddr4(1), devs[0], devs[1].Attachment())
	c.kernels[1].AddRoute(inet.NodeAddr4(0), devs[1], devs[0].Attachment())
	return c
}

func TestTCPConnectOverGigE(t *testing.T) {
	c := newGigECluster(t, params.MTUEthernet)
	var accepted *hostos.Socket
	c.eng.Spawn("server", func(p *sim.Proc) {
		lst := c.kernels[1].NewSocket(hostos.TCPSock)
		if err := lst.Listen(5001, 8); err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		accepted = lst.Accept(p)
	})
	var connErr error
	c.eng.Spawn("client", func(p *sim.Proc) {
		s := c.kernels[0].NewSocket(hostos.TCPSock)
		connErr = s.Connect(p, inet.NodeAddr4(1), 5001)
	})
	c.eng.Run()
	if connErr != nil {
		t.Fatalf("Connect: %v", connErr)
	}
	if accepted == nil {
		t.Fatal("Accept never returned")
	}
	if addr, port := accepted.RemoteAddr(); addr != inet.NodeAddr4(0) || port == 0 {
		t.Errorf("accepted peer %v:%d", addr, port)
	}
}

func transferTest(t *testing.T, c *hostCluster, total, chunk int) {
	t.Helper()
	want := buf.Pattern(total, 3)
	var got buf.Buf
	c.eng.Spawn("server", func(p *sim.Proc) {
		lst := c.kernels[1].NewSocket(hostos.TCPSock)
		if err := lst.Listen(5001, 8); err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		s := lst.Accept(p)
		b, err := s.RecvFull(p, total)
		if err != nil {
			t.Errorf("RecvFull: %v", err)
		}
		got = b
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		s := c.kernels[0].NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, inet.NodeAddr4(1), 5001); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			if err := s.Send(p, want.Slice(off, end)); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	})
	c.eng.Run()
	if got.Len() != total {
		t.Fatalf("received %d bytes, want %d", got.Len(), total)
	}
	if !buf.Equal(got, want) {
		t.Fatal("data corrupted in transit")
	}
}

func TestBulkTransferIntegrityGigE(t *testing.T) {
	transferTest(t, newGigECluster(t, params.MTUEthernet), 200_000, 16*1024)
}

func TestBulkTransferIntegrityGM(t *testing.T) {
	transferTest(t, newGMCluster(t), 200_000, 16*1024)
}

func TestSendBlocksOnFullBuffer(t *testing.T) {
	// A slow reader must throttle the writer through sndbuf + window.
	c := newGigECluster(t, params.MTUEthernet)
	total := 500_000
	var received int
	c.eng.Spawn("server", func(p *sim.Proc) {
		lst := c.kernels[1].NewSocket(hostos.TCPSock)
		lst.Listen(5001, 8)
		s := lst.Accept(p)
		for received < total {
			b, err := s.Recv(p, 8192)
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			received += b.Len()
			p.Sleep(200 * sim.Microsecond) // slow consumer
		}
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		s := c.kernels[0].NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, inet.NodeAddr4(1), 5001); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for off := 0; off < total; off += 16384 {
			if err := s.Send(p, buf.Virtual(16384)); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	})
	c.eng.Run()
	if received < total {
		t.Fatalf("received %d of %d", received, total)
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	c := newGigECluster(t, params.MTUEthernet)
	var eofErr error
	c.eng.Spawn("server", func(p *sim.Proc) {
		lst := c.kernels[1].NewSocket(hostos.TCPSock)
		lst.Listen(5001, 8)
		s := lst.Accept(p)
		if _, err := s.RecvFull(p, 100); err != nil {
			t.Errorf("RecvFull: %v", err)
		}
		_, eofErr = s.Recv(p, 100)
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		s := c.kernels[0].NewSocket(hostos.TCPSock)
		if err := s.Connect(p, inet.NodeAddr4(1), 5001); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		s.Send(p, buf.Pattern(100, 1))
		s.Close(p)
	})
	c.eng.Run()
	if eofErr != hostos.ErrConnClosed {
		t.Fatalf("Recv after peer close = %v, want EOF", eofErr)
	}
}

func TestUDPSocketsEndToEnd(t *testing.T) {
	c := newGigECluster(t, params.MTUEthernet)
	payload := buf.Pattern(700, 9)
	var got buf.Buf
	var from inet.Addr4
	var fromPort uint16
	c.eng.Spawn("server", func(p *sim.Proc) {
		s := c.kernels[1].NewSocket(hostos.UDPSock)
		if _, err := s.BindUDP(6000); err != nil {
			t.Errorf("BindUDP: %v", err)
			return
		}
		b, a, pt, err := s.RecvFrom(p)
		if err != nil {
			t.Errorf("RecvFrom: %v", err)
			return
		}
		got, from, fromPort = b, a, pt
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		s := c.kernels[0].NewSocket(hostos.UDPSock)
		if _, err := s.BindUDP(6001); err != nil {
			t.Errorf("BindUDP: %v", err)
			return
		}
		if err := s.SendTo(p, payload, inet.NodeAddr4(1), 6000); err != nil {
			t.Errorf("SendTo: %v", err)
		}
	})
	c.eng.Run()
	if !buf.Equal(got, payload) {
		t.Fatal("datagram corrupted")
	}
	if from != inet.NodeAddr4(0) || fromPort != 6001 {
		t.Errorf("source = %v:%d", from, fromPort)
	}
}

func TestUDPOversizedDatagramRejected(t *testing.T) {
	c := newGigECluster(t, params.MTUEthernet)
	var sendErr error
	c.eng.Spawn("client", func(p *sim.Proc) {
		s := c.kernels[0].NewSocket(hostos.UDPSock)
		s.BindUDP(6001)
		sendErr = s.SendTo(p, buf.Virtual(3000), inet.NodeAddr4(1), 6000)
	})
	c.eng.Run()
	if sendErr == nil {
		t.Fatal("datagram above MTU accepted (no IP fragmentation modeled)")
	}
}

// loopbackPingPong measures the per-message host overhead the way the
// paper does for Table 1: RTT through the loopback interface.
func loopbackPingPong(t *testing.T, iters int) (perMsgUS float64) {
	t.Helper()
	eng := sim.NewEngine()
	bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
	k := hostos.NewKernel(eng, "host", inet.NodeAddr4(0), nil, bus)
	var totalBusy sim.Time
	done := false
	eng.Spawn("server", func(p *sim.Proc) {
		lst := k.NewSocket(hostos.TCPSock)
		lst.Listen(5001, 8)
		s := lst.Accept(p)
		for !done {
			if _, err := s.Recv(p, 64); err != nil {
				return
			}
			if err := s.Send(p, buf.Virtual(1)); err != nil {
				return
			}
		}
	})
	eng.Spawn("client", func(p *sim.Proc) {
		s := k.NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, inet.NodeAddr4(0), 5001); err != nil {
			t.Errorf("loopback connect: %v", err)
			return
		}
		// Warmup.
		s.Send(p, buf.Virtual(1))
		s.RecvFull(p, 1)
		busy0 := k.CPU().BusyTotal()
		for i := 0; i < iters; i++ {
			s.Send(p, buf.Virtual(1))
			if _, err := s.RecvFull(p, 1); err != nil {
				t.Errorf("pingpong recv: %v", err)
				return
			}
		}
		totalBusy = k.CPU().BusyTotal() - busy0
		done = true
		s.Close(p)
	})
	eng.Run()
	// Each iteration moves 2 messages, each traversing one send path and
	// one receive path.
	return totalBusy.Micros() / float64(2*iters)
}

func TestLoopbackOverheadNearTable1(t *testing.T) {
	got := loopbackPingPong(t, 50)
	// Paper Table 1: 29.9 us per 1-byte message through the host stack
	// (a lower bound, excluding driver work). Accept a band around it.
	if got < 20 || got > 45 {
		t.Errorf("host per-message overhead = %.1f us, want ~25-40 (Table 1: 29.9)", got)
	}
	t.Logf("host loopback per-message overhead: %.1f us (paper: 29.9)", got)
}

// ttcpLike measures one-way bulk throughput and sender/receiver CPU.
func ttcpLike(t *testing.T, c *hostCluster, total, chunk int) (mbps, sndUtil, rcvUtil float64) {
	t.Helper()
	var start, end sim.Time
	var busy0Snd, busy0Rcv sim.Time
	c.eng.Spawn("server", func(p *sim.Proc) {
		lst := c.kernels[1].NewSocket(hostos.TCPSock)
		lst.Listen(5001, 8)
		s := lst.Accept(p)
		if _, err := s.RecvFull(p, total); err != nil {
			t.Errorf("RecvFull: %v", err)
		}
		end = p.Now()
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		s := c.kernels[0].NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, inet.NodeAddr4(1), 5001); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		start = p.Now()
		busy0Snd = c.kernels[0].CPU().BusyTotal()
		busy0Rcv = c.kernels[1].CPU().BusyTotal()
		for off := 0; off < total; off += chunk {
			if err := s.Send(p, buf.Virtual(chunk)); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	})
	c.eng.Run()
	dur := end - start
	mbps = float64(total) / 1e6 / dur.Seconds()
	sndUtil = float64(c.kernels[0].CPU().BusyTotal()-busy0Snd) / float64(dur)
	rcvUtil = float64(c.kernels[1].CPU().BusyTotal()-busy0Rcv) / float64(dur)
	return mbps, sndUtil, rcvUtil
}

func TestTtcpGigEShape(t *testing.T) {
	mbps, snd, rcv := ttcpLike(t, newGigECluster(t, params.MTUEthernet), 10<<20, 16*1024)
	t.Logf("GigE 1500B: %.1f MB/s, sender %.0f%%, receiver %.0f%%", mbps, snd*100, rcv*100)
	// Figure 4 shape: tens of MB/s with a large fraction of one CPU busy.
	if mbps < 25 || mbps > 90 {
		t.Errorf("GigE throughput %.1f MB/s out of plausible band", mbps)
	}
	if snd < 0.25 && rcv < 0.25 {
		t.Errorf("host CPUs nearly idle (%.0f%%/%.0f%%): cost model broken", snd*100, rcv*100)
	}
}

func TestTtcpGMShape(t *testing.T) {
	mbps, snd, rcv := ttcpLike(t, newGMCluster(t), 10<<20, 16*1024)
	t.Logf("IP/Myrinet 9000B: %.1f MB/s, sender %.0f%%, receiver %.0f%%", mbps, snd*100, rcv*100)
	if mbps < 35 || mbps > 110 {
		t.Errorf("IP/Myrinet throughput %.1f MB/s out of plausible band", mbps)
	}
}

func TestRetransmissionRecoversOnLossyFabric(t *testing.T) {
	c := newGigECluster(t, params.MTUEthernet)
	// Install loss at the fabric level: drop every 50th frame.
	// (Reach into the route's device fabric via a fresh cluster setup is
	// complex; instead run enough data through a lossy fabric variant.)
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.Config{
		Name:         "eth",
		Bandwidth:    params.GigEBandwidth,
		MTU:          params.MTUEthernet,
		LinkOverhead: params.EthernetOverhead,
		HopLatency:   params.GigESwitchLatency,
		PropDelay:    params.CableLatency,
	})
	inj := fault.NewInjector(fault.Plan{DropEvery: 50})
	inj.Attach(fab)
	var kernels [2]*hostos.Kernel
	var devs [2]*gige.Device
	for i := 0; i < 2; i++ {
		bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
		kernels[i] = hostos.NewKernel(eng, "host", inet.NodeAddr4(i), nil, bus)
		devs[i] = gige.New(eng, kernels[i], fab, gige.Config{Name: "eth0", MTU: params.MTUEthernet})
	}
	kernels[0].AddRoute(inet.NodeAddr4(1), devs[0], devs[1].Attachment())
	kernels[1].AddRoute(inet.NodeAddr4(0), devs[1], devs[0].Attachment())
	_ = c

	total := 300_000
	want := buf.Pattern(total, 5)
	var got buf.Buf
	eng.Spawn("server", func(p *sim.Proc) {
		lst := kernels[1].NewSocket(hostos.TCPSock)
		lst.Listen(5001, 8)
		s := lst.Accept(p)
		b, err := s.RecvFull(p, total)
		if err != nil {
			t.Errorf("RecvFull: %v", err)
		}
		got = b
	})
	eng.Spawn("client", func(p *sim.Proc) {
		s := kernels[0].NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, inet.NodeAddr4(1), 5001); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for off := 0; off < total; off += 16384 {
			end := off + 16384
			if end > total {
				end = total
			}
			if err := s.Send(p, want.Slice(off, end)); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	})
	eng.Run()
	if !buf.Equal(got, want) {
		t.Fatalf("data corrupted across lossy fabric (got %d bytes)", got.Len())
	}
	if kernels[0].Stats().Retransmits == 0 {
		t.Error("no retransmissions despite forced loss")
	}
}
