// Package hostos models the host-based inter-network stack the paper
// compares against (§4.2): a Linux-2.4-class kernel on a 550 MHz
// Pentium-III, with BSD sockets over an in-kernel IPv4 TCP/UDP stack.
// Unlike QPIP — where all protocol processing lives in the adapter — every
// byte here is copied and checksummed by the host CPU and every packet
// pays syscall, protocol, driver, interrupt and softirq costs on the host.
// Those cycles are exactly what Figure 4's CPU-utilization bars and
// Table 1's 29.9 us/16445-cycle overhead measure.
package hostos

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/udp"
	"repro/internal/wire"
)

// NetDevice is a network adapter as the kernel sees it: an output queue
// with an MTU. Devices deliver received packets back through
// Kernel.DeliverPacket after their interrupt-side costs.
type NetDevice interface {
	Name() string
	MTU() int
	// Transmit queues one packet for the wire; the driver-side CPU cost
	// has already been charged by the kernel.
	Transmit(pkt *wire.Packet, dstAttachment int)
}

// route maps a destination to a device and fabric attachment.
type route struct {
	dev NetDevice
	att int
}

// Stats aggregates kernel-level counters.
type Stats struct {
	SegsOut, SegsIn uint64
	AcksProcessed   uint64
	Syscalls        uint64
	SoftIRQs        uint64
	BytesCopiedIn   uint64
	BytesCopiedOut  uint64
	ChecksumErrors  uint64
	DroppedNoPort   uint64
	Retransmits     uint64
}

// Kernel is one host's operating system instance.
type Kernel struct {
	eng  *sim.Engine
	name string
	// cpu is the processor the benchmark runs on (CPU 0 of the
	// PowerEdge's four); kernel costs and application compute contend
	// here, which is what makes utilization meaningful.
	cpu *sim.CPU
	bus *hw.PCIBus

	addr   inet.Addr4
	routes map[inet.Addr4]route

	tcpConns map[tcpKey]*Socket
	// tcpPortUse counts live connections per local port so ephemeral
	// allocation is O(1) per probe instead of O(live connections) — at
	// thousands of churning connections the old scan dominated connect().
	tcpPortUse map[uint16]int
	listeners  map[uint16]*Socket
	udpPorts   *udp.PortSpace[*Socket]
	nextPort   uint16
	issCount   uint32
	ipID       uint16

	// Net counts fault-visible events (rx.corrupt, tx.retransmit,
	// conn.retry-exceeded, ...) with the same names the QPIP NIC uses,
	// so the chaos benches report both stacks uniformly.
	Net   *trace.Counters
	stats Stats
}

type tcpKey struct {
	localPort  uint16
	remoteAddr inet.Addr4
	remotePort uint16
}

// NewKernel builds a host kernel running on cpu. Pass nil to create a
// dedicated 550 MHz processor.
func NewKernel(eng *sim.Engine, name string, addr inet.Addr4, cpu *sim.CPU, bus *hw.PCIBus) *Kernel {
	if cpu == nil {
		cpu = sim.NewCPU(eng, name+".cpu0", params.HostClockHz)
	}
	return &Kernel{
		eng:        eng,
		name:       name,
		cpu:        cpu,
		bus:        bus,
		addr:       addr,
		routes:     make(map[inet.Addr4]route),
		tcpConns:   make(map[tcpKey]*Socket),
		tcpPortUse: make(map[uint16]int),
		listeners:  make(map[uint16]*Socket),
		udpPorts:   udp.NewPortSpace[*Socket](),
		nextPort:   32768,
		Net:        trace.NewCounters(),
	}
}

// CPU exposes the host processor (utilization measurements and app work).
func (k *Kernel) CPU() *sim.CPU { return k.cpu }

// Bus exposes the host PCI bus.
func (k *Kernel) Bus() *hw.PCIBus { return k.bus }

// Engine exposes the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Addr reports the host's IPv4 address.
func (k *Kernel) Addr() inet.Addr4 { return k.addr }

// Stats returns kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// AddRoute binds a destination address to a device and attachment — the
// quiescent-LAN ARP table of the testbed.
func (k *Kernel) AddRoute(dst inet.Addr4, dev NetDevice, attachment int) {
	k.routes[dst] = route{dev: dev, att: attachment}
}

// lookupRoute resolves a destination.
func (k *Kernel) lookupRoute(dst inet.Addr4) (route, error) {
	if dst == k.addr {
		return route{dev: &loopback{k: k}, att: 0}, nil
	}
	r, ok := k.routes[dst]
	if !ok {
		return route{}, fmt.Errorf("hostos: no route to %v", dst)
	}
	return r, nil
}

// allocPort grabs an ephemeral TCP port. Each probe is a map lookup, not
// a scan of the connection table, so connection churn at 8k sockets does
// not turn connect() into an O(n) walk.
func (k *Kernel) allocPort() uint16 {
	for {
		p := k.nextPort
		k.nextPort++
		if k.nextPort == 0 {
			k.nextPort = 32768
		}
		if k.listeners[p] == nil && k.tcpPortUse[p] == 0 {
			return p
		}
	}
}

// registerConn installs a TCB in the demux table and reserves its local
// port.
func (k *Kernel) registerConn(key tcpKey, s *Socket) {
	k.tcpConns[key] = s
	k.tcpPortUse[key.localPort]++
}

// reapConn removes a dead connection from the demux table, releasing its
// port reservation. The kernel reaps eagerly on close/reset/timeout
// rather than modelling TIME_WAIT: a late retransmit for a reaped
// connection is dropped (DroppedNoPort) and the peer's own retry budget
// reaps its end, so churn benchmarks see steady-state table sizes.
func (k *Kernel) reapConn(s *Socket) {
	key := tcpKey{s.localPort, s.raddr, s.rport}
	if k.tcpConns[key] != s {
		return // already reaped, or the key was never registered
	}
	delete(k.tcpConns, key)
	if k.tcpPortUse[key.localPort] <= 1 {
		delete(k.tcpPortUse, key.localPort)
	} else {
		k.tcpPortUse[key.localPort]--
	}
}

// LiveConns reports the number of TCBs resident in the demux table.
func (k *Kernel) LiveConns() int { return len(k.tcpConns) }

// ConnMemBytes estimates committed host kernel memory for the live TCP
// connections: TCB and socket structs plus the per-socket send/receive
// buffer reservations (DESIGN §16). This is the host-stack counterpart
// of the adapter's SRAMFootprint and feeds the connection-density
// benches' per-connection memory axis.
func (k *Kernel) ConnMemBytes() int {
	total := 0
	for _, s := range k.tcpConns { //lint:qpip-allow maporder order-independent sum
		total += params.HostTCBBytes + params.HostSockBytes + s.sndBufCap + defaultRcvBuf
	}
	return total
}

// charge runs a kernel cost on the host CPU in event context.
func (k *Kernel) charge(d sim.Time, what string, done func()) {
	k.cpu.Do(d, what, done)
}

// chargeUS is charge in microseconds.
func (k *Kernel) chargeUS(us float64, what string, done func()) {
	k.charge(params.US(us), what, done)
}

// perByte converts a cycles-per-byte cost over n bytes to time.
func perByte(cyclesPerByte float64, n int) sim.Time {
	return params.HostCycles(cyclesPerByte * float64(n))
}

// ---- Transmit path. ----

// emitSegments runs tcp_output for each segment: protocol cost, software
// checksum over the payload, driver enqueue, then the device.
func (k *Kernel) emitSegments(s *Socket, segs []*tcp.Segment) {
	for _, seg := range segs {
		k.emitSegment(s, seg)
	}
}

func (k *Kernel) emitSegment(s *Socket, seg *tcp.Segment) {
	k.stats.SegsOut++
	cost := params.US(params.HostTCPOutputUS+params.HostSkbUS+params.HostDriverTxUS) +
		perByte(params.HostChecksumCyclesPerByte, seg.Payload.Len())
	k.charge(cost, "tcp_output", func() {
		pkt := wire.Get()
		pkt.IsV4 = true
		l4 := seg.MarshalHeaderInto(pkt.L4Scratch())
		tcp.SetChecksum(l4, inet.TransportChecksum4(k.addr, s.raddr, inet.ProtoTCP, l4, seg.Payload))
		k.ipID++
		pkt.IPHdr = inet.Marshal4Into(&inet.Header4{
			TotalLen: uint16(inet.IPv4HeaderLen + len(l4) + seg.Payload.Len()),
			ID:       k.ipID,
			DontFrag: true,
			TTL:      64,
			Protocol: inet.ProtoTCP,
			Src:      k.addr,
			Dst:      s.raddr,
		}, pkt.IPScratch())
		pkt.L4Hdr = l4
		pkt.Payload = seg.Payload
		seg.Release()
		s.route.dev.Transmit(pkt, s.route.att)
	})
}

// emitUDP transmits one datagram.
func (k *Kernel) emitUDP(s *Socket, payload buf.Buf, dst inet.Addr4, dstPort uint16) error {
	r, err := k.lookupRoute(dst)
	if err != nil {
		return err
	}
	if udp.HeaderLen+payload.Len() > r.dev.MTU()-inet.IPv4HeaderLen {
		return fmt.Errorf("hostos: datagram exceeds device MTU %d", r.dev.MTU())
	}
	cost := params.US(params.HostUDPOutputUS+params.HostSkbUS+params.HostDriverTxUS) +
		perByte(params.HostChecksumCyclesPerByte, payload.Len())
	k.charge(cost, "udp_output", func() {
		pkt := wire.Get()
		pkt.IsV4 = true
		l4 := udp.Marshal4Into(k.addr, dst, s.localPort, dstPort, payload, pkt.L4Scratch())
		k.ipID++
		pkt.IPHdr = inet.Marshal4Into(&inet.Header4{
			TotalLen: uint16(inet.IPv4HeaderLen + len(l4) + payload.Len()),
			ID:       k.ipID,
			TTL:      64,
			Protocol: inet.ProtoUDP,
			Src:      k.addr,
			Dst:      dst,
		}, pkt.IPScratch())
		pkt.L4Hdr = l4
		pkt.Payload = payload
		r.dev.Transmit(pkt, r.att)
	})
	return nil
}

// ---- Receive path. ----

// DeliverPacket is the device->kernel handoff: the device has charged its
// interrupt-side costs; the kernel charges softirq protocol processing.
func (k *Kernel) DeliverPacket(pkt *wire.Packet) {
	k.stats.SoftIRQs++
	k.chargeUS(params.HostSoftirqPerPktUS, "softirq", func() {
		k.inputPacket(pkt)
	})
}

func (k *Kernel) inputPacket(pkt *wire.Packet) {
	ip4, err := inet.Parse4(pkt.IPHdr)
	if err != nil {
		k.stats.ChecksumErrors++
		k.Net.Add("rx.corrupt", 1)
		pkt.Release()
		return
	}
	switch ip4.Protocol {
	case inet.ProtoTCP:
		k.inputTCP(&ip4, pkt)
	case inet.ProtoUDP:
		k.inputUDP(&ip4, pkt)
	default:
		k.stats.DroppedNoPort++
		pkt.Release()
	}
}

func (k *Kernel) inputTCP(ip4 *inet.Header4, pkt *wire.Packet) {
	seg, _, err := tcp.ParseHeader(pkt.L4Hdr)
	if err != nil {
		k.stats.ChecksumErrors++
		k.Net.Add("rx.corrupt", 1)
		pkt.Release()
		return
	}
	seg.Payload = pkt.Payload
	// Software checksum verification over the segment.
	verify := perByte(params.HostChecksumCyclesPerByte, len(pkt.L4Hdr)+pkt.Payload.Len())
	isData := pkt.Payload.Len() > 0
	procCost := params.US(params.HostTCPAckProcUS + params.HostSkbUS)
	if isData {
		procCost = params.US(params.HostTCPInputUS + params.HostSkbUS)
		k.stats.SegsIn++
	} else {
		k.stats.AcksProcessed++
	}
	k.charge(verify+procCost, "tcp_input", func() {
		// Delivered data holds its own Buf values; the packet (headers +
		// scratch) dies when this closure returns.
		defer pkt.Release()
		sum := inet.PseudoSum4(ip4.Src, ip4.Dst, inet.ProtoTCP, len(pkt.L4Hdr)+pkt.Payload.Len())
		sum = inet.Sum(sum, pkt.L4Hdr)
		sum = inet.SumBuf(sum, pkt.Payload)
		if inet.Fold(sum) != 0xffff {
			k.stats.ChecksumErrors++
			k.Net.Add("rx.corrupt", 1)
			return
		}
		key := tcpKey{seg.DstPort, ip4.Src, seg.SrcPort}
		s := k.tcpConns[key]
		if s == nil {
			if seg.Flags.Has(tcp.SYN) && !seg.Flags.Has(tcp.ACK) {
				k.acceptSYN(&seg, ip4)
				return
			}
			k.stats.DroppedNoPort++
			return
		}
		now := int64(k.eng.Now())
		acts := s.conn.Input(&seg, now)
		k.applyActions(s, acts)
	})
}

func (k *Kernel) inputUDP(ip4 *inet.Header4, pkt *wire.Packet) {
	h, plen, err := udp.Parse(pkt.L4Hdr)
	if err != nil || plen != pkt.Payload.Len() {
		k.stats.ChecksumErrors++
		k.Net.Add("rx.corrupt", 1)
		pkt.Release()
		return
	}
	verify := perByte(params.HostChecksumCyclesPerByte, len(pkt.L4Hdr)+pkt.Payload.Len())
	k.charge(verify+params.US(params.HostUDPInputUS+params.HostSkbUS), "udp_input", func() {
		defer pkt.Release()
		if udp.Verify4(ip4.Src, ip4.Dst, pkt.L4Hdr, pkt.Payload) != nil {
			k.stats.ChecksumErrors++
			k.Net.Add("rx.corrupt", 1)
			return
		}
		s, ok := k.udpPorts.Lookup(h.DstPort)
		if !ok {
			k.stats.DroppedNoPort++
			return
		}
		s.enqueueDatagram(pkt.Payload, ip4.Src, h.SrcPort)
	})
}

// acceptSYN creates a child socket on a listening port.
func (k *Kernel) acceptSYN(seg *tcp.Segment, ip4 *inet.Header4) {
	lst := k.listeners[seg.DstPort]
	if lst == nil {
		k.stats.DroppedNoPort++
		return
	}
	r, err := k.lookupRoute(ip4.Src)
	if err != nil {
		k.stats.DroppedNoPort++
		return
	}
	if len(lst.acceptQ) >= lst.backlog {
		return // full backlog: drop, client retries
	}
	child := newSocket(k, TCPSock)
	child.localPort = seg.DstPort
	child.raddr, child.rport = ip4.Src, seg.SrcPort
	child.route = r
	child.conn = tcp.NewConn(k.connConfig(seg.DstPort, seg.SrcPort, r.dev.MTU(), lst.noDelay))
	// The kernel consumes every Actions before re-entering the TCB, so the
	// action slices can live in per-conn reusable buffers.
	child.conn.ReuseActionBuffers(pool.Enabled())
	k.registerConn(tcpKey{seg.DstPort, ip4.Src, seg.SrcPort}, child)
	now := int64(k.eng.Now())
	acts, err := child.conn.AcceptSYN(seg, now)
	if err != nil {
		return
	}
	child.pendingAccept = lst
	k.applyActions(child, acts)
}

// connConfig builds a stream-mode TCB config.
func (k *Kernel) connConfig(local, remote uint16, mtu int, noDelay bool) tcp.Config {
	k.issCount += 64000
	return tcp.Config{
		LocalPort:     local,
		RemotePort:    remote,
		Mode:          tcp.Stream,
		MSS:           mtu - inet.IPv4HeaderLen - tcp.BaseHeaderLen - tcp.TimestampOptLen,
		RecvWindow:    defaultRcvBuf,
		WindowScale:   true,
		Timestamps:    true,
		DelayedAck:    true,
		NoDelay:       noDelay,
		ISS:           tcp.Seq(k.issCount),
		MaxRetries:    params.TCPMaxRetries,
		SynMaxRetries: params.TCPSynMaxRetries,
	}
}

// applyActions executes TCB outputs in kernel context.
func (k *Kernel) applyActions(s *Socket, acts tcp.Actions) {
	if len(acts.Segments) > 0 {
		k.emitSegments(s, acts.Segments)
	}
	for _, d := range acts.Delivered {
		s.enqueueData(d)
	}
	if acts.AckedBytes > 0 {
		s.onAcked()
	}
	if acts.Established {
		s.onEstablished()
	}
	if acts.PeerClosed {
		s.onPeerClosed()
	}
	if acts.Reset {
		s.onReset()
	}
	if acts.RetryExceeded {
		k.Net.Add("conn.retry-exceeded", 1)
		s.onRetryExceeded()
	}
	if acts.Closed {
		s.onClosed()
	}
	if acts.Closed || acts.Reset || acts.RetryExceeded {
		k.reapConn(s)
	}
	k.syncTimer(s)
}

// syncTimer aligns the socket's kernel timer with the TCB.
func (k *Kernel) syncTimer(s *Socket) {
	if s.timer != nil {
		s.timer.Cancel()
		s.timer = nil
	}
	if s.conn == nil {
		return
	}
	deadline, ok := s.conn.NextTimeout()
	if !ok {
		return
	}
	at := sim.Time(deadline)
	if at < k.eng.Now() {
		at = k.eng.Now()
	}
	s.timer = k.eng.At(at, "hostos.tcp.timer", func() {
		s.timer = nil
		// Timer processing runs in softirq context.
		k.chargeUS(2.0, "tcp_timer", func() {
			now := int64(k.eng.Now())
			acts := s.conn.OnTimer(now)
			if len(acts.Segments) > 0 {
				k.stats.Retransmits += uint64(len(acts.Segments))
				k.Net.Add("tx.retransmit", uint64(len(acts.Segments)))
			}
			k.applyActions(s, acts)
		})
	})
}
