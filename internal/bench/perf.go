package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/pool"
	"repro/internal/qpipnic"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// This file is the PR-2 simulator-performance harness: it runs the same
// ttcp workload on the pre-optimization engine configuration (legacy binary
// heap, no datapath pooling — the seed's behaviour, kept runnable behind
// sim.SetLegacyQueue and pool.SetEnabled) and on the optimized one, and
// reports wall-clock, fired events/second and TCP send-path allocations in
// a machine-readable report (BENCH_PR2.json). The chaos determinism test
// proves the two configurations simulate the identical world, so the
// comparison is pure mechanism cost.

// PerfVariant is one engine configuration's ttcp measurement. Gomaxprocs
// and Shards record the execution substrate per row, so measurements from
// hosts with different core counts (or from sharded runs) stay
// apples-to-apples when reports are compared across machines.
type PerfVariant struct {
	Config       string  `json:"config"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	Shards       int     `json:"shards"`
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimMBps      float64 `json:"sim_mbps"`
}

// PerfTtcp compares the engine/boundary configurations on the ttcp
// transfer.
type PerfTtcp struct {
	Workload string      `json:"workload"`
	Baseline PerfVariant `json:"baseline"`
	// PerToken is the optimized engine with the per-token host↔NIC
	// boundary (PR2's datapath); Optimized adds the batched boundary.
	PerToken            PerfVariant `json:"per_token"`
	Optimized           PerfVariant `json:"optimized"`
	SpeedupEventsPerSec float64     `json:"speedup_events_per_sec"`
	SpeedupWall         float64     `json:"speedup_wall_clock"`
	// SpeedupVsPerToken isolates the batched-boundary win: fired-event
	// reduction and wall-clock change against the per-token datapath on
	// the same engine.
	SpeedupVsPerToken float64 `json:"speedup_vs_per_token"`
	// SeedBaseline, when present, is the same workload measured on the
	// actual seed-commit binary (scripts/bench_seed.sh), not the in-binary
	// legacy-knob approximation above. SpeedupVsSeed is the honest ratio
	// the PR gate is judged against.
	SeedBaseline  *PerfVariant `json:"seed_commit_baseline,omitempty"`
	SpeedupVsSeed float64      `json:"speedup_vs_seed,omitempty"`
}

// PerfAllocs compares allocations per send→deliver→ack round trip on the
// record-mode TCP engine. ReductionFactor is -1 when the optimized path is
// allocation-free (infinite reduction).
type PerfAllocs struct {
	Workload             string  `json:"workload"`
	BaselineAllocsPerOp  float64 `json:"baseline_allocs_per_op"`
	OptimizedAllocsPerOp float64 `json:"optimized_allocs_per_op"`
	ReductionFactor      float64 `json:"reduction_factor"`
}

// PerfReport is the whole PR-2 performance comparison.
type PerfReport struct {
	GeneratedBy string     `json:"generated_by"`
	GoVersion   string     `json:"go_version"`
	GOOS        string     `json:"goos"`
	GOARCH      string     `json:"goarch"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	TtcpBytes   int        `json:"ttcp_bytes"`
	Repeats     int        `json:"repeats"`
	Ttcp        PerfTtcp   `json:"ttcp_events"`
	SendPath    PerfAllocs `json:"tcp_send_path_allocs"`
}

// measureTtcpOnce runs one QPIP ttcp transfer and reports its wall cost and
// event throughput.
func measureTtcpOnce(config string, totalBytes int) PerfVariant {
	var cl *core.Cluster
	runtime.GC()
	t0 := time.Now()
	m := qpipTtcp(params.MTUQPIP, qpipnic.ChecksumEmulatedHW, totalBytes, nil,
		func(c *core.Cluster) { cl = c })
	wall := time.Since(t0).Seconds()
	fired := cl.Eng.Fired()
	return PerfVariant{
		Config:       config,
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		Shards:       1, // the ttcp A/B comparison always runs sequentially
		WallSeconds:  wall,
		Events:       fired,
		EventsPerSec: float64(fired) / wall,
		SimMBps:      m.MBps,
	}
}

// measureTtcp takes the best of `repeats` runs (the least-perturbed one; the
// simulated result is identical every time, only wall clock varies).
func measureTtcp(config string, totalBytes, repeats int) PerfVariant {
	var best PerfVariant
	for r := 0; r < repeats; r++ {
		v := measureTtcpOnce(config, totalBytes)
		if r == 0 || v.EventsPerSec > best.EventsPerSec {
			best = v
		}
	}
	return best
}

// perfPair builds an established record-mode TCP pair driven directly, the
// way internal/tcp's benchmarks do, for the send-path allocation probe.
func perfPair(reuse bool) (client, server *tcp.Conn) {
	mk := func(lp, rp uint16, iss tcp.Seq) *tcp.Conn {
		c := tcp.NewConn(tcp.Config{
			LocalPort: lp, RemotePort: rp,
			Mode: tcp.Record, MSS: 16384,
			RecvWindow: 1 << 20, MaxRecvWindow: 1 << 20,
			WindowScale: true, Timestamps: true,
			ISS: iss,
		})
		c.ReuseActionBuffers(reuse)
		return c
	}
	client = mk(1000, 2000, 100)
	server = mk(2000, 1000, 5000)
	now := int64(1_000_000_000)
	ca, err := client.Connect(now)
	if err != nil {
		panic(err)
	}
	syn := ca.Segments[0]
	sa, err := server.AcceptSYN(syn, now)
	if err != nil {
		panic(err)
	}
	syn.Release()
	synack := sa.Segments[0]
	ca2 := client.Input(synack, now)
	synack.Release()
	ack := ca2.Segments[0]
	server.Input(ack, now)
	ack.Release()
	if client.State() != tcp.Established || server.State() != tcp.Established {
		panic(fmt.Sprintf("perf handshake failed: %v / %v", client.State(), server.State()))
	}
	return client, server
}

// sendPathAllocs measures heap allocations per send→deliver→ack round trip
// with pooling on or off, via the runtime's allocation counters.
func sendPathAllocs(pooled bool, rounds int) float64 {
	restore := pool.Enabled()
	defer pool.SetEnabled(restore)
	pool.SetEnabled(pooled)

	client, server := perfPair(pooled)
	payload := buf.Pattern(4096, 0x5A)
	now := int64(2_000_000_000)
	step := func() {
		a, err := client.Send(payload, now)
		if err != nil {
			panic(err)
		}
		seg := a.Segments[0]
		sa := server.Input(seg, now)
		seg.Release()
		ackSeg := sa.Segments[0]
		client.Input(ackSeg, now+10_000)
		ackSeg.Release()
		now += 20_000
	}
	for i := 0; i < 64; i++ {
		step() // warm pools and reused backing arrays
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < rounds; i++ {
		step()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(rounds)
}

// Perf runs the full PR-2 A/B comparison. The baseline phase flips the
// process-wide legacy knobs, so it must not run concurrently with other
// experiments; sweeps inside each phase stay sequential by construction.
func Perf(totalBytes, repeats int) PerfReport {
	if totalBytes <= 0 {
		totalBytes = 4 << 20
	}
	if repeats <= 0 {
		repeats = 3
	}
	rep := PerfReport{
		GeneratedBy: "qpipbench -exp perf",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TtcpBytes:   totalBytes,
		Repeats:     repeats,
	}
	rep.Ttcp.Workload = fmt.Sprintf(
		"qpip ttcp, %d bytes in 16 KB records, MTU %d, emulated hw csum, 2-node cluster",
		totalBytes, params.MTUQPIP)
	rep.SendPath.Workload = "record-mode TCP send→deliver→ack round trip, 4 KB records"

	// Baseline: the seed's mechanisms — binary-heap event queue with
	// per-schedule allocation, no datapath pooling, per-token boundary.
	sim.SetLegacyQueue(true)
	pool.SetEnabled(false)
	hw.SetBatchedBoundary(false)
	rep.Ttcp.Baseline = measureTtcp("legacy heap, pooling off", totalBytes, repeats)
	rep.SendPath.BaselineAllocsPerOp = sendPathAllocs(false, 4096)

	// Per-token: the PR2 datapath — optimized engine, batched boundary off.
	sim.SetLegacyQueue(false)
	pool.SetEnabled(true)
	rep.Ttcp.PerToken = measureTtcp("timer wheel, per-token boundary", totalBytes, repeats)

	// Optimized: timer wheel + pooled datapath + batched boundary.
	hw.SetBatchedBoundary(true)
	rep.Ttcp.Optimized = measureTtcp("timer wheel, batched boundary", totalBytes, repeats)
	rep.SendPath.OptimizedAllocsPerOp = sendPathAllocs(true, 4096)

	rep.Ttcp.SpeedupEventsPerSec = rep.Ttcp.Optimized.EventsPerSec / rep.Ttcp.Baseline.EventsPerSec
	rep.Ttcp.SpeedupWall = rep.Ttcp.Baseline.WallSeconds / rep.Ttcp.Optimized.WallSeconds
	rep.Ttcp.SpeedupVsPerToken = rep.Ttcp.PerToken.WallSeconds / rep.Ttcp.Optimized.WallSeconds
	if rep.SendPath.OptimizedAllocsPerOp > 0 {
		rep.SendPath.ReductionFactor = rep.SendPath.BaselineAllocsPerOp / rep.SendPath.OptimizedAllocsPerOp
	} else {
		rep.SendPath.ReductionFactor = -1 // allocation-free
	}
	return rep
}

// AttachSeedBaseline folds a seed-commit measurement (the JSON object
// scripts/bench_seed.sh prints — its field names match PerfVariant's tags)
// into the report and computes the against-the-seed speedup.
func AttachSeedBaseline(r *PerfReport, seedJSON []byte) error {
	var v PerfVariant
	if err := json.Unmarshal(seedJSON, &v); err != nil {
		return fmt.Errorf("seed baseline: %w", err)
	}
	if v.EventsPerSec <= 0 {
		return fmt.Errorf("seed baseline: no events_per_sec in %q", string(seedJSON))
	}
	r.Ttcp.SeedBaseline = &v
	r.Ttcp.SpeedupVsSeed = r.Ttcp.Optimized.EventsPerSec / v.EventsPerSec
	return nil
}

// RenderPerf formats the comparison for the terminal.
func RenderPerf(r PerfReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator performance: optimized engine vs seed mechanisms\n")
	fmt.Fprintf(&b, "ttcp workload: %s\n", r.Ttcp.Workload)
	fmt.Fprintf(&b, "%-32s %10s %14s %14s %10s\n", "config", "wall (s)", "events", "events/s", "sim MB/s")
	for _, v := range []PerfVariant{r.Ttcp.Baseline, r.Ttcp.PerToken, r.Ttcp.Optimized} {
		fmt.Fprintf(&b, "%-32s %10.3f %14d %14.0f %10.1f\n",
			v.Config, v.WallSeconds, v.Events, v.EventsPerSec, v.SimMBps)
	}
	fmt.Fprintf(&b, "events/sec speedup: %.2fx, wall-clock speedup: %.2fx\n",
		r.Ttcp.SpeedupEventsPerSec, r.Ttcp.SpeedupWall)
	fmt.Fprintf(&b, "wall-clock speedup vs per-token boundary: %.2fx\n",
		r.Ttcp.SpeedupVsPerToken)
	if v := r.Ttcp.SeedBaseline; v != nil {
		fmt.Fprintf(&b, "%-32s %10.3f %14d %14.0f %10.1f\n",
			v.Config, v.WallSeconds, v.Events, v.EventsPerSec, v.SimMBps)
		fmt.Fprintf(&b, "events/sec speedup vs seed commit: %.2fx\n", r.Ttcp.SpeedupVsSeed)
	}
	fmt.Fprintf(&b, "\nTCP send path (%s):\n", r.SendPath.Workload)
	fmt.Fprintf(&b, "  allocs/op: %.2f baseline -> %.2f optimized",
		r.SendPath.BaselineAllocsPerOp, r.SendPath.OptimizedAllocsPerOp)
	if r.SendPath.ReductionFactor < 0 {
		fmt.Fprintf(&b, " (allocation-free)\n")
	} else {
		fmt.Fprintf(&b, " (%.1fx fewer)\n", r.SendPath.ReductionFactor)
	}
	return b.String()
}

// PerfGuard is the CI perf-smoke gate: it runs the ttcp workload on the
// optimized engine under both boundary modes and fails if batched mode is
// slower in wall clock than the per-token path beyond the tolerance (the
// batched boundary must never be a regression). Returns a human-readable
// report and pass/fail.
func PerfGuard(totalBytes int) (string, bool) {
	if totalBytes <= 0 {
		totalBytes = 4 << 20
	}
	sim.SetLegacyQueue(false)
	pool.SetEnabled(true)
	hw.SetBatchedBoundary(false)
	perTok := measureTtcp("timer wheel, per-token boundary", totalBytes, 2)
	hw.SetBatchedBoundary(true)
	batched := measureTtcp("timer wheel, batched boundary", totalBytes, 2)

	const tolerance = 0.90 // allow 10% wall-clock noise
	ok := batched.WallSeconds <= perTok.WallSeconds/tolerance
	var b strings.Builder
	fmt.Fprintf(&b, "perf guard: qpip ttcp %d bytes\n", totalBytes)
	for _, v := range []PerfVariant{perTok, batched} {
		fmt.Fprintf(&b, "%-32s %10.3fs %12d events %10.1f sim MB/s\n",
			v.Config, v.WallSeconds, v.Events, v.SimMBps)
	}
	fmt.Fprintf(&b, "batched/per-token wall ratio: %.2f (events %.2fx fewer) — %s\n",
		batched.WallSeconds/perTok.WallSeconds,
		float64(perTok.Events)/float64(batched.Events),
		map[bool]string{true: "PASS", false: "FAIL"}[ok])
	return b.String(), ok
}

// WritePerfJSON writes the report as indented JSON.
func WritePerfJSON(path string, r PerfReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
