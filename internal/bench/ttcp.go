package bench

import (
	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/params"
	"repro/internal/qpipnic"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// TtcpMeasure is one ttcp run's outcome.
type TtcpMeasure struct {
	MBps float64
	// SendCPU / RecvCPU are fractions of one host processor.
	SendCPU, RecvCPU float64
	// NICCPU is the sender-side adapter processor utilization (QPIP only).
	NICCPU float64
}

// ttcp parameters: "a 10MB transfer in 16KB chunks with the TCP_NODELAY
// option set" (paper §4.2.1).
const (
	TtcpChunk = 16 * 1024
)

// qpipTtcp runs the ttcp-equivalent over a QPIP cluster: messages of
// min(chunk, maxMessage), pipelined with a bounded number outstanding,
// completions reaped with Wait (the utilization-measurement discipline —
// a blocked ttcp burns no cycles).
// prep hooks run against the built cluster before any traffic; the chaos
// sweep uses one to attach a fault injector.
func qpipTtcp(mtu int, cs qpipnic.ChecksumMode, total int, tweak func(*core.NodeConfig), prep ...func(*core.Cluster)) TtcpMeasure {
	cfg := core.NodeConfig{QPIP: true, QPIPMTU: mtu, QPIPChecksum: cs}
	if tweak != nil {
		tweak(&cfg)
	}
	c := core.NewCluster(2, cfg)
	for _, fn := range prep {
		fn(c)
	}
	maxMsg := c.Nodes[0].QPIP.MaxMessage()
	msgSize := TtcpChunk
	if msgSize > maxMsg {
		msgSize = maxMsg
	}
	nMsgs := (total + msgSize - 1) / msgSize
	const port = 7000
	const window = 64 // outstanding messages

	var out TtcpMeasure
	var start, end sim.Time
	var sndBusy0, rcvBusy0, nicBusy0 sim.Time

	const batch = 16 // WRs per batch verb call
	c.Spawn("server", func(p *sim.Proc) {
		qp, _, rcq, err := newRC(c.Nodes[1], 2*window)
		if err != nil {
			panic(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(port)
		if err != nil {
			panic(err)
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			panic(err)
		}
		var rwrs [batch]verbs.RecvWR
		var comps [window]verbs.Completion
		posted, got := 0, 0
		postMore := func() {
			for posted < nMsgs && posted-got < window {
				b := 0
				for b < batch && posted+b < nMsgs && (posted+b)-got < window {
					rwrs[b] = verbs.RecvWR{ID: uint64(posted + b), Capacity: msgSize}
					b++
				}
				k, err := qp.PostRecvN(p, rwrs[:b])
				if err != nil {
					panic(err)
				}
				posted += k
			}
		}
		postMore()
		for got < nMsgs {
			rcq.Wait(p)
			got++
			// Reap whatever else already completed: one wakeup covers a
			// batch, as a real blocked receiver would see.
			got += rcq.PollN(p, comps[:])
			postMore()
		}
		end = p.Now()
	})
	c.Spawn("client", func(p *sim.Proc) {
		qp, scq, _, err := newRC(c.Nodes[0], 2*window)
		if err != nil {
			panic(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, port); err != nil {
			panic(err)
		}
		start = p.Now()
		sndBusy0 = c.Nodes[0].CPU.BusyTotal()
		rcvBusy0 = c.Nodes[1].CPU.BusyTotal()
		nicBusy0 = c.Nodes[0].QPIP.CPU().BusyTotal()
		var wrs [batch]verbs.SendWR
		var comps [window]verbs.Completion
		inFlight, sent := 0, 0
		for sent < nMsgs {
			for inFlight < window && sent < nMsgs {
				b := 0
				for b < batch && inFlight+b < window && sent+b < nMsgs {
					wrs[b] = verbs.SendWR{ID: uint64(sent + b), Payload: buf.Virtual(msgSize)}
					b++
				}
				k, err := qp.PostSendN(p, wrs[:b])
				if err != nil {
					panic(err)
				}
				sent += k
				inFlight += k
			}
			scq.Wait(p)
			inFlight--
			if inFlight > 0 {
				inFlight -= scq.PollN(p, comps[:inFlight])
			}
		}
		for inFlight > 0 {
			scq.Wait(p)
			inFlight--
		}
	})
	c.Run()
	dur := end - start
	out.MBps = float64(nMsgs*msgSize) / 1e6 / dur.Seconds()
	out.SendCPU = float64(c.Nodes[0].CPU.BusyTotal()-sndBusy0) / float64(dur)
	out.RecvCPU = float64(c.Nodes[1].CPU.BusyTotal()-rcvBusy0) / float64(dur)
	out.NICCPU = float64(c.Nodes[0].QPIP.CPU().BusyTotal()-nicBusy0) / float64(dur)
	return out
}

// sockTtcp runs ttcp over a host-stack cluster.
func sockTtcp(kind StackKind, total int, tweak func(*core.NodeConfig), prep ...func(*core.Cluster)) TtcpMeasure {
	var cfg core.NodeConfig
	if kind == IPGigE {
		cfg = core.NodeConfig{GigE: true}
	} else {
		cfg = core.NodeConfig{GM: true}
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c := core.NewCluster(2, cfg)
	for _, fn := range prep {
		fn(c)
	}
	var out TtcpMeasure
	var start, end sim.Time
	var sndBusy0, rcvBusy0 sim.Time
	c.Spawn("server", func(p *sim.Proc) {
		lst := c.Nodes[1].Kernel.NewSocket(hostos.TCPSock)
		lst.Listen(7000, 4)
		s := lst.Accept(p)
		if _, err := s.RecvFull(p, total); err != nil {
			panic(err)
		}
		end = p.Now()
	})
	c.Spawn("client", func(p *sim.Proc) {
		s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
		s.SetNoDelay(true) // ttcp sets TCP_NODELAY (paper §4.2.1)
		if err := s.Connect(p, c.Nodes[1].Addr4, 7000); err != nil {
			panic(err)
		}
		start = p.Now()
		sndBusy0 = c.Nodes[0].CPU.BusyTotal()
		rcvBusy0 = c.Nodes[1].CPU.BusyTotal()
		for off := 0; off < total; off += TtcpChunk {
			n := TtcpChunk
			if off+n > total {
				n = total - off
			}
			if err := s.Send(p, buf.Virtual(n)); err != nil {
				panic(err)
			}
		}
	})
	c.Run()
	dur := end - start
	out.MBps = float64(total) / 1e6 / dur.Seconds()
	out.SendCPU = float64(c.Nodes[0].CPU.BusyTotal()-sndBusy0) / float64(dur)
	out.RecvCPU = float64(c.Nodes[1].CPU.BusyTotal()-rcvBusy0) / float64(dur)
	return out
}

// effectiveHostCPU picks the utilization figure the paper reports: the
// busier of the two hosts' single-CPU utilizations.
func (m TtcpMeasure) effectiveHostCPU() float64 {
	if m.SendCPU > m.RecvCPU {
		return m.SendCPU
	}
	return m.RecvCPU
}

var _ = params.MTUQPIP // keep params imported for tuning constants
