package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nbd"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// ---- Recovery experiment: end-to-end failure recovery under crash,
// sustained flap, and asymmetric partition (DESIGN §13). ----

// RecoverySeed fixes every probabilistic choice in the sweep (the backoff
// jitter); rerunning `qpipbench -exp recovery` reproduces the identical
// fault and recovery event sequence.
const RecoverySeed = 0xFA117

// RecoveryRow is one sweep point: an NBD patterned-write/flush/readback
// workload on the QPIP stack with one failure scenario injected, verified
// byte-exact, with the latency and goodput cost of recovering.
type RecoveryRow struct {
	Scenario string `json:"scenario"` // baseline, crash-server, crash-client, flap, partition
	Backoff  string `json:"backoff"`  // policy name ("-" for baseline)
	// FaultAtMS / FaultForMS locate the injected outage (crash instant and
	// down window; flap-train start and total span; partition window).
	FaultAtMS  float64 `json:"fault_at_ms"`
	FaultForMS float64 `json:"fault_for_ms"`
	// StallMS is the longest gap between successive write completions —
	// the application-visible outage (detection + reconnect + replay).
	StallMS float64 `json:"stall_ms"`
	// RecoveryMS is how long after the fault cleared (adapter back up,
	// flaps over, partition healed) the write pipeline was moving again.
	RecoveryMS float64 `json:"recovery_ms"`
	// GoodputMBps is write-phase goodput; DipPct its loss vs the
	// fault-free baseline point.
	GoodputMBps  float64 `json:"goodput_mbps"`
	BaselineMBps float64 `json:"baseline_mbps"`
	DipPct       float64 `json:"goodput_dip_pct"`
	// Sessions/Replays are the client transport's recovery work; the
	// counters below are summed across both adapters.
	Sessions    uint64 `json:"sessions"`
	Replays     uint64 `json:"replays"`
	Retransmits uint64 `json:"retransmits"`
	StaleEpoch  uint64 `json:"stale_epoch_drops"`
	PeerReboots uint64 `json:"peer_reboot_fences"`
	Crashes     uint64 `json:"crashes"`
	// Verified is the bytes-exactly-once check: every chunk read back
	// equals the pattern written, despite replays and duplicates.
	Verified bool `json:"verified"`
	Failed   bool `json:"failed"` // client declared the remote down
}

// recoveryBackoffs are the swept reconnect policies. Budgets are sized so
// both outlast the longest down window in the sweep; the contrast is how
// aggressively each polls a dead peer.
var recoveryBackoffs = []struct {
	name    string
	pol     verbs.BackoffPolicy
	timeout sim.Time
}{
	{"fast", verbs.BackoffPolicy{Base: 200 * sim.Microsecond, Max: 5 * sim.Millisecond, Attempts: 60, Seed: RecoverySeed}, 250 * sim.Millisecond},
	{"slow", verbs.BackoffPolicy{Base: 2 * sim.Millisecond, Max: 50 * sim.Millisecond, Attempts: 20, Seed: RecoverySeed}, 800 * sim.Millisecond},
}

// recoverySpec describes one sweep point before the cluster exists
// (fabric attachment indices are resolved inside the run).
type recoverySpec struct {
	scenario string
	backoff  string
	pol      verbs.BackoffPolicy
	timeout  sim.Time // watchdog session timeout (0 = nbd default)
	at, down sim.Time // crash instant + down window / window start + span
}

// faultFor reports the total outage span for the row.
func (s recoverySpec) faultFor() sim.Time { return s.down }

// recoveryRun executes one sweep point on a fresh 2-node QPIP cluster.
func recoveryRun(s recoverySpec, total int, baselineMBps float64) RecoveryRow {
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMTU: params.MTUJumbo})
	diskSize := int64(total) + (64 << 20)
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	maxMsg := c.Nodes[0].QPIP.MaxMessage()

	plan := fault.Plan{Seed: RecoverySeed}
	var faultEnd sim.Time
	switch s.scenario {
	case "crash-server":
		plan.Crashes = []fault.Crash{{Node: 1, At: s.at, Down: s.down}}
		faultEnd = s.at + s.down
	case "crash-client":
		plan.Crashes = []fault.Crash{{Node: 0, At: s.at, Down: s.down}}
		faultEnd = s.at + s.down
	case "flap":
		// Five down windows cycling faster than TCP's MinRTO: each window
		// is a fifth of the span, half down half up.
		step := s.down / 5
		plan.Flaps = fault.FlapTrain(c.Nodes[1].QPIP.Attachment(), s.at, step/2, step/2, 5)
		faultEnd = s.at + s.down
	case "partition":
		// Asymmetric: the server hears nothing from the client while the
		// reverse path stays up — the failure mode flaps cannot express.
		plan.Partitions = []fault.Partition{{
			Src: c.Nodes[0].QPIP.Attachment(), Dst: c.Nodes[1].QPIP.Attachment(),
			From: s.at, To: s.at + s.down,
		}}
		faultEnd = s.at + s.down
	}
	inj := fault.NewInjector(plan)
	inj.Attach(c.Myrinet)
	inj.ScheduleCrashes(c.Eng, c.Nodes[0].QPIP, c.Nodes[1].QPIP)

	row := RecoveryRow{
		Scenario:   s.scenario,
		Backoff:    s.backoff,
		FaultAtMS:  float64(s.at) / 1e6,
		FaultForMS: float64(s.faultFor()) / 1e6,
	}

	c.Spawn("nbd-server", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[1].QPIP, 1024)
		rcq := verbs.NewCQ(c.Nodes[1].QPIP, 1024)
		qp, err := verbs.NewQP(c.Nodes[1].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 512, RecvDepth: 512,
		})
		if err != nil {
			panic(err)
		}
		nbd.ServeQPResilient(p, c.Nodes[1].CPU, c.Nodes[1].QPIP, 10809,
			qp, scq, rcq, maxMsg, disk, s.pol)
	})

	var cli *nbd.QPClient
	c.Spawn("nbd-client", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[0].QPIP, 1024)
		rcq := verbs.NewCQ(c.Nodes[0].QPIP, 1024)
		qp, err := verbs.NewQP(c.Nodes[0].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 512, RecvDepth: 512,
		})
		if err != nil {
			panic(err)
		}
		// The initial rendezvous goes through the same backoff machinery as
		// recovery: an early-scheduled fault may land mid-handshake.
		if err := qp.Reconnect(p, c.Nodes[1].Addr6, 10809, s.pol); err != nil {
			panic(err)
		}
		cli = nbd.NewResilientQPClient(c.Eng, c.Nodes[0].CPU, qp, scq, rcq,
			maxMsg, diskSize, params.NBDQueueDepth, nbd.RecoverySpec{
				Raddr: c.Nodes[1].Addr6, Rport: 10809, Backoff: s.pol, Timeout: s.timeout,
			})

		const chunk = 64 << 10
		start := p.Now()
		marks := []sim.Time{start}
		failed := false
		for off := 0; off < total; off += chunk {
			if err := cli.Write(p, int64(off), buf.Pattern(chunk, byte(off/chunk))); err != nil {
				failed = true
				break
			}
			marks = append(marks, p.Now())
		}
		if !failed && cli.Flush(p) != nil {
			failed = true
		}
		marks = append(marks, p.Now())
		writeEnd := p.Now()

		// Readback verification: bytes exactly once, end to end. The raw
		// block client has no cache, so every chunk re-crosses the wire.
		verified := !failed
		if !failed {
			for off := 0; off < total; off += chunk {
				b, err := cli.Read(p, int64(off), chunk)
				if err != nil || !buf.Equal(b, buf.Pattern(chunk, byte(off/chunk))) {
					verified = false
					break
				}
			}
		}

		row.Failed = failed
		row.Verified = verified
		if writeEnd > start {
			row.GoodputMBps = float64(total) / 1e6 / (writeEnd - start).Seconds()
		}
		var gapStart, gapEnd sim.Time
		for i := 1; i < len(marks); i++ {
			if marks[i]-marks[i-1] > gapEnd-gapStart {
				gapStart, gapEnd = marks[i-1], marks[i]
			}
		}
		row.StallMS = float64(gapEnd-gapStart) / 1e6
		if faultEnd > 0 && gapEnd > faultEnd {
			row.RecoveryMS = float64(gapEnd-faultEnd) / 1e6
		}
	})

	c.Run()

	net := trace.NewCounters()
	for _, n := range c.Nodes {
		n.QPIP.AddConnCounters(net)
	}
	row.Sessions = cli.Sessions()
	row.Replays = cli.Replays()
	row.Retransmits = net.Get("tx.retransmit")
	row.StaleEpoch = net.Get("rx.stale-epoch")
	row.PeerReboots = net.Get("rx.peer-reboot")
	row.Crashes = inj.Stats().Crashes
	row.BaselineMBps = baselineMBps
	if baselineMBps > 0 && row.GoodputMBps > 0 {
		row.DipPct = (1 - row.GoodputMBps/baselineMBps) * 100
	}
	return row
}

// Recovery sweeps crash time × outage duration × backoff policy, plus the
// sustained-flap and asymmetric-partition scenarios, over the recoverable
// NBD stack. Every point must come back Verified: the crash chaos may
// cost throughput, never bytes.
func Recovery(totalBytes int) []RecoveryRow {
	if totalBytes <= 0 {
		totalBytes = 4 << 20
	}
	base := recoveryRun(recoverySpec{scenario: "baseline", backoff: "-"}, totalBytes, 0)
	base.BaselineMBps = base.GoodputMBps
	baseline := base.GoodputMBps

	var specs []recoverySpec
	for _, bo := range recoveryBackoffs {
		for _, at := range []sim.Time{5 * sim.Millisecond, 20 * sim.Millisecond} {
			for _, down := range []sim.Time{10 * sim.Millisecond, 60 * sim.Millisecond} {
				specs = append(specs, recoverySpec{
					scenario: "crash-server", backoff: bo.name, pol: bo.pol, timeout: bo.timeout,
					at: at, down: down,
				})
			}
		}
		specs = append(specs, recoverySpec{
			scenario: "crash-client", backoff: bo.name, pol: bo.pol, timeout: bo.timeout,
			at: 10 * sim.Millisecond, down: 10 * sim.Millisecond,
		})
		specs = append(specs, recoverySpec{
			scenario: "flap", backoff: bo.name, pol: bo.pol, timeout: bo.timeout,
			at: 5 * sim.Millisecond, down: 20 * sim.Millisecond,
		})
		specs = append(specs, recoverySpec{
			scenario: "partition", backoff: bo.name, pol: bo.pol, timeout: bo.timeout,
			at: 5 * sim.Millisecond, down: 20 * sim.Millisecond,
		})
	}
	rows := make([]RecoveryRow, len(specs))
	sweep(len(rows), func(i int) {
		rows[i] = recoveryRun(specs[i], totalBytes, baseline)
	})
	return append([]RecoveryRow{base}, rows...)
}

// RenderRecovery formats the sweep as a table.
func RenderRecovery(rows []RecoveryRow) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Recovery sweep: NBD write/flush/readback under crash chaos (seed 0x%X)", RecoverySeed))
	fmt.Fprintf(&b, "%-14s %-7s %8s %8s %9s %9s %8s %7s %5s %8s %6s %6s %8s\n",
		"scenario", "backoff", "at(ms)", "for(ms)", "stall(ms)", "recov(ms)",
		"MB/s", "dip", "sess", "replays", "fence", "stale", "verified")
	for _, r := range rows {
		ok := "YES"
		if !r.Verified {
			ok = "NO"
		}
		if r.Failed {
			ok = "FAILED"
		}
		fmt.Fprintf(&b, "%-14s %-7s %8.1f %8.1f %9.2f %9.2f %8.1f %6.1f%% %5d %8d %6d %6d %8s\n",
			r.Scenario, r.Backoff, r.FaultAtMS, r.FaultForMS, r.StallMS, r.RecoveryMS,
			r.GoodputMBps, r.DipPct, r.Sessions, r.Replays, r.PeerReboots, r.StaleEpoch, ok)
	}
	return b.String()
}

// RecoveryJSON renders the sweep as the machine-readable report.
func RecoveryJSON(rows []RecoveryRow) (string, error) {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}
