package bench

import (
	"fmt"
	"strings"
)

// Renderers: paper-style text tables with measured-vs-paper columns.

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, "%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// RenderFigure3 renders the RTT comparison.
func RenderFigure3(rows []RTTRow) string {
	var b strings.Builder
	header(&b, "Figure 3: application-to-application RTT (1-byte message)")
	fmt.Fprintf(&b, "%-26s %12s %12s %14s %14s\n", "stack", "UDP (us)", "TCP (us)", "paper UDP", "paper TCP")
	for _, r := range rows {
		pu, pt := "-", "-"
		if r.PaperUDPus > 0 {
			pu = fmt.Sprintf("%.0f", r.PaperUDPus)
		}
		if r.PaperTCPus > 0 {
			pt = fmt.Sprintf("%.0f", r.PaperTCPus)
		}
		fmt.Fprintf(&b, "%-26s %12.1f %12.1f %14s %14s\n", r.Stack, r.UDPus, r.TCPus, pu, pt)
	}
	return b.String()
}

// RenderFigure4 renders the throughput/utilization matrix.
func RenderFigure4(rows []TtcpRow) string {
	var b strings.Builder
	header(&b, "Figure 4: ttcp throughput and CPU utilization (10 MB, 16 KB writes, TCP_NODELAY)")
	fmt.Fprintf(&b, "%-18s %7s %10s %10s %9s %11s\n", "stack", "MTU", "MB/s", "host CPU", "NIC CPU", "paper MB/s")
	for _, r := range rows {
		nic := "-"
		if r.NICCPU > 0 {
			nic = fmt.Sprintf("%.0f%%", r.NICCPU*100)
		}
		paper := "-"
		if r.PaperMBps > 0 {
			paper = fmt.Sprintf("%.1f", r.PaperMBps)
		}
		host := fmt.Sprintf("%.0f%%", r.HostCPU*100)
		if r.HostCPU < 0.01 {
			host = "<1%"
		}
		fmt.Fprintf(&b, "%-18s %7d %10.1f %10s %9s %11s\n", r.Stack, r.MTU, r.MBps, host, nic, paper)
	}
	return b.String()
}

// RenderTable1 renders the host overhead comparison.
func RenderTable1(rows []OverheadRow) string {
	var b strings.Builder
	header(&b, "Table 1: host overhead for transmit and receive paths (1-byte TCP message)")
	fmt.Fprintf(&b, "%-16s %12s %12s %14s %14s\n", "stack", "time (us)", "cycles", "paper (us)", "paper cycles")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.1f %12.0f %14.1f %14.0f\n",
			r.Stack, r.Micros, r.Cycles, r.PaperMicros, r.PaperCycles)
	}
	return b.String()
}

// renderStages renders Table 2 or 3.
func renderStages(title string, rows []StageRow) string {
	var b strings.Builder
	header(&b, title)
	fmt.Fprintf(&b, "%-18s %11s %11s %12s %12s\n", "stage", "data (us)", "ack (us)", "paper data", "paper ack")
	cell := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %11s %11s %12s %12s\n",
			r.Stage, cell(r.DataUS), cell(r.AckUS), cell(r.PaperDataUS), cell(r.PaperAckUS))
	}
	return b.String()
}

// RenderTable2 renders transmit-side occupancy.
func RenderTable2(rows []StageRow) string {
	return renderStages("Table 2: transmit-side network interface processing costs", rows)
}

// RenderTable3 renders receive-side occupancy.
func RenderTable3(rows []StageRow) string {
	return renderStages("Table 3: receive-side network interface processing costs", rows)
}

// RenderFigure7 renders the NBD results.
func RenderFigure7(rows []NBDRow) string {
	var b strings.Builder
	header(&b, "Figure 7: NBD client throughput and CPU effectiveness (sequential, ext2-lite)")
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %12s %9s %9s\n",
		"stack", "wr MB/s", "rd MB/s", "wr MB/CPUs", "rd MB/CPUs", "wr CPU", "rd CPU")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %12.1f %12.1f %8.0f%% %8.0f%%\n",
			r.Stack, r.WriteMBps, r.ReadMBps, r.WriteEff, r.ReadEff,
			r.WriteCPU*100, r.ReadCPU*100)
	}
	// The paper's headline claims, checked against the measurements.
	var qp, best NBDRow
	for _, r := range rows {
		if r.Stack == "QPIP" {
			qp = r
		} else if r.ReadMBps > best.ReadMBps {
			best = r
		}
	}
	if qp.ReadMBps > 0 && best.ReadMBps > 0 {
		fmt.Fprintf(&b, "QPIP vs best host stack: read throughput %+.0f%%, read effectiveness %+.0f%% "+
			"(paper: +40%% to +137%% throughput, up to +133%% effectiveness)\n",
			(qp.ReadMBps/best.ReadMBps-1)*100, (qp.ReadEff/best.ReadEff-1)*100)
	}
	return b.String()
}

// RenderAblation renders one ablation pair.
func RenderAblation(r AblationRow) string {
	var b strings.Builder
	header(&b, "Ablation: "+r.Name)
	fmt.Fprintf(&b, "%-28s %10s %10s %9s\n", "setting", "MB/s", "host CPU", "NIC CPU")
	p := func(label string, m TtcpMeasure) {
		fmt.Fprintf(&b, "%-28s %10.1f %9.0f%% %8.0f%%\n",
			label, m.MBps, m.effectiveHostCPU()*100, m.NICCPU*100)
	}
	p(r.BaselineLabel, r.Baseline)
	p(r.VariantLabel, r.Variant)
	return b.String()
}

// RenderMTUSweep renders the MTU ablation.
func RenderMTUSweep(rows []TtcpRow) string {
	var b strings.Builder
	header(&b, "Ablation: QPIP MTU sweep")
	fmt.Fprintf(&b, "%7s %10s %10s %9s\n", "MTU", "MB/s", "host CPU", "NIC CPU")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %10.1f %9.0f%% %8.0f%%\n", r.MTU, r.MBps, r.HostCPU*100, r.NICCPU*100)
	}
	return b.String()
}
