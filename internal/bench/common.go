// Package bench regenerates every table and figure of the paper's
// evaluation (§4.2): Figure 3 (round-trip time), Figure 4 (ttcp
// throughput and CPU utilization), Table 1 (host overhead), Tables 2 & 3
// (NIC per-stage occupancy), and Figure 7 (NBD storage performance) —
// plus ablations over the design choices DESIGN.md calls out.
package bench

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/params"
	"repro/internal/qpipnic"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// StackKind names a measured configuration.
type StackKind int

// The three stacks of the paper's comparison.
const (
	IPGigE StackKind = iota
	IPMyrinet
	QPIP
)

func (s StackKind) String() string {
	switch s {
	case IPGigE:
		return "IP/GigE"
	case IPMyrinet:
		return "IP/Myrinet"
	default:
		return "QPIP"
	}
}

// pollWait spin-polls a CQ (the latency-measurement discipline; the
// paper's overheads were measured "by directly timing the associated
// communication methods from user-space").
func pollWait(p *sim.Proc, cq *verbs.CQ) verbs.Completion {
	for {
		if comp, ok := cq.Poll(p); ok {
			return comp
		}
	}
}

// newRC builds a reliable QP with CQs on a node.
func newRC(node *core.Node, depth int) (*verbs.QP, *verbs.CQ, *verbs.CQ, error) {
	scq := verbs.NewCQ(node.QPIP, depth*2)
	rcq := verbs.NewCQ(node.QPIP, depth*2)
	qp, err := verbs.NewQP(node.QPIP, verbs.QPConfig{
		Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
		SendDepth: depth, RecvDepth: depth,
	})
	return qp, scq, rcq, err
}

// newUD builds an unreliable QP with CQs on a node.
func newUD(node *core.Node, depth int) (*verbs.QP, *verbs.CQ, *verbs.CQ, error) {
	scq := verbs.NewCQ(node.QPIP, depth*2)
	rcq := verbs.NewCQ(node.QPIP, depth*2)
	qp, err := verbs.NewQP(node.QPIP, verbs.QPConfig{
		Transport: verbs.Unreliable, SendCQ: scq, RecvCQ: rcq,
		SendDepth: depth, RecvDepth: depth,
	})
	return qp, scq, rcq, err
}

// qpipPingPongStats carries everything the RTT and Table 1/2/3
// experiments extract from one QPIP ping-pong run.
type qpipPingPongStats struct {
	rttUS float64
	// hostPerMsgUS is host CPU consumed by the timed verbs calls
	// (PostSend + PostRecv + successful Poll) per message — Table 1's
	// QPIP row.
	hostPerMsgUS float64
	cluster      *core.Cluster
}

// qpipPingPong runs a reliable 1-byte ping-pong (iters round trips after
// warmup) on a QPIP cluster with the given checksum mode.
func qpipPingPong(cs qpipnic.ChecksumMode, mtu, iters int, tweak func(*core.NodeConfig)) qpipPingPongStats {
	cfg := core.NodeConfig{QPIP: true, QPIPMTU: mtu, QPIPChecksum: cs}
	if tweak != nil {
		tweak(&cfg)
	}
	c := core.NewCluster(2, cfg)
	var out qpipPingPongStats
	out.cluster = c
	const port = 7000
	total := iters + 2 // one warmup RTT

	serverReady := false
	c.Spawn("server", func(p *sim.Proc) {
		qp, _, rcq, err := newRC(c.Nodes[1], 2*total)
		if err != nil {
			panic(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(port)
		if err != nil {
			panic(err)
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			panic(err)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64})
		}
		serverReady = true
		for i := 0; i < total-1; i++ {
			pollWait(p, rcq)
			qp.PostSend(p, verbs.SendWR{ID: uint64(i), Payload: buf.Virtual(1)})
		}
	})
	c.Spawn("client", func(p *sim.Proc) {
		qp, scq, rcq, err := newRC(c.Nodes[0], 2*total)
		if err != nil {
			panic(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, port); err != nil {
			panic(err)
		}
		for !serverReady {
			p.Sleep(5 * sim.Microsecond)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64})
		}
		cpu := c.Nodes[0].CPU
		// Warmup round trip.
		qp.PostSend(p, verbs.SendWR{ID: 0, Payload: buf.Virtual(1)})
		pollWait(p, rcq)
		pollWait(p, scq)
		c.Nodes[0].QPIP.ResetStages()
		c.Nodes[1].QPIP.ResetStages()

		var postSendBusy sim.Time
		start := p.Now()
		for i := 1; i <= iters; i++ {
			b0 := cpu.BusyTotal()
			qp.PostSend(p, verbs.SendWR{ID: uint64(i), Payload: buf.Virtual(1)})
			postSendBusy += cpu.BusyTotal() - b0
			pollWait(p, rcq) // wait for the echo
			pollWait(p, scq) // reap the send completion
		}
		rtt := p.Now() - start
		out.rttUS = rtt.Micros() / float64(iters)
		// Table 1 accounting — "directly timing the associated
		// communication methods": PostSend (measured), PostRecv
		// (measured), plus one successful CQ poll per message.
		b0 := cpu.BusyTotal()
		qp.PostRecv(p, verbs.RecvWR{ID: 9999, Capacity: 64})
		postRecvCost := cpu.BusyTotal() - b0
		perMsg := postSendBusy/sim.Time(iters) + postRecvCost + params.US(params.VerbsPollUS)
		out.hostPerMsgUS = perMsg.Micros()
	})
	c.Run()
	return out
}

// qpipUDPPingPong measures the unreliable (UDP) 1-byte RTT.
func qpipUDPPingPong(cs qpipnic.ChecksumMode, iters int) float64 {
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPChecksum: cs})
	var rttUS float64
	total := iters + 2
	c.Spawn("server", func(p *sim.Proc) {
		qp, _, rcq, err := newUD(c.Nodes[1], 2*total)
		if err != nil {
			panic(err)
		}
		if _, err := qp.BindUDP(7001); err != nil {
			panic(err)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64})
		}
		for i := 0; i < total-1; i++ {
			comp := pollWait(p, rcq)
			qp.PostSend(p, verbs.SendWR{
				ID: uint64(i), Payload: buf.Virtual(1),
				RemoteAddr: comp.RemoteAddr, RemotePort: comp.RemotePort,
			})
		}
	})
	c.Spawn("client", func(p *sim.Proc) {
		qp, _, rcq, err := newUD(c.Nodes[0], 2*total)
		if err != nil {
			panic(err)
		}
		if _, err := qp.BindUDP(7002); err != nil {
			panic(err)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64})
		}
		send := func(i int) {
			qp.PostSend(p, verbs.SendWR{
				ID: uint64(i), Payload: buf.Virtual(1),
				RemoteAddr: c.Nodes[1].Addr6, RemotePort: 7001,
			})
		}
		send(0) // warmup
		pollWait(p, rcq)
		start := p.Now()
		for i := 1; i <= iters; i++ {
			send(i)
			pollWait(p, rcq)
		}
		rttUS = (p.Now() - start).Micros() / float64(iters)
	})
	c.Run()
	return rttUS
}

// sockPingPong measures the host-stack 1-byte RTT over GigE or GM.
func sockPingPong(kind StackKind, udp bool, iters int) float64 {
	var c *core.Cluster
	if kind == IPGigE {
		c = core.NewCluster(2, core.NodeConfig{GigE: true})
	} else {
		c = core.NewCluster(2, core.NodeConfig{GM: true})
	}
	var rttUS float64
	if udp {
		c.Spawn("server", func(p *sim.Proc) {
			s := c.Nodes[1].Kernel.NewSocket(hostos.UDPSock)
			s.BindUDP(7001)
			for {
				b, addr, port, err := s.RecvFrom(p)
				if err != nil {
					return
				}
				_ = b
				if err := s.SendTo(p, buf.Virtual(1), addr, port); err != nil {
					return
				}
			}
		})
		c.Spawn("client", func(p *sim.Proc) {
			s := c.Nodes[0].Kernel.NewSocket(hostos.UDPSock)
			s.BindUDP(7002)
			s.SendTo(p, buf.Virtual(1), c.Nodes[1].Addr4, 7001) // warmup
			s.RecvFrom(p)
			start := p.Now()
			for i := 0; i < iters; i++ {
				s.SendTo(p, buf.Virtual(1), c.Nodes[1].Addr4, 7001)
				s.RecvFrom(p)
			}
			rttUS = (p.Now() - start).Micros() / float64(iters)
			s.Close(p)
		})
		c.RunFor(30 * sim.Second)
		return rttUS
	}
	c.Spawn("server", func(p *sim.Proc) {
		lst := c.Nodes[1].Kernel.NewSocket(hostos.TCPSock)
		lst.Listen(7000, 4)
		s := lst.Accept(p)
		s.SetNoDelay(true)
		for {
			if _, err := s.RecvFull(p, 1); err != nil {
				return
			}
			if err := s.Send(p, buf.Virtual(1)); err != nil {
				return
			}
		}
	})
	c.Spawn("client", func(p *sim.Proc) {
		s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, c.Nodes[1].Addr4, 7000); err != nil {
			panic(fmt.Sprintf("bench: connect: %v", err))
		}
		s.Send(p, buf.Virtual(1)) // warmup
		s.RecvFull(p, 1)
		start := p.Now()
		for i := 0; i < iters; i++ {
			s.Send(p, buf.Virtual(1))
			s.RecvFull(p, 1)
		}
		rttUS = (p.Now() - start).Micros() / float64(iters)
		s.Close(p)
	})
	c.RunFor(30 * sim.Second)
	return rttUS
}

// hostLoopbackOverhead measures Table 1's host-based row: per-message
// host CPU for a 1-byte TCP message through loopback.
func hostLoopbackOverhead(iters int) float64 {
	c := core.NewCluster(1, core.NodeConfig{GigE: true})
	k := c.Nodes[0].Kernel
	var perMsgUS float64
	done := false
	c.Spawn("server", func(p *sim.Proc) {
		lst := k.NewSocket(hostos.TCPSock)
		lst.Listen(7000, 4)
		s := lst.Accept(p)
		for !done {
			if _, err := s.Recv(p, 64); err != nil {
				return
			}
			if err := s.Send(p, buf.Virtual(1)); err != nil {
				return
			}
		}
	})
	c.Spawn("client", func(p *sim.Proc) {
		s := k.NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, c.Nodes[0].Addr4, 7000); err != nil {
			panic(err)
		}
		s.Send(p, buf.Virtual(1))
		s.RecvFull(p, 1)
		b0 := k.CPU().BusyTotal()
		for i := 0; i < iters; i++ {
			s.Send(p, buf.Virtual(1))
			s.RecvFull(p, 1)
		}
		perMsgUS = (k.CPU().BusyTotal() - b0).Micros() / float64(2*iters)
		done = true
		s.Close(p)
	})
	c.RunFor(60 * sim.Second)
	return perMsgUS
}

// cyclesAt converts microseconds of host time to host cycles.
func cyclesAt(us float64) float64 { return us * params.HostClockHz / 1e6 }
