package bench

import (
	"fmt"
	"strings"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// IRQRow is one point of the CQ interrupt-coalescing ablation: the
// latency a blocked waiter pays for event pacing versus the host CPU and
// wakeups the receiver saves while streaming.
type IRQRow struct {
	DelayUS float64 // CQ coalescing delay (QPIPCQCoalesceDelay)
	// PingPongUS is the 1-byte RTT with Wait-based (blocking) completion
	// reaps — the workload that eats the full coalescing delay.
	PingPongUS float64
	// StreamMBps / StreamRecvCPU are the ttcp-style streaming numbers.
	StreamMBps    float64
	StreamRecvCPU float64
	// WakesPerMsg is receiver CQ event-line firings per message: below 1.0
	// means one interrupt is servicing a train of completions.
	WakesPerMsg float64
}

// irqDelaysUS is the swept coalescing delay; 0 is the immediate-wake
// baseline (timing-identical to the per-token boundary).
var irqDelaysUS = []float64{0, 30, 70, 150, 300, 600}

// irqCoalescePkts is deliberately high so the delay knob, not the packet
// threshold, is the binding constraint across the sweep.
const irqCoalescePkts = 64

// irqStreamMsg is the streaming message size. Small messages drive the
// completion rate above 1/delay — the regime interrupt pacing exists for;
// at the 16 KB ttcp chunk the inter-completion gap already exceeds every
// swept delay and an idle line fires immediately.
const irqStreamMsg = 4 * 1024

// irqPingPong measures the blocking-reap RTT under a CQ coalescing delay:
// both sides sleep in Wait and are woken by the CQ event line, so every
// message pays the pacing delay twice (once per direction).
func irqPingPong(delay sim.Time, iters int) float64 {
	c := core.NewCluster(2, core.NodeConfig{
		QPIP:                true,
		QPIPCQCoalescePkts:  irqCoalescePkts,
		QPIPCQCoalesceDelay: delay,
	})
	var rttUS float64
	const port = 7000
	total := iters + 2

	serverReady := false
	c.Spawn("server", func(p *sim.Proc) {
		qp, _, rcq, err := newRC(c.Nodes[1], 2*total)
		if err != nil {
			panic(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(port)
		if err != nil {
			panic(err)
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			panic(err)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64})
		}
		serverReady = true
		for i := 0; i < total-1; i++ {
			rcq.Wait(p)
			qp.PostSend(p, verbs.SendWR{ID: uint64(i), Payload: buf.Virtual(1)})
		}
	})
	c.Spawn("client", func(p *sim.Proc) {
		qp, scq, rcq, err := newRC(c.Nodes[0], 2*total)
		if err != nil {
			panic(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, port); err != nil {
			panic(err)
		}
		for !serverReady {
			p.Sleep(5 * sim.Microsecond)
		}
		for i := 0; i < total; i++ {
			qp.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64})
		}
		// Warmup round trip.
		qp.PostSend(p, verbs.SendWR{ID: 0, Payload: buf.Virtual(1)})
		rcq.Wait(p)
		scq.Wait(p)
		start := p.Now()
		for i := 1; i <= iters; i++ {
			qp.PostSend(p, verbs.SendWR{ID: uint64(i), Payload: buf.Virtual(1)})
			rcq.Wait(p)
			scq.Wait(p)
		}
		rttUS = (p.Now() - start).Micros() / float64(iters)
	})
	c.Run()
	return rttUS
}

// irqStream runs the unidirectional streaming workload (qpipTtcp's shape)
// and additionally reads the receiver CQ's event line to report wakeups
// per message.
func irqStream(delay sim.Time, totalBytes int) (mbps, recvCPU, wakesPerMsg float64) {
	c := core.NewCluster(2, core.NodeConfig{
		QPIP:                true,
		QPIPCQCoalescePkts:  irqCoalescePkts,
		QPIPCQCoalesceDelay: delay,
	})
	maxMsg := c.Nodes[0].QPIP.MaxMessage()
	msgSize := irqStreamMsg
	if msgSize > maxMsg {
		msgSize = maxMsg
	}
	nMsgs := (totalBytes + msgSize - 1) / msgSize
	const port = 7000
	const window = 64
	const batch = 16

	var start, end sim.Time
	var rcvBusy0 sim.Time
	var wakes uint64

	c.Spawn("server", func(p *sim.Proc) {
		qp, _, rcq, err := newRC(c.Nodes[1], 2*window)
		if err != nil {
			panic(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(port)
		if err != nil {
			panic(err)
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			panic(err)
		}
		var fired0 uint64
		if line := rcq.EventLine(); line != nil {
			fired0 = line.Fired()
		}
		var rwrs [batch]verbs.RecvWR
		var comps [window]verbs.Completion
		posted, got := 0, 0
		postMore := func() {
			for posted < nMsgs && posted-got < window {
				b := 0
				for b < batch && posted+b < nMsgs && (posted+b)-got < window {
					rwrs[b] = verbs.RecvWR{ID: uint64(posted + b), Capacity: msgSize}
					b++
				}
				k, err := qp.PostRecvN(p, rwrs[:b])
				if err != nil {
					panic(err)
				}
				posted += k
			}
		}
		postMore()
		for got < nMsgs {
			rcq.Wait(p)
			got++
			got += rcq.PollN(p, comps[:])
			postMore()
		}
		end = p.Now()
		if line := rcq.EventLine(); line != nil {
			wakes = line.Fired() - fired0
		}
	})
	c.Spawn("client", func(p *sim.Proc) {
		qp, scq, _, err := newRC(c.Nodes[0], 2*window)
		if err != nil {
			panic(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, port); err != nil {
			panic(err)
		}
		start = p.Now()
		rcvBusy0 = c.Nodes[1].CPU.BusyTotal()
		var wrs [batch]verbs.SendWR
		var comps [window]verbs.Completion
		inFlight, sent := 0, 0
		for sent < nMsgs {
			for inFlight < window && sent < nMsgs {
				b := 0
				for b < batch && inFlight+b < window && sent+b < nMsgs {
					wrs[b] = verbs.SendWR{ID: uint64(sent + b), Payload: buf.Virtual(msgSize)}
					b++
				}
				k, err := qp.PostSendN(p, wrs[:b])
				if err != nil {
					panic(err)
				}
				sent += k
				inFlight += k
			}
			scq.Wait(p)
			inFlight--
			if inFlight > 0 {
				inFlight -= scq.PollN(p, comps[:inFlight])
			}
		}
		for inFlight > 0 {
			scq.Wait(p)
			inFlight--
		}
	})
	c.Run()
	dur := end - start
	mbps = float64(nMsgs*msgSize) / 1e6 / dur.Seconds()
	recvCPU = float64(c.Nodes[1].CPU.BusyTotal()-rcvBusy0) / float64(dur)
	wakesPerMsg = float64(wakes) / float64(nMsgs)
	return
}

// IRQAblation sweeps the CQ event coalescing delay and reports the
// latency / host-CPU tradeoff: pacing completion interrupts trades
// blocking-reap round-trip time for fewer receiver wakeups and lower
// host utilization under streaming load.
func IRQAblation(totalBytes, rttIters int) []IRQRow {
	rows := make([]IRQRow, len(irqDelaysUS))
	sweep(len(rows), func(i int) {
		d := sim.Time(irqDelaysUS[i] * float64(sim.Microsecond))
		mbps, cpu, wakes := irqStream(d, totalBytes)
		rows[i] = IRQRow{
			DelayUS:       irqDelaysUS[i],
			PingPongUS:    irqPingPong(d, rttIters),
			StreamMBps:    mbps,
			StreamRecvCPU: cpu,
			WakesPerMsg:   wakes,
		}
	})
	return rows
}

// RenderIRQ formats the coalescing ablation.
func RenderIRQ(rows []IRQRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CQ interrupt coalescing ablation (coalesce threshold %d pkts)\n", irqCoalescePkts)
	fmt.Fprintf(&b, "%10s %14s %12s %12s %12s\n",
		"delay us", "pingpong us", "stream MB/s", "recv CPU", "wakes/msg")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.0f %14.1f %12.1f %11.1f%% %12.3f\n",
			r.DelayUS, r.PingPongUS, r.StreamMBps, 100*r.StreamRecvCPU, r.WakesPerMsg)
	}
	b.WriteString("delay 0 = immediate wakes (identical timing to the per-token boundary);\n")
	b.WriteString("larger delays pace CQ event interrupts: RTT rises, receiver wakeups and\n")
	b.WriteString("host CPU fall as one interrupt reaps a train of completions.\n")
	return b.String()
}
