package bench

import (
	"strings"
	"testing"

	"repro/internal/params"
)

// These tests are shape checks: the measured results must reproduce the
// paper's qualitative story (who wins, by roughly what factor, where the
// crossovers fall). EXPERIMENTS.md records the exact numbers.

func TestFigure3Shape(t *testing.T) {
	rows := Figure3(20)
	byStack := map[string]RTTRow{}
	for _, r := range rows {
		byStack[r.Stack] = r
	}
	qhw := byStack["QPIP (emulated hw csum)"]
	qfw := byStack["QPIP (firmware csum)"]
	gige := byStack["IP/GigE"]
	myri := byStack["IP/Myrinet"]

	// UDP is always faster than TCP on the same stack.
	for _, r := range rows {
		if r.UDPus >= r.TCPus {
			t.Errorf("%s: UDP RTT %.1f >= TCP RTT %.1f", r.Stack, r.UDPus, r.TCPus)
		}
	}
	// Firmware checksums slow QPIP down.
	if qfw.TCPus <= qhw.TCPus {
		t.Errorf("fw-checksum TCP RTT %.1f not above hw %.1f", qfw.TCPus, qhw.TCPus)
	}
	// Paper's quoted firmware numbers: 73 us UDP / 113 us TCP. Require
	// the same neighborhood (+-35%).
	if qfw.UDPus < 47 || qfw.UDPus > 99 {
		t.Errorf("QPIP fw UDP RTT %.1f us, paper 73", qfw.UDPus)
	}
	if qfw.TCPus < 73 || qfw.TCPus > 153 {
		t.Errorf("QPIP fw TCP RTT %.1f us, paper 113", qfw.TCPus)
	}
	// QPIP (hw) competes with the host stacks.
	if qhw.TCPus > 1.5*gige.TCPus {
		t.Errorf("QPIP TCP RTT %.1f far above GigE %.1f", qhw.TCPus, gige.TCPus)
	}
	t.Logf("\n%s", RenderFigure3(rows))
	_ = myri
}

func TestFigure4Shape(t *testing.T) {
	rows := Figure4(4 << 20) // smaller transfer for test speed
	get := func(stack string, mtu int) TtcpRow {
		for _, r := range rows {
			if r.Stack == stack && r.MTU == mtu {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", stack, mtu)
		return TtcpRow{}
	}
	gige := get("IP/GigE", params.MTUEthernet)
	myri := get("IP/Myrinet", params.MTUJumbo)
	q1500 := get("QPIP", params.MTUEthernet)
	q9000 := get("QPIP", params.MTUJumbo)
	q16k := get("QPIP", params.MTUQPIP)
	qfw := get("QPIP (fw csum)", params.MTUQPIP)

	// Headline: QPIP at native MTU beats both host stacks at theirs.
	if q16k.MBps <= gige.MBps || q16k.MBps <= myri.MBps {
		t.Errorf("QPIP@16K %.1f MB/s does not beat GigE %.1f / Myrinet %.1f",
			q16k.MBps, gige.MBps, myri.MBps)
	}
	// QPIP host CPU is a tiny fraction of the host stacks'.
	if q16k.HostCPU > 0.10 {
		t.Errorf("QPIP host CPU %.1f%%, expected near zero", q16k.HostCPU*100)
	}
	if gige.HostCPU < 0.4 {
		t.Errorf("GigE host CPU %.0f%%, paper: half to three quarters", gige.HostCPU*100)
	}
	// Small MTU: the adapter CPU limits QPIP below GigE (paper: 22% less).
	if q1500.MBps >= gige.MBps {
		t.Errorf("QPIP@1500 %.1f MB/s not below GigE %.1f", q1500.MBps, gige.MBps)
	}
	// 9000 B: QPIP beats IP/Myrinet (paper: 70.1 vs less).
	if q9000.MBps <= myri.MBps {
		t.Errorf("QPIP@9000 %.1f MB/s not above IP/Myrinet %.1f", q9000.MBps, myri.MBps)
	}
	// Firmware checksum collapses throughput (paper: 75.6 -> 26.4).
	if qfw.MBps > 0.55*q16k.MBps {
		t.Errorf("fw checksum only reduced throughput to %.1f of %.1f", qfw.MBps, q16k.MBps)
	}
	// Ordering across the QPIP MTU sweep: bigger segments, more goodput.
	if !(q1500.MBps < q9000.MBps && q9000.MBps < q16k.MBps) {
		t.Errorf("MTU sweep not monotone: %.1f / %.1f / %.1f",
			q1500.MBps, q9000.MBps, q16k.MBps)
	}
	t.Logf("\n%s", RenderFigure4(rows))
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(30)
	host, qp := rows[0], rows[1]
	// Paper: 29.9 us vs 2.5 us — QPIP at a small fraction.
	if qp.Micros > 0.2*host.Micros {
		t.Errorf("QPIP overhead %.1f us not a fraction of host %.1f us", qp.Micros, host.Micros)
	}
	if qp.Micros < 1.5 || qp.Micros > 4.0 {
		t.Errorf("QPIP overhead %.1f us, paper 2.5", qp.Micros)
	}
	if host.Micros < 20 || host.Micros > 45 {
		t.Errorf("host overhead %.1f us, paper 29.9", host.Micros)
	}
	t.Logf("\n%s", RenderTable1(rows))
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2(30)
	for _, r := range rows {
		if r.PaperDataUS > 0 && r.DataUS > 0 {
			lo, hi := r.PaperDataUS*0.9, r.PaperDataUS*1.4
			if r.Stage == "Get Data" {
				hi = r.PaperDataUS + 1.0 // includes the 1-byte DMA
			}
			if r.DataUS < lo || r.DataUS > hi {
				t.Errorf("Tx %q data = %.2f us, paper %.1f", r.Stage, r.DataUS, r.PaperDataUS)
			}
		}
	}
	t.Logf("\n%s", RenderTable2(rows))
}

func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3(30)
	for _, r := range rows {
		if r.PaperDataUS > 0 && r.DataUS > 0 {
			lo, hi := r.PaperDataUS*0.9, r.PaperDataUS*1.4
			if r.Stage == "Put Data" {
				hi = r.PaperDataUS + 1.0
			}
			if r.DataUS < lo || r.DataUS > hi {
				t.Errorf("Rx %q data = %.2f us, paper %.1f", r.Stage, r.DataUS, r.PaperDataUS)
			}
		}
	}
	// The ACK path's TCP parse must show the software-multiply penalty.
	for _, r := range rows {
		if r.Stage == "TCP Parse" {
			if r.AckUS < 1.5*r.DataUS {
				t.Errorf("ACK TCP parse %.1f not ~2x data %.1f (paper: 14 vs 7)", r.AckUS, r.DataUS)
			}
		}
	}
	t.Logf("\n%s", RenderTable3(rows))
}

func TestFigure7Shape(t *testing.T) {
	rows := Figure7(48 << 20) // reduced size for test runtime
	byStack := map[string]NBDRow{}
	for _, r := range rows {
		byStack[r.Stack] = r
	}
	qp, gige, myri := byStack["QPIP"], byStack["IP/GigE"], byStack["IP/Myrinet"]
	// QPIP wins read and write throughput (paper: +40% to +137%).
	if qp.ReadMBps <= gige.ReadMBps || qp.WriteMBps <= gige.WriteMBps {
		t.Errorf("QPIP (%.1f/%.1f) does not beat GigE (%.1f/%.1f)",
			qp.WriteMBps, qp.ReadMBps, gige.WriteMBps, gige.ReadMBps)
	}
	if qp.ReadMBps < 1.2*gige.ReadMBps {
		t.Errorf("QPIP read advantage over GigE only %.0f%%", (qp.ReadMBps/gige.ReadMBps-1)*100)
	}
	// QPIP wins CPU effectiveness (paper: up to +133%).
	if qp.ReadEff <= gige.ReadEff || qp.ReadEff <= myri.ReadEff {
		t.Errorf("QPIP read effectiveness %.1f not above GigE %.1f / Myrinet %.1f",
			qp.ReadEff, gige.ReadEff, myri.ReadEff)
	}
	// Filesystem floor: every stack burns >=20% CPU during the runs.
	for _, r := range rows {
		if r.ReadCPU < 0.10 {
			t.Errorf("%s read CPU %.0f%% — below any plausible filesystem floor", r.Stack, r.ReadCPU*100)
		}
	}
	t.Logf("\n%s", RenderFigure7(rows))
}

func TestAblations(t *testing.T) {
	ck := AblationChecksum(2 << 20)
	if ck.Variant.MBps >= ck.Baseline.MBps {
		t.Errorf("firmware checksum did not reduce throughput: %.1f vs %.1f",
			ck.Variant.MBps, ck.Baseline.MBps)
	}
	pl := AblationPipelinedTX(2 << 20)
	if pl.Variant.MBps <= pl.Baseline.MBps {
		t.Errorf("pipelined TX did not help: %.1f vs %.1f", pl.Variant.MBps, pl.Baseline.MBps)
	}
	ack := AblationDelAck(2 << 20)
	if ack.Variant.MBps > ack.Baseline.MBps*1.05 {
		t.Errorf("ack-every-segment beat delayed acks: %.1f vs %.1f", ack.Variant.MBps, ack.Baseline.MBps)
	}
	sweep := AblationMTU(2 << 20)
	if len(sweep) < 3 || sweep[0].MBps >= sweep[len(sweep)-1].MBps {
		t.Errorf("MTU sweep not increasing: %+v", sweep)
	}
	out := RenderAblation(ck) + RenderAblation(pl) + RenderAblation(ack) + RenderMTUSweep(sweep)
	if !strings.Contains(out, "Ablation") {
		t.Error("renderers broken")
	}
	t.Logf("\n%s", out)
}
