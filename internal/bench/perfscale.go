package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// This file is the PR-7 parallel-scaling harness: the same many-pair
// workload runs sequentially and sharded (internal/sim/par), and the report
// records wall clock, fired events, and events/second per configuration.
// The equivalence tests (qpip/parallel_test.go) prove every configuration
// simulates the identical world, so rows differ only in mechanism cost —
// and the fired-event counts are asserted equal here as a cheap cross-check.
//
// Two placements are measured. "local" keeps each communicating pair on one
// shard with the fabrics severed (ShardPlan.Isolate): shards free-run to
// quiescence with no barriers, the embarrassingly parallel best case.
// "cross" places nodes round-robin so every flow crosses the shard
// boundary: each row pays the full lookahead-epoch barrier cost, the honest
// worst case. Wall-clock speedup is bounded by min(shards, GOMAXPROCS) —
// each row records GOMAXPROCS so results from hosts with different core
// counts stay comparable.

// ScaleRow is one engine-placement configuration's measurement.
type ScaleRow struct {
	Placement    string  `json:"placement"` // sequential | local | cross
	Shards       int     `json:"shards"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`
	// SpeedupWall is sequential wall / this row's wall (1.0 for sequential).
	SpeedupWall float64 `json:"speedup_wall_vs_sequential"`
	// EventsMatch records the cheap bit-identity cross-check: the sharded
	// run fired exactly as many events as the sequential one.
	EventsMatch bool `json:"events_match_sequential"`
	// Underprovisioned flags rows where the host has fewer cores than the
	// row has shards: wall-clock speedup is then bounded by the core
	// count, not the sharding, and the number should not be read as the
	// simulator's scaling limit.
	Underprovisioned bool `json:"underprovisioned"`
}

// ScaleReport is the whole parallel-scaling comparison.
type ScaleReport struct {
	GeneratedBy  string     `json:"generated_by"`
	GoVersion    string     `json:"go_version"`
	GOOS         string     `json:"goos"`
	GOARCH       string     `json:"goarch"`
	GOMAXPROCS   int        `json:"gomaxprocs"`
	NumCPU       int        `json:"num_cpu"`
	Pairs        int        `json:"pairs"`
	BytesPerPair int        `json:"bytes_per_pair"`
	Workload     string     `json:"workload"`
	Rows         []ScaleRow `json:"rows"`
}

// scaleWorkload spawns `pairs` independent reliable-QP transfers, client
// node 2k -> server node 2k+1, each pushing totalBytes in 16 KB messages.
// It is placement-agnostic: SpawnOn pins every process to its node's shard
// engine, which on a sequential cluster is the one engine.
func scaleWorkload(c *core.Cluster, pairs, totalBytes int) {
	msgSize := TtcpChunk
	if m := c.Nodes[0].QPIP.MaxMessage(); msgSize > m {
		msgSize = m
	}
	nMsgs := (totalBytes + msgSize - 1) / msgSize
	const window = 32
	for k := 0; k < pairs; k++ {
		client, server := 2*k, 2*k+1
		port := uint16(7000 + k)
		c.SpawnOn(server, fmt.Sprintf("server%d", server), func(p *sim.Proc) {
			qp, _, rcq, err := newRC(c.Nodes[server], 2*window)
			if err != nil {
				panic(err)
			}
			lst, err := c.Nodes[server].QPIP.Listen(port)
			if err != nil {
				panic(err)
			}
			lst.Post(qp)
			if err := qp.WaitEstablished(p); err != nil {
				panic(err)
			}
			posted, got := 0, 0
			postMore := func() {
				for posted < nMsgs && posted-got < window {
					if err := qp.PostRecv(p, verbs.RecvWR{ID: uint64(posted), Capacity: msgSize}); err != nil {
						panic(err)
					}
					posted++
				}
			}
			postMore()
			for got < nMsgs {
				rcq.Wait(p)
				got++
				postMore()
			}
		})
		c.SpawnOn(client, fmt.Sprintf("client%d", client), func(p *sim.Proc) {
			qp, scq, _, err := newRC(c.Nodes[client], 2*window)
			if err != nil {
				panic(err)
			}
			if err := qp.Connect(p, c.Nodes[server].Addr6, port); err != nil {
				panic(err)
			}
			inFlight, sent := 0, 0
			for sent < nMsgs {
				for inFlight < window && sent < nMsgs {
					if err := qp.PostSend(p, verbs.SendWR{ID: uint64(sent), Payload: buf.Virtual(msgSize)}); err != nil {
						panic(err)
					}
					sent++
					inFlight++
				}
				scq.Wait(p)
				inFlight--
			}
			for inFlight > 0 {
				scq.Wait(p)
				inFlight--
			}
		})
	}
}

// scaleCluster builds the cluster for one placement.
func scaleCluster(placement string, pairs, shards int) *core.Cluster {
	cfg := core.NodeConfig{QPIP: true}
	switch placement {
	case "sequential":
		return core.NewCluster(2*pairs, cfg)
	case "local":
		// Pair k entirely on shard k%shards; no cross-shard traffic, so the
		// fabrics are severed and the runner skips barriers.
		return core.NewShardedCluster(2*pairs, cfg, core.ShardPlan{
			Shards:    shards,
			NodeShard: func(i int) int { return (i / 2) % shards },
			Isolate:   true,
		})
	case "cross":
		// Round-robin: every pair straddles shards, all frames ride the
		// lookahead-epoch mailboxes.
		return core.NewShardedCluster(2*pairs, cfg, core.ShardPlan{Shards: shards})
	default:
		panic("unknown placement " + placement)
	}
}

// measureScaleOnce runs the workload once on a fresh cluster.
func measureScaleOnce(placement string, pairs, shards, totalBytes int) ScaleRow {
	c := scaleCluster(placement, pairs, shards)
	scaleWorkload(c, pairs, totalBytes)
	runtime.GC()
	t0 := time.Now()
	c.Run()
	wall := time.Since(t0).Seconds()
	fired := c.FiredTotal()
	return ScaleRow{
		Placement:    placement,
		Shards:       shards,
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		WallSeconds:  wall,
		Events:       fired,
		EventsPerSec: float64(fired) / wall,
	}
}

// measureScale takes the best of `repeats` runs (wall clock is the only
// thing that varies; the simulated schedule is identical every time).
func measureScale(placement string, pairs, shards, totalBytes, repeats int) ScaleRow {
	var best ScaleRow
	for r := 0; r < repeats; r++ {
		v := measureScaleOnce(placement, pairs, shards, totalBytes)
		if r == 0 || v.WallSeconds < best.WallSeconds {
			best = v
		}
	}
	return best
}

// Perfscale runs the scaling sweep: a sequential baseline, isolated (local)
// placement at 1/2/4/... shards up to maxShards, and one cross-placement
// row at 2 shards.
func Perfscale(pairs, maxShards, bytesPerPair, repeats int) ScaleReport {
	if pairs <= 0 {
		pairs = 4
	}
	if maxShards <= 0 {
		maxShards = 4
	}
	if maxShards > pairs {
		maxShards = pairs
	}
	if bytesPerPair <= 0 {
		bytesPerPair = 4 << 20
	}
	if repeats <= 0 {
		repeats = 3
	}
	rep := ScaleReport{
		GeneratedBy:  "qpipbench -exp perfscale",
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Pairs:        pairs,
		BytesPerPair: bytesPerPair,
		Workload: fmt.Sprintf(
			"%d independent qpip pairs, %d bytes each in 16 KB messages, %d-node cluster",
			pairs, bytesPerPair, 2*pairs),
	}

	seq := measureScale("sequential", pairs, 1, bytesPerPair, repeats)
	seq.SpeedupWall = 1
	seq.EventsMatch = true
	rep.Rows = append(rep.Rows, seq)

	add := func(row ScaleRow) {
		row.SpeedupWall = seq.WallSeconds / row.WallSeconds
		row.EventsMatch = row.Events == seq.Events
		row.Underprovisioned = rep.NumCPU < row.Shards
		rep.Rows = append(rep.Rows, row)
	}
	for s := 1; s <= maxShards; s *= 2 {
		add(measureScale("local", pairs, s, bytesPerPair, repeats))
	}
	if maxShards >= 2 {
		add(measureScale("cross", pairs, 2, bytesPerPair, repeats))
	}
	return rep
}

// RenderPerfscale formats the sweep for the terminal.
func RenderPerfscale(r ScaleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel scaling: conservative sharded engines vs sequential\n")
	fmt.Fprintf(&b, "workload: %s\n", r.Workload)
	fmt.Fprintf(&b, "host: GOMAXPROCS=%d NumCPU=%d (wall speedup is bounded by min(shards, GOMAXPROCS))\n",
		r.GOMAXPROCS, r.NumCPU)
	fmt.Fprintf(&b, "%-12s %7s %11s %10s %14s %14s %9s %7s\n",
		"placement", "shards", "gomaxprocs", "wall (s)", "events", "events/s", "speedup", "ident")
	warned := false
	for _, row := range r.Rows {
		note := ""
		if row.Underprovisioned {
			note = "  (underprovisioned)"
			warned = true
		}
		fmt.Fprintf(&b, "%-12s %7d %11d %10.3f %14d %14.0f %8.2fx %7v%s\n",
			row.Placement, row.Shards, row.Gomaxprocs, row.WallSeconds,
			row.Events, row.EventsPerSec, row.SpeedupWall, row.EventsMatch, note)
	}
	if warned {
		fmt.Fprintf(&b, "WARNING: host has %d CPU(s) — rows with more shards than cores measure scheduler overhead, not simulator scaling\n",
			r.NumCPU)
	}
	return b.String()
}

// WriteScaleJSON writes the report as indented JSON.
func WriteScaleJSON(path string, r ScaleReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// PerfscaleGuard is the CI scaling gate. Every sharded row must fire
// exactly the sequential event count (bit-identity's cheap shadow), and
// wall clock must meet the bound the host can actually express:
//
//	effective := min(shards, GOMAXPROCS)
//	effective >= 4: local placement must be >= 2.5x sequential
//	effective == 2: local placement must be >= 1.3x sequential
//	effective == 1: no parallelism available — the runner must not cost
//	                more than 1/tolerance of sequential wall (an overhead
//	                bound, sized loose enough to absorb shared-CI noise)
func PerfscaleGuard(pairs, shards, bytesPerPair int) (string, bool) {
	r := Perfscale(pairs, shards, bytesPerPair, 3)
	const tolerance = 0.70 // allow 1/0.70 ≈ 43% wall noise/overhead at 1 core
	ok := true
	var b strings.Builder
	fmt.Fprintf(&b, "perfscale guard: %s\n", r.Workload)
	seq := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if !row.EventsMatch {
			ok = false
			fmt.Fprintf(&b, "FAIL %s/%d: fired %d events, sequential fired %d\n",
				row.Placement, row.Shards, row.Events, seq.Events)
			continue
		}
		effective := row.Shards
		if row.Gomaxprocs < effective {
			effective = row.Gomaxprocs
		}
		var need float64
		switch {
		case row.Placement != "local":
			need = 0 // cross placement is reported, not gated: barrier cost is the honest overhead row
		case effective >= 4:
			need = 2.5
		case effective == 2:
			need = 1.3
		default:
			need = tolerance
		}
		verdict := "PASS"
		if need > 0 && row.SpeedupWall < need {
			ok = false
			verdict = "FAIL"
		}
		note := ""
		if row.Underprovisioned {
			note = " [WARNING: underprovisioned — fewer cores than shards]"
		}
		fmt.Fprintf(&b, "%s %s/%d shards (effective cores %d): %.2fx vs sequential (need %.2fx)%s\n",
			verdict, row.Placement, row.Shards, effective, row.SpeedupWall, need, note)
	}
	fmt.Fprintf(&b, "%s\n", map[bool]string{true: "PASS", false: "FAIL"}[ok])
	return b.String(), ok
}
