package bench

import (
	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/qpipnic"
)

// Ablation benches for the design choices DESIGN.md calls out. Each
// returns paired measurements with everything equal but the one knob.

// AblationRow compares one knob's two settings.
type AblationRow struct {
	Name     string
	Baseline TtcpMeasure
	Variant  TtcpMeasure
	// BaselineLabel / VariantLabel name the settings.
	BaselineLabel, VariantLabel string
}

// AblationChecksum isolates receive checksum placement: emulated hardware
// versus the LANai software loop (the paper's 75.6 vs 26.4 MB/s gap).
func AblationChecksum(totalBytes int) AblationRow {
	if totalBytes <= 0 {
		totalBytes = 10 << 20
	}
	return AblationRow{
		Name:          "receive checksum placement",
		BaselineLabel: "emulated hardware",
		VariantLabel:  "firmware loop",
		Baseline:      qpipTtcp(params.MTUQPIP, qpipnic.ChecksumEmulatedHW, totalBytes, nil),
		Variant:       qpipTtcp(params.MTUQPIP, qpipnic.ChecksumFirmware, totalBytes, nil),
	}
}

// AblationPipelinedTX isolates the transmit FSM's serialization against
// the network send engine: the prototype waited for the wire; a pipelined
// firmware overlaps the next WR's processing with serialization.
func AblationPipelinedTX(totalBytes int) AblationRow {
	if totalBytes <= 0 {
		totalBytes = 10 << 20
	}
	return AblationRow{
		Name:          "transmit FSM / send engine overlap",
		BaselineLabel: "serialized (prototype)",
		VariantLabel:  "pipelined",
		Baseline:      qpipTtcp(params.MTUQPIP, qpipnic.ChecksumEmulatedHW, totalBytes, nil),
		Variant: qpipTtcp(params.MTUQPIP, qpipnic.ChecksumEmulatedHW, totalBytes,
			func(cfg *core.NodeConfig) { cfg.QPIPPipelinedTX = true }),
	}
}

// AblationDelAck isolates firmware delayed acks: acking every second
// segment halves the expensive ACK-parse path (14 us of software
// multiplies per ACK, Table 3) on the sender's adapter. Delayed acks are
// the BSD-derived default; acking every segment is the variant.
func AblationDelAck(totalBytes int) AblationRow {
	if totalBytes <= 0 {
		totalBytes = 10 << 20
	}
	return AblationRow{
		Name:          "firmware ack policy",
		BaselineLabel: "delayed acks (BSD default)",
		VariantLabel:  "ack every segment",
		Baseline:      qpipTtcp(params.MTUEthernet, qpipnic.ChecksumEmulatedHW, totalBytes, nil),
		Variant: qpipTtcp(params.MTUEthernet, qpipnic.ChecksumEmulatedHW, totalBytes,
			func(cfg *core.NodeConfig) { cfg.QPIPNoDelAck = true }),
	}
}

// AblationMTU reports the QPIP MTU sweep (also part of Figure 4) as an
// ablation over segment size: per-message NIC costs amortize with MTU
// until the DMA and wire times dominate.
func AblationMTU(totalBytes int) []TtcpRow {
	if totalBytes <= 0 {
		totalBytes = 10 << 20
	}
	mtus := []int{1500, 4096, 9000, 16 * 1024, 32 * 1024}
	rows := make([]TtcpRow, len(mtus))
	sweep(len(mtus), func(i int) {
		m := qpipTtcp(mtus[i], qpipnic.ChecksumEmulatedHW, totalBytes, nil)
		rows[i] = TtcpRow{
			Stack: "QPIP", MTU: mtus[i],
			MBps: m.MBps, HostCPU: m.effectiveHostCPU(), NICCPU: m.NICCPU,
		}
	})
	return rows
}
