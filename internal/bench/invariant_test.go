package bench

import (
	"testing"

	"repro/internal/hw"
)

// TestTtcpEventCountInvariant pins the exact number of events a ttcp
// transfer fires, per host↔NIC boundary mode. Every optimization in this
// simulator is supposed to be pure mechanism — pooling, free lists, and
// pre-bound continuations change how events are allocated and dispatched,
// never which events fire or in what order. A drift in these counts means
// an "optimization" changed simulated behavior, which is a correctness
// bug regardless of how much faster it runs.
//
// The batched boundary legitimately fires fewer events than per-token
// (vectored doorbells collapse FSM activations, completion trains
// collapse CQ DMA bursts); each mode's count is pinned separately so
// neither path can drift silently.
func TestTtcpEventCountInvariant(t *testing.T) {
	defer hw.SetBatchedBoundary(hw.BatchedBoundary())
	for _, tc := range []struct {
		batched bool
		bytes   int
		want    uint64
	}{
		{true, 4 << 20, 9300},
		{true, 32 << 20, 75000},
		{false, 4 << 20, 10649},
		{false, 32 << 20, 79949},
	} {
		hw.SetBatchedBoundary(tc.batched)
		v := measureTtcpOnce("current", tc.bytes)
		if v.Events != tc.want {
			t.Errorf("batched=%v bytes=%d: events fired = %d, want %d",
				tc.batched, tc.bytes, v.Events, tc.want)
		}
	}
}
