package bench

import "testing"

// TestTtcpEventCountInvariant pins the exact number of events a ttcp
// transfer fires. Every optimization in this simulator is supposed to be
// pure mechanism — pooling, free lists, and pre-bound continuations change
// how events are allocated and dispatched, never which events fire or in
// what order. A drift in these counts means an "optimization" changed
// simulated behavior, which is a correctness bug regardless of how much
// faster it runs. (The counts were captured from the unoptimized engine
// and verified identical after the rework.)
func TestTtcpEventCountInvariant(t *testing.T) {
	for _, tc := range []struct {
		bytes int
		want  uint64
	}{{4 << 20, 11133}, {32 << 20, 84033}} {
		v := measureTtcpOnce("current", tc.bytes)
		if v.Events != tc.want {
			t.Errorf("bytes=%d: events fired = %d, want %d", tc.bytes, v.Events, tc.want)
		}
	}
}
