package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/nbd"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/verbs"
)

// This file is the PR-9 connection-density harness: how do per-connection
// memory and host CPU per request behave as the connection count sweeps
// 64 -> 8192? Three workloads (N->1 incast, RPC connection churn, a
// many-client NBD block service) run on four variants: QPIP with shared
// receive queues (the tentpole), QPIP with private per-QP receive queues
// (the A/B baseline), and the two host-based stacks. The SRQ claim is
// that receive-buffer memory scales with service concurrency instead of
// connection count; the host-stack rows show the kernel's per-socket
// buffer reservations that QPIP's adapter-resident state avoids.
//
// Accounting:
//   - adapter_sram_bytes: NIC.SRAMFootprint() — the per-connection TCB +
//     state-table slot + RNR stash bytes (params.SRAMConnBytes et al).
//   - host_mem_bytes: receive-buffer provisioning on the host (posted WR
//     capacity + WR descriptors + QP structs), or for the host stacks the
//     kernel's ConnMemBytes() (TCB + socket + snd/rcv buffer reservations).
//   - host_cpu_per_req_us: the server node's total CPU busy time divided
//     by requests served — it includes connection setup and completion
//     handling, which is exactly what scales (or doesn't) with density.
//
// Memory is snapshotted at the provisioned point (all connections up,
// all receive buffers posted) for incast and NBD; the churn workload
// instead reports the residual table state after the storm, which must
// not grow with cumulative connection count.

const (
	connPort     = 7800
	connMsgBytes = 1024
	connNBDRead  = 4096
	// connNBDBufCap is the request-buffer capacity an NBD server must
	// provision per receive: the largest write a client may send.
	connNBDBufCap = connNBDRead + 64
	// connChurnWorkers bounds concurrent connections during churn.
	connChurnWorkers = 64
)

// connPoolWRs sizes the shared receive pool: service concurrency, not
// connection count. This constant-size pool against a growing connection
// axis IS the SRQ memory story.
func connPoolWRs(conns, perConn int) int {
	pool := 256
	if conns*perConn < pool {
		pool = conns * perConn
	}
	return pool
}

// ConnRow is one (workload, variant, connection-count) measurement.
type ConnRow struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Conns    int    `json:"conns"`
	Requests int    `json:"requests"`
	// PerConnMemBytes = (adapter SRAM + host receive provisioning) / conns.
	PerConnMemBytes float64 `json:"per_conn_mem_bytes"`
	SRAMBytes       int     `json:"adapter_sram_bytes"`
	HostMemBytes    int     `json:"host_mem_bytes"`
	HostCPUPerReqUS float64 `json:"host_cpu_per_req_us"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	// LiveEnd is the connection-table residency when the run ends: the
	// connection count for the steady workloads, ~0 after churn.
	LiveEnd int `json:"live_conns_end"`
	// RecycledQPNs counts adapter QPN reuse during churn (QPIP only).
	RecycledQPNs uint64 `json:"recycled_qpns,omitempty"`
}

// ConnReport is the whole connection-density sweep.
type ConnReport struct {
	GeneratedBy    string    `json:"generated_by"`
	ConnCounts     []int     `json:"conn_counts"`
	MsgsPerConn    int       `json:"msgs_per_conn"`
	IncastMsgBytes int       `json:"incast_msg_bytes"`
	NBDReadBytes   int       `json:"nbd_read_bytes"`
	Rows           []ConnRow `json:"rows"`
}

// ---- QPIP incast. ----

// incastQPIP drives conns clients into one server adapter, each sending
// msgs messages of connMsgBytes. With useSRQ the server's receive
// buffers come from one shared pool reposted per completion; without it
// each QP pre-posts msgs private buffers.
func incastQPIP(conns, msgs int, useSRQ bool) ConnRow {
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMaxQPs: conns + 64})
	nicC, nicS := c.Nodes[0].QPIP, c.Nodes[1].QPIP
	row := ConnRow{Workload: "incast", Conns: conns, Requests: conns * msgs,
		Variant: map[bool]string{true: "qpip-srq", false: "qpip-priv"}[useSRQ]}

	c.Spawn("incast-server", func(p *sim.Proc) {
		rcq := verbs.NewCQ(nicS, conns*msgs+8)
		scq := verbs.NewCQ(nicS, 8)
		var srq *verbs.SRQ
		pool := 0
		if useSRQ {
			pool = connPoolWRs(conns, msgs)
			var err error
			srq, err = verbs.NewSRQ(nicS, verbs.SRQConfig{Depth: pool})
			if err != nil {
				panic(err)
			}
		}
		lst, err := nicS.Listen(connPort)
		if err != nil {
			panic(err)
		}
		qps := make([]*verbs.QP, conns)
		for i := range qps {
			qpCfg := verbs.QPConfig{Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq, SendDepth: 2}
			if useSRQ {
				qpCfg.SRQ = srq
			} else {
				qpCfg.RecvDepth = msgs
			}
			qp, err := verbs.NewQP(nicS, qpCfg)
			if err != nil {
				panic(err)
			}
			if err := lst.Post(qp); err != nil {
				panic(err)
			}
			qps[i] = qp
		}
		// Provision receive buffers, then snapshot the committed memory.
		if useSRQ {
			for i := 0; i < pool; i++ {
				if err := srq.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: connMsgBytes}); err != nil {
					panic(err)
				}
			}
			row.HostMemBytes = srq.HostMemBytes() + conns*params.HostQPBytes
		} else {
			host := conns * params.HostQPBytes
			for _, qp := range qps {
				for m := 0; m < msgs; m++ {
					if err := qp.PostRecv(p, verbs.RecvWR{ID: uint64(m), Capacity: connMsgBytes}); err != nil {
						panic(err)
					}
				}
				host += qp.PostedRecvBytes() + msgs*params.HostWRBytes
			}
			row.HostMemBytes = host
		}
		row.SRAMBytes = nicS.SRAMFootprint()
		// Pool reposts are batched through PostRecvN: one doorbell per 16
		// claims. Late arrivals ride the RNR stash until the batch posts.
		repost := make([]verbs.RecvWR, 0, 16)
		for got := 0; got < conns*msgs; got++ {
			comp := rcq.Wait(p)
			if comp.Status != verbs.StatusSuccess {
				panic(fmt.Sprintf("incast recv: %v", comp.Status))
			}
			if useSRQ {
				repost = append(repost, verbs.RecvWR{ID: 0, Capacity: connMsgBytes})
				if len(repost) == cap(repost) {
					if _, err := srq.PostRecvN(p, repost); err != nil {
						panic(err)
					}
					repost = repost[:0]
				}
			}
		}
		// Snapshot at the last served request: engine spin-down (timer
		// horizons, close handshakes) must not pollute the metrics.
		row.HostCPUPerReqUS = c.Nodes[1].CPU.BusyTotal().Micros() / float64(row.Requests)
		row.ElapsedMS = c.Eng.Now().Micros() / 1000
	})
	for ci := 0; ci < conns; ci++ {
		c.Spawn(fmt.Sprintf("incast-cli%d", ci), func(p *sim.Proc) {
			scq := verbs.NewCQ(nicC, 2*msgs)
			rcq := verbs.NewCQ(nicC, 2)
			qp, err := verbs.NewQP(nicC, verbs.QPConfig{
				Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
				SendDepth: msgs + 1, RecvDepth: 1,
			})
			if err != nil {
				panic(err)
			}
			if err := qp.Connect(p, c.Nodes[1].Addr6, connPort); err != nil {
				panic(err)
			}
			for m := 0; m < msgs; m++ {
				if err := qp.PostSend(p, verbs.SendWR{ID: uint64(m), Payload: buf.Virtual(connMsgBytes)}); err != nil {
					panic(err)
				}
			}
			for m := 0; m < msgs; m++ {
				scq.Wait(p)
			}
		})
	}
	c.Run()
	row.LiveEnd = nicS.LiveQPs()
	row.PerConnMemBytes = float64(row.SRAMBytes+row.HostMemBytes) / float64(conns)
	return row
}

// incastSock is the host-stack incast: conns sockets into one kernel.
func incastSock(kind StackKind, conns, msgs int) ConnRow {
	cfg := core.NodeConfig{GigE: kind == IPGigE, GM: kind == IPMyrinet}
	c := core.NewCluster(2, cfg)
	k := c.Nodes[1].Kernel
	row := ConnRow{Workload: "incast", Conns: conns, Requests: conns * msgs,
		Variant: map[StackKind]string{IPGigE: "ip-gige", IPMyrinet: "ip-myrinet"}[kind]}

	c.Spawn("incast-server", func(p *sim.Proc) {
		lst := k.NewSocket(hostos.TCPSock)
		if err := lst.Listen(connPort, conns); err != nil {
			panic(err)
		}
		children := make([]*hostos.Socket, conns)
		for i := range children {
			children[i] = lst.Accept(p)
		}
		// All connections established: snapshot the kernel's committed
		// per-socket memory before draining.
		row.HostMemBytes = k.ConnMemBytes()
		for _, s := range children {
			if _, err := s.RecvFull(p, msgs*connMsgBytes); err != nil {
				panic(err)
			}
		}
		row.LiveEnd = k.LiveConns()
		row.HostCPUPerReqUS = k.CPU().BusyTotal().Micros() / float64(row.Requests)
		row.ElapsedMS = c.Eng.Now().Micros() / 1000
		for _, s := range children {
			s.Close(p)
		}
	})
	for ci := 0; ci < conns; ci++ {
		c.Spawn(fmt.Sprintf("incast-cli%d", ci), func(p *sim.Proc) {
			s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
			s.SetNoDelay(true)
			if err := s.Connect(p, c.Nodes[1].Addr4, connPort); err != nil {
				panic(err)
			}
			for m := 0; m < msgs; m++ {
				if err := s.Send(p, buf.Virtual(connMsgBytes)); err != nil {
					panic(err)
				}
			}
			s.Close(p)
		})
	}
	c.RunFor(300 * sim.Second)
	row.PerConnMemBytes = float64(row.HostMemBytes) / float64(conns)
	return row
}

// ---- Connection churn. ----

// churnQPIP cycles conns short-lived RPC connections (one 1 KB request
// each) through connChurnWorkers concurrent worker pairs, exercising QPN
// recycling, state-table slot reuse and demux-table reaping. Each worker
// pair owns a private port and keeps one connection pipelined ahead so
// no SYN ever finds the listener without a parked QP.
func churnQPIP(conns int, useSRQ bool) ConnRow {
	w := connChurnWorkers
	if conns < w {
		w = conns
	}
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMaxQPs: 4*w + 64})
	nicC, nicS := c.Nodes[0].QPIP, c.Nodes[1].QPIP
	row := ConnRow{Workload: "churn", Conns: conns, Requests: conns,
		Variant: map[bool]string{true: "qpip-srq", false: "qpip-priv"}[useSRQ]}

	var srq *verbs.SRQ
	if useSRQ {
		var err error
		srq, err = verbs.NewSRQ(nicS, verbs.SRQConfig{Depth: 2 * w})
		if err != nil {
			panic(err)
		}
	}
	workerRounds := func(i int) int {
		r := conns / w
		if i < conns%w {
			r++
		}
		return r
	}
	served := 0
	for i := 0; i < w; i++ {
		i := i
		rounds := workerRounds(i)
		port := uint16(connPort + i)
		c.Spawn(fmt.Sprintf("churn-srv%d", i), func(p *sim.Proc) {
			scq := verbs.NewCQ(nicS, 8)
			rcq := verbs.NewCQ(nicS, 8)
			lst, err := nicS.Listen(port)
			if err != nil {
				panic(err)
			}
			if useSRQ {
				// Worker 0 provisions the shared pool.
				if i == 0 {
					for b := 0; b < 2*w; b++ {
						if err := srq.PostRecv(p, verbs.RecvWR{ID: uint64(b), Capacity: connMsgBytes}); err != nil {
							panic(err)
						}
					}
				}
			}
			newQP := func() *verbs.QP {
				qpCfg := verbs.QPConfig{Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq, SendDepth: 2}
				if useSRQ {
					qpCfg.SRQ = srq
				} else {
					qpCfg.RecvDepth = 2
				}
				qp, err := verbs.NewQP(nicS, qpCfg)
				if err != nil {
					panic(err)
				}
				if err := lst.Post(qp); err != nil {
					panic(err)
				}
				return qp
			}
			// Keep one connection ahead of the client so round r+1's SYN
			// always finds a parked QP.
			pending := make([]*verbs.QP, 0, 2)
			for r := 0; r < rounds && r < 2; r++ {
				pending = append(pending, newQP())
			}
			for r := 0; r < rounds; r++ {
				qp := pending[0]
				pending = pending[1:]
				if err := qp.WaitEstablished(p); err != nil {
					panic(err)
				}
				if r+2 < rounds {
					pending = append(pending, newQP())
				}
				if !useSRQ {
					if err := qp.PostRecv(p, verbs.RecvWR{ID: 1, Capacity: connMsgBytes}); err != nil {
						panic(err)
					}
				}
				comp := rcq.Wait(p)
				if comp.Status != verbs.StatusSuccess {
					panic(fmt.Sprintf("churn recv: %v", comp.Status))
				}
				if useSRQ {
					if err := srq.PostRecv(p, verbs.RecvWR{ID: 1, Capacity: connMsgBytes}); err != nil {
						panic(err)
					}
				}
				if served++; served == conns {
					// Last request in: snapshot before the reaped-peer
					// retransmit tails stretch the engine's spin-down.
					row.HostCPUPerReqUS = c.Nodes[1].CPU.BusyTotal().Micros() / float64(conns)
					row.ElapsedMS = c.Eng.Now().Micros() / 1000
				}
				qp.Close()
			}
		})
	}
	for i := 0; i < w; i++ {
		i := i
		rounds := workerRounds(i)
		port := uint16(connPort + i)
		c.Spawn(fmt.Sprintf("churn-cli%d", i), func(p *sim.Proc) {
			scq := verbs.NewCQ(nicC, 8)
			rcq := verbs.NewCQ(nicC, 8)
			for r := 0; r < rounds; r++ {
				qp, err := verbs.NewQP(nicC, verbs.QPConfig{
					Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
					SendDepth: 2, RecvDepth: 1,
				})
				if err != nil {
					panic(err)
				}
				if err := qp.Connect(p, c.Nodes[1].Addr6, port); err != nil {
					panic(err)
				}
				if err := qp.PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Virtual(connMsgBytes)}); err != nil {
					panic(err)
				}
				scq.Wait(p)
				qp.Close()
			}
		})
	}
	c.Run()
	row.LiveEnd = nicS.LiveTCPConns()
	row.SRAMBytes = nicS.SRAMFootprint()
	if useSRQ {
		row.HostMemBytes = srq.HostMemBytes()
	}
	row.RecycledQPNs = nicS.Net.Get("qpn.recycled") + nicC.Net.Get("qpn.recycled")
	row.PerConnMemBytes = float64(row.SRAMBytes+row.HostMemBytes) / float64(conns)
	return row
}

// churnSock cycles conns short-lived socket connections through worker
// pairs — the kernel's port-allocation and demux-table reaping under the
// same storm.
func churnSock(kind StackKind, conns int) ConnRow {
	w := connChurnWorkers
	if conns < w {
		w = conns
	}
	cfg := core.NodeConfig{GigE: kind == IPGigE, GM: kind == IPMyrinet}
	c := core.NewCluster(2, cfg)
	k := c.Nodes[1].Kernel
	row := ConnRow{Workload: "churn", Conns: conns, Requests: conns,
		Variant: map[StackKind]string{IPGigE: "ip-gige", IPMyrinet: "ip-myrinet"}[kind]}

	workerRounds := func(i int) int {
		r := conns / w
		if i < conns%w {
			r++
		}
		return r
	}
	served := 0
	for i := 0; i < w; i++ {
		i := i
		rounds := workerRounds(i)
		port := uint16(connPort + i)
		c.Spawn(fmt.Sprintf("churn-srv%d", i), func(p *sim.Proc) {
			lst := k.NewSocket(hostos.TCPSock)
			if err := lst.Listen(port, 8); err != nil {
				panic(err)
			}
			for r := 0; r < rounds; r++ {
				s := lst.Accept(p)
				if _, err := s.RecvFull(p, connMsgBytes); err != nil {
					panic(err)
				}
				if served++; served == conns {
					row.HostCPUPerReqUS = k.CPU().BusyTotal().Micros() / float64(conns)
					row.ElapsedMS = c.Eng.Now().Micros() / 1000
				}
				s.Close(p)
			}
		})
		c.Spawn(fmt.Sprintf("churn-cli%d", i), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
				s.SetNoDelay(true)
				if err := s.Connect(p, c.Nodes[1].Addr4, port); err != nil {
					panic(err)
				}
				if err := s.Send(p, buf.Virtual(connMsgBytes)); err != nil {
					panic(err)
				}
				s.Close(p)
			}
		})
	}
	c.RunFor(600 * sim.Second)
	row.LiveEnd = k.LiveConns()
	row.HostMemBytes = k.ConnMemBytes()
	row.PerConnMemBytes = float64(row.HostMemBytes) / float64(conns)
	return row
}

// ---- Many-client NBD. ----

// nbdConnQPIP serves conns NBD clients (msgs 4 KB reads each) from one
// adapter. Both QPIP variants run the same flat request/reply server off
// one shared receive CQ; they differ only in where request buffers live:
// a shared pool (SRQ) or 2 private buffers per QP, each sized for the
// largest request a client may send.
func nbdConnQPIP(conns, msgs int, useSRQ bool) ConnRow {
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMaxQPs: conns + 64})
	nicC, nicS := c.Nodes[0].QPIP, c.Nodes[1].QPIP
	disk := storage.NewDisk(c.Eng, "connscale.disk", int64(conns)*int64(msgs)*connNBDRead+(64<<20))
	dev := &storage.LocalDev{D: disk}
	row := ConnRow{Workload: "nbd", Conns: conns, Requests: conns * msgs,
		Variant: map[bool]string{true: "qpip-srq", false: "qpip-priv"}[useSRQ]}

	c.Spawn("nbd-server", func(p *sim.Proc) {
		rcq := verbs.NewCQ(nicS, conns*msgs+8)
		scq := verbs.NewCQ(nicS, 2*conns+8)
		var srq *verbs.SRQ
		pool := 0
		if useSRQ {
			pool = connPoolWRs(conns, 2)
			var err error
			srq, err = verbs.NewSRQ(nicS, verbs.SRQConfig{Depth: pool})
			if err != nil {
				panic(err)
			}
		}
		lst, err := nicS.Listen(connPort)
		if err != nil {
			panic(err)
		}
		qps := make([]*verbs.QP, conns)
		byQPN := make(map[uint32]*verbs.QP, conns)
		for i := range qps {
			qpCfg := verbs.QPConfig{Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq, SendDepth: 4}
			if useSRQ {
				qpCfg.SRQ = srq
			} else {
				qpCfg.RecvDepth = 2
			}
			qp, err := verbs.NewQP(nicS, qpCfg)
			if err != nil {
				panic(err)
			}
			if err := lst.Post(qp); err != nil {
				panic(err)
			}
			qps[i] = qp
			byQPN[qp.QPN] = qp
		}
		if useSRQ {
			for i := 0; i < pool; i++ {
				if err := srq.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: connNBDBufCap}); err != nil {
					panic(err)
				}
			}
			row.HostMemBytes = srq.HostMemBytes() + conns*params.HostQPBytes
		} else {
			host := conns * params.HostQPBytes
			for _, qp := range qps {
				for m := 0; m < 2; m++ {
					if err := qp.PostRecv(p, verbs.RecvWR{ID: uint64(m), Capacity: connNBDBufCap}); err != nil {
						panic(err)
					}
				}
				host += qp.PostedRecvBytes() + 2*params.HostWRBytes
			}
			row.HostMemBytes = host
		}
		row.SRAMBytes = nicS.SRAMFootprint()
		for served := 0; served < conns*msgs; served++ {
			comp := rcq.Wait(p)
			if comp.Status != verbs.StatusSuccess {
				panic(fmt.Sprintf("nbd server recv: %v", comp.Status))
			}
			req, err := nbd.ParseRequest(comp.Payload)
			if err != nil {
				panic(err)
			}
			data, err := dev.Read(p, int64(req.Offset), int(req.Length))
			if err != nil {
				panic(err)
			}
			qp := byQPN[comp.QPN]
			reply := buf.Concat(buf.Bytes(nbd.MarshalReply(&nbd.Reply{Handle: req.Handle})), data)
			if err := qp.PostSend(p, verbs.SendWR{ID: req.Handle, Payload: reply}); err != nil {
				panic(err)
			}
			wr := verbs.RecvWR{ID: 0, Capacity: connNBDBufCap}
			if useSRQ {
				err = srq.PostRecv(p, wr)
			} else {
				err = qp.PostRecv(p, wr)
			}
			if err != nil {
				panic(err)
			}
			// Reap send completions lazily; depth 4 rides out the lag.
			for {
				if _, ok := scq.Poll(p); !ok {
					break
				}
			}
		}
		row.HostCPUPerReqUS = c.Nodes[1].CPU.BusyTotal().Micros() / float64(row.Requests)
		row.ElapsedMS = c.Eng.Now().Micros() / 1000
	})
	for ci := 0; ci < conns; ci++ {
		ci := ci
		c.Spawn(fmt.Sprintf("nbd-cli%d", ci), func(p *sim.Proc) {
			scq := verbs.NewCQ(nicC, 8)
			rcq := verbs.NewCQ(nicC, 8)
			qp, err := verbs.NewQP(nicC, verbs.QPConfig{
				Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
				SendDepth: 2, RecvDepth: 2,
			})
			if err != nil {
				panic(err)
			}
			if err := qp.Connect(p, c.Nodes[1].Addr6, connPort); err != nil {
				panic(err)
			}
			for m := 0; m < 2; m++ {
				if err := qp.PostRecv(p, verbs.RecvWR{ID: uint64(m), Capacity: connNBDRead + 64}); err != nil {
					panic(err)
				}
			}
			for m := 0; m < msgs; m++ {
				off := (int64(ci)*int64(msgs) + int64(m)) * connNBDRead
				req := nbd.Request{Type: nbd.CmdRead, Handle: uint64(ci)<<16 | uint64(m), Offset: uint64(off), Length: connNBDRead}
				if err := qp.PostSend(p, verbs.SendWR{ID: uint64(m), Payload: buf.Bytes(nbd.MarshalRequest(&req))}); err != nil {
					panic(err)
				}
				comp := rcq.Wait(p)
				if comp.Status != verbs.StatusSuccess || comp.ByteLen != nbd.ReplyLen+connNBDRead {
					panic(fmt.Sprintf("nbd reply: %v len %d", comp.Status, comp.ByteLen))
				}
				if err := qp.PostRecv(p, verbs.RecvWR{ID: 99, Capacity: connNBDRead + 64}); err != nil {
					panic(err)
				}
				scq.Wait(p)
			}
		})
	}
	c.Run()
	row.LiveEnd = nicS.LiveQPs()
	row.PerConnMemBytes = float64(row.SRAMBytes+row.HostMemBytes) / float64(conns)
	return row
}

// nbdConnSock is the host-stack NBD block service at conns clients.
func nbdConnSock(kind StackKind, conns, msgs int) ConnRow {
	cfg := core.NodeConfig{GigE: kind == IPGigE, GM: kind == IPMyrinet}
	c := core.NewCluster(2, cfg)
	k := c.Nodes[1].Kernel
	disk := storage.NewDisk(c.Eng, "connscale.disk", int64(conns)*int64(msgs)*connNBDRead+(64<<20))
	dev := &storage.LocalDev{D: disk}
	row := ConnRow{Workload: "nbd", Conns: conns, Requests: conns * msgs,
		Variant: map[StackKind]string{IPGigE: "ip-gige", IPMyrinet: "ip-myrinet"}[kind]}

	served := 0
	c.Spawn("nbd-server", func(p *sim.Proc) {
		lst := k.NewSocket(hostos.TCPSock)
		if err := lst.Listen(connPort, conns); err != nil {
			panic(err)
		}
		for i := 0; i < conns; i++ {
			s := lst.Accept(p)
			s.SetNoDelay(true)
			c.Spawn(fmt.Sprintf("nbd-srv-conn%d", i), func(hp *sim.Proc) {
				for {
					hdr, err := s.RecvFull(hp, nbd.RequestLen)
					if err != nil {
						return // client closed
					}
					req, err := nbd.ParseRequest(hdr)
					if err != nil {
						panic(err)
					}
					data, err := dev.Read(hp, int64(req.Offset), int(req.Length))
					if err != nil {
						panic(err)
					}
					if err := s.Send(hp, buf.Bytes(nbd.MarshalReply(&nbd.Reply{Handle: req.Handle}))); err != nil {
						return
					}
					if err := s.Send(hp, data); err != nil {
						return
					}
					if served++; served == row.Requests {
						row.HostCPUPerReqUS = k.CPU().BusyTotal().Micros() / float64(row.Requests)
						row.ElapsedMS = c.Eng.Now().Micros() / 1000
					}
				}
			})
			if i == conns-1 {
				row.HostMemBytes = k.ConnMemBytes()
				row.LiveEnd = k.LiveConns()
			}
		}
	})
	for ci := 0; ci < conns; ci++ {
		ci := ci
		c.Spawn(fmt.Sprintf("nbd-cli%d", ci), func(p *sim.Proc) {
			s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
			s.SetNoDelay(true)
			if err := s.Connect(p, c.Nodes[1].Addr4, connPort); err != nil {
				panic(err)
			}
			for m := 0; m < msgs; m++ {
				off := (int64(ci)*int64(msgs) + int64(m)) * connNBDRead
				req := nbd.Request{Type: nbd.CmdRead, Handle: uint64(ci)<<16 | uint64(m), Offset: uint64(off), Length: connNBDRead}
				if err := s.Send(p, buf.Bytes(nbd.MarshalRequest(&req))); err != nil {
					panic(err)
				}
				if _, err := s.RecvFull(p, nbd.ReplyLen); err != nil {
					panic(err)
				}
				if _, err := s.RecvFull(p, connNBDRead); err != nil {
					panic(err)
				}
			}
			s.Close(p)
		})
	}
	c.RunFor(600 * sim.Second)
	row.PerConnMemBytes = float64(row.HostMemBytes) / float64(conns)
	return row
}

// ---- Sweep, report, guard. ----

// connPoint dispatches one sweep point.
func connPoint(workload, variant string, conns, msgs int) ConnRow {
	switch workload + "/" + variant {
	case "incast/qpip-srq":
		return incastQPIP(conns, msgs, true)
	case "incast/qpip-priv":
		return incastQPIP(conns, msgs, false)
	case "incast/ip-gige":
		return incastSock(IPGigE, conns, msgs)
	case "incast/ip-myrinet":
		return incastSock(IPMyrinet, conns, msgs)
	case "churn/qpip-srq":
		return churnQPIP(conns, true)
	case "churn/qpip-priv":
		return churnQPIP(conns, false)
	case "churn/ip-gige":
		return churnSock(IPGigE, conns)
	case "churn/ip-myrinet":
		return churnSock(IPMyrinet, conns)
	case "nbd/qpip-srq":
		return nbdConnQPIP(conns, msgs, true)
	case "nbd/qpip-priv":
		return nbdConnQPIP(conns, msgs, false)
	case "nbd/ip-gige":
		return nbdConnSock(IPGigE, conns, msgs)
	case "nbd/ip-myrinet":
		return nbdConnSock(IPMyrinet, conns, msgs)
	}
	panic("unknown connscale point " + workload + "/" + variant)
}

// Connscale runs the full connection-density sweep. counts is the
// connection-count axis (default 64..8192); msgs is requests per
// connection for incast and NBD (churn always does one per connection).
func Connscale(counts []int, msgs int) ConnReport {
	if len(counts) == 0 {
		counts = []int{64, 512, 2048, 8192}
	}
	if msgs <= 0 {
		msgs = 4
	}
	workloads := []string{"incast", "churn", "nbd"}
	variants := []string{"qpip-srq", "qpip-priv", "ip-gige", "ip-myrinet"}
	type point struct {
		w, v  string
		conns int
	}
	var pts []point
	for _, w := range workloads {
		for _, v := range variants {
			for _, n := range counts {
				pts = append(pts, point{w, v, n})
			}
		}
	}
	rep := ConnReport{
		GeneratedBy:    "qpipbench -exp connscale",
		ConnCounts:     counts,
		MsgsPerConn:    msgs,
		IncastMsgBytes: connMsgBytes,
		NBDReadBytes:   connNBDRead,
		Rows:           make([]ConnRow, len(pts)),
	}
	sweep(len(pts), func(i int) {
		rep.Rows[i] = connPoint(pts[i].w, pts[i].v, pts[i].conns, msgs)
	})
	return rep
}

// RenderConnscale formats the sweep for the terminal.
func RenderConnscale(r ConnReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Connection density: per-connection memory and host CPU per request\n")
	fmt.Fprintf(&b, "(%d msgs/conn; incast %d B messages, nbd %d B reads; churn is 1 rpc/conn)\n",
		r.MsgsPerConn, r.IncastMsgBytes, r.NBDReadBytes)
	for _, w := range []string{"incast", "churn", "nbd"} {
		fmt.Fprintf(&b, "\n-- %s --\n", w)
		fmt.Fprintf(&b, "%-11s %6s %9s %12s %12s %12s %11s %8s %9s\n",
			"variant", "conns", "requests", "mem/conn (B)", "sram (B)", "host (B)", "cpu/req(us)", "live@end", "t (ms)")
		for _, row := range r.Rows {
			if row.Workload != w {
				continue
			}
			extra := ""
			if row.RecycledQPNs > 0 {
				extra = fmt.Sprintf("  recycled=%d", row.RecycledQPNs)
			}
			fmt.Fprintf(&b, "%-11s %6d %9d %12.0f %12d %12d %11.2f %8d %9.1f%s\n",
				row.Variant, row.Conns, row.Requests, row.PerConnMemBytes,
				row.SRAMBytes, row.HostMemBytes, row.HostCPUPerReqUS,
				row.LiveEnd, row.ElapsedMS, extra)
		}
	}
	return b.String()
}

// WriteConnJSON writes the report as indented JSON.
func WriteConnJSON(path string, r ConnReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ConnGuard is the CI connection-density gate, on the incast A/B only
// (the cheapest workload that isolates receive-buffer provisioning):
//
//   - at 1024 connections, SRQ per-connection memory must undercut the
//     private-queue variant by at least 2x — pooling must actually pool;
//   - at 64 connections, SRQ host CPU per request must not regress more
//     than 15% over private queues — the claim path must stay as cheap
//     as a private dequeue at low density;
//   - churn at 512 connections must end with empty connection tables on
//     the adapter — state recycling must not leak.
func ConnGuard(msgs int) (string, bool) {
	if msgs <= 0 {
		msgs = 4
	}
	ok := true
	var b strings.Builder
	fmt.Fprintf(&b, "connguard: incast SRQ-vs-private A/B, churn leak check\n")

	rows := make([]ConnRow, 5)
	sweep(len(rows), func(i int) {
		switch i {
		case 0:
			rows[i] = incastQPIP(64, msgs, true)
		case 1:
			rows[i] = incastQPIP(64, msgs, false)
		case 2:
			rows[i] = incastQPIP(1024, msgs, true)
		case 3:
			rows[i] = incastQPIP(1024, msgs, false)
		case 4:
			rows[i] = churnQPIP(512, true)
		}
	})
	lowSRQ, lowPriv, hiSRQ, hiPriv, churn := rows[0], rows[1], rows[2], rows[3], rows[4]

	check := func(pass bool, format string, args ...interface{}) {
		verdict := "PASS"
		if !pass {
			verdict = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "%s %s\n", verdict, fmt.Sprintf(format, args...))
	}
	check(hiSRQ.PerConnMemBytes*2 <= hiPriv.PerConnMemBytes,
		"1024 conns: srq %.0f B/conn vs priv %.0f B/conn (need >= 2x reduction)",
		hiSRQ.PerConnMemBytes, hiPriv.PerConnMemBytes)
	check(lowSRQ.HostCPUPerReqUS <= lowPriv.HostCPUPerReqUS*1.15,
		"64 conns: srq %.2f us/req vs priv %.2f us/req (allowed <= 1.15x)",
		lowSRQ.HostCPUPerReqUS, lowPriv.HostCPUPerReqUS)
	check(hiSRQ.LiveEnd == 1024 && lowSRQ.LiveEnd == 64,
		"incast connections all live at end (64: %d, 1024: %d)",
		lowSRQ.LiveEnd, hiSRQ.LiveEnd)
	check(churn.LiveEnd == 0,
		"churn 512 conns: %d residual demux entries (need 0)", churn.LiveEnd)
	check(churn.RecycledQPNs > 0,
		"churn 512 conns: %d QPNs recycled (need > 0)", churn.RecycledQPNs)

	fmt.Fprintf(&b, "%s\n", map[bool]string{true: "PASS", false: "FAIL"}[ok])
	return b.String(), ok
}
