package bench

import (
	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/nbd"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/verbs"
)

// ---- Figure 7: NBD client throughput and CPU effectiveness. ----

// NBDRow is one stack's bars in Figure 7.
type NBDRow struct {
	Stack     string
	WriteMBps float64
	ReadMBps  float64
	// CPU effectiveness in MB transferred per CPU-second on the client
	// (the paper's "MB/CPU·s").
	WriteEff float64
	ReadEff  float64
	// Client CPU utilization during each phase (the >=26% filesystem
	// floor shows here).
	WriteCPU, ReadCPU float64
}

// nbdPhases runs the benchmark phases on a mounted FS: sequential write
// of total bytes + sync, invalidate, sequential read (paper §4.2.3).
func nbdPhases(p *sim.Proc, fs *storage.FS, cpu *sim.CPU, total int, row *NBDRow) {
	const chunk = 256 * 1024 // application write()/read() size
	// Write phase.
	start, busy0 := p.Now(), cpu.BusyTotal()
	for off := 0; off < total; off += chunk {
		if err := fs.WriteAt(p, int64(off), buf.Virtual(chunk)); err != nil {
			panic(err)
		}
	}
	if err := fs.Sync(p); err != nil {
		panic(err)
	}
	wDur, wBusy := p.Now()-start, cpu.BusyTotal()-busy0
	row.WriteMBps = float64(total) / 1e6 / wDur.Seconds()
	row.WriteCPU = float64(wBusy) / float64(wDur)
	row.WriteEff = float64(total) / 1e6 / wBusy.Seconds()

	// Unmount between phases to invalidate the client cache.
	fs.Invalidate()

	// Read phase.
	start, busy0 = p.Now(), cpu.BusyTotal()
	for off := 0; off < total; off += chunk {
		if _, err := fs.ReadAt(p, int64(off), chunk); err != nil {
			panic(err)
		}
	}
	rDur, rBusy := p.Now()-start, cpu.BusyTotal()-busy0
	row.ReadMBps = float64(total) / 1e6 / rDur.Seconds()
	row.ReadCPU = float64(rBusy) / float64(rDur)
	row.ReadEff = float64(total) / 1e6 / rBusy.Seconds()
}

// nbdSockRun measures one sockets-based stack.
func nbdSockRun(kind StackKind, total int) NBDRow {
	var cfg core.NodeConfig
	if kind == IPGigE {
		cfg = core.NodeConfig{GigE: true}
	} else {
		cfg = core.NodeConfig{GM: true}
	}
	c := core.NewCluster(2, cfg)
	diskSize := int64(total) + (64 << 20)
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	row := NBDRow{Stack: kind.String()}
	c.Spawn("nbd-server", func(p *sim.Proc) {
		lst := c.Nodes[1].Kernel.NewSocket(hostos.TCPSock)
		if err := lst.Listen(10809, 4); err != nil {
			panic(err)
		}
		s := lst.Accept(p)
		s.SetNoDelay(true)
		s.SetSndBuf(512 * 1024)
		nbd.ServeSock(p, c.Nodes[1].CPU, s, disk)
	})
	c.Spawn("nbd-client", func(p *sim.Proc) {
		s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		s.SetSndBuf(512 * 1024)
		if err := s.Connect(p, c.Nodes[1].Addr4, 10809); err != nil {
			panic(err)
		}
		cli := nbd.NewSockClient(c.Eng, c.Nodes[0].CPU, s, diskSize, params.NBDQueueDepth)
		fs := storage.NewFS(cli, c.Nodes[0].CPU, 8<<20)
		nbdPhases(p, fs, c.Nodes[0].CPU, total, &row)
	})
	c.Run()
	return row
}

// nbdQPIPRun measures the QPIP stack at the 9000 B MTU the paper used
// for its NBD runs.
func nbdQPIPRun(total int) NBDRow {
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMTU: params.MTUJumbo})
	diskSize := int64(total) + (64 << 20)
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	maxMsg := c.Nodes[0].QPIP.MaxMessage()
	row := NBDRow{Stack: "QPIP"}
	c.Spawn("nbd-server", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[1].QPIP, 1024)
		rcq := verbs.NewCQ(c.Nodes[1].QPIP, 1024)
		qp, err := verbs.NewQP(c.Nodes[1].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 512, RecvDepth: 512,
		})
		if err != nil {
			panic(err)
		}
		lst, err := c.Nodes[1].QPIP.Listen(10809)
		if err != nil {
			panic(err)
		}
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			panic(err)
		}
		nbd.ServeQP(p, c.Nodes[1].CPU, qp, scq, rcq, maxMsg, disk)
	})
	c.Spawn("nbd-client", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[0].QPIP, 1024)
		rcq := verbs.NewCQ(c.Nodes[0].QPIP, 1024)
		qp, err := verbs.NewQP(c.Nodes[0].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 512, RecvDepth: 512,
		})
		if err != nil {
			panic(err)
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, 10809); err != nil {
			panic(err)
		}
		cli := nbd.NewQPClient(c.Eng, c.Nodes[0].CPU, qp, scq, rcq, maxMsg, diskSize, params.NBDQueueDepth)
		fs := storage.NewFS(cli, c.Nodes[0].CPU, 8<<20)
		nbdPhases(p, fs, c.Nodes[0].CPU, total, &row)
	})
	c.Run()
	return row
}

// Figure7 runs the NBD benchmark on all three stacks. totalBytes <= 0
// selects the paper's 409 MB.
func Figure7(totalBytes int) []NBDRow {
	if totalBytes <= 0 {
		totalBytes = 409 << 20
	}
	rows := make([]NBDRow, 3)
	sweep(len(rows), func(i int) {
		switch i {
		case 0:
			rows[i] = nbdSockRun(IPGigE, totalBytes)
		case 1:
			rows[i] = nbdSockRun(IPMyrinet, totalBytes)
		case 2:
			rows[i] = nbdQPIPRun(totalBytes)
		}
	})
	return rows
}

// Figure7Single runs the NBD benchmark on one stack.
func Figure7Single(kind StackKind, totalBytes int) []NBDRow {
	if totalBytes <= 0 {
		totalBytes = 409 << 20
	}
	if kind == QPIP {
		return []NBDRow{nbdQPIPRun(totalBytes)}
	}
	return []NBDRow{nbdSockRun(kind, totalBytes)}
}
