package bench

import (
	"repro/internal/params"
	"repro/internal/qpipnic"
)

// ---- Figure 3: application-to-application round trip time. ----

// RTTRow is one bar pair of Figure 3.
type RTTRow struct {
	Stack        string
	UDPus, TCPus float64
	// Paper values where the text states them (0 = figure-only).
	PaperUDPus, PaperTCPus float64
}

// Figure3 measures the 1-byte UDP and TCP RTT for the three stacks, plus
// the firmware-checksum QPIP variant the paper quotes numerically
// (73 us UDP, 113 us TCP, §4.2.1).
func Figure3(iters int) []RTTRow {
	if iters <= 0 {
		iters = 50
	}
	rows := make([]RTTRow, 4)
	sweep(len(rows), func(i int) {
		switch i {
		case 0:
			rows[i] = RTTRow{
				Stack: "IP/GigE",
				UDPus: sockPingPong(IPGigE, true, iters),
				TCPus: sockPingPong(IPGigE, false, iters),
			}
		case 1:
			rows[i] = RTTRow{
				Stack: "IP/Myrinet",
				UDPus: sockPingPong(IPMyrinet, true, iters),
				TCPus: sockPingPong(IPMyrinet, false, iters),
			}
		case 2:
			rows[i] = RTTRow{
				Stack: "QPIP (emulated hw csum)",
				UDPus: qpipUDPPingPong(qpipnic.ChecksumEmulatedHW, iters),
				TCPus: qpipPingPong(qpipnic.ChecksumEmulatedHW, params.MTUQPIP, iters, nil).rttUS,
			}
		case 3:
			rows[i] = RTTRow{
				Stack:      "QPIP (firmware csum)",
				UDPus:      qpipUDPPingPong(qpipnic.ChecksumFirmware, iters),
				TCPus:      qpipPingPong(qpipnic.ChecksumFirmware, params.MTUQPIP, iters, nil).rttUS,
				PaperUDPus: 73, PaperTCPus: 113,
			}
		}
	})
	return rows
}

// ---- Figure 4: ttcp throughput and CPU utilization. ----

// TtcpRow is one bar group of Figure 4 (plus the MTU sweep of §4.2.1).
type TtcpRow struct {
	Stack   string
	MTU     int
	MBps    float64
	HostCPU float64 // fraction of one processor (the busier host)
	NICCPU  float64 // QPIP adapter occupancy (0 for host stacks)
	// PaperMBps: 0 where the paper gives no number. GigE's 45.4 is
	// derived from "22% less than the gigabit Ethernet ... at 35.4".
	PaperMBps float64
}

// Figure4 runs the ttcp matrix: the three stacks at native MTUs, the QPIP
// MTU sweep, and the firmware-checksum point.
func Figure4(totalBytes int) []TtcpRow {
	if totalBytes <= 0 {
		totalBytes = 10 << 20 // the paper's 10 MB transfer
	}
	qpipMTUs := []int{params.MTUEthernet, params.MTUJumbo, params.MTUQPIP}
	rows := make([]TtcpRow, 3+len(qpipMTUs))
	sweep(len(rows), func(i int) {
		switch {
		case i == 0:
			g := sockTtcp(IPGigE, totalBytes, nil)
			rows[i] = TtcpRow{
				Stack: "IP/GigE", MTU: params.MTUEthernet,
				MBps: g.MBps, HostCPU: g.effectiveHostCPU(), PaperMBps: 45.4,
			}
		case i == 1:
			m := sockTtcp(IPMyrinet, totalBytes, nil)
			rows[i] = TtcpRow{
				Stack: "IP/Myrinet", MTU: params.MTUJumbo,
				MBps: m.MBps, HostCPU: m.effectiveHostCPU(),
			}
		case i < 2+len(qpipMTUs):
			mtu := qpipMTUs[i-2]
			q := qpipTtcp(mtu, qpipnic.ChecksumEmulatedHW, totalBytes, nil)
			paper := 0.0
			switch mtu {
			case params.MTUEthernet:
				paper = 35.4
			case params.MTUJumbo:
				paper = 70.1
			case params.MTUQPIP:
				paper = 75.6
			}
			rows[i] = TtcpRow{
				Stack: "QPIP", MTU: mtu,
				MBps: q.MBps, HostCPU: q.effectiveHostCPU(), NICCPU: q.NICCPU,
				PaperMBps: paper,
			}
		default:
			fw := qpipTtcp(params.MTUQPIP, qpipnic.ChecksumFirmware, totalBytes, nil)
			rows[i] = TtcpRow{
				Stack: "QPIP (fw csum)", MTU: params.MTUQPIP,
				MBps: fw.MBps, HostCPU: fw.effectiveHostCPU(), NICCPU: fw.NICCPU,
				PaperMBps: 26.4,
			}
		}
	})
	return rows
}

// ---- Table 1: host overhead for transmit and receive paths. ----

// OverheadRow is one row of Table 1.
type OverheadRow struct {
	Stack       string
	Micros      float64
	Cycles      float64
	PaperMicros float64
	PaperCycles float64
}

// Table1 measures the host send+receive overhead for a 1-byte TCP
// message: host stack via loopback RTT, QPIP via direct method timing
// (paper §4.2.2).
func Table1(iters int) []OverheadRow {
	if iters <= 0 {
		iters = 50
	}
	host := hostLoopbackOverhead(iters)
	q := qpipPingPong(qpipnic.ChecksumEmulatedHW, params.MTUQPIP, iters, nil)
	return []OverheadRow{
		{Stack: "Host-based IP", Micros: host, Cycles: cyclesAt(host), PaperMicros: 29.9, PaperCycles: 16445},
		{Stack: "QPIP", Micros: q.hostPerMsgUS, Cycles: cyclesAt(q.hostPerMsgUS), PaperMicros: 2.5, PaperCycles: 1386},
	}
}

// ---- Tables 2 & 3: NIC per-stage occupancy. ----

// StageRow is one stage of Table 2 or 3.
type StageRow struct {
	Stage         string
	DataUS, AckUS float64 // 0 = stage absent on that path
	PaperDataUS   float64
	PaperAckUS    float64
}

// table2Stages / table3Stages fix the paper's row order.
var table2Stages = []struct {
	name                string
	paperData, paperAck float64
	ackToo              bool
}{
	{"Doorbell Process", params.TxDoorbellProcUS, params.TxDoorbellProcUS, true},
	{"Schedule", params.TxScheduleUS, params.TxScheduleUS, true},
	{"Get WR", params.TxGetWRUS, 0, false},
	{"Get Data", params.TxGetDataUS, 0, false},
	{"Build TCP Hdr", params.TxBuildTCPHdrUS, params.TxBuildTCPHdrUS, true},
	{"Build IP Hdr", params.TxBuildIPHdrUS, params.TxBuildIPHdrUS, true},
	{"Send", params.TxSendUS, params.TxSendUS, true},
	{"Update", params.TxUpdateUS, params.TxUpdateUS, true},
}

var table3Stages = []struct {
	name                string
	paperData, paperAck float64
}{
	{"Doorbell Process", params.RxDoorbellProcUS, params.RxDoorbellProcUS},
	{"Media Rcv", params.RxMediaRcvUS, params.RxMediaRcvUS},
	{"IP Parse", params.RxIPParseUS, params.RxIPParseUS},
	{"TCP Parse", params.RxTCPParseDataUS, params.RxTCPParseAckUS},
	{"Get WR", params.RxGetWRUS, 0},
	{"Put Data", params.RxPutDataUS, 0},
	{"Update", params.RxUpdateDataUS, params.RxUpdateAckUS},
}

// occupancyRun runs a 1-byte ping-pong and returns the instrumented NICs.
func occupancyRun(iters int) (*qpipnic.NIC, *qpipnic.NIC) {
	st := qpipPingPong(qpipnic.ChecksumEmulatedHW, params.MTUQPIP, iters, nil)
	return st.cluster.Nodes[0].QPIP, st.cluster.Nodes[1].QPIP
}

// Table2 measures transmit-side per-stage occupancy for data and ACK
// sends from the live firmware instrumentation.
func Table2(iters int) []StageRow {
	if iters <= 0 {
		iters = 50
	}
	nic, _ := occupancyRun(iters)
	rows := make([]StageRow, 0, len(table2Stages))
	for _, s := range table2Stages {
		row := StageRow{
			Stage:       s.name,
			DataUS:      nic.TxData.Mean(s.name),
			PaperDataUS: s.paperData,
			PaperAckUS:  s.paperAck,
		}
		if s.ackToo {
			row.AckUS = nic.TxAck.Mean(s.name)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3 measures receive-side per-stage occupancy. The paper lists a
// "Doorbell Process" row on the receive path too (the rx FSM's wakeup
// accounting); our receive FSM is purely event-driven, so that row
// reports the transmit-side doorbell value for comparability.
func Table3(iters int) []StageRow {
	if iters <= 0 {
		iters = 50
	}
	_, nic := occupancyRun(iters) // server side receives the data messages
	rows := make([]StageRow, 0, len(table3Stages))
	for _, s := range table3Stages {
		row := StageRow{
			Stage:       s.name,
			PaperDataUS: s.paperData,
			PaperAckUS:  s.paperAck,
		}
		switch s.name {
		case "Doorbell Process":
			row.DataUS = nic.TxData.Mean(s.name)
			row.AckUS = nic.TxAck.Mean(s.name)
		case "TCP Parse", "Media Rcv", "IP Parse":
			row.DataUS = nic.RxData.Mean(s.name)
			row.AckUS = nic.RxAck.Mean(s.name)
		case "Update":
			row.DataUS = nic.RxData.Mean(s.name)
			row.AckUS = nic.RxAck.Mean(s.name)
		default: // Get WR, Put Data: data path only
			row.DataUS = nic.RxData.Mean(s.name)
		}
		rows = append(rows, row)
	}
	return rows
}
