package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/verbs"
)

// This file is the PR-8 collectives experiment: the same collective
// operations (barrier, ring allreduce) executed two ways on the same
// switched topology —
//
//   - host-based: a reference implementation over plain reliable QPs,
//     where every tree/ring step is a host-posted send and a host-side
//     CQ wait (one wakeup interrupt per step per rank);
//   - NIC-offloaded: the adapters' collective engine (qpipnic/coll.go),
//     where the host posts one WR and the whole schedule runs in
//     firmware.
//
// The contrast extends the paper's offload argument from point-to-point
// transport to multi-party patterns: the host-based path pays
// per-step verbs posts, ISR entries and wakeups on every rank, while the
// offloaded path pays one post and one completion interrupt regardless
// of group size. Latency is simulated time per operation measured at
// rank 0 in steady state; host CPU is the summed busy-time delta across
// every rank's host processor per operation.

// CollRow is one (topology, size, op, mode) measurement.
type CollRow struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Op       string `json:"op"`   // barrier | allreduce
	Mode     string `json:"mode"` // host | nic
	// LatencyUS is simulated latency per collective, steady state.
	LatencyUS float64 `json:"latency_us"`
	// HostCPUUS is host CPU consumed per collective, summed over all
	// ranks' host processors.
	HostCPUUS float64 `json:"host_cpu_us_per_op"`
}

// CollReport is the whole collectives comparison.
type CollReport struct {
	GeneratedBy string    `json:"generated_by"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Iters       int       `json:"iters"`
	VecWords    int       `json:"vec_words"`
	Nodes       []int     `json:"nodes"`
	Rows        []CollRow `json:"rows"`
}

// collSpec maps a topology name to its auto-sized Spec.
func collSpec(name string) topo.Spec {
	k, err := topo.ParseKind(name)
	if err != nil {
		panic(err)
	}
	return topo.Spec{Kind: k}
}

// collCluster builds an n-node QPIP cluster on the named topology.
func collCluster(topoName string, n int) *core.Cluster {
	return core.NewCluster(n, core.NodeConfig{QPIP: true, Topology: collSpec(topoName)})
}

// ---- NIC-offloaded runner. ----

// collNICRun measures the offloaded collective: every rank joins one
// group, runs a warmup operation, then iters timed operations.
func collNICRun(topoName string, n, iters, vecWords int, op string) (latUS, cpuUS float64) {
	c := collCluster(topoName, n)
	addrs := make([]inet.Addr6, n)
	for i := range addrs {
		addrs[i] = c.Nodes[i].Addr6
	}
	var start, end sim.Time
	busy := make([]sim.Time, n)
	for i := 0; i < n; i++ {
		i := i
		c.SpawnOn(i, fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			cq := verbs.NewCQ(c.Nodes[i].QPIP, 64)
			q, err := verbs.NewCollQ(c.Nodes[i].QPIP, 1, i, addrs, cq)
			if err != nil {
				panic(err)
			}
			post := func(id uint64) {
				var perr error
				if op == "barrier" {
					perr = q.PostBarrier(p, id)
				} else {
					vec := make([]uint64, vecWords)
					for j := range vec {
						vec[j] = uint64(i + j)
					}
					perr = q.PostAllreduce(p, id, vec)
				}
				if perr != nil {
					panic(perr)
				}
			}
			post(0) // warmup (and group-wide start synchronization)
			cq.Wait(p)
			b0 := c.Nodes[i].CPU.BusyTotal()
			if i == 0 {
				start = p.Now()
			}
			for k := 1; k <= iters; k++ {
				post(uint64(k))
				cq.Wait(p)
			}
			if i == 0 {
				end = p.Now()
			}
			busy[i] = c.Nodes[i].CPU.BusyTotal() - b0
		})
	}
	c.Run()
	var busyTotal sim.Time
	for _, b := range busy {
		busyTotal += b
	}
	return (end - start).Micros() / float64(iters), busyTotal.Micros() / float64(iters)
}

// ---- host-based reference runner. ----

// collHostRun measures the reference implementation over plain reliable
// QPs on the same fabric: a gather/release tree for barrier, the
// identical ring schedule for allreduce, every step host-driven.
func collHostRun(topoName string, n, iters, vecWords int, op string) (latUS, cpuUS float64) {
	c := collCluster(topoName, n)
	var start, end sim.Time
	busy := make([]sim.Time, n)
	total := iters + 1 // one warmup operation
	for i := 0; i < n; i++ {
		i := i
		c.SpawnOn(i, fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			var step func(p *sim.Proc)
			if op == "barrier" {
				step = collHostBarrierSetup(p, c, i, n, total)
			} else {
				step = collHostAllreduceSetup(p, c, i, n, total, vecWords)
			}
			step(p) // warmup
			b0 := c.Nodes[i].CPU.BusyTotal()
			if i == 0 {
				start = p.Now()
			}
			for k := 0; k < iters; k++ {
				step(p)
			}
			if i == 0 {
				end = p.Now()
			}
			busy[i] = c.Nodes[i].CPU.BusyTotal() - b0
		})
	}
	c.Run()
	var busyTotal sim.Time
	for _, b := range busy {
		busyTotal += b
	}
	return (end - start).Micros() / float64(iters), busyTotal.Micros() / float64(iters)
}

// collHostBarrierSetup wires rank i into the same binomial tree the
// firmware uses (parent (i-1)/2, children 2i+1/2i+2) over reliable QPs
// — the child connects to its parent's listener on port 7100+child —
// and returns the per-iteration step: gather child ARRIVEs, send own
// ARRIVE up, await RELEASE, flood RELEASE down. Every message is a
// host-posted 1-byte send plus a host-side CQ wait.
func collHostBarrierSetup(p *sim.Proc, c *core.Cluster, i, n, total int) func(*sim.Proc) {
	type edge struct {
		qp  *verbs.QP
		rcq *verbs.CQ
	}
	var children []edge
	var parent *edge
	depth := 2 * (total + 1)
	// Post every child listener before any blocking call, so no SYN can
	// arrive at an unbound port while this rank waits on another edge.
	for _, ch := range []int{2*i + 1, 2*i + 2} {
		if ch >= n {
			continue
		}
		qp, _, rcq, err := newRC(c.Nodes[i], depth)
		if err != nil {
			panic(err)
		}
		lst, err := c.Nodes[i].QPIP.Listen(uint16(7100 + ch))
		if err != nil {
			panic(err)
		}
		lst.Post(qp)
		children = append(children, edge{qp, rcq})
	}
	if i > 0 {
		qp, _, rcq, err := newRC(c.Nodes[i], depth)
		if err != nil {
			panic(err)
		}
		if err := qp.Connect(p, c.Nodes[(i-1)/2].Addr6, uint16(7100+i)); err != nil {
			panic(err)
		}
		parent = &edge{qp, rcq}
	}
	for _, e := range children {
		if err := e.qp.WaitEstablished(p); err != nil {
			panic(err)
		}
	}
	// One receive per round per inbound direction, posted up front.
	for k := 0; k < total; k++ {
		for _, e := range children {
			if err := e.qp.PostRecv(p, verbs.RecvWR{ID: uint64(k), Capacity: 64}); err != nil {
				panic(err)
			}
		}
		if parent != nil {
			if err := parent.qp.PostRecv(p, verbs.RecvWR{ID: uint64(k), Capacity: 64}); err != nil {
				panic(err)
			}
		}
	}
	id := uint64(0)
	return func(p *sim.Proc) {
		for _, e := range children {
			e.rcq.Wait(p) // child ARRIVE
		}
		if parent != nil {
			if err := parent.qp.PostSend(p, verbs.SendWR{ID: id, Payload: buf.Virtual(1)}); err != nil {
				panic(err)
			}
			parent.rcq.Wait(p) // RELEASE from above
		}
		for _, e := range children {
			if err := e.qp.PostSend(p, verbs.SendWR{ID: id, Payload: buf.Virtual(1)}); err != nil {
				panic(err)
			}
		}
		id++
	}
}

// collHostAllreduceSetup wires rank i into a QP ring (each rank connects
// to its successor's listener on port 7200+successor) and returns the
// per-iteration step: the same 2(n-1)-step ring schedule the firmware
// runs, with the combine charged to the host CPU (1 cycle/byte, the
// era's copy/add loop) and every chunk a host-posted send plus CQ wait.
func collHostAllreduceSetup(p *sim.Proc, c *core.Cluster, i, n, total, vecWords int) func(*sim.Proc) {
	succ, pred := (i+1)%n, (i-1+n)%n
	clen := (vecWords + n - 1) / n
	if clen == 0 {
		clen = 1
	}
	steps := 2 * (n - 1)
	depth := 2 * (total*steps + 2)
	// Successor edge: this rank is the client.
	sqp, _, _, err := newRC(c.Nodes[i], depth)
	if err != nil {
		panic(err)
	}
	// Predecessor edge: this rank is the server.
	pqp, _, prcq, err := newRC(c.Nodes[i], depth)
	if err != nil {
		panic(err)
	}
	lst, err := c.Nodes[i].QPIP.Listen(uint16(7200 + i))
	if err != nil {
		panic(err)
	}
	lst.Post(pqp)
	if err := sqp.Connect(p, c.Nodes[succ].Addr6, uint16(7200+succ)); err != nil {
		panic(err)
	}
	if err := pqp.WaitEstablished(p); err != nil {
		panic(err)
	}
	_ = pred
	for k := 0; k < total*steps; k++ {
		if err := pqp.PostRecv(p, verbs.RecvWR{ID: uint64(k), Capacity: 8 * clen}); err != nil {
			panic(err)
		}
	}
	id := uint64(0)
	return func(p *sim.Proc) {
		for s := 0; s < steps; s++ {
			if err := sqp.PostSend(p, verbs.SendWR{ID: id, Payload: buf.Virtual(8 * clen)}); err != nil {
				panic(err)
			}
			id++
			prcq.Wait(p)
			// Combine (reduce-scatter phase) or place (allgather phase):
			// 1 cycle per byte on the host.
			p.Use(c.Nodes[i].CPU.Server, params.HostCycles(float64(8*clen)))
		}
	}
}

// ---- sweep, render, guard. ----

// CollTopologies is the swept topology set.
var CollTopologies = []string{"ring", "mesh", "fattree"}

// Collective runs the host-vs-NIC collective sweep over the given node
// counts (default 2, 8, 32, 128).
func Collective(nodes []int, iters, vecWords int) CollReport {
	if len(nodes) == 0 {
		nodes = []int{2, 8, 32, 128}
	}
	if iters <= 0 {
		iters = 4
	}
	if vecWords <= 0 {
		vecWords = 64
	}
	rep := CollReport{
		GeneratedBy: "qpipbench -exp collective",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       iters,
		VecWords:    vecWords,
		Nodes:       nodes,
	}
	for _, topoName := range CollTopologies {
		for _, n := range nodes {
			for _, op := range []string{"barrier", "allreduce"} {
				hostLat, hostCPU := collHostRun(topoName, n, iters, vecWords, op)
				nicLat, nicCPU := collNICRun(topoName, n, iters, vecWords, op)
				rep.Rows = append(rep.Rows,
					CollRow{Topology: topoName, Nodes: n, Op: op, Mode: "host", LatencyUS: hostLat, HostCPUUS: hostCPU},
					CollRow{Topology: topoName, Nodes: n, Op: op, Mode: "nic", LatencyUS: nicLat, HostCPUUS: nicCPU},
				)
			}
		}
	}
	return rep
}

// RenderCollective formats the sweep for the terminal.
func RenderCollective(r CollReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Collectives: host-based (plain QPs) vs NIC-offloaded, %d iters, %d-word vectors\n",
		r.Iters, r.VecWords)
	fmt.Fprintf(&b, "%-8s %6s %-10s %14s %14s %9s %16s %16s\n",
		"topology", "nodes", "op", "host lat (us)", "nic lat (us)", "speedup", "host cpu/op(us)", "nic cpu/op(us)")
	for i := 0; i+1 < len(r.Rows); i += 2 {
		h, nn := r.Rows[i], r.Rows[i+1]
		fmt.Fprintf(&b, "%-8s %6d %-10s %14.1f %14.1f %8.2fx %16.1f %16.1f\n",
			h.Topology, h.Nodes, h.Op, h.LatencyUS, nn.LatencyUS,
			h.LatencyUS/nn.LatencyUS, h.HostCPUUS, nn.HostCPUUS)
	}
	return b.String()
}

// WriteCollJSON writes the report as indented JSON.
func WriteCollJSON(path string, r CollReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// CollectiveGuard is the CI collectives gate: on every swept topology,
// at group size 8 the NIC-offloaded barrier must be no slower than the
// host-based reference in simulated latency (host core count cannot
// perturb simulated time, so this holds on any CI machine). Host CPU is
// reported for context but not gated: the offload engine charges a full
// ISR per completion while the QPIP datapath coalesces interrupts, so
// per-op CPU only separates on multi-step collectives.
func CollectiveGuard(iters int) (string, bool) {
	const n = 8
	if iters <= 0 {
		iters = 4
	}
	ok := true
	var b strings.Builder
	fmt.Fprintf(&b, "collective guard: NIC-offloaded barrier vs host-based at %d nodes\n", n)
	for _, topoName := range CollTopologies {
		hostLat, hostCPU := collHostRun(topoName, n, iters, 64, "barrier")
		nicLat, nicCPU := collNICRun(topoName, n, iters, 64, "barrier")
		verdict := "PASS"
		if nicLat > hostLat {
			ok = false
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%s %s: nic %.1f us / %.1f us-cpu, host %.1f us / %.1f us-cpu\n",
			verdict, topoName, nicLat, nicCPU, hostLat, hostCPU)
	}
	fmt.Fprintf(&b, "%s\n", map[bool]string{true: "PASS", false: "FAIL"}[ok])
	return b.String(), ok
}
