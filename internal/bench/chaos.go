package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/params"
	"repro/internal/qpipnic"
	"repro/internal/trace"
)

// ChaosSeed is the fixed fault-plan seed of the loss sweep; rerunning
// `qpipbench -exp chaos` reproduces the identical fault sequence.
const ChaosSeed = 0x51EE7

// ChaosRow is one (stack, loss rate) cell of the sweep: delivered
// throughput plus the retransmissions the stack spent earning it.
type ChaosRow struct {
	Stack   StackKind
	DropPct float64 // injected per-frame drop probability, percent
	MBps    float64
	Retrans uint64
	Drops   uint64 // frames the injector actually ate
	// Corrupts counts frames both nodes' receivers rejected on checksum
	// (rx.corrupt); DBDrops counts doorbell-FIFO overruns at the host↔NIC
	// boundary (db.drop, QPIP only) — backpressure the batched datapath
	// must absorb rather than hide.
	Corrupts uint64
	DBDrops  uint64
}

// clusterNet sums the fault-visible counters of every adapter in the
// cluster (both nodes) into one view.
func clusterNet(cl *core.Cluster) *trace.Counters {
	sum := trace.NewCounters()
	for _, n := range cl.Nodes {
		if n.QPIP != nil {
			sum.AddAll(n.QPIP.Net)
		}
		if n.Kernel != nil {
			sum.AddAll(n.Kernel.Net)
		}
	}
	return sum
}

// chaosDropRates are the swept per-frame drop probabilities (percent).
var chaosDropRates = []float64{0, 0.1, 1, 5}

// Chaos sweeps seeded frame loss over the QPIP and IP/GigE stacks running
// the ttcp workload and reports throughput degradation alongside the
// retransmission work the loss induced. The injector spares the first 16
// frames so connection establishment isn't the thing being measured.
func Chaos(totalBytes int) []ChaosRow {
	// Each (rate, stack) cell is an independent sweep point with its own
	// cluster and injector, so the sweep parallelizes cleanly.
	rows := make([]ChaosRow, 2*len(chaosDropRates))
	sweep(len(rows), func(i int) {
		pct := chaosDropRates[i/2]
		plan := fault.Plan{Seed: ChaosSeed, DropProb: pct / 100, SkipFirst: 16}

		var inj *fault.Injector
		var cl *core.Cluster
		attach := func(c *core.Cluster) {
			cl = c
			inj = fault.NewInjector(plan)
			if c.Myrinet != nil {
				inj.Attach(c.Myrinet)
			} else {
				inj.Attach(c.Eth)
			}
		}

		if i%2 == 0 {
			q := qpipTtcp(params.MTUQPIP, qpipnic.ChecksumEmulatedHW, totalBytes, nil, attach)
			net := clusterNet(cl)
			rows[i] = ChaosRow{
				Stack: QPIP, DropPct: pct, MBps: q.MBps,
				Retrans:  cl.Nodes[0].QPIP.Net.Get("tx.retransmit"),
				Drops:    inj.Stats().Drops,
				Corrupts: net.Get("rx.corrupt"),
				DBDrops:  net.Get("db.drop"),
			}
		} else {
			g := sockTtcp(IPGigE, totalBytes, nil, attach)
			net := clusterNet(cl)
			rows[i] = ChaosRow{
				Stack: IPGigE, DropPct: pct, MBps: g.MBps,
				Retrans:  cl.Nodes[0].Kernel.Net.Get("tx.retransmit"),
				Drops:    inj.Stats().Drops,
				Corrupts: net.Get("rx.corrupt"),
			}
		}
	})
	return rows
}

// RenderChaos formats the loss sweep.
func RenderChaos(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos loss sweep: ttcp under seeded frame loss (seed 0x%X)\n", ChaosSeed)
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %10s %10s %9s\n",
		"stack", "loss", "MB/s", "retransmits", "dropped", "corrupts", "db.drops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %7.1f%% %12.1f %12d %10d %10d %9d\n",
			r.Stack, r.DropPct, r.MBps, r.Retrans, r.Drops, r.Corrupts, r.DBDrops)
	}
	return b.String()
}
