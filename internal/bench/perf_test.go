package bench

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/sim"
)

// TestPerfReportShape smokes the PR-2 A/B harness at a tiny size: both
// configurations must simulate the identical world (same event count, same
// simulated throughput) and the optimized send path must allocate less.
func TestPerfReportShape(t *testing.T) {
	rep := Perf(256*1024, 1)
	if rep.Ttcp.Baseline.Events != rep.Ttcp.Optimized.Events {
		t.Errorf("event counts diverged: baseline %d, optimized %d",
			rep.Ttcp.Baseline.Events, rep.Ttcp.Optimized.Events)
	}
	if rep.Ttcp.Baseline.SimMBps != rep.Ttcp.Optimized.SimMBps {
		t.Errorf("simulated throughput diverged: baseline %.3f, optimized %.3f",
			rep.Ttcp.Baseline.SimMBps, rep.Ttcp.Optimized.SimMBps)
	}
	if rep.SendPath.OptimizedAllocsPerOp >= rep.SendPath.BaselineAllocsPerOp {
		t.Errorf("send path allocs did not improve: baseline %.2f, optimized %.2f",
			rep.SendPath.BaselineAllocsPerOp, rep.SendPath.OptimizedAllocsPerOp)
	}
	if !sim.LegacyQueue() == false || !pool.Enabled() {
		t.Error("Perf did not restore the optimized defaults")
	}
}

// BenchmarkTtcpOptimized runs the full QPIP ttcp transfer on the optimized
// engine — the profiling entry point for simulator-speed work
// (go test -bench TtcpOptimized -cpuprofile cpu.out ./internal/bench).
func BenchmarkTtcpOptimized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		measureTtcpOnce("optimized", 8<<20)
	}
}

// BenchmarkTtcpLegacy is the same transfer on the seed's mechanisms.
func BenchmarkTtcpLegacy(b *testing.B) {
	sim.SetLegacyQueue(true)
	pool.SetEnabled(false)
	defer func() {
		sim.SetLegacyQueue(false)
		pool.SetEnabled(true)
	}()
	for i := 0; i < b.N; i++ {
		measureTtcpOnce("legacy", 8<<20)
	}
}
