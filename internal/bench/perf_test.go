package bench

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/sim"
)

// TestPerfReportShape smokes the A/B harness at a tiny size. The legacy
// and per-token configurations differ only in engine mechanism, so they
// must simulate the identical world (same event count, same simulated
// throughput). The batched boundary is a real protocol change: it must
// fire strictly fewer events (vectored doorbells and completion trains
// collapse activations) while simulating throughput at least as good. The
// optimized send path must allocate less.
func TestPerfReportShape(t *testing.T) {
	rep := Perf(256*1024, 1)
	if rep.Ttcp.Baseline.Events != rep.Ttcp.PerToken.Events {
		t.Errorf("event counts diverged: baseline %d, per-token %d",
			rep.Ttcp.Baseline.Events, rep.Ttcp.PerToken.Events)
	}
	if rep.Ttcp.Baseline.SimMBps != rep.Ttcp.PerToken.SimMBps {
		t.Errorf("simulated throughput diverged: baseline %.3f, per-token %.3f",
			rep.Ttcp.Baseline.SimMBps, rep.Ttcp.PerToken.SimMBps)
	}
	if rep.Ttcp.Optimized.Events >= rep.Ttcp.PerToken.Events {
		t.Errorf("batched boundary fired %d events, want fewer than per-token's %d",
			rep.Ttcp.Optimized.Events, rep.Ttcp.PerToken.Events)
	}
	if rep.Ttcp.Optimized.SimMBps < rep.Ttcp.PerToken.SimMBps {
		t.Errorf("batched boundary regressed simulated throughput: %.3f < %.3f",
			rep.Ttcp.Optimized.SimMBps, rep.Ttcp.PerToken.SimMBps)
	}
	if rep.SendPath.OptimizedAllocsPerOp >= rep.SendPath.BaselineAllocsPerOp {
		t.Errorf("send path allocs did not improve: baseline %.2f, optimized %.2f",
			rep.SendPath.BaselineAllocsPerOp, rep.SendPath.OptimizedAllocsPerOp)
	}
	if !sim.LegacyQueue() == false || !pool.Enabled() {
		t.Error("Perf did not restore the optimized defaults")
	}
}

// BenchmarkTtcpOptimized runs the full QPIP ttcp transfer on the optimized
// engine — the profiling entry point for simulator-speed work
// (go test -bench TtcpOptimized -cpuprofile cpu.out ./internal/bench).
func BenchmarkTtcpOptimized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		measureTtcpOnce("optimized", 8<<20)
	}
}

// BenchmarkTtcpLegacy is the same transfer on the seed's mechanisms.
func BenchmarkTtcpLegacy(b *testing.B) {
	sim.SetLegacyQueue(true)
	pool.SetEnabled(false)
	defer func() {
		sim.SetLegacyQueue(false)
		pool.SetEnabled(true)
	}()
	for i := 0; i < b.N; i++ {
		measureTtcpOnce("legacy", 8<<20)
	}
}
