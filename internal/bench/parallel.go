package bench

import (
	"runtime"
	"sync"
)

// sweepWorkers bounds how many independent sweep points run at once.
// Sequential by default: parallelism is opt-in via qpipbench -parallel.
var sweepWorkers = 1

// SetParallelism sets how many independent sweep points run concurrently.
// Every sweep point builds its own Engine and Cluster, so points share
// nothing but the process — results are written into per-point slots and
// row order is independent of goroutine scheduling, keeping the reports
// byte-identical to a sequential run. n <= 0 selects GOMAXPROCS.
//
// Do not combine parallel sweeps with toggling the process-wide knobs
// (sim.SetLegacyQueue, pool.SetEnabled) mid-sweep; those are documented as
// between-runs-only switches.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	sweepWorkers = n
}

// Parallelism reports the configured sweep concurrency.
func Parallelism() int { return sweepWorkers }

// sweep runs job(0..n-1), each exactly once, using at most sweepWorkers
// goroutines. With sweepWorkers == 1 it degrades to a plain loop.
func sweep(n int, job func(i int)) {
	if sweepWorkers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, sweepWorkers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			job(i)
		}(i)
	}
	wg.Wait()
}
