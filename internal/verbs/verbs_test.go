package verbs

import (
	"errors"
	"testing"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
)

// fakeDevice is a minimal Device for unit-testing the host-side layer.
type fakeDevice struct {
	eng          *sim.Engine
	cpu          *sim.CPU
	maxMsg       int
	doorbells    int
	recvPosts    int
	vectored     int
	vectoredRecv int
	srqPosts     int
	srqVectored  int
	cqs          int
	connectErr   error
	qpn          uint32
}

func newFake(eng *sim.Engine) *fakeDevice {
	return &fakeDevice{
		eng:    eng,
		cpu:    sim.NewCPU(eng, "host", params.HostClockHz),
		maxMsg: 16 * 1024,
	}
}

func (d *fakeDevice) HostCPU() *sim.CPU  { return d.cpu }
func (d *fakeDevice) MaxMessage() int    { return d.maxMsg }
func (d *fakeDevice) AllocQPN() uint32   { d.qpn++; return 16 + d.qpn }
func (d *fakeDevice) CreateQP(*QP) error { return nil }
func (d *fakeDevice) DestroyQP(qp *QP)   { qp.Flush() }
func (d *fakeDevice) ResetQP(*QP) error  { return nil }
func (d *fakeDevice) BindUDP(qp *QP, port uint16) (uint16, error) {
	if port == 0 {
		return 49152, nil
	}
	return port, nil
}
func (d *fakeDevice) Connect(qp *QP, raddr inet.Addr6, rport uint16) error {
	return d.connectErr
}
func (d *fakeDevice) Listen(port uint16) (*Listener, error) {
	return NewListener(port, d), nil
}
func (d *fakeDevice) SendDoorbell(*QP) { d.doorbells++ }
func (d *fakeDevice) RecvPosted(*QP)   { d.recvPosts++ }
func (d *fakeDevice) SendDoorbellN(_ *QP, n int) {
	d.doorbells++
	d.vectored += n
}
func (d *fakeDevice) RecvPostedN(_ *QP, n int) {
	d.recvPosts++
	d.vectoredRecv += n
}
func (d *fakeDevice) SRQPosted(_ *SRQ, n int) {
	d.srqPosts++
	d.srqVectored += n
}
func (d *fakeDevice) AttachCQ(*CQ) { d.cqs++ }

func mkQP(t *testing.T, eng *sim.Engine, d *fakeDevice, tr TransportType, depth int) (*QP, *CQ, *CQ) {
	t.Helper()
	scq, rcq := NewCQ(d, 16), NewCQ(d, 16)
	qp, err := NewQP(d, QPConfig{Transport: tr, SendCQ: scq, RecvCQ: rcq, SendDepth: depth, RecvDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	return qp, scq, rcq
}

func TestQPRequiresCQs(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	if _, err := NewQP(d, QPConfig{}); err == nil {
		t.Fatal("QP without CQs accepted")
	}
}

func TestPostSendChecksStateAndDepth(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, _, _ := mkQP(t, eng, d, Reliable, 2)
	eng.Spawn("app", func(p *sim.Proc) {
		// Reliable QP not yet established: rejected.
		if err := qp.PostSend(p, SendWR{ID: 1, Payload: buf.Virtual(10)}); err == nil {
			t.Error("PostSend on unconnected RC QP accepted")
		}
		qp.SetEstablished(1, 2, inet.NodeAddr6(1))
		if err := qp.PostSend(p, SendWR{ID: 1, Payload: buf.Virtual(10)}); err != nil {
			t.Errorf("PostSend: %v", err)
		}
		if err := qp.PostSend(p, SendWR{ID: 2, Payload: buf.Virtual(10)}); err != nil {
			t.Errorf("PostSend: %v", err)
		}
		// Depth 2 reached, nothing completed: queue full.
		if err := qp.PostSend(p, SendWR{ID: 3, Payload: buf.Virtual(10)}); !errors.Is(err, ErrQueueFull) {
			t.Errorf("third PostSend = %v, want ErrQueueFull", err)
		}
		// Oversized message rejected.
		qp2, _, _ := mkQP(t, eng, d, Unreliable, 8)
		if err := qp2.PostSend(p, SendWR{ID: 4, Payload: buf.Virtual(d.maxMsg + 1)}); !errors.Is(err, ErrTooBig) {
			t.Errorf("oversized = %v, want ErrTooBig", err)
		}
	})
	eng.Run()
	if d.doorbells != 2 {
		t.Errorf("doorbells = %d, want 2", d.doorbells)
	}
}

func TestPostRecvGrowsWindowAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, _, _ := mkQP(t, eng, d, Reliable, 8)
	eng.Spawn("app", func(p *sim.Proc) {
		qp.PostRecv(p, RecvWR{ID: 1, Capacity: 1000})
		qp.PostRecv(p, RecvWR{ID: 2, Capacity: 500})
		if got := qp.PostedRecvBytes(); got != 1500 {
			t.Errorf("PostedRecvBytes = %d", got)
		}
		wr, ok := qp.TakeRecvWR()
		if !ok || wr.ID != 1 {
			t.Fatalf("TakeRecvWR = %+v, %v", wr, ok)
		}
		if got := qp.PostedRecvBytes(); got != 500 {
			t.Errorf("PostedRecvBytes after take = %d", got)
		}
		if err := qp.PostRecv(p, RecvWR{ID: 3, Capacity: 0}); err == nil {
			t.Error("zero-capacity recv WR accepted")
		}
	})
	eng.Run()
	if d.recvPosts != 2 {
		t.Errorf("recvPosts = %d", d.recvPosts)
	}
}

func TestCompletionFlowAndOrder(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, scq, _ := mkQP(t, eng, d, Reliable, 8)
	qp.SetEstablished(1, 2, inet.NodeAddr6(1))
	eng.Spawn("app", func(p *sim.Proc) {
		for i := uint64(1); i <= 3; i++ {
			if err := qp.PostSend(p, SendWR{ID: i, Payload: buf.Virtual(1)}); err != nil {
				t.Fatal(err)
			}
		}
		// Device consumes and completes out of band.
		for i := uint64(1); i <= 3; i++ {
			wr, ok := qp.TakeSendWR()
			if !ok || wr.ID != i {
				t.Fatalf("TakeSendWR %d = %+v", i, wr)
			}
			qp.CompleteSend(wr.ID, StatusSuccess, wr.Payload.Len())
		}
		for i := uint64(1); i <= 3; i++ {
			comp, ok := scq.Poll(p)
			if !ok || comp.WRID != i || comp.Op != OpSend {
				t.Fatalf("completion %d = %+v, %v", i, comp, ok)
			}
		}
		if _, ok := scq.Poll(p); ok {
			t.Error("extra completion")
		}
	})
	eng.Run()
}

func TestCQWaitBlocksUntilPush(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	cq := NewCQ(d, 8)
	var got Completion
	var at sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		got = cq.Wait(p)
		at = p.Now()
	})
	eng.At(500*sim.Microsecond, "push", func() {
		cq.Push(Completion{WRID: 42, Status: StatusSuccess})
	})
	eng.Run()
	if got.WRID != 42 {
		t.Fatalf("Wait returned %+v", got)
	}
	if at < 500*sim.Microsecond {
		t.Errorf("Wait returned at %v, before the push", at)
	}
}

func TestCQOverflowCounted(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	cq := NewCQ(d, 2)
	cq.Push(Completion{WRID: 1})
	cq.Push(Completion{WRID: 2})
	cq.Push(Completion{WRID: 3}) // overflows
	if cq.Overflows() != 1 {
		t.Errorf("Overflows = %d", cq.Overflows())
	}
	if cq.Len() != 2 {
		t.Errorf("Len = %d", cq.Len())
	}
}

func TestFlushCompletesOutstandingWRs(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, scq, rcq := mkQP(t, eng, d, Reliable, 8)
	qp.SetEstablished(1, 2, inet.NodeAddr6(1))
	eng.Spawn("app", func(p *sim.Proc) {
		qp.PostSend(p, SendWR{ID: 1, Payload: buf.Virtual(1)})
		qp.PostRecv(p, RecvWR{ID: 2, Capacity: 64})
		qp.SetError(errors.New("boom"))
		sc, ok := scq.Poll(p)
		if !ok || sc.Status != StatusFlushed || sc.WRID != 1 {
			t.Errorf("send flush = %+v, %v", sc, ok)
		}
		rc, ok := rcq.Poll(p)
		if !ok || rc.Status != StatusFlushed || rc.WRID != 2 {
			t.Errorf("recv flush = %+v, %v", rc, ok)
		}
		// Posting after error returns the error.
		if err := qp.PostSend(p, SendWR{ID: 3, Payload: buf.Virtual(1)}); err == nil {
			t.Error("PostSend after error accepted")
		}
	})
	eng.Run()
}

func TestListenerIdlePool(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	lst := NewListener(7000, d)
	qp1, _, _ := mkQP(t, eng, d, Reliable, 8)
	qp2, _, _ := mkQP(t, eng, d, Reliable, 8)
	if err := lst.Post(qp1); err != nil {
		t.Fatal(err)
	}
	if err := lst.Post(qp2); err != nil {
		t.Fatal(err)
	}
	if err := lst.Post(qp1); err == nil {
		t.Error("re-posting a connecting QP accepted")
	}
	if lst.Idle() != 2 {
		t.Errorf("Idle = %d", lst.Idle())
	}
	got1, ok := lst.TakeIdle()
	if !ok || got1 != qp1 {
		t.Error("TakeIdle order wrong")
	}
	got2, _ := lst.TakeIdle()
	if got2 != qp2 {
		t.Error("TakeIdle order wrong")
	}
	if _, ok := lst.TakeIdle(); ok {
		t.Error("TakeIdle on empty pool succeeded")
	}
}

func TestConnectOnUDQPFails(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, _, _ := mkQP(t, eng, d, Unreliable, 8)
	eng.Spawn("app", func(p *sim.Proc) {
		if err := qp.Connect(p, inet.NodeAddr6(1), 7000); !errors.Is(err, ErrNotSupported) {
			t.Errorf("Connect on UD QP = %v", err)
		}
	})
	eng.Run()
}

func TestBindUDPOnRCQPFails(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, _, _ := mkQP(t, eng, d, Reliable, 8)
	if _, err := qp.BindUDP(5000); !errors.Is(err, ErrNotSupported) {
		t.Errorf("BindUDP on RC QP = %v", err)
	}
}

func TestQPNsUnique(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	seen := map[uint32]bool{}
	for i := 0; i < 50; i++ {
		qp, _, _ := mkQP(t, eng, d, Reliable, 1)
		if seen[qp.QPN] {
			t.Fatalf("duplicate QPN %d", qp.QPN)
		}
		seen[qp.QPN] = true
	}
}
