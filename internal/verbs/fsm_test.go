package verbs

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// allQPStates enumerates the lifecycle states in declaration order.
var allQPStates = []QPState{QPReset, QPInit, QPRTR, QPRTS, QPSQD, QPError, QPClosed}

// fsmWant is one cell of the transition table: the error ModifyQP must
// return and the state the QP must land in.
type fsmWant struct {
	err   error
	state QPState
}

// TestModifyQPTransitionTable pins every (state, target) pair of the
// modify-QP machine against the documented table (fsm.go): host-driven
// edges succeed, device-owned and undefined edges return ErrNotSupported,
// anything from CLOSED returns ErrBadState, and ERR→ERR / RESET→RESET are
// idempotent. A denied transition must leave the state untouched.
func TestModifyQPTransitionTable(t *testing.T) {
	table := map[QPState]map[QPState]fsmWant{
		QPReset: {
			QPReset:  {nil, QPReset}, // idempotent recycle
			QPInit:   {nil, QPInit},
			QPRTR:    {ErrNotSupported, QPReset}, // device-owned (Connect/Post)
			QPRTS:    {ErrNotSupported, QPReset},
			QPSQD:    {ErrNotSupported, QPReset},
			QPError:  {nil, QPError}, // administrative kill
			QPClosed: {ErrNotSupported, QPReset},
		},
		QPInit: {
			QPReset:  {nil, QPReset},
			QPInit:   {ErrNotSupported, QPInit},
			QPRTR:    {ErrNotSupported, QPInit},
			QPRTS:    {ErrNotSupported, QPInit},
			QPSQD:    {ErrNotSupported, QPInit},
			QPError:  {nil, QPError},
			QPClosed: {ErrNotSupported, QPInit},
		},
		QPRTR: {
			QPReset:  {nil, QPReset}, // abandon an in-flight rendezvous
			QPInit:   {ErrNotSupported, QPRTR},
			QPRTR:    {ErrNotSupported, QPRTR},
			QPRTS:    {ErrNotSupported, QPRTR}, // firmware's edge, not the host's
			QPSQD:    {ErrNotSupported, QPRTR},
			QPError:  {nil, QPError},
			QPClosed: {ErrNotSupported, QPRTR},
		},
		QPRTS: {
			QPReset:  {nil, QPReset},
			QPInit:   {ErrNotSupported, QPRTS},
			QPRTR:    {ErrNotSupported, QPRTS},
			QPRTS:    {ErrNotSupported, QPRTS}, // only SQD resumes to RTS
			QPSQD:    {nil, QPSQD},             // begin send-queue drain
			QPError:  {nil, QPError},
			QPClosed: {ErrNotSupported, QPRTS},
		},
		QPSQD: {
			QPReset:  {nil, QPReset},
			QPInit:   {ErrNotSupported, QPSQD},
			QPRTR:    {ErrNotSupported, QPSQD},
			QPRTS:    {nil, QPRTS}, // resume after (or during) drain
			QPSQD:    {ErrNotSupported, QPSQD},
			QPError:  {nil, QPError},
			QPClosed: {ErrNotSupported, QPSQD},
		},
		QPError: {
			QPReset:  {nil, QPReset}, // the reconnect primitive
			QPInit:   {ErrNotSupported, QPError},
			QPRTR:    {ErrNotSupported, QPError},
			QPRTS:    {ErrNotSupported, QPError},
			QPSQD:    {ErrNotSupported, QPError},
			QPError:  {nil, QPError}, // idempotent
			QPClosed: {ErrNotSupported, QPError},
		},
		QPClosed: {
			QPReset:  {ErrBadState, QPClosed},
			QPInit:   {ErrBadState, QPClosed},
			QPRTR:    {ErrBadState, QPClosed},
			QPRTS:    {ErrBadState, QPClosed},
			QPSQD:    {ErrBadState, QPClosed},
			QPError:  {ErrBadState, QPClosed},
			QPClosed: {ErrBadState, QPClosed},
		},
	}

	eng := sim.NewEngine()
	d := newFake(eng)
	eng.Spawn("fsm", func(p *sim.Proc) {
		for _, from := range allQPStates {
			for _, to := range allQPStates {
				want, ok := table[from][to]
				if !ok {
					t.Fatalf("table missing (%v, %v)", from, to)
				}
				qp, _, _ := mkQP(t, eng, d, Reliable, 8)
				qp.state = from
				err := qp.ModifyQP(p, to)
				if !errors.Is(err, want.err) {
					t.Errorf("ModifyQP(%v→%v) err = %v, want %v", from, to, err, want.err)
				}
				if qp.state != want.state {
					t.Errorf("ModifyQP(%v→%v) landed in %v, want %v", from, to, qp.state, want.state)
				}
			}
		}
	})
	eng.Run()
}

// TestFlushedRecvTrainThroughPollN pins the disconnect-flush contract for
// batched reaping: receives stranded in the (SRQ-less) recv FIFO when the
// connection dies must surface as a StatusFlushed train through PollN
// exactly as they do through a loop of single Polls — same count, same
// post order, flushed sends before flushed receives on their respective
// CQs. Regression test: PollN's batched fast path used to be exercised
// only for success completions.
func TestFlushedRecvTrainThroughPollN(t *testing.T) {
	load := func(qp *QP, p *sim.Proc) {
		qp.state = QPEstablished
		for i := uint64(1); i <= 3; i++ {
			if err := qp.PostSend(p, SendWR{ID: 100 + i}); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(1); i <= 5; i++ {
			if err := qp.PostRecv(p, RecvWR{ID: 200 + i, Capacity: 4096}); err != nil {
				t.Fatal(err)
			}
		}
		qp.SetFailed(errors.New("test: peer vanished"), StatusFlushed)
	}
	withBoundary(t, true, func() {
		eng := sim.NewEngine()
		d := newFake(eng)
		ref, refS, refR := mkQP(t, eng, d, Reliable, 8)
		got, gotS, gotR := mkQP(t, eng, d, Reliable, 8)
		eng.Spawn("app", func(p *sim.Proc) {
			load(ref, p)
			load(got, p)
			drain := func(cq *CQ) []Completion {
				var out []Completion
				for {
					comp, ok := cq.Poll(p)
					if !ok {
						return out
					}
					out = append(out, comp)
				}
			}
			check := func(kind string, want []Completion, cq *CQ) {
				out := make([]Completion, 16)
				n := cq.PollN(p, out)
				if n != len(want) {
					t.Fatalf("%s: PollN = %d completions, single Polls = %d", kind, n, len(want))
				}
				for i := range want {
					if out[i].WRID != want[i].WRID || out[i].Status != want[i].Status {
						t.Errorf("%s completion %d: PollN %+v, single Poll %+v", kind, i, out[i], want[i])
					}
					if out[i].Status != StatusFlushed {
						t.Errorf("%s completion %d: status %v, want StatusFlushed", kind, i, out[i].Status)
					}
				}
			}
			check("send", drain(refS), gotS)
			check("recv", drain(refR), gotR)
			if len(drain(gotR)) != 0 {
				t.Error("recv CQ still has completions after the PollN train")
			}
		})
		eng.Run()
	})
}

// TestModifyQPResetClearsAddressing verifies the recycle edge wipes the
// connection identity and error, flushes outstanding WRs, and leaves the
// QP connectable again.
func TestModifyQPResetClearsAddressing(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	eng.Spawn("reset", func(p *sim.Proc) {
		qp, scq, _ := mkQP(t, eng, d, Reliable, 8)
		qp.state = QPEstablished
		qp.LocalPort, qp.RemotePort = 1000, 2000
		if err := qp.PostSend(p, SendWR{ID: 1}); err != nil {
			t.Fatal(err)
		}
		qp.SetFailed(errors.New("test: boom"), StatusFlushed)
		if _, ok := scq.Poll(p); !ok {
			t.Fatal("failure did not flush the posted send")
		}
		if err := qp.ModifyQP(p, QPReset); err != nil {
			t.Fatal(err)
		}
		if qp.Err() != nil || qp.LocalPort != 0 || qp.RemotePort != 0 {
			t.Errorf("reset kept identity: err=%v local=%d remote=%d",
				qp.Err(), qp.LocalPort, qp.RemotePort)
		}
		if qp.State() != QPReset {
			t.Errorf("state = %v, want RESET", qp.State())
		}
	})
	eng.Run()
}
