package verbs

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
)

// SRQ is a shared receive queue: one pool of receive work requests that
// many QPs on the same device draw from, in place of a private recvQ each.
// The MPICH2-over-InfiniBand work motivates exactly this structure for
// connection density — with private queues, receive buffer memory grows as
// connections × depth even though only a few connections are active at any
// instant; with an SRQ it grows with the instantaneous message backlog.
//
// Claim order is deterministic FIFO: the firmware claims the oldest posted
// WR regardless of which QP the message arrived on, so two runs of the
// same seed claim identical WR IDs (the chaos and parallel matrices pin
// this). When the pool runs dry the adapter withholds TCP window instead
// of dropping — the same RNR backpressure path private queues use — and
// the IB-style limit event tells the application to repost.
type SRQ struct {
	dev Device

	// The pool drains through a head index like the QP-private queues so
	// steady-state post/claim traffic reuses one backing array.
	q     []RecvWR
	head  int
	depth int

	postedBytes int

	// IB-style SRQ limit: when armed, the first claim that leaves fewer
	// than limit WRs posted fires a one-shot event waking WaitLimit.
	limit       int
	limitArmed  bool
	limitFired  bool
	limitWaiter *sim.Proc

	attached int // QPs currently attached

	posts, claims, limitEvents uint64
}

// SRQConfig sizes a shared receive queue.
type SRQConfig struct {
	// Depth bounds posted-but-unclaimed WRs (default 1024).
	Depth int
	// Limit arms the low-watermark event at creation (0 = unarmed; see
	// ArmLimit).
	Limit int
}

// NewSRQ creates a shared receive queue on a device. QPs attach at create
// time via QPConfig.SRQ.
func NewSRQ(dev Device, cfg SRQConfig) (*SRQ, error) {
	if cfg.Depth <= 0 {
		cfg.Depth = 1024
	}
	if cfg.Limit < 0 || cfg.Limit > cfg.Depth {
		return nil, fmt.Errorf("verbs: SRQ limit %d outside [0,%d]", cfg.Limit, cfg.Depth)
	}
	s := &SRQ{dev: dev, depth: cfg.Depth}
	if cfg.Limit > 0 {
		s.limit = cfg.Limit
		s.limitArmed = true
	}
	return s, nil
}

// PostRecv posts one receive work request to the shared pool. Posting
// shared receive space grows the TCP receive window of every attached
// connection (the window advertises pool capacity, not per-QP capacity).
//
//qpip:hotpath
func (s *SRQ) PostRecv(p *sim.Proc, wr RecvWR) error {
	if len(s.q)-s.head >= s.depth {
		return ErrQueueFull
	}
	if wr.Capacity <= 0 {
		//lint:qpip-allow hotalloc rejected-WR error path, cold by construction
		return fmt.Errorf("verbs: receive WR needs positive capacity")
	}
	p.Use(s.dev.HostCPU().Server, params.US(params.VerbsPostRecvUS))
	s.posts++
	s.postedBytes += wr.Capacity
	s.q = append(s.q, wr)
	s.dev.SRQPosted(s, 1)
	return nil
}

// PostRecvN posts up to len(wrs) receive WRs with one batched CPU charge
// and a single notification write. On a partial post (pool fills or an
// invalid WR mid-batch) the prefix that fits is posted and only that
// prefix is charged, with nothing charged when the count is zero; the
// error reports why the batch stopped. With the batched boundary off it
// degrades to a loop of single PostRecvs.
//
//qpip:hotpath
func (s *SRQ) PostRecvN(p *sim.Proc, wrs []RecvWR) (int, error) {
	if len(wrs) == 0 {
		return 0, nil
	}
	if !hw.BatchedBoundary() {
		for i, wr := range wrs {
			if err := s.PostRecv(p, wr); err != nil {
				return i, err
			}
		}
		return len(wrs), nil
	}
	n := 0
	var err error
	for _, wr := range wrs {
		if len(s.q)-s.head+n >= s.depth {
			err = ErrQueueFull
			break
		}
		if wr.Capacity <= 0 {
			//lint:qpip-allow hotalloc rejected-WR error path, cold by construction
			err = fmt.Errorf("verbs: receive WR needs positive capacity")
			break
		}
		n++
	}
	if n == 0 {
		return 0, err
	}
	p.Use(s.dev.HostCPU().Server,
		params.US(params.VerbsPostRecvUS+float64(n-1)*params.VerbsPostRecvBatchUS))
	for _, wr := range wrs[:n] {
		s.posts++
		s.postedBytes += wr.Capacity
		s.q = append(s.q, wr)
	}
	s.dev.SRQPosted(s, n)
	return n, err
}

// ArmLimit arms the low-watermark event: the first claim that leaves
// fewer than limit WRs posted fires it (once). If the pool is already
// below the watermark the event fires immediately, so a repost loop
// parked in WaitLimit cannot miss the crossing.
func (s *SRQ) ArmLimit(limit int) error {
	if limit <= 0 || limit > s.depth {
		return fmt.Errorf("verbs: SRQ limit %d outside [1,%d]", limit, s.depth)
	}
	s.limit = limit
	s.limitArmed = true
	if s.Posted() < s.limit {
		s.fireLimit()
	}
	return nil
}

// WaitLimit parks until the armed limit event fires. Consuming the event
// leaves the limit unarmed; re-arm with ArmLimit after reposting.
func (s *SRQ) WaitLimit(p *sim.Proc) {
	for !s.limitFired {
		s.limitWaiter = p
		p.Suspend()
	}
	s.limitFired = false
}

func (s *SRQ) fireLimit() {
	s.limitArmed = false
	s.limitFired = true
	s.limitEvents++
	if s.limitWaiter != nil {
		w := s.limitWaiter
		s.limitWaiter = nil
		w.Wake()
	}
}

// take claims the oldest posted WR (device context: the firmware resolved
// an arriving message to an attached QP and charged the claim stage).
//
//qpip:hotpath
func (s *SRQ) take() (RecvWR, bool) {
	if s.head >= len(s.q) {
		return RecvWR{}, false
	}
	wr := s.q[s.head]
	s.q[s.head] = RecvWR{}
	s.head++
	if s.head == len(s.q) {
		s.q, s.head = s.q[:0], 0
	}
	s.postedBytes -= wr.Capacity
	s.claims++
	if s.limitArmed && len(s.q)-s.head < s.limit {
		s.fireLimit()
	}
	return wr, true
}

// Posted reports posted-but-unclaimed WRs in the pool.
func (s *SRQ) Posted() int { return len(s.q) - s.head }

// PostedBytes reports unclaimed receive capacity in bytes; the firmware
// advertises it as the TCP receive window of every attached connection.
func (s *SRQ) PostedBytes() int { return s.postedBytes }

// Attached reports the number of QPs currently attached.
func (s *SRQ) Attached() int { return s.attached }

// Depth reports the pool bound.
func (s *SRQ) Depth() int { return s.depth }

// Claims reports WRs claimed by the device over the SRQ's lifetime.
func (s *SRQ) Claims() uint64 { return s.claims }

// LimitEvents reports how many times the armed limit watermark fired.
func (s *SRQ) LimitEvents() uint64 { return s.limitEvents }

// HostMemBytes reports the host memory pinned by the pool right now:
// descriptor slots plus the posted buffers awaiting claim. The connscale
// experiment divides this across attached QPs for the per-connection
// figure.
func (s *SRQ) HostMemBytes() int {
	return (len(s.q)-s.head)*params.HostWRBytes + s.postedBytes
}
