// Package verbs implements the Queue Pair communication abstraction QPIP
// adopts from the Infiniband specification (paper §2.1, §3): Queue Pairs
// holding send and receive queues of Work Requests, Completion Queues,
// and the library methods PostSend, PostRecv, Poll and Wait (paper §4.1).
//
// QP and CQ structures are resident in host memory and are read and
// written by the NIC through DMA; the host library's only interactions
// with the adapter are doorbell writes across the PCI bus and (for Wait)
// a lightweight interrupt. The host-side CPU costs of each method are the
// quantities paper Table 1 reports.
package verbs

import (
	"errors"
	"fmt"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/sim"
)

// TransportType selects the inter-network transport beneath a QP.
type TransportType int

const (
	// Reliable runs over TCP: connected, acknowledged, in-order
	// (Infiniband RC analog).
	Reliable TransportType = iota
	// Unreliable runs over UDP: connectionless best-effort datagrams
	// (Infiniband UD analog).
	Unreliable
)

func (t TransportType) String() string {
	if t == Reliable {
		return "RC/TCP"
	}
	return "UD/UDP"
}

// QPState is the queue pair lifecycle state.
type QPState int

// QP states, following the Infiniband modify-QP model:
// RESET→INIT→RTR→RTS with SQD and ERR excursions (fsm.go holds the full
// transition table). Because QPIP's rendezvous runs inside the adapter,
// the INIT→RTR and RTR→RTS edges are driven by the device (Connect,
// Listener mating, SetEstablished) rather than by ModifyQP.
const (
	// QPReset is a fresh or recycled QP: no connection, no adapter-side
	// WR state. ModifyQP(QPReset) from the error state is the reconnect
	// primitive.
	QPReset QPState = iota
	// QPInit is registered and ready for receive posting but not yet
	// addressed (kept for Infiniband API fidelity; Connect and
	// Listener.Post accept QPs in either QPReset or QPInit).
	QPInit
	// QPRTR: ready to receive — the TCP rendezvous is in flight
	// (connecting, or parked on a listener awaiting a SYN).
	QPRTR
	// QPRTS: ready to send — the connection is established.
	QPRTS
	// QPSQD: send-queue drain — new PostSends are refused with
	// ErrSQDraining while already-posted sends complete normally.
	QPSQD
	// QPError: the QP failed; outstanding WRs have flushed (see
	// QP.FlushWith for the deterministic flush ordering).
	QPError
	// QPClosed: destroyed via Close.
	QPClosed
)

// Compatibility aliases from the pre-state-machine API: consumers of the
// rendezvous mostly observe "connecting" (RTR) and "established" (RTS).
const (
	QPConnecting  = QPRTR
	QPEstablished = QPRTS
)

func (s QPState) String() string {
	switch s {
	case QPReset:
		return "RESET"
	case QPInit:
		return "INIT"
	case QPRTR:
		return "RTR"
	case QPRTS:
		return "RTS"
	case QPSQD:
		return "SQD"
	case QPError:
		return "ERR"
	case QPClosed:
		return "CLOSED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Op distinguishes completion types.
type Op int

// Completion operations.
const (
	OpSend Op = iota
	OpRecv
	// Collective operations (coll.go): posted through a CollQ, executed
	// by the adapter's collective engine, completed on the bound CQ.
	OpBarrier
	OpBcast
	OpAllreduce
	OpReduceScatter
)

// Status is a completion status.
type Status int

// Completion statuses.
const (
	StatusSuccess Status = iota
	// StatusFlushed marks WRs drained when a QP failed or closed.
	StatusFlushed
	// StatusLenError marks a receive whose WR buffer was too small for
	// the arriving message.
	StatusLenError
	// StatusRemoteError marks a send aborted by connection failure.
	StatusRemoteError
	// StatusRetryExceeded marks a WR terminated because TCP
	// retransmission exhausted its retry budget — the peer is
	// unreachable. The QP has transitioned to QPError.
	StatusRetryExceeded
	// StatusCQOverflow is a synthetic completion reporting that the CQ
	// overflowed and real completions were lost (CQ.Overflows counts
	// them). It carries no WR identity.
	StatusCQOverflow
	// StatusRemoteDown marks WRs terminated because reconnection to the
	// remote endpoint exhausted its bounded attempt budget
	// (QP.Reconnect): the remote node is down or unreachable for longer
	// than the backoff policy tolerates.
	StatusRemoteDown
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusFlushed:
		return "flushed"
	case StatusLenError:
		return "length-error"
	case StatusRemoteError:
		return "remote-error"
	case StatusRetryExceeded:
		return "retry-exceeded"
	case StatusCQOverflow:
		return "cq-overflow"
	case StatusRemoteDown:
		return "remote-down"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// SendWR is a send work request: the message payload plus, for unreliable
// QPs, the destination ("The WRs in a UDP QP identify the target ...
// address/port", paper §3).
type SendWR struct {
	ID      uint64
	Payload buf.Buf
	// Unreliable QPs only:
	RemoteAddr inet.Addr6
	RemotePort uint16
}

// RecvWR is a receive work request identifying buffer capacity for one
// incoming message.
type RecvWR struct {
	ID       uint64
	Capacity int
}

// Completion is a CQ entry.
type Completion struct {
	QPN     uint32
	WRID    uint64
	Op      Op
	Status  Status
	ByteLen int
	// Payload carries received data (Op == OpRecv).
	Payload buf.Buf
	// Source of an unreliable receive.
	RemoteAddr inet.Addr6
	RemotePort uint16
}

// Errors returned by the verbs layer.
var (
	ErrQueueFull    = errors.New("verbs: work queue full")
	ErrBadState     = errors.New("verbs: QP in wrong state")
	ErrTooBig       = errors.New("verbs: message exceeds device maximum")
	ErrCQOverflow   = errors.New("verbs: completion queue overflow")
	ErrPortBusy     = errors.New("verbs: port in use")
	ErrNoRoute      = errors.New("verbs: no route to destination")
	ErrConnRefused  = errors.New("verbs: connection refused")
	ErrNotSupported = errors.New("verbs: operation not supported")
	// ErrRetryExceeded reports a connection torn down after TCP
	// retransmission exhausted its retry budget (unreachable peer).
	ErrRetryExceeded = errors.New("verbs: retry budget exceeded, peer unreachable")
	// ErrNoResources reports adapter state-table (SRAM TCB) exhaustion.
	ErrNoResources = errors.New("verbs: adapter out of QP resources")
	// ErrQPExhausted is the typed form of QP-table exhaustion: CreateQP
	// refused because the adapter already holds its capacity of live QPs.
	// Returned errors are *QPExhaustedError values carrying the occupancy;
	// errors.Is matches both ErrQPExhausted and ErrNoResources.
	ErrQPExhausted = errors.New("verbs: adapter QP table exhausted")
	// ErrSRQAttached refuses per-QP receive posting on a QP that draws
	// from a shared receive queue; post to the SRQ instead.
	ErrSRQAttached = errors.New("verbs: QP attached to an SRQ; post receives to the SRQ")
	// ErrSQDraining refuses new send WRs while the QP is in the SQD
	// (send-queue drain) state.
	ErrSQDraining = errors.New("verbs: send queue draining (SQD)")
	// ErrRemoteDown reports that QP.Reconnect exhausted its bounded
	// attempt budget: the remote endpoint stayed down.
	ErrRemoteDown = errors.New("verbs: remote endpoint down, reconnect attempts exhausted")
	// ErrNICDown reports that the local adapter is down (crashed and not
	// yet restarted); management verbs are refused until it reboots.
	ErrNICDown = errors.New("verbs: adapter down")
	// ErrPeerRestarted reports a connection fenced because a frame from a
	// newer peer boot epoch proved the remote adapter rebooted.
	ErrPeerRestarted = errors.New("verbs: peer adapter restarted, connection fenced")
	// ErrAdminError marks a QP administratively moved to the error state
	// via ModifyQP(QPError).
	ErrAdminError = errors.New("verbs: QP administratively moved to error state")
	// ErrHandshakeTimeout reports a connect attempt abandoned by
	// QP.Reconnect because the rendezvous did not establish within the
	// policy's Handshake window (the peer may be mid-recycle; another
	// attempt follows after backoff).
	ErrHandshakeTimeout = errors.New("verbs: connection rendezvous timed out")
)

// QPExhaustedError reports CreateQP refused at adapter QP-table capacity,
// carrying the occupancy that refused it.
type QPExhaustedError struct {
	// Current is the number of live QPs when creation was refused;
	// Capacity is the adapter's QP-table bound.
	Current, Capacity int
}

func (e *QPExhaustedError) Error() string {
	return fmt.Sprintf("verbs: adapter QP table exhausted (%d/%d QPs)", e.Current, e.Capacity)
}

// Is matches the typed sentinel and, for compatibility with pre-typed
// callers, the generic resource-exhaustion sentinel.
func (e *QPExhaustedError) Is(target error) bool {
	return target == ErrQPExhausted || target == ErrNoResources
}

// Device is the adapter seen from the host library: the QPIP NIC firmware
// implements it. Methods are invoked in simulation context; management
// operations model the paper's management FSM.
type Device interface {
	// HostCPU is the processor host-side verbs costs are charged to.
	HostCPU() *sim.CPU
	// MaxMessage reports the largest message a QP message may carry (one
	// message maps to one TCP segment, so this is MTU-derived).
	MaxMessage() int
	// AllocQPN hands out the next queue pair number on this adapter.
	// Allocation is per-device (deterministic regardless of what other
	// adapters — possibly on other shard engines — are doing); low QPNs
	// are reserved, as in Infiniband.
	AllocQPN() uint32
	// CreateQP registers a new QP with the adapter (management FSM).
	CreateQP(qp *QP) error
	// DestroyQP tears a QP down, flushing outstanding WRs.
	DestroyQP(qp *QP)
	// ResetQP returns a QP to the reset state on the adapter: any TCB is
	// aborted and unlinked, timers cancelled, and consumed-but-unacked
	// send WRs completed with StatusFlushed. After an adapter crash wiped
	// the state table, the QP is re-admitted subject to capacity. Called
	// by ModifyQP(QPReset).
	ResetQP(qp *QP) error
	// BindUDP binds an unreliable QP to a UDP port (0 = ephemeral).
	BindUDP(qp *QP, port uint16) (uint16, error)
	// Connect initiates the TCP rendezvous for a reliable QP.
	Connect(qp *QP, raddr inet.Addr6, rport uint16) error
	// Listen instructs the interface to monitor a TCP port for incoming
	// connections (paper §3).
	Listen(port uint16) (*Listener, error)
	// SendDoorbell notifies the adapter of new send WRs (the PIO write
	// and FIFO are modeled inside).
	SendDoorbell(qp *QP)
	// RecvPosted notifies the adapter of new receive WRs, which grows
	// the TCP receive window (paper §5.1).
	RecvPosted(qp *QP)
	// SendDoorbellN notifies the adapter of n new send WRs with a single
	// vectored doorbell: one PIO write carrying a WR count, so a batch
	// post crosses the bus once.
	SendDoorbellN(qp *QP, n int)
	// RecvPostedN notifies the adapter of n new receive WRs with a
	// single notification write.
	RecvPostedN(qp *QP, n int)
	// SRQPosted notifies the adapter that n receive WRs were posted to a
	// shared receive queue: the firmware re-derives the TCP receive
	// window of attached connections from the pool and drains any
	// connections stalled in RNR waiting for shared buffers.
	SRQPosted(srq *SRQ, n int)
	// AttachCQ registers a completion queue with the adapter, letting it
	// bind an event (interrupt) line for coalesced completion wakeups.
	// Called by NewCQ.
	AttachCQ(cq *CQ)
}

// Listener is a TCP port being monitored by the adapter. Applications
// park idle QPs on it; an incoming connection "mates the connection to an
// idle QP in the server application" (paper §3).
type Listener struct {
	Port uint16
	dev  Device
	idle []*QP
}

// NewListener is used by Device implementations.
func NewListener(port uint16, dev Device) *Listener {
	return &Listener{Port: port, dev: dev}
}

// Post parks an idle QP to absorb the next incoming connection. The QP
// enters RTR (ready to receive: awaiting the handshake).
func (l *Listener) Post(qp *QP) error {
	if qp.State() != QPReset && qp.State() != QPInit {
		return ErrBadState
	}
	qp.state = QPRTR
	qp.parked = l
	l.idle = append(l.idle, qp)
	return nil
}

// TakeIdle pops an idle QP (used by the firmware when a SYN arrives).
func (l *Listener) TakeIdle() (*QP, bool) {
	if len(l.idle) == 0 {
		return nil, false
	}
	qp := l.idle[0]
	l.idle = l.idle[1:]
	qp.parked = nil
	return qp, true
}

// unpark removes a parked QP that is being recycled or closed before any
// connection mated it.
func (l *Listener) unpark(qp *QP) {
	for i, q := range l.idle {
		if q == qp {
			l.idle = append(l.idle[:i], l.idle[i+1:]...)
			return
		}
	}
}

// Idle reports the number of parked QPs.
func (l *Listener) Idle() int { return len(l.idle) }
