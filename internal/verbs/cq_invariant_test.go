package verbs

import (
	"errors"
	"testing"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/sim"
)

// TestCQOverflowGracefulDegradation pins the DESIGN §8 invariant: a CQ
// never grows past its depth; overflow is surfaced as a synthetic
// StatusCQOverflow completion once the queue drains, never as silent loss
// or unbounded growth.
func TestCQOverflowGracefulDegradation(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	cq := NewCQ(d, 2)
	for i := uint64(1); i <= 5; i++ {
		cq.Push(Completion{WRID: i})
		if cq.Len() > cq.Depth() {
			t.Fatalf("Len %d exceeded Depth %d", cq.Len(), cq.Depth())
		}
	}
	if cq.Overflows() != 3 {
		t.Fatalf("Overflows = %d, want 3", cq.Overflows())
	}
	if cq.MaxLen() > cq.Depth() {
		t.Fatalf("MaxLen %d exceeded Depth %d", cq.MaxLen(), cq.Depth())
	}
	eng.Spawn("app", func(p *sim.Proc) {
		// The two completions that fit drain first.
		for want := uint64(1); want <= 2; want++ {
			comp, ok := cq.Poll(p)
			if !ok || comp.WRID != want || comp.Status != StatusSuccess {
				t.Fatalf("Poll = %+v, %v; want WRID %d", comp, ok, want)
			}
		}
		// Then exactly one synthetic overflow completion.
		comp, ok := cq.Poll(p)
		if !ok || comp.Status != StatusCQOverflow {
			t.Fatalf("Poll after drain = %+v, %v; want StatusCQOverflow", comp, ok)
		}
		// And then the queue is simply empty: the signal fires once.
		if _, ok := cq.Poll(p); ok {
			t.Fatal("second synthetic overflow completion")
		}
		// Overflow re-arms: the CQ stays usable after the incident.
		cq.Push(Completion{WRID: 10})
		cq.Push(Completion{WRID: 11})
		cq.Push(Completion{WRID: 12}) // overflows again
		cq.Poll(p)
		cq.Poll(p)
		if comp, ok := cq.Poll(p); !ok || comp.Status != StatusCQOverflow {
			t.Fatalf("second overflow not re-armed: %+v, %v", comp, ok)
		}
	})
	eng.Run()
}

// TestCQMaxLenUnderChurn: interleaved push/poll traffic at the depth
// boundary keeps the high-water mark at or below depth.
func TestCQMaxLenUnderChurn(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	cq := NewCQ(d, 4)
	eng.Spawn("app", func(p *sim.Proc) {
		id := uint64(0)
		for round := 0; round < 50; round++ {
			for i := 0; i < 3; i++ {
				id++
				cq.Push(Completion{WRID: id})
			}
			for i := 0; i < 2; i++ {
				cq.Poll(p)
			}
		}
		if cq.MaxLen() > cq.Depth() {
			t.Fatalf("MaxLen %d exceeded Depth %d", cq.MaxLen(), cq.Depth())
		}
		if cq.Overflows() == 0 {
			t.Fatal("churn at the boundary never overflowed; test exercises nothing")
		}
	})
	eng.Run()
}

// TestSetFailedRetryExceeded: retry exhaustion flushes outstanding WRs
// with StatusRetryExceeded and pins the QP error for later posts.
func TestSetFailedRetryExceeded(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, scq, rcq := mkQP(t, eng, d, Reliable, 8)
	qp.SetEstablished(1, 2, inet.NodeAddr6(1))
	eng.Spawn("app", func(p *sim.Proc) {
		qp.PostSend(p, SendWR{ID: 1, Payload: buf.Virtual(1)})
		qp.PostRecv(p, RecvWR{ID: 2, Capacity: 64})
		qp.SetFailed(ErrRetryExceeded, StatusRetryExceeded)
		if qp.State() != QPError {
			t.Fatalf("state = %v, want QPError", qp.State())
		}
		sc, ok := scq.Poll(p)
		if !ok || sc.Status != StatusRetryExceeded || sc.WRID != 1 {
			t.Errorf("send completion = %+v, %v; want StatusRetryExceeded", sc, ok)
		}
		rc, ok := rcq.Poll(p)
		if !ok || rc.Status != StatusRetryExceeded || rc.WRID != 2 {
			t.Errorf("recv completion = %+v, %v; want StatusRetryExceeded", rc, ok)
		}
		if err := qp.PostSend(p, SendWR{ID: 3, Payload: buf.Virtual(1)}); !errors.Is(err, ErrRetryExceeded) {
			t.Errorf("PostSend after failure = %v, want ErrRetryExceeded", err)
		}
		// A second failure is a no-op: completions don't double.
		qp.SetFailed(errors.New("other"), StatusFlushed)
		if _, ok := scq.Poll(p); ok {
			t.Error("idempotent SetFailed produced extra completions")
		}
	})
	eng.Run()
}
