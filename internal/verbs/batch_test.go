package verbs

import (
	"errors"
	"testing"

	"repro/internal/buf"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/sim"
)

// withBoundary runs fn under the given boundary mode, restoring the
// process-wide knob afterward.
func withBoundary(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := hw.BatchedBoundary()
	hw.SetBatchedBoundary(on)
	defer hw.SetBatchedBoundary(prev)
	fn()
}

// TestPostSendNPartialAtQueueFull: a batch larger than the remaining send
// depth posts the admissible prefix, reports ErrQueueFull, and rings
// exactly one vectored doorbell for the prefix. A follow-up batch against
// the full queue posts nothing and rings nothing.
func TestPostSendNPartialAtQueueFull(t *testing.T) {
	withBoundary(t, true, func() {
		eng := sim.NewEngine()
		d := newFake(eng)
		qp, _, _ := mkQP(t, eng, d, Reliable, 4)
		qp.SetEstablished(1, 2, inet.NodeAddr6(1))
		eng.Spawn("app", func(p *sim.Proc) {
			wrs := make([]SendWR, 8)
			for i := range wrs {
				wrs[i] = SendWR{ID: uint64(i), Payload: buf.Virtual(10)}
			}
			n, err := qp.PostSendN(p, wrs)
			if n != 4 || !errors.Is(err, ErrQueueFull) {
				t.Fatalf("PostSendN = (%d, %v), want (4, ErrQueueFull)", n, err)
			}
			if d.doorbells != 1 || d.vectored != 4 {
				t.Errorf("doorbells = %d (vectored %d), want 1 carrying 4", d.doorbells, d.vectored)
			}
			// The queue is full: the next batch is refused outright, with no
			// doorbell and no CPU charge for work not accepted.
			busy0 := d.cpu.BusyTotal()
			n, err = qp.PostSendN(p, wrs[4:])
			if n != 0 || !errors.Is(err, ErrQueueFull) {
				t.Fatalf("PostSendN on full queue = (%d, %v), want (0, ErrQueueFull)", n, err)
			}
			if d.doorbells != 1 {
				t.Errorf("refused batch rang a doorbell (%d total)", d.doorbells)
			}
			if d.cpu.BusyTotal() != busy0 {
				t.Error("refused batch charged host CPU")
			}
			// The admitted prefix is the device-visible WR sequence, in order.
			for i := uint64(0); i < 4; i++ {
				wr, ok := qp.TakeSendWR()
				if !ok || wr.ID != i {
					t.Fatalf("TakeSendWR %d = %+v, %v", i, wr, ok)
				}
			}
		})
		eng.Run()
	})
}

// TestPostSendNRejectsOversized: an oversized WR bounds the admissible
// prefix and surfaces ErrTooBig.
func TestPostSendNRejectsOversized(t *testing.T) {
	withBoundary(t, true, func() {
		eng := sim.NewEngine()
		d := newFake(eng)
		qp, _, _ := mkQP(t, eng, d, Reliable, 8)
		qp.SetEstablished(1, 2, inet.NodeAddr6(1))
		eng.Spawn("app", func(p *sim.Proc) {
			wrs := []SendWR{
				{ID: 1, Payload: buf.Virtual(10)},
				{ID: 2, Payload: buf.Virtual(d.maxMsg + 1)},
				{ID: 3, Payload: buf.Virtual(10)},
			}
			n, err := qp.PostSendN(p, wrs)
			if n != 1 || !errors.Is(err, ErrTooBig) {
				t.Fatalf("PostSendN = (%d, %v), want (1, ErrTooBig)", n, err)
			}
		})
		eng.Run()
	})
}

// TestPostRecvNPartialAtQueueFull mirrors the send-side prefix semantics
// on the receive queue.
func TestPostRecvNPartialAtQueueFull(t *testing.T) {
	withBoundary(t, true, func() {
		eng := sim.NewEngine()
		d := newFake(eng)
		qp, _, _ := mkQP(t, eng, d, Reliable, 4)
		eng.Spawn("app", func(p *sim.Proc) {
			wrs := make([]RecvWR, 8)
			for i := range wrs {
				wrs[i] = RecvWR{ID: uint64(i), Capacity: 64}
			}
			n, err := qp.PostRecvN(p, wrs)
			if n != 4 || !errors.Is(err, ErrQueueFull) {
				t.Fatalf("PostRecvN = (%d, %v), want (4, ErrQueueFull)", n, err)
			}
			if d.recvPosts != 1 || d.vectoredRecv != 4 {
				t.Errorf("recvPosts = %d (vectored %d), want 1 carrying 4", d.recvPosts, d.vectoredRecv)
			}
			if got := qp.PostedRecvBytes(); got != 4*64 {
				t.Errorf("PostedRecvBytes = %d, want %d", got, 4*64)
			}
		})
		eng.Run()
	})
}

// TestBatchVerbsFallBackPerToken: with the batched boundary off, the N
// forms degrade to loops of the single verbs — one doorbell per WR, no
// vectored tokens — so per-token mode exercises exactly the PR2 datapath.
func TestBatchVerbsFallBackPerToken(t *testing.T) {
	withBoundary(t, false, func() {
		eng := sim.NewEngine()
		d := newFake(eng)
		qp, _, _ := mkQP(t, eng, d, Reliable, 8)
		qp.SetEstablished(1, 2, inet.NodeAddr6(1))
		eng.Spawn("app", func(p *sim.Proc) {
			wrs := []SendWR{
				{ID: 1, Payload: buf.Virtual(10)},
				{ID: 2, Payload: buf.Virtual(10)},
				{ID: 3, Payload: buf.Virtual(10)},
			}
			n, err := qp.PostSendN(p, wrs)
			if n != 3 || err != nil {
				t.Fatalf("PostSendN = (%d, %v)", n, err)
			}
			if d.doorbells != 3 || d.vectored != 0 {
				t.Errorf("per-token PostSendN: doorbells = %d vectored = %d, want 3/0", d.doorbells, d.vectored)
			}
		})
		eng.Run()
	})
}

// TestPollNMatchesSequentialPolls: a PollN drain must observe the exact
// completion sequence (IDs and statuses) that N single Polls would, for
// the identical push history — including a CQ overflow mid-train, where
// the synthetic StatusCQOverflow completion surfaces only after the queue
// drains, exactly once.
func TestPollNMatchesSequentialPolls(t *testing.T) {
	// Push history: 6 pushes into a depth-4 CQ — 4 land, 2 overflow.
	abuse := func(cq *CQ) {
		for i := uint64(1); i <= 6; i++ {
			cq.Push(Completion{WRID: i, Status: StatusSuccess})
		}
	}
	withBoundary(t, true, func() {
		eng := sim.NewEngine()
		d := newFake(eng)
		ref := NewCQ(d, 4) // drained by single Polls
		got := NewCQ(d, 4) // drained by one PollN
		abuse(ref)
		abuse(got)
		eng.Spawn("app", func(p *sim.Proc) {
			var want []Completion
			for {
				comp, ok := ref.Poll(p)
				if !ok {
					break
				}
				want = append(want, comp)
			}
			out := make([]Completion, 16)
			n := got.PollN(p, out)
			if n != len(want) {
				t.Fatalf("PollN = %d completions, single Polls = %d", n, len(want))
			}
			for i := range want {
				if out[i].WRID != want[i].WRID || out[i].Status != want[i].Status {
					t.Errorf("completion %d: PollN %+v, single Poll %+v", i, out[i], want[i])
				}
			}
			// The train ends with exactly one synthetic overflow completion.
			if n == 0 || out[n-1].Status != StatusCQOverflow {
				t.Fatalf("train tail = %+v, want StatusCQOverflow", out[n-1])
			}
			// The signal fired once: both queues are now simply empty.
			if m := got.PollN(p, out); m != 0 {
				t.Errorf("drained CQ yielded %d more completions", m)
			}
		})
		eng.Run()
	})
}

// TestPollNPartialBufferLeavesOverflowPending: when the caller's buffer is
// smaller than the queue, PollN fills it without consuming the overflow
// signal; the next drain surfaces it.
func TestPollNPartialBufferLeavesOverflowPending(t *testing.T) {
	withBoundary(t, true, func() {
		eng := sim.NewEngine()
		d := newFake(eng)
		cq := NewCQ(d, 4)
		for i := uint64(1); i <= 5; i++ { // 4 land, 1 overflows
			cq.Push(Completion{WRID: i})
		}
		eng.Spawn("app", func(p *sim.Proc) {
			out := make([]Completion, 2)
			if n := cq.PollN(p, out); n != 2 || out[0].WRID != 1 || out[1].WRID != 2 {
				t.Fatalf("first PollN = %d (%+v)", n, out[:n])
			}
			big := make([]Completion, 8)
			n := cq.PollN(p, big)
			if n != 3 || big[2].Status != StatusCQOverflow {
				t.Fatalf("second PollN = %d (%+v), want 2 data + overflow tail", n, big[:n])
			}
		})
		eng.Run()
	})
}
