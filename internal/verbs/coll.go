package verbs

// Collective verbs. A CollQ is the host handle on one collective group: a
// set of ranks (one per adapter) that execute barriers, broadcasts and
// ring reductions entirely inside the adapters. The host posts one
// collective WR — a single doorbell crossing, charged like PostSend — and
// the group's adapters run the gather/release tree or the ring schedule
// among themselves with no further host involvement; the completion
// arrives on the bound CQ when the local rank's result is ready.
//
// Collective posting order must match across ranks (the usual collective
// calling convention): the i-th collective posted on every rank of a
// group is the same logical operation. The adapters pair messages by that
// per-group sequence number, so posts may be issued at arbitrary
// simulated times — early messages wait in adapter SRAM.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
)

// CollWR is a collective work request.
type CollWR struct {
	ID uint64
	// Op selects the collective: OpBarrier, OpBcast, OpAllreduce or
	// OpReduceScatter.
	Op Op
	// Root is the broadcasting rank (OpBcast only).
	Root int
	// Vec is the local contribution: the payload at the bcast root, the
	// input vector for allreduce/reduce-scatter. Unused by barriers.
	Vec []uint64
}

// CollDevice is the optional adapter capability behind CollQ. It is a
// separate interface — not part of Device — so conventional adapters and
// test fakes are unaffected; NewCollQ refuses devices without it.
type CollDevice interface {
	Device
	// JoinColl registers this adapter as one rank of a collective group.
	// members lists every rank's adapter address, indexed by rank;
	// completions for the group land on cq.
	JoinColl(group uint16, rank int, members []inet.Addr6, cq *CQ) error
	// PostColl hands one collective WR to the adapter (the doorbell write
	// is modeled inside, like SendDoorbell).
	PostColl(group uint16, wr CollWR) error
}

// CollQ is the host-side handle on one rank's membership in a collective
// group.
type CollQ struct {
	dev   CollDevice
	group uint16
	rank  int
	size  int
	cq    *CQ
}

// NewCollQ joins dev to a collective group as rank rank of len(members)
// and returns the posting handle. Completions carry QPN
// 0x80000000|group (collectives have no QP) and the posted WR ID.
func NewCollQ(dev Device, group uint16, rank int, members []inet.Addr6, cq *CQ) (*CollQ, error) {
	cd, ok := dev.(CollDevice)
	if !ok {
		return nil, fmt.Errorf("%w: device has no collective engine", ErrNotSupported)
	}
	if rank < 0 || rank >= len(members) {
		return nil, fmt.Errorf("verbs: collective rank %d outside group of %d", rank, len(members))
	}
	if err := cd.JoinColl(group, rank, members, cq); err != nil {
		return nil, err
	}
	return &CollQ{dev: cd, group: group, rank: rank, size: len(members), cq: cq}, nil
}

// Rank reports this member's rank.
func (c *CollQ) Rank() int { return c.rank }

// Size reports the group size.
func (c *CollQ) Size() int { return c.size }

// PostBarrier posts a barrier: the completion arrives once every rank has
// posted its matching barrier.
func (c *CollQ) PostBarrier(p *sim.Proc, id uint64) error {
	return c.post(p, CollWR{ID: id, Op: OpBarrier})
}

// PostBcast posts a broadcast of vec from root. Non-root ranks pass their
// WR with vec ignored; every rank's completion payload carries the root's
// vector.
func (c *CollQ) PostBcast(p *sim.Proc, id uint64, root int, vec []uint64) error {
	if root < 0 || root >= c.size {
		return fmt.Errorf("verbs: bcast root %d outside group of %d", root, c.size)
	}
	return c.post(p, CollWR{ID: id, Op: OpBcast, Root: root, Vec: vec})
}

// PostAllreduce posts a ring allreduce (elementwise sum): the completion
// payload carries the full reduced vector.
func (c *CollQ) PostAllreduce(p *sim.Proc, id uint64, vec []uint64) error {
	return c.post(p, CollWR{ID: id, Op: OpAllreduce, Vec: vec})
}

// PostReduceScatter posts the reduce-scatter half of the ring schedule:
// rank r's completion payload carries the fully reduced chunk covering
// words [c*ceil(len/size), (c+1)*ceil(len/size)) of the (zero-padded)
// vector, c = (r+1) mod size.
func (c *CollQ) PostReduceScatter(p *sim.Proc, id uint64, vec []uint64) error {
	return c.post(p, CollWR{ID: id, Op: OpReduceScatter, Vec: vec})
}

// post charges the host for building the WR and the doorbell write —
// the same Table 1 cost as PostSend — and hands off to the adapter. This
// is the last host CPU the collective consumes before its completion.
func (c *CollQ) post(p *sim.Proc, wr CollWR) error {
	p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPostSendUS))
	return c.dev.PostColl(c.group, wr)
}

// MarshalVec encodes a result vector into a real payload buffer
// (8 bytes per word, little-endian) for Completion.Payload.
func MarshalVec(vec []uint64) buf.Buf {
	if len(vec) == 0 {
		return buf.Empty
	}
	d := make([]byte, 8*len(vec))
	for i, w := range vec {
		binary.LittleEndian.PutUint64(d[8*i:], w)
	}
	return buf.Bytes(d)
}

// UnmarshalVec decodes a MarshalVec payload.
func UnmarshalVec(b buf.Buf) []uint64 {
	d := b.Data()
	vec := make([]uint64, len(d)/8)
	for i := range vec {
		vec[i] = binary.LittleEndian.Uint64(d[8*i:])
	}
	return vec
}
