package verbs

import (
	"errors"
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

func mkSRQQP(t *testing.T, d *fakeDevice, srq *SRQ) (*QP, *CQ, *CQ) {
	t.Helper()
	scq, rcq := NewCQ(d, 16), NewCQ(d, 16)
	qp, err := NewQP(d, QPConfig{Transport: Reliable, SendCQ: scq, RecvCQ: rcq, SendDepth: 8, SRQ: srq})
	if err != nil {
		t.Fatal(err)
	}
	return qp, scq, rcq
}

func TestSRQSharedFIFOClaim(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	srq, err := NewSRQ(d, SRQConfig{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	qp1, _, _ := mkSRQQP(t, d, srq)
	qp2, _, _ := mkSRQQP(t, d, srq)
	if srq.Attached() != 2 {
		t.Fatalf("Attached = %d, want 2", srq.Attached())
	}
	eng.Spawn("app", func(p *sim.Proc) {
		for i := uint64(1); i <= 3; i++ {
			if err := srq.PostRecv(p, RecvWR{ID: i, Capacity: 100}); err != nil {
				t.Fatal(err)
			}
		}
		// Both QPs advertise the shared pool as their receive window.
		if qp1.PostedRecvBytes() != 300 || qp2.PostedRecvBytes() != 300 {
			t.Errorf("windows = %d, %d, want 300, 300", qp1.PostedRecvBytes(), qp2.PostedRecvBytes())
		}
		// Claims resolve FIFO over the pool regardless of claiming QP.
		wr, ok := qp2.TakeRecvWR()
		if !ok || wr.ID != 1 {
			t.Fatalf("qp2 claim = %+v, %v, want ID 1", wr, ok)
		}
		wr, ok = qp1.TakeRecvWR()
		if !ok || wr.ID != 2 {
			t.Fatalf("qp1 claim = %+v, %v, want ID 2", wr, ok)
		}
		if qp1.OutstandingRecv() != 1 || qp2.OutstandingRecv() != 1 {
			t.Errorf("outstanding = %d, %d, want 1, 1", qp1.OutstandingRecv(), qp2.OutstandingRecv())
		}
		if srq.Posted() != 1 || srq.PostedBytes() != 100 {
			t.Errorf("pool = %d WRs / %d bytes, want 1 / 100", srq.Posted(), srq.PostedBytes())
		}
		if srq.Claims() != 2 {
			t.Errorf("Claims = %d, want 2", srq.Claims())
		}
	})
	eng.Run()
	if d.srqPosts != 3 || d.srqVectored != 3 {
		t.Errorf("device SRQ notifications = %d/%d, want 3/3", d.srqPosts, d.srqVectored)
	}
}

func TestSRQAttachedQPRefusesPrivatePost(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	srq, _ := NewSRQ(d, SRQConfig{Depth: 8})
	qp, _, _ := mkSRQQP(t, d, srq)
	eng.Spawn("app", func(p *sim.Proc) {
		if err := qp.PostRecv(p, RecvWR{ID: 1, Capacity: 64}); !errors.Is(err, ErrSRQAttached) {
			t.Errorf("PostRecv = %v, want ErrSRQAttached", err)
		}
		if _, err := qp.PostRecvN(p, []RecvWR{{ID: 1, Capacity: 64}}); !errors.Is(err, ErrSRQAttached) {
			t.Errorf("PostRecvN = %v, want ErrSRQAttached", err)
		}
	})
	eng.Run()
}

func TestSRQLimitEventFiresOnceAtWatermark(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	srq, _ := NewSRQ(d, SRQConfig{Depth: 8, Limit: 2})
	qp, _, _ := mkSRQQP(t, d, srq)
	var woke sim.Time
	eng.Spawn("reposter", func(p *sim.Proc) {
		srq.WaitLimit(p)
		woke = p.Now()
	})
	eng.Spawn("app", func(p *sim.Proc) {
		for i := uint64(1); i <= 4; i++ {
			if err := srq.PostRecv(p, RecvWR{ID: i, Capacity: 100}); err != nil {
				t.Fatal(err)
			}
		}
		// 4 posted, limit 2: claims at 4→3 and 3→2 leave >=2, no event;
		// the 2→1 crossing fires it exactly once.
		qp.TakeRecvWR()
		qp.TakeRecvWR()
		if srq.LimitEvents() != 0 {
			t.Fatalf("limit fired above watermark (events=%d)", srq.LimitEvents())
		}
		qp.TakeRecvWR()
		if srq.LimitEvents() != 1 {
			t.Fatalf("LimitEvents = %d, want 1", srq.LimitEvents())
		}
		// Unarmed now: further claims do not re-fire.
		qp.TakeRecvWR()
		if srq.LimitEvents() != 1 {
			t.Fatalf("LimitEvents after drain = %d, want 1", srq.LimitEvents())
		}
		// Re-arming below the watermark fires immediately.
		if err := srq.ArmLimit(2); err != nil {
			t.Fatal(err)
		}
		if srq.LimitEvents() != 2 {
			t.Fatalf("re-arm below watermark: LimitEvents = %d, want 2", srq.LimitEvents())
		}
	})
	eng.Run()
	if woke == 0 {
		t.Error("WaitLimit never woke")
	}
}

func TestSRQFlushLeavesPoolForOtherQPs(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	srq, _ := NewSRQ(d, SRQConfig{Depth: 8})
	qp1, _, rcq1 := mkSRQQP(t, d, srq)
	qp2, _, _ := mkSRQQP(t, d, srq)
	eng.Spawn("app", func(p *sim.Proc) {
		for i := uint64(1); i <= 3; i++ {
			srq.PostRecv(p, RecvWR{ID: i, Capacity: 100})
		}
		// qp1 fails: unclaimed buffers stay in the pool, no per-QP recv
		// flush completions are generated.
		qp1.SetError(errors.New("boom"))
		if _, ok := rcq1.Poll(p); ok {
			t.Error("SRQ-attached QP flushed pooled buffers to its own CQ")
		}
		if srq.Posted() != 3 {
			t.Errorf("pool after flush = %d, want 3", srq.Posted())
		}
		// qp2 still claims from the intact pool.
		wr, ok := qp2.TakeRecvWR()
		if !ok || wr.ID != 1 {
			t.Errorf("claim after peer flush = %+v, %v", wr, ok)
		}
	})
	eng.Run()
}

func TestSRQPostRecvNPartialPrefix(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	srq, _ := NewSRQ(d, SRQConfig{Depth: 4})
	eng.Spawn("app", func(p *sim.Proc) {
		wrs := make([]RecvWR, 6)
		for i := range wrs {
			wrs[i] = RecvWR{ID: uint64(i + 1), Capacity: 50}
		}
		before := d.cpu.Server.BusyTotal()
		n, err := srq.PostRecvN(p, wrs)
		if n != 4 || !errors.Is(err, ErrQueueFull) {
			t.Fatalf("PostRecvN = %d, %v, want 4, ErrQueueFull", n, err)
		}
		want := params.US(params.VerbsPostRecvUS + 3*params.VerbsPostRecvBatchUS)
		if got := d.cpu.Server.BusyTotal() - before; got != want {
			t.Errorf("partial post charged %v, want %v (accepted prefix only)", got, want)
		}
		// Full pool: zero accepted, zero charged.
		before = d.cpu.Server.BusyTotal()
		n, err = srq.PostRecvN(p, wrs[:1])
		if n != 0 || !errors.Is(err, ErrQueueFull) {
			t.Fatalf("PostRecvN on full pool = %d, %v", n, err)
		}
		if got := d.cpu.Server.BusyTotal() - before; got != 0 {
			t.Errorf("zero-accept post charged %v", got)
		}
	})
	eng.Run()
}

// TestQPPostRecvNPartialPrefixAccounting pins the batched-post CPU
// accounting contract on the private-recvQ path: a batch cut short when
// the recv FIFO fills mid-batch, or by an invalid WR, charges the host
// for exactly the accepted prefix — first WR at full cost, the rest at
// the marginal batch cost, nothing on a zero-accept.
func TestQPPostRecvNPartialPrefixAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, _, _ := mkQP(t, eng, d, Reliable, 3)
	eng.Spawn("app", func(p *sim.Proc) {
		wrs := make([]RecvWR, 5)
		for i := range wrs {
			wrs[i] = RecvWR{ID: uint64(i + 1), Capacity: 50}
		}
		// Depth 3, 5 offered: accepted prefix is 3.
		before := d.cpu.Server.BusyTotal()
		n, err := qp.PostRecvN(p, wrs)
		if n != 3 || !errors.Is(err, ErrQueueFull) {
			t.Fatalf("PostRecvN = %d, %v, want 3, ErrQueueFull", n, err)
		}
		want := params.US(params.VerbsPostRecvUS + 2*params.VerbsPostRecvBatchUS)
		if got := d.cpu.Server.BusyTotal() - before; got != want {
			t.Errorf("partial post charged %v, want %v (accepted prefix only)", got, want)
		}
		if qp.PostedRecvBytes() != 150 {
			t.Errorf("PostedRecvBytes = %d, want 150", qp.PostedRecvBytes())
		}
		// FIFO full: zero accepted, zero charged.
		before = d.cpu.Server.BusyTotal()
		if n, err = qp.PostRecvN(p, wrs[:2]); n != 0 || !errors.Is(err, ErrQueueFull) {
			t.Fatalf("PostRecvN on full FIFO = %d, %v", n, err)
		}
		if got := d.cpu.Server.BusyTotal() - before; got != 0 {
			t.Errorf("zero-accept post charged %v", got)
		}
	})
	eng.Run()
	if d.recvPosts != 1 || d.vectoredRecv != 3 {
		t.Errorf("notifications = %d/%d, want 1/3", d.recvPosts, d.vectoredRecv)
	}
}

// Invalid WR mid-batch: the prefix before it posts and is the only thing
// charged.
func TestQPPostRecvNInvalidWRMidBatch(t *testing.T) {
	eng := sim.NewEngine()
	d := newFake(eng)
	qp, _, _ := mkQP(t, eng, d, Reliable, 8)
	eng.Spawn("app", func(p *sim.Proc) {
		wrs := []RecvWR{{ID: 1, Capacity: 50}, {ID: 2, Capacity: 50}, {ID: 3, Capacity: 0}, {ID: 4, Capacity: 50}}
		before := d.cpu.Server.BusyTotal()
		n, err := qp.PostRecvN(p, wrs)
		if n != 2 || err == nil {
			t.Fatalf("PostRecvN = %d, %v, want 2 with error", n, err)
		}
		want := params.US(params.VerbsPostRecvUS + 1*params.VerbsPostRecvBatchUS)
		if got := d.cpu.Server.BusyTotal() - before; got != want {
			t.Errorf("charged %v, want %v", got, want)
		}
	})
	eng.Run()
}

func TestQPExhaustedErrorMatchesBothSentinels(t *testing.T) {
	err := error(&QPExhaustedError{Current: 512, Capacity: 512})
	if !errors.Is(err, ErrQPExhausted) {
		t.Error("does not match ErrQPExhausted")
	}
	if !errors.Is(err, ErrNoResources) {
		t.Error("does not match ErrNoResources (compat)")
	}
	if got := err.Error(); got != "verbs: adapter QP table exhausted (512/512 QPs)" {
		t.Errorf("message = %q", got)
	}
}
