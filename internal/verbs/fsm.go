package verbs

import (
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
)

// ModifyQP drives the host-controlled edges of the QP lifecycle, following
// the Infiniband modify-QP model (MPICH2-over-IB practice: an explicit
// RESET→INIT→RTR→RTS machine with SQD and ERR excursions). Because QPIP's
// connection rendezvous runs inside the adapter (paper §3), the INIT→RTR
// and RTR→RTS edges belong to the device — Connect, Listener.Post and the
// firmware's SetEstablished — so requesting them here returns
// ErrNotSupported. The host-driven edges are:
//
//	RESET → INIT            register intent (API fidelity; no device action)
//	RTS   → SQD             begin send-queue drain (PostSend refused)
//	SQD   → RTS             resume sending after (or during) a drain
//	any live state → ERR    administrative kill: flush everything
//	any state ≤ ERR → RESET recycle: device aborts the TCB, WRs flush,
//	                        addressing clears; the QP can connect again
//
// Transitions are idempotent where Infiniband makes them so (ERR→ERR,
// RESET→RESET). Every other (state, target) pair is a documented error:
// ErrBadState from CLOSED, ErrNotSupported for device-owned or undefined
// edges. The call charges VerbsModifyQPUS of host CPU.
func (q *QP) ModifyQP(p *sim.Proc, to QPState) error {
	p.Use(q.dev.HostCPU().Server, params.US(params.VerbsModifyQPUS))
	if q.state == QPClosed {
		return ErrBadState
	}
	switch to {
	case QPInit:
		if q.state != QPReset {
			return ErrNotSupported
		}
		q.state = QPInit
		return nil
	case QPRTR:
		// Device-owned edge (Connect / Listener.Post).
		return ErrNotSupported
	case QPRTS:
		// SQD→RTS resume is the only host-driven path to RTS; the
		// RTR→RTS edge is driven by the firmware's rendezvous.
		if q.state != QPSQD {
			return ErrNotSupported
		}
		q.state = QPRTS
		return nil
	case QPSQD:
		if q.state != QPRTS {
			return ErrNotSupported
		}
		q.state = QPSQD
		return nil
	case QPError:
		if q.state == QPError {
			return nil
		}
		// SetFailed performs the deterministic flush (see FlushWith) and
		// wakes connection/drain waiters.
		q.SetFailed(ErrAdminError, StatusFlushed)
		return nil
	case QPReset:
		if q.state == QPReset {
			return nil
		}
		q.unpark()
		if err := q.dev.ResetQP(q); err != nil {
			return err
		}
		q.FlushWith(StatusFlushed)
		q.err = nil
		q.LocalPort = 0
		q.RemotePort = 0
		q.RemoteAddr = inet.Addr6{}
		q.state = QPReset
		q.wakeEst()
		q.wakeSQD()
		return nil
	case QPClosed:
		// Destruction goes through Close, not ModifyQP.
		return ErrNotSupported
	default:
		return ErrNotSupported
	}
}

// SQDrained reports whether a QP in the SQD state has no sends outstanding
// (posted or consumed by the adapter).
func (q *QP) SQDrained() bool {
	return q.state == QPSQD && q.outSend == 0
}

// WaitSQDrained blocks until the send queue has drained after
// ModifyQP(QPSQD), or the QP leaves SQD (failure or reset). It returns nil
// once drained, ErrBadState if the QP is not in SQD, and the QP's error if
// it failed while draining.
func (q *QP) WaitSQDrained(p *sim.Proc) error {
	for {
		switch {
		case q.state == QPSQD && q.outSend == 0:
			return nil
		case q.state == QPError:
			if q.err != nil {
				return q.err
			}
			return ErrBadState
		case q.state != QPSQD:
			return ErrBadState
		}
		q.sqdWaiter = p
		p.Suspend()
		q.sqdWaiter = nil
	}
}

// BackoffPolicy is a deterministic exponential-backoff schedule for
// QP.Reconnect. Delays double from Base to Max with ±25% jitter derived
// from Seed and the attempt ordinal via a splitmix64-style hash — pure
// simulated time, no wall clock and no math/rand, so two runs of the same
// seed reconnect at identical instants.
type BackoffPolicy struct {
	// Base is the delay before the first retry (default 1ms).
	Base sim.Time
	// Max caps the exponential growth (default 500ms).
	Max sim.Time
	// Attempts bounds the number of connect attempts before the endpoint
	// is declared down (default 8).
	Attempts int
	// Handshake caps one attempt's rendezvous: a connect that has not
	// established within the window is aborted (TCB reset) and retried
	// after backoff. Without a cap, a SYN lost to a mid-recycle peer
	// parks the attempt behind TCP's InitialRTO (3 s) — far longer than
	// simply trying again. Default 2*Max.
	Handshake sim.Time
	// Seed decorrelates jitter across policies sharing a schedule.
	Seed uint64
}

func (b BackoffPolicy) withDefaults() BackoffPolicy {
	if b.Base <= 0 {
		b.Base = sim.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 500 * sim.Millisecond
	}
	if b.Attempts <= 0 {
		b.Attempts = 8
	}
	if b.Handshake <= 0 {
		b.Handshake = 2 * b.Max
	}
	return b
}

// jitterHash is a splitmix64 finalizer: a pure function of its argument,
// used to derive per-attempt jitter deterministically.
func jitterHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay reports the backoff before retry attempt (1-based): exponential
// growth capped at Max, with deterministic ±25% jitter.
func (b BackoffPolicy) Delay(attempt int) sim.Time {
	b = b.withDefaults()
	d := b.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= b.Max {
			d = b.Max
			break
		}
	}
	// ±25% jitter: scale by a factor in [0.75, 1.25).
	h := jitterHash(b.Seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(h>>11) / float64(1<<53) // [0,1)
	d = sim.Time(float64(d) * (0.75 + 0.5*frac))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d
}

// Reconnect recycles a failed (or reset) QP and re-runs the rendezvous to
// raddr:rport under the backoff policy: ModifyQP(QPReset), Connect, and
// the established wait, sleeping pol.Delay between attempts. It returns
// nil once established. After pol.Attempts failures the QP is left in
// QPError with ErrRemoteDown and Reconnect returns ErrRemoteDown — the
// caller's outstanding-WR bookkeeping should surface StatusRemoteDown to
// the application. A local adapter crash (ErrNICDown) also retries: the
// adapter may be mid-reboot.
func (q *QP) Reconnect(p *sim.Proc, raddr inet.Addr6, rport uint16, pol BackoffPolicy) error {
	pol = pol.withDefaults()
	for attempt := 1; attempt <= pol.Attempts; attempt++ {
		if err := q.ModifyQP(p, QPReset); err == nil {
			if err := q.connectWithin(p, raddr, rport, pol.Handshake); err == nil {
				return nil
			}
		}
		if attempt < pol.Attempts {
			p.Sleep(pol.Delay(attempt))
		}
	}
	// Exhausted: pin the QP in ERR with the terminal status.
	if q.state != QPError {
		q.SetFailed(ErrRemoteDown, StatusRemoteDown)
	} else {
		q.err = ErrRemoteDown
	}
	return ErrRemoteDown
}

// handshakePollUS paces the established-state polls inside connectWithin.
// The rendezvous itself completes in tens of microseconds on the SAN, so
// one tick of added latency is noise against the backoff timescale.
const handshakePollUS = 50

// connectWithin is Connect with a deadline on the rendezvous: if the
// adapter has not reported established when the window closes, the
// half-open attempt is abandoned (ModifyQP(QPReset) aborts the TCB) and
// ErrHandshakeTimeout is returned. The wait polls the simulated clock
// instead of parking on the established waiter, so the deadline needs no
// extra timer machinery and remains deterministic.
func (q *QP) connectWithin(p *sim.Proc, raddr inet.Addr6, rport uint16, window sim.Time) error {
	if q.Transport != Reliable {
		return ErrNotSupported
	}
	if q.state != QPReset && q.state != QPInit {
		return ErrBadState
	}
	q.state = QPConnecting
	if err := q.dev.Connect(q, raddr, rport); err != nil {
		q.state = QPError
		q.err = err
		return err
	}
	deadline := p.Now() + window
	for q.state == QPConnecting && p.Now() < deadline {
		p.Sleep(params.US(handshakePollUS))
	}
	if q.state == QPConnecting {
		if err := q.ModifyQP(p, QPReset); err != nil {
			return err
		}
		return ErrHandshakeTimeout
	}
	if q.state != QPEstablished {
		if q.err != nil {
			return q.err
		}
		return ErrBadState
	}
	return nil
}
