package verbs

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
)

// QP is a queue pair: "the logical endpoint of a communication link ...
// a send and a receive queue of work requests" (paper §2.1). The queues
// live in host memory; the adapter consumes WRs via DMA after doorbell
// notifications and posts completions to the bound CQs.
type QP struct {
	QPN       uint32
	Transport TransportType
	SendCQ    *CQ
	RecvCQ    *CQ

	dev   Device
	state QPState
	err   error
	// Both WR queues drain through head indices so steady-state post/take
	// traffic reuses one backing array; taken slots are cleared so consumed
	// WRs don't pin their payload buffers.
	sendQ      []SendWR
	sendHead   int
	recvQ      []RecvWR
	recvHead   int
	sendDepth  int
	recvDepth  int
	outSend    int // posted send WRs not yet completed
	outRecv    int
	postedRecv int // bytes of receive capacity not yet consumed
	// srq, when set, replaces the private recvQ: receives are posted to
	// the shared pool and claimed from it in device-wide FIFO order.
	srq *SRQ
	estWaiter  *sim.Proc
	sqdWaiter  *sim.Proc // parked in WaitSQDrained
	parked     *Listener // listener this QP is idling on, if any

	// Connection identity, filled during connect/accept/bind.
	LocalPort  uint16
	RemoteAddr inet.Addr6
	RemotePort uint16

	posts, recvPosts uint64
}

// QPConfig sizes a queue pair.
type QPConfig struct {
	Transport TransportType
	SendCQ    *CQ
	RecvCQ    *CQ
	// SendDepth / RecvDepth bound outstanding WRs (default 128).
	SendDepth, RecvDepth int
	// SRQ attaches the QP to a shared receive queue at create time: the
	// QP has no private recvQ, per-QP receive posting is refused
	// (ErrSRQAttached), and arriving messages claim from the shared pool
	// in device-wide FIFO order. RecvDepth is ignored.
	SRQ *SRQ
}

// NewQP creates a queue pair and registers it with the device. QPNs come
// from the device (Device.AllocQPN), never from package state: a sharded
// simulation creates QPs on different shard engines concurrently, and a
// process-wide counter would make numbering an artifact of thread timing.
func NewQP(dev Device, cfg QPConfig) (*QP, error) {
	if cfg.SendCQ == nil || cfg.RecvCQ == nil {
		return nil, fmt.Errorf("verbs: QP requires send and receive CQs")
	}
	if cfg.SendDepth <= 0 {
		cfg.SendDepth = 128
	}
	if cfg.RecvDepth <= 0 {
		cfg.RecvDepth = 128
	}
	qp := &QP{
		QPN:       dev.AllocQPN(),
		Transport: cfg.Transport,
		SendCQ:    cfg.SendCQ,
		RecvCQ:    cfg.RecvCQ,
		dev:       dev,
		sendDepth: cfg.SendDepth,
		recvDepth: cfg.RecvDepth,
		srq:       cfg.SRQ,
	}
	if err := dev.CreateQP(qp); err != nil {
		return nil, err
	}
	if qp.srq != nil {
		qp.srq.attached++
	}
	return qp, nil
}

// SRQ reports the shared receive queue the QP draws from, if any.
func (q *QP) SRQ() *SRQ { return q.srq }

// State reports the QP lifecycle state.
func (q *QP) State() QPState { return q.state }

// Err reports the error that moved the QP to QPError, if any.
func (q *QP) Err() error { return q.err }

// PostSend posts a send work request and rings the doorbell. "The posting
// method adds the WR to the appropriate queue and notifies the adapter of
// a pending operation" (paper §2.1).
//
//qpip:hotpath
func (q *QP) PostSend(p *sim.Proc, wr SendWR) error {
	if q.state != QPEstablished && !(q.Transport == Unreliable && q.state != QPError && q.state != QPClosed && q.state != QPSQD) {
		if q.state == QPError {
			return q.err
		}
		if q.state == QPSQD {
			return ErrSQDraining
		}
		return ErrBadState
	}
	if q.outSend >= q.sendDepth {
		return ErrQueueFull
	}
	if wr.Payload.Len() > q.dev.MaxMessage() {
		//lint:qpip-allow hotalloc rejected-WR error path, cold by construction
		return fmt.Errorf("%w: %d > %d", ErrTooBig, wr.Payload.Len(), q.dev.MaxMessage())
	}
	// Build the WR in the host-resident queue, then one uncached doorbell
	// write. Calibrated against paper Table 1 (2.5 us total host overhead
	// for send+receive of a 1-byte message).
	p.Use(q.dev.HostCPU().Server, params.US(params.VerbsPostSendUS))
	q.outSend++
	q.posts++
	q.sendQ = append(q.sendQ, wr)
	q.dev.SendDoorbell(q)
	return nil
}

// PostSendN posts up to len(wrs) send work requests with one batched CPU
// charge (first WR at full cost, the rest at the marginal batch cost)
// and a single vectored doorbell. It returns how many WRs were posted;
// on a partial post (queue full or oversized WR mid-batch) the prefix
// that fits is posted and the error reported, with nothing charged when
// the count is zero. With the batched boundary off it degrades to a loop
// of single PostSends — per-WR charges and doorbells.
//
//qpip:hotpath
func (q *QP) PostSendN(p *sim.Proc, wrs []SendWR) (int, error) {
	if len(wrs) == 0 {
		return 0, nil
	}
	if !hw.BatchedBoundary() {
		for i, wr := range wrs {
			if err := q.PostSend(p, wr); err != nil {
				return i, err
			}
		}
		return len(wrs), nil
	}
	if q.state != QPEstablished && !(q.Transport == Unreliable && q.state != QPError && q.state != QPClosed && q.state != QPSQD) {
		if q.state == QPError {
			return 0, q.err
		}
		if q.state == QPSQD {
			return 0, ErrSQDraining
		}
		return 0, ErrBadState
	}
	n := 0
	var err error
	for _, wr := range wrs {
		if q.outSend+n >= q.sendDepth {
			err = ErrQueueFull
			break
		}
		if wr.Payload.Len() > q.dev.MaxMessage() {
			//lint:qpip-allow hotalloc rejected-WR error path, cold by construction
			err = fmt.Errorf("%w: %d > %d", ErrTooBig, wr.Payload.Len(), q.dev.MaxMessage())
			break
		}
		n++
	}
	if n == 0 {
		return 0, err
	}
	p.Use(q.dev.HostCPU().Server,
		params.US(params.VerbsPostSendUS+float64(n-1)*params.VerbsPostSendBatchUS))
	for _, wr := range wrs[:n] {
		q.outSend++
		q.posts++
		q.sendQ = append(q.sendQ, wr)
	}
	q.dev.SendDoorbellN(q, n)
	return n, err
}

// PostRecv posts a receive work request identifying buffer capacity for
// one incoming message. Posting receive space grows the connection's TCP
// receive window (paper §5.1).
//
//qpip:hotpath
func (q *QP) PostRecv(p *sim.Proc, wr RecvWR) error {
	if q.srq != nil {
		return ErrSRQAttached
	}
	if q.state == QPError {
		return q.err
	}
	if q.state == QPClosed {
		return ErrBadState
	}
	if q.outRecv >= q.recvDepth {
		return ErrQueueFull
	}
	if wr.Capacity <= 0 {
		//lint:qpip-allow hotalloc rejected-WR error path, cold by construction
		return fmt.Errorf("verbs: receive WR needs positive capacity")
	}
	p.Use(q.dev.HostCPU().Server, params.US(params.VerbsPostRecvUS))
	q.outRecv++
	q.recvPosts++
	q.postedRecv += wr.Capacity
	q.recvQ = append(q.recvQ, wr)
	q.dev.RecvPosted(q)
	return nil
}

// PostRecvN posts up to len(wrs) receive work requests with one batched
// CPU charge and a single notification write. Partial-post and fallback
// semantics mirror PostSendN: the accepted prefix is validated first, and
// the CPU charge covers exactly that prefix — a batch cut short when the
// recv FIFO fills mid-batch (or by an invalid WR) must not bill the host
// for descriptors it never built. qp_test pins the exact charges.
//
//qpip:hotpath
func (q *QP) PostRecvN(p *sim.Proc, wrs []RecvWR) (int, error) {
	if len(wrs) == 0 {
		return 0, nil
	}
	if q.srq != nil {
		return 0, ErrSRQAttached
	}
	if !hw.BatchedBoundary() {
		for i, wr := range wrs {
			if err := q.PostRecv(p, wr); err != nil {
				return i, err
			}
		}
		return len(wrs), nil
	}
	if q.state == QPError {
		return 0, q.err
	}
	if q.state == QPClosed {
		return 0, ErrBadState
	}
	// Validate before charging: n is the accepted prefix.
	n := 0
	var err error
	for _, wr := range wrs {
		if q.outRecv+n >= q.recvDepth {
			err = ErrQueueFull
			break
		}
		if wr.Capacity <= 0 {
			//lint:qpip-allow hotalloc rejected-WR error path, cold by construction
			err = fmt.Errorf("verbs: receive WR needs positive capacity")
			break
		}
		n++
	}
	if n == 0 {
		return 0, err
	}
	p.Use(q.dev.HostCPU().Server,
		params.US(params.VerbsPostRecvUS+float64(n-1)*params.VerbsPostRecvBatchUS))
	for _, wr := range wrs[:n] {
		q.outRecv++
		q.recvPosts++
		q.postedRecv += wr.Capacity
		q.recvQ = append(q.recvQ, wr)
	}
	q.dev.RecvPostedN(q, n)
	return n, err
}

// Connect initiates the TCP rendezvous to a remote listener and blocks
// until established or failed. The handshake runs entirely in the
// interface; "the host [is] only notified when the connection is
// established" (paper §3).
func (q *QP) Connect(p *sim.Proc, raddr inet.Addr6, rport uint16) error {
	if q.Transport != Reliable {
		return ErrNotSupported
	}
	// The adapter's rendezvous performs the INIT→RTR→RTS transitions
	// internally (paper §3), so Connect accepts RESET or INIT.
	if q.state != QPReset && q.state != QPInit {
		return ErrBadState
	}
	q.state = QPConnecting
	if err := q.dev.Connect(q, raddr, rport); err != nil {
		q.state = QPError
		q.err = err
		return err
	}
	return q.WaitEstablished(p)
}

// WaitEstablished parks until the QP leaves QPConnecting.
func (q *QP) WaitEstablished(p *sim.Proc) error {
	for q.state == QPConnecting {
		q.estWaiter = p
		p.Suspend()
	}
	if q.state != QPEstablished {
		if q.err != nil {
			return q.err
		}
		return ErrBadState
	}
	return nil
}

// BindUDP binds an unreliable QP to a local UDP port (0 = ephemeral).
func (q *QP) BindUDP(port uint16) (uint16, error) {
	if q.Transport != Unreliable {
		return 0, ErrNotSupported
	}
	got, err := q.dev.BindUDP(q, port)
	if err != nil {
		return 0, err
	}
	q.LocalPort = got
	q.state = QPEstablished
	return got, nil
}

// Close tears the QP down, flushing outstanding WRs with StatusFlushed.
func (q *QP) Close() {
	if q.state == QPClosed {
		return
	}
	q.unpark()
	q.dev.DestroyQP(q)
	q.state = QPClosed
	if q.srq != nil {
		q.srq.attached--
	}
}

// unpark removes the QP from any listener it idles on.
func (q *QP) unpark() {
	if q.parked != nil {
		q.parked.unpark(q)
		q.parked = nil
	}
}

// ---- Adapter-side interface (used by Device implementations). ----

// TakeSendWR consumes the oldest posted send WR (the firmware's Get WR
// stage has been charged by the caller).
//
//qpip:hotpath
func (q *QP) TakeSendWR() (SendWR, bool) {
	if q.sendHead >= len(q.sendQ) {
		return SendWR{}, false
	}
	wr := q.sendQ[q.sendHead]
	q.sendQ[q.sendHead] = SendWR{}
	q.sendHead++
	if q.sendHead == len(q.sendQ) {
		q.sendQ, q.sendHead = q.sendQ[:0], 0
	}
	return wr, true
}

// TakeRecvWR consumes the oldest posted receive WR. For an SRQ-attached
// QP the claim resolves through the shared pool in device-wide FIFO
// order; the claimed WR is owned by this QP from here to completion, so
// the claim is what makes it outstanding on the QP.
//
//qpip:hotpath
func (q *QP) TakeRecvWR() (RecvWR, bool) {
	if q.srq != nil {
		wr, ok := q.srq.take()
		if ok {
			q.outRecv++
			q.recvPosts++
		}
		return wr, ok
	}
	if q.recvHead >= len(q.recvQ) {
		return RecvWR{}, false
	}
	wr := q.recvQ[q.recvHead]
	q.recvQ[q.recvHead] = RecvWR{}
	q.recvHead++
	if q.recvHead == len(q.recvQ) {
		q.recvQ, q.recvHead = q.recvQ[:0], 0
	}
	q.postedRecv -= wr.Capacity
	return wr, true
}

// PendingSendWRs reports posted-but-unconsumed send WRs.
func (q *QP) PendingSendWRs() int { return len(q.sendQ) - q.sendHead }

// PostedRecvBytes reports unconsumed receive capacity; the firmware
// advertises it as the TCP receive window. An SRQ-attached QP advertises
// the shared pool's capacity.
//
//qpip:hotpath
func (q *QP) PostedRecvBytes() int {
	if q.srq != nil {
		return q.srq.PostedBytes()
	}
	return q.postedRecv
}

// CompleteSend posts a send completion (adapter context).
//
//qpip:hotpath
func (q *QP) CompleteSend(wrID uint64, status Status, n int) {
	q.outSend--
	q.SendCQ.Push(Completion{QPN: q.QPN, WRID: wrID, Op: OpSend, Status: status, ByteLen: n})
	if q.sqdWaiter != nil && q.outSend == 0 {
		q.wakeSQD()
	}
}

// CompleteRecv posts a receive completion (adapter context).
//
//qpip:hotpath
func (q *QP) CompleteRecv(comp Completion) {
	q.outRecv--
	comp.QPN = q.QPN
	comp.Op = OpRecv
	q.RecvCQ.Push(comp)
}

// SetEstablished marks the QP connected and wakes a waiting process.
func (q *QP) SetEstablished(local, remote uint16, raddr inet.Addr6) {
	q.LocalPort, q.RemotePort, q.RemoteAddr = local, remote, raddr
	q.state = QPEstablished
	q.wakeEst()
}

// SetError fails the QP and flushes outstanding WRs with StatusFlushed.
func (q *QP) SetError(err error) { q.SetFailed(err, StatusFlushed) }

// SetFailed fails the QP, flushing posted-but-unconsumed WRs with the
// given terminal status (StatusRetryExceeded for retry exhaustion,
// StatusFlushed otherwise). Idempotent once the QP left the live states.
func (q *QP) SetFailed(err error, status Status) {
	if q.state == QPError || q.state == QPClosed {
		return
	}
	q.unpark()
	q.state = QPError
	q.err = err
	q.FlushWith(status)
	q.wakeEst()
	q.wakeSQD()
}

// Flush completes all posted-but-unconsumed WRs with StatusFlushed.
func (q *QP) Flush() { q.FlushWith(StatusFlushed) }

// FlushWith completes all posted-but-unconsumed WRs with status.
//
// Flush ordering is deterministic and part of the verbs contract (DESIGN
// §13): consumed-but-unacked sends complete first (the device flushes
// those before calling here), then posted-but-unconsumed sends, then
// posted receives — each group in post order. The chaos tests pin this
// ordering; two runs of the same seed must reap identical completion
// sequences through Poll and PollN alike.
func (q *QP) FlushWith(status Status) {
	for _, wr := range q.sendQ[q.sendHead:] {
		q.outSend--
		q.SendCQ.Push(Completion{QPN: q.QPN, WRID: wr.ID, Op: OpSend, Status: status})
	}
	q.sendQ, q.sendHead = nil, 0
	// An SRQ-attached QP owns no posted-but-unclaimed receive buffers:
	// unclaimed WRs stay in the shared pool for other attached QPs, so
	// there is nothing to error per-QP here and recvQ is empty by
	// construction. Claimed-but-uncompleted WRs are flushed by the device
	// like consumed sends.
	for _, wr := range q.recvQ[q.recvHead:] {
		q.outRecv--
		q.RecvCQ.Push(Completion{QPN: q.QPN, WRID: wr.ID, Op: OpRecv, Status: status})
	}
	q.recvQ, q.recvHead = nil, 0
	q.postedRecv = 0
	if q.sqdWaiter != nil && q.outSend == 0 {
		q.wakeSQD()
	}
}

func (q *QP) wakeEst() {
	if q.estWaiter != nil {
		w := q.estWaiter
		q.estWaiter = nil
		w.Wake()
	}
}

func (q *QP) wakeSQD() {
	if q.sqdWaiter != nil {
		w := q.sqdWaiter
		q.sqdWaiter = nil
		w.Wake()
	}
}

// OutstandingSend reports posted send WRs not yet completed — the
// recovery layer's quiesce loops poll this to know when every completion
// (including in-flight firmware flushes) has been pushed.
func (q *QP) OutstandingSend() int { return q.outSend }

// OutstandingRecv reports posted receive WRs not yet completed.
func (q *QP) OutstandingRecv() int { return q.outRecv }
