package verbs

import (
	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
)

// CQ is a completion queue, resident in host memory. The adapter appends
// tokens by DMA; applications detect them "through polling or an event"
// (paper §2.1). Polling spins in the processor cache (paper §5.1), so an
// empty poll is nearly free while a successful poll pays the reap cost.
type CQ struct {
	dev   Device
	depth int
	// entries drains through head so the steady-state push/poll cycle
	// reuses one backing array. Popped slots are cleared so reaped
	// completions don't pin their payload buffers.
	entries  []Completion
	head     int
	waiter   *sim.Proc
	overflow uint64
	// irq, when bound, is the CQ's event line: with the batched boundary
	// on, a Push that finds an armed waiter raises the line instead of
	// waking the waiter directly, and the device's ISR performs the wake.
	// With a coalescing delay of 0 the Raise→fire→wake path is
	// synchronous, so it is timing-identical to the direct wake.
	irq *hw.IRQLine
	// overflowPending arms the synthetic StatusCQOverflow completion the
	// application reaps after draining what survived — overflow is an
	// application sizing bug, and this is how it is surfaced instead of
	// silently losing completions.
	overflowPending bool
	maxLen          int

	polls, emptyPolls, waits uint64
}

// NewCQ creates a completion queue of the given depth on dev.
func NewCQ(dev Device, depth int) *CQ {
	if depth <= 0 {
		depth = 256
	}
	c := &CQ{dev: dev, depth: depth}
	dev.AttachCQ(c)
	return c
}

// BindEvent routes this CQ's completion wakeups through line. The device
// installs an ISR on line that calls EventWake. Replaces the old ad-hoc
// direct wake so QPIP completion notification shares the same coalescing
// model as the conventional adapters' rx interrupts.
func (c *CQ) BindEvent(line *hw.IRQLine) { c.irq = line }

// EventLine reports the bound event line (nil if none) — benchmarks read
// its Fired/Events counters to measure the achieved coalescing factor.
func (c *CQ) EventLine() *hw.IRQLine { return c.irq }

// SetCoalesce adjusts the bound event line's pacing knobs; a no-op for
// an unbound CQ.
func (c *CQ) SetCoalesce(pkts int, delay sim.Time) {
	if c.irq != nil {
		c.irq.SetCoalesce(pkts, delay)
	}
}

// EventWake wakes a blocked waiter, if armed. Called from the device's
// event-line ISR in simulation context.
func (c *CQ) EventWake() {
	if c.waiter != nil {
		w := c.waiter
		c.waiter = nil
		w.Wake()
	}
}

// Depth reports the CQ capacity.
func (c *CQ) Depth() int { return c.depth }

// Len reports queued completions.
func (c *CQ) Len() int { return len(c.entries) - c.head }

// Overflows reports completions dropped because the CQ was full — always a
// sizing bug in the application, never silent.
func (c *CQ) Overflows() uint64 { return c.overflow }

// MaxLen reports the high-water mark of queued completions; the DESIGN §8
// invariant is MaxLen() <= Depth().
func (c *CQ) MaxLen() int { return c.maxLen }

// Push appends a completion. Called by the Device in simulation context
// (the adapter's DMA of the token has already been charged). It wakes a
// waiting process. A push onto a full CQ never grows it past its depth:
// the completion is lost, counted, and a pending synthetic
// StatusCQOverflow completion is armed so the application observes the
// loss when it next drains the queue.
//
//qpip:hotpath
func (c *CQ) Push(comp Completion) {
	if c.Len() >= c.depth {
		c.overflow++
		c.overflowPending = true
		return
	}
	c.entries = append(c.entries, comp)
	if c.Len() > c.maxLen {
		c.maxLen = c.Len()
	}
	if c.waiter != nil {
		if c.irq != nil && hw.BatchedBoundary() {
			// Armed-waiter semantics (as in Infiniband's req_notify_cq):
			// the event line is raised only when someone is waiting, so
			// pure polling workloads never pay interrupt costs.
			c.irq.Raise()
		} else {
			w := c.waiter
			c.waiter = nil
			w.Wake()
		}
	}
}

// Poll attempts to reap one completion, charging the host CPU for the
// attempt. It is the QPIP analog of a non-blocking select() (paper §3).
//
//qpip:hotpath
func (c *CQ) Poll(p *sim.Proc) (Completion, bool) {
	c.polls++
	if c.Len() == 0 {
		if c.overflowPending {
			c.overflowPending = false
			p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPollUS))
			return Completion{Status: StatusCQOverflow}, true
		}
		c.emptyPolls++
		p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPollEmptyUS))
		return Completion{}, false
	}
	p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPollUS))
	comp := c.entries[c.head]
	c.entries[c.head] = Completion{}
	c.head++
	if c.head == len(c.entries) {
		c.entries, c.head = c.entries[:0], 0
	}
	return comp, true
}

// PollN reaps up to len(out) completions in order with a single batched
// CPU charge: the first completion pays the full poll cost, each further
// one only the marginal reap cost. Semantics match a loop of single
// Polls exactly — same ordering, and the synthetic StatusCQOverflow
// completion surfaces only once the queue has drained. With the batched
// boundary off it degrades to that loop (per-token charges). Returns the
// number of completions written to out.
//
//qpip:hotpath
func (c *CQ) PollN(p *sim.Proc, out []Completion) int {
	if len(out) == 0 {
		return 0
	}
	if !hw.BatchedBoundary() {
		n := 0
		for n < len(out) {
			comp, ok := c.Poll(p)
			if !ok {
				break
			}
			out[n] = comp
			n++
		}
		return n
	}
	c.polls++
	n := 0
	for n < len(out) && c.Len() > 0 {
		out[n] = c.entries[c.head]
		c.entries[c.head] = Completion{}
		c.head++
		if c.head == len(c.entries) {
			c.entries, c.head = c.entries[:0], 0
		}
		n++
	}
	if n < len(out) && c.Len() == 0 && c.overflowPending {
		c.overflowPending = false
		out[n] = Completion{Status: StatusCQOverflow}
		n++
	}
	if n == 0 {
		c.emptyPolls++
		p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPollEmptyUS))
		return 0
	}
	p.Use(c.dev.HostCPU().Server,
		params.US(params.VerbsPollUS+float64(n-1)*params.VerbsPollBatchUS))
	return n
}

// Wait blocks the process until a completion is available and reaps it.
// The wakeup models the prototype's "lightweight interrupt service
// routine to process events" (paper §4.1): the ISR cost lands on the host
// CPU before the process resumes.
func (c *CQ) Wait(p *sim.Proc) Completion {
	for {
		if comp, ok := c.Poll(p); ok {
			return comp
		}
		c.waits++
		c.waiter = p
		p.Suspend()
		// Interrupt-driven wakeup: the lightweight ISR runs before the
		// process reaps.
		p.Use(c.dev.HostCPU().Server, params.US(params.VerbsWakeupUS))
	}
}

// PollStats reports (total polls, empty polls, blocking waits).
func (c *CQ) PollStats() (polls, empty, waits uint64) {
	return c.polls, c.emptyPolls, c.waits
}
