package verbs

import (
	"repro/internal/params"
	"repro/internal/sim"
)

// CQ is a completion queue, resident in host memory. The adapter appends
// tokens by DMA; applications detect them "through polling or an event"
// (paper §2.1). Polling spins in the processor cache (paper §5.1), so an
// empty poll is nearly free while a successful poll pays the reap cost.
type CQ struct {
	dev   Device
	depth int
	// entries drains through head so the steady-state push/poll cycle
	// reuses one backing array. Popped slots are cleared so reaped
	// completions don't pin their payload buffers.
	entries  []Completion
	head     int
	waiter   *sim.Proc
	overflow uint64
	// overflowPending arms the synthetic StatusCQOverflow completion the
	// application reaps after draining what survived — overflow is an
	// application sizing bug, and this is how it is surfaced instead of
	// silently losing completions.
	overflowPending bool
	maxLen          int

	polls, emptyPolls, waits uint64
}

// NewCQ creates a completion queue of the given depth on dev.
func NewCQ(dev Device, depth int) *CQ {
	if depth <= 0 {
		depth = 256
	}
	return &CQ{dev: dev, depth: depth}
}

// Depth reports the CQ capacity.
func (c *CQ) Depth() int { return c.depth }

// Len reports queued completions.
func (c *CQ) Len() int { return len(c.entries) - c.head }

// Overflows reports completions dropped because the CQ was full — always a
// sizing bug in the application, never silent.
func (c *CQ) Overflows() uint64 { return c.overflow }

// MaxLen reports the high-water mark of queued completions; the DESIGN §8
// invariant is MaxLen() <= Depth().
func (c *CQ) MaxLen() int { return c.maxLen }

// Push appends a completion. Called by the Device in simulation context
// (the adapter's DMA of the token has already been charged). It wakes a
// waiting process. A push onto a full CQ never grows it past its depth:
// the completion is lost, counted, and a pending synthetic
// StatusCQOverflow completion is armed so the application observes the
// loss when it next drains the queue.
func (c *CQ) Push(comp Completion) {
	if c.Len() >= c.depth {
		c.overflow++
		c.overflowPending = true
		return
	}
	c.entries = append(c.entries, comp)
	if c.Len() > c.maxLen {
		c.maxLen = c.Len()
	}
	if c.waiter != nil {
		w := c.waiter
		c.waiter = nil
		w.Wake()
	}
}

// Poll attempts to reap one completion, charging the host CPU for the
// attempt. It is the QPIP analog of a non-blocking select() (paper §3).
func (c *CQ) Poll(p *sim.Proc) (Completion, bool) {
	c.polls++
	if c.Len() == 0 {
		if c.overflowPending {
			c.overflowPending = false
			p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPollUS))
			return Completion{Status: StatusCQOverflow}, true
		}
		c.emptyPolls++
		p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPollEmptyUS))
		return Completion{}, false
	}
	p.Use(c.dev.HostCPU().Server, params.US(params.VerbsPollUS))
	comp := c.entries[c.head]
	c.entries[c.head] = Completion{}
	c.head++
	if c.head == len(c.entries) {
		c.entries, c.head = c.entries[:0], 0
	}
	return comp, true
}

// Wait blocks the process until a completion is available and reaps it.
// The wakeup models the prototype's "lightweight interrupt service
// routine to process events" (paper §4.1): the ISR cost lands on the host
// CPU before the process resumes.
func (c *CQ) Wait(p *sim.Proc) Completion {
	for {
		if comp, ok := c.Poll(p); ok {
			return comp
		}
		c.waits++
		c.waiter = p
		p.Suspend()
		// Interrupt-driven wakeup: the lightweight ISR runs before the
		// process reaps.
		p.Use(c.dev.HostCPU().Server, params.US(params.VerbsWakeupUS))
	}
}

// PollStats reports (total polls, empty polls, blocking waits).
func (c *CQ) PollStats() (polls, empty, waits uint64) {
	return c.polls, c.emptyPolls, c.waits
}
