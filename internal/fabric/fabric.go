// Package fabric simulates the two interconnects of the paper's testbed:
// a Myrinet-style SAN (switched, source-routed, cut-through, arbitrary MTU,
// 2.0 Gb/s full-duplex links — paper §4.1) and a Gigabit Ethernet segment
// with a store-and-forward switch.
//
// Topology defaults to a single star: every attachment connects to one
// switch with a dedicated full-duplex link, matching the paper's
// two-node-plus-switch testbed. Each direction of each link is a
// sim.Server, so serialization time and link contention are modeled;
// cut-through versus store-and-forward decides whether the switch
// re-serializes the frame. Config.Topo replaces the star with an explicit
// switch graph (internal/topo) walked hop by hop with per-egress
// arbitration — see topofab.go.
package fabric

import (
	"fmt"
	"sync"

	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Frame is a link-layer frame in flight. Payload is opaque to the fabric.
type Frame struct {
	Src, Dst int
	// WireSize is the total bytes the frame occupies on the wire,
	// including link-layer overhead.
	WireSize int
	// Payload is the network-layer packet (owned by the stacks).
	Payload any

	// pooled marks frames from NewFrame's pool; only those are recycled.
	pooled bool
	// deliveries counts pending handler invocations (2 when the fault
	// layer duplicates); the frame is recycled after the last one.
	deliveries int8

	// In-flight transit state: the continuations below are bound to the
	// frame once (surviving pool recycling), so a fault-free transit
	// schedules no per-frame closures.
	fab    *Fabric
	sport  *port
	dport  *port
	onTx   func()
	delay  sim.Time // fault-injected extra switch delay
	ser    sim.Time // serialization time (dup offset, s&f re-serialization)
	dup    bool
	txFn   func() // sender link transmitter finished
	swFn   func() // store-and-forward: switch forwards onto the dst link
	fwdFn  func() // store-and-forward: dst link serialization finished
	dlvrFn func() // final delivery to the attachment handler

	// Multi-hop transit state (Config.Topo set): the source route and
	// the frame's progress along it, plus the topology-path
	// continuations (bound once, like the star-path ones above).
	hops   []topo.Hop
	hop    int
	ttxFn  func() // topology path: transmitter finished
	tarrFn func() // topology path: arrival at hops[hop]'s switch
}

// bindFns builds the frame's transit continuations (once per frame object;
// pooled frames keep them across recycling).
func (fr *Frame) bindFns() {
	fr.txFn = func() {
		f := fr.fab
		if fr.onTx != nil {
			fr.onTx()
		}
		sp, dp := fr.sport, fr.dport
		if f.cfg.CutThrough {
			// Cut-through: the destination link streamed concurrently; the
			// last byte arrives one hop latency + propagation after it left
			// the source.
			d := f.cfg.HopLatency + f.cfg.PropDelay + fr.delay
			if fr.dup {
				sp.duplicated++
			}
			if dp.eng != sp.eng {
				// Cross-shard: buffer the delivery in the source port's
				// mailbox; the barrier injects it into the destination
				// engine in canonical order (DrainMailboxes).
				now := sp.eng.Now()
				sp.outbox = append(sp.outbox, mail{eng: dp.eng, at: now + d, name: "fabric.deliver", fn: fr.dlvrFn})
				if fr.dup {
					sp.outbox = append(sp.outbox, mail{eng: dp.eng, at: now + d + fr.ser, name: "fabric.deliver", fn: fr.dlvrFn})
				}
				return
			}
			sp.eng.After(d, "fabric.deliver", fr.dlvrFn)
			if fr.dup {
				sp.eng.After(d+fr.ser, "fabric.deliver", fr.dlvrFn)
			}
			return
		}
		// Store-and-forward: the switch re-serializes onto the destination
		// link (modeled with contention).
		d := f.cfg.HopLatency + fr.delay
		if fr.dup {
			sp.duplicated++
		}
		if dp.eng != sp.eng {
			now := sp.eng.Now()
			sp.outbox = append(sp.outbox, mail{eng: dp.eng, at: now + d, name: "fabric.switch", fn: fr.swFn})
			if fr.dup {
				sp.outbox = append(sp.outbox, mail{eng: dp.eng, at: now + d, name: "fabric.switch", fn: fr.swFn})
			}
			return
		}
		sp.eng.After(d, "fabric.switch", fr.swFn)
		if fr.dup {
			sp.eng.After(d, "fabric.switch", fr.swFn)
		}
	}
	fr.swFn = func() {
		fr.dport.down.Do(fr.ser, "fabric.fwd", fr.fwdFn)
	}
	fr.fwdFn = func() {
		fr.dport.eng.After(fr.fab.cfg.PropDelay, "fabric.deliver", fr.dlvrFn)
	}
	fr.dlvrFn = func() {
		fr.fab.deliver(fr.dport, fr)
	}
}

// releasable and retainable are implemented by pooled payloads
// (wire.Packet). The fabric releases a payload it swallows (drop, nil
// handler, corruption replacement) and retains one it fans out
// (duplication), keeping the reference count balanced without the fabric
// knowing the payload type.
type (
	releasable interface{ Release() }
	retainable interface{ Retain() }
)

func releasePayload(p any) {
	if r, ok := p.(releasable); ok {
		r.Release()
	}
}

func retainPayload(p any) {
	if r, ok := p.(retainable); ok {
		r.Retain()
	}
}

// Frame identity never reaches event order: frames are recycled only after
// their final delivery fires, and a recycled frame is fully re-initialized.
//
//lint:qpip-allow nogoroutine free list only; no synchronization semantics leak into the model
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// NewFrame builds a frame, drawn from a pool when datapath pooling is
// enabled. Ownership passes to the fabric at Send; the fabric recycles the
// frame after its final delivery, so handlers must not retain it.
func NewFrame(src, dst, wireSize int, payload any) *Frame {
	if !pool.Enabled() {
		return &Frame{Src: src, Dst: dst, WireSize: wireSize, Payload: payload}
	}
	fr := framePool.Get().(*Frame)
	*fr = Frame{
		Src: src, Dst: dst, WireSize: wireSize, Payload: payload, pooled: true,
		txFn: fr.txFn, swFn: fr.swFn, fwdFn: fr.fwdFn, dlvrFn: fr.dlvrFn,
		ttxFn: fr.ttxFn, tarrFn: fr.tarrFn,
	}
	return fr
}

// free recycles a pooled frame after its last delivery, keeping the bound
// continuations for the next transit.
func free(fr *Frame) {
	if !fr.pooled {
		return
	}
	txFn, swFn, fwdFn, dlvrFn := fr.txFn, fr.swFn, fr.fwdFn, fr.dlvrFn
	ttxFn, tarrFn := fr.ttxFn, fr.tarrFn
	*fr = Frame{txFn: txFn, swFn: swFn, fwdFn: fwdFn, dlvrFn: dlvrFn, ttxFn: ttxFn, tarrFn: tarrFn}
	framePool.Put(fr)
}

// Handler receives delivered frames at an attachment.
type Handler func(*Frame)

// FaultDecision is what the fault layer wants done with one frame. The
// zero value passes the frame through untouched.
type FaultDecision struct {
	// Drop loses the frame in transit; the sender still pays
	// serialization (the wire carried it to the point of loss).
	Drop bool
	// Replace, when non-nil, is delivered in place of the original frame
	// (a corrupted in-transit copy; same wire size).
	Replace *Frame
	// ExtraDelay postpones delivery (switch queueing jitter).
	ExtraDelay sim.Time
	// Duplicate delivers the frame a second time, one serialization time
	// after the first copy.
	Duplicate bool
}

// FaultHook decides the fate of each sent frame. n counts frames ever sent
// from this frame's source attachment (a per-source ordinal, so sharded and
// sequential runs agree on it), and now is the sending engine's clock.
type FaultHook func(f *Frame, n uint64, now sim.Time) FaultDecision

// mail is one cross-shard handoff buffered during an epoch: an event to
// inject into the destination shard's engine at the barrier.
type mail struct {
	eng  *sim.Engine
	at   sim.Time
	name string
	fn   func()
}

type port struct {
	eng     *sim.Engine // the engine this attachment lives on
	up      *sim.Server // attachment -> switch
	down    *sim.Server // switch -> attachment
	handler Handler

	// Source-side counters (incremented from the attachment's engine) and
	// the destination-side delivered counter. Per-port so concurrent shards
	// never share a counter word; Stats sums them.
	sent, dropped         uint64
	corrupted, duplicated uint64
	bytesSent             uint64
	delivered             uint64

	// outbox buffers this source's cross-shard handoffs for the current
	// epoch, in transmit-completion order (time-ordered per source).
	outbox []mail
}

// Config describes a fabric.
type Config struct {
	Name string
	// Bandwidth in bytes/second per link direction.
	Bandwidth float64
	// MTU is the maximum network-layer packet the fabric accepts; 0 means
	// unlimited (Myrinet supports "arbitrary sized MTUs", paper §4.1).
	MTU int
	// LinkOverhead is added to every frame's wire size (headers, gaps).
	LinkOverhead int
	// CutThrough selects Myrinet-style forwarding: the switch adds only
	// HopLatency. Store-and-forward switches re-serialize the frame.
	CutThrough bool
	// HopLatency is the switch forwarding latency.
	HopLatency sim.Time
	// PropDelay is total cable propagation.
	PropDelay sim.Time
	// Topo, when non-nil, replaces the single-star fast path with
	// hop-by-hop forwarding over the switch graph (topofab.go).
	// Requires CutThrough.
	Topo *topo.Graph
}

// Fabric is a star-topology switched network.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	ports []*port
	// Fault, when non-nil, is consulted for every sent frame — the
	// general fault-injection hook (see internal/fault for the seeded
	// deterministic implementation).
	Fault FaultHook
	// Drop, when non-nil, discards frames for which it returns true.
	// It predates Fault and survives as a thin adapter: a true return is
	// folded into the FaultDecision as a plain drop.
	Drop func(f *Frame, n uint64) bool

	// severCross, when set, declares that no frame may cross between
	// engines: cross-shard sends panic, and CrossShardLookahead reports no
	// cross links so the parallel runner skips epoch barriers entirely.
	severCross bool

	// sws is the per-switch arbitration state for the multi-hop path,
	// built lazily once all attachments exist (topofab.go).
	sws []*swState
}

// New builds an empty fabric on eng.
func New(eng *sim.Engine, cfg Config) *Fabric {
	if cfg.Bandwidth <= 0 {
		panic("fabric: bandwidth must be positive")
	}
	if cfg.Topo != nil && !cfg.CutThrough {
		panic("fabric: topology routing is modeled for cut-through fabrics only")
	}
	return &Fabric{eng: eng, cfg: cfg}
}

// Attach adds an endpoint on the fabric's own engine and returns its
// attachment id.
func (f *Fabric) Attach(h Handler) int { return f.AttachOn(f.eng, h) }

// AttachOn adds an endpoint whose link servers and delivery events live on
// eng — the attaching node's shard engine. Sequential clusters pass the one
// shared engine; sharded clusters pass the node's shard engine so the
// port's entire datapath is single-threaded within its shard.
func (f *Fabric) AttachOn(eng *sim.Engine, h Handler) int {
	if eng == nil {
		eng = f.eng
	}
	id := len(f.ports)
	f.ports = append(f.ports, &port{
		eng:     eng,
		up:      sim.NewServer(eng, fmt.Sprintf("%s.port%d.up", f.cfg.Name, id)),
		down:    sim.NewServer(eng, fmt.Sprintf("%s.port%d.down", f.cfg.Name, id)),
		handler: h,
	})
	return id
}

// SeverCrossShard declares that no traffic will cross between shard
// engines (isolated placement): cross-engine sends become a panic and the
// parallel runner needs no lookahead barrier on this fabric.
func (f *Fabric) SeverCrossShard() { f.severCross = true }

// CrossShardLookahead reports the minimum latency a frame needs before it
// can affect another shard, and whether any unsevered cross-engine
// attachment pair exists. With cut-through forwarding a frame reaches the
// destination handler after HopLatency+PropDelay; store-and-forward frames
// first touch the destination shard at the switch-forward event, HopLatency
// after transmit.
func (f *Fabric) CrossShardLookahead() (sim.Time, bool) {
	if f.severCross {
		return 0, false
	}
	if f.cfg.Topo != nil {
		// The graph may cross engines through switch homes even when all
		// endpoints share one (a spine homed elsewhere), so the edge scan
		// replaces the port-pair scan entirely.
		return f.topoLookahead()
	}
	cross := false
	for i, pi := range f.ports {
		for _, pj := range f.ports[i+1:] {
			if pi.eng != pj.eng {
				cross = true
			}
		}
	}
	if !cross {
		return 0, false
	}
	if f.cfg.CutThrough {
		return f.cfg.HopLatency + f.cfg.PropDelay, true
	}
	return f.cfg.HopLatency, true
}

// DrainMailboxes injects every buffered cross-shard handoff into its
// destination engine and reports how many were injected. Called only at
// epoch barriers, single-threaded, with all shard workers parked. The
// injection order is canonical — ports in ascending attachment order, each
// port's outbox in transmit order — so destination-engine sequence numbers
// (the tie-breaker for same-timestamp events) are a deterministic function
// of the workload, never of OS thread interleaving.
//
//qpip:barrier
func (f *Fabric) DrainMailboxes() int {
	total := 0
	for _, p := range f.ports {
		for i := range p.outbox {
			m := &p.outbox[i]
			m.eng.At(m.at, m.name, m.fn)
			m.fn = nil
		}
		total += len(p.outbox)
		p.outbox = p.outbox[:0]
	}
	// Multi-hop path: switch egress outboxes drain after the endpoint
	// ports', switches ascending, ports ascending — still canonical.
	for _, sw := range f.sws {
		for _, op := range sw.ports {
			for i := range op.outbox {
				m := &op.outbox[i]
				m.eng.At(m.at, m.name, m.fn)
				m.fn = nil
			}
			total += len(op.outbox)
			op.outbox = op.outbox[:0]
		}
	}
	return total
}

// Ports reports the number of attachments.
func (f *Fabric) Ports() int { return len(f.ports) }

// MTU reports the fabric's network-layer MTU (0 = unlimited).
func (f *Fabric) MTU() int { return f.cfg.MTU }

// serTime is the serialization time of size bytes at link rate.
func (f *Fabric) serTime(size int) sim.Time {
	return sim.Time(float64(size) * 1e9 / f.cfg.Bandwidth)
}

// Stats reports (sent, delivered, dropped) frame counts, summed over ports.
func (f *Fabric) Stats() (sent, delivered, dropped uint64) {
	for _, p := range f.ports {
		sent += p.sent
		delivered += p.delivered
		dropped += p.dropped
	}
	return sent, delivered, dropped
}

// FaultStats reports (corrupted, duplicated) frame counts from the fault
// hook's decisions, summed over ports.
func (f *Fabric) FaultStats() (corrupted, duplicated uint64) {
	for _, p := range f.ports {
		corrupted += p.corrupted
		duplicated += p.duplicated
	}
	return corrupted, duplicated
}

// Send injects a frame. onTxDone (may be nil) runs when the sender's link
// transmitter finishes serializing — the moment a NIC's transmit engine is
// free for the next frame. Delivery to the destination handler happens
// after switch forwarding and propagation.
func (f *Fabric) Send(frame *Frame, onTxDone func()) {
	if frame.Src < 0 || frame.Src >= len(f.ports) || frame.Dst < 0 || frame.Dst >= len(f.ports) {
		panic(fmt.Sprintf("fabric %s: bad attachment %d->%d", f.cfg.Name, frame.Src, frame.Dst))
	}
	netSize := frame.WireSize
	if f.cfg.MTU > 0 && netSize-f.cfg.LinkOverhead > f.cfg.MTU {
		panic(fmt.Sprintf("fabric %s: frame of %d bytes exceeds MTU %d — stacks must segment",
			f.cfg.Name, netSize-f.cfg.LinkOverhead, f.cfg.MTU))
	}
	src := f.ports[frame.Src]
	dst := f.ports[frame.Dst]
	if f.severCross && src.eng != dst.eng {
		panic(fmt.Sprintf("fabric %s: frame %d->%d crosses severed shard boundary",
			f.cfg.Name, frame.Src, frame.Dst))
	}
	n := src.sent
	src.sent++
	src.bytesSent += uint64(netSize)
	var fd FaultDecision
	if f.Fault != nil {
		fd = f.Fault(frame, n, src.eng.Now())
	}
	if f.Drop != nil && f.Drop(frame, n) {
		fd.Drop = true
	}
	if fd.Drop {
		// The wire still carries the frame to the point of loss; charge
		// the sender's serialization but deliver nothing. The payload dies
		// here — nobody downstream will release it.
		src.dropped++
		src.up.Do(f.serTime(netSize), "fabric.tx.dropped", onTxDone)
		releasePayload(frame.Payload)
		free(frame)
		return
	}
	if fd.Replace != nil {
		// The corrupted clone (deep-copied headers) travels instead; the
		// original frame and its payload are consumed here.
		src.corrupted++
		releasePayload(frame.Payload)
		free(frame)
		frame = fd.Replace
		frame.pooled = false
		// A struct-copied clone carries the original's bound continuations,
		// which capture the original (now freed) frame; rebind below.
		frame.txFn, frame.swFn, frame.fwdFn, frame.dlvrFn = nil, nil, nil, nil
		frame.ttxFn, frame.tarrFn = nil, nil
	}
	frame.deliveries = 1
	if fd.Duplicate {
		// Two deliveries share one payload; the extra reference balances
		// the second consumer's release.
		frame.deliveries = 2
		retainPayload(frame.Payload)
	}
	frame.fab = f
	frame.sport = src
	frame.dport = dst
	frame.onTx = onTxDone
	frame.delay = fd.ExtraDelay
	frame.ser = f.serTime(netSize)
	frame.dup = fd.Duplicate
	if f.cfg.Topo != nil {
		f.sendTopo(frame, src)
		return
	}
	if frame.txFn == nil {
		//lint:qpip-allow hotprop continuations are bound once per pooled frame and survive recycling; steady-state sends reuse them
		frame.bindFns()
	}
	src.up.Do(frame.ser, "fabric.tx", frame.txFn)
}

func (f *Fabric) deliver(p *port, frame *Frame) {
	p.delivered++
	if p.handler != nil {
		p.handler(frame)
	} else {
		releasePayload(frame.Payload)
	}
	frame.deliveries--
	if frame.deliveries <= 0 {
		free(frame)
	}
}

// Utilization reports the busiest single link direction's utilization.
func (f *Fabric) Utilization() float64 {
	max := 0.0
	for _, p := range f.ports {
		if u := p.up.Utilization(); u > max {
			max = u
		}
		if u := p.down.Utilization(); u > max {
			max = u
		}
	}
	return max
}
