package fabric

// This file is the multi-hop forwarding path: when Config.Topo names a
// switch graph (internal/topo), frames stop teleporting through the
// legacy one-crossbar star and instead walk their precomputed source
// route hop by hop, contending for each egress port on the way.
//
// Timing model (cut-through): the source link serializes the frame
// (src.up.Do, as on the star path), the last byte reaches the first
// switch one HopLatency later, every granted egress adds one HopLatency
// to the next switch, and the final egress adds PropDelay down to the
// destination handler. An egress grant holds the port for the frame's
// serialization time — cut-through streams the body while the head moves
// on, so contention (not transit) is what the hold models. The
// degenerate one-switch star therefore delivers at exactly the legacy
// txDone + HopLatency + PropDelay.
//
// Arbitration must be deterministic across sequential and sharded runs,
// where same-tick event insertion order differs (barrier injection vs
// direct scheduling). The kick/resolve protocol makes every grant a pure
// function of timestamps:
//
//   - an arrival enqueues itself and schedules a same-tick "resolve";
//   - a resolve created at its own firing tick always fires after every
//     same-tick arrival (arrivals are inserted from earlier ticks, so
//     their sequence numbers are lower), and thus sees the complete
//     pending set;
//   - a resolve on a busy port arms one "kick" at busyUntil, which just
//     schedules a fresh same-tick resolve when the port frees;
//   - a grant pops the (arrival time, ingress port)-minimum entry —
//     FIFO per port, ties broken by ingress port index.
//
// Event counts are likewise timestamp-functions, keeping FiredTotal
// invariant across shard placements (the PR 7 bit-identity gate).

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// pendTransit is one frame waiting for an egress grant.
type pendTransit struct {
	at      sim.Time // arrival tick at this switch
	ingress int      // ingress port index — the contention tie-breaker
	fr      *Frame
}

// egress is one switch output port's arbitration state. All fields are
// touched only from the owning switch's engine.
type egress struct {
	eng       *sim.Engine
	busyUntil sim.Time
	kickArmed bool
	pending   []pendTransit
	resolveFn func()
	kickFn    func()
	// outbox buffers this egress's cross-shard handoffs, drained at
	// epoch barriers after the endpoint ports' outboxes.
	outbox []mail
}

// swState is one switch: an engine home and its egress ports.
type swState struct {
	eng   *sim.Engine
	ports []*egress
}

// initTopo lazily builds the per-switch arbitration state once all
// attachments exist (first Send or CrossShardLookahead). A switch is
// homed on its lowest attached endpoint's engine so single-shard runs
// stay single-engine; endpoint-less switches (fat-tree spines) home on
// the fabric's own engine.
func (f *Fabric) initTopo() {
	if f.sws != nil {
		return
	}
	g := f.cfg.Topo
	if g.Endpoints() != len(f.ports) {
		panic(fmt.Sprintf("fabric %s: topology wires %d endpoints, %d attached",
			f.cfg.Name, g.Endpoints(), len(f.ports)))
	}
	f.sws = make([]*swState, g.Switches())
	for s := range f.sws {
		eng := f.eng
		for p := 0; p < g.Ports(s); p++ {
			if pt := g.PortAt(s, p); pt.Endpoint() {
				eng = f.ports[pt.Ep].eng
				break
			}
		}
		sw := &swState{eng: eng, ports: make([]*egress, g.Ports(s))}
		for p := range sw.ports {
			op := &egress{eng: eng}
			op.resolveFn = func() { f.topoResolve(op) }
			op.kickFn = func() {
				op.kickArmed = false
				op.eng.After(0, "fabric.arb", op.resolveFn)
			}
			sw.ports[p] = op
		}
		f.sws[s] = sw
	}
}

// sendTopo launches a frame onto the switch graph. Send already applied
// the fault decision; duplication is realized here as an independent
// trailing copy (each copy owns one delivery), since the copies may be
// arbitrated apart at any hop.
func (f *Fabric) sendTopo(frame *Frame, src *port) {
	//lint:qpip-allow hotprop lazy one-time topology construction; every send after the first takes the initialized fast path
	f.initTopo()
	frame.deliveries = 1
	frame.hops = f.cfg.Topo.Route(frame.Src, frame.Dst)
	frame.hop = 0
	if f.severCross {
		for _, h := range frame.hops {
			if f.sws[h.Sw].eng != src.eng {
				panic(fmt.Sprintf("fabric %s: frame %d->%d crosses severed shard boundary at switch %d",
					f.cfg.Name, frame.Src, frame.Dst, h.Sw))
			}
		}
	}
	if frame.ttxFn == nil || frame.dlvrFn == nil {
		//lint:qpip-allow hotprop topology continuations are bound once per pooled frame and survive recycling
		frame.bindTopoFns()
	}
	src.up.Do(frame.ser, "fabric.tx", frame.ttxFn)
}

// bindTopoFns builds the topology-path continuations (once per frame
// object, like bindFns; pooled frames keep them across recycling).
func (fr *Frame) bindTopoFns() {
	fr.ttxFn = func() {
		if fr.onTx != nil {
			fr.onTx()
		}
		f := fr.fab
		f.topoLaunch(fr, 0)
		if fr.dup {
			fr.sport.duplicated++
			clone := NewFrame(fr.Src, fr.Dst, fr.WireSize, fr.Payload)
			clone.deliveries = 1
			clone.fab, clone.sport, clone.dport = f, fr.sport, fr.dport
			clone.ser, clone.delay = fr.ser, fr.delay
			clone.hops, clone.hop = fr.hops, 0
			if clone.ttxFn == nil || clone.dlvrFn == nil {
				clone.bindTopoFns()
			}
			f.topoLaunch(clone, fr.ser)
		}
	}
	fr.tarrFn = func() { fr.fab.topoArrive(fr) }
	if fr.dlvrFn == nil {
		fr.dlvrFn = func() { fr.fab.deliver(fr.dport, fr) }
	}
}

// topoLaunch schedules a frame's arrival at its first switch: one
// HopLatency (plus any fault delay) after the transmitter frees. The
// duplicate copy trails by extra = one serialization time, so the
// endpoint-port outbox stays time-ordered.
func (f *Fabric) topoLaunch(fr *Frame, extra sim.Time) {
	sp := fr.sport
	sw := f.sws[fr.hops[0].Sw]
	d := f.cfg.HopLatency + fr.delay + extra
	if sw.eng != sp.eng {
		sp.outbox = append(sp.outbox, mail{eng: sw.eng, at: sp.eng.Now() + d, name: "fabric.hop", fn: fr.tarrFn})
		return
	}
	sp.eng.After(d, "fabric.hop", fr.tarrFn)
}

// topoArrive runs on the switch's engine when a frame reaches switch
// fr.hops[fr.hop]: the frame joins its egress port's pending queue and a
// same-tick resolve decides the grant after all of this tick's arrivals
// are queued.
func (f *Fabric) topoArrive(fr *Frame) {
	h := fr.hops[fr.hop]
	op := f.sws[h.Sw].ports[h.Out]
	op.pending = append(op.pending, pendTransit{at: op.eng.Now(), ingress: h.In, fr: fr})
	op.eng.After(0, "fabric.arb", op.resolveFn)
}

// topoResolve is the egress arbiter: grant the oldest pending frame if
// the port is free, else arm one kick for when it frees.
func (f *Fabric) topoResolve(op *egress) {
	now := op.eng.Now()
	if op.busyUntil > now {
		if !op.kickArmed {
			op.kickArmed = true
			op.eng.At(op.busyUntil, "fabric.kick", op.kickFn)
		}
		return
	}
	if len(op.pending) == 0 {
		return
	}
	// FIFO per port; same-tick ties go to the lowest ingress port. The
	// sort is stable so identical (at, ingress) keys — back-to-back
	// frames through one upstream link — keep their queue order, which
	// is itself mode-invariant (they were scheduled through one
	// upstream serialization queue, in time order).
	sort.SliceStable(op.pending, func(i, j int) bool {
		a, b := op.pending[i], op.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.ingress < b.ingress
	})
	head := op.pending[0]
	rest := copy(op.pending, op.pending[1:])
	op.pending[rest] = pendTransit{}
	op.pending = op.pending[:rest]
	op.busyUntil = now + head.fr.ser
	if len(op.pending) > 0 {
		op.kickArmed = true
		op.eng.At(op.busyUntil, "fabric.kick", op.kickFn)
	}
	f.topoDepart(op, head.fr)
}

// topoDepart forwards a granted frame out its egress: on to the next
// switch one HopLatency away, or down the destination link after
// PropDelay (cut-through streamed the body during the grant's hold).
func (f *Fabric) topoDepart(op *egress, fr *Frame) {
	now := op.eng.Now()
	if fr.hop == len(fr.hops)-1 {
		dp := fr.dport
		if dp.eng != op.eng {
			op.outbox = append(op.outbox, mail{eng: dp.eng, at: now + f.cfg.PropDelay, name: "fabric.deliver", fn: fr.dlvrFn})
			return
		}
		op.eng.After(f.cfg.PropDelay, "fabric.deliver", fr.dlvrFn)
		return
	}
	fr.hop++
	nsw := f.sws[fr.hops[fr.hop].Sw]
	if nsw.eng != op.eng {
		op.outbox = append(op.outbox, mail{eng: nsw.eng, at: now + f.cfg.HopLatency, name: "fabric.hop", fn: fr.tarrFn})
		return
	}
	op.eng.After(f.cfg.HopLatency, "fabric.hop", fr.tarrFn)
}

// topoLookahead generalizes CrossShardLookahead to the switch graph: the
// minimum latency over directed edges that cross engines. A transmit or
// switch-to-switch hop first touches the peer engine one HopLatency out;
// a final egress grant touches the endpoint's engine PropDelay out.
func (f *Fabric) topoLookahead() (sim.Time, bool) {
	f.initTopo()
	g := f.cfg.Topo
	la, cross := sim.Time(0), false
	edge := func(a, b *sim.Engine, d sim.Time) {
		if a == b {
			return
		}
		if !cross || d < la {
			la = d
		}
		cross = true
	}
	for s := range f.sws {
		for p := 0; p < g.Ports(s); p++ {
			pt := g.PortAt(s, p)
			switch {
			case pt.Endpoint():
				edge(f.ports[pt.Ep].eng, f.sws[s].eng, f.cfg.HopLatency)
				edge(f.sws[s].eng, f.ports[pt.Ep].eng, f.cfg.PropDelay)
			case pt.Sw >= 0:
				edge(f.sws[s].eng, f.sws[pt.Sw].eng, f.cfg.HopLatency)
			}
		}
	}
	return la, cross
}
