package fabric

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

func myrinet(eng *sim.Engine) *Fabric {
	return New(eng, Config{
		Name:         "myri",
		Bandwidth:    params.MyrinetBandwidth,
		LinkOverhead: params.MyrinetHeaderBytes,
		CutThrough:   true,
		HopLatency:   params.MyrinetHopLatency,
		PropDelay:    params.CableLatency,
	})
}

func gige(eng *sim.Engine) *Fabric {
	return New(eng, Config{
		Name:         "gige",
		Bandwidth:    params.GigEBandwidth,
		MTU:          params.MTUEthernet,
		LinkOverhead: params.EthernetOverhead,
		CutThrough:   false,
		HopLatency:   params.GigESwitchLatency,
		PropDelay:    params.CableLatency,
	})
}

func TestCutThroughDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	var got sim.Time
	a := f.Attach(nil)
	b := f.Attach(func(fr *Frame) { got = eng.Now() })
	size := 1000
	f.Send(&Frame{Src: a, Dst: b, WireSize: size}, nil)
	eng.Run()
	// 1000B at 250 MB/s = 4 us serialization + 0.3 us hop + 0.1 us prop.
	want := sim.Time(float64(size)*1e9/params.MyrinetBandwidth) + params.MyrinetHopLatency + params.CableLatency
	if got != want {
		t.Errorf("delivered at %v, want %v", got, want)
	}
}

func TestStoreAndForwardReserializes(t *testing.T) {
	eng := sim.NewEngine()
	f := gige(eng)
	var got sim.Time
	a := f.Attach(nil)
	b := f.Attach(func(fr *Frame) { got = eng.Now() })
	size := 1500
	f.Send(&Frame{Src: a, Dst: b, WireSize: size}, nil)
	eng.Run()
	ser := sim.Time(float64(size) * 1e9 / params.GigEBandwidth)
	want := 2*ser + params.GigESwitchLatency + params.CableLatency
	if got != want {
		t.Errorf("delivered at %v, want %v (one serialization missing?)", got, want)
	}
}

func TestTxDoneFiresAtSerializationEnd(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	b := f.Attach(nil)
	var txDone sim.Time
	f.Send(&Frame{Src: a, Dst: b, WireSize: 2500}, func() { txDone = eng.Now() })
	eng.Run()
	want := sim.Time(2500 * 1e9 / params.MyrinetBandwidth)
	if txDone != want {
		t.Errorf("txDone at %v, want %v", txDone, want)
	}
}

func TestLinkSerializationBacklog(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	var arrivals []sim.Time
	b := f.Attach(func(fr *Frame) { arrivals = append(arrivals, eng.Now()) })
	for i := 0; i < 3; i++ {
		f.Send(&Frame{Src: a, Dst: b, WireSize: 1000}, nil)
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d frames", len(arrivals))
	}
	ser := sim.Time(1000 * 1e9 / params.MyrinetBandwidth)
	for i := 1; i < 3; i++ {
		if d := arrivals[i] - arrivals[i-1]; d != ser {
			t.Errorf("inter-arrival %d = %v, want %v (FCFS link)", i, d, ser)
		}
	}
}

func TestNoReordering(t *testing.T) {
	eng := sim.NewEngine()
	f := gige(eng)
	a := f.Attach(nil)
	var order []int
	b := f.Attach(func(fr *Frame) { order = append(order, fr.Payload.(int)) })
	// Mixed sizes: a smaller later frame must not overtake.
	f.Send(&Frame{Src: a, Dst: b, WireSize: 1500, Payload: 0}, nil)
	f.Send(&Frame{Src: a, Dst: b, WireSize: 64, Payload: 1}, nil)
	f.Send(&Frame{Src: a, Dst: b, WireSize: 1500, Payload: 2}, nil)
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered: %v", order)
		}
	}
}

func TestMTUEnforced(t *testing.T) {
	eng := sim.NewEngine()
	f := gige(eng)
	a := f.Attach(nil)
	b := f.Attach(nil)
	defer func() {
		if recover() == nil {
			t.Error("oversized frame accepted")
		}
	}()
	f.Send(&Frame{Src: a, Dst: b, WireSize: 9500 + params.EthernetOverhead}, nil)
}

func TestMyrinetUnlimitedMTU(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	delivered := false
	b := f.Attach(func(fr *Frame) { delivered = true })
	f.Send(&Frame{Src: a, Dst: b, WireSize: 64 * 1024}, nil) // paper: arbitrary MTU
	eng.Run()
	if !delivered {
		t.Error("large frame not delivered on arbitrary-MTU fabric")
	}
}

// TestDropInjection covers the legacy Drop adapter; the seeded fault layer
// is exercised in fault_integration_test.go.
func TestDropInjection(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	count := 0
	b := f.Attach(func(fr *Frame) { count++ })
	f.Drop = func(fr *Frame, n uint64) bool { return n == 1 }
	txDones := 0
	for i := 0; i < 3; i++ {
		f.Send(&Frame{Src: a, Dst: b, WireSize: 100}, func() { txDones++ })
	}
	eng.Run()
	if count != 2 {
		t.Errorf("delivered %d frames, want 2", count)
	}
	if txDones != 3 {
		t.Errorf("txDone fired %d times, want 3 (sender pays for lost frames too)", txDones)
	}
	sent, delivered, dropped := f.Stats()
	if sent != 3 || delivered != 2 || dropped != 1 {
		t.Errorf("stats = %d/%d/%d", sent, delivered, dropped)
	}
}

func TestBidirectionalLinksIndependent(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	var atB, atA sim.Time
	a := f.Attach(func(fr *Frame) { atA = eng.Now() })
	b := f.Attach(func(fr *Frame) { atB = eng.Now() })
	// Full duplex: simultaneous opposite transfers must not serialize
	// against each other.
	f.Send(&Frame{Src: a, Dst: b, WireSize: 10000}, nil)
	f.Send(&Frame{Src: b, Dst: a, WireSize: 10000}, nil)
	eng.Run()
	if atA != atB {
		t.Errorf("opposite transfers finished at %v and %v; links not full duplex", atA, atB)
	}
}

func TestBadAttachmentPanics(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	f.Attach(nil)
	defer func() {
		if recover() == nil {
			t.Error("bad attachment accepted")
		}
	}()
	f.Send(&Frame{Src: 0, Dst: 5, WireSize: 10}, nil)
}

func TestThroughputMatchesLineRate(t *testing.T) {
	// Saturate a Myrinet link with back-to-back 16 KB frames for 10 ms of
	// simulated time; goodput must be ~250 MB/s.
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	var bytes int
	b := f.Attach(func(fr *Frame) { bytes += fr.WireSize })
	size := 16 * 1024
	var sendNext func()
	sendNext = func() {
		f.Send(&Frame{Src: a, Dst: b, WireSize: size}, func() {
			if eng.Now() < 10*sim.Millisecond {
				sendNext()
			}
		})
	}
	sendNext()
	eng.Run()
	rate := float64(bytes) / eng.Now().Seconds() // bytes/sec
	if rate < 0.97*params.MyrinetBandwidth || rate > 1.01*params.MyrinetBandwidth {
		t.Errorf("saturated rate %.1f MB/s, want ~%.1f MB/s", rate/1e6, params.MyrinetBandwidth/1e6)
	}
}
