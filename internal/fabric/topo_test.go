package fabric

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/topo"
)

func myrinetTopo(eng *sim.Engine, spec topo.Spec, n int) *Fabric {
	return New(eng, Config{
		Name:         "myri",
		Bandwidth:    params.MyrinetBandwidth,
		LinkOverhead: params.MyrinetHeaderBytes,
		CutThrough:   true,
		HopLatency:   params.MyrinetHopLatency,
		PropDelay:    params.CableLatency,
		Topo:         topo.Build(spec, n),
	})
}

// The explicit one-switch star must deliver at exactly the legacy fast
// path's txDone + HopLatency + PropDelay — the degenerate-case contract.
func TestTopoStarMatchesLegacyTiming(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinetTopo(eng, topo.Spec{Kind: topo.Star}, 2)
	var got sim.Time
	a := f.Attach(nil)
	b := f.Attach(func(fr *Frame) { got = eng.Now() })
	size := 1000
	f.Send(&Frame{Src: a, Dst: b, WireSize: size}, nil)
	eng.Run()
	want := sim.Time(float64(size)*1e9/params.MyrinetBandwidth) + params.MyrinetHopLatency + params.CableLatency
	if got != want {
		t.Errorf("delivered at %v, want legacy-identical %v", got, want)
	}
}

// A multi-hop route costs one HopLatency per switch traversed plus the
// final propagation; cut-through adds no per-hop re-serialization.
func TestTopoMultiHopTiming(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinetTopo(eng, topo.Spec{Kind: topo.Ring}, 4)
	var got sim.Time
	for i := 0; i < 4; i++ {
		i := i
		f.Attach(func(fr *Frame) {
			if i == 2 {
				got = eng.Now()
			}
		})
	}
	size := 1000
	f.Send(&Frame{Src: 0, Dst: 2, WireSize: size}, nil)
	eng.Run()
	hops := sim.Time(3) // switches 0, 1, 2 on the clockwise route
	want := sim.Time(float64(size)*1e9/params.MyrinetBandwidth) +
		hops*params.MyrinetHopLatency + params.CableLatency
	if got != want {
		t.Errorf("delivered at %v, want %v", got, want)
	}
}

// Two frames reaching one egress in the same tick: the lower ingress port
// wins the grant, the other follows one serialization time later. This is
// the deterministic-contention contract of the arbiter (FIFO per port,
// ingress-index tie-break).
func TestTopoEgressContentionTieBreak(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinetTopo(eng, topo.Spec{Kind: topo.Star}, 3)
	type arrival struct {
		src int
		at  sim.Time
	}
	var arrivals []arrival
	f.Attach(nil)
	f.Attach(nil)
	f.Attach(func(fr *Frame) { arrivals = append(arrivals, arrival{fr.Src, eng.Now()}) })
	size := 1000
	// Same tick, same size: both last bytes reach the switch together.
	f.Send(&Frame{Src: 0, Dst: 2, WireSize: size}, nil)
	f.Send(&Frame{Src: 1, Dst: 2, WireSize: size}, nil)
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(arrivals))
	}
	ser := sim.Time(float64(size) * 1e9 / params.MyrinetBandwidth)
	first := ser + params.MyrinetHopLatency + params.CableLatency
	if arrivals[0].src != 0 || arrivals[0].at != first {
		t.Errorf("first delivery = src %d at %v, want src 0 at %v", arrivals[0].src, arrivals[0].at, first)
	}
	if arrivals[1].src != 1 || arrivals[1].at != first+ser {
		t.Errorf("second delivery = src %d at %v, want src 1 at %v (one serialization behind)",
			arrivals[1].src, arrivals[1].at, first+ser)
	}
}

// Same-tick contention on the legacy star path: both frames teleport
// through the unmodeled crossbar, so they deliver at the same tick and the
// drain order is the send order — ingress port 0 before ingress port 1.
// This pins the contract the topo arbiter's tie-break generalizes.
func TestLegacyStarSameTickDrainOrder(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	var order []int
	var times []sim.Time
	f.Attach(nil)
	f.Attach(nil)
	f.Attach(func(fr *Frame) {
		order = append(order, fr.Src)
		times = append(times, eng.Now())
	})
	size := 1000
	f.Send(&Frame{Src: 0, Dst: 2, WireSize: size}, nil)
	f.Send(&Frame{Src: 1, Dst: 2, WireSize: size}, nil)
	eng.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("drain order = %v, want [0 1] (ingress port order)", order)
	}
	if times[0] != times[1] {
		t.Errorf("legacy path delivered at %v and %v, want the same tick", times[0], times[1])
	}
}

// Fault duplication on the topo path: the copy trails the original by one
// serialization time end to end, and both reach the handler.
func TestTopoDuplicateDelivery(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinetTopo(eng, topo.Spec{Kind: topo.Ring}, 4)
	var at []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		f.Attach(func(fr *Frame) {
			if i == 1 {
				at = append(at, eng.Now())
			}
		})
	}
	f.Fault = func(fr *Frame, n uint64, now sim.Time) FaultDecision {
		return FaultDecision{Duplicate: true}
	}
	size := 1000
	f.Send(&Frame{Src: 0, Dst: 1, WireSize: size}, nil)
	eng.Run()
	if len(at) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(at))
	}
	ser := sim.Time(float64(size) * 1e9 / params.MyrinetBandwidth)
	if at[1]-at[0] != ser {
		t.Errorf("copies delivered %v apart, want one serialization %v", at[1]-at[0], ser)
	}
	if _, dups := f.FaultStats(); dups != 1 {
		t.Errorf("duplicated count = %d, want 1", dups)
	}
}

// Fault drops on the topo path die at the source like on the star path:
// serialization is charged, nothing arrives.
func TestTopoDrop(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinetTopo(eng, topo.Spec{Kind: topo.Mesh, W: 2, H: 2}, 4)
	delivered := 0
	for i := 0; i < 4; i++ {
		f.Attach(func(fr *Frame) { delivered++ })
	}
	f.Fault = func(fr *Frame, n uint64, now sim.Time) FaultDecision {
		return FaultDecision{Drop: n == 0}
	}
	f.Send(&Frame{Src: 0, Dst: 3, WireSize: 100}, nil)
	f.Send(&Frame{Src: 0, Dst: 3, WireSize: 100}, nil)
	eng.Run()
	if delivered != 1 {
		t.Errorf("delivered %d frames, want 1 (first dropped)", delivered)
	}
	sent, del, dropped := f.Stats()
	if sent != 2 || del != 1 || dropped != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/1/1", sent, del, dropped)
	}
}

// A back-to-back stream through a shared ring link arrives in order and
// spaced by at least the serialization time at the contended egress.
func TestTopoPipelineOrdering(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinetTopo(eng, topo.Spec{Kind: topo.Ring}, 4)
	var at []sim.Time
	var srcs []int
	for i := 0; i < 4; i++ {
		i := i
		f.Attach(func(fr *Frame) {
			if i == 2 {
				at = append(at, eng.Now())
				srcs = append(srcs, fr.Src)
			}
		})
	}
	size := 2000
	// 0->2 and 1->2 both take the clockwise route and share switch 1's
	// egress toward switch 2.
	f.Send(&Frame{Src: 0, Dst: 2, WireSize: size}, nil)
	f.Send(&Frame{Src: 1, Dst: 2, WireSize: size}, nil)
	eng.Run()
	if len(at) != 2 {
		t.Fatalf("delivered %d, want 2", len(at))
	}
	ser := sim.Time(float64(size) * 1e9 / params.MyrinetBandwidth)
	if at[1]-at[0] < ser {
		t.Errorf("deliveries %v apart, want >= one serialization %v", at[1]-at[0], ser)
	}
}
