package fabric

import (
	"testing"

	"repro/internal/params"
	"repro/internal/pool"
	"repro/internal/sim"
)

// benchFabric builds a two-port Myrinet-style fabric and reports the ports.
func benchFabric(eng *sim.Engine, delivered *int) (*Fabric, int, int) {
	fab := New(eng, Config{
		Name:       "bench",
		Bandwidth:  params.MyrinetBandwidth,
		CutThrough: true,
		HopLatency: 500 * sim.Nanosecond,
		PropDelay:  100 * sim.Nanosecond,
	})
	src := fab.Attach(nil)
	dst := fab.Attach(func(f *Frame) { *delivered++ })
	return fab, src, dst
}

// BenchmarkFrameTransit measures one frame's full fabric trip — two link
// serializations, switch hop, delivery — including the event-engine work
// that carries it. With the frame pool and event free list this is the
// steady-state per-packet fabric overhead of every simulated run.
func BenchmarkFrameTransit(b *testing.B) {
	eng := sim.NewEngine()
	delivered := 0
	fab, src, dst := benchFabric(eng, &delivered)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.Send(NewFrame(src, dst, 1500, nil), nil)
		eng.Run()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d frames, want %d", delivered, b.N)
	}
}

// BenchmarkFrameTransitLegacyEngine is the same trip on the pre-PR binary
// heap with per-schedule event allocation — the A/B baseline for
// EXPERIMENTS.md.
func BenchmarkFrameTransitLegacyEngine(b *testing.B) {
	sim.SetLegacyQueue(true)
	defer sim.SetLegacyQueue(false)
	eng := sim.NewEngine()
	delivered := 0
	fab, src, dst := benchFabric(eng, &delivered)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.Send(NewFrame(src, dst, 1500, nil), nil)
		eng.Run()
	}
}

// TestFrameTransitAllocFree pins the steady-state fabric allocation budget
// at zero: frames and events recycle, and the transit continuations are
// bound to the pooled frame once, so a fault-free trip allocates nothing.
// The guard fails if anything returns to allocating per-packet state.
func TestFrameTransitAllocFree(t *testing.T) {
	if !pool.Enabled() {
		t.Skip("pooling disabled")
	}
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops recycles by design")
	}
	eng := sim.NewEngine()
	delivered := 0
	fab, src, dst := benchFabric(eng, &delivered)
	step := func() {
		fab.Send(NewFrame(src, dst, 1500, nil), nil)
		eng.Run()
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg > 0.25 {
		t.Errorf("frame transit allocates %.2f objects/op after warmup, want 0", avg)
	}
}
