//go:build race

package fabric

// raceEnabled reports whether the race detector is active; its Pool
// instrumentation intentionally drops recycles, so zero-alloc guards
// cannot hold.
const raceEnabled = true
