// External-package test: exercises the fault.Injector through the
// fabric's generalized fault hook. (The in-package TestDropInjection keeps
// covering the legacy Drop adapter.) Lives outside package fabric because
// fault imports fabric.
package fabric_test

import (
	"bytes"
	"testing"

	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/wire"
)

func myrinet(eng *sim.Engine) *fabric.Fabric {
	return fabric.New(eng, fabric.Config{
		Name:         "myri",
		Bandwidth:    params.MyrinetBandwidth,
		LinkOverhead: params.MyrinetHeaderBytes,
		CutThrough:   true,
		HopLatency:   params.MyrinetHopLatency,
		PropDelay:    params.CableLatency,
	})
}

func TestInjectorScriptedDrop(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	count := 0
	b := f.Attach(func(fr *fabric.Frame) { count++ })
	inj := fault.NewInjector(fault.Plan{DropFrames: []uint64{1}})
	inj.Attach(f)
	txDones := 0
	for i := 0; i < 3; i++ {
		f.Send(&fabric.Frame{Src: a, Dst: b, WireSize: 100}, func() { txDones++ })
	}
	eng.Run()
	if count != 2 {
		t.Errorf("delivered %d frames, want 2", count)
	}
	if txDones != 3 {
		t.Errorf("txDone fired %d times, want 3 (sender pays for lost frames too)", txDones)
	}
	sent, delivered, dropped := f.Stats()
	if sent != 3 || delivered != 2 || dropped != 1 {
		t.Errorf("stats = %d/%d/%d", sent, delivered, dropped)
	}
	if inj.Stats().Drops != 1 {
		t.Errorf("injector Drops = %d, want 1", inj.Stats().Drops)
	}
}

func TestInjectorDuplication(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	var arrivals []sim.Time
	b := f.Attach(func(fr *fabric.Frame) { arrivals = append(arrivals, eng.Now()) })
	fault.NewInjector(fault.Plan{Seed: 3, DupProb: 1}).Attach(f)
	f.Send(&fabric.Frame{Src: a, Dst: b, WireSize: 1000}, nil)
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d deliveries, want 2 (duplicate)", len(arrivals))
	}
	// The copy trails by one serialization time on a cut-through fabric.
	ser := sim.Time(float64(1000) * 1e9 / params.MyrinetBandwidth)
	if arrivals[1]-arrivals[0] != ser {
		t.Errorf("duplicate trails by %v, want %v", arrivals[1]-arrivals[0], ser)
	}
	if _, dup := f.FaultStats(); dup != 1 {
		t.Errorf("duplicated = %d, want 1", dup)
	}
}

func TestInjectorExtraDelay(t *testing.T) {
	baseline := func(extra sim.Time) sim.Time {
		eng := sim.NewEngine()
		f := myrinet(eng)
		a := f.Attach(nil)
		var at sim.Time
		b := f.Attach(func(fr *fabric.Frame) { at = eng.Now() })
		if extra > 0 {
			fault.NewInjector(fault.Plan{Seed: 4, DelayProb: 1, MaxExtraDelay: extra}).Attach(f)
		}
		f.Send(&fabric.Frame{Src: a, Dst: b, WireSize: 500}, nil)
		eng.Run()
		return at
	}
	clean := baseline(0)
	delayed := baseline(10_000)
	d := delayed - clean
	if d <= 0 || d > 10_000 {
		t.Errorf("extra delay = %v, want in (0, 10000]", d)
	}
}

func TestInjectorCorruptionReplacesClone(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	var got *wire.Packet
	b := f.Attach(func(fr *fabric.Frame) { got = fr.Payload.(*wire.Packet) })
	fault.NewInjector(fault.Plan{Seed: 5, CorruptProb: 1, CorruptBits: 1}).Attach(f)

	ip := make([]byte, 40)
	l4 := make([]byte, 20)
	pkt := &wire.Packet{IPHdr: ip, L4Hdr: l4, Payload: buf.Pattern(100, 9)}
	origIP := append([]byte(nil), ip...)
	origPay := append([]byte(nil), pkt.Payload.Data()...)
	f.Send(&fabric.Frame{Src: a, Dst: b, WireSize: pkt.Len(), Payload: pkt}, nil)
	eng.Run()
	if got == nil {
		t.Fatal("no delivery")
	}
	if got == pkt {
		t.Fatal("corrupted frame delivered the original packet, not a clone")
	}
	same := bytes.Equal(got.IPHdr, origIP) &&
		bytes.Equal(got.L4Hdr, l4) &&
		bytes.Equal(got.Payload.Data(), origPay)
	if same {
		t.Fatal("delivered packet identical to original despite CorruptProb=1")
	}
	// Sender's copy untouched.
	if !bytes.Equal(pkt.IPHdr, origIP) || !bytes.Equal(pkt.Payload.Data(), origPay) {
		t.Fatal("corruption mutated the sender's packet")
	}
	if corr, _ := f.FaultStats(); corr == 0 {
		t.Error("fabric corrupted counter not incremented")
	}
}

func TestInjectorFlapWindow(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	count := 0
	b := f.Attach(func(fr *fabric.Frame) { count++ })
	inj := fault.NewInjector(fault.Plan{Flaps: []fault.Flap{{Port: b, From: 1000, To: 2000}}})
	inj.Attach(f)
	send := func(at sim.Time) {
		eng.At(at, "send", func() {
			f.Send(&fabric.Frame{Src: a, Dst: b, WireSize: 64}, nil)
		})
	}
	send(0)    // before the window: delivered
	send(1500) // inside: lost
	send(2500) // after: delivered
	eng.Run()
	if count != 2 {
		t.Errorf("delivered %d frames, want 2 (one lost to the flap)", count)
	}
	if inj.Stats().FlapDrops != 1 {
		t.Errorf("FlapDrops = %d, want 1", inj.Stats().FlapDrops)
	}
}

// TestLegacyDropAdapterComposes: a legacy Drop hook and the fault hook can
// coexist; either one dropping loses the frame.
func TestLegacyDropAdapterComposes(t *testing.T) {
	eng := sim.NewEngine()
	f := myrinet(eng)
	a := f.Attach(nil)
	count := 0
	b := f.Attach(func(fr *fabric.Frame) { count++ })
	fault.NewInjector(fault.Plan{DropFrames: []uint64{0}}).Attach(f)
	f.Drop = func(fr *fabric.Frame, n uint64) bool { return n == 2 }
	for i := 0; i < 4; i++ {
		f.Send(&fabric.Frame{Src: a, Dst: b, WireSize: 64}, nil)
	}
	eng.Run()
	if count != 2 {
		t.Errorf("delivered %d frames, want 2 (one per hook dropped)", count)
	}
	_, _, dropped := f.Stats()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
}
