// Package maporder flags range-over-map loops whose iteration order can
// leak into simulation behaviour — the classic Go determinism bug.
//
// Go randomizes map iteration order per run. Inside the simulator that is
// harmless when the loop body is commutative (zeroing accumulators,
// summing counters), but fatal when the body's effects are order
// sensitive: scheduling engine events, waking processes, enqueueing work,
// bumping trace counters, or accumulating results into a slice that is
// then consumed in order. Two runs with identical seeds then produce
// different traces, breaking the DESIGN §9 bit-identical-replay contract
// in a way the chaos tests only catch if the map happens to hold more
// than one entry on an exercised path.
//
// Inside simulated packages the analyzer flags a `for ... := range m`
// over a map when the body
//
//   - calls an order-sensitive routine — a method or function whose name
//     is one of the scheduling / queueing / tracing verbs (At, After, Do,
//     Spawn, Send, Wake, Push, Pop, Enqueue, Raise, Burst, BurstAt,
//     Observe, Add, CompleteSend, CompleteRecv, Complete, Schedule), or
//
//   - appends to a slice declared outside the loop, unless the enclosing
//     function visibly sorts that slice after the loop (a call whose name
//     contains "sort"/"Sort" taking the slice as an argument) — the
//     canonical collect-keys-then-sort idiom stays legal.
//
// The fix is always the same: collect the keys, sort them, iterate the
// sorted keys. Genuinely commutative loops that trip the name heuristic
// can carry "//lint:qpip-allow maporder <reason>".
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flag nondeterministic range-over-map loops with order-sensitive bodies in simulated packages",
	Run:  run,
}

// orderSensitiveCallees are routine names whose invocation inside a map
// range makes iteration order observable: event scheduling, process
// wakeups, queue pushes, and trace-counter bumps.
var orderSensitiveCallees = map[string]bool{
	"At": true, "After": true, "Do": true, "DoCycles": true, "Spawn": true,
	"Send": true, "Wake": true, "Push": true, "Pop": true, "Enqueue": true,
	"Raise": true, "Burst": true, "BurstAt": true, "Observe": true,
	"Add": true, "AddAll": true, "Complete": true, "CompleteSend": true,
	"CompleteRecv": true, "Schedule": true,
}

func run(pass *framework.Pass) error {
	if !framework.SimulatedPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// Walk function by function so the sorted-after-loop escape can see
		// the whole enclosing body.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			checkBody(pass, body)
			return true
		})
	}
	return nil
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if name, node, bad := orderSensitiveEffect(pass, body, rng); bad {
			pass.Reportf(node.Pos(),
				"range over map in simulated package %s %s in its body: iteration order is random per run — collect the keys, sort them, and iterate the sorted slice",
				pass.Pkg.Path(), name)
		}
		return true
	})
}

// orderSensitiveEffect scans one map-range body for order-sensitive
// effects, returning a description and position of the first one found.
func orderSensitiveEffect(pass *framework.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) (string, ast.Node, bool) {
	var desc string
	var at ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if at != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeIdent(n); ok && orderSensitiveCallees[name] {
				desc, at = "calls order-sensitive "+name, n
				return false
			}
		case *ast.AssignStmt:
			// x = append(x, ...) with x declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
					continue
				}
				dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				obj := pass.TypesInfo.Uses[dst]
				if obj == nil {
					continue
				}
				// Declared inside the loop body: purely loop-local, ordered
				// consumption is impossible after the loop ends.
				if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
					continue
				}
				if sortedAfterLoop(pass, fnBody, rng, obj) {
					continue
				}
				desc, at = "appends to "+dst.Name+" (declared outside the loop, never sorted)", n
				return false
			}
		}
		return true
	})
	return desc, orDefault(at, rng), at != nil
}

func orDefault(n ast.Node, d ast.Node) ast.Node {
	if n != nil {
		return n
	}
	return d
}

// sortedAfterLoop reports whether, somewhere after the range loop in the
// enclosing function body, a sorting routine is applied to obj — e.g.
// sort.Strings(keys), sort.Slice(keys, ...), slices.Sort(keys), or a
// local helper like sortInt64s(keys).
func sortedAfterLoop(pass *framework.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !sortishCallee(call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortishCallee reports whether the call looks like a sorting routine:
// any component of the callee name contains "sort" — sort.Strings(...),
// slices.Sort(...), sortInt64s(...), x.SortKeys(...).
func sortishCallee(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.SelectorExpr:
		if strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
			return true
		}
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return strings.Contains(strings.ToLower(x.Name), "sort")
		}
	}
	return false
}

// calleeIdent extracts the final name of a call's callee: Foo(...) -> Foo,
// x.Bar(...) -> Bar. It reports false for indirect calls through
// non-selector expressions.
func calleeIdent(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

func isBuiltinAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
