package interproc

// Fixpoint runs a bottom-up summary computation to a fixed point. update
// recomputes one node's summary from its callees' current summaries and
// reports whether the summary changed; when it does, the node's callers
// are revisited. Summaries must be monotone (flags only ever flip one
// way) — termination is then bounded by nodes × summary bits.
//
// The initial sweep visits nodes in deterministic graph order, and the
// worklist is FIFO, so analyzer results never depend on map iteration.
func (g *Graph) Fixpoint(update func(n *Node) bool) {
	queued := make(map[*Node]bool, len(g.ordered))
	queue := make([]*Node, 0, len(g.ordered))
	for _, n := range g.ordered {
		queue = append(queue, n)
		queued[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		queued[n] = false
		if !update(n) {
			continue
		}
		for _, e := range n.In {
			if !queued[e.Caller] {
				queue = append(queue, e.Caller)
				queued[e.Caller] = true
			}
		}
	}
}

// ReachableFrom walks call edges forward from roots and returns, for each
// reached node (roots excluded), the edge it was first discovered
// through — the parent pointers of a BFS tree, so diagnostics can print
// the shortest call chain from a root. follow, when non-nil, can sever
// individual edges (hotprop severs edges whose call site carries a
// //lint:qpip-allow hotprop comment).
func (g *Graph) ReachableFrom(roots []*Node, follow func(*Edge) bool) map[*Node]*Edge {
	parent := map[*Node]*Edge{}
	inTree := map[*Node]bool{}
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if !inTree[r] {
			inTree[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if inTree[e.Callee] {
				continue
			}
			if follow != nil && !follow(e) {
				continue
			}
			inTree[e.Callee] = true
			parent[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return parent
}

// Chain renders the call chain from a BFS tree root down to n, using the
// parent map ReachableFrom returned: "root -> mid -> n".
func Chain(parent map[*Node]*Edge, n *Node) string {
	var names []string
	for at := n; ; {
		names = append(names, at.Name())
		e := parent[at]
		if e == nil {
			break
		}
		at = e.Caller
	}
	// Reverse into root-first order.
	var b []byte
	for i := len(names) - 1; i >= 0; i-- {
		if len(b) > 0 {
			b = append(b, " -> "...)
		}
		b = append(b, names[i]...)
	}
	return string(b)
}
