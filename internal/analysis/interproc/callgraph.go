package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EdgeKind distinguishes how a call site was resolved.
type EdgeKind int

const (
	// StaticCall is a direct call of a named function or a method on a
	// concrete receiver: exactly one callee.
	StaticCall EdgeKind = iota
	// InterfaceCall is a dynamic method call through an interface value,
	// conservatively resolved to every loaded concrete type whose method
	// set satisfies the interface (class-hierarchy analysis).
	InterfaceCall
)

// Edge is one resolved call: Caller invokes Callee at Pos. An interface
// call produces one edge per candidate implementation, all sharing the
// call site.
type Edge struct {
	Caller, Callee *Node
	// Pos is the call site (the position suppression comments anchor to:
	// hotprop treats //lint:qpip-allow hotprop on this line as severing
	// the edge).
	Pos token.Pos
	// Kind records the resolution mode.
	Kind EdgeKind
	// Via names the interface method an InterfaceCall dispatched through
	// ("repro/internal/verbs.Device.SendDoorbell"), for diagnostics.
	Via string
}

// Node is one declared function or method with a body. Calls made inside
// function literals are attributed to the enclosing declaration: the
// literal runs with the declaration's dynamic context, and the repo's
// continuation style (closures bound once at construction) means hotness
// and ownership decisions belong to the declarer.
type Node struct {
	// Fn is the function object in its declaring (source-checked)
	// universe.
	Fn *types.Func
	// Decl is the declaration; Decl.Body is non-nil.
	Decl *ast.FuncDecl
	// Unit is the package the function is declared in.
	Unit *Unit
	// Out and In are the resolved call edges.
	Out, In []*Edge
	// Annotations holds the function's //qpip:* doc-comment directives
	// ("qpip:hotpath", "qpip:barrier", ...), each on its own line.
	Annotations map[string]bool
}

// FullName is the universe-independent key: types.Func.FullName, e.g.
// "repro/internal/fabric.NewFrame" or
// "(*repro/internal/fabric.Fabric).Send".
func (n *Node) FullName() string { return n.Fn.FullName() }

// Name is a compact human form for diagnostics: pkgname.Func or
// pkgname.(*Recv).Method.
func (n *Node) Name() string {
	pkg := n.Fn.Pkg()
	short := pkg.Name()
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
			star = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return short + ".(" + star + named.Obj().Name() + ")." + n.Fn.Name()
		}
	}
	return short + "." + n.Fn.Name()
}

// Graph is the whole-program call graph.
type Graph struct {
	// Nodes maps FullName -> node, every declared function with a body.
	Nodes map[string]*Node
	// ordered preserves deterministic iteration: declaration order within
	// units, units in load order.
	ordered []*Node
}

// All returns every node in deterministic order.
func (g *Graph) All() []*Node { return g.ordered }

// Lookup resolves a function object (from any universe) to its node, or
// nil for functions without bodies in the loaded program (stdlib,
// interface methods).
func (g *Graph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn.Origin().FullName()]
}

// methodInfo is one entry of a concrete type's method set, pre-rendered
// for structural matching against interface requirements.
type methodInfo struct {
	node *Node  // declared body, when loaded
	sig  string // universe-independent signature key
}

// buildGraph constructs nodes, the concrete-type method index, and edges.
func buildGraph(prog *Program) *Graph {
	g := &Graph{Nodes: map[string]*Node{}}

	// Pass 1: one node per FuncDecl with a body.
	for _, u := range prog.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Unit: u, Annotations: annotations(fd)}
				g.Nodes[n.FullName()] = n
				g.ordered = append(g.ordered, n)
			}
		}
	}

	// Pass 2: the concrete-type index for interface resolution. For every
	// named non-interface type declared in a loaded unit, record its full
	// (pointer-receiver) method set with rendered signatures; an entry
	// whose method body is loaded links to the node (promoted methods
	// link to the embedded type's declaration, which is where the body
	// lives).
	type typeMethods struct {
		methods map[string]methodInfo
	}
	var concrete []typeMethods
	for _, u := range prog.Units {
		scope := u.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			mset := types.NewMethodSet(types.NewPointer(named))
			if mset.Len() == 0 {
				continue
			}
			tm := typeMethods{methods: map[string]methodInfo{}}
			for i := 0; i < mset.Len(); i++ {
				m, ok := mset.At(i).Obj().(*types.Func)
				if !ok {
					continue
				}
				sig, ok := m.Type().(*types.Signature)
				if !ok {
					continue
				}
				tm.methods[m.Name()] = methodInfo{node: g.Lookup(m), sig: sigKey(sig)}
			}
			concrete = append(concrete, tm)
		}
	}

	// implementors resolves one interface type to the loaded methods every
	// satisfying concrete type provides for the called method name.
	ifaceCache := map[*types.Interface][]string{} // rendered requirements
	requirements := func(iface *types.Interface) []string {
		if req, ok := ifaceCache[iface]; ok {
			return req
		}
		var req []string
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			if sig, ok := m.Type().(*types.Signature); ok {
				req = append(req, m.Name()+" "+sigKey(sig))
			}
		}
		ifaceCache[iface] = req
		return req
	}
	implementors := func(iface *types.Interface, method string) []*Node {
		req := requirements(iface)
		var out []*Node
		for _, tm := range concrete {
			satisfied := true
			for _, r := range req {
				name, sig, _ := strings.Cut(r, " ")
				mi, ok := tm.methods[name]
				if !ok || mi.sig != sig {
					satisfied = false
					break
				}
			}
			if !satisfied {
				continue
			}
			if mi, ok := tm.methods[method]; ok && mi.node != nil {
				out = append(out, mi.node)
			}
		}
		return out
	}

	// Pass 3: edges. Calls inside nested function literals belong to the
	// enclosing declaration.
	for _, n := range g.ordered {
		info := n.Unit.Info
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true // builtin, conversion, or call through a func value
			}
			fn = fn.Origin()
			if recvIface := interfaceReceiver(fn); recvIface != nil {
				via := ifaceName(fn) + "." + fn.Name()
				if fn.Pkg() != nil {
					via = fn.Pkg().Path() + "." + via
				}
				for _, callee := range implementors(recvIface, fn.Name()) {
					e := &Edge{Caller: n, Callee: callee, Pos: call.Lparen, Kind: InterfaceCall, Via: via}
					n.Out = append(n.Out, e)
					callee.In = append(callee.In, e)
				}
				return true
			}
			if callee := g.Lookup(fn); callee != nil {
				e := &Edge{Caller: n, Callee: callee, Pos: call.Lparen, Kind: StaticCall}
				n.Out = append(n.Out, e)
				callee.In = append(callee.In, e)
			}
			return true
		})
	}
	return g
}

// calleeFunc resolves the called function object of call, or nil for
// builtins, conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// interfaceReceiver returns the receiver interface type when fn is an
// abstract interface method, nil otherwise.
func interfaceReceiver(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// ifaceName names the interface a method belongs to, best-effort (the
// receiver of an abstract method is the named interface type).
func ifaceName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "interface"
}

// pathQual renders package references as full import paths, making the
// rendered form identical across the source and export-data universes.
func pathQual(p *types.Package) string { return p.Path() }

// sigKey renders a method signature (receiver excluded) into a
// universe-independent string: parameter and result types with full
// package-path qualifiers, plus the variadic marker. Parameter names are
// deliberately dropped — export data and source agree on types, not
// always on names.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if sig.Variadic() && i == params.Len()-1 {
			b.WriteString("...")
		}
		b.WriteString(types.TypeString(params.At(i).Type(), pathQual))
	}
	b.WriteString(")(")
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(results.At(i).Type(), pathQual))
	}
	b.WriteByte(')')
	return b.String()
}

// annotations extracts //qpip:* directive lines from a doc comment.
func annotations(fd *ast.FuncDecl) map[string]bool {
	if fd.Doc == nil {
		return nil
	}
	var out map[string]bool
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "qpip:") {
			if out == nil {
				out = map[string]bool{}
			}
			out[text] = true
		}
	}
	return out
}
