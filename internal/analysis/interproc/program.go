// Package interproc is qpiplint's interprocedural layer: a cross-package
// call-graph builder plus a small summary-based dataflow framework, built
// on the standard library's go/ast + go/types only (like the rest of
// internal/analysis — the build image carries no x/tools).
//
// # Why a second analyzer kind
//
// The per-package framework (internal/analysis/framework) checks each
// package in isolation, which is exactly right for syntactic invariants
// (no wall clocks, no goroutines, no order-sensitive map ranges). The
// bugs that grew in with the switched topologies, collectives firmware
// and SRQ pools span functions and packages: a callee reached from a
// //qpip:hotpath root that allocates, a pooled fabric.Frame acquired in
// one package and never released in another, shard-runner code touching
// a foreign engine outside the mailbox protocol. Those need the whole
// program.
//
// # The universe problem
//
// The loader type-checks each target package from source but resolves its
// imports from compiled export data, so one real package exists as two
// distinct go/types object universes: its own source-checked form, and
// the export-data form its dependents see. Object identity therefore
// cannot link a call site in package A to the function declaration in
// package B. The call graph instead keys every function by its
// universe-independent full name ((*repro/internal/fabric.Fabric).Send)
// and matches interface satisfaction structurally, by method name plus a
// rendered signature string with package-path qualifiers — see
// callgraph.go.
//
// # Summaries
//
// Dataflow analyzers attach one summary per graph node and iterate
// Graph.Fixpoint until no summary changes (monotone summaries only: a
// summary field may flip false->true, never back, so termination is the
// finite flag count). The summary format is the analyzer's own struct;
// bufown's is documented in DESIGN §17 as the reference instance.
package interproc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Unit is one source-checked package handed to the whole-program layer
// (mirrors load.Package; redeclared here so interproc depends only on
// framework).
type Unit struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the whole-program view: every loaded unit, the repo-wide
// suppression set, and the call graph over all of it.
type Program struct {
	Fset   *token.FileSet
	Units  []*Unit
	Allows framework.AllowSet
	Graph  *Graph
}

// NewProgram assembles a Program: collects //lint:qpip-allow suppressions
// across every file and builds the call graph.
func NewProgram(fset *token.FileSet, units []*Unit) *Program {
	allows := framework.AllowSet{}
	for _, u := range units {
		allows.Merge(framework.CollectAllows(fset, u.Files))
	}
	p := &Program{Fset: fset, Units: units, Allows: allows}
	p.Graph = buildGraph(p)
	return p
}

// Analyzer is one named whole-program check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:qpip-allow suppression comments.
	Name string
	// Doc is the one-paragraph description shown by qpiplint -help.
	Doc string
	// Run inspects the program and reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries the program to one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []framework.Diagnostic
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, framework.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies whole-program analyzers and returns the findings that
// survive //lint:qpip-allow suppression, sorted by position. Test files
// never reach this layer (the loader lists non-test GoFiles only), but
// the suffix filter is kept for symmetry with the per-package runner.
func Run(prog *Program, analyzers []*Analyzer) ([]framework.Finding, error) {
	var out []framework.Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Prog: prog}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			pos := prog.Fset.Position(d.Pos)
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			if prog.Allows.Allows(a.Name, pos) {
				continue
			}
			out = append(out, framework.Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
