package simclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simclock"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, simclock.Analyzer, "../testdata/src", "simclock")
}
