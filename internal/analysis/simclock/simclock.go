// Package simclock forbids wall-clock reads and real sleeps in simulated
// packages.
//
// The paper's firmware is four serial FSMs driven entirely by simulated
// time; the reproduction's bit-identical-replay contract (DESIGN §8–§9)
// holds only if no simulated component ever observes the host clock. One
// stray time.Now in a retransmit computation silently re-couples the model
// to wall time, and the chaos-trace equivalence tests only catch it on
// the paths they happen to exercise. This analyzer proves the property
// over the whole tree: inside simulated packages (framework.
// SimulatedPackage), virtual time must flow through sim.Engine / sim.Proc.
//
// Flagged: calls to time.Now, time.Sleep, time.After, time.Tick,
// time.NewTimer, time.NewTicker, time.AfterFunc, time.Since, time.Until,
// and any import of math/rand or math/rand/v2 (simulated randomness must
// come from a seeded, replayable PRNG such as internal/fault's). Pure
// time *types* (time.Duration arithmetic, the unit constants) are fine —
// they read no clock.
//
// Harness packages (internal/bench, cmd/, scripts/, examples/) are exempt,
// as are _test.go files. Individual sites are suppressed with
// "//lint:qpip-allow simclock <reason>".
package simclock

import (
	"go/ast"

	"repro/internal/analysis/framework"
)

// Analyzer is the simclock check.
var Analyzer = &framework.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock reads (time.Now, time.Sleep, ...) and math/rand in simulated packages",
	Run:  run,
}

// wallClockFuncs are the time-package functions that read or wait on the
// host clock. Conversions and constructors that touch no clock
// (time.Duration, time.Unix) stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
}

func run(pass *framework.Pass) error {
	if !framework.SimulatedPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch path := imp.Path.Value; path {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(),
					"import of %s in simulated package %s: use a seeded deterministic PRNG (see internal/fault) so runs replay bit-identically",
					path, pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeName(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s in simulated package %s: simulated code must take time from sim.Engine (Now/At/After), never the wall clock",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
