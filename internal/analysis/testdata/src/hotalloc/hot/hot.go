// Package hot exercises the //qpip:hotpath allocation checks. The package
// path does not matter: hotalloc keys on the annotation, not the tree.
package hot

import "fmt"

func sink(v any)   {}
func use(f func()) {}

// closures allocates its environment per call.
//
//qpip:hotpath
func closures(n int) {
	use(func() { n++ }) // want `closure in //qpip:hotpath function closures`
}

// formatted calls into fmt on the hot path.
//
//qpip:hotpath
func formatted(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt.Sprintf in //qpip:hotpath function formatted`
}

// concat builds a string from a non-constant operand.
//
//qpip:hotpath
func concat(name string) string {
	return "qp:" + name // want `non-constant string concatenation in //qpip:hotpath function concat`
}

// boxed passes a concrete value to an interface parameter.
//
//qpip:hotpath
func boxed(n int) {
	sink(n) // want `passing int to interface parameter in //qpip:hotpath function boxed`
}

// grown appends to a local slice declared without capacity.
//
//qpip:hotpath
func grown(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to unsized local slice "out" in //qpip:hotpath function grown`
	}
	return out
}

// dyingWords may format its panic message: panic arguments are exempt.
//
//qpip:hotpath
func dyingWords(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
}

// preallocated appends into capacity reserved up front: legal.
//
//qpip:hotpath
func preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// coldBranch is hot, but its error return is cold by construction and
// carries the allow.
//
//qpip:hotpath
func coldBranch(n, limit int) error {
	if n > limit {
		//lint:qpip-allow hotalloc rejected-input error path, cold by construction
		return fmt.Errorf("count %d over limit %d", n, limit)
	}
	return nil
}

// cloneSpread uses the spread-clone idiom: append onto a fresh empty
// slice allocates a new backing array every call, however it is spelled.
//
//qpip:hotpath
func cloneSpread(xs []int) []int {
	return append([]int(nil), xs...) // want `spread append to a freshly created empty slice in //qpip:hotpath function cloneSpread`
}

// cloneLiteral clones through an empty composite literal instead of a
// nil conversion; same allocation, same finding.
//
//qpip:hotpath
func cloneLiteral(a, b int) []int {
	return append([]int{}, a, b) // want `append to a freshly created empty slice in //qpip:hotpath function cloneLiteral`
}

// cloneReslice zero-caps an existing slice before appending: x[:0:0]
// guarantees reallocation just like a fresh literal.
//
//qpip:hotpath
func cloneReslice(xs []int) []int {
	return append(xs[:0:0], xs...) // want `spread append to a freshly created empty slice in //qpip:hotpath function cloneReslice`
}

// cloneThenGrow binds the clone to a local; the clone itself is flagged
// and the local stays tracked as unsized for later appends.
//
//qpip:hotpath
func cloneThenGrow(xs []int, y int) []int {
	s := append([]int(nil), xs...) // want `spread append to a freshly created empty slice in //qpip:hotpath function cloneThenGrow`
	s = append(s, y)               // want `append to unsized local slice "s" in //qpip:hotpath function cloneThenGrow`
	return s
}

// indirected hides the fmt call behind a function value; the reference
// itself is flagged, not just direct call sites.
//
//qpip:hotpath
func indirected(n int) string {
	f := fmt.Sprintf  // want `reference to fmt.Sprintf in //qpip:hotpath function indirected`
	return f("%d", n) // want `passing int to interface parameter in //qpip:hotpath function indirected`
}

// reslicedInPlace truncates with plain x[:0], which keeps the backing
// array: legal, no finding.
//
//qpip:hotpath
func reslicedInPlace(buf, xs []int) []int {
	buf = buf[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	return buf
}

// unannotated allocates freely: without the annotation nothing is checked.
func unannotated(n int) string {
	use(func() { n++ })
	f := fmt.Sprintf
	_ = append([]int(nil), n)
	return f("%d", n)
}
