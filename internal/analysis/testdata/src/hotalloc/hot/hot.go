// Package hot exercises the //qpip:hotpath allocation checks. The package
// path does not matter: hotalloc keys on the annotation, not the tree.
package hot

import "fmt"

func sink(v any)   {}
func use(f func()) {}

// closures allocates its environment per call.
//
//qpip:hotpath
func closures(n int) {
	use(func() { n++ }) // want `closure in //qpip:hotpath function closures`
}

// formatted calls into fmt on the hot path.
//
//qpip:hotpath
func formatted(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt.Sprintf in //qpip:hotpath function formatted`
}

// concat builds a string from a non-constant operand.
//
//qpip:hotpath
func concat(name string) string {
	return "qp:" + name // want `non-constant string concatenation in //qpip:hotpath function concat`
}

// boxed passes a concrete value to an interface parameter.
//
//qpip:hotpath
func boxed(n int) {
	sink(n) // want `passing int to interface parameter in //qpip:hotpath function boxed`
}

// grown appends to a local slice declared without capacity.
//
//qpip:hotpath
func grown(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to unsized local slice "out" in //qpip:hotpath function grown`
	}
	return out
}

// dyingWords may format its panic message: panic arguments are exempt.
//
//qpip:hotpath
func dyingWords(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
}

// preallocated appends into capacity reserved up front: legal.
//
//qpip:hotpath
func preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// coldBranch is hot, but its error return is cold by construction and
// carries the allow.
//
//qpip:hotpath
func coldBranch(n, limit int) error {
	if n > limit {
		//lint:qpip-allow hotalloc rejected-input error path, cold by construction
		return fmt.Errorf("count %d over limit %d", n, limit)
	}
	return nil
}

// unannotated allocates freely: without the annotation nothing is checked.
func unannotated(n int) string {
	use(func() { n++ })
	return fmt.Sprintf("%d", n)
}
