// Package wire stands in for the pooled packet package: its import path
// ends in internal/wire and exports Get/Release with the same shape, so
// bufref treats its Packet exactly like the real one.
package wire

// Packet is a pooled, reference-counted network packet.
type Packet struct {
	refs    int
	Payload []byte
}

// Get hands out a packet with one reference.
func Get() *Packet { return &Packet{refs: 1} }

// Release drops one reference.
func (p *Packet) Release() { p.refs-- }

// Len reports the payload length.
func (p *Packet) Len() int { return len(p.Payload) }
