// Package client exercises the pooled-lifecycle checks against the
// stand-in wire package.
package client

import "bufref/internal/wire"

func send(p *wire.Packet) {}

// leak acquires a packet and neither releases nor hands it off.
func leak() int {
	p := wire.Get() // want `pooled wire.Packet acquired into "p" is neither released nor handed off`
	return p.Len()
}

// balanced releases on the same path: legal.
func balanced() int {
	p := wire.Get()
	n := p.Len()
	p.Release()
	return n
}

// handoff passes ownership to a callee: legal.
func handoff() {
	p := wire.Get()
	send(p)
}

// deferred releases at function exit: legal, and the use between the
// defer and the return is fine.
func deferred() int {
	p := wire.Get()
	defer p.Release()
	return p.Len()
}

// useAfterRelease touches the packet after giving it back to the pool.
func useAfterRelease() int {
	p := wire.Get()
	p.Release()
	return p.Len() // want `use of pooled "p" after p.Release\(\)`
}

// peeked would be flagged as a leak — the packet is neither released nor
// handed off — but the allow documents why this diagnostic helper is
// exempt.
func peeked() int {
	//lint:qpip-allow bufref probe packet is deliberately abandoned in this diagnostic helper
	p := wire.Get()
	return p.Len()
}
