// Package verbs stands in for the QP state machine: its import path ends
// in internal/verbs, so simclock holds it to the simulated-clock rules.
// The fixture pins the reconnect-backoff jitter contract: jitter must be
// a pure function of seed and attempt ordinal (the splitmix64 pattern the
// real BackoffPolicy.Delay uses), never the wall clock or math/rand.
package verbs

import (
	"math/rand" // want `import of "math/rand" in simulated package`
	"time"
)

// base exercises pure duration arithmetic: legal, reads no clock.
const base = time.Millisecond

// jitterHash is the seeded, replayable way: a splitmix64 finalizer over
// seed and attempt. Pure arithmetic — no findings.
func jitterHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// goodDelay derives backoff jitter deterministically; two runs of a seed
// reconnect at identical instants.
func goodDelay(seed uint64, attempt int) time.Duration {
	d := base << attempt
	h := jitterHash(seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(h>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// badDelay seeds jitter from the wall clock and math/rand: both are
// forbidden in simulated packages — neither replays.
func badDelay(attempt int) time.Duration {
	_ = time.Now()   // want `time.Now in simulated package`
	time.Sleep(base) // want `time.Sleep in simulated package`
	return base<<attempt + time.Duration(rand.Intn(1000))
}
