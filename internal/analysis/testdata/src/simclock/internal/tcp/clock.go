// Package tcp stands in for a simulated protocol stack: its import path
// ends in internal/tcp, so simclock treats it exactly like the real one.
package tcp

import (
	"math/rand" // want `import of "math/rand" in simulated package`
	"time"
)

// tick exercises pure time types: Duration arithmetic reads no clock and
// must stay legal.
const tick = 10 * time.Millisecond

func retransmitDelay(attempt int) time.Duration {
	return tick << attempt
}

func wallClockBugs() time.Duration {
	start := time.Now()               // want `time.Now in simulated package`
	time.Sleep(tick)                  // want `time.Sleep in simulated package`
	return time.Since(start) / tick * // want `time.Since in simulated package`
		time.Duration(rand.Intn(3))
}

func allowedStartupStamp() int64 {
	//lint:qpip-allow simclock one-time run-id stamp taken before the simulation starts
	return time.Now().UnixNano()
}
