// Package bench stands in for harness code: its import path matches no
// simulated suffix, so wall-clock reads here are legal and produce no
// findings.
package bench

import (
	"math/rand"
	"time"
)

func wallClockIsFineHere() time.Duration {
	start := time.Now()
	time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
	return time.Since(start)
}
