// Package root holds the annotated hot entry points; everything they can
// reach in package helper inherits the allocation discipline.
package root

import "hotprop/helper"

// State is the fixture's little engine.
type State struct {
	sinks []helper.Sink
	buf   []int
}

// Push is the hot root: its own body is hotalloc's problem; hotprop owns
// what it calls.
//
//qpip:hotpath
func Push(s *State, n int) string {
	s.buf = helper.Mid(s.buf)
	for _, k := range s.sinks {
		k.Consume(n) // interface dispatch: both Sink impls become hot-reachable
	}
	if n < 0 {
		//lint:qpip-allow hotprop rejected-input diagnostics, cold by construction
		return helper.ColdReport(n)
	}
	return helper.Format(n)
}

// localAlloc is annotated, so its own allocation belongs to hotalloc and
// hotprop must NOT report it a second time.
//
//qpip:hotpath
func localAlloc(xs []int) []int {
	return append([]int(nil), xs...)
}
