// Package helper holds unannotated callees; whether their allocations
// matter depends entirely on who reaches them, which is hotprop's job to
// figure out.
package helper

import "fmt"

// Format allocates. It is reached from the annotated root in package
// root, so the finding lands here with the cross-package call chain.
func Format(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt.Sprintf in hot-reachable function Format allocates.*hot call chain: root.Push -> helper.Format`
}

// Deep is only reached through one more hop; the chain shows both.
func Deep(xs []int) []int {
	return append([]int(nil), xs...) // want `spread append to a freshly created empty slice in hot-reachable function Deep.*hot call chain: root.Push -> helper.Mid -> helper.Deep`
}

// Mid is allocation-free itself and just extends the chain.
func Mid(xs []int) []int { return Deep(xs) }

// Sink is an interface the root dispatches through.
type Sink interface {
	Consume(n int)
}

// LoudSink implements Sink with an allocating Consume: reached via the
// conservatively resolved interface call in root.Push.
type LoudSink struct{ last string }

func (s *LoudSink) Consume(n int) {
	if n > 0 {
		s.last = s.last + "!" // want `non-constant string concatenation in hot-reachable function Consume.*hot call chain: root.Push -> helper.\(\*LoudSink\).Consume`
	}
}

// QuietSink implements Sink without allocating: reached too, no finding.
type QuietSink struct{ last int }

func (s *QuietSink) Consume(n int) { s.last = n }

// ColdReport allocates but is only reached through a severed edge (the
// allow in root.Push): no finding anywhere in this subtree.
func ColdReport(n int) string {
	return fmt.Sprintf("cold %d", n)
}

// Orphan allocates and nothing hot reaches it: hotprop stays silent.
func Orphan(n int) string {
	return fmt.Sprintf("orphan %d", n)
}
