// Package bench is harness code (no simulated path suffix): draining
// mailboxes from outside the simulation, e.g. between measured phases,
// is legal.
package bench

import "shardsafe/internal/fabric"

// DrainBetweenPhases flushes from the harness: no finding.
func DrainBetweenPhases(f *fabric.Fabric) int {
	return f.DrainMailboxes()
}
