// Package sim stubs the engine: the path suffix internal/sim plus the
// Engine type name make shardsafe treat these methods as the real
// coordination and scheduling surface.
package sim

// Time mirrors the real simulated clock.
type Time int64

// Engine is the stub discrete-event engine.
type Engine struct{ now Time }

func (e *Engine) Run()                 {}
func (e *Engine) RunUntil(t Time)      {}
func (e *Engine) NextAt() (Time, bool) { return 0, false }
func (e *Engine) Now() Time            { return e.now }

func (e *Engine) At(t Time, name string, fn func())    {}
func (e *Engine) After(d Time, name string, fn func()) {}
func (e *Engine) Spawn(name string, fn func())         {}

// Quiesce is a simulated-package function that is NOT part of the
// coordination surface: the runner calling it is a finding.
func (e *Engine) Quiesce() {}
