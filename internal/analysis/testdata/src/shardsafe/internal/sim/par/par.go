// Package par stubs the shard runner: engines may be driven through the
// coordination surface and barriers may be called; anything else in a
// simulated package is off limits.
package par

import (
	"shardsafe/internal/fabric"
	"shardsafe/internal/qpipnic"
	"shardsafe/internal/sim"
)

// Config mirrors the real runner's configuration.
type Config struct {
	Engines  []*sim.Engine
	Exchange func() int
	Fab      *fabric.Fabric
	NIC      *qpipnic.NIC
}

// RunEpochs drives the shards.
func RunEpochs(cfg Config) {
	for _, e := range cfg.Engines {
		e.RunUntil(100) // coordination surface: legal
		if _, ok := e.NextAt(); ok {
			e.Run()
		}
	}
	cfg.Exchange()           // func value bound by core: par cannot name simulated code
	cfg.Fab.DrainMailboxes() // //qpip:barrier from the runner: legal
	cfg.NIC.Tick()           // want `shard runner calls qpipnic.\(\*NIC\).Tick in simulated package shardsafe/internal/qpipnic`
	for _, e := range cfg.Engines {
		e.Quiesce() // want `shard runner calls sim.\(\*Engine\).Quiesce in simulated package shardsafe/internal/sim`
	}
}
