// Package fabric stubs the mailbox machinery. It is exempt from the
// deep-chain check (its whole job is injecting into other shards'
// engines, safely, at barriers) and its drain carries //qpip:barrier.
package fabric

import "shardsafe/internal/sim"

type mail struct {
	eng *sim.Engine
	at  sim.Time
	fn  func()
}

type port struct {
	eng    *sim.Engine
	outbox []mail
}

// Fabric is the stub interconnect.
type Fabric struct{ ports []*port }

// DrainMailboxes injects buffered cross-shard handoffs; runs only at
// epoch barriers with all shard workers parked.
//
//qpip:barrier
func (f *Fabric) DrainMailboxes() int {
	n := 0
	for _, p := range f.ports {
		for i := range p.outbox {
			m := &p.outbox[i]
			m.eng.At(m.at, "fabric.deliver", m.fn) // foreign engines on purpose: exempt package
		}
		n += len(p.outbox)
		p.outbox = p.outbox[:0]
	}
	return n
}

// Flush is barrier code calling barrier code: legal.
//
//qpip:barrier
func (f *Fabric) Flush() int {
	return f.DrainMailboxes()
}
