// Package qpipnic is ordinary simulated code: shallow scheduling on its
// own engine is fine, deep chains and mid-epoch drains are findings.
package qpipnic

import (
	"shardsafe/internal/fabric"
	"shardsafe/internal/sim"
)

// NIC owns its engine one field deep, the repo idiom.
type NIC struct {
	eng *sim.Engine
	fab *fabric.Fabric
}

type chain struct{ n *NIC }

// Tick is ordinary simulated work the shard runner must never call.
func (n *NIC) Tick() {}

// schedule stays on its own engine: bare ident and ident.field are both
// within the component boundary.
func (n *NIC) schedule() {
	eng := n.eng
	eng.At(0, "nic.tick", func() {})
	n.eng.After(0, "nic.later", func() {})
}

// deliverAcross schedules through a two-deep chain: under sharding that
// engine can belong to a foreign shard.
func (c *chain) deliverAcross() {
	c.n.eng.After(0, "nic.chain", func() {}) // want `After on an engine reached through c.n.eng`
}

// flushNow drains mailboxes from ordinary simulated code, mid-epoch.
func (n *NIC) flushNow() {
	n.fab.DrainMailboxes() // want `//qpip:barrier function fabric.\(\*Fabric\).DrainMailboxes called from qpipnic.\(\*NIC\).flushNow`
}

// sameShard documents a legitimate deep chain with a reasoned allow.
func sameShard(c *chain) {
	//lint:qpip-allow shardsafe loopback shares the kernel's engine, same shard by construction
	c.n.eng.After(0, "nic.loop", func() {})
}
