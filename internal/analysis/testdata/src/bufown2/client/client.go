// Package client exercises bufown's interprocedural ownership tracking
// against the pooled stub in bufown2/internal/wire.
package client

import "bufown2/internal/wire"

// nic models a struct that takes ownership by storing.
type nic struct {
	inflight []*wire.Packet
	slot     *wire.Packet
	deferred func()
}

// consumeIt releases its argument: callers hand off ownership here.
func consumeIt(p *wire.Packet) {
	p.Release()
}

// peek only reads: its summary says "does not take ownership".
func peek(p *wire.Packet) int {
	return p.Len
}

// fresh returns an owned packet: the obligation propagates to callers.
func fresh() *wire.Packet {
	return wire.Get()
}

// releaser mirrors the fabric's releasable interface; drop consumes its
// argument through dynamic dispatch (CHA resolves r.Release to the
// Packet method).
type releaser interface{ Release() }

func drop(r releaser) {
	r.Release()
}

// leak acquires and forgets: the classic finding, with the borrowing
// callee named as the non-alibi.
func leak() int {
	p := wire.Get() // want `\*wire.Packet acquired from wire.Get is never released or handed off.*client.peek borrows it without taking ownership`
	return peek(p)
}

// leakFresh shows the obligation following fresh's owned summary.
func leakFresh() {
	q := fresh() // want `\*wire.Packet acquired from client.fresh is never released or handed off`
	q.Retain()   // Retain is a borrow, not a consumption
}

// discarded drops the owned result on the floor.
func discarded() {
	wire.Get() // want `owned \*wire.Packet from wire.Get is discarded`
}

// blanked discards through the blank identifier.
func blanked() {
	_ = wire.Get() // want `owned \*wire.Packet from wire.Get is discarded`
}

// lentAndLost feeds an owned result straight to a borrowing callee.
func lentAndLost() int {
	return peek(wire.Get()) // want `owned \*wire.Packet from wire.Get is passed to client.peek, which does not take ownership`
}

// releasedLocally is clean: acquire, use, release.
func releasedLocally() int {
	p := wire.Get()
	n := peek(p)
	p.Release()
	return n
}

// handedOff is clean: consumeIt's summary consumes the argument.
func handedOff() {
	p := wire.Get()
	consumeIt(p)
}

// droppedDynamically is clean: ownership discharges through the
// interface call inside drop.
func droppedDynamically() {
	p := wire.Get()
	drop(p)
}

// stored is clean: stashing into a field or slice transfers ownership
// to the structure.
func stored(n *nic) {
	p := wire.Get()
	n.slot = p
	q := wire.Get()
	n.inflight = append(n.inflight, q)
}

// continuation is clean: the closure captures the packet and owns it.
func continuation(n *nic) {
	p := wire.Get()
	n.deferred = func() { p.Release() }
}

// returned is clean: the caller inherits the obligation (and this is
// how fresh's owned summary is computed in the first place).
func returned() *wire.Packet {
	p := wire.Get()
	p.Retain()
	return p
}

// aliased is clean: consumption through an alias counts.
func aliased() {
	p := wire.Get()
	q := p
	q.Release()
}

// external is clean by optimism: an unknown callee (no loaded body,
// no intrinsic) is assumed to take ownership.
func external(sink func(*wire.Packet)) {
	p := wire.Get()
	sink(p)
}

// waived documents an out-of-band handoff with an allow.
func waived() *wire.Packet {
	//lint:qpip-allow bufown handed to the hardware model out of band in the same tick
	p := wire.Get()
	peek(p)
	return nil
}
