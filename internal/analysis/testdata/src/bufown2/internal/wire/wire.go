// Package wire is a stand-in for the real pooled packet package: the
// path suffix internal/wire plus the type/function names make bufown's
// intrinsic table apply, so Get returns an owned reference, Release
// consumes its receiver, and Retain is a pure borrow — regardless of
// these stub bodies.
package wire

// Packet is the pooled type.
type Packet struct {
	Len  int
	refs int
}

// Get returns an owned pooled packet (intrinsic: owned result).
func Get() *Packet { return &Packet{refs: 1} }

// Retain adds a reference (intrinsic: borrow).
func (p *Packet) Retain() { p.refs++ }

// Release drops a reference (intrinsic: consumes receiver).
func (p *Packet) Release() { p.refs-- }
