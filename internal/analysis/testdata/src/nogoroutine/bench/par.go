// Package bench stands in for the parallel sweep harness: not a simulated
// package, so goroutines and sync primitives are legal here.
package bench

import "sync"

func fanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}
