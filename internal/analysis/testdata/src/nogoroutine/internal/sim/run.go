// Package sim stands in for the simulation engine: its import path ends
// in internal/sim, so nogoroutine treats it exactly like the real one.
package sim

import "sync"

var mu sync.Mutex // want `sync.Mutex in simulated package`

func spawn(fn func()) {
	go fn() // want `go statement in simulated package`
}

func locked(fn func()) {
	mu.Lock() // want `sync.Lock in simulated package`
	fn()
}

// The pooled free-list exception: the declaration carries the allow, and
// the Get/Put method calls below are deliberately not re-reported — the
// declaration is the single suppressible site.
//
//lint:qpip-allow nogoroutine free list only; object identity never reaches event order
var scratch = sync.Pool{New: func() any { return new([64]byte) }}

func fromPool() *[64]byte {
	b := scratch.Get().(*[64]byte)
	scratch.Put(b)
	return b
}
