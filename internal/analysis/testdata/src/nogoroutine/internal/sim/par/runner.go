// Package par stands in for the conservative parallel shard runner: its
// import path ends in internal/sim/par, the ONE simulated package on the
// nogoroutine allowlist. Worker goroutines, channels, and sync primitives
// are legal here without per-line suppressions — no want comments in this
// file. Everything around it (see ../run.go) is still forbidden.
package par

import "sync"

type worker struct {
	cmd  chan int
	done chan struct{}
}

func (w *worker) loop() {
	for range w.cmd {
		w.done <- struct{}{}
	}
}

func runEpochs(n int) {
	var wg sync.WaitGroup
	workers := make([]*worker, n)
	for i := range workers {
		w := &worker{cmd: make(chan int), done: make(chan struct{})}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop()
		}()
	}
	for _, w := range workers {
		close(w.cmd)
	}
	wg.Wait()
}
