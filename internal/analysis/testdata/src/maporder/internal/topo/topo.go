// Package topo stands in for the switch-graph package: its import path
// ends in internal/topo, so maporder applies the simulated-package
// invariants to it. The real package keeps adjacency in slices indexed
// by port number precisely so no routing or arbitration decision can
// observe Go's randomized map order; this fixture pins both the illegal
// map-walk shape and the legal slice-walk shape.
package topo

import "sort"

type port struct{ busy bool }

// Send is order-sensitive by name and in fact: emitting a frame from a
// port makes the emission sequence observable in the trace.
func (p *port) Send() { p.busy = true }

type swtch struct {
	// ports is the real package's idiom: adjacency in a slice, walked in
	// index order.
	ports []*port
}

// flushByMap walks a switch table keyed by switch ID: the map's random
// iteration order decides which switch emits first — the classic
// nondeterminism the real package exists to avoid.
func flushByMap(sws map[int]*swtch) {
	for _, sw := range sws {
		for _, p := range sw.ports {
			p.Send() // want `calls order-sensitive Send`
		}
	}
}

// neighborsUnsorted leaks map order into the route the caller walks.
func neighborsUnsorted(adj map[int][]int, at int) []int {
	var hops []int
	for next := range adj {
		hops = append(hops, next) // want `appends to hops \(declared outside the loop, never sorted\)`
	}
	_ = at
	return hops
}

// flushBySlice is the real package's shape — adjacency in slices, walked
// in port-index order — and must stay legal.
func flushBySlice(sws []*swtch) {
	for _, sw := range sws {
		for _, p := range sw.ports {
			p.Send()
		}
	}
}

// switchIDsSorted is the canonical collect-then-sort escape hatch for a
// map-keyed table and must stay legal.
func switchIDsSorted(sws map[int]*swtch) []int {
	ids := make([]int, 0, len(sws))
	for id := range sws {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
