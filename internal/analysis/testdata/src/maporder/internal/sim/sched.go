// Package sim stands in for the simulation engine: its import path ends
// in internal/sim, so maporder treats it exactly like the real one.
package sim

import "sort"

type proc struct{ woken bool }

func (p *proc) Wake() { p.woken = true }

type counter struct{ n int }

func (c *counter) Add(d int) { c.n += d }

// wakeAll is the classic determinism bug: Wake runs the woken process, so
// the map's random iteration order becomes observable behaviour.
func wakeAll(procs map[int]*proc) {
	for _, p := range procs {
		p.Wake() // want `calls order-sensitive Wake`
	}
}

// keysUnsorted leaks map order into a slice consumed by the caller.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends to out \(declared outside the loop, never sorted\)`
	}
	return out
}

// keysSorted is the canonical collect-then-sort idiom and must stay legal.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumCounters is commutative: no order-sensitive callee, no outer append.
func sumCounters(m map[string]*counter) int {
	total := 0
	for _, c := range m {
		total += c.n
	}
	return total
}

// bumpAll trips the callee-name heuristic but the increments commute, so
// the site documents itself with an allow.
func bumpAll(m map[string]*counter) {
	for _, c := range m {
		//lint:qpip-allow maporder counter increments commute; order cannot be observed
		c.Add(1)
	}
}
