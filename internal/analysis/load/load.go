// Package load turns package patterns into parsed, type-checked packages
// for qpiplint, using only the standard library and the go command.
//
// The strategy mirrors what golang.org/x/tools/go/packages does in
// LoadAllSyntax mode, cut down to this repo's needs: one `go list -deps
// -export -json` invocation yields every target package's file list plus
// compiled export data for the whole dependency graph (stdlib included),
// and each target is then parsed with go/parser and type-checked with
// go/types, resolving imports through the export data via go/importer's
// lookup mode. Export-data resolution means imports type-check without
// re-walking their sources, and works offline — nothing is fetched.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists patterns with the go command and returns every matched
// package, parsed and type-checked. Dependencies (including intra-module
// ones) are resolved from compiled export data, so only the matched
// packages' sources are parsed.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := ExportLookup(exports)
	imp := importer.ForCompiler(fset, "gc", lookup)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := CheckFiles(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Exports lists patterns with `go list -deps -export -json` and returns
// the import-path -> compiled-export-data-file map for the whole listed
// graph, without parsing anything. The analysistest fixture loader uses it
// to resolve the handful of stdlib imports fixtures make (time, sync, fmt).
func Exports(patterns ...string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ExportLookup builds the go/importer lookup function over a map from
// import path to compiled export-data file.
func ExportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// CheckFiles parses the named files as one package and type-checks them,
// resolving imports through imp. Comments are retained (the suppression
// scanner and the //qpip:hotpath annotation both need them).
func CheckFiles(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return CheckParsed(fset, importPath, files, imp)
}

// CheckParsed type-checks already-parsed files as one package.
func CheckParsed(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			errs = append(errs, err.Error())
		},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err.Error())
	}
	if len(errs) > 0 {
		const max = 10
		if len(errs) > max {
			errs = append(errs[:max], fmt.Sprintf("... and %d more errors", len(errs)-max))
		}
		return nil, fmt.Errorf("type-checking %s:\n\t%s", importPath, strings.Join(errs, "\n\t"))
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
