// Package bufref checks pooled-object lifecycles on the datapath.
//
// The zero-alloc hot path (DESIGN §10) draws its per-packet objects from
// pools: wire.Get() hands out reference-counted *wire.Packet, tcp.
// NewSegment() hands out *tcp.Segment, fabric.NewFrame() hands out
// *fabric.Frame. Each acquire must be balanced — the object is either
// released in the acquiring function or its ownership visibly handed off
// (passed to a callee, stored into a structure, returned). An acquire
// that does neither leaks the object out of its pool; in pooled mode
// that quietly regrows the allocation rate the PR 2 work removed, and a
// use after Release is a recycling race that corrupts a later packet.
//
// Two checks, both intra-procedural and syntactic by design (the runtime
// alloc-regression pins remain the backstop for inter-procedural flows):
//
//  1. Acquire balance: for `v := wire.Get()` (etc.), the function must
//     either call v.Release() on some path, or let v escape — v passed
//     as a call argument (ownership handoff, e.g. fab.Send(frame, ...)),
//     assigned to a field / element / outer variable, stored in a
//     composite literal, or returned.
//
//  2. Use after release in straight-line code: after a statement-level
//     v.Release() in a block, any later use of v in that block (before a
//     reassignment of v) is flagged. Deferred releases are exempt — they
//     run at function exit by definition.
//
// Documented handoffs that the syntax can't see can carry
// "//lint:qpip-allow bufref <reason>".
package bufref

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the bufref check.
var Analyzer = &framework.Analyzer{
	Name: "bufref",
	Doc:  "check pooled wire.Packet / tcp.Segment / fabric.Frame acquire-release balance and use-after-release",
	Run:  run,
}

// pooledAcquire describes one pool's acquire function. Packages are
// matched by import-path suffix so the analysistest fixtures can model
// them with small stand-in packages.
type pooledAcquire struct {
	pkgSuffix string // import-path tail of the defining package
	fn        string // acquiring function name
	what      string // human name of the pooled object
}

var acquires = []pooledAcquire{
	{"internal/wire", "Get", "wire.Packet"},
	{"internal/tcp", "NewSegment", "tcp.Segment"},
	{"internal/fabric", "NewFrame", "fabric.Frame"},
}

// pooledPkgSuffixes marks the packages whose Release methods participate
// in the use-after-release check.
func isPooledType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	name := named.Obj().Name()
	for _, a := range acquires {
		if !pkgMatches(path, a.pkgSuffix) {
			continue
		}
		switch name {
		case "Packet", "Segment", "Frame":
			return true
		}
	}
	return false
}

func pkgMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			checkAcquires(pass, body)
			checkUseAfterRelease(pass, body)
			return true
		})
	}
	return nil
}

// matchAcquire reports which pool, if any, the call acquires from.
func matchAcquire(pass *framework.Pass, call *ast.CallExpr) (pooledAcquire, bool) {
	fn := framework.CalleeName(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return pooledAcquire{}, false
	}
	for _, a := range acquires {
		if fn.Name() == a.fn && pkgMatches(fn.Pkg().Path(), a.pkgSuffix) {
			return a, true
		}
	}
	return pooledAcquire{}, false
}

// checkAcquires enforces release-or-escape for each `v := acquire()` in
// the function body (direct assignments to a plain identifier only; an
// acquire whose result feeds straight into a call or field is already an
// escape).
func checkAcquires(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested function literals are visited as their own bodies.
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		acq, ok := matchAcquire(pass, call)
		if !ok {
			return true
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := objectOf(pass, id)
		if obj == nil {
			return true
		}
		if !releasedOrEscaped(pass, body, asg, obj) {
			pass.Reportf(asg.Pos(),
				"pooled %s acquired into %q is neither released nor handed off in this function: call %s.Release() on every return path or pass ownership on",
				acq.what, id.Name, id.Name)
		}
		return true
	})
}

func objectOf(pass *framework.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// releasedOrEscaped scans the function body after the acquire for either
// a v.Release() call or an ownership escape of v.
func releasedOrEscaped(pass *framework.Pass, body *ast.BlockStmt, acquire *ast.AssignStmt, obj types.Object) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok || n == nil || n.End() <= acquire.End() {
			return !ok
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Release() — explicit release.
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Release" {
				if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && pass.TypesInfo.Uses[id] == obj {
					ok = true
					return false
				}
			}
			// v as a call argument — ownership handoff.
			for _, arg := range n.Args {
				if id, isID := ast.Unparen(arg).(*ast.Ident); isID && pass.TypesInfo.Uses[id] == obj {
					ok = true
					return false
				}
			}
		case *ast.AssignStmt:
			// v stored somewhere non-local: field, element, or any LHS that
			// is not the plain identifier v itself.
			for i, rhs := range n.Rhs {
				if id, isID := ast.Unparen(rhs).(*ast.Ident); isID && pass.TypesInfo.Uses[id] == obj {
					if i < len(n.Lhs) {
						if lhs, isID := n.Lhs[i].(*ast.Ident); isID && pass.TypesInfo.Uses[lhs] == obj {
							continue // v = v, meaningless
						}
					}
					ok = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					e = kv.Value
				}
				if id, isID := ast.Unparen(e).(*ast.Ident); isID && pass.TypesInfo.Uses[id] == obj {
					ok = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, isID := ast.Unparen(res).(*ast.Ident); isID && pass.TypesInfo.Uses[id] == obj {
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}

// checkUseAfterRelease flags straight-line uses of a pooled object after
// a statement-level v.Release() in the same block.
func checkUseAfterRelease(pass *framework.Pass, body *ast.BlockStmt) {
	var walkBlock func(stmts []ast.Stmt)
	walkBlock = func(stmts []ast.Stmt) {
		// released maps object -> the Release statement index.
		released := map[types.Object]bool{}
		for _, st := range stmts {
			// Recurse into nested blocks with a fresh tracking scope: the
			// straight-line guarantee holds only within one block.
			switch s := st.(type) {
			case *ast.BlockStmt:
				walkBlock(s.List)
				continue
			case *ast.IfStmt:
				walkBlock(s.Body.List)
				if alt, ok := s.Else.(*ast.BlockStmt); ok {
					walkBlock(alt.List)
				}
				continue
			case *ast.ForStmt:
				walkBlock(s.Body.List)
				continue
			case *ast.RangeStmt:
				walkBlock(s.Body.List)
				continue
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body)
					}
				}
				continue
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body)
					}
				}
				continue
			case *ast.DeferStmt:
				continue // deferred releases run at exit; not straight-line
			}

			// Any use of an already-released object in this statement?
			for obj := range released {
				if use := findUse(pass, st, obj); use != nil {
					pass.Reportf(use.Pos(),
						"use of pooled %q after %s.Release(): the object may already be recycled into another in-flight packet",
						obj.Name(), obj.Name())
					delete(released, obj) // one report per release
				}
			}

			// Reassignment kills the released mark.
			if asg, ok := st.(*ast.AssignStmt); ok {
				for _, lhs := range asg.Lhs {
					if id, isID := lhs.(*ast.Ident); isID {
						if obj := objectOf(pass, id); obj != nil {
							delete(released, obj)
						}
					}
				}
			}

			// A statement-level v.Release() marks v released.
			if es, ok := st.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
							if obj := pass.TypesInfo.Uses[id]; obj != nil && isPooledType(obj.Type()) {
								released[obj] = true
							}
						}
					}
				}
			}
		}
	}
	walkBlock(body.List)
}

// findUse returns the first identifier in stmt that refers to obj, or nil.
func findUse(pass *framework.Pass, stmt ast.Stmt, obj types.Object) ast.Node {
	var found ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = id
			return false
		}
		return true
	})
	return found
}
