package bufref_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bufref"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, bufref.Analyzer, "../testdata/src", "bufref")
}
