// Package shardsafe verifies the conservative parallel runner's isolation
// contract (DESIGN §16): during an epoch every shard runs on its own
// engine, and the ONLY way state crosses shards is the fabric's mailbox
// machinery, drained single-threaded at epoch barriers. Three checks,
// each one a way that contract has nearly been broken:
//
//  1. Barrier confinement. A function whose doc comment carries
//     //qpip:barrier (fabric's DrainMailboxes, core's exchange) runs with
//     every shard worker parked; calling one from ordinary simulated code
//     would inject cross-shard events mid-epoch, racing shard workers.
//     Barrier functions may be called only from the shard runner
//     (internal/sim/par), from other barrier functions, or from harness
//     code outside the simulation.
//
//  2. Runner discipline. internal/sim/par coordinates engines from worker
//     goroutines, so every call it makes into simulated code happens on
//     the wrong side of the determinism fence. The runner may only drive
//     engines through the coordination surface (Run, RunUntil, NextAt,
//     Now) and call barrier functions at barriers; any other call edge
//     into a simulated package is a finding. (The Exchange hook is a
//     func value bound by core — func-value calls don't even form graph
//     edges, which is the point: par cannot name simulated code.)
//
//  3. Foreign-engine scheduling. Inside simulated packages, scheduling
//     (At / After / Spawn) is legitimate on your OWN engine — held
//     directly (eng) or one field away (n.eng, k.eng). An engine reached
//     through a deeper chain (l.k.eng, peer.nic.eng) is how code reaches
//     ACROSS a component boundary, which under sharding can be a foreign
//     shard's engine: a heap race and a determinism hole. The fabric
//     (whose mailboxes are exactly this, done safely), the engine's own
//     package, and core's wiring layer are exempt; everywhere else the
//     deep chain is flagged and the few legitimate same-shard cases
//     carry a reasoned //lint:qpip-allow shardsafe.
//
// The depth heuristic is deliberately syntactic: ownership of an engine
// is a design property the type system doesn't encode, so the check
// draws the line where the repo's idiom draws it (components store their
// own engine one field deep) and makes anything beyond that justify
// itself in a suppression comment.
package shardsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/interproc"
)

const name = "shardsafe"

// BarrierAnnotation marks functions that run only at epoch barriers.
const BarrierAnnotation = "qpip:barrier"

// Analyzer is the whole-program shard-isolation check.
var Analyzer = &interproc.Analyzer{
	Name: name,
	Doc:  "verify shard isolation: //qpip:barrier confinement, runner call discipline, and no scheduling on engines reached across component boundaries",
	Run:  run,
}

// engineMethods the runner may call: the coordination surface.
var runnerAllowed = map[string]bool{"Run": true, "RunUntil": true, "NextAt": true, "Now": true}

// schedulers are the engine methods that inject events or processes.
var schedulers = map[string]bool{"At": true, "After": true, "Spawn": true}

// deepExempt lists package suffixes exempt from the foreign-engine check:
// the mailbox machinery itself, the engine package, and core's wiring.
var deepExempt = []string{"internal/fabric", "internal/sim", "internal/sim/par", "internal/core"}

func run(pass *interproc.Pass) error {
	g := pass.Prog.Graph

	for _, n := range g.All() {
		// Check 1: barrier confinement, reported at the offending call site.
		if n.Annotations[BarrierAnnotation] {
			for _, e := range n.In {
				callerPath := e.Caller.Unit.Path
				if framework.ShardRunnerPackage(callerPath) ||
					!framework.SimulatedPackage(callerPath) ||
					e.Caller.Annotations[BarrierAnnotation] {
					continue
				}
				pass.Reportf(e.Pos,
					"//%s function %s called from %s, which is neither the shard runner nor a barrier function: mailbox drains may only run at epoch barriers with all shard workers parked",
					BarrierAnnotation, n.Name(), e.Caller.Name())
			}
		}

		// Check 2: runner discipline on every edge leaving internal/sim/par.
		if framework.ShardRunnerPackage(n.Unit.Path) {
			for _, e := range n.Out {
				calleePath := e.Callee.Unit.Path
				if !framework.SimulatedPackage(calleePath) || framework.ShardRunnerPackage(calleePath) {
					continue
				}
				if e.Callee.Annotations[BarrierAnnotation] {
					continue
				}
				if engineMethod(e.Callee.Fn) && runnerAllowed[e.Callee.Fn.Name()] {
					continue
				}
				pass.Reportf(e.Pos,
					"shard runner calls %s in simulated package %s: the runner may only drive engines (Run/RunUntil/NextAt/Now) and //%s functions",
					e.Callee.Name(), calleePath, BarrierAnnotation)
			}
		}
	}

	// Check 3: deep-chain scheduling, purely syntactic per unit.
	for _, u := range pass.Prog.Units {
		if !framework.SimulatedPackage(u.Path) || exemptFromDeep(u.Path) {
			continue
		}
		for _, f := range u.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !schedulers[sel.Sel.Name] {
					return true
				}
				fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
				if !ok || !engineMethod(fn) {
					return true
				}
				if recv := ast.Unparen(sel.X); !shallowEngine(recv) {
					pass.Reportf(call.Lparen,
						"%s on an engine reached through %s: scheduling across a component boundary can target a foreign shard's engine — cross-shard work must go through the fabric mailboxes (drained at epoch barriers)",
						sel.Sel.Name, types.ExprString(recv))
				}
				return true
			})
		}
	}
	return nil
}

// engineMethod reports whether fn is a method of sim.Engine (matched by
// receiver type name plus package suffix, so fixtures can model it).
func engineMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" || named.Obj().Pkg() == nil {
		return false
	}
	return framework.PathHasSuffix(named.Obj().Pkg().Path(), "internal/sim")
}

// shallowEngine reports whether the engine expression stays within the
// component's own state: a bare identifier (eng) or one field away
// (n.eng). Anything deeper crosses a component boundary.
func shallowEngine(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		_, ok := ast.Unparen(e.X).(*ast.Ident)
		return ok
	}
	return false
}

func exemptFromDeep(path string) bool {
	for _, suf := range deepExempt {
		if framework.PathHasSuffix(path, suf) {
			return true
		}
	}
	return false
}
