package shardsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/shardsafe"
)

func TestFixtures(t *testing.T) {
	analysistest.RunProgram(t, shardsafe.Analyzer, "../testdata/src", "shardsafe")
}
