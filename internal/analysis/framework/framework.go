// Package framework is the skeleton under qpiplint's domain analyzers: a
// deliberately small, dependency-free mirror of the golang.org/x/tools
// go/analysis shape (Analyzer, Pass, Diagnostic). The container image that
// builds this repo carries only the Go toolchain, so the suite is built on
// the standard library's go/ast + go/types instead of x/tools; the API is
// kept close enough that the analyzers would port to a real multichecker
// by swapping one import.
//
// The framework also owns the two repo-wide policies every analyzer shares:
//
//   - which packages count as "simulated" (the paper's firmware FSMs, the
//     protocol stacks, and everything else that must stay deterministic
//     under the DESIGN §8 replay contract), versus harness code (bench,
//     cmd, scripts, examples) that legitimately touches wall clocks and
//     goroutines; and
//
//   - the suppression convention: a finding is dropped when the flagged
//     line, or the line directly above it, carries a comment of the form
//
//     //lint:qpip-allow <analyzer> <reason>
//
//     The reason is mandatory — an allow with no justification does not
//     suppress anything, so every exception in the tree documents itself.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:qpip-allow suppression comments.
	Name string
	// Doc is the one-paragraph description shown by qpiplint -help.
	Doc string
	// Run inspects one package via pass and reports findings through
	// pass.Reportf. A non-nil error aborts the whole lint run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a suppression-filtered diagnostic with its analyzer and
// resolved position, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies analyzers to one loaded package and returns the findings
// that survive //lint:qpip-allow suppression, sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	allow := CollectAllows(fset, files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			pos := fset.Position(d.Pos)
			// Tests drive the simulation from outside and may use wall
			// clocks, goroutines and fmt freely; under `go vet` the package
			// unit includes its _test.go files, so exempt them here.
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			if allow.Allows(a.Name, pos) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// AllowSet maps file -> line -> analyzer names allowed on that line. The
// interprocedural analyzers consult it directly: hotprop treats an allow
// on a call site as severing that propagation edge, so the set is part of
// the framework's public surface, not just Run's internal filter.
type AllowSet map[string]map[int]map[string]bool

// AllowPrefix is the suppression comment marker. The full form is
// "//lint:qpip-allow <analyzer> <reason...>"; the reason is required.
const AllowPrefix = "lint:qpip-allow"

// CollectAllows scans the files' comments for //lint:qpip-allow markers.
// Call it once per package (or, for whole-program analyzers, once over
// every loaded file) and query with Allows.
func CollectAllows(fset *token.FileSet, files []*ast.File) AllowSet {
	set := AllowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
				if len(fields) < 2 {
					continue // analyzer name plus a reason are both required
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				// The allow covers its own line (trailing comment) and the
				// line below it (own-line comment above the flagged code).
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					m := lines[ln]
					if m == nil {
						m = map[string]bool{}
						lines[ln] = m
					}
					m[fields[0]] = true
				}
			}
		}
	}
	return set
}

// Allows reports whether a finding by analyzer at pos is suppressed.
func (s AllowSet) Allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

// Merge folds other into s (whole-program allow collection).
func (s AllowSet) Merge(other AllowSet) {
	for file, lines := range other {
		m := s[file]
		if m == nil {
			s[file] = lines
			continue
		}
		for ln, names := range lines {
			if m[ln] == nil {
				m[ln] = names
				continue
			}
			for n := range names {
				m[ln][n] = true
			}
		}
	}
}

// PathHasSuffix reports whether the import path equals suffix or ends in
// "/"+suffix — the package-matching convention every analyzer uses so the
// analysistest fixtures can model real packages with small stand-ins.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// simulatedSuffixes lists the import-path tails of the simulated packages:
// everything modeling the paper's hardware, firmware, and protocol stacks.
// Matching is by path suffix (with a segment boundary) rather than exact
// path so the analysistest fixtures can stand up small packages like
// "simclock/internal/tcp" that the analyzers treat exactly like the real
// tree. Harness code — internal/bench (the PR 2 parallel sweep runner),
// cmd/, scripts/, examples/, and the analysis tree itself — is absent from
// the list and therefore exempt.
var simulatedSuffixes = []string{
	"internal/sim",
	"internal/sim/par", // suffix matching is per-entry: the subpackage needs its own
	"internal/tcp",
	"internal/udp",
	"internal/inet",
	"internal/fabric",
	"internal/topo",
	"internal/qpipnic",
	"internal/verbs",
	"internal/hw",
	"internal/hostos",
	"internal/core",
	"internal/buf",
	"internal/pool",
	"internal/wire",
	"internal/fault",
	"internal/trace",
	"internal/gige",
	"internal/gm",
	"internal/nbd",
	"internal/storage",
	"internal/params",
}

// SimulatedPackage reports whether the import path names a package whose
// code runs inside the deterministic simulation and is therefore subject
// to the simclock / nogoroutine / maporder invariants.
func SimulatedPackage(path string) bool {
	for _, suf := range simulatedSuffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// ShardRunnerPackage reports whether the import path names the
// conservative parallel runner (internal/sim/par) — the ONE simulated
// package where goroutines and sync primitives are legal. Its whole job is
// to drive shard engines on worker goroutines and park them at epoch
// barriers; every other simulated package must still model concurrency
// with sim.Proc/sim.Server, so nogoroutine exempts exactly this path.
func ShardRunnerPackage(path string) bool {
	const suf = "internal/sim/par"
	return path == suf || strings.HasSuffix(path, "/"+suf)
}

// CalleeName resolves the called function/method object of call, or nil
// for calls through function-typed variables and built-ins.
func CalleeName(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPanicCall reports whether call invokes the panic built-in.
func IsPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
