// Package hotalloc keeps //qpip:hotpath functions allocation-free at
// compile time.
//
// PR 2 made the steady-state datapath allocate nothing (DESIGN §10); the
// guarantee is pinned by runtime testing.AllocsPerRun regressions, which
// only cover the benchmarked paths. This analyzer makes the property
// local and total: a function whose doc comment contains the line
//
//	//qpip:hotpath
//
// is checked for the allocation patterns that have actually bitten this
// codebase:
//
//   - function literals (a closure capturing variables allocates its
//     environment per call — bind continuations once at construction
//     instead, as chainRun and Proc do);
//   - calls into package fmt (Sprintf and friends allocate; hot paths
//     use precomputed names);
//   - string concatenation with a non-constant operand;
//   - interface boxing: passing or converting a concrete non-pointer
//     value to an interface parameter heap-allocates the value (pointer,
//     func, chan and map values are word-sized and do not);
//   - append to a function-local slice declared without capacity (grows
//     per call; fields backed by reused arrays are fine and exempt).
//
// Arguments of panic(...) are exempt everywhere: a hot path may format
// its dying words. Known-cold branches inside a hot function carry
// "//lint:qpip-allow hotalloc <reason>" (e.g. verbs error returns, the
// legacy heap queue).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Annotation marks a function as hot-path; it must appear as its own
// line inside the function's doc comment.
const Annotation = "qpip:hotpath"

// Analyzer is the hotalloc check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs (closures, fmt, boxing, string concat, growing append) in //qpip:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == Annotation {
			return true
		}
	}
	return false
}

func check(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Spans of panic(...) argument lists; anything inside is exempt.
	var panicSpans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && framework.IsPanicCall(info, call) {
			panicSpans = append(panicSpans, span{call.Lparen, call.Rparen})
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if s.lo <= pos && pos <= s.hi {
				return true
			}
		}
		return false
	}

	// Local slices declared without capacity: var s []T, s := []T{},
	// s := make([]T, n) (no cap).
	unsized := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil && isSlice(obj.Type()) {
						unsized[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						unsized[obj] = true
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
						if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(rhs.Args) < 3 {
							unsized[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inPanic(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure in //%s function %s allocates its environment per call: bind the continuation once at construction",
				Annotation, fd.Name.Name)
			return false // don't double-report the closure's own body
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) && info.Types[n].Value == nil {
				pass.Reportf(n.Pos(),
					"non-constant string concatenation in //%s function %s allocates: precompute the string",
					Annotation, fd.Name.Name)
			}
		}
		return true
	})

	// Growing appends to unsized locals.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inPanic(call.Pos()) {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[dst]; obj != nil && unsized[obj] {
			pass.Reportf(call.Pos(),
				"append to unsized local slice %q in //%s function %s grows per call: preallocate with capacity or reuse a field-backed array",
				dst.Name, Annotation, fd.Name.Name)
		}
		return true
	})
}

// checkCall flags fmt calls and interface-boxing arguments.
func checkCall(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	// panic(x) boxes x into its any parameter, but the panic exemption
	// covers the whole argument list: a hot path may format its dying words.
	if framework.IsPanicCall(info, call) {
		return
	}

	// Conversion to an interface type: any(x), io.Reader(x), ...
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if t := info.Types[call.Args[0]].Type; t != nil && boxes(t) {
				pass.Reportf(call.Pos(),
					"conversion of %s to interface in //%s function %s heap-allocates the value",
					t.String(), Annotation, fd.Name.Name)
			}
		}
		return
	}

	fn := framework.CalleeName(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s in //%s function %s allocates: hot paths use precomputed strings",
			fn.Name(), Annotation, fd.Name.Name)
		return
	}

	// Interface-typed parameters receiving concrete non-pointer values.
	sigTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice itself; nothing boxes here
			}
			st, isSlice := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !isSlice {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || !boxes(at) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"passing %s to interface parameter in //%s function %s heap-allocates the value (boxing)",
			at.String(), Annotation, fd.Name.Name)
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: true for concrete non-reference types (structs, strings,
// slices, numbers held in multiword forms...), false for pointers and
// other word-sized reference kinds, interfaces, and untyped nil.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer {
			return false
		}
		return true
	}
	return true
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

type span struct{ lo, hi token.Pos }
