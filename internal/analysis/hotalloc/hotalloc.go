// Package hotalloc keeps //qpip:hotpath functions allocation-free at
// compile time.
//
// PR 2 made the steady-state datapath allocate nothing (DESIGN §10); the
// guarantee is pinned by runtime testing.AllocsPerRun regressions, which
// only cover the benchmarked paths. This analyzer makes the property
// local and total: a function whose doc comment contains the line
//
//	//qpip:hotpath
//
// is checked for the allocation patterns that have actually bitten this
// codebase:
//
//   - function literals (a closure capturing variables allocates its
//     environment per call — bind continuations once at construction
//     instead, as chainRun and Proc do);
//   - calls into package fmt (Sprintf and friends allocate; hot paths
//     use precomputed names), and references to fmt functions in value
//     position (f := fmt.Sprintf allocates just the same when f is
//     called, and the method value itself may allocate);
//   - string concatenation with a non-constant operand;
//   - interface boxing: passing or converting a concrete non-pointer
//     value to an interface parameter heap-allocates the value (pointer,
//     func, chan and map values are word-sized and do not);
//   - append to a function-local slice declared without capacity (grows
//     per call; fields backed by reused arrays are fine and exempt);
//   - append to a freshly created empty slice — the clone idiom
//     append([]T(nil), src...) / append(x[:0:0], src...) / append([]T{},
//     a, b) — which allocates a new backing array on every call no
//     matter how it is spelled.
//
// Arguments of panic(...) are exempt everywhere: a hot path may format
// its dying words. Known-cold branches inside a hot function carry
// "//lint:qpip-allow hotalloc <reason>" (e.g. verbs error returns, the
// legacy heap queue).
//
// The companion whole-program analyzer hotprop (internal/analysis/
// hotprop) reuses CheckFunc to apply these same patterns to every
// function reachable from an annotated root through the call graph.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Annotation marks a function as hot-path; it must appear as its own
// line inside the function's doc comment.
const Annotation = "qpip:hotpath"

// Analyzer is the hotalloc check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs (closures, fmt, boxing, string concat, growing append) in //qpip:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			CheckFunc(pass.TypesInfo, fd, pass.Reportf)
		}
	}
	return nil
}

// Annotated reports whether the declaration carries //qpip:hotpath.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == Annotation {
			return true
		}
	}
	return false
}

// CheckFunc applies every allocation pattern to one function body,
// reporting through report. It is shared between this analyzer (which
// checks annotated functions) and hotprop (which checks functions the
// call graph proves reachable from an annotated root).
func CheckFunc(info *types.Info, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	checkFunc(info, fd, "//"+Annotation+" function", report)
}

// CheckReachable is CheckFunc with diagnostics worded for functions that
// are not themselves annotated but are reachable from an annotated root
// (hotprop's case): "hot-reachable function" instead of the directive.
func CheckReachable(info *types.Info, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	checkFunc(info, fd, "hot-reachable function", report)
}

func checkFunc(info *types.Info, fd *ast.FuncDecl, desc string, report func(pos token.Pos, format string, args ...any)) {
	// Spans of panic(...) argument lists; anything inside is exempt.
	var panicSpans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && framework.IsPanicCall(info, call) {
			panicSpans = append(panicSpans, span{call.Lparen, call.Rparen})
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if s.lo <= pos && pos <= s.hi {
				return true
			}
		}
		return false
	}

	// Local slices declared without capacity: var s []T, s := []T{},
	// s := make([]T, n) (no cap), s := append(<fresh empty>, ...).
	unsized := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil && isSlice(obj.Type()) {
						unsized[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						unsized[obj] = true
					}
				case *ast.CallExpr:
					if id2, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
						if b, ok := info.Uses[id2].(*types.Builtin); ok {
							switch {
							case b.Name() == "make" && len(rhs.Args) < 3:
								unsized[obj] = true
							case b.Name() == "append" && len(rhs.Args) > 0 && isFreshEmptySlice(info, rhs.Args[0]):
								// s := append([]T(nil), ...) — the clone is
								// reported below; s also stays growth-tracked.
								unsized[obj] = true
							}
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inPanic(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(),
				"closure in %s %s allocates its environment per call: bind the continuation once at construction",
				desc, fd.Name.Name)
			return false // don't double-report the closure's own body
		case *ast.CallExpr:
			checkCall(info, fd, desc, n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) && info.Types[n].Value == nil {
				report(n.Pos(),
					"non-constant string concatenation in %s %s allocates: precompute the string",
					desc, fd.Name.Name)
			}
		}
		return true
	})

	// Growing appends: to unsized locals, and to freshly created empty
	// slices (the spread-clone idiom allocates a new array per call).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inPanic(call.Pos()) {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if isFreshEmptySlice(info, call.Args[0]) {
			idiom := "append to a freshly created empty slice"
			if call.Ellipsis.IsValid() {
				idiom = "spread append to a freshly created empty slice"
			}
			report(call.Pos(),
				"%s in %s %s allocates a new backing array per call: reuse a field-backed buffer",
				idiom, desc, fd.Name.Name)
			return true
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[dst]; obj != nil && unsized[obj] {
			report(call.Pos(),
				"append to unsized local slice %q in %s %s grows per call: preallocate with capacity or reuse a field-backed array",
				dst.Name, desc, fd.Name.Name)
		}
		return true
	})

	// fmt functions referenced in value position: f := fmt.Sprintf (and
	// passing fmt.Sprintf to a helper) escapes the call-site check above
	// but allocates identically when invoked.
	callFuns := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || callFuns[n] || inPanic(n.Pos()) {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
			return true
		}
		report(n.Pos(),
			"reference to fmt.%s in %s %s: calling it through a variable allocates just the same",
			fn.Name(), desc, fd.Name.Name)
		return false
	})
}

// isFreshEmptySlice reports whether e creates a zero-length slice with no
// reusable backing: []T{}, []T(nil), x[:0:0] / x[0:0:0]. Appending to
// such an expression must allocate.
func isFreshEmptySlice(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if tv, ok := info.Types[e]; ok && isSlice(tv.Type) {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		// A conversion []T(nil).
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && isSlice(tv.Type) && len(e.Args) == 1 {
			if argTV, ok := info.Types[e.Args[0]]; ok && argTV.IsNil() {
				return true
			}
		}
	case *ast.SliceExpr:
		// x[:0:0] or x[0:0:0]: capacity zero forces reallocation.
		if e.Slice3 && isConstZero(info, e.High) && isConstZero(info, e.Max) {
			return e.Low == nil || isConstZero(info, e.Low)
		}
	}
	return false
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// checkCall flags fmt calls and interface-boxing arguments.
func checkCall(info *types.Info, fd *ast.FuncDecl, desc string, call *ast.CallExpr, report func(pos token.Pos, format string, args ...any)) {
	// panic(x) boxes x into its any parameter, but the panic exemption
	// covers the whole argument list: a hot path may format its dying words.
	if framework.IsPanicCall(info, call) {
		return
	}

	// Conversion to an interface type: any(x), io.Reader(x), ...
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if t := info.Types[call.Args[0]].Type; t != nil && boxes(t) {
				report(call.Pos(),
					"conversion of %s to interface in %s %s heap-allocates the value",
					t.String(), desc, fd.Name.Name)
			}
		}
		return
	}

	fn := framework.CalleeName(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(),
			"fmt.%s in %s %s allocates: hot paths use precomputed strings",
			fn.Name(), desc, fd.Name.Name)
		return
	}

	// Interface-typed parameters receiving concrete non-pointer values.
	sigTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice itself; nothing boxes here
			}
			st, isSlice := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !isSlice {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || !boxes(at) {
			continue
		}
		report(arg.Pos(),
			"passing %s to interface parameter in %s %s heap-allocates the value (boxing)",
			at.String(), desc, fd.Name.Name)
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: true for concrete non-reference types (structs, strings,
// slices, numbers held in multiword forms...), false for pointers and
// other word-sized reference kinds, interfaces, and untyped nil.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer {
			return false
		}
		return true
	}
	return true
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

type span struct{ lo, hi token.Pos }
