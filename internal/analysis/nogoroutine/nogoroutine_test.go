package nogoroutine_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nogoroutine"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "../testdata/src", "nogoroutine")
}
