// Package nogoroutine forbids raw goroutines and sync primitives in
// simulated packages.
//
// The simulation engine is single-threaded by contract: events fire in
// (timestamp, sequence) order, and "concurrency" inside the model is
// expressed as sim.Proc coroutines or sim.Server occupancy — both of
// which hand control back to the engine at deterministic points. A raw
// `go` statement introduces true scheduler nondeterminism that no replay
// can pin down, and sync primitives (mutexes, wait groups, atomics) are
// the smell that someone is about to need one.
//
// Flagged, inside simulated packages (framework.SimulatedPackage):
//
//   - every `go` statement — model concurrency with sim.Proc / sim.Server;
//   - every reference to a symbol from sync or sync/atomic, including
//     sync.Pool: the datapath free lists built on sync.Pool are legal but
//     deliberate, so each carries a //lint:qpip-allow nogoroutine comment
//     explaining why object identity can't leak into event order.
//
// The PR 2 parallel sweep harness lives in internal/bench, which is not a
// simulated package and therefore exempt, as are cmd/, scripts/ and
// _test.go files.
//
// One simulated package is allowlisted: internal/sim/par, the conservative
// parallel shard runner (framework.ShardRunnerPackage). Its entire purpose
// is to drive shard engines on worker goroutines and park them at epoch
// barriers, so go statements and sync primitives are legal there — and
// ONLY there. Model code must never reach for the runner's tools; it still
// expresses concurrency as sim.Proc/sim.Server inside one engine.
package nogoroutine

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// receiverIsPool reports whether fn is a method of sync.Pool.
func receiverIsPool(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// Analyzer is the nogoroutine check.
var Analyzer = &framework.Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid go statements and sync / sync-atomic primitives in simulated packages",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !framework.SimulatedPackage(pass.Pkg.Path()) {
		return nil
	}
	if framework.ShardRunnerPackage(pass.Pkg.Path()) {
		// The shard-runner allowlist: worker goroutines and barrier
		// synchronization are this package's whole job. The other simulated
		// invariants (simclock, maporder, ...) still apply to it.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement in simulated package %s: the engine is single-threaded; model concurrency with sim.Proc/sim.Server",
					pass.Pkg.Path())
			case *ast.SelectorExpr:
				// A qualified reference sync.X / atomic.X: resolve the
				// selected object and test its package of origin.
				obj := pass.TypesInfo.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "sync", "sync/atomic":
					// Methods of sync.Pool (Get/Put) are not re-reported:
					// the pool's declaration is the single site that carries
					// (or is denied) the //lint:qpip-allow.
					if fn, isFn := obj.(*types.Func); isFn && receiverIsPool(fn) {
						return true
					}
					pass.Reportf(n.Pos(),
						"%s.%s in simulated package %s: simulated code must not synchronize; use sim.Proc/sim.Server (pooled free lists need an explicit //lint:qpip-allow)",
						obj.Pkg().Name(), obj.Name(), pass.Pkg.Path())
					return false // one report per reference, not per nested selector
				}
			}
			return true
		})
	}
	return nil
}
