// Package analysistest runs one qpiplint analyzer over a golden fixture
// tree and checks its findings against inline expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// A fixture lives under internal/analysis/testdata/src/<name>/...; every
// directory holding .go files is one package whose import path is its
// path relative to testdata/src (so "simclock/internal/tcp" ends in a
// simulated-package suffix and is linted exactly like the real tree).
// Fixture packages may import each other by those paths and may import
// the standard library; stdlib imports resolve through compiled export
// data from one `go list -deps -export -json` call.
//
// Expectations are comments of the form
//
//	code() // want `regexp`
//	code() // want "regexp"
//
// Each finding must match one want on its line, and each want must be
// matched by a finding; //lint:qpip-allow suppression runs before
// matching, so an allowed line simply carries no want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/interproc"
	"repro/internal/analysis/load"
)

// fixturePkg is one package of the fixture tree before type checking.
type fixturePkg struct {
	path    string // import path, relative to the src root
	files   []*ast.File
	imports []string
}

// Run loads every fixture package under root/fixture, applies a to each,
// and compares the surviving findings with the // want expectations.
func Run(t *testing.T, a *framework.Analyzer, root, fixture string) {
	t.Helper()

	fset := token.NewFileSet()
	pkgs, err := parseFixture(fset, root, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s has no packages under %s", fixture, root)
	}

	imp, err := buildImporter(fset, pkgs)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}

	var findings []framework.Finding
	for _, fp := range sortTopo(pkgs) {
		checked, err := load.CheckParsed(fset, fp.path, fp.files, imp)
		if err != nil {
			t.Fatalf("type-checking fixture package %s: %v", fp.path, err)
		}
		imp.checked[fp.path] = checked.Types
		fs, err := framework.Run(checked.Fset, checked.Files, checked.Types, checked.Info, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, fp.path, err)
		}
		findings = append(findings, fs...)
	}

	match(t, fset, pkgs, findings)
}

// RunProgram loads the whole fixture tree under root/fixture into one
// interproc.Program, applies the whole-program analyzer a, and compares
// findings with // want expectations — the program-analyzer twin of Run.
// Unlike Run, all fixture packages are checked first and then analyzed
// together, since call chains are expected to cross package boundaries.
func RunProgram(t *testing.T, a *interproc.Analyzer, root, fixture string) {
	t.Helper()

	fset := token.NewFileSet()
	pkgs, err := parseFixture(fset, root, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s has no packages under %s", fixture, root)
	}

	imp, err := buildImporter(fset, pkgs)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}

	var units []*interproc.Unit
	for _, fp := range sortTopo(pkgs) {
		checked, err := load.CheckParsed(fset, fp.path, fp.files, imp)
		if err != nil {
			t.Fatalf("type-checking fixture package %s: %v", fp.path, err)
		}
		imp.checked[fp.path] = checked.Types
		units = append(units, &interproc.Unit{
			Path: fp.path, Files: checked.Files, Types: checked.Types, Info: checked.Info,
		})
	}

	prog := interproc.NewProgram(fset, units)
	findings, err := interproc.Run(prog, []*interproc.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	match(t, fset, pkgs, findings)
}

// parseFixture discovers and parses every package directory in the tree.
func parseFixture(fset *token.FileSet, root, fixture string) (map[string]*fixturePkg, error) {
	pkgs := map[string]*fixturePkg{}
	start := filepath.Join(root, fixture)
	err := filepath.WalkDir(start, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ipath := filepath.ToSlash(rel)
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		fp := pkgs[ipath]
		if fp == nil {
			fp = &fixturePkg{path: ipath}
			pkgs[ipath] = fp
		}
		fp.files = append(fp.files, f)
		for _, spec := range f.Imports {
			if dep, err := strconv.Unquote(spec.Path.Value); err == nil {
				fp.imports = append(fp.imports, dep)
			}
		}
		return nil
	})
	return pkgs, err
}

// fixtureImporter serves fixture packages from the checked map and
// everything else (the stdlib) from compiled export data.
type fixtureImporter struct {
	checked map[string]*types.Package
	std     types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.checked[path]; ok {
		return p, nil
	}
	if fi.std == nil {
		return nil, fmt.Errorf("fixture import %q not yet checked and no stdlib importer", path)
	}
	return fi.std.Import(path)
}

func buildImporter(fset *token.FileSet, pkgs map[string]*fixturePkg) (*fixtureImporter, error) {
	stdSet := map[string]bool{}
	for _, fp := range pkgs {
		for _, dep := range fp.imports {
			if pkgs[dep] == nil {
				stdSet[dep] = true
			}
		}
	}
	fi := &fixtureImporter{checked: map[string]*types.Package{}}
	if len(stdSet) > 0 {
		std := make([]string, 0, len(stdSet))
		for p := range stdSet {
			std = append(std, p)
		}
		sort.Strings(std)
		exports, err := load.Exports(std...)
		if err != nil {
			return nil, err
		}
		fi.std = importer.ForCompiler(fset, "gc", load.ExportLookup(exports))
	}
	return fi, nil
}

// sortTopo orders fixture packages so dependencies check before
// dependents (fixture trees are tiny; cycles would fail type checking
// anyway, so a missing dependency is simply reported there).
func sortTopo(pkgs map[string]*fixturePkg) []*fixturePkg {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var order []*fixturePkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(p string) {
		fp := pkgs[p]
		if fp == nil || state[p] != 0 {
			return
		}
		state[p] = 1
		for _, dep := range fp.imports {
			visit(dep)
		}
		state[p] = 2
		order = append(order, fp)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// expectation is one parsed // want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile("want[ \t]+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func parseWants(t *testing.T, fset *token.FileSet, pkgs map[string]*fixturePkg) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, fp := range pkgs {
		for _, f := range fp.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						lit := m[1]
						var pat string
						if lit[0] == '`' {
							pat = lit[1 : len(lit)-1]
						} else {
							var err error
							pat, err = strconv.Unquote(lit)
							if err != nil {
								t.Fatalf("bad want literal %s: %v", lit, err)
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", pat, err)
						}
						pos := fset.Position(c.Pos())
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, raw: pat,
						})
					}
				}
			}
		}
	}
	return wants
}

// match pairs findings with expectations one-to-one and reports both
// unexpected findings and unmet expectations.
func match(t *testing.T, fset *token.FileSet, pkgs map[string]*fixturePkg, findings []framework.Finding) {
	t.Helper()
	wants := parseWants(t, fset, pkgs)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}
