package hotprop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotprop"
)

func TestFixtures(t *testing.T) {
	analysistest.RunProgram(t, hotprop.Analyzer, "../testdata/src", "hotprop")
}
