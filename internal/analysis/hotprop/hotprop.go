// Package hotprop extends the //qpip:hotpath allocation discipline
// through the call graph. hotalloc checks annotated functions in
// isolation; a hot loop that calls an innocent-looking helper in another
// package still pays for every allocation that helper makes. hotprop
// walks the whole-program call graph (internal/analysis/interproc) from
// every annotated root — following static calls and conservatively
// resolved interface dispatches — and applies the same allocation
// patterns to every reachable function that is not itself annotated
// (those are hotalloc's, and reporting them twice would be noise).
//
// Every diagnostic carries the shortest call chain from an annotated
// root, so a finding deep in the fabric reads as evidence, not
// assertion:
//
//	frame.go:88: fmt.Sprintf in hot-reachable function fabric.format
//	allocates ... (hot call chain: qpipnic.(*Engine).TxDoorbell ->
//	fabric.(*Port).Deliver -> fabric.format)
//
// Suppression is per-EDGE, not just per-finding: a
// "//lint:qpip-allow hotprop <reason>" comment on a call site severs
// that propagation edge, declaring the call cold by construction (an
// error path, a one-time setup hook reached through an interface). The
// callee then stops being hot-reachable through that edge — findings in
// an entire cold subtree disappear with one annotated call site instead
// of one allow per allocation. An allow on the flagged allocation line
// still works too, as everywhere else.
package hotprop

import (
	"go/token"

	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/interproc"
)

// HotAnnotation is the root marker, shared with hotalloc.
const HotAnnotation = hotalloc.Annotation

const name = "hotprop"

// Analyzer is the whole-program hot-path propagation check.
var Analyzer = &interproc.Analyzer{
	Name: name,
	Doc:  "propagate //qpip:hotpath through the call graph and flag allocations in reachable callees, with the hot call chain in each diagnostic",
	Run:  run,
}

func run(pass *interproc.Pass) error {
	prog := pass.Prog
	g := prog.Graph

	var roots []*interproc.Node
	for _, n := range g.All() {
		if n.Annotations[HotAnnotation] {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// An allow on the call-site line severs the propagation edge.
	follow := func(e *interproc.Edge) bool {
		return !prog.Allows.Allows(name, prog.Fset.Position(e.Pos))
	}
	parent := g.ReachableFrom(roots, follow)

	for _, n := range g.All() {
		e := parent[n]
		if e == nil || n.Annotations[HotAnnotation] {
			continue // not reached, or a root: hotalloc's territory
		}
		chain := interproc.Chain(parent, n)
		hotalloc.CheckReachable(n.Unit.Info, n.Decl, func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format+" (hot call chain: %s)", append(args, chain)...)
		})
	}
	return nil
}
