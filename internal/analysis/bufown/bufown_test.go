package bufown_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bufown"
)

func TestFixtures(t *testing.T) {
	analysistest.RunProgram(t, bufown.Analyzer, "../testdata/src", "bufown2")
}
