// Package bufown tracks ownership of pooled datapath objects across
// function and package boundaries. The pooled types — wire.Packet
// (wire.Get / Retain / Release), tcp.Segment (tcp.NewSegment / Release)
// and fabric.Frame (fabric.NewFrame, consumed by the fabric at Send) —
// are recycled through free lists, so a reference that is neither
// released nor handed to a new owner is a leak that starves the pool,
// and the per-package bufref analyzer can only see the half of the
// story that happens inside one function.
//
// bufown computes one ownership summary per function and iterates them
// to a fixed point over the whole-program call graph:
//
//	consumes[i]  argument i (receiver first for methods) is consumed:
//	             the function releases it, stores it, returns it, or
//	             passes it on to another consuming function — the
//	             caller's reference obligation is discharged.
//	owned[i]     result i carries a fresh ownership obligation: the
//	             caller must consume what it receives.
//
// Both vectors are monotone (bits flip false->true only), so the
// fixpoint terminates. Seeds come from a small intrinsic table for the
// pool API itself (wire.Get returns owned; (*Packet).Release consumes
// its receiver; (*Packet).Retain is a pure borrow — the caller's
// reference survives); everything else is computed from bodies, with
// interface calls resolved through the call graph's conservative
// class-hierarchy analysis — which is how fabric.releasePayload's
// dynamic r.Release() is understood to consume the payload.
//
// Within a function, events that consume a tracked reference: calling a
// consuming method or passing at a consuming argument position; passing
// to a function whose body is not loaded (unknown callees are assumed
// to take ownership — optimistic, keeps external calls quiet); storing
// into a field, map, slice, global or channel; returning it; capturing
// it in a function literal (the repo's continuation style hands
// ownership to the bound closure). The check is flow-insensitive: one
// consuming event anywhere in the function discharges the obligation,
// so bufref's per-path release check remains the sharper intra-
// procedural tool and bufown adds the cross-function view. Two findings
// come out:
//
//   - a local acquires an owned object (from wire.Get, tcp.NewSegment,
//     fabric.NewFrame, or any function whose summary returns owned) and
//     no event ever consumes it — reported with the callees the value
//     was lent to, since "passed to foo" is only an alibi if foo takes
//     ownership;
//   - an owned result is discarded outright: the call is a bare
//     statement, assigned to _, or passed to a callee that is known not
//     to take ownership.
//
// Suppress with //lint:qpip-allow bufown <reason> on the acquisition
// line. DESIGN §17 documents the summary format; the analysistest
// fixture under testdata/src/bufown2 is the executable specification.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/interproc"
)

const name = "bufown"

// Analyzer is the whole-program pooled-ownership check.
var Analyzer = &interproc.Analyzer{
	Name: name,
	Doc:  "track pooled buffer ownership (wire.Packet, tcp.Segment, fabric.Frame) across calls: every acquired reference must be released or handed to a consuming owner",
	Run:  run,
}

// summary is one function's ownership contract. Both slices are indexed
// as documented on the package: consumes has the receiver at 0 for
// methods, then parameters; owned is indexed by result.
type summary struct {
	consumes []bool
	owned    []bool
}

func (s *summary) equal(o *summary) bool {
	if len(s.consumes) != len(o.consumes) || len(s.owned) != len(o.owned) {
		return false
	}
	for i := range s.consumes {
		if s.consumes[i] != o.consumes[i] {
			return false
		}
	}
	for i := range s.owned {
		if s.owned[i] != o.owned[i] {
			return false
		}
	}
	return true
}

// intrinsics is the pool API seed table, matched by package-path suffix
// (so fixtures can model the real packages), receiver type name ("" for
// plain functions) and function name.
type intrinsic struct {
	pkgSuffix, recv, fn string
	sum                 summary
	borrow              bool // Retain: touches the object without consuming the caller's ref
}

var intrinsics = []intrinsic{
	{pkgSuffix: "internal/wire", recv: "", fn: "Get", sum: summary{owned: []bool{true}}},
	{pkgSuffix: "internal/wire", recv: "Packet", fn: "Release", sum: summary{consumes: []bool{true}}},
	{pkgSuffix: "internal/wire", recv: "Packet", fn: "Retain", borrow: true},
	{pkgSuffix: "internal/tcp", recv: "", fn: "NewSegment", sum: summary{owned: []bool{true}}},
	{pkgSuffix: "internal/tcp", recv: "Segment", fn: "Release", sum: summary{consumes: []bool{true}}},
	{pkgSuffix: "internal/fabric", recv: "", fn: "NewFrame", sum: summary{owned: []bool{true}}},
}

// pooledNames lists the tracked types per package suffix; parameters of
// these types (or of interface type, which may hold one) seed tracking.
var pooledNames = map[string]string{
	"Packet":  "internal/wire",
	"Segment": "internal/tcp",
	"Frame":   "internal/fabric",
}

func lookupIntrinsic(fn *types.Func) (*intrinsic, bool) {
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	for i := range intrinsics {
		in := &intrinsics[i]
		if in.fn == fn.Name() && in.recv == recv && framework.PathHasSuffix(fn.Pkg().Path(), in.pkgSuffix) {
			return in, true
		}
	}
	return nil, false
}

// pooledPointer reports whether t is *T for a tracked pooled type.
func pooledPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	suffix, ok := pooledNames[named.Obj().Name()]
	return ok && framework.PathHasSuffix(named.Obj().Pkg().Path(), suffix)
}

// trackable reports whether a parameter of type t can carry a pooled
// reference worth summarizing: a pooled pointer or any interface.
func trackable(t types.Type) bool {
	return pooledPointer(t) || types.IsInterface(t)
}

func run(pass *interproc.Pass) error {
	prog := pass.Prog
	g := prog.Graph

	// Interface call sites were already resolved by the graph; index the
	// candidate callees by call position so funcResult can consult
	// implementor summaries.
	candidates := map[token.Pos][]*interproc.Node{}
	for _, n := range g.All() {
		for _, e := range n.Out {
			if e.Kind == interproc.InterfaceCall {
				candidates[e.Pos] = append(candidates[e.Pos], e.Callee)
			}
		}
	}

	// Intrinsic pool functions keep their seeded summaries: their bodies
	// ARE the pool plumbing (sync.Pool, refcounts) and reading ownership
	// out of them would be circular. Everyone else starts empty.
	summaries := map[*interproc.Node]*summary{}
	frozen := map[*interproc.Node]bool{}
	for _, n := range g.All() {
		sum := newSummary(n)
		if in, ok := lookupIntrinsic(n.Fn); ok {
			copy(sum.consumes, in.sum.consumes)
			copy(sum.owned, in.sum.owned)
			frozen[n] = true
		}
		summaries[n] = sum
	}

	g.Fixpoint(func(n *interproc.Node) bool {
		if frozen[n] {
			return false
		}
		old := summaries[n]
		next := analyze(n, g, summaries, candidates, nil)
		if next.equal(old) {
			return false
		}
		summaries[n] = next
		return true
	})

	for _, n := range g.All() {
		if !frozen[n] {
			analyze(n, g, summaries, candidates, pass)
		}
	}
	return nil
}

// newSummary sizes a node's empty summary from its signature.
func newSummary(n *interproc.Node) *summary {
	sig := n.Fn.Type().(*types.Signature)
	nArgs := sig.Params().Len()
	if sig.Recv() != nil {
		nArgs++
	}
	return &summary{consumes: make([]bool, nArgs), owned: make([]bool, sig.Results().Len())}
}

// callTarget is a resolved callee's ownership view at one call site.
type callTarget struct {
	name     string // diagnostic name
	known    bool   // summary available (intrinsic or loaded body)
	borrow   bool   // Retain-style: never consumes
	consumes []bool
	owned    []bool
	hasRecv  bool
}

// resolveCall computes the ownership contract of call's callee. Unknown
// callees (no body loaded, no intrinsic) return known=false and are
// treated as consuming everything — external code is assumed correct.
// Interface calls merge their CHA candidates with OR.
func resolveCall(info *types.Info, call *ast.CallExpr, g *interproc.Graph, summaries map[*interproc.Node]*summary, candidates map[token.Pos][]*interproc.Node) callTarget {
	fn := framework.CalleeName(info, call)
	if fn == nil {
		return callTarget{name: "a function value"}
	}
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	ct := callTarget{name: fn.Name(), hasRecv: sig != nil && sig.Recv() != nil}
	if fn.Pkg() != nil {
		ct.name = fn.Pkg().Name() + "." + fn.Name()
	}
	if in, ok := lookupIntrinsic(fn); ok {
		ct.known, ct.borrow = true, in.borrow
		ct.consumes, ct.owned = in.sum.consumes, in.sum.owned
		return ct
	}
	if node := g.Lookup(fn); node != nil {
		ct.known = true
		ct.consumes, ct.owned = summaries[node].consumes, summaries[node].owned
		return ct
	}
	if cands := candidates[call.Lparen]; len(cands) > 0 {
		// Dynamic dispatch: a position is consuming/owned when ANY loaded
		// implementation says so (optimistic merge; a pessimist would make
		// every borrow through an interface a finding).
		ct.known = true
		for _, c := range cands {
			s := summaries[c]
			for i, b := range s.consumes {
				for len(ct.consumes) <= i {
					ct.consumes = append(ct.consumes, false)
				}
				ct.consumes[i] = ct.consumes[i] || b
			}
			for i, b := range s.owned {
				for len(ct.owned) <= i {
					ct.owned = append(ct.owned, false)
				}
				ct.owned[i] = ct.owned[i] || b
			}
		}
		return ct
	}
	return ct // abstract method with no loaded implementors, or external
}

// consumesAt reports whether the target consumes the value passed as
// argument index arg (0-based over explicit arguments; the receiver is
// handled separately).
func (ct callTarget) consumesAt(arg int) bool {
	if !ct.known {
		return true // unknown callee: assume it takes ownership
	}
	if ct.borrow {
		return false
	}
	i := arg
	if ct.hasRecv {
		i++
	}
	return i < len(ct.consumes) && ct.consumes[i]
}

func (ct callTarget) consumesRecv() bool {
	if !ct.known {
		return true
	}
	return !ct.borrow && ct.hasRecv && len(ct.consumes) > 0 && ct.consumes[0]
}

func (ct callTarget) ownsResult(i int) bool {
	return ct.known && i < len(ct.owned) && ct.owned[i]
}

// acquisition is one locally created ownership obligation.
type acquisition struct {
	pos    token.Pos
	source string // "wire.Get", "fabric.NewFrame", ...
	typ    string // pooled type name for the message
}

// analyze walks one function. With pass == nil it only computes the
// summary (fixpoint mode); with a pass it re-walks with converged callee
// summaries and reports findings.
func analyze(n *interproc.Node, g *interproc.Graph, summaries map[*interproc.Node]*summary, candidates map[token.Pos][]*interproc.Node, pass *interproc.Pass) *summary {
	info := n.Unit.Info
	sum := newSummary(n)
	sig := n.Fn.Type().(*types.Signature)

	// Argument index (receiver first) per tracked parameter object.
	argIndex := map[types.Object]int{}
	idx := 0
	if recv := sig.Recv(); recv != nil {
		if trackable(recv.Type()) {
			argIndex[recv] = idx
		}
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); trackable(p.Type()) {
			argIndex[p] = idx
		}
		idx++
	}

	// Pass A, in source order: acquisitions and aliases. canon maps every
	// alias (q := p, q := p.(*wire.Packet)) to its representative object.
	canon := map[types.Object]types.Object{}
	rep := func(o types.Object) types.Object {
		for canon[o] != nil {
			o = canon[o]
		}
		return o
	}
	acquired := map[types.Object]*acquisition{}
	isTracked := func(o types.Object) bool {
		o = rep(o)
		if _, ok := argIndex[o]; ok {
			return true
		}
		return acquired[o] != nil
	}

	report := func(pos token.Pos, format string, args ...any) {
		if pass != nil {
			pass.Reportf(pos, format, args...)
		}
	}

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			// q := p (or q = p), possibly through a type assertion: alias.
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					lhs, ok := x.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					src := ast.Unparen(x.Rhs[i])
					if ta, ok := src.(*ast.TypeAssertExpr); ok {
						src = ast.Unparen(ta.X)
					}
					id, ok := src.(*ast.Ident)
					if !ok {
						continue
					}
					from, _ := info.Uses[id].(*types.Var)
					if from == nil || !isTracked(from) {
						continue
					}
					var to types.Object
					if x.Tok == token.DEFINE {
						to = info.Defs[lhs]
					} else {
						to = info.Uses[lhs]
					}
					if to != nil && to != rep(from) {
						canon[to] = rep(from)
					}
				}
			}
			// p := ownedCall(...): acquisition; _ = ownedCall(...): discard.
			if len(x.Rhs) == 1 {
				if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
					ct := resolveCall(info, call, g, summaries, candidates)
					for i, lhs := range x.Lhs {
						if !ct.ownsResult(i) {
							continue
						}
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue // stored straight into a field/map: consumed
						}
						if id.Name == "_" {
							report(call.Lparen, "owned %s from %s is discarded: the pooled object leaks", resultType(info, call, i), ct.name)
							continue
						}
						var obj types.Object
						if x.Tok == token.DEFINE {
							obj = info.Defs[id]
						} else {
							obj = info.Uses[id]
						}
						if v, ok := obj.(*types.Var); ok && obj.Parent() != obj.Pkg().Scope() {
							acquired[v] = &acquisition{pos: call.Lparen, source: ct.name, typ: resultType(info, call, i)}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			// return wire.Get(): the owned result flows straight through,
			// making this function an owned source for its own callers.
			if len(x.Results) == 1 {
				if call, ok := ast.Unparen(x.Results[0]).(*ast.CallExpr); ok {
					ct := resolveCall(info, call, g, summaries, candidates)
					for i := range sum.owned {
						if ct.ownsResult(i) {
							sum.owned[i] = true
						}
					}
				}
			}
		case *ast.ExprStmt:
			// Bare owned call: result dropped on the floor.
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				ct := resolveCall(info, call, g, summaries, candidates)
				for i := range resultCount(info, call) {
					if ct.ownsResult(i) {
						report(call.Lparen, "owned %s from %s is discarded: the pooled object leaks", resultType(info, call, i), ct.name)
					}
				}
			}
		case *ast.CallExpr:
			// Owned result fed straight to a callee that does not take
			// ownership: send(wire.Get()) is fine, log(wire.Get()) leaks.
			outer := resolveCall(info, x, g, summaries, candidates)
			for i, arg := range x.Args {
				inner, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				ict := resolveCall(info, inner, g, summaries, candidates)
				if ict.ownsResult(0) && outer.known && !outer.consumesAt(i) {
					report(inner.Lparen, "owned %s from %s is passed to %s, which does not take ownership: the reference leaks", resultType(info, inner, 0), ict.name, outer.name)
				}
			}
		}
		return true
	})

	// Pass B: classify every use of a tracked object. One consuming event
	// discharges the obligation (flow-insensitive); borrows are collected
	// for the diagnostic.
	consumed := map[types.Object]bool{}
	borrows := map[types.Object][]string{}
	uses := &useWalker{
		info: info, rep: rep, isTracked: isTracked,
		g: g, summaries: summaries, candidates: candidates,
		consumed: consumed, borrows: borrows,
		returnOwned: func(resultIdx int, obj types.Object) {
			if a := acquired[rep(obj)]; a != nil && resultIdx < len(sum.owned) {
				sum.owned[resultIdx] = true
			}
		},
	}
	uses.walk(n.Decl.Body)

	for obj, i := range argIndex {
		if consumed[obj] {
			sum.consumes[i] = true
		}
	}

	if pass != nil {
		for obj, a := range acquired {
			if consumed[rep(obj)] || consumed[obj] {
				continue
			}
			msg := "%s acquired from %s is never released or handed off: the pooled object leaks"
			if bs := borrows[rep(obj)]; len(bs) > 0 {
				report(a.pos, msg+" (%s borrows it without taking ownership)", a.typ, a.source, strings.Join(dedup(bs), ", "))
			} else {
				report(a.pos, msg, a.typ, a.source)
			}
		}
	}
	return sum
}

func dedup(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// resultType names result i of call for diagnostics ("*wire.Packet").
func resultType(info *types.Info, call *ast.CallExpr, i int) string {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return "pooled object"
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if i >= tuple.Len() {
			return "pooled object"
		}
		t = tuple.At(i).Type()
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func resultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 0
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len()
	}
	if _, ok := tv.Type.(*types.Basic); ok && tv.Type.String() == "()" {
		return 0
	}
	return 1
}

// useWalker classifies identifier uses with an explicit ancestor stack.
type useWalker struct {
	info      *types.Info
	rep       func(types.Object) types.Object
	isTracked func(types.Object) bool

	g          *interproc.Graph
	summaries  map[*interproc.Node]*summary
	candidates map[token.Pos][]*interproc.Node

	consumed    map[types.Object]bool
	borrows     map[types.Object][]string
	returnOwned func(resultIdx int, obj types.Object)

	stack []ast.Node
}

func (w *useWalker) walk(body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return false
		}
		w.stack = append(w.stack, x)
		if id, ok := x.(*ast.Ident); ok {
			if v, isVar := w.info.Uses[id].(*types.Var); isVar && w.isTracked(v) {
				w.classify(id, w.rep(v))
			}
		}
		return true
	})
}

func (w *useWalker) consume(obj types.Object)           { w.consumed[obj] = true }
func (w *useWalker) borrow(obj types.Object, by string) { w.borrows[obj] = append(w.borrows[obj], by) }

// classify walks up from one tracked identifier use and decides whether
// this use consumes the reference, borrows it, or merely reads it.
func (w *useWalker) classify(id *ast.Ident, obj types.Object) {
	// Capture by a function literal hands the reference to the bound
	// continuation, whatever happens inside: consumed.
	for i := len(w.stack) - 2; i >= 0; i-- {
		if _, ok := w.stack[i].(*ast.FuncLit); ok {
			w.consume(obj)
			return
		}
	}

	var cur ast.Expr = id
	for i := len(w.stack) - 2; i >= 0; i-- {
		switch p := w.stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.TypeAssertExpr:
			if p.X != cur {
				return
			}
			cur = p
		case *ast.SelectorExpr:
			if p.X != cur {
				return
			}
			switch sel := w.info.Uses[p.Sel].(type) {
			case *types.Var:
				return // field read
			case *types.Func:
				_ = sel
				// Method call or method value on the tracked object.
				if i > 0 {
					if call, ok := w.stack[i-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
						ct := resolveCall(w.info, call, w.g, w.summaries, w.candidates)
						if ct.consumesRecv() {
							w.consume(obj)
						} else {
							w.borrow(obj, ct.name)
						}
						return
					}
				}
				w.consume(obj) // method value: the bound value escapes
				return
			default:
				return
			}
		case *ast.CallExpr:
			if ast.Unparen(p.Fun) == cur {
				return // calling a func-typed value; not a pooled use
			}
			for ai, arg := range p.Args {
				if ast.Unparen(arg) != ast.Unparen(cur) && arg != cur {
					continue
				}
				ct := resolveCall(w.info, p, w.g, w.summaries, w.candidates)
				if ct.consumesAt(ai) {
					w.consume(obj)
				} else {
					w.borrow(obj, ct.name)
				}
				return
			}
			return
		case *ast.ReturnStmt:
			for ri, res := range p.Results {
				if ast.Unparen(res) == cur || res == cur {
					w.consume(obj)
					w.returnOwned(ri, obj)
					return
				}
			}
			return
		case *ast.AssignStmt:
			for ri, rhs := range p.Rhs {
				if ast.Unparen(rhs) != cur && rhs != cur {
					continue
				}
				if ri < len(p.Lhs) || len(p.Lhs) == 1 {
					li := ri
					if li >= len(p.Lhs) {
						li = 0
					}
					if lid, ok := p.Lhs[li].(*ast.Ident); ok {
						if lid.Name == "_" {
							return // _ = p: a read, not a handoff
						}
						var to types.Object
						if p.Tok == token.DEFINE {
							to = w.info.Defs[lid]
						} else {
							to = w.info.Uses[lid]
						}
						if v, ok := to.(*types.Var); ok && v.Parent() != nil && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
							return // local alias; pass A linked it
						}
					}
				}
				w.consume(obj) // stored into a field, global, map or slice
				return
			}
			return // appears on the LHS: reassignment, not a use
		case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			w.consume(obj) // packed into a structure or sent away
			return
		case *ast.IndexExpr:
			w.consume(obj) // used as a map key or stored by index
			return
		case *ast.StarExpr, *ast.UnaryExpr, *ast.BinaryExpr:
			return // deref / comparison / arithmetic: reads
		default:
			return
		}
	}
}
