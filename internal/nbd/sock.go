package nbd

import (
	"repro/internal/buf"
	"repro/internal/hostos"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/storage"
)

// SockClient is the classic sockets-based NBD client driver (Figure 5):
// kernel-level socket calls move every request and reply through the full
// host TCP/IP stack.
type SockClient struct {
	*core
	sock *hostos.Socket
}

// NewSockClient wires a client driver to a connected socket and starts
// its reply reader. size is the exported device size.
func NewSockClient(eng *sim.Engine, cpu *sim.CPU, sock *hostos.Socket, size int64, qd int) *SockClient {
	c := &SockClient{core: newCore(cpu, size, qd), sock: sock}
	c.core.t = c
	eng.Spawn("nbd.sock.reader", func(p *sim.Proc) { c.readerLoop(p) })
	return c
}

// sendRequest implements transport: header (and write payload) through
// the socket. Socket send blocking is the flow control.
func (c *SockClient) sendRequest(p *sim.Proc, req Request, data buf.Buf) error {
	hdr := buf.Bytes(MarshalRequest(&req))
	if err := c.sock.Send(p, hdr); err != nil {
		return err
	}
	if data.Len() > 0 {
		if err := c.sock.Send(p, data); err != nil {
			return err
		}
	}
	return nil
}

// readerLoop matches replies to requests.
func (c *SockClient) readerLoop(p *sim.Proc) {
	for {
		hdr, err := c.sock.RecvFull(p, ReplyLen)
		if err != nil {
			c.fail(err)
			return
		}
		rep, err := ParseReply(hdr)
		if err != nil {
			c.fail(err)
			return
		}
		var data buf.Buf
		if o := c.inflight[rep.Handle]; o != nil && o.isRead && rep.Error == 0 {
			data, err = c.sock.RecvFull(p, o.length)
			if err != nil {
				c.fail(err)
				return
			}
		}
		c.complete(rep.Handle, rep.Error, data)
	}
}

// ServeSock runs the user-level sockets NBD server loop on one accepted
// connection: parse request, perform disk I/O, reply. It returns when the
// client disconnects.
func ServeSock(p *sim.Proc, cpu *sim.CPU, sock *hostos.Socket, disk *storage.Disk) {
	dev := &storage.LocalDev{D: disk}
	for {
		hdr, err := sock.RecvFull(p, RequestLen)
		if err != nil {
			return
		}
		req, err := ParseRequest(hdr)
		if err != nil {
			return
		}
		p.Use(cpu.Server, params.US(ServerPerReqUS))
		switch req.Type {
		case CmdRead:
			data, _ := dev.Read(p, int64(req.Offset), int(req.Length))
			rep := buf.Bytes(MarshalReply(&Reply{Handle: req.Handle}))
			if sock.Send(p, rep) != nil || sock.Send(p, data) != nil {
				return
			}
		case CmdWrite:
			data, err := sock.RecvFull(p, int(req.Length))
			if err != nil {
				return
			}
			if dev.Write(p, int64(req.Offset), data) != nil {
				return
			}
			rep := buf.Bytes(MarshalReply(&Reply{Handle: req.Handle}))
			if sock.Send(p, rep) != nil {
				return
			}
		case CmdDisc:
			return
		default:
			rep := buf.Bytes(MarshalReply(&Reply{Handle: req.Handle, Error: 22}))
			if sock.Send(p, rep) != nil {
				return
			}
		}
	}
}
