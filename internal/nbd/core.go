package nbd

import (
	"errors"
	"fmt"

	"repro/internal/buf"
	"repro/internal/params"
	"repro/internal/sim"
)

// transport is the client driver's view of its connection to the server.
type transport interface {
	// sendRequest issues one request (plus write payload); it may block
	// the calling process on transport flow control.
	sendRequest(p *sim.Proc, req Request, data buf.Buf) error
}

// op is one outstanding block request.
type op struct {
	handle uint64
	offset int64
	length int
	isRead bool
	done   bool
	errno  uint32
	data   buf.Buf
	waiter *sim.Proc
	// wdata retains a write's payload so a recovering transport can
	// replay the request idempotently after reconnect (DESIGN §13).
	wdata buf.Buf
	// sess is the transport session the request was last sent on; a
	// recovering transport resends ops whose sess predates the current
	// session.
	sess uint64
}

// core implements storage.BlockDev semantics over any transport: request
// issue, reply matching, sequential readahead and write-behind with a
// bounded queue — the Linux block layer behaviour the benchmark depends
// on for pipelining.
type core struct {
	cpu  *sim.CPU
	t    transport
	size int64

	nextHandle uint64
	inflight   map[uint64]*op
	readAt     map[int64]*op // outstanding/completed readahead by offset

	qd            int
	lastReadEnd   int64
	reads, writes uint64
	readaheads    uint64
	// completes counts matched replies; a recovery watchdog reads it as
	// the liveness signal (no growth + nonempty inflight = dead session).
	completes uint64

	outWrites   int
	writeWaiter *sim.Proc
	flushWaiter *sim.Proc

	failed error
}

func newCore(cpu *sim.CPU, size int64, qd int) *core {
	if qd <= 0 {
		qd = params.NBDQueueDepth
	}
	return &core{
		cpu:         cpu,
		size:        size,
		qd:          qd,
		inflight:    make(map[uint64]*op),
		readAt:      make(map[int64]*op),
		lastReadEnd: -1,
	}
}

// Size implements storage.BlockDev.
func (c *core) Size() int64 { return c.size }

// driverCost charges the client block-layer cost for one request.
func (c *core) driverCost(p *sim.Proc) {
	p.Use(c.cpu.Server, params.US(ClientPerReqUS))
}

var errServerError = errors.New("nbd: server returned error")

// issueRead sends one read request.
func (c *core) issueRead(p *sim.Proc, off int64, n int) (*op, error) {
	c.nextHandle++
	o := &op{handle: c.nextHandle, offset: off, length: n, isRead: true}
	c.inflight[o.handle] = o
	c.readAt[off] = o
	c.reads++
	err := c.t.sendRequest(p, Request{
		Type: CmdRead, Handle: o.handle, Offset: uint64(off), Length: uint32(n),
	}, buf.Empty)
	if err != nil {
		delete(c.inflight, o.handle)
		delete(c.readAt, off)
		return nil, err
	}
	return o, nil
}

// outstandingReads counts inflight read ops.
func (c *core) outstandingReads() int {
	n := 0
	for _, o := range c.inflight {
		if o.isRead {
			n++
		}
	}
	return n
}

// Read implements storage.BlockDev with sequential readahead: when the
// access pattern is sequential, up to the queue depth of future requests
// are kept in flight.
func (c *core) Read(p *sim.Proc, off int64, n int) (buf.Buf, error) {
	if c.failed != nil {
		return buf.Empty, c.failed
	}
	c.driverCost(p)
	o := c.readAt[off]
	if o != nil && o.length != n {
		o = nil // readahead guessed a different size; issue fresh
	}
	if o == nil {
		var err error
		o, err = c.issueRead(p, off, n)
		if err != nil {
			return buf.Empty, err
		}
	}
	// Sequential detection and readahead.
	sequential := off == c.lastReadEnd || c.lastReadEnd == -1
	c.lastReadEnd = off + int64(n)
	if sequential {
		next := off + int64(n)
		for c.outstandingReads() < c.qd && next+int64(n) <= c.size {
			if _, already := c.readAt[next]; already {
				next += int64(n)
				continue
			}
			if _, err := c.issueRead(p, next, n); err != nil {
				break
			}
			c.readaheads++
			next += int64(n)
		}
	}
	for !o.done {
		o.waiter = p
		p.Suspend()
	}
	delete(c.readAt, o.offset)
	if o.errno != 0 {
		return buf.Empty, fmt.Errorf("%w (%d)", errServerError, o.errno)
	}
	return o.data, nil
}

// Write implements storage.BlockDev with write-behind: up to qd writes
// may be outstanding; Flush drains them.
func (c *core) Write(p *sim.Proc, off int64, b buf.Buf) error {
	if c.failed != nil {
		return c.failed
	}
	c.driverCost(p)
	for c.outWrites >= c.qd {
		c.writeWaiter = p
		p.Suspend()
		if c.failed != nil {
			return c.failed
		}
	}
	c.nextHandle++
	o := &op{handle: c.nextHandle, offset: off, length: b.Len(), wdata: b}
	c.inflight[o.handle] = o
	c.outWrites++
	c.writes++
	return c.t.sendRequest(p, Request{
		Type: CmdWrite, Handle: o.handle, Offset: uint64(off), Length: uint32(b.Len()),
	}, b)
}

// Flush implements storage.BlockDev: wait for all outstanding writes.
func (c *core) Flush(p *sim.Proc) error {
	for c.outWrites > 0 && c.failed == nil {
		c.flushWaiter = p
		p.Suspend()
	}
	return c.failed
}

// complete matches a reply to its request (transport reader context).
func (c *core) complete(handle uint64, errno uint32, data buf.Buf) {
	o := c.inflight[handle]
	if o == nil {
		return // stale reply
	}
	c.completes++
	delete(c.inflight, handle)
	o.done = true
	o.errno = errno
	o.data = data
	if o.isRead {
		if o.waiter != nil {
			w := o.waiter
			o.waiter = nil
			w.Wake()
		}
		return
	}
	c.outWrites--
	if c.writeWaiter != nil {
		w := c.writeWaiter
		c.writeWaiter = nil
		w.Wake()
	}
	if c.outWrites == 0 && c.flushWaiter != nil {
		w := c.flushWaiter
		c.flushWaiter = nil
		w.Wake()
	}
}

// fail poisons the device (connection loss) and wakes everyone.
func (c *core) fail(err error) {
	if c.failed != nil {
		return
	}
	c.failed = err
	// Wake waiters in handle (issue) order, not map order: each Wake runs
	// the woken process until it parks again, so the wake sequence is
	// observable simulation behaviour and must replay identically.
	handles := make([]uint64, 0, len(c.inflight))
	for h := range c.inflight {
		handles = append(handles, h)
	}
	sortUint64s(handles)
	for _, h := range handles {
		o := c.inflight[h]
		o.done = true
		o.errno = 5 // EIO
		if o.waiter != nil {
			w := o.waiter
			o.waiter = nil
			w.Wake()
		}
	}
	c.inflight = make(map[uint64]*op)
	c.readAt = make(map[int64]*op)
	c.outWrites = 0
	if c.writeWaiter != nil {
		w := c.writeWaiter
		c.writeWaiter = nil
		w.Wake()
	}
	if c.flushWaiter != nil {
		w := c.flushWaiter
		c.flushWaiter = nil
		w.Wake()
	}
}

// Stats reports (reads, writes, readaheads).
func (c *core) Stats() (reads, writes, readaheads uint64) {
	return c.reads, c.writes, c.readaheads
}

func sortUint64s(a []uint64) {
	// Insertion sort is fine: inflight is bounded by the queue depth.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
