package nbd

import (
	"errors"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/verbs"
)

// Session-level failure recovery for the QPIP NBD transport (DESIGN §13).
// The verbs layer gives the driver crash detection (QP error states, epoch
// fencing) and reconnection (QP.Reconnect); this file adds what only the
// protocol layer can: exactly-once block semantics across reconnects.
//
// The scheme leans on two properties. First, every outstanding request is
// already tracked in core.inflight with its full argument set — the write
// payload is retained in op.wdata — so the reader can resend anything the
// old session may have lost. Second, block requests are idempotent:
// re-writing the same bytes at the same offset, or re-reading, converges
// to the same device state, so "at least once per session, completed at
// most once" (core.complete drops stale handles) yields exactly-once
// semantics observable by the application.

// RecoverySpec configures session-level recovery for a QP NBD client:
// where to reconnect, and how patiently.
type RecoverySpec struct {
	Raddr   inet.Addr6
	Rport   uint16
	Backoff verbs.BackoffPolicy
	// Timeout declares an established-but-silent session dead: if
	// requests are in flight and no reply completes for this long, the
	// watchdog fails the QP and recovery reconnects. This is the only
	// defense against silent reply loss — a crashed peer whose TCB died
	// holding our fully-ACKed request will never retransmit the reply,
	// and the requester's TCP has no timer armed to notice. Must exceed
	// the transport's retransmission timeout or a single lost frame
	// would look like a dead peer (default 500ms vs tcp.MinRTO 200ms).
	Timeout sim.Time
}

// NewResilientQPClient is NewQPClient plus recovery: on connection
// failure the reader reconnects under spec.Backoff and replays in-flight
// requests instead of poisoning the device. Only reconnect exhaustion
// (verbs.ErrRemoteDown) is terminal.
func NewResilientQPClient(eng *sim.Engine, cpu *sim.CPU, qp *verbs.QP, sendCQ, recvCQ *verbs.CQ,
	maxMsg int, size int64, qd int, spec RecoverySpec) *QPClient {
	if spec.Timeout <= 0 {
		spec.Timeout = 500 * sim.Millisecond
	}
	c := &QPClient{
		core: newCore(cpu, size, qd),
		ep:   newEndpoint(qp, sendCQ, recvCQ, maxMsg, 128),
		rec:  &spec,
		sess: 1,
	}
	c.core.t = c
	eng.Spawn("nbd.qp.reader", func(p *sim.Proc) { c.run(p) })
	eng.Spawn("nbd.qp.watchdog", func(p *sim.Proc) { c.watchdog(p) })
	return c
}

// errSessionStalled is the watchdog's verdict on a silent session.
var errSessionStalled = errors.New("nbd: session stalled, no completions within timeout")

// watchdog enforces RecoverySpec.Timeout. It parks while nothing is in
// flight (sendRequest wakes it) and otherwise samples the completion
// counter once per timeout window; a window with in-flight requests, an
// established QP, and zero completions fails the QP, whose flush wakes
// the reader into recovery. Sampling runs on the simulated clock only,
// so two runs of a seed observe identical verdicts.
func (c *QPClient) watchdog(p *sim.Proc) {
	for c.failed == nil {
		if len(c.inflight) == 0 {
			c.wdWaiter = p
			p.Suspend()
			continue
		}
		seen := c.completes
		p.Sleep(c.rec.Timeout)
		if len(c.inflight) > 0 && c.completes == seen && c.ep.qp.State() == verbs.QPRTS {
			c.ep.qp.SetFailed(errSessionStalled, verbs.StatusFlushed)
		}
	}
}

// recover reestablishes a broken session: reconnect, quiesce the old
// session's flushed completions, then replay every request the old
// session still owed. Reconnect comes first deliberately — the device's
// ResetQP completes consumed-but-unacked sends synchronously, so the
// quiesce that follows cannot hang waiting on firmware-held WRs. If the
// new session breaks during recovery itself, the whole sequence retries
// (each pass burns a fresh reconnect budget); only verbs.ErrRemoteDown is
// returned, and it is terminal.
func (c *QPClient) recover(p *sim.Proc) error {
	for {
		if err := c.ep.qp.Reconnect(p, c.rec.Raddr, c.rec.Rport, c.rec.Backoff); err != nil {
			return err
		}
		quiesceQP(p, c.ep.qp, c.ep.sendCQ, c.ep.recvCQ)
		c.ep.credits = c.ep.depth
		// Bump the session before replaying: ops resent below are stamped
		// with the new session, so if this session also dies, the next
		// pass bumps again and still sees them as stale.
		c.sess++
		// Receives must be posted before replay — posted receive capacity
		// is the TCP window, and replies to replayed requests need it.
		if err := c.ep.fillRecvs(p, c.qd); err != nil {
			continue
		}
		if err := c.replay(p); err != nil {
			continue
		}
		return nil
	}
}

// replay resends every in-flight request whose last send predates the
// current session, in handle (issue) order so the resend sequence is
// deterministic. Ops are stamped with the new session before sending:
// a mid-replay failure leaves them stale relative to the next session,
// so nothing is lost, and the idempotent request semantics make the
// duplicate delivery harmless.
func (c *QPClient) replay(p *sim.Proc) error {
	handles := make([]uint64, 0, len(c.inflight))
	for h, o := range c.inflight {
		if o.sess != c.sess {
			handles = append(handles, h)
		}
	}
	sortUint64s(handles)
	for _, h := range handles {
		o := c.inflight[h]
		o.sess = c.sess
		c.replays++
		req := Request{Handle: o.handle, Offset: uint64(o.offset), Length: uint32(o.length)}
		data := buf.Empty
		if o.isRead {
			req.Type = CmdRead
		} else {
			req.Type = CmdWrite
			data = o.wdata
		}
		if err := c.ep.sendMsgPolled(p, buf.Bytes(MarshalRequest(&req))); err != nil {
			return err
		}
		for off := 0; off < data.Len(); off += c.ep.maxMsg {
			end := off + c.ep.maxMsg
			if end > data.Len() {
				end = data.Len()
			}
			if err := c.ep.sendMsgPolled(p, data.Slice(off, end)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sendMsgPolled posts one message, acquiring a send credit by
// poll-and-sleep rather than CQ.Wait: the CQ has a single waiter slot,
// and during replay it may already belong to an application process
// parked on credits — arming it from the reader would strand that
// process. A flushed completion (session died again) surfaces as an
// error from reapSends.
func (e *qpEndpoint) sendMsgPolled(p *sim.Proc, payload buf.Buf) error {
	for {
		if err := e.reapSends(p); err != nil {
			return err
		}
		if e.credits > 0 {
			break
		}
		p.Sleep(params.US(10))
	}
	e.credits--
	e.nextID++
	return e.qp.PostSend(p, verbs.SendWR{ID: e.nextID, Payload: payload})
}

// quiesceQP drains both CQs of the dead session's completions until the
// QP owes nothing: no outstanding WRs and no queued tokens. The 100µs
// sleep paces the no-progress polls while straggler flushes land.
func quiesceQP(p *sim.Proc, qp *verbs.QP, scq, rcq *verbs.CQ) {
	for {
		progress := false
		for {
			if _, ok := scq.Poll(p); !ok {
				break
			}
			progress = true
		}
		for {
			if _, ok := rcq.Poll(p); !ok {
				break
			}
			progress = true
		}
		if qp.OutstandingSend() == 0 && qp.OutstandingRecv() == 0 &&
			scq.Len() == 0 && rcq.Len() == 0 {
			return
		}
		if !progress {
			p.Sleep(params.US(100))
		}
	}
}

// ServeQPResilient is the recoverable server loop: serve a session,
// and when it dies — client crash, adapter reboot, partition — recycle
// the QP back onto the listener and accept the client's reconnect.
// Returns only on a clean client disconnect (CmdDisc).
//
// The listener itself needs care across local adapter crashes: a crash
// wipes the NIC's port table, so Listen is retried every cycle, with
// verbs.ErrPortBusy meaning "the previous listener survived — reuse it".
func ServeQPResilient(p *sim.Proc, cpu *sim.CPU, dev verbs.Device, port uint16,
	qp *verbs.QP, sendCQ, recvCQ *verbs.CQ, maxMsg int, disk *storage.Disk,
	pol verbs.BackoffPolicy) {
	ep := newEndpoint(qp, sendCQ, recvCQ, maxMsg, 128)
	ldev := &storage.LocalDev{D: disk}
	var lst *verbs.Listener
	attempt := 0
	backoff := func() {
		attempt++
		p.Sleep(pol.Delay(attempt))
	}
	for {
		l, err := dev.Listen(port)
		switch {
		case err == nil:
			lst = l
		case errors.Is(err, verbs.ErrPortBusy) && lst != nil:
			// Previous listener still installed on the adapter.
		default:
			// Adapter down (mid-reboot) or port held elsewhere: wait it out.
			backoff()
			continue
		}
		if qp.State() != verbs.QPReset {
			if err := qp.ModifyQP(p, verbs.QPReset); err != nil {
				backoff()
				continue
			}
		}
		quiesceQP(p, qp, sendCQ, recvCQ)
		ep.credits = ep.depth
		// Park on the listener before posting receives: Post is cheap (no
		// yield), so an arriving SYN always finds an idle QP; the receive
		// window then grows as each posted WR reaches the adapter.
		if lst.Post(qp) != nil {
			backoff()
			continue
		}
		if ep.fillRecvs(p, params.NBDQueueDepth) != nil {
			backoff()
			continue
		}
		if qp.WaitEstablished(p) != nil {
			// Crashed or fenced while parked; recycle.
			continue
		}
		attempt = 0
		if serveQPSession(p, cpu, ep, ldev) {
			return
		}
	}
}
