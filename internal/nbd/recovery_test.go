package nbd_test

import (
	"fmt"
	"testing"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nbd"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/verbs"
)

// chaosSeed fixes the fault plan and every backoff jitter decision in the
// recovery chaos tests; `make chaos` runs this matrix.
const chaosSeed = 0xC4A05

// chaosOutcome is everything one crash-chaos NBD run produces that must
// be identical across two runs of the same seed — the determinism half of
// the exactly-once property.
type chaosOutcome struct {
	trace    string   // injector fault log
	endTime  sim.Time // simulation drain instant
	sessions uint64
	replays  uint64
	crashes  uint64
	content  string // SHA-free content fingerprint of the readback
}

// runRecoveryChaos drives a patterned write/flush/readback NBD workload
// over the resilient QP transport while the plan injects faults, and
// asserts bytes-exactly-once: every chunk reads back exactly as written,
// no matter how many sessions and replays it took.
func runRecoveryChaos(t *testing.T, plan fault.Plan, total int) chaosOutcome {
	t.Helper()
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMTU: params.MTUJumbo})
	disk := storage.NewDisk(c.Eng, "server.disk", int64(total)+diskSize)
	maxMsg := c.Nodes[0].QPIP.MaxMessage()
	pol := verbs.BackoffPolicy{
		Base: 200 * sim.Microsecond, Max: 5 * sim.Millisecond,
		Attempts: 60, Seed: chaosSeed,
	}

	inj := fault.NewInjector(plan)
	inj.Attach(c.Myrinet)
	inj.ScheduleCrashes(c.Eng, c.Nodes[0].QPIP, c.Nodes[1].QPIP)

	c.Spawn("server", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[1].QPIP, 1024)
		rcq := verbs.NewCQ(c.Nodes[1].QPIP, 1024)
		qp, err := verbs.NewQP(c.Nodes[1].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 512, RecvDepth: 512,
		})
		if err != nil {
			t.Errorf("server QP: %v", err)
			return
		}
		nbd.ServeQPResilient(p, c.Nodes[1].CPU, c.Nodes[1].QPIP, nbdPort,
			qp, scq, rcq, maxMsg, disk, pol)
	})

	var out chaosOutcome
	var cli *nbd.QPClient
	c.Spawn("client", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[0].QPIP, 1024)
		rcq := verbs.NewCQ(c.Nodes[0].QPIP, 1024)
		qp, err := verbs.NewQP(c.Nodes[0].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 512, RecvDepth: 512,
		})
		if err != nil {
			t.Errorf("client QP: %v", err)
			return
		}
		if err := qp.Reconnect(p, c.Nodes[1].Addr6, nbdPort, pol); err != nil {
			t.Errorf("rendezvous: %v", err)
			return
		}
		cli = nbd.NewResilientQPClient(c.Eng, c.Nodes[0].CPU, qp, scq, rcq,
			maxMsg, int64(total)+diskSize, params.NBDQueueDepth, nbd.RecoverySpec{
				Raddr: c.Nodes[1].Addr6, Rport: nbdPort, Backoff: pol,
				Timeout: 250 * sim.Millisecond,
			})

		const chunk = 64 << 10
		for off := 0; off < total; off += chunk {
			if err := cli.Write(p, int64(off), buf.Pattern(chunk, byte(off/chunk))); err != nil {
				t.Errorf("write at %d: %v", off, err)
				return
			}
		}
		if err := cli.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		for off := 0; off < total; off += chunk {
			b, err := cli.Read(p, int64(off), chunk)
			if err != nil {
				t.Errorf("read at %d: %v", off, err)
				return
			}
			if !buf.Equal(b, buf.Pattern(chunk, byte(off/chunk))) {
				t.Errorf("bytes at %d corrupted after recovery", off)
				return
			}
			out.content += fmt.Sprintf("%d:%x ", off, b.Len())
		}
	})
	c.Run()

	out.trace = inj.TraceString()
	out.endTime = c.Eng.Now()
	out.sessions = cli.Sessions()
	out.replays = cli.Replays()
	out.crashes = inj.Stats().Crashes
	return out
}

// chaosPlans is the fixed-seed crash/flap/partition matrix; each entry
// must recover to byte-exact content and replay deterministically.
func chaosPlans() map[string]fault.Plan {
	return map[string]fault.Plan{
		"crash-server": {
			Seed:    chaosSeed,
			Crashes: []fault.Crash{{Node: 1, At: 5 * sim.Millisecond, Down: 10 * sim.Millisecond}},
		},
		"crash-client": {
			Seed:    chaosSeed,
			Crashes: []fault.Crash{{Node: 0, At: 8 * sim.Millisecond, Down: 10 * sim.Millisecond}},
		},
		"crash-both": {
			Seed: chaosSeed,
			Crashes: []fault.Crash{
				{Node: 1, At: 5 * sim.Millisecond, Down: 10 * sim.Millisecond},
				{Node: 0, At: 30 * sim.Millisecond, Down: 5 * sim.Millisecond},
			},
		},
		"flap": {
			Seed:  chaosSeed,
			Flaps: fault.FlapTrain(1, 5*sim.Millisecond, 2*sim.Millisecond, 2*sim.Millisecond, 5),
		},
		"partition": {
			Seed: chaosSeed,
			Partitions: []fault.Partition{
				{Src: 0, Dst: 1, From: 5 * sim.Millisecond, To: 25 * sim.Millisecond},
			},
		},
		"crash-plus-drops": {
			Seed:      chaosSeed,
			DropProb:  0.01,
			SkipFirst: 8,
			Crashes:   []fault.Crash{{Node: 1, At: 5 * sim.Millisecond, Down: 10 * sim.Millisecond}},
		},
	}
}

// TestRecoveryChaosExactlyOnce runs the crash/flap/partition matrix:
// every scenario must come back byte-exact (runRecoveryChaos fails the
// test otherwise) and must actually have exercised recovery where a crash
// was scheduled.
func TestRecoveryChaosExactlyOnce(t *testing.T) {
	for name, plan := range chaosPlans() {
		t.Run(name, func(t *testing.T) {
			out := runRecoveryChaos(t, plan, 1<<20)
			if len(plan.Crashes) > 0 {
				if out.crashes == 0 {
					t.Error("plan scheduled crashes but none fired")
				}
				if out.sessions < 2 {
					t.Errorf("sessions = %d, want at least one recovery", out.sessions)
				}
			}
		})
	}
}

// TestRecoveryChaosDeterministic pins the replay property: two runs of
// the same crash seed produce identical fault traces, identical recovery
// work (sessions, replays), identical content, and drain at the identical
// simulated instant.
func TestRecoveryChaosDeterministic(t *testing.T) {
	for _, name := range []string{"crash-server", "crash-both", "crash-plus-drops"} {
		t.Run(name, func(t *testing.T) {
			plan := chaosPlans()[name]
			a := runRecoveryChaos(t, plan, 1<<20)
			b := runRecoveryChaos(t, plan, 1<<20)
			if a.trace != b.trace {
				t.Errorf("fault traces diverge:\n--- run A ---\n%s\n--- run B ---\n%s", a.trace, b.trace)
			}
			if a.endTime != b.endTime {
				t.Errorf("end times diverge: %v vs %v", a.endTime, b.endTime)
			}
			if a.sessions != b.sessions || a.replays != b.replays {
				t.Errorf("recovery work diverges: sessions %d/%d replays %d/%d",
					a.sessions, b.sessions, a.replays, b.replays)
			}
			if a.content != b.content {
				t.Error("readback content fingerprints diverge")
			}
			if a.crashes != b.crashes {
				t.Errorf("crash counts diverge: %d vs %d", a.crashes, b.crashes)
			}
		})
	}
}

// TestRecoveryFaultFreeMatchesPlainClient pins the zero-cost property:
// with no faults injected, the resilient client completes the same
// workload with one session, zero replays, and no watchdog interference.
func TestRecoveryFaultFreeMatchesPlainClient(t *testing.T) {
	out := runRecoveryChaos(t, fault.Plan{Seed: chaosSeed}, 1<<20)
	if out.sessions != 1 || out.replays != 0 {
		t.Errorf("fault-free run used sessions=%d replays=%d, want 1/0",
			out.sessions, out.replays)
	}
	if out.crashes != 0 {
		t.Errorf("fault-free run counted %d crashes", out.crashes)
	}
}
