package nbd

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/verbs"
)

// The QPIP transport (paper Figure 6): the NBD driver posts whole
// messages to a reliable QP instead of making socket calls. A request is
// one message; bulk data follows as additional messages of up to the QP's
// maximum message size (one message = one TCP segment, so chunks are
// MTU-bound). "Integrating the QP interface into NBD was straightforward
// and proved simpler than the socket implementation" (§4.2.3).

// qpChunks reports how many data messages carry n bytes.
func qpChunks(n, maxMsg int) int {
	if n == 0 {
		return 0
	}
	return (n + maxMsg - 1) / maxMsg
}

// qpEndpoint is the shared send machinery: credit-tracked message sends
// with chunking.
type qpEndpoint struct {
	qp      *verbs.QP
	sendCQ  *verbs.CQ
	recvCQ  *verbs.CQ
	maxMsg  int
	credits int
	depth   int
	nextID  uint64
}

func newEndpoint(qp *verbs.QP, sendCQ, recvCQ *verbs.CQ, maxMsg, sendDepth int) *qpEndpoint {
	return &qpEndpoint{qp: qp, sendCQ: sendCQ, recvCQ: recvCQ, maxMsg: maxMsg,
		credits: sendDepth, depth: sendDepth}
}

// reapSends drains available send completions without blocking.
func (e *qpEndpoint) reapSends(p *sim.Proc) error {
	for {
		comp, ok := e.sendCQ.Poll(p)
		if !ok {
			return nil
		}
		if comp.Status != verbs.StatusSuccess {
			return fmt.Errorf("nbd: send completion %v", comp.Status)
		}
		e.credits++
	}
}

// sendMsg posts one message, blocking on send credits.
func (e *qpEndpoint) sendMsg(p *sim.Proc, payload buf.Buf) error {
	if err := e.reapSends(p); err != nil {
		return err
	}
	for e.credits <= 0 {
		comp := e.sendCQ.Wait(p)
		if comp.Status != verbs.StatusSuccess {
			return fmt.Errorf("nbd: send completion %v", comp.Status)
		}
		e.credits++
	}
	e.credits--
	e.nextID++
	return e.qp.PostSend(p, verbs.SendWR{ID: e.nextID, Payload: payload})
}

// sendChunked sends data as a run of maxMsg-bounded messages.
func (e *qpEndpoint) sendChunked(p *sim.Proc, data buf.Buf) error {
	for off := 0; off < data.Len(); off += e.maxMsg {
		end := off + e.maxMsg
		if end > data.Len() {
			end = data.Len()
		}
		if err := e.sendMsg(p, data.Slice(off, end)); err != nil {
			return err
		}
	}
	return nil
}

// repostRecv returns one receive buffer to the QP.
func (e *qpEndpoint) repostRecv(p *sim.Proc, id uint64) error {
	return e.qp.PostRecv(p, verbs.RecvWR{ID: id, Capacity: e.maxMsg})
}

// fillRecvs posts the receive buffers for one session: enough for qd+1
// full read replies (header plus data chunks each).
func (e *qpEndpoint) fillRecvs(p *sim.Proc, qd int) error {
	nBufs := (qd + 1) * (1 + qpChunks(params.NBDRequestBytes, e.maxMsg))
	for i := 0; i < nBufs; i++ {
		if err := e.repostRecv(p, uint64(i)); err != nil {
			return err
		}
	}
	return nil
}

// QPClient is the QPIP NBD client driver.
type QPClient struct {
	*core
	ep *qpEndpoint
	// rec, when set, enables session-level recovery (recovery.go): on
	// connection failure the reader reconnects the QP and replays
	// in-flight requests instead of poisoning the device.
	rec      *RecoverySpec
	sess     uint64
	replays  uint64
	wdWaiter *sim.Proc // watchdog parked while nothing is in flight
}

// Replays reports how many in-flight requests session recovery resent.
func (c *QPClient) Replays() uint64 { return c.replays }

// Sessions reports the number of transport sessions used (1 = fault-free).
func (c *QPClient) Sessions() uint64 { return c.sess }

// NewQPClient wires a driver to an established reliable QP. sendCQ and
// recvCQ must be the CQs the QP was created with. The reader process is
// spawned here; initial receive WRs are posted by it.
func NewQPClient(eng *sim.Engine, cpu *sim.CPU, qp *verbs.QP, sendCQ, recvCQ *verbs.CQ,
	maxMsg int, size int64, qd int) *QPClient {
	c := &QPClient{
		core: newCore(cpu, size, qd),
		ep:   newEndpoint(qp, sendCQ, recvCQ, maxMsg, 128),
		sess: 1,
	}
	c.core.t = c
	eng.Spawn("nbd.qp.reader", func(p *sim.Proc) { c.run(p) })
	return c
}

// sendRequest implements transport. With recovery enabled, transport
// errors are swallowed: the op is already recorded in the in-flight map
// with a stale session number, so the reader's replay after reconnect
// delivers it (the error here proves the session broke, which the reader
// observes independently through its flushed completions).
func (c *QPClient) sendRequest(p *sim.Proc, req Request, data buf.Buf) error {
	if o := c.inflight[req.Handle]; o != nil {
		o.sess = c.sess
	}
	if c.wdWaiter != nil {
		w := c.wdWaiter
		c.wdWaiter = nil
		w.Wake()
	}
	err := c.sendAll(p, req, data)
	if err != nil && c.rec != nil {
		return nil
	}
	return err
}

// sendAll posts the request header and any write payload chunks.
func (c *QPClient) sendAll(p *sim.Proc, req Request, data buf.Buf) error {
	if err := c.ep.sendMsg(p, buf.Bytes(MarshalRequest(&req))); err != nil {
		return err
	}
	if data.Len() > 0 {
		return c.ep.sendChunked(p, data)
	}
	return nil
}

// run is the reader process: one session in the fault-free case, a
// session/reestablish loop under recovery.
func (c *QPClient) run(p *sim.Proc) {
	if err := c.ep.fillRecvs(p, c.qd); err != nil {
		c.fail(err)
		return
	}
	for {
		err := c.session(p)
		if c.rec == nil {
			c.fail(err)
			return
		}
		if err := c.recover(p); err != nil {
			c.fail(err)
			return
		}
	}
}

// session reassembles in-order reply messages — a header message,
// followed (for successful reads) by the data chunks — until the
// connection breaks.
func (c *QPClient) session(p *sim.Proc) error {
	for {
		comp := c.ep.recvCQ.Wait(p)
		if comp.Status != verbs.StatusSuccess {
			//lint:qpip-allow hotalloc session-terminal error path
			return fmt.Errorf("nbd: recv completion %v", comp.Status)
		}
		rep, err := ParseReply(comp.Payload)
		if err != nil {
			return err
		}
		if err := c.ep.repostRecv(p, comp.WRID); err != nil {
			return err
		}
		var data buf.Buf
		if o := c.inflight[rep.Handle]; o != nil && o.isRead && rep.Error == 0 {
			var parts []buf.Buf
			need := qpChunks(o.length, c.ep.maxMsg)
			for i := 0; i < need; i++ {
				dc := c.ep.recvCQ.Wait(p)
				if dc.Status != verbs.StatusSuccess {
					//lint:qpip-allow hotalloc session-terminal error path
					return fmt.Errorf("nbd: data completion %v", dc.Status)
				}
				parts = append(parts, dc.Payload)
				if err := c.ep.repostRecv(p, dc.WRID); err != nil {
					return err
				}
			}
			data = buf.Concat(parts...)
		}
		c.complete(rep.Handle, rep.Error, data)
	}
}

// ServeQP runs the QPIP NBD server loop on an established QP until the
// peer closes. Requests arrive as in-order messages; replies go back the
// same way.
func ServeQP(p *sim.Proc, cpu *sim.CPU, qp *verbs.QP, sendCQ, recvCQ *verbs.CQ,
	maxMsg int, disk *storage.Disk) {
	ep := newEndpoint(qp, sendCQ, recvCQ, maxMsg, 128)
	if ep.fillRecvs(p, params.NBDQueueDepth) != nil {
		return
	}
	serveQPSession(p, cpu, ep, &storage.LocalDev{D: disk})
}

// serveQPSession serves requests on an established QP until the peer
// disconnects. It reports true on a clean CmdDisc, false when the
// connection broke — the resilient server recycles on false.
func serveQPSession(p *sim.Proc, cpu *sim.CPU, ep *qpEndpoint, dev *storage.LocalDev) bool {
	recvMsg := func() (buf.Buf, bool) {
		comp := ep.recvCQ.Wait(p)
		if comp.Status != verbs.StatusSuccess {
			return buf.Empty, false
		}
		if ep.repostRecv(p, comp.WRID) != nil {
			return buf.Empty, false
		}
		return comp.Payload, true
	}
	for {
		hdr, ok := recvMsg()
		if !ok {
			return false
		}
		req, err := ParseRequest(hdr)
		if err != nil {
			return false
		}
		p.Use(cpu.Server, params.US(ServerPerReqUS))
		switch req.Type {
		case CmdRead:
			data, _ := dev.Read(p, int64(req.Offset), int(req.Length))
			if ep.sendMsg(p, buf.Bytes(MarshalReply(&Reply{Handle: req.Handle}))) != nil {
				return false
			}
			if ep.sendChunked(p, data) != nil {
				return false
			}
		case CmdWrite:
			var parts []buf.Buf
			for i := 0; i < qpChunks(int(req.Length), ep.maxMsg); i++ {
				chunk, ok := recvMsg()
				if !ok {
					return false
				}
				parts = append(parts, chunk)
			}
			if dev.Write(p, int64(req.Offset), buf.Concat(parts...)) != nil {
				return false
			}
			if ep.sendMsg(p, buf.Bytes(MarshalReply(&Reply{Handle: req.Handle}))) != nil {
				return false
			}
		case CmdDisc:
			return true
		default:
			if ep.sendMsg(p, buf.Bytes(MarshalReply(&Reply{Handle: req.Handle, Error: 22}))) != nil {
				return false
			}
		}
	}
}
