package nbd_test

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/nbd"
	"repro/internal/params"
	"repro/internal/qpipnic"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/verbs"
)

const (
	diskSize  = 64 << 20
	nbdPort   = 10809
	testBytes = 2 << 20
)

func TestProtoRoundTrip(t *testing.T) {
	req := nbd.Request{Type: nbd.CmdWrite, Handle: 0xdeadbeef, Offset: 123456, Length: 65536}
	got, err := nbd.ParseRequest(buf.Bytes(nbd.MarshalRequest(&req)))
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Errorf("request round trip: %+v vs %+v", got, req)
	}
	rep := nbd.Reply{Error: 5, Handle: 99}
	gotRep, err := nbd.ParseReply(buf.Bytes(nbd.MarshalReply(&rep)))
	if err != nil {
		t.Fatal(err)
	}
	if gotRep != rep {
		t.Errorf("reply round trip: %+v vs %+v", gotRep, rep)
	}
	if _, err := nbd.ParseRequest(buf.Bytes(make([]byte, 28))); err == nil {
		t.Error("zero magic accepted")
	}
	if _, err := nbd.ParseReply(buf.Bytes([]byte{1})); err == nil {
		t.Error("short reply accepted")
	}
}

// sockSetup builds a sockets NBD pair over the given cluster (node 0 is
// the client, node 1 runs the server and disk) and runs fn as the client
// application with a mounted filesystem.
func sockSetup(t *testing.T, c *core.Cluster, fn func(p *sim.Proc, fs *storage.FS)) {
	t.Helper()
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	c.Spawn("nbd-server", func(p *sim.Proc) {
		lst := c.Nodes[1].Kernel.NewSocket(hostos.TCPSock)
		if err := lst.Listen(nbdPort, 4); err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		s := lst.Accept(p)
		s.SetNoDelay(true)
		s.SetSndBuf(256 * 1024)
		nbd.ServeSock(p, c.Nodes[1].CPU, s, disk)
	})
	c.Spawn("nbd-client", func(p *sim.Proc) {
		s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		s.SetSndBuf(256 * 1024)
		if err := s.Connect(p, c.Nodes[1].Addr4, nbdPort); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		cli := nbd.NewSockClient(c.Eng, c.Nodes[0].CPU, s, diskSize, params.NBDQueueDepth)
		fs := storage.NewFS(cli, c.Nodes[0].CPU, 4<<20)
		fn(p, fs)
	})
	c.Run()
}

// qpSetup builds a QPIP NBD pair (9000 B MTU per the paper's NBD runs).
func qpSetup(t *testing.T, fn func(p *sim.Proc, fs *storage.FS)) *core.Cluster {
	t.Helper()
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, QPIPMTU: params.MTUJumbo})
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	maxMsg := c.Nodes[0].QPIP.MaxMessage()

	c.Spawn("nbd-server", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[1].QPIP, 512)
		rcq := verbs.NewCQ(c.Nodes[1].QPIP, 512)
		qp, err := verbs.NewQP(c.Nodes[1].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 256, RecvDepth: 256,
		})
		if err != nil {
			t.Errorf("server NewQP: %v", err)
			return
		}
		lst, err := c.Nodes[1].QPIP.Listen(nbdPort)
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		if err := lst.Post(qp); err != nil {
			t.Errorf("Post: %v", err)
			return
		}
		if err := qp.WaitEstablished(p); err != nil {
			t.Errorf("server establish: %v", err)
			return
		}
		nbd.ServeQP(p, c.Nodes[1].CPU, qp, scq, rcq, maxMsg, disk)
	})
	c.Spawn("nbd-client", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[0].QPIP, 512)
		rcq := verbs.NewCQ(c.Nodes[0].QPIP, 512)
		qp, err := verbs.NewQP(c.Nodes[0].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			SendDepth: 256, RecvDepth: 256,
		})
		if err != nil {
			t.Errorf("client NewQP: %v", err)
			return
		}
		if err := qp.Connect(p, c.Nodes[1].Addr6, nbdPort); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		cli := nbd.NewQPClient(c.Eng, c.Nodes[0].CPU, qp, scq, rcq, maxMsg, diskSize, params.NBDQueueDepth)
		fs := storage.NewFS(cli, c.Nodes[0].CPU, 4<<20)
		fn(p, fs)
	})
	c.Run()
	return c
}

func writeReadCheck(t *testing.T) func(p *sim.Proc, fs *storage.FS) {
	return func(p *sim.Proc, fs *storage.FS) {
		want := buf.Pattern(256*1024, 7)
		if err := fs.WriteAt(p, 0, want); err != nil {
			t.Errorf("WriteAt: %v", err)
			return
		}
		if err := fs.Sync(p); err != nil {
			t.Errorf("Sync: %v", err)
			return
		}
		fs.Invalidate()
		got, err := fs.ReadAt(p, 0, want.Len())
		if err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		if !buf.Equal(got, want) {
			t.Error("data corrupted through NBD")
		}
	}
}

func TestNBDSocketsGigERoundTrip(t *testing.T) {
	c := core.NewCluster(2, core.NodeConfig{GigE: true})
	sockSetup(t, c, writeReadCheck(t))
}

func TestNBDSocketsGMRoundTrip(t *testing.T) {
	c := core.NewCluster(2, core.NodeConfig{GM: true})
	sockSetup(t, c, writeReadCheck(t))
}

func TestNBDQPRoundTrip(t *testing.T) {
	qpSetup(t, writeReadCheck(t))
}

// seqRead measures sequential read throughput after a priming write.
func seqRead(t *testing.T, run func(*testing.T, func(p *sim.Proc, fs *storage.FS))) (mbps float64) {
	t.Helper()
	run(t, func(p *sim.Proc, fs *storage.FS) {
		if err := fs.WriteAt(p, 0, buf.Virtual(testBytes)); err != nil {
			t.Errorf("prime write: %v", err)
			return
		}
		if err := fs.Sync(p); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		fs.Invalidate()
		start := p.Now()
		if _, err := fs.ReadAt(p, 0, testBytes); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		mbps = float64(testBytes) / 1e6 / (p.Now() - start).Seconds()
	})
	return mbps
}

func TestNBDQPFasterThanSockets(t *testing.T) {
	gige := seqRead(t, func(t *testing.T, fn func(p *sim.Proc, fs *storage.FS)) {
		sockSetup(t, core.NewCluster(2, core.NodeConfig{GigE: true}), fn)
	})
	qp := seqRead(t, func(t *testing.T, fn func(p *sim.Proc, fs *storage.FS)) {
		qpSetup(t, fn)
	})
	t.Logf("NBD sequential read: IP/GigE %.1f MB/s, QPIP %.1f MB/s", gige, qp)
	if qp <= gige {
		t.Errorf("QPIP NBD (%.1f MB/s) not faster than sockets/GigE (%.1f MB/s)", qp, gige)
	}
	// Paper Figure 7: 40%-137% throughput improvement.
	if qp < 1.2*gige {
		t.Errorf("QPIP advantage only %.0f%%, expected >20%%", (qp/gige-1)*100)
	}
}

func TestNBDReadaheadEngages(t *testing.T) {
	c := core.NewCluster(2, core.NodeConfig{GigE: true})
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	var cli *nbd.SockClient
	c.Spawn("nbd-server", func(p *sim.Proc) {
		lst := c.Nodes[1].Kernel.NewSocket(hostos.TCPSock)
		lst.Listen(nbdPort, 4)
		s := lst.Accept(p)
		s.SetSndBuf(256 * 1024)
		nbd.ServeSock(p, c.Nodes[1].CPU, s, disk)
	})
	c.Spawn("nbd-client", func(p *sim.Proc) {
		s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
		s.SetNoDelay(true)
		if err := s.Connect(p, c.Nodes[1].Addr4, nbdPort); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		cli = nbd.NewSockClient(c.Eng, c.Nodes[0].CPU, s, diskSize, 8)
		fs := storage.NewFS(cli, c.Nodes[0].CPU, 4<<20)
		fs.ReadAt(p, 0, 1<<20)
	})
	c.Run()
	_, _, ra := cli.Stats()
	if ra == 0 {
		t.Error("sequential read issued no readahead")
	}
}

func TestQPChecksumModeStillCorrect(t *testing.T) {
	// Firmware checksum path must not corrupt data, only slow it down.
	c := core.NewCluster(2, core.NodeConfig{
		QPIP: true, QPIPMTU: params.MTUJumbo, QPIPChecksum: qpipnic.ChecksumFirmware,
	})
	disk := storage.NewDisk(c.Eng, "server.disk", diskSize)
	maxMsg := c.Nodes[0].QPIP.MaxMessage()
	c.Spawn("nbd-server", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[1].QPIP, 512)
		rcq := verbs.NewCQ(c.Nodes[1].QPIP, 512)
		qp, _ := verbs.NewQP(c.Nodes[1].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq, SendDepth: 256, RecvDepth: 256,
		})
		lst, _ := c.Nodes[1].QPIP.Listen(nbdPort)
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			t.Errorf("establish: %v", err)
			return
		}
		nbd.ServeQP(p, c.Nodes[1].CPU, qp, scq, rcq, maxMsg, disk)
	})
	c.Spawn("nbd-client", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[0].QPIP, 512)
		rcq := verbs.NewCQ(c.Nodes[0].QPIP, 512)
		qp, _ := verbs.NewQP(c.Nodes[0].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq, SendDepth: 256, RecvDepth: 256,
		})
		if err := qp.Connect(p, c.Nodes[1].Addr6, nbdPort); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		cli := nbd.NewQPClient(c.Eng, c.Nodes[0].CPU, qp, scq, rcq, maxMsg, diskSize, 4)
		fs := storage.NewFS(cli, c.Nodes[0].CPU, 1<<20)
		writeReadCheck(t)(p, fs)
	})
	c.Run()
}
