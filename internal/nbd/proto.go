// Package nbd implements the Network Block Device application of the
// paper's storage experiment (§4.2.3): "a client-server application where
// client block I/O requests are forwarded to a server that emulates a
// network attached disk." Both the classic sockets transport and the QPIP
// transport are provided; the paper modified the Linux client driver and
// user-level server to use QPIP and compared the two (Figures 5 and 6).
package nbd

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/buf"
)

// Wire constants (classic Linux NBD protocol).
const (
	ReqMagic = 0x25609513
	RepMagic = 0x67446698

	CmdRead  = 0
	CmdWrite = 1
	CmdDisc  = 2

	// RequestLen is the fixed request header size.
	RequestLen = 28
	// ReplyLen is the fixed reply header size.
	ReplyLen = 16
)

// Request is one block I/O request.
type Request struct {
	Type   uint32
	Handle uint64
	Offset uint64
	Length uint32
}

// Reply is one response header; read data follows on the wire.
type Reply struct {
	Error  uint32
	Handle uint64
}

// MarshalRequest serializes a request header.
func MarshalRequest(r *Request) []byte {
	b := make([]byte, RequestLen)
	binary.BigEndian.PutUint32(b[0:], ReqMagic)
	binary.BigEndian.PutUint32(b[4:], r.Type)
	binary.BigEndian.PutUint64(b[8:], r.Handle)
	binary.BigEndian.PutUint64(b[16:], r.Offset)
	binary.BigEndian.PutUint32(b[24:], r.Length)
	return b
}

// Errors from parsing.
var (
	ErrBadMagic  = errors.New("nbd: bad magic")
	ErrTruncated = errors.New("nbd: truncated header")
)

// ParseRequest decodes a request header.
func ParseRequest(b buf.Buf) (Request, error) {
	var r Request
	if b.Len() < RequestLen {
		return r, fmt.Errorf("%w: %d bytes", ErrTruncated, b.Len())
	}
	d := b.Data()
	if binary.BigEndian.Uint32(d[0:]) != ReqMagic {
		return r, ErrBadMagic
	}
	r.Type = binary.BigEndian.Uint32(d[4:])
	r.Handle = binary.BigEndian.Uint64(d[8:])
	r.Offset = binary.BigEndian.Uint64(d[16:])
	r.Length = binary.BigEndian.Uint32(d[24:])
	return r, nil
}

// MarshalReply serializes a reply header.
func MarshalReply(r *Reply) []byte {
	b := make([]byte, ReplyLen)
	binary.BigEndian.PutUint32(b[0:], RepMagic)
	binary.BigEndian.PutUint32(b[4:], r.Error)
	binary.BigEndian.PutUint64(b[8:], r.Handle)
	return b
}

// ParseReply decodes a reply header.
func ParseReply(b buf.Buf) (Reply, error) {
	var r Reply
	if b.Len() < ReplyLen {
		return r, fmt.Errorf("%w: %d bytes", ErrTruncated, b.Len())
	}
	d := b.Data()
	if binary.BigEndian.Uint32(d[0:]) != RepMagic {
		return r, ErrBadMagic
	}
	r.Error = binary.BigEndian.Uint32(d[4:])
	r.Handle = binary.BigEndian.Uint64(d[8:])
	return r, nil
}

// Driver CPU costs (client block layer + NBD driver, and the user-level
// server's request handling). The QP integration eliminated "multiple
// socket calls and OS specific wrappers" (paper §4.2.3); the transports
// charge their own I/O costs on top of these.
const (
	ClientPerReqUS = 6.0
	ServerPerReqUS = 5.0
)
