package core_test

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/verbs"
)

func TestClusterWiresQPIPNodes(t *testing.T) {
	c := core.NewCluster(3, core.NodeConfig{QPIP: true})
	if c.Myrinet == nil {
		t.Fatal("no Myrinet fabric for QPIP nodes")
	}
	if c.Eth != nil {
		t.Fatal("spurious Ethernet fabric")
	}
	for i, n := range c.Nodes {
		if n.QPIP == nil {
			t.Fatalf("node %d missing QPIP adapter", i)
		}
		if n.Kernel != nil {
			t.Fatalf("node %d has a kernel without host devices", i)
		}
		if _, err := c.Routes6.Lookup(n.Addr6); err != nil {
			t.Fatalf("node %d unrouted: %v", i, err)
		}
	}
}

func TestClusterWiresHostNodes(t *testing.T) {
	c := core.NewCluster(2, core.NodeConfig{GigE: true, GM: true})
	if c.Eth == nil || c.Myrinet == nil {
		t.Fatal("missing fabric")
	}
	for i, n := range c.Nodes {
		if n.Kernel == nil || n.GigEDev == nil || n.GMDev == nil {
			t.Fatalf("node %d incompletely wired", i)
		}
	}
	// Kernels share the node CPU.
	if c.Nodes[0].Kernel.CPU() != c.Nodes[0].CPU {
		t.Fatal("kernel does not share the node CPU")
	}
}

// Three-node test: two clients talk to one QPIP server concurrently over
// separate QPs, exercising multi-connection demux on one adapter.
func TestThreeNodeConcurrentConnections(t *testing.T) {
	c := core.NewCluster(3, core.NodeConfig{QPIP: true})
	const port = 7000
	lst, err := c.Nodes[0].QPIP.Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]buf.Buf{}
	for i := 0; i < 2; i++ {
		scq := verbs.NewCQ(c.Nodes[0].QPIP, 64)
		rcq := verbs.NewCQ(c.Nodes[0].QPIP, 64)
		qp, err := verbs.NewQP(c.Nodes[0].QPIP, verbs.QPConfig{
			Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := lst.Post(qp); err != nil {
			t.Fatal(err)
		}
		idx := i
		c.Spawn("server", func(p *sim.Proc) {
			if err := qp.WaitEstablished(p); err != nil {
				t.Errorf("server establish: %v", err)
				return
			}
			qp.PostRecv(p, verbs.RecvWR{ID: 1, Capacity: 4096})
			comp := rcq.Wait(p)
			got[idx] = comp.Payload
		})
	}
	for i := 1; i <= 2; i++ {
		node := c.Nodes[i]
		seed := byte(i)
		c.Spawn("client", func(p *sim.Proc) {
			scq := verbs.NewCQ(node.QPIP, 64)
			rcq := verbs.NewCQ(node.QPIP, 64)
			qp, err := verbs.NewQP(node.QPIP, verbs.QPConfig{
				Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq,
			})
			if err != nil {
				t.Errorf("NewQP: %v", err)
				return
			}
			if err := qp.Connect(p, c.Nodes[0].Addr6, port); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			if err := qp.PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Pattern(1000, seed)}); err != nil {
				t.Errorf("PostSend: %v", err)
				return
			}
			scq.Wait(p)
		})
	}
	c.Run()
	if len(got) != 2 {
		t.Fatalf("server completed %d connections, want 2", len(got))
	}
	// Each message arrived intact from one of the clients: the first byte
	// of Pattern(n, seed) is the seed, and the whole payload must match.
	seen := map[byte]bool{}
	for _, b := range got {
		d := b.Data()
		if len(d) != 1000 {
			t.Fatalf("message length %d", len(d))
		}
		if !buf.Equal(b, buf.Pattern(1000, d[0])) {
			t.Fatal("message corrupted")
		}
		seen[d[0]] = true
	}
	if len(seen) != 2 {
		t.Fatalf("messages not from distinct clients: %v", seen)
	}
}

// Mixed cluster: QPIP and host sockets coexist on the same nodes, each
// over its own fabric.
func TestMixedStackNodes(t *testing.T) {
	c := core.NewCluster(2, core.NodeConfig{QPIP: true, GigE: true})
	doneSock, doneQP := false, false
	c.Spawn("sock-server", func(p *sim.Proc) {
		lst := c.Nodes[1].Kernel.NewSocket(hostos.TCPSock)
		lst.Listen(5001, 4)
		s := lst.Accept(p)
		if _, err := s.RecvFull(p, 100); err == nil {
			doneSock = true
		}
	})
	c.Spawn("sock-client", func(p *sim.Proc) {
		s := c.Nodes[0].Kernel.NewSocket(hostos.TCPSock)
		if err := s.Connect(p, c.Nodes[1].Addr4, 5001); err != nil {
			t.Errorf("sock connect: %v", err)
			return
		}
		s.Send(p, buf.Virtual(100))
	})
	c.Spawn("qp-server", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[1].QPIP, 16)
		rcq := verbs.NewCQ(c.Nodes[1].QPIP, 16)
		qp, _ := verbs.NewQP(c.Nodes[1].QPIP, verbs.QPConfig{Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq})
		lst, _ := c.Nodes[1].QPIP.Listen(7000)
		lst.Post(qp)
		if err := qp.WaitEstablished(p); err != nil {
			t.Errorf("qp establish: %v", err)
			return
		}
		qp.PostRecv(p, verbs.RecvWR{ID: 1, Capacity: 256})
		rcq.Wait(p)
		doneQP = true
	})
	c.Spawn("qp-client", func(p *sim.Proc) {
		scq := verbs.NewCQ(c.Nodes[0].QPIP, 16)
		rcq := verbs.NewCQ(c.Nodes[0].QPIP, 16)
		qp, _ := verbs.NewQP(c.Nodes[0].QPIP, verbs.QPConfig{Transport: verbs.Reliable, SendCQ: scq, RecvCQ: rcq})
		if err := qp.Connect(p, c.Nodes[1].Addr6, 7000); err != nil {
			t.Errorf("qp connect: %v", err)
			return
		}
		qp.PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Virtual(100)})
		scq.Wait(p)
	})
	c.Run()
	if !doneSock || !doneQP {
		t.Fatalf("sock=%v qp=%v", doneSock, doneQP)
	}
	_ = params.MTUQPIP
}
