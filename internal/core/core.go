// Package core composes the simulated testbed: nodes (host CPU, PCI bus,
// kernel, adapters) wired onto Myrinet and Gigabit Ethernet fabrics —
// the paper's pair of Dell PowerEdge 6350 servers with a LANai 9 Myrinet
// adapter and an Intel Pro1000 on each (§4.2).
package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gige"
	"repro/internal/gm"
	"repro/internal/hostos"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/qpipnic"
	"repro/internal/sim"
)

// NodeConfig selects the adapters a node carries.
type NodeConfig struct {
	// QPIP attaches a QPIP adapter (implies the Myrinet fabric).
	QPIP bool
	// QPIPMTU is the QPIP native MTU (default 16 KB, paper §4.2.1).
	QPIPMTU int
	// QPIPChecksum selects receive checksum placement.
	QPIPChecksum qpipnic.ChecksumMode
	// QPIPPipelinedTX / QPIPNoDelAck are ablation knobs.
	QPIPPipelinedTX bool
	QPIPNoDelAck    bool
	// QPIPMaxQPs bounds the adapter's SRAM-resident QP/TCB table
	// (default params.QPIPMaxQPs); CreateQP beyond it is refused.
	QPIPMaxQPs int
	// QPIPCQCoalescePkts / QPIPCQCoalesceDelay pace the per-CQ completion
	// event lines (unified hw.IRQLine model). Zero = immediate wakes,
	// timing-identical to the pre-coalescing path.
	QPIPCQCoalescePkts  int
	QPIPCQCoalesceDelay sim.Time
	// GigE attaches a Pro1000-class adapter running the host stack.
	GigE bool
	// GigEMTU is the Ethernet MTU (1500 default; 9000 jumbo).
	GigEMTU int
	// GM attaches a Myrinet adapter as an IP device (the IP/Myrinet
	// baseline, 9000 B MTU default).
	GM bool
	// GMMTU overrides the GM IP MTU.
	GMMTU int
}

// Node is one simulated server.
type Node struct {
	Index int
	CPU   *sim.CPU
	Bus   *hw.PCIBus
	// Kernel is the host OS (present whenever GigE or GM is attached, or
	// when the node runs socket applications).
	Kernel *hostos.Kernel
	// QPIP is the offloaded adapter, nil if not configured.
	QPIP *qpipnic.NIC
	// GigEDev / GMDev are the conventional adapters, nil if absent.
	GigEDev *gige.Device
	GMDev   *gm.Device

	Addr4 inet.Addr4
	Addr6 inet.Addr6
}

// Cluster is a set of nodes on shared fabrics.
type Cluster struct {
	Eng     *sim.Engine
	Myrinet *fabric.Fabric
	Eth     *fabric.Fabric
	Routes6 *inet.Table6
	Nodes   []*Node
}

// NewCluster builds n identically configured nodes.
func NewCluster(n int, cfg NodeConfig) *Cluster {
	eng := sim.NewEngine()
	c := &Cluster{Eng: eng, Routes6: inet.NewTable6()}
	needMyri := cfg.QPIP || cfg.GM
	if needMyri {
		c.Myrinet = fabric.New(eng, fabric.Config{
			Name:         "myri",
			Bandwidth:    params.MyrinetBandwidth,
			LinkOverhead: params.MyrinetHeaderBytes,
			CutThrough:   true,
			HopLatency:   params.MyrinetHopLatency,
			PropDelay:    params.CableLatency,
		})
	}
	if cfg.GigE {
		mtu := cfg.GigEMTU
		if mtu <= 0 {
			mtu = params.MTUEthernet
		}
		c.Eth = fabric.New(eng, fabric.Config{
			Name:         "eth",
			Bandwidth:    params.GigEBandwidth,
			MTU:          mtu,
			LinkOverhead: params.EthernetOverhead,
			HopLatency:   params.GigESwitchLatency,
			PropDelay:    params.CableLatency,
		})
	}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, c.addNode(i, cfg))
	}
	// Static routing tables: every node knows every other (the paper's
	// static address resolution, §4.1).
	for _, a := range c.Nodes {
		for _, b := range c.Nodes {
			if a == b {
				continue
			}
			if a.Kernel != nil {
				switch {
				case a.GigEDev != nil && b.GigEDev != nil:
					a.Kernel.AddRoute(b.Addr4, a.GigEDev, b.GigEDev.Attachment())
				case a.GMDev != nil && b.GMDev != nil:
					a.Kernel.AddRoute(b.Addr4, a.GMDev, b.GMDev.Attachment())
				}
			}
		}
	}
	return c
}

func (c *Cluster) addNode(i int, cfg NodeConfig) *Node {
	eng := c.Eng
	name := fmt.Sprintf("node%d", i)
	node := &Node{
		Index: i,
		CPU:   sim.NewCPU(eng, name+".cpu0", params.HostClockHz),
		Bus:   hw.NewPCIBus(eng, name+".pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency),
		Addr4: inet.NodeAddr4(i),
		Addr6: inet.NodeAddr6(i),
	}
	if cfg.GigE || cfg.GM {
		node.Kernel = hostos.NewKernel(eng, name, node.Addr4, node.CPU, node.Bus)
	}
	if cfg.QPIP {
		node.QPIP = qpipnic.New(eng, c.Myrinet, qpipnic.Config{
			Name:        name + ".qpip",
			Addr:        node.Addr6,
			MTU:         cfg.QPIPMTU,
			Checksum:    cfg.QPIPChecksum,
			PipelinedTX: cfg.QPIPPipelinedTX,
			NoDelAck:    cfg.QPIPNoDelAck,
			HostCPU:     node.CPU,
			Bus:         node.Bus,
			Routes:      c.Routes6,
			MaxQPs:      cfg.QPIPMaxQPs,

			CQCoalescePkts:  cfg.QPIPCQCoalescePkts,
			CQCoalesceDelay: cfg.QPIPCQCoalesceDelay,
		})
		c.Routes6.Add(node.Addr6, node.QPIP.Attachment())
	}
	if cfg.GigE {
		node.GigEDev = gige.New(eng, node.Kernel, c.Eth, gige.Config{
			Name: name + ".eth0",
			MTU:  cfg.GigEMTU,
		})
	}
	if cfg.GM {
		node.GMDev = gm.New(eng, node.Kernel, c.Myrinet, gm.Config{
			Name: name + ".myri0",
			MTU:  cfg.GMMTU,
		})
	}
	return node
}

// Spawn starts an application process on the cluster.
func (c *Cluster) Spawn(name string, fn func(*sim.Proc)) *sim.Proc {
	return c.Eng.Spawn(name, fn)
}

// Run drives the simulation until quiescent.
func (c *Cluster) Run() { c.Eng.Run() }

// RunFor drives the simulation for d of simulated time.
func (c *Cluster) RunFor(d sim.Time) { c.Eng.RunFor(d) }
