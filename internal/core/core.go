// Package core composes the simulated testbed: nodes (host CPU, PCI bus,
// kernel, adapters) wired onto Myrinet and Gigabit Ethernet fabrics —
// the paper's pair of Dell PowerEdge 6350 servers with a LANai 9 Myrinet
// adapter and an Intel Pro1000 on each (§4.2).
package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gige"
	"repro/internal/gm"
	"repro/internal/hostos"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/qpipnic"
	"repro/internal/sim"
	"repro/internal/sim/par"
	"repro/internal/topo"
)

// NodeConfig selects the adapters a node carries.
type NodeConfig struct {
	// QPIP attaches a QPIP adapter (implies the Myrinet fabric).
	QPIP bool
	// Topology selects the Myrinet fabric's switch graph (internal/topo).
	// The zero value keeps the legacy single-star fast path; topo.Star
	// models the same star through the explicit multi-hop machinery.
	Topology topo.Spec
	// QPIPMTU is the QPIP native MTU (default 16 KB, paper §4.2.1).
	QPIPMTU int
	// QPIPChecksum selects receive checksum placement.
	QPIPChecksum qpipnic.ChecksumMode
	// QPIPPipelinedTX / QPIPNoDelAck are ablation knobs.
	QPIPPipelinedTX bool
	QPIPNoDelAck    bool
	// QPIPMaxQPs bounds the adapter's SRAM-resident QP/TCB table
	// (default params.QPIPMaxQPs); CreateQP beyond it is refused.
	QPIPMaxQPs int
	// QPIPCQCoalescePkts / QPIPCQCoalesceDelay pace the per-CQ completion
	// event lines (unified hw.IRQLine model). Zero = immediate wakes,
	// timing-identical to the pre-coalescing path.
	QPIPCQCoalescePkts  int
	QPIPCQCoalesceDelay sim.Time
	// GigE attaches a Pro1000-class adapter running the host stack.
	GigE bool
	// GigEMTU is the Ethernet MTU (1500 default; 9000 jumbo).
	GigEMTU int
	// GM attaches a Myrinet adapter as an IP device (the IP/Myrinet
	// baseline, 9000 B MTU default).
	GM bool
	// GMMTU overrides the GM IP MTU.
	GMMTU int
}

// Node is one simulated server.
type Node struct {
	Index int
	CPU   *sim.CPU
	Bus   *hw.PCIBus
	// Kernel is the host OS (present whenever GigE or GM is attached, or
	// when the node runs socket applications).
	Kernel *hostos.Kernel
	// QPIP is the offloaded adapter, nil if not configured.
	QPIP *qpipnic.NIC
	// GigEDev / GMDev are the conventional adapters, nil if absent.
	GigEDev *gige.Device
	GMDev   *gm.Device

	Addr4 inet.Addr4
	Addr6 inet.Addr6
}

// ShardPlan partitions a cluster's nodes across parallel shard engines for
// conservative parallel execution (internal/sim/par). The zero value (or a
// Shards of 0/1 via NewCluster) is the plain sequential cluster.
type ShardPlan struct {
	// Shards is the number of shard engines (one worker goroutine each;
	// the Go scheduler spreads them across GOMAXPROCS cores).
	Shards int
	// NodeShard maps a node index to its shard. Nil means round-robin
	// (node i on shard i%Shards).
	NodeShard func(node int) int
	// Isolate declares that no traffic will cross shard boundaries (the
	// workload keeps communicating nodes co-sharded). All cross-shard
	// fabric links are severed — a stray cross-shard frame panics — and
	// the runner skips epoch barriers entirely: shards run free to
	// quiescence, embarrassingly parallel.
	Isolate bool
}

// Cluster is a set of nodes on shared fabrics.
type Cluster struct {
	// Eng is the first (and, unsharded, only) engine — the scheduling home
	// of Spawn and of cluster-wide timers.
	Eng *sim.Engine
	// Engines holds one engine per shard; len 1 when unsharded.
	Engines []*sim.Engine
	Myrinet *fabric.Fabric
	Eth     *fabric.Fabric
	Routes6 *inet.Table6
	Nodes   []*Node

	shardOf []int // node index -> shard
	sharded bool  // built by NewShardedCluster: Run uses the parallel runner
}

// NewCluster builds n identically configured nodes on one engine.
func NewCluster(n int, cfg NodeConfig) *Cluster {
	return newCluster(n, cfg, ShardPlan{Shards: 1}, false)
}

// NewShardedCluster builds n identically configured nodes partitioned
// across plan.Shards engines, and Run drives them with the conservative
// parallel runner. A plan of 1 shard runs the identical event schedule as
// NewCluster through the runner's worker machinery — the equivalence
// tests' middle rung.
func NewShardedCluster(n int, cfg NodeConfig, plan ShardPlan) *Cluster {
	if plan.Shards < 1 {
		plan.Shards = 1
	}
	return newCluster(n, cfg, plan, true)
}

func newCluster(n int, cfg NodeConfig, plan ShardPlan, sharded bool) *Cluster {
	engines := make([]*sim.Engine, plan.Shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	c := &Cluster{
		Eng:     engines[0],
		Engines: engines,
		Routes6: inet.NewTable6(),
		sharded: sharded,
		shardOf: make([]int, n),
	}
	for i := 0; i < n; i++ {
		s := i % plan.Shards
		if plan.NodeShard != nil {
			s = plan.NodeShard(i)
		}
		if s < 0 || s >= plan.Shards {
			panic(fmt.Sprintf("core: node %d mapped to shard %d of %d", i, s, plan.Shards))
		}
		c.shardOf[i] = s
	}
	eng := c.Eng
	needMyri := cfg.QPIP || cfg.GM
	if needMyri {
		var g *topo.Graph
		if cfg.Topology.Kind != topo.None {
			g = topo.Build(cfg.Topology, n)
		}
		c.Myrinet = fabric.New(eng, fabric.Config{
			Name:         "myri",
			Bandwidth:    params.MyrinetBandwidth,
			LinkOverhead: params.MyrinetHeaderBytes,
			CutThrough:   true,
			HopLatency:   params.MyrinetHopLatency,
			PropDelay:    params.CableLatency,
			Topo:         g,
		})
	}
	if cfg.GigE {
		mtu := cfg.GigEMTU
		if mtu <= 0 {
			mtu = params.MTUEthernet
		}
		c.Eth = fabric.New(eng, fabric.Config{
			Name:         "eth",
			Bandwidth:    params.GigEBandwidth,
			MTU:          mtu,
			LinkOverhead: params.EthernetOverhead,
			HopLatency:   params.GigESwitchLatency,
			PropDelay:    params.CableLatency,
		})
	}
	if plan.Isolate {
		if c.Myrinet != nil {
			c.Myrinet.SeverCrossShard()
		}
		if c.Eth != nil {
			c.Eth.SeverCrossShard()
		}
	}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, c.addNode(i, cfg))
	}
	// Static routing tables: every node knows every other (the paper's
	// static address resolution, §4.1).
	for _, a := range c.Nodes {
		for _, b := range c.Nodes {
			if a == b {
				continue
			}
			if a.Kernel != nil {
				switch {
				case a.GigEDev != nil && b.GigEDev != nil:
					a.Kernel.AddRoute(b.Addr4, a.GigEDev, b.GigEDev.Attachment())
				case a.GMDev != nil && b.GMDev != nil:
					a.Kernel.AddRoute(b.Addr4, a.GMDev, b.GMDev.Attachment())
				}
			}
		}
	}
	return c
}

func (c *Cluster) addNode(i int, cfg NodeConfig) *Node {
	eng := c.EngineOf(i)
	name := fmt.Sprintf("node%d", i)
	node := &Node{
		Index: i,
		CPU:   sim.NewCPU(eng, name+".cpu0", params.HostClockHz),
		Bus:   hw.NewPCIBus(eng, name+".pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency),
		Addr4: inet.NodeAddr4(i),
		Addr6: inet.NodeAddr6(i),
	}
	if cfg.GigE || cfg.GM {
		node.Kernel = hostos.NewKernel(eng, name, node.Addr4, node.CPU, node.Bus)
	}
	if cfg.QPIP {
		node.QPIP = qpipnic.New(eng, c.Myrinet, qpipnic.Config{
			Name:        name + ".qpip",
			Addr:        node.Addr6,
			MTU:         cfg.QPIPMTU,
			Checksum:    cfg.QPIPChecksum,
			PipelinedTX: cfg.QPIPPipelinedTX,
			NoDelAck:    cfg.QPIPNoDelAck,
			HostCPU:     node.CPU,
			Bus:         node.Bus,
			Routes:      c.Routes6,
			MaxQPs:      cfg.QPIPMaxQPs,

			CQCoalescePkts:  cfg.QPIPCQCoalescePkts,
			CQCoalesceDelay: cfg.QPIPCQCoalesceDelay,
		})
		c.Routes6.Add(node.Addr6, node.QPIP.Attachment())
	}
	if cfg.GigE {
		node.GigEDev = gige.New(eng, node.Kernel, c.Eth, gige.Config{
			Name: name + ".eth0",
			MTU:  cfg.GigEMTU,
		})
	}
	if cfg.GM {
		node.GMDev = gm.New(eng, node.Kernel, c.Myrinet, gm.Config{
			Name: name + ".myri0",
			MTU:  cfg.GMMTU,
		})
	}
	return node
}

// EngineOf reports the shard engine node i lives on.
func (c *Cluster) EngineOf(node int) *sim.Engine {
	return c.Engines[c.shardOf[node]]
}

// Shards reports the number of shard engines.
func (c *Cluster) Shards() int { return len(c.Engines) }

// Spawn starts an application process on the cluster (on shard 0 — fine
// sequentially; sharded workloads use SpawnOn so a process shares its
// node's engine).
func (c *Cluster) Spawn(name string, fn func(*sim.Proc)) *sim.Proc {
	return c.Eng.Spawn(name, fn)
}

// SpawnOn starts an application process on node's shard engine. Processes
// must run where their node's adapters do: verbs calls schedule events on
// the current engine, and CQ wakes arrive from the node's NIC.
func (c *Cluster) SpawnOn(node int, name string, fn func(*sim.Proc)) *sim.Proc {
	return c.EngineOf(node).Spawn(name, fn)
}

// lookahead computes the parallel runner's epoch window: the minimum
// cross-shard latency over the cluster's fabrics. ok=false means no
// unsevered cross-shard link exists (shards run free, no barriers).
func (c *Cluster) lookahead() (sim.Time, bool) {
	la, ok := sim.Time(0), false
	for _, f := range []*fabric.Fabric{c.Myrinet, c.Eth} {
		if f == nil {
			continue
		}
		if l, cross := f.CrossShardLookahead(); cross && (!ok || l < la) {
			la, ok = l, true
		}
	}
	return la, ok
}

// exchange drains every fabric's cross-shard mailboxes at an epoch
// barrier, in fixed fabric order; fabrics drain ports in attachment order.
//
//qpip:barrier
func (c *Cluster) exchange() int {
	n := 0
	for _, f := range []*fabric.Fabric{c.Myrinet, c.Eth} {
		if f != nil {
			n += f.DrainMailboxes()
		}
	}
	return n
}

// parConfig assembles the conservative runner's configuration.
func (c *Cluster) parConfig() par.Config {
	la, cross := c.lookahead()
	if cross && la <= 0 {
		panic("core: sharded cluster with zero cross-shard lookahead cannot advance")
	}
	cfg := par.Config{Engines: c.Engines, Exchange: c.exchange}
	if cross {
		cfg.Lookahead = la
	}
	return cfg
}

// Run drives the simulation until quiescent: directly on the engine for a
// sequential cluster, via the conservative parallel runner (lookahead
// epochs, barrier frame exchange) for a sharded one.
func (c *Cluster) Run() {
	if !c.sharded {
		c.Eng.Run()
		return
	}
	par.Run(c.parConfig())
}

// RunFor drives the simulation for d of simulated time.
func (c *Cluster) RunFor(d sim.Time) {
	if !c.sharded {
		c.Eng.RunFor(d)
		return
	}
	var now sim.Time
	for _, e := range c.Engines {
		if e.Now() > now {
			now = e.Now()
		}
	}
	par.RunUntil(c.parConfig(), now+d)
}

// EndTime reports when the simulation last did work: the maximum
// LastEventAt over shard engines. For a drained sequential cluster this
// equals Eng.Now(); for a sharded run it is the mode-independent end
// timestamp (shard clocks are forced past the last event by the epoch
// horizon, so Now is not comparable).
func (c *Cluster) EndTime() sim.Time {
	var end sim.Time
	for _, e := range c.Engines {
		if t := e.LastEventAt(); t > end {
			end = t
		}
	}
	return end
}

// FiredTotal reports the number of events executed across all shards —
// invariant across sequential, 1-shard, and N-shard runs of the same
// workload (a cross-shard handoff replaces one locally scheduled delivery
// with one injected delivery).
func (c *Cluster) FiredTotal() uint64 {
	var total uint64
	for _, e := range c.Engines {
		total += e.Fired()
	}
	return total
}
