// Package topo describes switched multi-hop fabric topologies: a graph of
// switches and endpoint attachments plus precomputed source routes. The
// paper's testbed is a single Myrinet switch (a star); this package keeps
// the star as the degenerate case and adds the cluster-scale shapes the
// scale-out experiments sweep — a ring, a 2D mesh with dimension-order
// routing, and a two-level fat tree — so internal/fabric can forward
// frames hop by hop along a route instead of assuming one crossbar.
//
// Everything here is immutable after Build: the graph and every route are
// computed eagerly and then only read, so shard engines may share one
// *Graph without synchronization. All iteration is over slices in index
// order — never over maps — keeping route construction deterministic
// (the qpiplint maporder contract).
package topo

import "fmt"

// Kind selects a topology family.
type Kind int

const (
	// None means no topology: the fabric uses its legacy single-star
	// fast path with no modeled switch graph.
	None Kind = iota
	// Star is one switch with every endpoint directly attached — the
	// paper's testbed, expressed as a one-hop route through the graph.
	Star
	// Ring is one switch per endpoint, linked in a cycle; routes take
	// the shorter direction (ties go clockwise).
	Ring
	// Mesh is a W x H grid, one switch per grid point, endpoints on the
	// first N switches, dimension-order (XY or YX) routed.
	Mesh
	// FatTree is a two-level Clos: leaves hold Arity endpoints each and
	// connect to Arity spines; cross-leaf routes go up to the spine
	// selected by the destination and back down.
	FatTree
)

// String names the kind for reports and flags.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Star:
		return "star"
	case Ring:
		return "ring"
	case Mesh:
		return "mesh"
	case FatTree:
		return "fattree"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a flag string to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none", "":
		return None, nil
	case "star":
		return Star, nil
	case "ring":
		return Ring, nil
	case "mesh":
		return Mesh, nil
	case "fattree":
		return FatTree, nil
	}
	return None, fmt.Errorf("topo: unknown kind %q (star|ring|mesh|fattree)", s)
}

// Spec selects and parameterizes a topology.
type Spec struct {
	Kind Kind
	// W, H are the mesh dimensions. Zero means auto-factor: the smallest
	// near-square grid with W*H >= n.
	W, H int
	// YX selects YX dimension order for mesh routes (default XY).
	YX bool
	// Arity is the fat tree's endpoints-per-leaf (and spine count);
	// default 4.
	Arity int
}

// Hop is one switch traversal of a source route: the frame enters switch
// Sw on port In and leaves on port Out.
type Hop struct {
	Sw, In, Out int
}

// Port describes what one switch port connects to. Exactly one of Ep and
// Sw is >= 0 (or both are -1 for an unwired port, e.g. a mesh edge).
type Port struct {
	// Ep is the attached endpoint, or -1.
	Ep int
	// Sw / In identify the peer switch port (frames leaving here enter
	// switch Sw on port In), or -1.
	Sw, In int
}

func epPort(ep int) Port      { return Port{Ep: ep, Sw: -1, In: -1} }
func swPort(sw, in int) Port  { return Port{Ep: -1, Sw: sw, In: in} }
func unwired() Port           { return Port{Ep: -1, Sw: -1, In: -1} }
func (p Port) Wired() bool    { return p.Ep >= 0 || p.Sw >= 0 }
func (p Port) Endpoint() bool { return p.Ep >= 0 }

// Graph is an immutable switch graph with every endpoint-pair route
// precomputed. Build it once; share it freely across shard engines.
type Graph struct {
	spec Spec
	n    int
	// switches[s][p] is switch s's port table.
	switches [][]Port
	// home[e] / homePort[e] locate endpoint e's attachment switch port.
	home, homePort []int
	// routes[src*n+dst] is the hop vector from src to dst.
	routes [][]Hop
}

// Spec reports the building spec (with defaults resolved).
func (g *Graph) Spec() Spec { return g.spec }

// Endpoints reports the number of endpoint attachments.
func (g *Graph) Endpoints() int { return g.n }

// Switches reports the number of switches.
func (g *Graph) Switches() int { return len(g.switches) }

// Ports reports switch s's port count.
func (g *Graph) Ports(s int) int { return len(g.switches[s]) }

// PortAt reports what switch s's port p connects to.
func (g *Graph) PortAt(s, p int) Port { return g.switches[s][p] }

// Home reports endpoint e's attachment switch and the port on it.
func (g *Graph) Home(e int) (sw, port int) { return g.home[e], g.homePort[e] }

// Route reports the precomputed hop vector from src to dst. The returned
// slice is shared and read-only.
func (g *Graph) Route(src, dst int) []Hop { return g.routes[src*g.n+dst] }

// Diameter reports the longest precomputed route's hop count.
func (g *Graph) Diameter() int {
	d := 0
	for _, r := range g.routes {
		if len(r) > d {
			d = len(r)
		}
	}
	return d
}

// Build constructs the graph for spec over n endpoints and precomputes
// all n*n routes. It panics on an invalid spec — topology is build-time
// configuration, not runtime input.
func Build(spec Spec, n int) *Graph {
	if n < 1 {
		panic("topo: need at least one endpoint")
	}
	g := &Graph{spec: spec, n: n}
	switch spec.Kind {
	case Star:
		g.buildStar()
	case Ring:
		g.buildRing()
	case Mesh:
		g.buildMesh()
	case FatTree:
		g.buildFatTree()
	default:
		panic(fmt.Sprintf("topo: cannot build kind %v", spec.Kind))
	}
	g.homes()
	g.routeAll()
	g.validate()
	return g
}

// buildStar wires one switch with port i <-> endpoint i.
func (g *Graph) buildStar() {
	ports := make([]Port, g.n)
	for i := range ports {
		ports[i] = epPort(i)
	}
	g.switches = [][]Port{ports}
}

// buildRing wires switch i: port 0 = endpoint i, port 1 = clockwise link
// (to switch i+1's port 2), port 2 = counter-clockwise (to switch i-1's
// port 1).
func (g *Graph) buildRing() {
	n := g.n
	g.switches = make([][]Port, n)
	for i := 0; i < n; i++ {
		if n == 1 {
			g.switches[i] = []Port{epPort(i)}
			continue
		}
		cw, ccw := (i+1)%n, (i-1+n)%n
		g.switches[i] = []Port{epPort(i), swPort(cw, 2), swPort(ccw, 1)}
	}
}

// meshDims resolves the grid size: explicit W/H, or the smallest
// near-square grid covering n.
func (g *Graph) meshDims() (w, h int) {
	w, h = g.spec.W, g.spec.H
	if w <= 0 && h <= 0 {
		for w = 1; w*w < g.n; w++ {
		}
		h = (g.n + w - 1) / w
		return w, h
	}
	if w <= 0 || h <= 0 {
		panic("topo: mesh W and H must both be set (or both zero for auto)")
	}
	if w*h < g.n {
		panic(fmt.Sprintf("topo: %dx%d mesh cannot hold %d endpoints", w, h, g.n))
	}
	return w, h
}

// Mesh port numbering: 0 = endpoint, 1 = +X (east), 2 = -X (west),
// 3 = +Y (north), 4 = -Y (south). A link leaving +X enters the peer's -X
// port and vice versa; same for Y.
const (
	meshPortEp = 0
	meshPortPX = 1
	meshPortNX = 2
	meshPortPY = 3
	meshPortNY = 4
)

func (g *Graph) buildMesh() {
	w, h := g.meshDims()
	g.switches = make([][]Port, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := y*w + x
			ports := []Port{unwired(), unwired(), unwired(), unwired(), unwired()}
			if s < g.n {
				ports[meshPortEp] = epPort(s)
			}
			if x+1 < w {
				ports[meshPortPX] = swPort(s+1, meshPortNX)
			}
			if x > 0 {
				ports[meshPortNX] = swPort(s-1, meshPortPX)
			}
			if y+1 < h {
				ports[meshPortPY] = swPort(s+w, meshPortNY)
			}
			if y > 0 {
				ports[meshPortNY] = swPort(s-w, meshPortPY)
			}
			g.switches[s] = ports
		}
	}
}

// buildFatTree wires a two-level Clos. With E = Arity endpoints per leaf
// and L = ceil(n/E) leaves, leaves are switches 0..L-1 (ports 0..E-1 down
// to endpoints, E..E+S-1 up to spines) and, when L > 1, S = E spines are
// switches L..L+S-1 (port l down to leaf l's uplink). A single leaf needs
// no spines and degenerates to the star.
func (g *Graph) buildFatTree() {
	e := g.spec.Arity
	if e <= 0 {
		e = 4
	}
	g.spec.Arity = e
	leaves := (g.n + e - 1) / e
	spines := 0
	if leaves > 1 {
		spines = e
	}
	g.switches = make([][]Port, leaves+spines)
	for l := 0; l < leaves; l++ {
		ports := make([]Port, e+spines)
		for p := 0; p < e; p++ {
			if ep := l*e + p; ep < g.n {
				ports[p] = epPort(ep)
			} else {
				ports[p] = unwired()
			}
		}
		for s := 0; s < spines; s++ {
			ports[e+s] = swPort(leaves+s, l)
		}
		g.switches[l] = ports
	}
	for s := 0; s < spines; s++ {
		ports := make([]Port, leaves)
		for l := 0; l < leaves; l++ {
			ports[l] = swPort(l, e+s)
		}
		g.switches[leaves+s] = ports
	}
}

// homes fills the endpoint -> home switch port index.
func (g *Graph) homes() {
	g.home = make([]int, g.n)
	g.homePort = make([]int, g.n)
	for i := range g.home {
		g.home[i] = -1
	}
	for s, ports := range g.switches {
		for p, pt := range ports {
			if pt.Endpoint() {
				g.home[pt.Ep] = s
				g.homePort[pt.Ep] = p
			}
		}
	}
	for e, s := range g.home {
		if s < 0 {
			panic(fmt.Sprintf("topo: endpoint %d attached nowhere", e))
		}
	}
}

// routeAll precomputes every pair's route eagerly; lazy fill would race
// when shard engines route concurrently.
func (g *Graph) routeAll() {
	g.routes = make([][]Hop, g.n*g.n)
	for src := 0; src < g.n; src++ {
		for dst := 0; dst < g.n; dst++ {
			g.routes[src*g.n+dst] = g.route(src, dst)
		}
	}
}

func (g *Graph) route(src, dst int) []Hop {
	switch g.spec.Kind {
	case Star:
		return []Hop{{Sw: 0, In: src, Out: dst}}
	case Ring:
		return g.routeRing(src, dst)
	case Mesh:
		return g.routeMesh(src, dst)
	case FatTree:
		return g.routeFatTree(src, dst)
	}
	panic("topo: unroutable kind")
}

func (g *Graph) routeRing(src, dst int) []Hop {
	n := g.n
	if src == dst || n == 1 {
		return []Hop{{Sw: src, In: 0, Out: 0}}
	}
	fwd := (dst - src + n) % n
	if fwd <= n-fwd {
		// Clockwise (ties go clockwise): out port 1, entering each peer
		// on port 2.
		hops := make([]Hop, 0, fwd+1)
		in := 0
		for j := 0; j < fwd; j++ {
			hops = append(hops, Hop{Sw: (src + j) % n, In: in, Out: 1})
			in = 2
		}
		return append(hops, Hop{Sw: dst, In: 2, Out: 0})
	}
	back := n - fwd
	hops := make([]Hop, 0, back+1)
	in := 0
	for j := 0; j < back; j++ {
		hops = append(hops, Hop{Sw: (src - j + n) % n, In: in, Out: 2})
		in = 1
	}
	return append(hops, Hop{Sw: dst, In: 1, Out: 0})
}

func (g *Graph) routeMesh(src, dst int) []Hop {
	w, _ := g.meshDims()
	sx, sy := src%w, src/w
	dx, dy := dst%w, dst/w
	var hops []Hop
	cur, in := src, meshPortEp
	step := func(out, peerIn, delta int) {
		hops = append(hops, Hop{Sw: cur, In: in, Out: out})
		cur, in = cur+delta, peerIn
	}
	xSteps := func() {
		for x := sx; x < dx; x++ {
			step(meshPortPX, meshPortNX, 1)
		}
		for x := sx; x > dx; x-- {
			step(meshPortNX, meshPortPX, -1)
		}
	}
	ySteps := func() {
		for y := sy; y < dy; y++ {
			step(meshPortPY, meshPortNY, w)
		}
		for y := sy; y > dy; y-- {
			step(meshPortNY, meshPortPY, -w)
		}
	}
	if g.spec.YX {
		ySteps()
		xSteps()
	} else {
		xSteps()
		ySteps()
	}
	return append(hops, Hop{Sw: cur, In: in, Out: meshPortEp})
}

func (g *Graph) routeFatTree(src, dst int) []Hop {
	e := g.spec.Arity
	leaves := (g.n + e - 1) / e
	ls, ld := src/e, dst/e
	if ls == ld {
		return []Hop{{Sw: ls, In: src % e, Out: dst % e}}
	}
	// Spine selection by destination spreads down-links evenly and is a
	// pure function of the pair — deterministic and contention-spreading.
	sp := dst % e
	return []Hop{
		{Sw: ls, In: src % e, Out: e + sp},
		{Sw: leaves + sp, In: ls, Out: ld},
		{Sw: ld, In: e + sp, Out: dst % e},
	}
}

// validate checks structural invariants: link symmetry, endpoint homes,
// and that every route walks real consecutive links from src to dst.
func (g *Graph) validate() {
	for s, ports := range g.switches {
		for p, pt := range ports {
			if !pt.Wired() {
				continue
			}
			if pt.Endpoint() {
				if g.home[pt.Ep] != s || g.homePort[pt.Ep] != p {
					panic(fmt.Sprintf("topo: endpoint %d home mismatch at sw%d.p%d", pt.Ep, s, p))
				}
				continue
			}
			back := g.switches[pt.Sw][pt.In]
			if back.Sw != s || back.In != p {
				panic(fmt.Sprintf("topo: asymmetric link sw%d.p%d -> sw%d.p%d", s, p, pt.Sw, pt.In))
			}
		}
	}
	for src := 0; src < g.n; src++ {
		for dst := 0; dst < g.n; dst++ {
			g.checkRoute(src, dst, g.Route(src, dst))
		}
	}
}

func (g *Graph) checkRoute(src, dst int, hops []Hop) {
	bad := func(why string) {
		panic(fmt.Sprintf("topo: bad route %d->%d %v: %s", src, dst, hops, why))
	}
	if len(hops) == 0 {
		bad("empty")
	}
	first := hops[0]
	if first.Sw != g.home[src] || first.In != g.homePort[src] {
		bad("does not start at source's home port")
	}
	for i, h := range hops {
		if h.Sw < 0 || h.Sw >= len(g.switches) || h.In < 0 || h.Out < 0 ||
			h.In >= len(g.switches[h.Sw]) || h.Out >= len(g.switches[h.Sw]) {
			bad("hop out of range")
		}
		out := g.switches[h.Sw][h.Out]
		if i == len(hops)-1 {
			if out.Ep != dst {
				bad("last hop does not exit at destination")
			}
			continue
		}
		next := hops[i+1]
		if out.Sw != next.Sw || out.In != next.In {
			bad("consecutive hops not linked")
		}
	}
}
