package topo

import "testing"

// Build already self-validates link symmetry and route consistency
// (Build panics otherwise), so the table test's main job is exercising
// every family at several sizes and pinning the shape facts the fabric
// and the bench rely on.
func TestBuildAllKinds(t *testing.T) {
	cases := []struct {
		name     string
		spec     Spec
		n        int
		switches int
		diameter int
	}{
		{"star2", Spec{Kind: Star}, 2, 1, 1},
		{"star128", Spec{Kind: Star}, 128, 1, 1},
		{"ring1", Spec{Kind: Ring}, 1, 1, 1},
		{"ring2", Spec{Kind: Ring}, 2, 2, 2},
		{"ring8", Spec{Kind: Ring}, 8, 8, 5},
		{"mesh4x4", Spec{Kind: Mesh, W: 4, H: 4}, 16, 16, 7},
		{"mesh-auto8", Spec{Kind: Mesh}, 8, 9, 5}, // 3x3 auto grid, corner to corner
		{"meshYX", Spec{Kind: Mesh, W: 4, H: 4, YX: true}, 16, 16, 7},
		{"fattree4", Spec{Kind: FatTree}, 4, 1, 1}, // one leaf: degenerate star
		{"fattree32", Spec{Kind: FatTree}, 32, 12, 3},
		{"fattree128", Spec{Kind: FatTree}, 128, 36, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Build(tc.spec, tc.n)
			if got := g.Switches(); got != tc.switches {
				t.Errorf("switches = %d, want %d", got, tc.switches)
			}
			if got := g.Diameter(); got != tc.diameter {
				t.Errorf("diameter = %d, want %d", got, tc.diameter)
			}
			if got := g.Endpoints(); got != tc.n {
				t.Errorf("endpoints = %d, want %d", got, tc.n)
			}
		})
	}
}

func TestRingShortestDirection(t *testing.T) {
	g := Build(Spec{Kind: Ring}, 8)
	// Distance 3 forward: clockwise, 4 hops (3 transit switches + dest).
	if r := g.Route(0, 3); len(r) != 4 || r[0].Out != 1 {
		t.Errorf("0->3 = %v, want 4 clockwise hops", r)
	}
	// Distance 5 forward = 3 backward: counter-clockwise.
	if r := g.Route(0, 5); len(r) != 4 || r[0].Out != 2 {
		t.Errorf("0->5 = %v, want 4 counter-clockwise hops", r)
	}
	// Exact tie (distance 4 both ways) goes clockwise.
	if r := g.Route(0, 4); len(r) != 5 || r[0].Out != 1 {
		t.Errorf("0->4 = %v, want clockwise on tie", r)
	}
}

func TestMeshDimensionOrder(t *testing.T) {
	xy := Build(Spec{Kind: Mesh, W: 4, H: 4}, 16)
	yx := Build(Spec{Kind: Mesh, W: 4, H: 4, YX: true}, 16)
	// (0,0) -> (2,1): XY goes east twice then north; YX goes north first.
	rxy, ryx := xy.Route(0, 6), yx.Route(0, 6)
	if len(rxy) != 4 || len(ryx) != 4 {
		t.Fatalf("route lengths = %d/%d, want 4/4", len(rxy), len(ryx))
	}
	if rxy[0].Out != meshPortPX {
		t.Errorf("XY first move = port %d, want +X", rxy[0].Out)
	}
	if ryx[0].Out != meshPortPY {
		t.Errorf("YX first move = port %d, want +Y", ryx[0].Out)
	}
	// Both end at the destination switch's endpoint port.
	if rxy[3].Sw != 6 || rxy[3].Out != meshPortEp {
		t.Errorf("XY last hop = %v, want sw6 endpoint", rxy[3])
	}
}

func TestFatTreeRoutes(t *testing.T) {
	g := Build(Spec{Kind: FatTree}, 32) // 8 leaves, 4 spines
	// Same leaf: one hop.
	if r := g.Route(0, 3); len(r) != 1 || r[0].Sw != 0 {
		t.Errorf("0->3 = %v, want 1 leaf hop", r)
	}
	// Cross leaf: leaf -> spine -> leaf, spine chosen by dst%arity.
	r := g.Route(0, 13)
	if len(r) != 3 {
		t.Fatalf("0->13 = %v, want 3 hops", r)
	}
	if want := 8 + 13%4; r[1].Sw != want {
		t.Errorf("0->13 spine = sw%d, want sw%d", r[1].Sw, want)
	}
}

func TestSelfRoute(t *testing.T) {
	for _, spec := range []Spec{{Kind: Star}, {Kind: Ring}, {Kind: Mesh}, {Kind: FatTree}} {
		g := Build(spec, 8)
		r := g.Route(5, 5)
		if len(r) == 0 {
			t.Errorf("%v: empty self route", spec.Kind)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"star", "ring", "mesh", "fattree"} {
		k, err := ParseKind(s)
		if err != nil || k.String() != s {
			t.Errorf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if _, err := ParseKind("torus"); err == nil {
		t.Error("ParseKind(torus) should fail")
	}
}
