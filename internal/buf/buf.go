// Package buf provides payload buffers for the QPIP simulation.
//
// Protocol headers are always real bytes, but bulk payloads may be hundreds
// of megabytes per experiment (the paper's NBD benchmark moves 409 MB per
// phase). Buf therefore supports two representations:
//
//   - real: backed by a byte slice, used by data-integrity tests and small
//     control messages;
//   - virtual: a length of implicit zero bytes, used by bulk benchmarks.
//
// The Internet checksum of a run of zeros is zero, so virtual buffers
// compose correctly with real end-to-end checksum computation: checksums
// over (headers + virtual payload) equal checksums over (headers + a real
// all-zero payload) of the same length.
package buf

import "fmt"

// Buf is an immutable payload of n bytes, optionally byte-backed.
type Buf struct {
	n    int
	data []byte // nil for virtual buffers
}

// Empty is the zero-length buffer.
var Empty = Buf{}

// Bytes returns a real buffer wrapping data. The buffer takes ownership;
// callers must not mutate data afterwards.
func Bytes(data []byte) Buf { return Buf{n: len(data), data: data} }

// String returns a real buffer holding s.
func String(s string) Buf { return Bytes([]byte(s)) }

// Virtual returns a virtual buffer of n implicit zero bytes.
func Virtual(n int) Buf {
	if n < 0 {
		panic(fmt.Sprintf("buf: negative virtual length %d", n))
	}
	return Buf{n: n}
}

// Len reports the payload length in bytes.
func (b Buf) Len() int { return b.n }

// IsVirtual reports whether the buffer has no byte backing.
func (b Buf) IsVirtual() bool { return b.data == nil && b.n > 0 }

// Data returns the backing bytes for a real buffer, materializing zeros for
// a virtual one. Callers must not mutate the result.
func (b Buf) Data() []byte {
	if b.data == nil && b.n > 0 {
		return make([]byte, b.n)
	}
	return b.data
}

// Slice returns the sub-buffer [from, to). It panics if the range is
// out of bounds, matching slice semantics.
func (b Buf) Slice(from, to int) Buf {
	if from < 0 || to < from || to > b.n {
		panic(fmt.Sprintf("buf: slice [%d:%d) of %d-byte buffer", from, to, b.n))
	}
	if b.data == nil {
		return Buf{n: to - from}
	}
	return Buf{n: to - from, data: b.data[from:to]}
}

// Concat returns the concatenation of bufs. If every input is virtual (or
// empty) the result is virtual; otherwise the result is materialized.
func Concat(bufs ...Buf) Buf {
	total := 0
	allVirtual := true
	for _, b := range bufs {
		total += b.n
		if b.data != nil {
			allVirtual = false
		}
	}
	if total == 0 {
		return Empty
	}
	if allVirtual {
		return Buf{n: total}
	}
	out := make([]byte, 0, total)
	for _, b := range bufs {
		if b.data == nil {
			out = append(out, make([]byte, b.n)...)
		} else {
			out = append(out, b.data...)
		}
	}
	return Buf{n: total, data: out}
}

// Equal reports whether two buffers hold identical byte content, treating
// virtual buffers as runs of zeros.
func Equal(a, b Buf) bool {
	if a.n != b.n {
		return false
	}
	if a.data == nil && b.data == nil {
		return true
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}

// Pattern returns a real n-byte buffer with a deterministic, position- and
// seed-dependent pattern, for integrity tests.
func Pattern(n int, seed byte) Buf {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)*31 + seed
	}
	return Bytes(d)
}

func (b Buf) String() string {
	if b.IsVirtual() {
		return fmt.Sprintf("Buf(virtual, %d bytes)", b.n)
	}
	return fmt.Sprintf("Buf(%d bytes)", b.n)
}
