package buf

import (
	"testing"
	"testing/quick"
)

func TestBytesAndLen(t *testing.T) {
	b := Bytes([]byte{1, 2, 3})
	if b.Len() != 3 || b.IsVirtual() {
		t.Fatalf("Bytes: len=%d virtual=%v", b.Len(), b.IsVirtual())
	}
	if d := b.Data(); len(d) != 3 || d[0] != 1 || d[2] != 3 {
		t.Fatalf("Data() = %v", d)
	}
}

func TestVirtual(t *testing.T) {
	b := Virtual(5)
	if b.Len() != 5 || !b.IsVirtual() {
		t.Fatalf("Virtual: len=%d virtual=%v", b.Len(), b.IsVirtual())
	}
	d := b.Data()
	if len(d) != 5 {
		t.Fatalf("Data() len = %d", len(d))
	}
	for _, v := range d {
		if v != 0 {
			t.Fatal("virtual buffer materialized non-zero byte")
		}
	}
}

func TestVirtualNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Virtual(-1) did not panic")
		}
	}()
	Virtual(-1)
}

func TestEmptyBuf(t *testing.T) {
	if Empty.Len() != 0 || Empty.IsVirtual() {
		t.Fatalf("Empty: len=%d virtual=%v", Empty.Len(), Empty.IsVirtual())
	}
}

func TestSliceReal(t *testing.T) {
	b := Bytes([]byte{0, 1, 2, 3, 4})
	s := b.Slice(1, 4)
	if s.Len() != 3 {
		t.Fatalf("slice len = %d", s.Len())
	}
	if d := s.Data(); d[0] != 1 || d[2] != 3 {
		t.Fatalf("slice data = %v", d)
	}
}

func TestSliceVirtualStaysVirtual(t *testing.T) {
	s := Virtual(10).Slice(2, 9)
	if !s.IsVirtual() || s.Len() != 7 {
		t.Fatalf("virtual slice: len=%d virtual=%v", s.Len(), s.IsVirtual())
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range slice did not panic")
		}
	}()
	Bytes([]byte{1}).Slice(0, 2)
}

func TestConcatAllVirtual(t *testing.T) {
	c := Concat(Virtual(3), Virtual(4))
	if !c.IsVirtual() || c.Len() != 7 {
		t.Fatalf("concat virtual: len=%d virtual=%v", c.Len(), c.IsVirtual())
	}
}

func TestConcatMixedMaterializes(t *testing.T) {
	c := Concat(Bytes([]byte{9, 8}), Virtual(2), Bytes([]byte{7}))
	if c.IsVirtual() || c.Len() != 5 {
		t.Fatalf("concat mixed: len=%d virtual=%v", c.Len(), c.IsVirtual())
	}
	want := []byte{9, 8, 0, 0, 7}
	d := c.Data()
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("concat data = %v, want %v", d, want)
		}
	}
}

func TestConcatEmpty(t *testing.T) {
	if c := Concat(); c.Len() != 0 {
		t.Fatalf("Concat() len = %d", c.Len())
	}
	if c := Concat(Empty, Empty); c.Len() != 0 {
		t.Fatalf("Concat(Empty,Empty) len = %d", c.Len())
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Buf
		want bool
	}{
		{Bytes([]byte{1, 2}), Bytes([]byte{1, 2}), true},
		{Bytes([]byte{1, 2}), Bytes([]byte{1, 3}), false},
		{Bytes([]byte{1, 2}), Bytes([]byte{1, 2, 3}), false},
		{Virtual(3), Virtual(3), true},
		{Virtual(3), Bytes([]byte{0, 0, 0}), true},
		{Virtual(3), Bytes([]byte{0, 1, 0}), false},
		{Empty, Virtual(0), true},
	}
	for i, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("case %d: Equal(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestPatternDeterministic(t *testing.T) {
	a, b := Pattern(64, 7), Pattern(64, 7)
	if !Equal(a, b) {
		t.Fatal("Pattern not deterministic")
	}
	c := Pattern(64, 8)
	if Equal(a, c) {
		t.Fatal("Pattern ignores seed")
	}
}

func TestStringForms(t *testing.T) {
	if got := Virtual(4).String(); got != "Buf(virtual, 4 bytes)" {
		t.Errorf("String() = %q", got)
	}
	if got := String("hi").String(); got != "Buf(2 bytes)" {
		t.Errorf("String() = %q", got)
	}
}

// Property: slicing then concatenating reconstructs the original content.
func TestSliceConcatRoundTrip(t *testing.T) {
	f := func(data []byte, cutRaw uint8) bool {
		b := Bytes(data)
		cut := 0
		if len(data) > 0 {
			cut = int(cutRaw) % (len(data) + 1)
		}
		back := Concat(b.Slice(0, cut), b.Slice(cut, b.Len()))
		return Equal(b, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
