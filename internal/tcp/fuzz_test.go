package tcp

import (
	"bytes"
	"testing"
)

// FuzzParseHeader throws arbitrary bytes at the TCP header parser: no
// input may panic, and any header it accepts must claim a length within
// the input. Option soup (NOPs, truncated kinds, zero lengths) is the
// interesting surface.
func FuzzParseHeader(f *testing.F) {
	syn := (&Segment{
		SrcPort: 4660, DstPort: 7000, Seq: 100, Flags: SYN,
		Wnd: 65535, MSS: 16384, WScale: 7, SACKPerm: true,
		HasTS: true, TSVal: 1, TSEcr: 0,
	}).MarshalHeader()
	plain := (&Segment{
		SrcPort: 1, DstPort: 2, Seq: 5, Ack: 6, Flags: ACK, Wnd: 100, WScale: -1,
	}).MarshalHeader()
	f.Add(syn)
	f.Add(plain)
	f.Add(plain[:19]) // truncated base header
	f.Add(plain[:0])
	badOffset := bytes.Clone(plain)
	badOffset[12] = 0xf0 // claims 60-byte header in a 20-byte buffer
	f.Add(badOffset)
	zeroLenOpt := bytes.Clone(syn)
	zeroLenOpt[BaseHeaderLen+1] = 0 // option length 0: must not loop forever
	f.Add(zeroLenOpt)
	f.Fuzz(func(t *testing.T, b []byte) {
		s, hlen, err := ParseHeader(b)
		if err != nil {
			return
		}
		if hlen < BaseHeaderLen || hlen > len(b) {
			t.Fatalf("accepted header length %d outside input of %d bytes", hlen, len(b))
		}
		_ = s.Flags.String()
	})
}
