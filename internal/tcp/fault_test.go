package tcp

import (
	"bytes"
	"testing"

	"repro/internal/buf"
	"repro/internal/fault"
)

// TestInjectorDrivenLossRecovery drives the pure-protocol harness's loss
// hook from a seeded fault.Injector — the same decision engine the fabric
// uses — and asserts record-mode TCP still delivers every byte in order
// exactly once.
func TestInjectorDrivenLossRecovery(t *testing.T) {
	in := fault.NewInjector(fault.Plan{Seed: 1234, DropProb: 0.05, SkipFirst: 4})
	var ordinal uint64
	n := pair(t, Record, 1460, 64*1024, nil)
	n.drop = func(from, idx int, seg *Segment) bool {
		o := ordinal
		ordinal++
		return in.Decide(o, 0, from, 1-from, 0).Drop
	}
	const records, recLen = 200, 1000
	var want []byte
	for i := 0; i < records; i++ {
		b := buf.Pattern(recLen, byte(i))
		want = append(want, b.Data()...)
		n.send(0, b)
		n.run(2_000_000) // 2 ms between posts: loss recovery interleaves
	}
	n.run(300_000_000_000) // drain with RTO headroom
	if in.Stats().Drops == 0 {
		t.Fatal("plan injected no drops; test exercises nothing")
	}
	if got := n.totalDelivered(1); got != records*recLen {
		t.Fatalf("delivered %d bytes, want %d (drops=%d)", got, records*recLen, in.Stats().Drops)
	}
	if len(n.delivered[1]) != records {
		t.Fatalf("delivered %d records, want %d", len(n.delivered[1]), records)
	}
	if !bytes.Equal(n.deliveredBytes(1), want) {
		t.Fatal("delivered bytes differ from sent bytes")
	}
	if n.ackedRec[0] != records {
		t.Fatalf("sender saw %d record completions, want %d", n.ackedRec[0], records)
	}
}

// TestRetryExceededOnBlackhole: once established, if the peer goes silent,
// the retransmission budget (MaxRetries) must produce a RetryExceeded
// action — not a Reset, not an unbounded retry loop.
func TestRetryExceededOnBlackhole(t *testing.T) {
	n := pair(t, Record, 1460, 64*1024, func(c *Config) { c.MaxRetries = 6 })
	// Black-hole everything after establishment.
	n.drop = func(from, idx int, seg *Segment) bool { return true }
	start := n.now
	n.send(0, buf.Pattern(500, 1))
	n.run(600_000_000_000) // 10 minutes: far beyond the budget
	if !n.retryEx[0] {
		t.Fatalf("no RetryExceeded after black-holing (state=%v)", n.conns[0].State())
	}
	if n.reset[0] {
		t.Fatal("give-up surfaced as Reset; must be RetryExceeded")
	}
	if n.conns[0].State() != Closed {
		t.Fatalf("state = %v after retry exhaustion, want Closed", n.conns[0].State())
	}
	// A budget of 6 means 7 timeouts: 3+6+12+24+48+96+120 (MaxRTO-capped)
	// = 309 s worst case from the 3 s initial RTO.
	if elapsed := n.now - start; elapsed > 310_000_000_000 {
		t.Fatalf("gave up after %d ns; budget should bound this at 309s", elapsed)
	}
	if n.conns[0].Stats().RetryExceeded != 1 {
		t.Fatalf("Stats.RetryExceeded = %d, want 1", n.conns[0].Stats().RetryExceeded)
	}
}

// TestSynRetryBudget: an active open against a silent peer fails within the
// SynMaxRetries budget — the connect timeout.
func TestSynRetryBudget(t *testing.T) {
	c := NewConn(Config{
		LocalPort: 1000, RemotePort: 2000,
		Mode: Record, MSS: 1460, RecvWindow: 64 * 1024,
		SynMaxRetries: 3,
	})
	now := int64(1_000_000_000)
	if _, err := c.Connect(now); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	var sawRetryEx bool
	for i := 0; i < 50; i++ {
		d, ok := c.NextTimeout()
		if !ok {
			break
		}
		now = d
		acts := c.OnTimer(now)
		if acts.RetryExceeded {
			sawRetryEx = true
			break
		}
	}
	if !sawRetryEx {
		t.Fatalf("SYN retries never exhausted (state=%v)", c.State())
	}
	if c.State() != Closed {
		t.Fatalf("state = %v, want Closed", c.State())
	}
	// 3 SYN retries at 3s initial RTO: 3+6+12+24 = 45s worst case.
	if elapsed := now - 1_000_000_000; elapsed > 50_000_000_000 {
		t.Fatalf("connect attempt ran %d ns, want bounded by ~45s", elapsed)
	}
}

// TestSynAckLossRecovery: the passive opener's retransmitted SYN|ACK must
// still carry the ACK flag. pushFlight stores flight flags masked to
// SYN|FIN, so a retransmit path that infers "pre-established SYN" from a
// missing stored ACK strips it from the SYN|ACK too — the active opener
// then discards every handshake retransmission as malformed and both
// sides burn their SYN retry budgets against a perfectly working link.
func TestSynAckLossRecovery(t *testing.T) {
	mk := func(lp, rp uint16, iss Seq) *Conn {
		return NewConn(Config{
			LocalPort: lp, RemotePort: rp,
			Mode: Record, MSS: 1460, RecvWindow: 64 * 1024,
			WindowScale: true, Timestamps: true, NoDelay: true,
			ISS: iss,
		})
	}
	n := newTestNet(t, mk(1000, 2000, 100), mk(2000, 1000, 5000))
	// Drop only the first segment the passive side emits: the SYN|ACK.
	n.drop = func(from, idx int, seg *Segment) bool { return from == 1 && idx == 0 }
	n.connect() // fails the test itself if establishment never happens
	if got := n.conns[1].Stats().Retransmits; got == 0 {
		t.Fatal("handshake completed without a SYN|ACK retransmission; drop hook exercised nothing")
	}
	// The recovered connection must still move data both ways.
	n.send(0, buf.Pattern(700, 0xA5))
	n.send(1, buf.Pattern(300, 0x5A))
	n.run(30_000_000_000)
	if n.totalDelivered(1) != 700 || n.totalDelivered(0) != 300 {
		t.Fatalf("post-recovery transfer broken: delivered %d/%d bytes",
			n.totalDelivered(1), n.totalDelivered(0))
	}
}
