package tcp

import "repro/internal/buf"

// Timer management. The engine exposes a single earliest deadline; the
// owner (NIC firmware transmit FSM, or the host stack's timer wheel) keeps
// one timer per connection and calls OnTimer when it fires. This mirrors
// the paper's transmit FSM, which "additionally monitors for
// timeout/retransmit events pending on a QP" (§3.1).

// NextTimeout reports the earliest pending timer deadline in nanoseconds.
// ok is false when no timer is armed.
func (c *Conn) NextTimeout() (deadline int64, ok bool) {
	min := int64(0)
	for _, d := range [...]int64{c.rexmtDeadline, c.persistDeadline, c.delackDeadline, c.timewaitDeadline} {
		if d != 0 && (min == 0 || d < min) {
			min = d
		}
	}
	return min, min != 0
}

// OnTimer dispatches every timer whose deadline has passed.
func (c *Conn) OnTimer(now int64) Actions {
	a := c.newActions()
	defer c.finishActions(&a)
	if d := c.rexmtDeadline; d != 0 && d <= now {
		c.rexmtDeadline = 0
		c.onRexmtTimeout(now, &a)
	}
	if d := c.persistDeadline; d != 0 && d <= now {
		c.persistDeadline = 0
		c.onPersistTimeout(now, &a)
	}
	if d := c.delackDeadline; d != 0 && d <= now {
		c.delackDeadline = 0
		if c.ackPending {
			c.stats.DelayedAcks++
			c.sendAck(now, &a)
		}
	}
	if d := c.timewaitDeadline; d != 0 && d <= now {
		c.timewaitDeadline = 0
		c.toClosed(&a)
	}
	return a
}

// armRexmt (re)arms the retransmission timer from now.
func (c *Conn) armRexmt(now int64) {
	c.rexmtDeadline = now + c.rtt.BackedOffRTO(c.rtoBackoff)
}

// onRexmtTimeout retransmits the oldest outstanding segment with
// exponential backoff and collapses the congestion window (RFC 2581).
func (c *Conn) onRexmtTimeout(now int64, a *Actions) {
	if c.flightLen() == 0 {
		return
	}
	c.stats.Timeouts++
	c.rtoBackoff++
	limit := c.cfg.MaxRetries
	if c.state == SynSent || c.state == SynRcvd {
		limit = c.cfg.SynMaxRetries
	}
	if c.rtoBackoff > limit {
		// Give up: the peer is unreachable within the retry budget.
		c.stats.RetryExceeded++
		a.RetryExceeded = true
		c.toClosed(a)
		return
	}
	flightBytes := c.sndNxt.Diff(c.sndUna)
	half := flightBytes / 2
	if half < 2*c.sndMSS {
		half = 2 * c.sndMSS
	}
	c.ssthresh = half
	c.cwnd = c.sndMSS
	c.inFastRecovery = false
	c.dupAcks = 0
	c.retransmitHead(now, a)
	c.armRexmt(now)
}

// onPersistTimeout probes an inadequate window.
func (c *Conn) onPersistTimeout(now int64, a *Actions) {
	if !c.windowBlocked() {
		return
	}
	c.stats.WindowProbes++
	if c.persistBackoff < 10 {
		c.persistBackoff++
	}
	if c.cfg.Mode == Stream {
		// Classic 1-byte window probe.
		payload := c.takePending(1)
		seg := c.makeSeg(ACK|PSH, payload)
		seg.Seq = c.sndNxt
		c.stampTS(seg, now)
		c.pushFlight(seg, now, false)
		c.emit(a, seg)
		c.armRexmt(now)
	} else {
		// Record mode cannot split a message, so probe keepalive-style: a
		// pure ACK one sequence number below sndNxt. The segment is never
		// acceptable at the receiver (RFC 793 p.69), which forces an ACK
		// reply carrying the current window. A probe at sndNxt would be
		// acceptable and could go unanswered when the peer believes its
		// last window advertisement arrived — deadlock if that ACK was the
		// frame the network dropped.
		seg := c.makeSeg(ACK, buf.Empty)
		seg.Seq = c.sndNxt.Add(-1)
		c.stampTS(seg, now)
		c.emit(a, seg)
	}
	c.persistDeadline = now + c.rtt.BackedOffRTO(c.persistBackoff)
}

// cancelDataTimers clears retransmit/persist/delack timers.
func (c *Conn) cancelDataTimers() {
	c.rexmtDeadline = 0
	c.persistDeadline = 0
	c.delackDeadline = 0
}

// cancelTimers clears every timer.
func (c *Conn) cancelTimers() {
	c.cancelDataTimers()
	c.timewaitDeadline = 0
}
