package tcp

import (
	"sync"

	"repro/internal/pool"
)

// Outbound segments are built, marshaled, and dropped at a rate of one per
// MSS of goodput; pooling them (like the Event free list in sim) removes
// the dominant per-segment allocation from the send path.
//
// Ownership: the connection creates a segment (makeSeg), the owning stack
// marshals it into wire scratch and must then call Release exactly once —
// after the header bytes and payload handle have been copied into the
// packet, the Segment itself is dead. Received segments come from
// ParseHeader by value and are never pooled.

// Segment identity never reaches event order: NewSegment zeroes every field,
// so a pooled Segment is indistinguishable from a fresh allocation.
//
//lint:qpip-allow nogoroutine free list only; no synchronization semantics leak into the model
var segPool = sync.Pool{New: func() any { return new(Segment) }}

// NewSegment returns a zeroed segment (WScale -1 = absent), pooled when
// datapath pooling is enabled.
func NewSegment() *Segment {
	if !pool.Enabled() {
		return &Segment{WScale: -1}
	}
	s := segPool.Get().(*Segment)
	*s = Segment{WScale: -1, pooled: true}
	return s
}

// Release recycles a pooled segment. No-op (and safe) on non-pooled ones.
func (s *Segment) Release() {
	if !s.pooled {
		return
	}
	*s = Segment{}
	segPool.Put(s)
}
