package tcp

import "repro/internal/buf"

// This file is the transmit half of the engine — the moral equivalent of
// the paper's schedule/transmit FSM core (Figure 2): pick sendable data
// under min(cwnd, peer window), build segments, retain them for
// retransmission, and manage the retransmit/persist timers.

// usableWindow reports how many payload bytes may enter the network now.
func (c *Conn) usableWindow() int {
	wnd := c.sndWnd
	if c.cwnd < wnd {
		wnd = c.cwnd
	}
	inFlight := c.sndNxt.Diff(c.sndUna)
	u := wnd - inFlight
	if u < 0 {
		u = 0
	}
	return u
}

// pushFlight retains a transmitted segment for retransmission and advances
// sndNxt over the sequence space it consumes.
func (c *Conn) pushFlight(seg *Segment, now int64, isRecord bool) {
	f := c.newFlightSeg()
	f.seq = seg.Seq
	f.payload = seg.Payload
	f.flags = seg.Flags & (SYN | FIN)
	f.sentAt = now
	f.isRecord = isRecord
	c.flight = append(c.flight, f)
	c.sndNxt = c.sndNxt.Add(f.segLen())
}

// output transmits whatever the current windows allow: queued records or
// stream bytes, then a queued FIN, then any pending pure ACK.
func (c *Conn) output(now int64, a *Actions) {
	if c.state == Established || c.state == CloseWait || c.state == FinWait1 ||
		c.state == Closing || c.state == LastAck {
		if c.cfg.Mode == Record {
			c.outputRecords(now, a)
		} else {
			c.outputStream(now, a)
		}
		c.outputFin(now, a)
	}
	if c.ackPending {
		if c.cfg.DelayedAck && c.delackCount < 2 && c.delackDeadline != 0 {
			// Hold for the delayed-ack timer or a second segment.
		} else {
			c.sendAck(now, a)
		}
	}
	c.managePersist(now)
	if c.flightLen() > 0 && c.rexmtDeadline == 0 {
		c.armRexmt(now)
	}
}

// outputRecords sends whole queued messages, one segment each. A message
// may exceed the usable window only when nothing is in flight: with
// arbitrary-size segments the window must admit at least one message or
// the connection would deadlock (mirrors TCP's always-send-one-MSS rule).
func (c *Conn) outputRecords(now int64, a *Actions) {
	for c.pendingRecHead < len(c.pendingRecords) {
		rec := c.pendingRecords[c.pendingRecHead]
		usable := c.usableWindow()
		if rec.Len() > usable {
			if c.sndNxt != c.sndUna {
				return // something in flight; wait for acks
			}
			// Nothing in flight: allowed only if the peer's whole window
			// (not cwnd) could ever admit it, else wait for window update.
			// The advertisement is truncated to the window-scale granularity,
			// so credit the peer the up-to-2^scale-1 bytes it cannot express:
			// a record exactly the size of the peer's posted buffer would
			// otherwise deadlock once the window shrinks to one message.
			// Record-mode delivery is WR-driven, so the overshoot is safe.
			if rec.Len() > c.sndWnd+(1<<c.sndScale-1) {
				return
			}
		}
		c.popPendingRecord()
		c.pendingLen -= rec.Len()
		seg := c.makeSeg(ACK|PSH, rec)
		seg.Seq = c.sndNxt
		c.stampTS(seg, now)
		c.pushFlight(seg, now, true)
		c.emit(a, seg)
	}
}

// outputStream sends MSS-sized chunks of the byte stream, applying Nagle
// unless NoDelay is set.
func (c *Conn) outputStream(now int64, a *Actions) {
	for c.pendingLen > 0 {
		usable := c.usableWindow()
		n := c.pendingLen
		if n > c.sndMSS {
			n = c.sndMSS
		}
		if n > usable {
			if usable == 0 || c.sndNxt != c.sndUna {
				// Sender-side SWS avoidance: send a short segment only if
				// it empties the queue and nothing is outstanding.
				return
			}
			n = usable
		}
		if n < c.sndMSS && n < c.pendingLen {
			return // never send a runt that leaves bytes behind
		}
		if !c.cfg.NoDelay && n < c.sndMSS && c.sndNxt != c.sndUna {
			return // Nagle: one sub-MSS segment in flight at a time
		}
		payload := c.takePending(n)
		flags := ACK
		if c.pendingLen == 0 {
			flags |= PSH
		}
		seg := c.makeSeg(flags, payload)
		seg.Seq = c.sndNxt
		c.stampTS(seg, now)
		c.pushFlight(seg, now, false)
		c.emit(a, seg)
	}
}

// takePending removes n bytes from the head of the stream send queue. The
// common cases — the head entry covers the request exactly or with bytes to
// spare — complete without allocating; only a take that spans queue entries
// builds a parts slice for buf.Concat.
func (c *Conn) takePending(n int) buf.Buf {
	head := c.pendingBytes[c.pendingBytHead]
	if n < head.Len() {
		c.pendingBytes[c.pendingBytHead] = head.Slice(n, head.Len())
		c.pendingLen -= n
		return head.Slice(0, n)
	}
	if n == head.Len() {
		c.popPendingByte()
		c.pendingLen -= n
		return head
	}
	parts := c.concatParts[:0]
	got := 0
	for got < n {
		head := c.pendingBytes[c.pendingBytHead]
		take := n - got
		if take >= head.Len() {
			parts = append(parts, head)
			got += head.Len()
			c.popPendingByte()
		} else {
			parts = append(parts, head.Slice(0, take))
			c.pendingBytes[c.pendingBytHead] = head.Slice(take, head.Len())
			got += take
		}
	}
	c.pendingLen -= n
	out := buf.Concat(parts...)
	for i := range parts {
		parts[i] = buf.Empty // don't pin consumed buffers in the scratch
	}
	c.concatParts = parts[:0]
	return out
}

// popPendingRecord retires the head record, clearing the slot so the drained
// backing array does not pin delivered buffers, and resets the queue to its
// start once empty.
func (c *Conn) popPendingRecord() {
	c.pendingRecords[c.pendingRecHead] = buf.Empty
	c.pendingRecHead++
	if c.pendingRecHead == len(c.pendingRecords) {
		c.pendingRecords = c.pendingRecords[:0]
		c.pendingRecHead = 0
	}
}

// popPendingByte is popPendingRecord for the stream-mode queue.
func (c *Conn) popPendingByte() {
	c.pendingBytes[c.pendingBytHead] = buf.Empty
	c.pendingBytHead++
	if c.pendingBytHead == len(c.pendingBytes) {
		c.pendingBytes = c.pendingBytes[:0]
		c.pendingBytHead = 0
	}
}

// outputFin transmits the queued FIN once all data is out.
func (c *Conn) outputFin(now int64, a *Actions) {
	if !c.finQueued || c.finSent || c.pendingLen > 0 {
		return
	}
	seg := c.makeSeg(FIN|ACK, buf.Empty)
	seg.Seq = c.sndNxt
	c.stampTS(seg, now)
	c.finSeq = c.sndNxt
	c.finSent = true
	c.pushFlight(seg, now, false)
	c.emit(a, seg)
}

// windowBlocked reports whether queued data cannot make progress until the
// peer opens its window: nothing in flight and the window cannot admit the
// head of the queue (for records, the whole message; for a stream, any byte).
func (c *Conn) windowBlocked() bool {
	if c.pendingLen == 0 || c.sndNxt != c.sndUna {
		return false
	}
	if c.cfg.Mode == Record {
		// Mirror outputRecords' nothing-in-flight escape, including the
		// window-scale truncation credit.
		return c.pendingRecHead < len(c.pendingRecords) &&
			c.pendingRecords[c.pendingRecHead].Len() > c.sndWnd+(1<<c.sndScale-1)
	}
	return c.sndWnd == 0
}

// managePersist arms the persist timer when data waits on an inadequate
// send window, so a lost window update cannot deadlock the connection.
func (c *Conn) managePersist(now int64) {
	blocked := c.windowBlocked()
	if blocked && c.persistDeadline == 0 {
		c.persistBackoff = 0
		c.persistDeadline = now + c.rtt.BackedOffRTO(c.persistBackoff)
	}
	if !blocked {
		c.persistDeadline = 0
	}
}

// updateSndWnd applies a peer window advertisement per RFC 793's WL1/WL2
// rules.
func (c *Conn) updateSndWnd(seg *Segment) {
	wnd := int(seg.Wnd) << c.sndScale
	if seg.Flags.Has(SYN) {
		wnd = int(seg.Wnd) // SYN windows are unscaled
	}
	if c.sndWl1.Lt(seg.Seq) || (c.sndWl1 == seg.Seq && c.sndWl2.Leq(seg.Ack)) {
		c.sndWnd = wnd
		c.sndWl1 = seg.Seq
		c.sndWl2 = seg.Ack
	}
}
