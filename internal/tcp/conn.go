package tcp

import (
	"errors"
	"fmt"

	"repro/internal/buf"
	"repro/internal/pool"
)

// Mode selects how application data maps onto segments.
type Mode int

const (
	// Stream is classic byte-stream TCP with MSS segmentation, used by the
	// host-based sockets baseline.
	Stream Mode = iota
	// Record maps one application message onto exactly one TCP segment,
	// the QPIP prototype's framing: "we chose to map QP messages
	// one-for-one onto TCP segments (i.e. a segment is a message)"
	// (paper §4.1). Segments are arbitrarily sized; receive-side record
	// boundaries are segment boundaries.
	Record
)

// State is the RFC 793 connection state.
type State int

// Connection states.
const (
	Closed State = iota
	Listen
	SynSent
	SynRcvd
	Established
	FinWait1
	FinWait2
	CloseWait
	Closing
	LastAck
	TimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Config parameterizes a connection.
type Config struct {
	LocalPort, RemotePort uint16
	Mode                  Mode
	// MSS is the maximum segment payload we advertise (and accept). In
	// record mode it bounds the message size, since a message is a segment.
	MSS int
	// RecvWindow is the initial receive window. In stream mode it is the
	// receive buffer size; in record mode the owner drives the window from
	// posted WR capacity via SetRecvWindow (paper §5.1: "the more receive
	// buffer space posted, the larger the TCP receive window"). Zero means
	// the 64 KB default; a negative value means "start closed" — the QPIP
	// firmware uses it so no data can arrive before a receive WR is posted.
	RecvWindow int
	// MaxRecvWindow bounds how large the owner may later grow the window
	// (record mode); it sizes the negotiated window scale. Zero means
	// RecvWindow itself is the bound.
	MaxRecvWindow int
	// WindowScale and Timestamps enable the RFC 1323 extensions the
	// prototype implemented.
	WindowScale bool
	Timestamps  bool
	// DelayedAck enables receiver-side ack-every-other with a timer, as in
	// the host baseline. The QPIP firmware acks immediately.
	DelayedAck    bool
	DelAckTimeout int64 // ns; default 40 ms if zero
	// NoDelay disables Nagle in stream mode (ttcp sets TCP_NODELAY).
	NoDelay bool
	// TimeWaitDur overrides the 2*MSL TIME_WAIT duration (default 60 s).
	TimeWaitDur int64
	// MaxRetries bounds consecutive retransmission timeouts of one
	// segment before the connection gives up with Actions.RetryExceeded
	// (default 12, BSD's TCP_MAXRXTSHIFT).
	MaxRetries int
	// SynMaxRetries bounds handshake (SYN / SYN|ACK) retransmissions —
	// the connect-timeout budget (default 5). With exponential backoff
	// from the 3 s initial RTO the budget caps a failed active open.
	SynMaxRetries int
	// ISS fixes the initial send sequence number (deterministic tests).
	ISS Seq
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MSS <= 0 {
		out.MSS = 1460
	}
	switch {
	case out.RecvWindow == 0:
		out.RecvWindow = 64 * 1024
	case out.RecvWindow < 0:
		out.RecvWindow = 0
	}
	if out.DelAckTimeout <= 0 {
		out.DelAckTimeout = 40 * 1000 * 1000
	}
	if out.TimeWaitDur <= 0 {
		out.TimeWaitDur = 60 * 1000 * 1000 * 1000
	}
	if out.MaxRetries <= 0 {
		out.MaxRetries = 12
	}
	if out.SynMaxRetries <= 0 {
		out.SynMaxRetries = 5
	}
	return out
}

// Stats counts protocol events; the benchmark harness reads these to
// classify NIC occupancy and to sanity-check runs (e.g. zero retransmits
// expected on the loss-free SAN).
type Stats struct {
	SegsIn, SegsOut         uint64
	DataSegsIn, DataSegsOut uint64
	BytesIn, BytesOut       uint64
	AcksIn, AcksOut         uint64
	Retransmits             uint64
	FastRetransmits         uint64
	Timeouts                uint64
	DupAcksIn               uint64
	FastPathData            uint64
	FastPathAck             uint64
	SlowPath                uint64
	RetryExceeded           uint64
	OutOfOrderDrops         uint64
	BadSegments             uint64
	WindowUpdatesOut        uint64
	WindowProbes            uint64
	RTTSamples              uint64
	DelayedAcks             uint64
}

// Actions is what a Conn asks its owner to do after an API call: transmit
// segments, deliver data to the application, complete send requests. The
// owner (NIC firmware or host kernel) charges simulated CPU time for each.
type Actions struct {
	// Segments to transmit, in order.
	Segments []*Segment
	// Delivered holds in-order application data: whole messages in record
	// mode, byte runs in stream mode.
	Delivered []buf.Buf
	// AckedBytes is newly acknowledged payload bytes (send side).
	AckedBytes int
	// AckedRecords is the number of send-side records fully acknowledged
	// (record mode); the QPIP firmware completes one send WR per record.
	// "This WR completes when all the data for that message is
	// acknowledged by the destination" (paper §3).
	AckedRecords int
	// Established fires once when the handshake completes.
	Established bool
	// PeerClosed fires when the peer's FIN is consumed in order.
	PeerClosed bool
	// Closed fires when the connection reaches CLOSED.
	Closed bool
	// Reset fires when the connection is torn down by an RST.
	Reset bool
	// RetryExceeded fires when the retransmission retry budget is
	// exhausted (the peer is unreachable); the connection is closed.
	// Distinct from Reset so owners can surface a timeout, not a refusal.
	RetryExceeded bool
}

func (a *Actions) merge(b Actions) {
	a.Segments = append(a.Segments, b.Segments...)
	a.Delivered = append(a.Delivered, b.Delivered...)
	a.AckedBytes += b.AckedBytes
	a.AckedRecords += b.AckedRecords
	a.Established = a.Established || b.Established
	a.PeerClosed = a.PeerClosed || b.PeerClosed
	a.Closed = a.Closed || b.Closed
	a.Reset = a.Reset || b.Reset
	a.RetryExceeded = a.RetryExceeded || b.RetryExceeded
}

// flightSeg is a transmitted, unacknowledged segment retained for
// retransmission.
type flightSeg struct {
	seq       Seq
	payload   buf.Buf
	flags     Flags // SYN/FIN bits that consumed sequence space
	sentAt    int64
	rexmitted bool
	isRecord  bool
}

func (f *flightSeg) segLen() int {
	n := f.payload.Len()
	if f.flags.Has(SYN) {
		n++
	}
	if f.flags.Has(FIN) {
		n++
	}
	return n
}

// Conn is a TCP transmission control block plus send/receive machinery.
// It is pure: no goroutines, no clocks, no I/O. All methods take the
// current time in nanoseconds and return Actions for the owner to execute.
type Conn struct {
	cfg   Config
	state State
	stats Stats

	// Send state (RFC 793 names).
	iss            Seq
	sndUna, sndNxt Seq
	sndWnd         int // peer's advertised window, scaled to bytes
	sndWl1, sndWl2 Seq
	sndMSS         int // effective send MSS (min of ours and peer's)
	peerMSS        int

	sndScale, rcvScale uint8

	// Pending application data not yet segmentized. The queues are
	// head-indexed rings-on-a-slice: consumers advance the head and the
	// slice resets to [:0] when drained, so steady-state traffic reuses
	// one backing array instead of reallocating behind a [1:] reslice.
	pendingRecords []buf.Buf // record mode
	pendingRecHead int
	pendingBytes   []buf.Buf // stream mode
	pendingBytHead int
	pendingLen     int
	// concatParts is takePending's scratch for takes spanning queue
	// entries; reused so steady-state segmentation does not allocate.
	concatParts []buf.Buf
	finQueued      bool
	finSent        bool
	finSeq         Seq

	flight     []*flightSeg
	flightHead int
	// flightFree recycles retired flight entries (see newFlightSeg); the
	// list is per-connection so reuse stays deterministic.
	flightFree []*flightSeg

	// Action-slice reuse (opt-in; see ReuseActionBuffers). actSegs/actBufs
	// are the retained backing arrays handed out by newActions.
	reuseActs bool
	actSegs   []*Segment
	actBufs   []buf.Buf

	// Receive state.
	irs        Seq
	rcvNxt     Seq
	rcvWnd     int // current window limit (owner-driven in record mode)
	rcvBufUsed int // stream mode: undelivered-to-app bytes
	lastAdvWnd int // window advertised in the last segment we sent
	finRcvd    bool

	// Congestion control (Reno).
	cwnd, ssthresh int
	dupAcks        int
	inFastRecovery bool
	recoverSeq     Seq

	// RTT machinery.
	rtt          RTTEstimator
	rtoBackoff   int
	tsRecent     uint32
	tsRecentTime int64
	tsOK         bool
	wsOK         bool

	// Timer deadlines in ns; 0 = inactive.
	rexmtDeadline    int64
	persistDeadline  int64
	persistBackoff   int
	delackDeadline   int64
	timewaitDeadline int64
	ackPending       bool
	delackCount      int
}

// Errors returned by Conn methods.
var (
	ErrNotEstablished = errors.New("tcp: connection not established")
	ErrClosed         = errors.New("tcp: connection closed")
	ErrRecordTooBig   = errors.New("tcp: record exceeds send MSS")
	ErrBadState       = errors.New("tcp: operation invalid in this state")
	ErrNotSYN         = errors.New("tcp: AcceptSYN on non-SYN segment")
)

// NewConn returns a connection in CLOSED with the given configuration.
func NewConn(cfg Config) *Conn {
	c := &Conn{cfg: cfg.withDefaults(), state: Closed}
	c.iss = c.cfg.ISS
	c.rcvWnd = c.cfg.RecvWindow
	scaleFor := c.cfg.RecvWindow
	if c.cfg.MaxRecvWindow > scaleFor {
		scaleFor = c.cfg.MaxRecvWindow
	}
	if c.cfg.WindowScale {
		for c.rcvScale < 14 && (scaleFor>>c.rcvScale) > 0xffff {
			c.rcvScale++
		}
	}
	return c
}

// State reports the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats }

// SendMSS reports the effective send MSS after negotiation.
func (c *Conn) SendMSS() int { return c.sndMSS }

// Cwnd reports the current congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cwnd }

// SndWnd reports the peer's last advertised (scaled) window in bytes.
func (c *Conn) SndWnd() int { return c.sndWnd }

// RTT returns the smoothed round-trip estimator.
func (c *Conn) RTT() *RTTEstimator { return &c.rtt }

// InFlight reports unacknowledged sequence space in bytes.
func (c *Conn) InFlight() int { return c.sndNxt.Diff(c.sndUna) }

// PendingSend reports bytes queued but not yet transmitted.
func (c *Conn) PendingSend() int { return c.pendingLen }

// LocalPort reports the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.cfg.LocalPort }

// RemotePort reports the connection's remote port.
func (c *Conn) RemotePort() uint16 { return c.cfg.RemotePort }

// Connect initiates an active open, returning the SYN to transmit.
func (c *Conn) Connect(now int64) (Actions, error) {
	a := c.newActions()
	defer c.finishActions(&a)
	if c.state != Closed {
		return a, ErrBadState
	}
	c.state = SynSent
	c.sndUna = c.iss
	c.sndNxt = c.iss
	c.sndMSS = c.cfg.MSS
	seg := c.makeSeg(SYN, buf.Empty)
	seg.Seq = c.sndNxt
	seg.Ack = 0
	seg.MSS = uint16(c.cfg.MSS)
	if c.cfg.WindowScale {
		seg.WScale = int8(c.rcvScale)
	}
	if c.cfg.Timestamps {
		seg.HasTS = true
		seg.TSVal = tsClock(now)
		seg.TSEcr = 0
	}
	c.pushFlight(seg, now, false)
	c.emit(&a, seg)
	c.armRexmt(now)
	return a, nil
}

// AcceptSYN performs a passive open: the owner demultiplexed a SYN to a
// listening port and constructed this Conn for the new connection. The
// returned actions carry the SYN|ACK. QPIP handles this entirely in the
// interface: "the handshake is handled in the interface with the host only
// being notified when the connection is established" (paper §3).
func (c *Conn) AcceptSYN(syn *Segment, now int64) (Actions, error) {
	a := c.newActions()
	defer c.finishActions(&a)
	if c.state != Closed {
		return a, ErrBadState
	}
	if !syn.Flags.Has(SYN) || syn.Flags.Has(ACK) {
		return a, ErrNotSYN
	}
	c.stats.SegsIn++
	c.state = SynRcvd
	c.irs = syn.Seq
	c.rcvNxt = syn.Seq.Add(1)
	c.takePeerOptions(syn, now)
	c.sndUna = c.iss
	c.sndNxt = c.iss

	rep := c.makeSeg(SYN|ACK, buf.Empty)
	rep.Seq = c.sndNxt
	rep.MSS = uint16(c.cfg.MSS)
	if c.wsOK {
		rep.WScale = int8(c.rcvScale)
	}
	if c.tsOK {
		rep.HasTS = true
		rep.TSVal = tsClock(now)
		rep.TSEcr = c.tsRecent
	}
	c.pushFlight(rep, now, false)
	c.emit(&a, rep)
	c.armRexmt(now)
	c.setSndWndFromSyn(syn)
	return a, nil
}

// setSndWndFromSyn initializes the send window from a SYN per RFC 793:
// SND.WND = SEG.WND (unscaled), WL1 = SEG.SEQ, WL2 = SEG.ACK.
func (c *Conn) setSndWndFromSyn(syn *Segment) {
	c.sndWnd = int(syn.Wnd)
	c.sndWl1 = syn.Seq
	c.sndWl2 = syn.Ack
}

// takePeerOptions records the peer's SYN options and completes negotiation.
func (c *Conn) takePeerOptions(syn *Segment, now int64) {
	c.peerMSS = int(syn.MSS)
	c.sndMSS = c.cfg.MSS
	if c.peerMSS > 0 && c.peerMSS < c.sndMSS {
		c.sndMSS = c.peerMSS
	}
	c.wsOK = c.cfg.WindowScale && syn.WScale >= 0
	if c.wsOK {
		c.sndScale = uint8(syn.WScale)
	} else {
		c.rcvScale = 0
	}
	c.tsOK = c.cfg.Timestamps && syn.HasTS
	if c.tsOK {
		c.tsRecent = syn.TSVal
		c.tsRecentTime = now
	}
	c.cwnd = 2 * c.sndMSS
	c.ssthresh = 1 << 30
}

// Send queues application data. In record mode p is one message that will
// occupy exactly one segment; in stream mode p joins the byte stream.
func (c *Conn) Send(p buf.Buf, now int64) (Actions, error) {
	a := c.newActions()
	defer c.finishActions(&a)
	switch c.state {
	case Established, CloseWait:
	case SynSent, SynRcvd:
		// Data may be queued before the handshake completes.
	default:
		return a, ErrBadState
	}
	if c.finQueued {
		return a, ErrClosed
	}
	if c.cfg.Mode == Record {
		if c.sndMSS > 0 && p.Len() > c.sndMSS {
			return a, ErrRecordTooBig
		}
		c.pendingRecords = append(c.pendingRecords, p)
	} else {
		c.pendingBytes = append(c.pendingBytes, p)
	}
	c.pendingLen += p.Len()
	c.output(now, &a)
	return a, nil
}

// SetRecvWindow sets the receive window limit from posted receive buffer
// capacity (record mode). Opening the window may emit a window update.
func (c *Conn) SetRecvWindow(bytes int, now int64) Actions {
	a := c.newActions()
	defer c.finishActions(&a)
	if bytes < 0 {
		bytes = 0
	}
	c.rcvWnd = bytes
	c.maybeWindowUpdate(now, &a)
	return a
}

// AppRead tells the connection the application consumed n delivered bytes
// (stream mode), freeing receive buffer and possibly opening the window.
func (c *Conn) AppRead(n int, now int64) Actions {
	a := c.newActions()
	defer c.finishActions(&a)
	if n > c.rcvBufUsed {
		n = c.rcvBufUsed
	}
	c.rcvBufUsed -= n
	c.maybeWindowUpdate(now, &a)
	return a
}

// maybeWindowUpdate emits a pure ACK when the advertised window would grow
// by at least one MSS or half the buffer from what the peer last saw —
// receiver-side silly-window avoidance, plus the zero-to-open transition
// that record mode depends on when WRs are posted after data is in flight.
func (c *Conn) maybeWindowUpdate(now int64, a *Actions) {
	if c.state != Established && c.state != FinWait1 && c.state != FinWait2 {
		return
	}
	adv := c.advertisableWindow()
	grow := adv - c.lastAdvWnd
	threshold := c.sndMSS
	if t := c.cfg.RecvWindow / 2; t < threshold && t > 0 {
		threshold = t
	}
	if threshold <= 0 {
		threshold = 1
	}
	if (c.lastAdvWnd == 0 && adv > 0) || grow >= threshold {
		c.stats.WindowUpdatesOut++
		c.sendAck(now, a)
	}
}

// Close begins an orderly release. Queued data is sent before the FIN.
func (c *Conn) Close(now int64) (Actions, error) {
	a := c.newActions()
	defer c.finishActions(&a)
	switch c.state {
	case Established:
		c.state = FinWait1
	case CloseWait:
		c.state = LastAck
	case SynRcvd:
		c.state = FinWait1
	case SynSent:
		c.state = Closed
		a.Closed = true
		c.cancelTimers()
		return a, nil
	case Closed:
		return a, ErrClosed
	default:
		return a, ErrBadState
	}
	c.finQueued = true
	c.output(now, &a)
	return a, nil
}

// Abort tears the connection down immediately, emitting an RST if the
// connection is synchronized.
func (c *Conn) Abort(now int64) Actions {
	a := c.newActions()
	defer c.finishActions(&a)
	if c.state == Established || c.state == SynRcvd || c.state == FinWait1 ||
		c.state == FinWait2 || c.state == CloseWait || c.state == Closing || c.state == LastAck {
		seg := c.makeSeg(RST|ACK, buf.Empty)
		seg.Seq = c.sndNxt
		c.emit(&a, seg)
	}
	c.toClosed(&a)
	return a
}

func (c *Conn) toClosed(a *Actions) {
	if c.state != Closed {
		c.state = Closed
		a.Closed = true
	}
	c.cancelTimers()
	c.flight, c.flightHead = nil, 0
	c.pendingRecords, c.pendingRecHead = nil, 0
	c.pendingBytes, c.pendingBytHead = nil, 0
	c.pendingLen = 0
}

// advertisableWindow computes the receive window to advertise.
func (c *Conn) advertisableWindow() int {
	w := c.rcvWnd - c.rcvBufUsed
	if w < 0 {
		w = 0
	}
	// Clamp to the maximum representable with our scale.
	max := 0xffff << c.rcvScale
	if w > max {
		w = max
	}
	return w
}

// ReuseActionBuffers opts the connection into reusing its Actions slice
// backing arrays across calls. Owners that fully consume Segments and
// Delivered before the next call into the connection (the NIC firmware and
// host kernel both do) enable this to keep the per-call Actions off the
// heap; owners that retain Actions across calls must leave it off.
func (c *Conn) ReuseActionBuffers(on bool) { c.reuseActs = on }

// newActions builds the Actions value for one API call, reusing retained
// backing arrays when the owner opted in.
func (c *Conn) newActions() Actions {
	if !c.reuseActs {
		return Actions{}
	}
	return Actions{Segments: c.actSegs[:0], Delivered: c.actBufs[:0]}
}

// finishActions recaptures (possibly grown) backing arrays when the call
// returns; deferred so error paths are covered too.
func (c *Conn) finishActions(a *Actions) {
	if !c.reuseActs {
		return
	}
	c.actSegs = a.Segments[:0]
	c.actBufs = a.Delivered[:0]
}

// flightLen reports outstanding (unacknowledged) flight entries.
func (c *Conn) flightLen() int { return len(c.flight) - c.flightHead }

// flightFront returns the oldest unacknowledged flight entry.
func (c *Conn) flightFront() *flightSeg { return c.flight[c.flightHead] }

// popFlight retires the head flight entry, resetting the queue to its
// backing array's start once drained so steady-state traffic never
// reallocates it.
func (c *Conn) popFlight() *flightSeg {
	f := c.flight[c.flightHead]
	c.flight[c.flightHead] = nil
	c.flightHead++
	if c.flightHead == len(c.flight) {
		c.flight = c.flight[:0]
		c.flightHead = 0
	}
	return f
}

// newFlightSeg pops the per-conn free list, falling back to the heap.
func (c *Conn) newFlightSeg() *flightSeg {
	if n := len(c.flightFree); n > 0 {
		f := c.flightFree[n-1]
		c.flightFree = c.flightFree[:n-1]
		return f
	}
	return &flightSeg{}
}

// freeFlightSeg recycles a retired flight entry, dropping its payload
// reference so acknowledged data is not pinned. With pooling disabled
// entries fall to the collector, matching the pre-pool baseline.
func (c *Conn) freeFlightSeg(f *flightSeg) {
	if !pool.Enabled() {
		return
	}
	*f = flightSeg{}
	c.flightFree = append(c.flightFree, f)
}

// makeSeg builds a segment skeleton with ports, ack, window and timestamp
// filled from current state.
func (c *Conn) makeSeg(flags Flags, payload buf.Buf) *Segment {
	seg := NewSegment()
	seg.SrcPort = c.cfg.LocalPort
	seg.DstPort = c.cfg.RemotePort
	seg.Flags = flags
	seg.Payload = payload
	if flags.Has(ACK) {
		seg.Ack = c.rcvNxt
	}
	adv := c.advertisableWindow()
	if flags.Has(SYN) { // SYN windows are never scaled
		if adv > 0xffff {
			adv = 0xffff
		}
		seg.Wnd = uint16(adv)
		c.lastAdvWnd = adv
	} else {
		seg.Wnd = uint16(adv >> c.rcvScale)
		c.lastAdvWnd = int(seg.Wnd) << c.rcvScale
	}
	return seg
}

// stampTS applies the timestamp option to an outgoing segment.
func (c *Conn) stampTS(seg *Segment, now int64) {
	if c.tsOK {
		seg.HasTS = true
		seg.TSVal = tsClock(now)
		seg.TSEcr = c.tsRecent
	}
}

// emit books an outgoing segment into stats and the action list.
func (c *Conn) emit(a *Actions, seg *Segment) {
	c.stats.SegsOut++
	if seg.Payload.Len() > 0 {
		c.stats.DataSegsOut++
		c.stats.BytesOut += uint64(seg.Payload.Len())
	} else if seg.Flags.Has(ACK) && !seg.Flags.Has(SYN|FIN) {
		c.stats.AcksOut++
	}
	a.Segments = append(a.Segments, seg)
	c.ackPending = false
	c.delackCount = 0
	c.delackDeadline = 0
}

// sendAck emits an immediate pure ACK.
func (c *Conn) sendAck(now int64, a *Actions) {
	seg := c.makeSeg(ACK, buf.Empty)
	seg.Seq = c.sndNxt
	c.stampTS(seg, now)
	c.emit(a, seg)
}

// tsClock converts nanoseconds to the millisecond timestamp clock used in
// the RFC 1323 option fields.
func tsClock(now int64) uint32 { return uint32(now / 1e6) }
