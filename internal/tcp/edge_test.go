package tcp

import (
	"testing"
	"testing/quick"

	"repro/internal/buf"
)

// Edge-case and property tests beyond the main suite: sequence wraparound
// mid-connection, bidirectional loss, record-boundary invariants.

// TestSequenceWraparoundMidTransfer starts a connection near the top of
// sequence space so the transfer crosses the 2^32 boundary.
func TestSequenceWraparoundMidTransfer(t *testing.T) {
	mk := func(lp, rp uint16, iss Seq) *Conn {
		return NewConn(Config{
			LocalPort: lp, RemotePort: rp,
			Mode: Record, MSS: 4096, RecvWindow: 256 * 1024,
			WindowScale: true, Timestamps: true, NoDelay: true,
			ISS: iss,
		})
	}
	// ISS a few KB below wraparound: the 20 x 4 KB records cross it.
	n := newTestNet(t, mk(1000, 2000, 0xffffe000), mk(2000, 1000, 5000))
	n.connect()
	for i := 0; i < 20; i++ {
		n.send(0, buf.Pattern(4096, byte(i)))
	}
	n.run(10_000_000_000)
	if len(n.delivered[1]) != 20 {
		t.Fatalf("delivered %d records across wraparound, want 20", len(n.delivered[1]))
	}
	for i, d := range n.delivered[1] {
		if !buf.Equal(d, buf.Pattern(4096, byte(i))) {
			t.Fatalf("record %d corrupted across wraparound", i)
		}
	}
	if n.ackedRec[0] != 20 {
		t.Fatalf("completions = %d", n.ackedRec[0])
	}
}

// TestBidirectionalLossRecovers pushes records both ways with periodic
// loss in both directions; all data must arrive intact, in order.
func TestBidirectionalLossRecovers(t *testing.T) {
	n := pair(t, Record, 4096, 256*1024, nil)
	n.drop = func(from, idx int, seg *Segment) bool {
		// Drop every 13th frame in each direction (first transmission
		// patterns repeat; retransmissions eventually land on other
		// indices and survive).
		return idx%13 == 7
	}
	const msgs = 30
	for i := 0; i < msgs; i++ {
		n.send(0, buf.Pattern(1024, byte(i)))
		n.send(1, buf.Pattern(2048, byte(100+i)))
	}
	n.run(120_000_000_000)
	if len(n.delivered[1]) != msgs || len(n.delivered[0]) != msgs {
		t.Fatalf("delivered %d / %d records, want %d each",
			len(n.delivered[1]), len(n.delivered[0]), msgs)
	}
	for i := 0; i < msgs; i++ {
		if !buf.Equal(n.delivered[1][i], buf.Pattern(1024, byte(i))) {
			t.Fatalf("0->1 record %d corrupted or reordered", i)
		}
		if !buf.Equal(n.delivered[0][i], buf.Pattern(2048, byte(100+i))) {
			t.Fatalf("1->0 record %d corrupted or reordered", i)
		}
	}
}

// Property: for any list of record sizes (1..MSS), record mode delivers
// exactly those records, in order, byte-identical.
func TestRecordIntegrityProperty(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 24 {
			return true
		}
		n := pair(t, Record, 8192, 512*1024, nil)
		var want []buf.Buf
		for i, r := range sizesRaw {
			size := int(r)%8192 + 1
			m := buf.Pattern(size, byte(i))
			want = append(want, m)
			n.send(0, m)
		}
		n.run(20_000_000_000)
		if len(n.delivered[1]) != len(want) {
			return false
		}
		for i := range want {
			if !buf.Equal(n.delivered[1][i], want[i]) {
				return false
			}
		}
		return n.ackedRec[0] == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: stream mode with arbitrary write sizes delivers the exact
// byte stream regardless of segmentation.
func TestStreamIntegrityProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		if len(chunks) == 0 || len(chunks) > 16 {
			return true
		}
		n := pair(t, Stream, 1460, 128*1024, nil)
		var all []byte
		for i, c := range chunks {
			size := int(c)%5000 + 1
			m := buf.Pattern(size, byte(i*7))
			all = append(all, m.Data()...)
			n.send(0, m)
		}
		n.run(30_000_000_000)
		got := n.deliveredBytes(1)
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestZeroWindowThenBurst opens the window in small increments while the
// sender has a large backlog; every record must flow without duplication.
func TestZeroWindowThenBurst(t *testing.T) {
	n := pair(t, Record, 4096, 256*1024, func(c *Config) {
		if c.LocalPort == 2000 {
			c.RecvWindow = -1
			c.MaxRecvWindow = 256 * 1024
		}
	})
	const msgs = 10
	for i := 0; i < msgs; i++ {
		n.send(0, buf.Pattern(4096, byte(i)))
	}
	// Open the window one record at a time, as a receiver posting one
	// buffer per iteration would.
	for i := 0; i < msgs; i++ {
		n.apply(1, n.conns[1].SetRecvWindow(n.totalDelivered(1)+4096, n.now))
		n.run(2_000_000_000)
	}
	n.apply(1, n.conns[1].SetRecvWindow(256*1024, n.now))
	n.run(30_000_000_000)
	if len(n.delivered[1]) != msgs {
		t.Fatalf("delivered %d records, want %d", len(n.delivered[1]), msgs)
	}
	if rx := n.conns[1].Stats().DataSegsIn; rx != msgs {
		t.Fatalf("receiver saw %d data segments, want %d (duplicates?)", rx, msgs)
	}
}

// TestFinDuringBacklog closes with records still queued under a small
// window; all records then the FIN must arrive.
func TestFinDuringBacklog(t *testing.T) {
	n := pair(t, Record, 4096, 8*1024, nil)
	for i := 0; i < 6; i++ {
		n.send(0, buf.Pattern(4096, byte(i)))
	}
	a, err := n.conns[0].Close(n.now)
	if err != nil {
		t.Fatal(err)
	}
	n.apply(0, a)
	// Receiver consumes by reposting window as records arrive.
	for i := 0; i < 100 && !n.peerFin[1]; i++ {
		n.run(500_000_000)
		n.apply(1, n.conns[1].SetRecvWindow(8*1024+n.totalDelivered(1), n.now))
	}
	n.run(10_000_000_000)
	if len(n.delivered[1]) != 6 {
		t.Fatalf("delivered %d records before FIN", len(n.delivered[1]))
	}
	if !n.peerFin[1] {
		t.Fatal("FIN never arrived after backlog drained")
	}
}
