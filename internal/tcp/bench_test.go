package tcp

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/pool"
)

// This file measures the PR-2 datapath claims at the protocol-engine level:
// header marshal/parse into caller scratch, and a full send→deliver→ack
// round trip over an established record-mode pair. Unlike testNet, the
// helpers here follow the pooled ownership discipline — every segment a
// conn emits is Released by the consumer — so the benchmarks exercise the
// same recycling the simulated NIC firmware does.

// benchPair builds an established record-mode pair by exchanging the
// handshake segments directly, the way the firmware drives the TCB.
func benchPair(tb testing.TB, reuse bool) (client, server *Conn) {
	tb.Helper()
	mk := func(lp, rp uint16, iss Seq) *Conn {
		c := NewConn(Config{
			LocalPort: lp, RemotePort: rp,
			Mode: Record, MSS: 16384,
			RecvWindow: 1 << 20, MaxRecvWindow: 1 << 20,
			WindowScale: true, Timestamps: true,
			ISS: iss,
		})
		c.ReuseActionBuffers(reuse)
		return c
	}
	client = mk(1000, 2000, 100)
	server = mk(2000, 1000, 5000)

	now := int64(1_000_000_000)
	ca, err := client.Connect(now)
	if err != nil {
		tb.Fatalf("Connect: %v", err)
	}
	syn := ca.Segments[0]
	sa, err := server.AcceptSYN(syn, now)
	if err != nil {
		tb.Fatalf("AcceptSYN: %v", err)
	}
	syn.Release()
	synack := sa.Segments[0]
	ca2 := client.Input(synack, now)
	synack.Release()
	ack := ca2.Segments[0]
	server.Input(ack, now)
	ack.Release()
	if client.State() != Established || server.State() != Established {
		tb.Fatalf("handshake failed: %v / %v", client.State(), server.State())
	}
	return client, server
}

// roundtrip pushes one record from client to server and feeds the ack
// back, releasing both segments — the steady-state unit of a ttcp run.
func roundtrip(tb testing.TB, client, server *Conn, payload buf.Buf, now int64) {
	a, err := client.Send(payload, now)
	if err != nil {
		tb.Fatalf("Send: %v", err)
	}
	if len(a.Segments) != 1 {
		tb.Fatalf("Send emitted %d segments, want 1", len(a.Segments))
	}
	seg := a.Segments[0]
	sa := server.Input(seg, now)
	seg.Release()
	if len(sa.Segments) != 1 || len(sa.Delivered) != 1 {
		tb.Fatalf("Input emitted %d segments / %d deliveries, want 1/1",
			len(sa.Segments), len(sa.Delivered))
	}
	ackSeg := sa.Segments[0]
	client.Input(ackSeg, now+10_000)
	ackSeg.Release()
}

func benchSegment() *Segment {
	return &Segment{
		SrcPort: 1000, DstPort: 2000,
		Seq: 12345, Ack: 67890,
		Flags: ACK | PSH, Wnd: 4096,
		HasTS: true, TSVal: 111, TSEcr: 222,
		WScale:  -1,
		Payload: buf.Virtual(4096),
	}
}

func BenchmarkSegmentMarshal(b *testing.B) {
	seg := benchSegment()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = seg.MarshalHeader()
	}
}

func BenchmarkSegmentMarshalInto(b *testing.B) {
	seg := benchSegment()
	var scratch [64]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = seg.MarshalHeaderInto(scratch[:])
	}
}

func BenchmarkSegmentParse(b *testing.B) {
	hdr := benchSegment().MarshalHeader()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseHeader(hdr); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRoundtrip(b *testing.B, pooled bool) {
	defer pool.SetEnabled(pool.Enabled())
	pool.SetEnabled(pooled)
	client, server := benchPair(b, pooled)
	payload := buf.Pattern(4096, 0x5A)
	now := int64(2_000_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundtrip(b, client, server, payload, now)
		now += 20_000
	}
}

// BenchmarkRecordRoundtrip is the pooled send path: recycled segments,
// reused Actions backing, free-listed flight entries, head-indexed queues.
func BenchmarkRecordRoundtrip(b *testing.B) { benchRoundtrip(b, true) }

// BenchmarkRecordRoundtripNoPool is the pre-PR allocation behavior, kept as
// the A/B baseline for EXPERIMENTS.md.
func BenchmarkRecordRoundtripNoPool(b *testing.B) { benchRoundtrip(b, false) }

// TestSendPathAllocFree is the allocation regression gate for the record
// send path: once warm, a full send→deliver→ack round trip must not
// allocate. (testing.AllocsPerRun can observe a stray allocation if a GC
// cycle empties the segment pool mid-measurement, so the bound allows a
// small fraction rather than demanding exactly zero.)
func TestSendPathAllocFree(t *testing.T) {
	if !pool.Enabled() {
		t.Skip("pooling disabled")
	}
	client, server := benchPair(t, true)
	payload := buf.Pattern(4096, 0x5A)
	now := int64(2_000_000_000)
	step := func() {
		roundtrip(t, client, server, payload, now)
		now += 20_000
	}
	for i := 0; i < 64; i++ {
		step() // warm the pools and grow every reused backing array
	}
	if avg := testing.AllocsPerRun(200, step); avg > 0.25 {
		t.Errorf("record round trip allocates %.2f objects/op after warmup, want ~0", avg)
	}
}

// TestSegmentMarshalIntoAllocFree pins the scratch-marshal path at zero
// allocations.
func TestSegmentMarshalIntoAllocFree(t *testing.T) {
	seg := benchSegment()
	var scratch [64]byte
	if avg := testing.AllocsPerRun(100, func() {
		_ = seg.MarshalHeaderInto(scratch[:])
	}); avg != 0 {
		t.Errorf("MarshalHeaderInto allocates %.2f objects/op, want 0", avg)
	}
}
