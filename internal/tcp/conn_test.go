package tcp

import (
	"testing"

	"repro/internal/buf"
)

func TestHandshakeEstablishes(t *testing.T) {
	n := pair(t, Record, 16384, 64*1024, nil)
	if n.conns[0].State() != Established || n.conns[1].State() != Established {
		t.Fatalf("states %v / %v", n.conns[0].State(), n.conns[1].State())
	}
	if n.conns[0].SendMSS() != 16384 || n.conns[1].SendMSS() != 16384 {
		t.Errorf("negotiated MSS %d/%d, want 16384", n.conns[0].SendMSS(), n.conns[1].SendMSS())
	}
}

func TestMSSNegotiationTakesMin(t *testing.T) {
	a := NewConn(Config{LocalPort: 1, RemotePort: 2, MSS: 9000, ISS: 1})
	b := NewConn(Config{LocalPort: 2, RemotePort: 1, MSS: 1460, ISS: 2})
	n := newTestNet(t, a, b)
	n.connect()
	if a.SendMSS() != 1460 || b.SendMSS() != 1460 {
		t.Errorf("send MSS %d/%d, want 1460", a.SendMSS(), b.SendMSS())
	}
}

func TestRecordModeDeliversMessagesIntact(t *testing.T) {
	n := pair(t, Record, 16384, 256*1024, nil)
	msgs := []buf.Buf{
		buf.Pattern(1, 1),
		buf.Pattern(100, 2),
		buf.Pattern(16384, 3),
		buf.Pattern(7, 4),
	}
	for _, m := range msgs {
		n.send(0, m)
	}
	n.run(5_000_000_000)
	if len(n.delivered[1]) != len(msgs) {
		t.Fatalf("delivered %d records, want %d", len(n.delivered[1]), len(msgs))
	}
	for i, m := range msgs {
		if !buf.Equal(n.delivered[1][i], m) {
			t.Errorf("record %d corrupted: %v vs %v", i, n.delivered[1][i], m)
		}
	}
	if n.ackedRec[0] != len(msgs) {
		t.Errorf("sender completed %d records, want %d", n.ackedRec[0], len(msgs))
	}
	if got := n.conns[0].Stats().Retransmits; got != 0 {
		t.Errorf("lossless transfer had %d retransmits", got)
	}
}

func TestRecordTooBigRejected(t *testing.T) {
	n := pair(t, Record, 1000, 64*1024, nil)
	_, err := n.conns[0].Send(buf.Virtual(1001), n.now)
	if err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestStreamModeSegmentsAtMSS(t *testing.T) {
	n := pair(t, Stream, 1460, 64*1024, nil)
	n.send(0, buf.Pattern(10000, 5))
	n.run(5_000_000_000)
	if got := n.totalDelivered(1); got != 10000 {
		t.Fatalf("delivered %d bytes, want 10000", got)
	}
	for _, d := range n.delivered[1] {
		if d.Len() > 1460 {
			t.Errorf("segment payload %d exceeds MSS", d.Len())
		}
	}
	want := buf.Pattern(10000, 5).Data()
	got := n.deliveredBytes(1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestStreamBidirectional(t *testing.T) {
	n := pair(t, Stream, 1460, 64*1024, nil)
	n.send(0, buf.Pattern(5000, 1))
	n.send(1, buf.Pattern(3000, 2))
	n.run(5_000_000_000)
	if n.totalDelivered(1) != 5000 || n.totalDelivered(0) != 3000 {
		t.Fatalf("delivered %d / %d bytes", n.totalDelivered(1), n.totalDelivered(0))
	}
}

func TestWindowScaleNegotiated(t *testing.T) {
	n := pair(t, Stream, 1460, 1<<20, nil)
	if n.conns[0].rcvScale == 0 || n.conns[1].sndScale == 0 {
		t.Errorf("window scale not negotiated: rcvScale=%d sndScale=%d",
			n.conns[0].rcvScale, n.conns[1].sndScale)
	}
	// Large window must survive the 16-bit field via scaling.
	n.send(0, buf.Virtual(300_000))
	n.run(10_000_000_000)
	if got := n.totalDelivered(1); got != 300_000 {
		t.Fatalf("delivered %d bytes, want 300000", got)
	}
}

func TestWindowScaleDisabledWhenPeerLacksIt(t *testing.T) {
	a := NewConn(Config{LocalPort: 1, RemotePort: 2, MSS: 1460, WindowScale: true, RecvWindow: 1 << 20, ISS: 1})
	b := NewConn(Config{LocalPort: 2, RemotePort: 1, MSS: 1460, WindowScale: false, ISS: 2})
	n := newTestNet(t, a, b)
	n.connect()
	if a.rcvScale != 0 {
		t.Errorf("a kept rcvScale %d with non-scaling peer", a.rcvScale)
	}
}

func TestTimestampsProduceRTTSamples(t *testing.T) {
	n := pair(t, Record, 16384, 256*1024, nil)
	for i := 0; i < 10; i++ {
		n.send(0, buf.Virtual(1000))
		n.run(5_000_000_000)
	}
	if got := n.conns[0].Stats().RTTSamples; got == 0 {
		t.Error("no RTT samples collected")
	}
}

func TestRecvWindowStartsClosedAndOpens(t *testing.T) {
	// QPIP semantics: the receiver's window derives from posted WR space;
	// with nothing posted the sender must not transmit.
	n := pair(t, Record, 16384, 256*1024, func(c *Config) {
		if c.LocalPort == 2000 { // the passive side
			c.RecvWindow = -1 // start closed
			c.MaxRecvWindow = 256 * 1024
		}
	})
	n.send(0, buf.Pattern(4096, 9))
	n.run(100_000_000) // 100 ms: nothing should arrive
	if len(n.delivered[1]) != 0 {
		t.Fatalf("data delivered through closed window")
	}
	// Receiver posts buffer space.
	n.apply(1, n.conns[1].SetRecvWindow(64*1024, n.now))
	n.run(5_000_000_000)
	if len(n.delivered[1]) != 1 {
		t.Fatalf("delivered %d records after window opened, want 1", len(n.delivered[1]))
	}
	if n.ackedRec[0] != 1 {
		t.Errorf("sender completions = %d, want 1", n.ackedRec[0])
	}
}

func TestFlowControlHonorsWindow(t *testing.T) {
	// Small receive window, large transfer: sender must pace by window.
	n := pair(t, Stream, 1460, 8*1024, nil)
	n.send(0, buf.Virtual(100_000))
	// Simulate app reading as data arrives: run in steps, consuming.
	for i := 0; i < 2000 && n.totalDelivered(1) < 100_000; i++ {
		n.run(50_000_000)
		// App consumes everything delivered so far.
		pendingRead := n.conns[1].rcvBufUsed
		if pendingRead > 0 {
			n.apply(1, n.conns[1].AppRead(pendingRead, n.now))
		}
	}
	if got := n.totalDelivered(1); got != 100_000 {
		t.Fatalf("delivered %d bytes, want 100000", got)
	}
	if rx := n.conns[1].Stats().BytesIn; rx != 100_000 {
		t.Errorf("receiver counted %d bytes in (duplicates mean window overrun)", rx)
	}
}

func TestLostDataSegmentRecoversByTimeout(t *testing.T) {
	n := pair(t, Record, 16384, 256*1024, nil)
	dropped := false
	n.drop = func(from, idx int, seg *Segment) bool {
		if from == 0 && seg.Payload.Len() > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	n.send(0, buf.Pattern(2000, 7))
	n.run(20_000_000_000)
	if !dropped {
		t.Fatal("loss script never fired")
	}
	if len(n.delivered[1]) != 1 || !buf.Equal(n.delivered[1][0], buf.Pattern(2000, 7)) {
		t.Fatalf("record not recovered after loss: %d delivered", len(n.delivered[1]))
	}
	st := n.conns[0].Stats()
	if st.Timeouts == 0 && st.FastRetransmits == 0 {
		t.Error("no retransmission recorded despite loss")
	}
	if n.ackedRec[0] != 1 {
		t.Errorf("completions = %d, want 1", n.ackedRec[0])
	}
}

func TestFastRetransmitOnDupAcks(t *testing.T) {
	n := pair(t, Stream, 1000, 256*1024, nil)
	// Warm up so cwnd can hold several segments; fast retransmit needs
	// at least three segments in flight behind the loss.
	n.send(0, buf.Virtual(50_000))
	n.run(10_000_000_000)
	armed, droppedOnce := true, false
	n.drop = func(from, idx int, seg *Segment) bool {
		// Drop the first transmission of the next data segment; the
		// segments behind it generate the dup acks.
		if armed && !droppedOnce && from == 0 && seg.Payload.Len() > 0 {
			droppedOnce = true
			return true
		}
		return false
	}
	n.send(0, buf.Virtual(20_000))
	n.run(30_000_000_000)
	if got := n.totalDelivered(1); got != 70_000 {
		t.Fatalf("delivered %d bytes, want 70000", got)
	}
	st := n.conns[0].Stats()
	if st.FastRetransmits == 0 {
		t.Errorf("expected fast retransmit; stats: %+v", st)
	}
}

func TestLostAckRecovered(t *testing.T) {
	n := pair(t, Record, 16384, 256*1024, nil)
	nAcks := 0
	n.drop = func(from, idx int, seg *Segment) bool {
		if from == 1 && seg.Payload.Len() == 0 && nAcks == 0 {
			nAcks++
			return true
		}
		return false
	}
	n.send(0, buf.Pattern(500, 3))
	n.run(20_000_000_000)
	if len(n.delivered[1]) != 1 {
		t.Fatalf("delivered %d records", len(n.delivered[1]))
	}
	if n.ackedRec[0] != 1 {
		t.Errorf("sender never completed after lost ack (completions=%d)", n.ackedRec[0])
	}
	// Receiver must not deliver the retransmitted duplicate twice.
	if rx := n.conns[1].Stats().DataSegsIn; rx != 1 {
		t.Errorf("receiver counted %d data segments, want 1 (dup delivered?)", rx)
	}
}

func TestOutOfOrderDroppedNotReassembled(t *testing.T) {
	// Drop segment 2 of 5; later segments must be discarded (no
	// reassembly, paper §4.1) and eventually retransmitted in order.
	n := pair(t, Stream, 1000, 256*1024, nil)
	droppedOnce := false
	n.drop = func(from, idx int, seg *Segment) bool {
		if !droppedOnce && from == 0 && seg.Seq == Seq(101+1000) && seg.Payload.Len() > 0 && !seg.Flags.Has(SYN) {
			droppedOnce = true
			return true
		}
		return false
	}
	n.send(0, buf.Pattern(5000, 8))
	n.run(30_000_000_000)
	got := n.deliveredBytes(1)
	want := buf.Pattern(5000, 8).Data()
	if len(got) != len(want) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d corrupted after OOO recovery", i)
		}
	}
	if n.conns[1].Stats().OutOfOrderDrops == 0 {
		t.Error("no out-of-order drops recorded; loss script broken?")
	}
}

func TestCloseHandshakeBothSides(t *testing.T) {
	n := pair(t, Record, 16384, 64*1024, nil)
	n.send(0, buf.Pattern(100, 1))
	n.run(5_000_000_000)
	a, err := n.conns[0].Close(n.now)
	if err != nil {
		t.Fatal(err)
	}
	n.apply(0, a)
	n.run(5_000_000_000)
	if !n.peerFin[1] {
		t.Fatal("peer never saw FIN")
	}
	if n.conns[1].State() != CloseWait {
		t.Fatalf("passive closer state %v, want CLOSE_WAIT", n.conns[1].State())
	}
	a, err = n.conns[1].Close(n.now)
	if err != nil {
		t.Fatal(err)
	}
	n.apply(1, a)
	n.run(5_000_000_000)
	if n.conns[0].State() != TimeWait {
		t.Errorf("active closer state %v, want TIME_WAIT", n.conns[0].State())
	}
	if !n.closed[1] {
		t.Error("passive closer never reached CLOSED")
	}
	// TIME_WAIT expires.
	n.run(200_000_000_000)
	if n.conns[0].State() != Closed {
		t.Errorf("TIME_WAIT never expired: %v", n.conns[0].State())
	}
}

func TestCloseFlushesQueuedData(t *testing.T) {
	n := pair(t, Record, 16384, 256*1024, nil)
	for i := 0; i < 5; i++ {
		n.send(0, buf.Pattern(8000, byte(i)))
	}
	a, err := n.conns[0].Close(n.now)
	if err != nil {
		t.Fatal(err)
	}
	n.apply(0, a)
	n.run(10_000_000_000)
	if len(n.delivered[1]) != 5 {
		t.Fatalf("delivered %d records before FIN, want 5", len(n.delivered[1]))
	}
	if !n.peerFin[1] {
		t.Error("FIN not delivered after data")
	}
}

func TestSimultaneousClose(t *testing.T) {
	n := pair(t, Record, 16384, 64*1024, nil)
	a0, _ := n.conns[0].Close(n.now)
	a1, _ := n.conns[1].Close(n.now)
	n.apply(0, a0)
	n.apply(1, a1)
	n.run(300_000_000_000)
	if n.conns[0].State() != Closed || n.conns[1].State() != Closed {
		t.Errorf("states after simultaneous close: %v / %v",
			n.conns[0].State(), n.conns[1].State())
	}
}

func TestAbortSendsRST(t *testing.T) {
	n := pair(t, Record, 16384, 64*1024, nil)
	n.apply(0, n.conns[0].Abort(n.now))
	n.run(5_000_000_000)
	if !n.reset[1] {
		t.Error("peer did not observe RST")
	}
	if n.conns[1].State() != Closed {
		t.Errorf("peer state %v after RST, want CLOSED", n.conns[1].State())
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := pair(t, Record, 16384, 64*1024, nil)
	a, _ := n.conns[0].Close(n.now)
	n.apply(0, a)
	if _, err := n.conns[0].Send(buf.Virtual(10), n.now); err == nil {
		t.Error("Send after Close succeeded")
	}
}

func TestHeaderPredictionFastPathDominatesBulk(t *testing.T) {
	n := pair(t, Record, 16384, 1<<20, nil)
	for i := 0; i < 50; i++ {
		n.send(0, buf.Virtual(16000))
		n.run(2_000_000_000)
	}
	st0 := n.conns[0].Stats() // sender sees pure acks
	st1 := n.conns[1].Stats() // receiver sees in-order data
	if st0.FastPathAck == 0 {
		t.Errorf("sender fast-path acks = 0; stats %+v", st0)
	}
	if st1.FastPathData == 0 {
		t.Errorf("receiver fast-path data = 0; stats %+v", st1)
	}
	if st1.FastPathData < st1.SlowPath {
		t.Errorf("slow path dominates bulk receive: fast=%d slow=%d",
			st1.FastPathData, st1.SlowPath)
	}
}

func TestSlowStartGrowsCwnd(t *testing.T) {
	n := pair(t, Stream, 1460, 1<<20, nil)
	initial := n.conns[0].Cwnd()
	n.send(0, buf.Virtual(200_000))
	n.run(10_000_000_000)
	if got := n.conns[0].Cwnd(); got <= initial {
		t.Errorf("cwnd did not grow: %d -> %d", initial, got)
	}
}

func TestTimeoutCollapsesCwnd(t *testing.T) {
	n := pair(t, Stream, 1000, 1<<20, nil)
	n.send(0, buf.Virtual(50_000))
	n.run(10_000_000_000)
	grown := n.conns[0].Cwnd()
	if grown <= 2000 {
		t.Fatalf("cwnd never grew (%d); test needs growth first", grown)
	}
	// Black-hole everything from side 0, send, and let the RTO fire once.
	n.drop = func(from, idx int, seg *Segment) bool { return from == 0 }
	n.send(0, buf.Virtual(5000))
	n.run(5_000_000_000)
	if got := n.conns[0].Cwnd(); got != 1000 {
		t.Errorf("cwnd after timeout = %d, want 1 MSS (1000)", got)
	}
	if n.conns[0].Stats().Timeouts == 0 {
		t.Error("no timeout recorded")
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	n := pair(t, Stream, 1460, 64*1024, func(c *Config) { c.NoDelay = false })
	for i := 0; i < 20; i++ {
		n.send(0, buf.Virtual(10)) // 20 tiny writes back to back
	}
	n.run(5_000_000_000)
	if got := n.totalDelivered(1); got != 200 {
		t.Fatalf("delivered %d bytes, want 200", got)
	}
	// Nagle must have coalesced: far fewer data segments than writes.
	if segs := n.conns[0].Stats().DataSegsOut; segs >= 20 {
		t.Errorf("%d data segments for 20 tiny writes; Nagle inactive", segs)
	}
}

func TestNoDelaySendsImmediately(t *testing.T) {
	n := pair(t, Stream, 1460, 64*1024, nil) // NoDelay is set in pair()
	for i := 0; i < 5; i++ {
		n.send(0, buf.Virtual(10))
		n.run(1_000_000_000)
	}
	if segs := n.conns[0].Stats().DataSegsOut; segs != 5 {
		t.Errorf("%d data segments for 5 NODELAY writes, want 5", segs)
	}
}

func TestDelayedAckCoalescesAcks(t *testing.T) {
	n := pair(t, Stream, 1000, 256*1024, func(c *Config) {
		if c.LocalPort == 2000 {
			c.DelayedAck = true
		}
	})
	n.send(0, buf.Virtual(20_000))
	n.run(10_000_000_000)
	if n.totalDelivered(1) != 20_000 {
		t.Fatalf("delivered %d", n.totalDelivered(1))
	}
	acks := n.conns[1].Stats().AcksOut
	segs := n.conns[1].Stats().DataSegsIn
	if acks >= segs {
		t.Errorf("delayed acks inactive: %d acks for %d data segments", acks, segs)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := pair(t, Record, 16384, 256*1024, nil)
	n.send(0, buf.Pattern(1234, 1))
	n.run(5_000_000_000)
	st0, st1 := n.conns[0].Stats(), n.conns[1].Stats()
	if st0.BytesOut != 1234 || st1.BytesIn != 1234 {
		t.Errorf("byte accounting: out=%d in=%d", st0.BytesOut, st1.BytesIn)
	}
	if st0.DataSegsOut != 1 || st1.DataSegsIn != 1 {
		t.Errorf("segment accounting: out=%d in=%d", st0.DataSegsOut, st1.DataSegsIn)
	}
}

func TestConnectTwiceFails(t *testing.T) {
	c := NewConn(Config{LocalPort: 1, RemotePort: 2})
	if _, err := c.Connect(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect(0); err == nil {
		t.Error("second Connect succeeded")
	}
}

func TestAcceptSYNRejectsNonSYN(t *testing.T) {
	c := NewConn(Config{LocalPort: 1, RemotePort: 2})
	if _, err := c.AcceptSYN(&Segment{Flags: ACK}, 0); err == nil {
		t.Error("AcceptSYN accepted a non-SYN segment")
	}
}

func TestSynRetransmittedWhenLost(t *testing.T) {
	a := NewConn(Config{LocalPort: 1, RemotePort: 2, MSS: 1460, ISS: 1})
	b := NewConn(Config{LocalPort: 2, RemotePort: 1, MSS: 1460, ISS: 2})
	n := newTestNet(t, a, b)
	acts, err := a.Connect(n.now)
	if err != nil {
		t.Fatal(err)
	}
	_ = acts // SYN "lost": never delivered
	// Let the SYN retransmit timer fire; capture the retransmission.
	n.run(10_000_000_000)
	if a.Stats().Timeouts == 0 {
		t.Fatal("SYN loss never timed out")
	}
	if a.Stats().Retransmits == 0 {
		t.Fatal("SYN never retransmitted")
	}
}
