package tcp

// RTT estimation per Jacobson/Karels as implemented in the BSD stacks the
// prototype derived from (paper §4.1 cites Comer and Stevens & Wright).
// The paper highlights this machinery in Table 3: parsing a pure ACK costs
// 14 µs on the LANai largely because "of a series of multiply operations
// for the RTT estimators" done in software.

// Default timer bounds. The prototype ran on a local SAN, so the minimum
// RTO dominates behaviour; 200 ms mirrors Linux 2.4's TCP_RTO_MIN.
const (
	MinRTO     = 200 * 1000 * 1000        // 200 ms in ns
	MaxRTO     = 120 * 1000 * 1000 * 1000 // 120 s in ns
	InitialRTO = 3 * 1000 * 1000 * 1000   // 3 s (RFC 1122)
)

// RTTEstimator maintains smoothed RTT state in nanoseconds using the
// classic fixed-point shifts: srtt gains 1/8 of the error, rttvar 1/4.
type RTTEstimator struct {
	srtt    int64 // smoothed RTT, ns; 0 = no sample yet
	rttvar  int64 // mean deviation, ns
	samples int
}

// Sample folds a measured round-trip time into the estimator.
func (r *RTTEstimator) Sample(rtt int64) {
	if rtt < 0 {
		return
	}
	r.samples++
	if r.srtt == 0 {
		r.srtt = rtt
		r.rttvar = rtt / 2
		return
	}
	err := rtt - r.srtt
	r.srtt += err / 8
	if err < 0 {
		err = -err
	}
	r.rttvar += (err - r.rttvar) / 4
}

// SRTT reports the smoothed RTT in nanoseconds (0 before the first sample).
func (r *RTTEstimator) SRTT() int64 { return r.srtt }

// RTTVar reports the smoothed mean deviation in nanoseconds.
func (r *RTTEstimator) RTTVar() int64 { return r.rttvar }

// Samples reports how many measurements have been folded in.
func (r *RTTEstimator) Samples() int { return r.samples }

// RTO reports the current retransmission timeout: srtt + 4*rttvar clamped
// to [MinRTO, MaxRTO], or InitialRTO before any sample.
func (r *RTTEstimator) RTO() int64 {
	if r.samples == 0 {
		return InitialRTO
	}
	rto := r.srtt + 4*r.rttvar
	if rto < MinRTO {
		rto = MinRTO
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}

// BackedOffRTO reports the RTO after n consecutive timeouts (exponential
// backoff, Karn's algorithm), clamped to MaxRTO.
func (r *RTTEstimator) BackedOffRTO(n int) int64 {
	rto := r.RTO()
	for i := 0; i < n && rto < MaxRTO; i++ {
		rto *= 2
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}
