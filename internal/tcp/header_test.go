package tcp

import (
	"testing"
	"testing/quick"

	"repro/internal/buf"
)

func TestSeqOrdering(t *testing.T) {
	cases := []struct {
		a, b Seq
		lt   bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0, 0, false},
		{0xffffffff, 0, true},  // wraparound
		{0, 0x7fffffff, true},  // max forward distance
		{0, 0x80000001, false}, // beyond half-space: considered behind
		{100, 100 + 1<<30, true},
	}
	for i, c := range cases {
		if got := c.a.Lt(c.b); got != c.lt {
			t.Errorf("case %d: %d.Lt(%d) = %v, want %v", i, c.a, c.b, got, c.lt)
		}
	}
}

func TestSeqAddDiff(t *testing.T) {
	s := Seq(0xfffffff0)
	s2 := s.Add(0x20)
	if s2 != 0x10 {
		t.Errorf("Add wrap = %#x", uint32(s2))
	}
	if d := s2.Diff(s); d != 0x20 {
		t.Errorf("Diff = %d", d)
	}
	if d := s.Diff(s2); d != -0x20 {
		t.Errorf("reverse Diff = %d", d)
	}
}

func TestSeqInWindow(t *testing.T) {
	if !Seq(10).InWindow(10, 5) {
		t.Error("window start excluded")
	}
	if Seq(15).InWindow(10, 5) {
		t.Error("window end included")
	}
	if !Seq(2).InWindow(0xfffffffe, 10) {
		t.Error("wrapped window broken")
	}
}

// Property: within any 2^30 span, Seq comparison matches integer comparison.
func TestSeqTotalOrderProperty(t *testing.T) {
	f := func(base uint32, da, db uint32) bool {
		a := Seq(base).Add(int(da % (1 << 30)))
		b := Seq(base).Add(int(db % (1 << 30)))
		ia, ib := int64(da%(1<<30)), int64(db%(1<<30))
		return a.Lt(b) == (ia < ib) && a.Leq(b) == (ia <= ib) &&
			a.Gt(b) == (ia > ib) && a.Geq(b) == (ia >= ib)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderMarshalParseRoundTrip(t *testing.T) {
	s := Segment{
		SrcPort: 1234, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0xfeedface,
		Flags: SYN | ACK, Wnd: 0x8000,
		MSS: 16384, WScale: 3,
		HasTS: true, TSVal: 111, TSEcr: 222,
		SACKPerm: true,
	}
	b := s.MarshalHeader()
	if len(b) != s.HeaderLen() || len(b)%4 != 0 {
		t.Fatalf("header length %d (HeaderLen %d)", len(b), s.HeaderLen())
	}
	got, hlen, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if hlen != len(b) {
		t.Errorf("consumed %d of %d", hlen, len(b))
	}
	want := s
	if got.SrcPort != want.SrcPort || got.DstPort != want.DstPort ||
		got.Seq != want.Seq || got.Ack != want.Ack || got.Flags != want.Flags ||
		got.Wnd != want.Wnd || got.MSS != want.MSS || got.WScale != want.WScale ||
		got.HasTS != want.HasTS || got.TSVal != want.TSVal || got.TSEcr != want.TSEcr ||
		got.SACKPerm != want.SACKPerm {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestHeaderNoOptions(t *testing.T) {
	s := Segment{SrcPort: 1, DstPort: 2, Flags: ACK, WScale: -1}
	b := s.MarshalHeader()
	if len(b) != BaseHeaderLen {
		t.Fatalf("bare header length %d", len(b))
	}
	got, _, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.MSS != 0 || got.WScale != -1 || got.HasTS || got.SACKPerm {
		t.Errorf("spurious options: %+v", got)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, wnd uint16,
		mss uint16, ws uint8, hasTS bool, tsv, tse uint32, sack bool) bool {
		s := Segment{
			SrcPort: sp, DstPort: dp,
			Seq: Seq(seq), Ack: Seq(ack),
			Flags: Flags(flags & 0x3f), Wnd: wnd,
			MSS: mss, WScale: int8(ws % 15),
			HasTS: hasTS, SACKPerm: sack,
		}
		if hasTS {
			s.TSVal, s.TSEcr = tsv, tse
		}
		got, _, err := ParseHeader(s.MarshalHeader())
		if err != nil {
			return false
		}
		got.Payload = buf.Empty
		want := s
		if want.MSS == 0 {
			want.WScale = got.WScale // MSS=0 means option omitted; WScale still emitted
		}
		return got.SrcPort == want.SrcPort && got.DstPort == want.DstPort &&
			got.Seq == want.Seq && got.Ack == want.Ack &&
			got.Flags == want.Flags && got.Wnd == want.Wnd &&
			got.MSS == want.MSS && got.HasTS == want.HasTS &&
			got.TSVal == want.TSVal && got.TSEcr == want.TSEcr &&
			got.SACKPerm == want.SACKPerm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, _, err := ParseHeader(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	s := Segment{WScale: -1}
	b := s.MarshalHeader()
	b[12] = 3 << 4 // offset 12 < 20
	if _, _, err := ParseHeader(b); err == nil {
		t.Error("bad offset accepted")
	}
	// Truncated option.
	s2 := Segment{WScale: -1, MSS: 1460}
	b2 := s2.MarshalHeader()
	b2[21] = 40 // MSS option claims length 40
	if _, _, err := ParseHeader(b2); err == nil {
		t.Error("overlong option accepted")
	}
}

func TestSegLenCountsSynFin(t *testing.T) {
	s := Segment{Flags: SYN, Payload: buf.Virtual(10), WScale: -1}
	if s.SegLen() != 11 {
		t.Errorf("SYN SegLen = %d", s.SegLen())
	}
	s.Flags = SYN | FIN
	if s.SegLen() != 12 {
		t.Errorf("SYN|FIN SegLen = %d", s.SegLen())
	}
}

func TestChecksumFieldHelpers(t *testing.T) {
	s := Segment{WScale: -1}
	b := s.MarshalHeader()
	SetChecksum(b, 0xabcd)
	if GetChecksum(b) != 0xabcd {
		t.Error("checksum field round trip failed")
	}
}

func TestFlagsString(t *testing.T) {
	if got := (SYN | ACK).String(); got != "SYN|ACK" {
		t.Errorf("Flags.String = %q", got)
	}
	if got := Flags(0).String(); got != "none" {
		t.Errorf("empty Flags.String = %q", got)
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	var r RTTEstimator
	for i := 0; i < 100; i++ {
		r.Sample(1_000_000) // steady 1 ms
	}
	if got := r.SRTT(); got < 900_000 || got > 1_100_000 {
		t.Errorf("SRTT = %d, want ~1ms", got)
	}
	if r.RTO() != MinRTO {
		t.Errorf("RTO = %d, want clamped MinRTO with tiny variance", r.RTO())
	}
}

func TestRTTEstimatorInitialRTO(t *testing.T) {
	var r RTTEstimator
	if r.RTO() != InitialRTO {
		t.Errorf("initial RTO = %d", r.RTO())
	}
}

func TestRTTBackoffDoublesAndClamps(t *testing.T) {
	var r RTTEstimator
	r.Sample(100 * 1_000_000) // 100 ms -> RTO 300 ms
	base := r.RTO()
	if got := r.BackedOffRTO(1); got != 2*base {
		t.Errorf("1 backoff = %d, want %d", got, 2*base)
	}
	if got := r.BackedOffRTO(40); got != MaxRTO {
		t.Errorf("huge backoff = %d, want MaxRTO", got)
	}
}

func TestRTTVarianceRaisesRTO(t *testing.T) {
	var r RTTEstimator
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			r.Sample(100 * 1_000_000)
		} else {
			r.Sample(500 * 1_000_000)
		}
	}
	if r.RTO() <= r.SRTT() {
		t.Errorf("RTO %d not above SRTT %d despite variance", r.RTO(), r.SRTT())
	}
}

func TestRTTIgnoresNegativeSamples(t *testing.T) {
	var r RTTEstimator
	r.Sample(-5)
	if r.Samples() != 0 {
		t.Error("negative sample counted")
	}
}
