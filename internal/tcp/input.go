package tcp

// This file is the receive half of the engine — the paper's receive FSM
// (Figure 2): parse, validate, run header prediction, process ACK state
// (RTT estimators, congestion window, completions) and deliver in-order
// data. Out-of-order segments are dropped and re-acked rather than
// reassembled, exactly as the prototype behaves (paper §4.1: "Support for
// out-of-order reassembly or urgent data was not included").

// Input processes one received segment. The owner has already verified the
// transport checksum (in hardware, firmware or host code, whichever the
// configuration models) and demultiplexed to this connection.
func (c *Conn) Input(seg *Segment, now int64) Actions {
	a := c.newActions()
	defer c.finishActions(&a)
	c.stats.SegsIn++
	switch c.state {
	case Closed:
		return a
	case SynSent:
		c.inputSynSent(seg, now, &a)
		return a
	case SynRcvd, Established, FinWait1, FinWait2, CloseWait, Closing, LastAck, TimeWait:
		c.inputSynchronized(seg, now, &a)
		return a
	default:
		return a
	}
}

func (c *Conn) inputSynSent(seg *Segment, now int64, a *Actions) {
	if seg.Flags.Has(RST) {
		if seg.Flags.Has(ACK) && seg.Ack == c.sndNxt.Add(1) {
			c.stats.BadSegments++
		}
		a.Reset = true
		c.toClosed(a)
		return
	}
	if !seg.Flags.Has(SYN | ACK) {
		c.stats.BadSegments++
		return
	}
	if seg.Ack != c.iss.Add(1) {
		c.stats.BadSegments++
		return
	}
	// Our SYN is acknowledged.
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq.Add(1)
	c.takePeerOptions(seg, now)
	c.sndUna = seg.Ack
	c.dropAckedFlight(seg.Ack, now, a)
	c.setSndWndFromSyn(seg)
	c.state = Established
	a.Established = true
	c.rexmtDeadline = 0
	c.rtoBackoff = 0
	// Final handshake ACK; data may ride along immediately after.
	c.sendAck(now, a)
	c.output(now, a)
}

func (c *Conn) inputSynchronized(seg *Segment, now int64, a *Actions) {
	// RFC 1323 PAWS check.
	if c.tsOK && seg.HasTS && c.tsRecent != 0 && int32(seg.TSVal-c.tsRecent) < 0 {
		if now-c.tsRecentTime < 24*24*3600*1e9 {
			c.stats.BadSegments++
			c.sendAck(now, a)
			return
		}
	}

	// Sequence acceptability (RFC 793 p.69).
	wnd := c.advertisableWindow()
	segLen := seg.SegLen()
	acceptable := false
	switch {
	case segLen == 0 && wnd == 0:
		acceptable = seg.Seq == c.rcvNxt
	case segLen == 0:
		acceptable = seg.Seq.InWindow(c.rcvNxt, wnd)
	case wnd == 0:
		acceptable = false
	default:
		acceptable = seg.Seq.InWindow(c.rcvNxt, wnd) ||
			seg.Seq.Add(segLen-1).InWindow(c.rcvNxt, wnd)
	}
	// A retransmission that ends exactly at rcvNxt is a pure duplicate —
	// common after a lost ACK; re-ack it.
	if !acceptable && seg.Seq.Add(segLen) == c.rcvNxt && segLen > 0 {
		acceptable = false
	}
	// Zero-window leniency: a dataless segment at exactly rcvNxt (a bare
	// FIN, or a window update sequenced past one) consumes no receive
	// buffer, so take it even when the window is closed. A send-only peer
	// that never posts receive WRs advertises a zero window for its whole
	// life (record mode derives the window from posted buffers); without
	// this its half of every close handshake is unacceptable and both ends
	// retransmit to exhaustion.
	if !acceptable && seg.Seq == c.rcvNxt && seg.Payload.Len() == 0 {
		acceptable = true
	}
	if !acceptable {
		if !seg.Flags.Has(RST) {
			// RFC 793's special allowance: "If the RCV.WND is zero, no
			// segments will be acceptable, but special allowance should be
			// made to accept valid ACKs". The ACK field still acknowledges
			// flight data — a zero-window peer must complete our sends and
			// advance our closing states even while we refuse its sequence
			// space.
			if seg.Flags.Has(ACK) {
				c.processAck(seg, now, a)
			}
			c.sendAck(now, a)
		}
		c.stats.BadSegments++
		return
	}

	if seg.Flags.Has(RST) {
		a.Reset = true
		c.toClosed(a)
		return
	}
	if seg.Flags.Has(SYN) && seg.Seq != c.irs {
		// SYN in window: fatal per RFC 793.
		a.Reset = true
		c.toClosed(a)
		return
	}
	if !seg.Flags.Has(ACK) {
		return
	}

	// Header prediction (Stevens & Wright §28.4; the paper's common-case
	// assumption): in ESTABLISHED, in-order, no flags beyond ACK/PSH,
	// window unchanged.
	if c.state == Established && seg.Seq == c.rcvNxt &&
		seg.Flags&(SYN|FIN|RST|URG) == 0 &&
		int(seg.Wnd)<<c.sndScale == c.sndWnd {
		if segLen == 0 && seg.Ack.Gt(c.sndUna) && seg.Ack.Leq(c.sndNxt) {
			c.stats.FastPathAck++
		} else if segLen > 0 && seg.Ack == c.sndUna {
			c.stats.FastPathData++
		} else {
			c.stats.SlowPath++
		}
	} else {
		c.stats.SlowPath++
	}

	if c.tsOK && seg.HasTS && seg.Seq.Leq(c.rcvNxt) {
		c.tsRecent = seg.TSVal
		c.tsRecentTime = now
	}

	c.processAck(seg, now, a)

	if c.state == SynRcvd {
		return // processAck either established us or dropped the segment
	}

	// Deliver payload.
	if segLen > 0 && seg.Payload.Len() > 0 {
		c.processData(seg, now, a)
	}

	// FIN processing.
	if seg.Flags.Has(FIN) && seg.Seq.Add(seg.Payload.Len()) == c.rcvNxt {
		c.processFin(now, a)
	}

	// Respond to a window probe: a pure ACK received while our advertised
	// window has grown since the peer last heard from us gets a window
	// re-announcement (record mode probes cannot carry probe bytes). The
	// comparison is in scaled units — what the peer can actually observe —
	// so re-announcements terminate.
	if segLen == 0 && seg.Payload.Len() == 0 && !seg.Flags.Has(FIN|SYN|RST) &&
		c.advertisableWindow()>>c.rcvScale > c.lastAdvWnd>>c.rcvScale {
		c.sendAck(now, a)
	}

	c.output(now, a)
}

// processAck handles the acknowledgment field: completions, RTT samples,
// congestion control, dup-ack fast retransmit, and state advances for
// SYN_RCVD and the closing states.
func (c *Conn) processAck(seg *Segment, now int64, a *Actions) {
	if c.state == SynRcvd {
		if seg.Ack == c.iss.Add(1) {
			c.sndUna = seg.Ack
			c.dropAckedFlight(seg.Ack, now, a)
			c.state = Established
			a.Established = true
			c.rexmtDeadline = 0
			c.rtoBackoff = 0
			c.updateSndWnd(seg)
			c.output(now, a)
		} else {
			c.stats.BadSegments++
		}
		return
	}

	ack := seg.Ack
	switch {
	case ack.Leq(c.sndUna):
		// Duplicate ACK. Counts toward fast retransmit only if it carries
		// no data or window change and we have data outstanding.
		if ack == c.sndUna && seg.Payload.Len() == 0 &&
			int(seg.Wnd)<<c.sndScale == c.sndWnd && c.sndNxt != c.sndUna {
			c.stats.DupAcksIn++
			c.dupAcks++
			if c.dupAcks == 3 {
				c.fastRetransmit(now, a)
			} else if c.dupAcks > 3 && c.inFastRecovery {
				c.cwnd += c.sndMSS // inflate
				c.output(now, a)
			}
		}
	case ack.Gt(c.sndNxt):
		// Acks data we never sent.
		c.stats.BadSegments++
		c.sendAck(now, a)
		return
	default:
		acked := ack.Diff(c.sndUna)
		c.sndUna = ack
		c.rtoBackoff = 0
		c.sampleRTT(seg, now)
		partial := c.congAvoidOnAck(acked, ack)
		c.dropAckedFlight(ack, now, a)
		if partial && c.flightLen() > 0 {
			// NewReno: a partial ack during fast recovery means the next
			// hole; retransmit it immediately. Vital here because the
			// receiver keeps no out-of-order data (paper §4.1), so every
			// segment behind a loss must be resent.
			c.retransmitHead(now, a)
		}
		if c.flightLen() == 0 {
			c.rexmtDeadline = 0
		} else {
			c.armRexmt(now)
		}
		c.dupAcks = 0
		// Closing-state advances once our FIN is acknowledged.
		if c.finSent && ack.Gt(c.finSeq) {
			switch c.state {
			case FinWait1:
				c.state = FinWait2
			case Closing:
				c.enterTimeWait(now)
			case LastAck:
				c.toClosed(a)
				return
			}
		}
	}
	c.updateSndWnd(seg)
	c.output(now, a)
}

// sampleRTT extracts a round-trip sample, preferring the RFC 1323
// timestamp echo; otherwise it times the head flight segment if it was
// never retransmitted (Karn's rule).
func (c *Conn) sampleRTT(seg *Segment, now int64) {
	if c.tsOK && seg.HasTS && seg.TSEcr != 0 {
		ms := int64(tsClock(now) - seg.TSEcr)
		if ms >= 0 {
			c.rtt.Sample(ms * 1e6)
			c.stats.RTTSamples++
		}
		return
	}
	if c.flightLen() > 0 {
		head := c.flightFront()
		if !head.rexmitted && head.seq.Add(head.segLen()).Leq(seg.Ack) {
			c.rtt.Sample(now - head.sentAt)
			c.stats.RTTSamples++
		}
	}
}

// congAvoidOnAck grows cwnd per Reno on new acknowledgment. It reports
// whether the ack was a NewReno partial ack (recovery continues).
func (c *Conn) congAvoidOnAck(acked int, ack Seq) bool {
	if c.inFastRecovery {
		if ack.Geq(c.recoverSeq) {
			c.inFastRecovery = false
			c.cwnd = c.ssthresh // deflate
		} else {
			// Partial ack during recovery: stay in recovery.
			return true
		}
	}
	if c.cwnd < c.ssthresh {
		grow := acked
		if grow > c.sndMSS {
			grow = c.sndMSS
		}
		c.cwnd += grow
	} else {
		add := c.sndMSS * c.sndMSS / c.cwnd
		if add < 1 {
			add = 1
		}
		c.cwnd += add
	}
	return false
}

// dropAckedFlight removes fully acknowledged segments from the
// retransmission queue, trimming a partially acked head (stream mode).
func (c *Conn) dropAckedFlight(ack Seq, now int64, a *Actions) {
	for c.flightLen() > 0 {
		f := c.flightFront()
		end := f.seq.Add(f.segLen())
		if end.Leq(ack) {
			a.AckedBytes += f.payload.Len()
			if f.isRecord {
				a.AckedRecords++
			}
			c.popFlight()
			c.freeFlightSeg(f)
			continue
		}
		if f.seq.Lt(ack) && f.payload.Len() > 0 {
			// Partial ack inside a stream segment: trim.
			cut := ack.Diff(f.seq)
			if cut > 0 && cut < f.payload.Len() {
				a.AckedBytes += cut
				f.payload = f.payload.Slice(cut, f.payload.Len())
				f.seq = ack
			}
		}
		break
	}
}

// fastRetransmit performs Reno fast retransmit/recovery on the third
// duplicate ACK.
func (c *Conn) fastRetransmit(now int64, a *Actions) {
	if c.flightLen() == 0 {
		return
	}
	c.stats.FastRetransmits++
	flightBytes := c.sndNxt.Diff(c.sndUna)
	half := flightBytes / 2
	if half < 2*c.sndMSS {
		half = 2 * c.sndMSS
	}
	c.ssthresh = half
	c.inFastRecovery = true
	c.recoverSeq = c.sndNxt
	c.retransmitHead(now, a)
	c.cwnd = c.ssthresh + 3*c.sndMSS
}

// retransmitHead re-sends the first unacknowledged segment.
func (c *Conn) retransmitHead(now int64, a *Actions) {
	f := c.flightFront()
	f.rexmitted = true
	f.sentAt = now
	c.stats.Retransmits++
	seg := c.makeSeg(f.flags|ACK, f.payload)
	if c.state == SynSent {
		// Our own pre-established SYN: nothing to acknowledge yet. This is
		// the ONLY flight SYN that retransmits without ACK — pushFlight
		// masks stored flags to SYN|FIN, so testing f.flags for a missing
		// ACK would also strip it from a SYN_RCVD peer's SYN|ACK, leaving
		// the active opener deaf to every handshake retransmission.
		seg.Flags = f.flags
		seg.Ack = 0
		seg.MSS = uint16(c.cfg.MSS)
		if c.cfg.WindowScale {
			seg.WScale = int8(c.rcvScale)
		}
	} else if f.flags.Has(SYN) {
		seg.MSS = uint16(c.cfg.MSS)
		if c.wsOK {
			seg.WScale = int8(c.rcvScale)
		}
	}
	seg.Seq = f.seq
	c.stampTS(seg, now)
	c.emit(a, seg)
}

// processData delivers in-order payload and drops everything else,
// emitting an immediate duplicate ACK for out-of-order arrivals so the
// sender's fast-retransmit machinery engages.
func (c *Conn) processData(seg *Segment, now int64, a *Actions) {
	switch {
	case seg.Seq == c.rcvNxt:
		n := seg.Payload.Len()
		avail := c.advertisableWindow()
		if n > avail && c.cfg.Mode == Stream {
			if avail == 0 {
				c.stats.OutOfOrderDrops++
				c.sendAck(now, a)
				return
			}
			seg = &Segment{Flags: seg.Flags &^ FIN, Seq: seg.Seq, Ack: seg.Ack, Wnd: seg.Wnd, Payload: seg.Payload.Slice(0, avail)}
			n = avail
		}
		c.rcvNxt = c.rcvNxt.Add(n)
		c.stats.DataSegsIn++
		c.stats.BytesIn += uint64(n)
		if c.cfg.Mode == Stream {
			c.rcvBufUsed += n
		}
		a.Delivered = append(a.Delivered, seg.Payload)
		c.scheduleAck(now)
	case seg.Seq.Gt(c.rcvNxt):
		// Out of order: no reassembly (paper §4.1); drop and dup-ack.
		c.stats.OutOfOrderDrops++
		c.sendAck(now, a)
	default:
		// Old duplicate (fully or partially below rcvNxt). In record mode
		// boundaries align so it is a pure duplicate; in stream mode any
		// new tail would arrive again via retransmission. Re-ack.
		c.sendAck(now, a)
	}
}

// scheduleAck marks an ACK owed for received data, honoring delayed acks
// when configured (ack at least every second segment, else on timer).
func (c *Conn) scheduleAck(now int64) {
	c.ackPending = true
	if c.cfg.DelayedAck {
		c.delackCount++
		if c.delackCount < 2 {
			if c.delackDeadline == 0 {
				c.delackDeadline = now + c.cfg.DelAckTimeout
			}
			return
		}
	}
	c.delackDeadline = 0
}

// processFin consumes the peer's FIN.
func (c *Conn) processFin(now int64, a *Actions) {
	if c.finRcvd {
		return
	}
	c.finRcvd = true
	c.rcvNxt = c.rcvNxt.Add(1)
	a.PeerClosed = true
	c.ackPending = true
	c.delackDeadline = 0
	c.delackCount = 2 // force immediate ack of FIN
	switch c.state {
	case Established:
		c.state = CloseWait
	case FinWait1:
		if c.finSent && c.sndUna.Gt(c.finSeq) {
			c.enterTimeWait(now)
		} else {
			c.state = Closing
		}
	case FinWait2:
		c.enterTimeWait(now)
	}
}

func (c *Conn) enterTimeWait(now int64) {
	c.state = TimeWait
	c.cancelDataTimers()
	c.timewaitDeadline = now + c.cfg.TimeWaitDur
}
