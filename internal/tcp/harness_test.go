package tcp

import (
	"sort"
	"testing"

	"repro/internal/buf"
)

// testNet wires two Conns through an in-order pipe with fixed latency and
// scripted loss, advancing a virtual clock. It mimics what the simulated
// stacks do, without any of the hardware cost model — pure protocol logic.
type testNet struct {
	t       *testing.T
	now     int64
	conns   [2]*Conn
	events  []netEvent
	latency int64
	// drop decides whether the nth segment sent by side `from` is lost.
	drop func(from, n int, seg *Segment) bool
	sent [2]int

	delivered [2][]buf.Buf
	ackedRec  [2]int
	ackedB    [2]int
	est       [2]bool
	peerFin   [2]bool
	closed    [2]bool
	reset     [2]bool
	retryEx   [2]bool
}

type netEvent struct {
	at  int64
	to  int
	seg *Segment
}

func newTestNet(t *testing.T, a, b *Conn) *testNet {
	return &testNet{
		t:       t,
		now:     1_000_000_000, // start at 1s so timestamp clocks are nonzero
		conns:   [2]*Conn{a, b},
		latency: 10_000, // 10 us one way
	}
}

func (n *testNet) apply(from int, a Actions) {
	n.delivered[from] = append(n.delivered[from], a.Delivered...)
	n.ackedRec[from] += a.AckedRecords
	n.ackedB[from] += a.AckedBytes
	n.est[from] = n.est[from] || a.Established
	n.peerFin[from] = n.peerFin[from] || a.PeerClosed
	n.closed[from] = n.closed[from] || a.Closed
	n.reset[from] = n.reset[from] || a.Reset
	n.retryEx[from] = n.retryEx[from] || a.RetryExceeded
	for _, seg := range a.Segments {
		idx := n.sent[from]
		n.sent[from]++
		if n.drop != nil && n.drop(from, idx, seg) {
			continue
		}
		n.events = append(n.events, netEvent{at: n.now + n.latency, to: 1 - from, seg: seg})
	}
}

// run processes network events and timers until quiescent or the deadline.
func (n *testNet) run(maxDur int64) {
	deadline := n.now + maxDur
	for n.now < deadline {
		// Earliest of: next network event, next timer on either conn.
		next := int64(0)
		pick := -1 // event index, or -2/-3 for timer on conn 0/1
		sort.SliceStable(n.events, func(i, j int) bool { return n.events[i].at < n.events[j].at })
		if len(n.events) > 0 {
			next = n.events[0].at
			pick = 0
		}
		for side, c := range n.conns {
			if d, ok := c.NextTimeout(); ok && (pick == -1 || d < next) {
				next = d
				pick = -2 - side
			}
		}
		if pick == -1 {
			return // quiescent
		}
		if next > deadline {
			return
		}
		if next > n.now {
			n.now = next
		}
		switch {
		case pick >= 0:
			ev := n.events[0]
			n.events = n.events[1:]
			n.apply(ev.to, n.conns[ev.to].Input(ev.seg, n.now))
		case pick == -2:
			n.apply(0, n.conns[0].OnTimer(n.now))
		case pick == -3:
			n.apply(1, n.conns[1].OnTimer(n.now))
		}
	}
}

func (n *testNet) connect() {
	a, err := n.conns[0].Connect(n.now)
	if err != nil {
		n.t.Fatalf("Connect: %v", err)
	}
	// Side 1 is passive: route the SYN manually through AcceptSYN.
	if len(a.Segments) != 1 {
		n.t.Fatalf("Connect emitted %d segments, want 1 SYN", len(a.Segments))
	}
	syn := a.Segments[0]
	n.now += n.latency
	acts, err := n.conns[1].AcceptSYN(syn, n.now)
	if err != nil {
		n.t.Fatalf("AcceptSYN: %v", err)
	}
	n.apply(1, acts)
	n.run(10_000_000_000)
	if !n.est[0] || !n.est[1] {
		n.t.Fatalf("handshake did not establish: est=%v states=%v/%v",
			n.est, n.conns[0].State(), n.conns[1].State())
	}
}

func (n *testNet) send(from int, p buf.Buf) {
	a, err := n.conns[from].Send(p, n.now)
	if err != nil {
		n.t.Fatalf("Send: %v", err)
	}
	n.apply(from, a)
}

func (n *testNet) totalDelivered(side int) int {
	total := 0
	for _, d := range n.delivered[side] {
		total += d.Len()
	}
	return total
}

func (n *testNet) deliveredBytes(side int) []byte {
	var out []byte
	for _, d := range n.delivered[side] {
		out = append(out, d.Data()...)
	}
	return out
}

// pair builds a connected record-mode or stream-mode pair with symmetric
// configs.
func pair(t *testing.T, mode Mode, mss, window int, tweak func(*Config)) *testNet {
	mk := func(lp, rp uint16, iss Seq) *Conn {
		cfg := Config{
			LocalPort: lp, RemotePort: rp,
			Mode: mode, MSS: mss, RecvWindow: window,
			WindowScale: true, Timestamps: true,
			NoDelay: true,
			ISS:     iss,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		return NewConn(cfg)
	}
	n := newTestNet(t, mk(1000, 2000, 100), mk(2000, 1000, 5000))
	n.connect()
	return n
}
