// Package tcp implements the TCP engine shared by the QPIP NIC firmware and
// the host-based baseline stack. Per the paper (§4.1) it implements RTT
// estimation, window management, congestion and flow control, and the
// RFC 1323 timestamp and window-scaling enhancements, with header-prediction
// fast paths per Stevens & Wright. Out-of-order reassembly and urgent data
// are deliberately omitted, exactly as in the prototype.
//
// The package is simulation-free and side-effect-free: time enters as
// explicit nanosecond arguments and segments to transmit are returned to the
// caller, so the same engine runs inside the simulated NIC (record mode,
// one QP message per segment) and inside the simulated host kernel (stream
// mode with MSS segmentation).
package tcp

// Seq is a TCP sequence number with modular comparison semantics (RFC 793
// §3.3). All comparisons are valid provided the compared values lie within
// a 2^31 window of one another.
type Seq uint32

// Lt reports s < t in sequence space.
func (s Seq) Lt(t Seq) bool { return int32(t-s) > 0 }

// Leq reports s <= t in sequence space.
func (s Seq) Leq(t Seq) bool { return int32(t-s) >= 0 }

// Gt reports s > t in sequence space.
func (s Seq) Gt(t Seq) bool { return t.Lt(s) }

// Geq reports s >= t in sequence space.
func (s Seq) Geq(t Seq) bool { return t.Leq(s) }

// Add advances s by n bytes.
func (s Seq) Add(n int) Seq { return s + Seq(uint32(n)) }

// Diff reports the signed distance from t to s (s - t).
func (s Seq) Diff(t Seq) int { return int(int32(s - t)) }

// InWindow reports whether s lies in the half-open window [lo, lo+size).
func (s Seq) InWindow(lo Seq, size int) bool {
	return lo.Leq(s) && s.Lt(lo.Add(size))
}
