package tcp

import (
	"encoding/binary"
	"errors"

	"repro/internal/buf"
)

// Flags is the TCP control-flag set.
type Flags uint8

// TCP control flags (RFC 793 header bit order).
const (
	FIN Flags = 1 << iota
	SYN
	RST
	PSH
	ACK
	URG
)

// Has reports whether all flags in f are set.
func (f Flags) Has(q Flags) bool { return f&q == q }

func (f Flags) String() string {
	names := []struct {
		f Flags
		n string
	}{{SYN, "SYN"}, {ACK, "ACK"}, {FIN, "FIN"}, {RST, "RST"}, {PSH, "PSH"}, {URG, "URG"}}
	out := ""
	for _, e := range names {
		if f.Has(e.f) {
			if out != "" {
				out += "|"
			}
			out += e.n
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// BaseHeaderLen is the option-free TCP header size.
const BaseHeaderLen = 20

// TimestampOptLen is the on-wire size of the RFC 1323 timestamp option
// including its two leading NOPs, the layout every stack of the era used.
const TimestampOptLen = 12

// Segment is one TCP segment: header fields, parsed options, and payload.
// In QPIP record mode, one segment carries exactly one QP message.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         Seq
	Flags            Flags
	Wnd              uint16 // raw (unscaled) window field

	// Options. MSS and WScale are only valid on SYN segments.
	MSS      uint16 // 0 = absent
	WScale   int8   // -1 = absent
	HasTS    bool
	TSVal    uint32
	TSEcr    uint32
	SACKPerm bool

	Payload buf.Buf

	// pooled marks segments drawn from NewSegment's sync.Pool; Release
	// recycles only those, so literal and ParseHeader segments need no care.
	pooled bool
}

// SegLen reports the sequence space the segment occupies (payload plus SYN
// and FIN, which each consume one sequence number).
func (s *Segment) SegLen() int {
	n := s.Payload.Len()
	if s.Flags.Has(SYN) {
		n++
	}
	if s.Flags.Has(FIN) {
		n++
	}
	return n
}

// HeaderLen reports the marshaled header size including options, always a
// multiple of 4.
func (s *Segment) HeaderLen() int {
	n := BaseHeaderLen
	if s.MSS != 0 {
		n += 4
	}
	if s.WScale >= 0 {
		n += 4 // kind 3 len 3 + NOP
	}
	if s.HasTS {
		n += TimestampOptLen
	}
	if s.SACKPerm {
		n += 4 // NOP NOP kind 4 len 2
	}
	return n
}

// MarshalHeader serializes the TCP header with its checksum field zeroed;
// the owning stack computes and patches the transport checksum because
// checksum placement (hardware, firmware, host) is a measured variable in
// the paper.
func (s *Segment) MarshalHeader() []byte {
	return s.MarshalHeaderInto(make([]byte, s.HeaderLen()))
}

// MarshalHeaderInto is MarshalHeader writing into caller-provided scratch b,
// which must hold at least HeaderLen bytes (44 covers every option set).
func (s *Segment) MarshalHeaderInto(b []byte) []byte {
	hlen := s.HeaderLen()
	b = b[:hlen]
	binary.BigEndian.PutUint16(b[0:], s.SrcPort)
	binary.BigEndian.PutUint16(b[2:], s.DstPort)
	binary.BigEndian.PutUint32(b[4:], uint32(s.Seq))
	binary.BigEndian.PutUint32(b[8:], uint32(s.Ack))
	b[12] = byte(hlen/4) << 4
	b[13] = byte(s.Flags)
	binary.BigEndian.PutUint16(b[14:], s.Wnd)
	// b[16:18] checksum zero; b[18:20] urgent pointer zero (urgent data
	// unsupported, paper §4.1). Explicit because b may be reused scratch.
	b[16], b[17], b[18], b[19] = 0, 0, 0, 0
	o := BaseHeaderLen
	if s.MSS != 0 {
		b[o], b[o+1] = 2, 4
		binary.BigEndian.PutUint16(b[o+2:], s.MSS)
		o += 4
	}
	if s.WScale >= 0 {
		b[o], b[o+1], b[o+2], b[o+3] = 3, 3, byte(s.WScale), 1 // opt + NOP pad
		o += 4
	}
	if s.SACKPerm {
		b[o], b[o+1], b[o+2], b[o+3] = 1, 1, 4, 2
		o += 4
	}
	if s.HasTS {
		b[o], b[o+1], b[o+2], b[o+3] = 1, 1, 8, 10
		binary.BigEndian.PutUint32(b[o+4:], s.TSVal)
		binary.BigEndian.PutUint32(b[o+8:], s.TSEcr)
		o += TimestampOptLen
	}
	_ = o
	return b
}

// SetChecksum patches a computed transport checksum into a marshaled header.
func SetChecksum(hdr []byte, ck uint16) { binary.BigEndian.PutUint16(hdr[16:], ck) }

// GetChecksum reads the checksum field of a marshaled header.
func GetChecksum(hdr []byte) uint16 { return binary.BigEndian.Uint16(hdr[16:]) }

// Parse errors. These are fixed sentinels rather than detail-bearing
// fmt.Errorf wraps: ParseHeader runs per received segment on the host
// receive path, and even its failure arms must not allocate (a corrupted
// burst would otherwise turn into GC pressure).
var (
	ErrTruncated = errors.New("tcp: truncated segment")
	ErrBadOffset = errors.New("tcp: bad data offset")
	ErrBadOption = errors.New("tcp: malformed option")
)

// ParseHeader decodes a TCP header (with options) from b and returns the
// segment (Payload unset) and the header length consumed.
func ParseHeader(b []byte) (Segment, int, error) {
	var s Segment
	s.WScale = -1
	if len(b) < BaseHeaderLen {
		return s, 0, ErrTruncated
	}
	s.SrcPort = binary.BigEndian.Uint16(b[0:])
	s.DstPort = binary.BigEndian.Uint16(b[2:])
	s.Seq = Seq(binary.BigEndian.Uint32(b[4:]))
	s.Ack = Seq(binary.BigEndian.Uint32(b[8:]))
	hlen := int(b[12]>>4) * 4
	if hlen < BaseHeaderLen || hlen > len(b) {
		return s, 0, ErrBadOffset
	}
	s.Flags = Flags(b[13] & 0x3f)
	s.Wnd = binary.BigEndian.Uint16(b[14:])
	opts := b[BaseHeaderLen:hlen]
	for len(opts) > 0 {
		switch kind := opts[0]; kind {
		case 0: // EOL
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return s, 0, ErrBadOption
			}
			olen := int(opts[1])
			body := opts[2:olen]
			switch kind {
			case 2:
				if len(body) != 2 {
					return s, 0, ErrBadOption
				}
				s.MSS = binary.BigEndian.Uint16(body)
			case 3:
				if len(body) != 1 {
					return s, 0, ErrBadOption
				}
				s.WScale = int8(body[0])
			case 4:
				if len(body) != 0 {
					return s, 0, ErrBadOption
				}
				s.SACKPerm = true
			case 8:
				if len(body) != 8 {
					return s, 0, ErrBadOption
				}
				s.HasTS = true
				s.TSVal = binary.BigEndian.Uint32(body[0:])
				s.TSEcr = binary.BigEndian.Uint32(body[4:])
			}
			opts = opts[olen:]
		}
	}
	return s, hlen, nil
}
