package storage

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/params"
	"repro/internal/sim"
)

// BlockDev is what the filesystem mounts: a local disk or an NBD client.
// Calls block the calling process until the I/O completes.
type BlockDev interface {
	// Size reports the device capacity.
	Size() int64
	// Read fetches n bytes at off.
	Read(p *sim.Proc, off int64, n int) (buf.Buf, error)
	// Write stores b at off.
	Write(p *sim.Proc, off int64, b buf.Buf) error
	// Flush forces completed writes to stable storage ('sync').
	Flush(p *sim.Proc) error
}

// LocalDev adapts a Disk to BlockDev for server-side or local use.
type LocalDev struct {
	D *Disk
}

// Size implements BlockDev.
func (l *LocalDev) Size() int64 { return l.D.Size() }

// Read implements BlockDev.
func (l *LocalDev) Read(p *sim.Proc, off int64, n int) (buf.Buf, error) {
	var out buf.Buf
	l.D.Read(off, n, func(b buf.Buf) {
		out = b
		p.Wake()
	})
	p.Suspend()
	return out, nil
}

// Write implements BlockDev.
func (l *LocalDev) Write(p *sim.Proc, off int64, b buf.Buf) error {
	l.D.Write(off, b, func() { p.Wake() })
	p.Suspend()
	return nil
}

// Flush implements BlockDev (the disk model writes through).
func (l *LocalDev) Flush(p *sim.Proc) error { return nil }

// FS is the ext2-lite filesystem of the benchmark: sequential file I/O in
// FSBlockSize blocks over a BlockDev, with a write-back block cache and a
// per-block CPU cost calibrated so filesystem processing alone accounts
// for the >=26% utilization floor the paper reports (§4.2.3).
type FS struct {
	dev   BlockDev
	cpu   *sim.CPU
	bsize int

	// cache maps block index -> data; dirty tracks unwritten blocks.
	cache    map[int64]buf.Buf
	dirty    map[int64]bool
	order    []int64 // FIFO eviction order
	capacity int     // blocks

	hits, misses, writebacks uint64
}

// NewFS mounts dev with the given cache capacity in bytes.
func NewFS(dev BlockDev, cpu *sim.CPU, cacheBytes int) *FS {
	capBlocks := cacheBytes / params.FSBlockSize
	if capBlocks < 8 {
		capBlocks = 8
	}
	return &FS{
		dev:      dev,
		cpu:      cpu,
		bsize:    params.FSBlockSize,
		cache:    make(map[int64]buf.Buf),
		dirty:    make(map[int64]bool),
		capacity: capBlocks,
	}
}

// BlockSize reports the filesystem block size.
func (f *FS) BlockSize() int { return f.bsize }

// CacheStats reports (hits, misses, writebacks).
func (f *FS) CacheStats() (hits, misses, writebacks uint64) {
	return f.hits, f.misses, f.writebacks
}

// fsCPU charges filesystem processing for n blocks.
func (f *FS) fsCPU(p *sim.Proc, blocks int) {
	p.Use(f.cpu.Server, params.US(params.FSPerBlockUS*float64(blocks)))
}

// insert adds a block to the cache, evicting (with write-back) as needed.
func (f *FS) insert(p *sim.Proc, idx int64, b buf.Buf, dirty bool) error {
	if _, ok := f.cache[idx]; !ok {
		f.order = append(f.order, idx)
	}
	f.cache[idx] = b
	if dirty {
		f.dirty[idx] = true
	}
	for len(f.cache) > f.capacity {
		victim := f.order[0]
		f.order = f.order[1:]
		data, ok := f.cache[victim]
		if !ok {
			continue
		}
		if f.dirty[victim] {
			// Cluster the writeback: flush the contiguous dirty run
			// starting at the victim as one device request, as the page
			// cache's writeout path does. The following blocks stay
			// cached (now clean) and evict later without I/O.
			run := []buf.Buf{data}
			maxRun := params.NBDRequestBytes / f.bsize
			for next := victim + 1; len(run) < maxRun && f.dirty[next]; next++ {
				nb, ok := f.cache[next]
				if !ok {
					break
				}
				run = append(run, nb)
			}
			for i := range run {
				delete(f.dirty, victim+int64(i))
			}
			f.writebacks += uint64(len(run))
			if err := f.dev.Write(p, victim*int64(f.bsize), buf.Concat(run...)); err != nil {
				return err
			}
		}
		delete(f.cache, victim)
	}
	return nil
}

// ReadAt reads n bytes at off, going to the device in clustered requests
// (the block layer's readahead/merging) on misses.
func (f *FS) ReadAt(p *sim.Proc, off int64, n int) (buf.Buf, error) {
	if off%int64(f.bsize) != 0 || n%f.bsize != 0 {
		return buf.Empty, fmt.Errorf("storage: unaligned read [%d,+%d)", off, n)
	}
	nBlocks := n / f.bsize
	f.fsCPU(p, nBlocks)
	var parts []buf.Buf
	for i := 0; i < nBlocks; {
		idx := off/int64(f.bsize) + int64(i)
		if b, ok := f.cache[idx]; ok {
			f.hits++
			parts = append(parts, b)
			i++
			continue
		}
		// Miss: fetch a clustered request worth of blocks.
		f.misses++
		cluster := params.NBDRequestBytes / f.bsize
		if rem := nBlocks - i; cluster > rem {
			cluster = rem
		}
		data, err := f.dev.Read(p, idx*int64(f.bsize), cluster*f.bsize)
		if err != nil {
			return buf.Empty, err
		}
		for j := 0; j < cluster; j++ {
			blk := data.Slice(j*f.bsize, (j+1)*f.bsize)
			if err := f.insert(p, idx+int64(j), blk, false); err != nil {
				return buf.Empty, err
			}
			parts = append(parts, blk)
		}
		i += cluster
	}
	return buf.Concat(parts...), nil
}

// WriteAt writes b at off through the cache (write-back).
func (f *FS) WriteAt(p *sim.Proc, off int64, b buf.Buf) error {
	if off%int64(f.bsize) != 0 || b.Len()%f.bsize != 0 {
		return fmt.Errorf("storage: unaligned write [%d,+%d)", off, b.Len())
	}
	nBlocks := b.Len() / f.bsize
	f.fsCPU(p, nBlocks)
	for i := 0; i < nBlocks; i++ {
		idx := off/int64(f.bsize) + int64(i)
		if err := f.insert(p, idx, b.Slice(i*f.bsize, (i+1)*f.bsize), true); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes all dirty blocks in clustered, ascending-offset requests
// and then flushes the device — the benchmark's 'sync' step.
func (f *FS) Sync(p *sim.Proc) error {
	// Collect dirty blocks in ascending order for sequential write-out.
	var idxs []int64
	for idx := range f.dirty {
		idxs = append(idxs, idx)
	}
	sortInt64s(idxs)
	i := 0
	for i < len(idxs) {
		// Cluster contiguous dirty blocks into one device request.
		j := i + 1
		maxRun := params.NBDRequestBytes / f.bsize
		for j < len(idxs) && j-i < maxRun && idxs[j] == idxs[j-1]+1 {
			j++
		}
		var parts []buf.Buf
		for _, idx := range idxs[i:j] {
			parts = append(parts, f.cache[idx])
			delete(f.dirty, idx)
		}
		f.writebacks += uint64(j - i)
		if err := f.dev.Write(p, idxs[i]*int64(f.bsize), buf.Concat(parts...)); err != nil {
			return err
		}
		i = j
	}
	return f.dev.Flush(p)
}

// Invalidate drops the entire cache (the benchmark's unmount between
// phases: "the device was un-mounted between reads to invalidate the
// client buffer cache").
func (f *FS) Invalidate() {
	f.cache = make(map[int64]buf.Buf)
	f.dirty = make(map[int64]bool)
	f.order = nil
}

func sortInt64s(a []int64) {
	// Insertion sort is fine: sync runs cluster at a time and the dirty
	// set is bounded by the cache capacity.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
