package storage

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/params"
	"repro/internal/sim"
)

func TestDiskSequentialStreamsWithoutSeeks(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "disk", 1<<20)
	var done int
	for off := int64(0); off < 10*65536; off += 65536 {
		d.Write(off, buf.Virtual(65536), func() { done++ })
	}
	eng.Run()
	if done != 10 {
		t.Fatalf("completed %d writes", done)
	}
	_, _, seeks := d.Stats()
	if seeks != 1 {
		t.Errorf("sequential run took %d seeks, want 1", seeks)
	}
}

func TestDiskRandomAccessSeeks(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "disk", 1<<20)
	offsets := []int64{0, 512 * 1024, 64 * 1024, 900 * 1024}
	for _, off := range offsets {
		d.Write(off, buf.Virtual(4096), nil)
	}
	eng.Run()
	_, _, seeks := d.Stats()
	if seeks != uint64(len(offsets)) {
		t.Errorf("seeks = %d, want %d", seeks, len(offsets))
	}
}

func TestDiskReadBackWrittenData(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "disk", 1<<20)
	want := buf.Pattern(4096, 3)
	var got buf.Buf
	d.Write(8192, want, func() {
		d.Read(8192, 4096, func(b buf.Buf) { got = b })
	})
	eng.Run()
	if !buf.Equal(got, want) {
		t.Fatal("read-back mismatch")
	}
}

func TestDiskUnwrittenReadsZero(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "disk", 1<<20)
	var got buf.Buf
	d.Read(0, 4096, func(b buf.Buf) { got = b })
	eng.Run()
	if !buf.Equal(got, buf.Virtual(4096)) {
		t.Fatal("unwritten space not zero")
	}
}

func TestDiskOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "disk", 1024)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access accepted")
		}
	}()
	d.Read(1000, 100, nil)
}

func TestDiskThroughputNearBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "disk", 100<<20)
	total := 50 << 20
	var end sim.Time
	for off := int64(0); off < int64(total); off += 65536 {
		d.Write(off, buf.Virtual(65536), func() { end = eng.Now() })
	}
	eng.Run()
	rate := float64(total) / end.Seconds() / 1e6
	if rate < 0.9*params.DiskBandwidth/1e6 || rate > 1.05*params.DiskBandwidth/1e6 {
		t.Errorf("streaming rate %.1f MB/s, want ~%.0f", rate, params.DiskBandwidth/1e6)
	}
}

func newLocalFS(eng *sim.Engine, cacheBytes int) (*FS, *sim.CPU, *Disk) {
	cpu := sim.NewCPU(eng, "cpu", params.HostClockHz)
	d := NewDisk(eng, "disk", 1<<30)
	return NewFS(&LocalDev{D: d}, cpu, cacheBytes), cpu, d
}

func TestFSWriteReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	fs, _, _ := newLocalFS(eng, 1<<20)
	want := buf.Pattern(64*1024, 7)
	var got buf.Buf
	eng.Spawn("app", func(p *sim.Proc) {
		if err := fs.WriteAt(p, 0, want); err != nil {
			t.Errorf("WriteAt: %v", err)
			return
		}
		if err := fs.Sync(p); err != nil {
			t.Errorf("Sync: %v", err)
			return
		}
		fs.Invalidate()
		b, err := fs.ReadAt(p, 0, want.Len())
		if err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		got = b
	})
	eng.Run()
	if !buf.Equal(got, want) {
		t.Fatal("round trip corrupted")
	}
}

func TestFSCacheHitsAvoidDevice(t *testing.T) {
	eng := sim.NewEngine()
	fs, _, d := newLocalFS(eng, 1<<20)
	eng.Spawn("app", func(p *sim.Proc) {
		fs.ReadAt(p, 0, 64*1024)
		reads0, _, _ := d.Stats()
		fs.ReadAt(p, 0, 64*1024) // fully cached
		reads1, _, _ := d.Stats()
		if reads1 != reads0 {
			t.Errorf("cached re-read hit the device (%d -> %d)", reads0, reads1)
		}
	})
	eng.Run()
	hits, _, _ := fs.CacheStats()
	if hits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestFSUnalignedRejected(t *testing.T) {
	eng := sim.NewEngine()
	fs, _, _ := newLocalFS(eng, 1<<20)
	eng.Spawn("app", func(p *sim.Proc) {
		if _, err := fs.ReadAt(p, 1, 4096); err == nil {
			t.Error("unaligned read accepted")
		}
		if err := fs.WriteAt(p, 0, buf.Virtual(100)); err == nil {
			t.Error("unaligned write accepted")
		}
	})
	eng.Run()
}

func TestFSEvictionWritesBackDirty(t *testing.T) {
	eng := sim.NewEngine()
	// Tiny cache: 8 blocks = 32 KB.
	fs, _, d := newLocalFS(eng, 8*4096)
	eng.Spawn("app", func(p *sim.Proc) {
		// Write 64 KB through a 32 KB cache: evictions must write back.
		if err := fs.WriteAt(p, 0, buf.Pattern(64*1024, 2)); err != nil {
			t.Errorf("WriteAt: %v", err)
			return
		}
		if err := fs.Sync(p); err != nil {
			t.Errorf("Sync: %v", err)
			return
		}
		fs.Invalidate()
		got, err := fs.ReadAt(p, 0, 64*1024)
		if err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		if !buf.Equal(got, buf.Pattern(64*1024, 2)) {
			t.Error("data lost across eviction")
		}
	})
	eng.Run()
	_, _, wb := fs.CacheStats()
	if wb == 0 {
		t.Error("no writebacks despite cache pressure")
	}
	_, writes, _ := d.Stats()
	if writes == 0 {
		t.Error("device never written")
	}
}

func TestFSSyncClustersSequentialWrites(t *testing.T) {
	eng := sim.NewEngine()
	fs, _, d := newLocalFS(eng, 4<<20)
	eng.Spawn("app", func(p *sim.Proc) {
		fs.WriteAt(p, 0, buf.Virtual(512*1024))
		fs.Sync(p)
	})
	eng.Run()
	_, writes, _ := d.Stats()
	// 512 KB in 64 KB clustered requests = 8 device writes.
	if writes != 8 {
		t.Errorf("sync issued %d device writes, want 8 (clustering broken)", writes)
	}
}

func TestFSChargesCPU(t *testing.T) {
	eng := sim.NewEngine()
	fs, cpu, _ := newLocalFS(eng, 4<<20)
	eng.Spawn("app", func(p *sim.Proc) {
		fs.WriteAt(p, 0, buf.Virtual(1<<20))
	})
	eng.Run()
	// 256 blocks at FSPerBlockUS each.
	wantUS := params.FSPerBlockUS * 256
	gotUS := cpu.BusyTotal().Micros()
	if gotUS < wantUS*0.9 || gotUS > wantUS*1.2 {
		t.Errorf("fs CPU = %.0f us, want ~%.0f", gotUS, wantUS)
	}
}
