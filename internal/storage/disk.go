// Package storage provides the storage substrate of the paper's Network
// Block Device experiment (§4.2.3): a streaming disk model, a client-side
// buffer cache, and an ext2-lite filesystem cost model. The disk and
// filesystem layers are identical across the three network stacks, so
// Figure 7's relative results isolate the stacks themselves.
package storage

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/params"
	"repro/internal/sim"
)

// Disk is a simple mechanical disk: sequential streaming at DiskBandwidth
// with a positioning cost whenever access is discontiguous. Requests
// serialize, as on a single spindle. Written content is retained so
// integrity tests can read it back.
type Disk struct {
	eng       *sim.Engine
	srv       *sim.Server
	size      int64
	bandwidth float64
	seek      sim.Time
	lastEnd   int64

	// content holds written data in fixed chunks keyed by chunk-aligned
	// offset (benchmarks write virtual buffers, so this stays small).
	content map[int64]buf.Buf

	reads, writes, seeks    uint64
	bytesRead, bytesWritten uint64
}

// NewDisk creates a disk of the given size.
func NewDisk(eng *sim.Engine, name string, size int64) *Disk {
	return &Disk{
		eng:       eng,
		srv:       sim.NewServer(eng, name),
		size:      size,
		bandwidth: params.DiskBandwidth,
		seek:      params.DiskSeek,
		lastEnd:   -1,
		content:   make(map[int64]buf.Buf),
	}
}

// Size reports the device capacity in bytes.
func (d *Disk) Size() int64 { return d.size }

// Stats reports (reads, writes, seeks).
func (d *Disk) Stats() (reads, writes, seeks uint64) { return d.reads, d.writes, d.seeks }

func (d *Disk) xferTime(n int) sim.Time {
	return sim.Time(float64(n) * 1e9 / d.bandwidth)
}

func (d *Disk) access(off int64, n int, done func()) {
	cost := d.xferTime(n)
	if off != d.lastEnd {
		cost += d.seek
		d.seeks++
	}
	d.lastEnd = off + int64(n)
	d.srv.Do(cost, "disk.io", done)
}

// chunkSize is the content-store granularity. All disk I/O in this
// codebase is sector-multiple and chunk-aligned (filesystem blocks and
// NBD requests are 4 KB multiples).
const chunkSize = 4096

// Read fetches n bytes at off; done receives the data. Unwritten space
// reads as zeros.
func (d *Disk) Read(off int64, n int, done func(buf.Buf)) {
	if off < 0 || off+int64(n) > d.size {
		panic(fmt.Sprintf("storage: read [%d,%d) beyond device size %d", off, off+int64(n), d.size))
	}
	if off%chunkSize != 0 || n%chunkSize != 0 {
		panic(fmt.Sprintf("storage: unaligned read [%d,+%d)", off, n))
	}
	d.reads++
	d.bytesRead += uint64(n)
	d.access(off, n, func() {
		var parts []buf.Buf
		for c := off; c < off+int64(n); c += chunkSize {
			if b, ok := d.content[c]; ok {
				parts = append(parts, b)
			} else {
				parts = append(parts, buf.Virtual(chunkSize))
			}
		}
		done(buf.Concat(parts...))
	})
}

// Write stores b at off.
func (d *Disk) Write(off int64, b buf.Buf, done func()) {
	if off < 0 || off+int64(b.Len()) > d.size {
		panic(fmt.Sprintf("storage: write [%d,%d) beyond device size %d", off, off+int64(b.Len()), d.size))
	}
	if off%chunkSize != 0 || b.Len()%chunkSize != 0 {
		panic(fmt.Sprintf("storage: unaligned write [%d,+%d)", off, b.Len()))
	}
	d.writes++
	d.bytesWritten += uint64(b.Len())
	for i := 0; i < b.Len(); i += chunkSize {
		d.content[off+int64(i)] = b.Slice(i, i+chunkSize)
	}
	d.access(off, b.Len(), done)
}
