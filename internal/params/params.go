// Package params centralizes every calibration constant of the QPIP
// reproduction, each with its provenance. The hardware being simulated is
// the paper's testbed (§4.2): Dell PowerEdge 6350 servers (4 × 550 MHz
// Pentium-III, 64-bit/33 MHz PCI), a Myrinet LANai 9 programmable NIC
// (133 MHz RISC, 2 MB SRAM, 2 PCI DMA engines, 2 network engines), Myrinet
// 2.0 Gb/s links, and an Intel Pro1000 Gigabit Ethernet adapter.
package params

import "repro/internal/sim"

// Host platform.
const (
	// HostClockHz is the 550 MHz Pentium-III clock (paper §4.2).
	HostClockHz = 550e6
	// HostCPUs is the number of processors per server (4); the benchmarks
	// report utilization of one processor, as the paper does.
	HostCPUs = 4
)

// NIC platform.
const (
	// NICClockHz is the LANai 9 processor clock (paper §4.1: "a 133 MHz
	// general purpose RISC processor").
	NICClockHz = 133e6
	// NICSRAMBytes is the LANai on-board memory (2 MB).
	NICSRAMBytes = 2 << 20
)

// Interconnect.
const (
	// MyrinetBandwidth is the Myrinet link rate: 2.0 Gb/s full duplex
	// (paper §4.1).
	MyrinetBandwidth = 2.0e9 / 8 // bytes per second
	// MyrinetHopLatency is the per-switch cut-through forwarding latency.
	// Myrinet-2000 16-port crossbars forwarded in well under a
	// microsecond; 0.3 µs is the commonly quoted figure.
	MyrinetHopLatency = 300 * sim.Nanosecond
	// CableLatency is end-to-end propagation over a few meters of cable.
	CableLatency = 100 * sim.Nanosecond

	// GigEBandwidth is Gigabit Ethernet line rate.
	GigEBandwidth = 1.0e9 / 8
	// GigESwitchLatency is a store-and-forward GigE switch's forwarding
	// decision latency (on top of the re-serialization it implies).
	GigESwitchLatency = 2 * sim.Microsecond
	// EthernetOverhead is per-frame wire overhead: preamble+SFD (8),
	// Ethernet header (14), FCS (4), inter-frame gap (12).
	EthernetOverhead = 38
	// MyrinetHeaderBytes is the source-route plus type header on each
	// Myrinet packet plus trailing CRC.
	MyrinetHeaderBytes = 8

	// PCIBandwidth is the 64-bit/33 MHz PCI burst rate (264 MB/s peak)
	// derated to a realistic 80% burst efficiency.
	PCIBandwidth = 264e6 * 0.80
	// PCIDMASetup is the per-transaction DMA setup cost (bus acquisition,
	// descriptor fetch).
	PCIDMASetup = 500 * sim.Nanosecond
	// PCIWriteLatency is one posted programmed-I/O write crossing the PCI
	// bus — a doorbell ring.
	PCIWriteLatency = 250 * sim.Nanosecond
	// LANaiDMABandwidth is the effective host-memory DMA rate of the
	// LANai 9's PCI DMA engines — well under the bus peak (measured
	// LANai9 PCI read bandwidth was in the 130-160 MB/s range). This is
	// what calibrates QPIP's native-MTU ttcp point to the paper's
	// 75.6 MB/s: per 16 KB message the transmit FSM serializes
	// ~21.5 us of stage CPU + ~107 us payload DMA + ~66 us wire time.
	LANaiDMABandwidth = 150e6
	// GMDMABandwidth is the lower effective DMA rate of GM 1.4's staged
	// IP-mode path (packets cross adapter SRAM with less aggressive
	// bursting than the raw LANai engines achieve).
	GMDMABandwidth = 95e6
)

// QPIP NIC firmware stage costs, paper Table 2 (transmit) and Table 3
// (receive), in microseconds on the 133 MHz LANai. These are *inputs* to
// the simulator for per-stage occupancy and *outputs* of the Table 2/3
// benches (which re-measure them from the running firmware).
const (
	TxDoorbellProcUS = 1.0
	TxScheduleUS     = 2.0
	TxGetWRUS        = 5.5
	TxGetDataUS      = 4.5
	TxBuildTCPHdrUS  = 5.0
	TxBuildIPHdrUS   = 1.0
	TxSendUS         = 1.0
	TxUpdateUS       = 1.5

	RxDoorbellProcUS = 1.0
	RxMediaRcvUS     = 1.0
	RxIPParseUS      = 1.5
	RxTCPParseDataUS = 7.0
	// RxTCPParseAckUS is the ACK-parse cost: 14 µs, double the data case,
	// "because of a series of multiply operations for the RTT estimators.
	// The LANai 9 processor has no hardware multiply" (paper §4.2.2).
	RxTCPParseAckUS = 14.0
	RxGetWRUS       = 5.5
	RxPutDataUS     = 4.5
	RxUpdateDataUS  = 1.5
	RxUpdateAckUS   = 9.0

	// UDP header handling is far cheaper than TCP: no TCB, no RTT, no
	// window state. Derived so the UDP/TCP RTT gap matches Figure 3
	// (73 µs vs 113 µs with firmware checksums).
	TxBuildUDPHdrUS = 2.0
	RxUDPParseUS    = 2.5
)

// FirmwareChecksumCyclesPerByte is the software Internet checksum cost on
// the LANai (no hardware assist on the receive side, paper §4.2.1).
// Calibrated against the paper's firmware-checksum ttcp point (26.4 MB/s
// vs 75.6 MB/s with the emulated hardware checksum): ~4.9 cycles/byte,
// consistent with a load/add-with-carry loop plus the LANai's SRAM wait
// states.
const FirmwareChecksumCyclesPerByte = 4.9

// Host kernel stack cost model (Linux 2.4-class on the 550 MHz P-III).
// The per-message fixed costs are calibrated against paper Table 1
// (29.9 µs / 16445 cycles for a 1-byte TCP send+receive through loopback)
// and the per-byte costs against the standard 1 cycle/byte copy +
// 1 cycle/byte checksum of the era (Kay & Pasquale, cited by the paper).
const (
	// HostSyscallUS is entry/exit for read/write/send/recv.
	HostSyscallUS = 1.5
	// HostSockSendUS is socket-layer send processing per call (locking,
	// sockbuf bookkeeping) excluding the copy.
	HostSockSendUS = 2.0
	// HostTCPOutputUS is tcp_output per segment: TCB work, header build,
	// IP layer, routing cache hit.
	HostTCPOutputUS = 9.0
	// HostTCPInputUS is tcp_input per segment on the fast path (includes
	// the in-order queueing and sockbuf accounting Linux does there).
	HostTCPInputUS = 9.0
	// HostTCPAckProcUS is pure-ACK processing on the sender.
	HostTCPAckProcUS = 4.0
	// HostUDPOutputUS / HostUDPInputUS are the cheaper UDP paths.
	HostUDPOutputUS = 3.5
	HostUDPInputUS  = 3.0
	// HostDriverTxUS is driver enqueue + descriptor write per packet.
	HostDriverTxUS = 2.0
	// HostIRQUS is interrupt entry/exit plus driver RX reap, charged per
	// interrupt (coalescing divides it across packets).
	HostIRQUS = 6.0
	// HostSoftirqPerPktUS is protocol dispatch per received packet.
	HostSoftirqPerPktUS = 2.5
	// HostSkbUS is network buffer (skb) allocation/free per packet, paid
	// on both transmit and receive.
	HostSkbUS = 3.0
	// HostDriverRxReapUS is per-packet descriptor reaping inside the ISR.
	HostDriverRxReapUS = 2.0
	// HostWakeupUS is waking a blocked process (scheduler work).
	HostWakeupUS = 2.5
	// HostCopyCyclesPerByte is a user<->kernel copy (uncached destination).
	HostCopyCyclesPerByte = 1.0
	// HostChecksumCyclesPerByte is the Internet checksum; Linux folds it
	// into the copy on the receive path (copy_and_csum), modeled as
	// copy + 0.4 extra cycles/byte there.
	HostChecksumCyclesPerByte          = 1.0
	HostCopyChecksumExtraCyclesPerByte = 0.4
)

// QPIP host-side verbs costs. Calibrated against paper Table 1: the QPIP
// send+receive host overhead for a 1-byte message is 2.5 µs / 1386 cycles,
// "determined by directly timing the associated communication methods from
// user-space" (§4.2.2).
const (
	// VerbsPostSendUS covers building the send WR in the host-resident QP
	// and the uncached doorbell write (the PCI crossing itself is charged
	// separately to the bus).
	VerbsPostSendUS = 0.9
	// VerbsPostRecvUS builds a receive WR (no doorbell on the prototype's
	// receive path beyond the notification write).
	VerbsPostRecvUS = 0.8
	// VerbsPollUS is one successful CQ poll (cache-resident spin).
	VerbsPollUS = 0.8
	// VerbsModifyQPUS is one host-driven lifecycle transition (ModifyQP):
	// a state-table update in host memory, comparable to building a WR.
	VerbsModifyQPUS = 1.0
	// VerbsPollEmptyUS is an unsuccessful poll — pure cached read.
	VerbsPollEmptyUS = 0.05
	// VerbsWakeupUS is the prototype's "lightweight interrupt service
	// routine" (paper §4.1) waking a blocked CQ waiter — far cheaper than
	// the host stack's general interrupt path.
	VerbsWakeupUS = 2.0

	// Batch verbs (PostSendN/PostRecvN/PollN) amortize the fixed part of
	// each call — queue locking, state checks, the doorbell write — across
	// the batch: the first WR pays the full single-op cost above, each
	// subsequent WR only the marginal descriptor-build cost below.
	VerbsPostSendBatchUS = 0.3
	VerbsPostRecvBatchUS = 0.3
	VerbsPollBatchUS     = 0.2
)

// QPIP NIC collective-engine stage costs (DESIGN §15). The collective FSM
// is small relative to the TCP stages: no TCB, no RTT estimators, fixed
// tree/ring peers resolved at group-join time. Costs are modeled in the
// same per-stage style as Tables 2/3, sized between the cheap UDP header
// stages and the doorbell/schedule pair.
const (
	// CollPostUS is consuming one collective WR: doorbell drain, WR fetch
	// by DMA, group lookup, first message build.
	CollPostUS = 2.0
	// CollStepUS is one collective FSM step on an arriving message: parse,
	// group/op lookup, forward decision, next message build.
	CollStepUS = 1.5
	// CollReduceCyclesPerWord is the per-word combine cost of a reduction
	// step (load, add-with-carry chain, store on the multiply-less LANai).
	CollReduceCyclesPerWord = 6.0
)

// GigE adapter (Intel Pro1000-class) parameters.
const (
	// GigEIntCoalescePkts delivers one interrupt per this many packets
	// under load (absolute timer fallback below).
	GigEIntCoalescePkts = 8
	// GigEIntCoalesceDelay is the coalescing timer: an interrupt fires at
	// most this long after a packet arrives.
	GigEIntCoalesceDelay = 70 * sim.Microsecond
)

// NBD / storage model (Figure 7's workload).
const (
	// DiskBandwidth approximates the PowerEdge's striped SCSI storage
	// streaming rate — fast enough that the network stacks, not the
	// disk, differentiate the three systems.
	DiskBandwidth = 90e6
	// DiskSeek is the per-request positioning cost for sequential access
	// (track-to-track + rotational average across a streaming run).
	DiskSeek = 800 * sim.Microsecond
	// FSBlockSize is the ext2 block size used in the benchmark.
	FSBlockSize = 4096
	// FSPerBlockUS is filesystem CPU per block (block mapping, page cache,
	// ext2 indirect blocks amortized): calibrated so that "the raw CPU
	// utilization during the benchmark is at least 26% for filesystem
	// processing" (paper §4.2.3).
	FSPerBlockUS = 14.0
	// NBDRequestBytes is the block-layer request size after merging
	// (Linux readahead/clustering of the era: 64 KB).
	NBDRequestBytes = 64 * 1024
	// NBDQueueDepth is the client driver's outstanding-request limit.
	NBDQueueDepth = 8
)

// Robustness knobs: retry budgets and adapter state-table capacity.
const (
	// TCPMaxRetries bounds consecutive retransmission timeouts of one
	// segment before the connection is declared dead (BSD's
	// TCP_MAXRXTSHIFT, which the prototype's Stevens & Wright-derived
	// stack inherited). With exponential backoff from a 200 ms floor this
	// is on the order of minutes of simulated persistence.
	TCPMaxRetries = 12
	// TCPSynMaxRetries bounds handshake (SYN / SYN|ACK) retransmissions —
	// the connect-timeout budget. Backoff doubles from the 3 s initial
	// RTO, so the budget caps a failed active open at
	// 3 * (2^(TCPSynMaxRetries+1) - 1) seconds of simulated time.
	TCPSynMaxRetries = 5
	// QPIPMaxQPs bounds adapter-resident connection state: the LANai's
	// 2 MB SRAM holds the firmware working set plus per-QP TCBs (a few KB
	// each), so the state table is a hard, exhaustible resource. QP
	// creation beyond it is refused (verbs.ErrNoResources).
	QPIPMaxQPs = 512
)

// Per-connection memory footprints (DESIGN §16). These size the state that
// dominates at thousands of concurrent connections — the axis the connscale
// experiment measures. Adapter-side figures are SRAM bytes on the LANai;
// host-side figures are what a Linux 2.4-class kernel and the verbs
// library pin in host memory per connection.
const (
	// SRAMConnBytes is the adapter-SRAM footprint of one live connection:
	// the record-mode TCB (sequence state, RTT estimators, retransmit
	// bookkeeping) plus the firmware QP context (WR cursors, doorbell and
	// timer state). Sized so QPIPMaxQPs of them fit the 2 MB SRAM beside
	// the firmware working set.
	SRAMConnBytes = 1536
	// SRAMQPSlotBytes is one QP state-table slot: the hashed-QPN index
	// entry plus the dense-table element header.
	SRAMQPSlotBytes = 16
	// HostTCBBytes is the host kernel's per-connection TCP control block
	// (struct sock + tcp_opt on Linux 2.4, excluding socket buffers).
	HostTCBBytes = 1280
	// HostSockBytes is the non-TCB kernel overhead of one open socket:
	// file table entry, inode/dentry glue, wait queues.
	HostSockBytes = 512
	// HostQPBytes is the verbs library's per-QP host bookkeeping (queue
	// headers and cursors; WR descriptors are accounted separately).
	HostQPBytes = 192
	// HostWRBytes is one work-request descriptor in a host-resident queue
	// (the buffer it points at is accounted at its capacity).
	HostWRBytes = 32
)

// MTUs (paper §4.2.1).
const (
	MTUEthernet = 1500
	MTUJumbo    = 9000
	MTUQPIP     = 16 * 1024 // QPIP native MTU: "native MTUs (16KB in the case of QPIP)"
)

// US converts a microsecond constant to sim.Time.
func US(us float64) sim.Time { return sim.Micros(us) }

// HostCycles converts host CPU cycles to sim.Time.
func HostCycles(c float64) sim.Time { return sim.Time(c * 1e9 / HostClockHz) }

// NICCycles converts NIC CPU cycles to sim.Time.
func NICCycles(c float64) sim.Time { return sim.Time(c * 1e9 / NICClockHz) }
