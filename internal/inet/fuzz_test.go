package inet

import (
	"bytes"
	"testing"
)

// FuzzParse4 hammers the IPv4 header parser with arbitrary bytes: it must
// return an error or a header, never panic, and anything it accepts must
// survive a marshal/re-parse round trip.
func FuzzParse4(f *testing.F) {
	valid := Marshal4(&Header4{
		TOS: 0x10, TotalLen: 1500, ID: 7, DontFrag: true, TTL: 64,
		Protocol: ProtoTCP, Src: NodeAddr4(0), Dst: NodeAddr4(1),
	})
	f.Add(valid)
	f.Add(valid[:19])                         // one byte short
	f.Add(valid[:0])                          // empty
	f.Add(append([]byte{0x60}, valid[1:]...)) // version 6 in a v4 parser
	f.Add(append([]byte{0x46}, valid[1:]...)) // IHL=6: options
	corrupt := bytes.Clone(valid)
	corrupt[10] ^= 0xff // break the header checksum
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := Parse4(b)
		if err != nil {
			return
		}
		got, err2 := Parse4(Marshal4(&h))
		if err2 != nil {
			t.Fatalf("accepted header does not re-parse: %v", err2)
		}
		if got != h {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
		}
	})
}

// FuzzParse6 does the same for the IPv6 fixed header.
func FuzzParse6(f *testing.F) {
	valid := Marshal6(&Header6{
		TrafficClass: 3, FlowLabel: 0xbeef, PayloadLength: 9000,
		NextHeader: ProtoTCP, HopLimit: DefaultHopLimit,
		Src: NodeAddr6(0), Dst: NodeAddr6(1),
	})
	f.Add(valid)
	f.Add(valid[:39])
	f.Add(valid[:0])
	f.Add(append([]byte{0x40}, valid[1:]...)) // version 4 in a v6 parser
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := Parse6(b)
		if err != nil {
			return
		}
		got, err2 := Parse6(Marshal6(&h))
		if err2 != nil {
			t.Fatalf("accepted header does not re-parse: %v", err2)
		}
		if got != h {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
		}
	})
}
