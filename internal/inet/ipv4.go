package inet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/buf"
)

// IPv4HeaderLen is the header size without options; the host-based baseline
// stack (Linux IPv4, paper §4.2) never emits IP options.
const IPv4HeaderLen = 20

// Header4 is a parsed IPv4 header (options unsupported).
type Header4 struct {
	TOS        byte
	TotalLen   uint16
	ID         uint16
	DontFrag   bool
	MoreFrags  bool
	FragOffset uint16 // in 8-byte units
	TTL        byte
	Protocol   byte
	Src, Dst   Addr4
}

// Marshal4 serializes h into a fresh 20-byte slice with a correct header
// checksum.
func Marshal4(h *Header4) []byte {
	return Marshal4Into(h, make([]byte, IPv4HeaderLen))
}

// Marshal4Into serializes h into b, which must hold at least IPv4HeaderLen
// bytes, and returns the header slice of b. Hot paths pass per-packet
// scratch space to avoid the allocation in Marshal4.
func Marshal4Into(h *Header4, b []byte) []byte {
	b = b[:IPv4HeaderLen]
	b[0] = 4<<4 | IPv4HeaderLen/4
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	frag := h.FragOffset & 0x1fff
	if h.DontFrag {
		frag |= 0x4000
	}
	if h.MoreFrags {
		frag |= 0x2000
	}
	binary.BigEndian.PutUint16(b[6:], frag)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0 // checksum field must be zero while summing
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b))
	return b
}

// ErrBadChecksum reports a header or transport checksum failure.
var ErrBadChecksum = errors.New("inet: bad checksum")

// Parse4 decodes and validates an IPv4 header from b.
func Parse4(b []byte) (Header4, error) {
	var h Header4
	if len(b) < IPv4HeaderLen {
		return h, fmt.Errorf("%w: ipv4 header needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(b))
	}
	if b[0]>>4 != 4 {
		return h, fmt.Errorf("%w: got %d, want 4", ErrBadVersion, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl != IPv4HeaderLen {
		return h, fmt.Errorf("inet: ipv4 options unsupported (ihl=%d)", ihl)
	}
	if !Valid(b[:IPv4HeaderLen]) {
		return h, fmt.Errorf("%w: ipv4 header", ErrBadChecksum)
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	frag := binary.BigEndian.Uint16(b[6:])
	h.DontFrag = frag&0x4000 != 0
	h.MoreFrags = frag&0x2000 != 0
	h.FragOffset = frag & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, nil
}

// PseudoSum4 computes the partial checksum of the IPv4 pseudo-header for an
// upper-layer packet of the given length and protocol.
func PseudoSum4(src, dst Addr4, proto byte, upperLen int) uint32 {
	var sum uint32
	sum = Sum(sum, src[:])
	sum = Sum(sum, dst[:])
	var tail [4]byte
	tail[1] = proto
	binary.BigEndian.PutUint16(tail[2:], uint16(upperLen))
	return Sum(sum, tail[:])
}

// TransportChecksum4 computes the transport checksum field value for an
// upper-layer header+payload under IPv4.
func TransportChecksum4(src, dst Addr4, proto byte, hdr []byte, payload buf.Buf) uint16 {
	sum := PseudoSum4(src, dst, proto, len(hdr)+payload.Len())
	sum = Sum(sum, hdr)
	sum = SumBuf(sum, payload)
	return Finish(sum)
}
