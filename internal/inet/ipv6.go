package inet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/buf"
)

// IPv6HeaderLen is the fixed IPv6 header size. The QPIP prototype does not
// use extension headers (paper §4.1).
const IPv6HeaderLen = 40

// DefaultHopLimit matches the common default of the FreeBSD 4.x stack the
// prototype's IPv6 layer was derived from.
const DefaultHopLimit = 64

// Header6 is a parsed IPv6 fixed header.
type Header6 struct {
	TrafficClass  byte
	FlowLabel     uint32 // 20 bits
	PayloadLength uint16
	NextHeader    byte
	HopLimit      byte
	Src, Dst      Addr6
}

// Marshal6 serializes h into a fresh 40-byte slice.
func Marshal6(h *Header6) []byte {
	return Marshal6Into(h, make([]byte, IPv6HeaderLen))
}

// Marshal6Into serializes h into b, which must hold at least IPv6HeaderLen
// bytes, and returns the header slice of b. Hot paths pass per-packet
// scratch space to avoid the allocation in Marshal6.
func Marshal6Into(h *Header6, b []byte) []byte {
	b = b[:IPv6HeaderLen]
	b[0] = 6<<4 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | byte(h.FlowLabel>>16&0x0f)
	b[2] = byte(h.FlowLabel >> 8)
	b[3] = byte(h.FlowLabel)
	binary.BigEndian.PutUint16(b[4:], h.PayloadLength)
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	copy(b[8:24], h.Src[:])
	copy(b[24:40], h.Dst[:])
	return b
}

// Errors from header parsing.
var (
	ErrTruncated  = errors.New("inet: truncated header")
	ErrBadVersion = errors.New("inet: bad IP version")
)

// Parse6 decodes an IPv6 fixed header from b.
func Parse6(b []byte) (Header6, error) {
	var h Header6
	if len(b) < IPv6HeaderLen {
		return h, fmt.Errorf("%w: ipv6 header needs %d bytes, have %d", ErrTruncated, IPv6HeaderLen, len(b))
	}
	if b[0]>>4 != 6 {
		return h, fmt.Errorf("%w: got %d, want 6", ErrBadVersion, b[0]>>4)
	}
	h.TrafficClass = b[0]<<4 | b[1]>>4
	h.FlowLabel = uint32(b[1]&0x0f)<<16 | uint32(b[2])<<8 | uint32(b[3])
	h.PayloadLength = binary.BigEndian.Uint16(b[4:])
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	copy(h.Src[:], b[8:24])
	copy(h.Dst[:], b[24:40])
	return h, nil
}

// PseudoSum6 computes the partial checksum of the IPv6 pseudo-header
// (RFC 2460 §8.1) for an upper-layer packet of the given length and
// protocol.
func PseudoSum6(src, dst Addr6, proto byte, upperLen int) uint32 {
	var sum uint32
	sum = Sum(sum, src[:])
	sum = Sum(sum, dst[:])
	var tail [8]byte
	binary.BigEndian.PutUint32(tail[0:], uint32(upperLen))
	tail[7] = proto
	return Sum(sum, tail[:])
}

// TransportChecksum6 computes the transport checksum field value for an
// upper-layer header+payload under IPv6, where hdr carries the transport
// header bytes with its checksum field zeroed and payload may be virtual.
func TransportChecksum6(src, dst Addr6, proto byte, hdr []byte, payload buf.Buf) uint16 {
	sum := PseudoSum6(src, dst, proto, len(hdr)+payload.Len())
	sum = Sum(sum, hdr)
	sum = SumBuf(sum, payload)
	return Finish(sum)
}
