package inet

import (
	"encoding/binary"
	"fmt"
)

// Protocol numbers shared by IPv4's Protocol field and IPv6's Next Header
// field (IANA assigned).
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Addr4 is an IPv4 address.
type Addr4 [4]byte

// V4 builds an IPv4 address from its dotted-quad components.
func V4(a, b, c, d byte) Addr4 { return Addr4{a, b, c, d} }

func (a Addr4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address in host integer form (big-endian order).
func (a Addr4) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// Addr6 is an IPv6 address.
type Addr6 [16]byte

// V6 builds an IPv6 address from eight 16-bit groups.
func V6(groups ...uint16) Addr6 {
	if len(groups) != 8 {
		panic(fmt.Sprintf("inet: V6 needs 8 groups, got %d", len(groups)))
	}
	var a Addr6
	for i, g := range groups {
		binary.BigEndian.PutUint16(a[2*i:], g)
	}
	return a
}

// NodeAddr6 returns a deterministic site-local style IPv6 address for the
// n-th node of a simulated SAN, mirroring the prototype's static address
// plan.
func NodeAddr6(n int) Addr6 {
	return V6(0xfec0, 0, 0, 0, 0, 0, 0, uint16(n+1))
}

// NodeAddr4 returns a deterministic private IPv4 address for the n-th node,
// used by the host-based IPv4 baseline stacks.
func NodeAddr4(n int) Addr4 {
	return V4(10, 0, byte(n>>8), byte(n&0xff)+1)
}

func (a Addr6) String() string {
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		binary.BigEndian.Uint16(a[0:]), binary.BigEndian.Uint16(a[2:]),
		binary.BigEndian.Uint16(a[4:]), binary.BigEndian.Uint16(a[6:]),
		binary.BigEndian.Uint16(a[8:]), binary.BigEndian.Uint16(a[10:]),
		binary.BigEndian.Uint16(a[12:]), binary.BigEndian.Uint16(a[14:]))
}

// IsZero reports whether the address is all zeros (the unspecified address).
func (a Addr6) IsZero() bool { return a == Addr6{} }

// IsZero reports whether the address is 0.0.0.0.
func (a Addr4) IsZero() bool { return a == Addr4{} }
