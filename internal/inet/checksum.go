// Package inet implements the inter-network protocol substrate of QPIP:
// the Internet checksum, IPv4 and IPv6 header marshaling, addressing, and
// the static route/neighbor tables the prototype used (paper §4.1: "Address
// resolution is provided by a static table that maps IPv6 addresses to
// switch routes").
package inet

import "repro/internal/buf"

// Sum computes the one's-complement running sum over data, folded to 16
// bits, starting from an initial partial sum. Byte slices of odd length are
// padded with a zero byte, per RFC 1071.
func Sum(initial uint32, data []byte) uint32 {
	sum := initial
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < n {
		sum += uint32(data[i]) << 8
	}
	return sum
}

// SumBuf adds a payload buffer to a running sum. Virtual buffers (implicit
// zeros) contribute nothing, but odd-length virtual buffers still shift the
// byte alignment of subsequent data; callers in this codebase always place
// payload last, so no alignment handling is needed.
func SumBuf(initial uint32, b buf.Buf) uint32 {
	if b.IsVirtual() || b.Len() == 0 {
		return initial
	}
	return Sum(initial, b.Data())
}

// Fold reduces a running sum to a 16-bit one's-complement checksum value
// (not yet inverted).
func Fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return uint16(sum)
}

// Finish folds and inverts a running sum, producing the value stored in a
// checksum field. An all-zero result is returned as 0xffff for UDP, but that
// substitution is protocol-specific and left to callers.
func Finish(sum uint32) uint16 {
	return ^Fold(sum)
}

// Checksum computes the complete Internet checksum of data.
func Checksum(data []byte) uint16 { return Finish(Sum(0, data)) }

// Valid reports whether data (which includes its checksum field) sums to
// the all-ones pattern required by RFC 1071.
func Valid(data []byte) bool { return Fold(Sum(0, data)) == 0xffff }
