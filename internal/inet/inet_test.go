package inet

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/buf"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Fold(Sum(0, data)); got != 0xddf2 {
		t.Errorf("Fold(Sum) = %#x, want 0xddf2", got)
	}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero.
	if got := Checksum([]byte{0xab}); got != ^uint16(0xab00) {
		t.Errorf("Checksum odd = %#x, want %#x", got, ^uint16(0xab00))
	}
}

func TestChecksumValidRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		// Append the computed checksum; the whole must validate.
		c := Checksum(data)
		if len(data)%2 == 1 {
			data = append(data, 0) // checksum assumes even alignment of its own field
		}
		full := append(append([]byte{}, data...), byte(c>>8), byte(c))
		return Valid(full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumBufVirtualIsZeroContribution(t *testing.T) {
	hdr := []byte{0x12, 0x34, 0x56, 0x78}
	real := Sum(Sum(0, hdr), make([]byte, 100))
	virt := SumBuf(Sum(0, hdr), buf.Virtual(100))
	if Fold(real) != Fold(virt) {
		t.Errorf("virtual payload checksum %#x != real zero payload %#x", Fold(virt), Fold(real))
	}
}

func TestSumIncrementalEqualsWhole(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a)%2 == 1 {
			a = append(a, 0)
		}
		whole := Fold(Sum(Sum(0, a), b))
		joined := Fold(Sum(0, append(append([]byte{}, a...), b...)))
		return whole == joined
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddr4String(t *testing.T) {
	if got := V4(10, 0, 0, 1).String(); got != "10.0.0.1" {
		t.Errorf("String = %q", got)
	}
	if got := V4(10, 0, 0, 1).Uint32(); got != 0x0a000001 {
		t.Errorf("Uint32 = %#x", got)
	}
}

func TestAddr6Construction(t *testing.T) {
	a := V6(0xfec0, 0, 0, 0, 0, 0, 0, 1)
	if a[0] != 0xfe || a[1] != 0xc0 || a[15] != 1 {
		t.Errorf("V6 bytes = %v", a)
	}
	if got := a.String(); got != "fec0:0:0:0:0:0:0:1" {
		t.Errorf("String = %q", got)
	}
	if a.IsZero() {
		t.Error("IsZero on non-zero address")
	}
	if !(Addr6{}).IsZero() {
		t.Error("zero Addr6 not IsZero")
	}
}

func TestV6WrongGroupCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("V6 with 3 groups did not panic")
		}
	}()
	V6(1, 2, 3)
}

func TestNodeAddrsDistinct(t *testing.T) {
	seen6 := map[Addr6]bool{}
	seen4 := map[Addr4]bool{}
	for i := 0; i < 300; i++ {
		a6, a4 := NodeAddr6(i), NodeAddr4(i)
		if seen6[a6] || seen4[a4] {
			t.Fatalf("duplicate node address at %d", i)
		}
		seen6[a6], seen4[a4] = true, true
	}
}

func TestIPv6MarshalParseRoundTrip(t *testing.T) {
	h := Header6{
		TrafficClass:  0xa5,
		FlowLabel:     0xbeef,
		PayloadLength: 1234,
		NextHeader:    ProtoTCP,
		HopLimit:      64,
		Src:           NodeAddr6(0),
		Dst:           NodeAddr6(1),
	}
	b := Marshal6(&h)
	if len(b) != IPv6HeaderLen {
		t.Fatalf("marshal length = %d", len(b))
	}
	got, err := Parse6(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv6RoundTripProperty(t *testing.T) {
	f := func(tc byte, fl uint32, pl uint16, nh, hl byte, srcRaw, dstRaw [16]byte) bool {
		h := Header6{
			TrafficClass:  tc,
			FlowLabel:     fl & 0xfffff,
			PayloadLength: pl,
			NextHeader:    nh,
			HopLimit:      hl,
			Src:           Addr6(srcRaw),
			Dst:           Addr6(dstRaw),
		}
		got, err := Parse6(Marshal6(&h))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParse6Errors(t *testing.T) {
	if _, err := Parse6(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
	b := Marshal6(&Header6{HopLimit: 1})
	b[0] = 4 << 4
	if _, err := Parse6(b); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestIPv4MarshalParseRoundTrip(t *testing.T) {
	h := Header4{
		TOS:      0x10,
		TotalLen: 1500,
		ID:       42,
		DontFrag: true,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      V4(10, 0, 0, 1),
		Dst:      V4(10, 0, 0, 2),
	}
	b := Marshal4(&h)
	if !Valid(b) {
		t.Fatal("marshaled header fails its own checksum")
	}
	got, err := Parse4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos byte, tl, id uint16, df, mf bool, fo uint16, ttl, proto byte, src, dst [4]byte) bool {
		h := Header4{
			TOS: tos, TotalLen: tl, ID: id,
			DontFrag: df, MoreFrags: mf, FragOffset: fo & 0x1fff,
			TTL: ttl, Protocol: proto,
			Src: Addr4(src), Dst: Addr4(dst),
		}
		got, err := Parse4(Marshal4(&h))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParse4RejectsCorruption(t *testing.T) {
	b := Marshal4(&Header4{TotalLen: 40, TTL: 64, Protocol: ProtoUDP})
	b[8] ^= 0xff // corrupt TTL
	if _, err := Parse4(b); err == nil {
		t.Error("corrupted header accepted")
	}
	if _, err := Parse4(make([]byte, 5)); err == nil {
		t.Error("short header accepted")
	}
	b2 := Marshal4(&Header4{TotalLen: 40})
	b2[0] = 0x46 // ihl=6 words: options, unsupported
	if _, err := Parse4(b2); err == nil {
		t.Error("options accepted")
	}
}

func TestPseudoSum6MatchesManual(t *testing.T) {
	src, dst := NodeAddr6(0), NodeAddr6(1)
	upperLen := 99
	var manual []byte
	manual = append(manual, src[:]...)
	manual = append(manual, dst[:]...)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(upperLen))
	manual = append(manual, lenb[:]...)
	manual = append(manual, 0, 0, 0, ProtoUDP)
	if Fold(PseudoSum6(src, dst, ProtoUDP, upperLen)) != Fold(Sum(0, manual)) {
		t.Error("PseudoSum6 disagrees with manual pseudo-header")
	}
}

func TestTransportChecksumValidatesEndToEnd(t *testing.T) {
	src, dst := NodeAddr6(3), NodeAddr6(4)
	hdr := []byte{0x12, 0x34, 0x00, 0x50, 0, 0, 0, 0} // checksum field zeroed
	payload := buf.Pattern(37, 5)
	ck := TransportChecksum6(src, dst, ProtoUDP, hdr, payload)
	// Receiver-side verification: sum pseudo-header + hdr-with-checksum + payload = all ones.
	full := append(append([]byte{}, hdr...), payload.Data()...)
	full[6], full[7] = byte(ck>>8), byte(ck)
	sum := PseudoSum6(src, dst, ProtoUDP, len(full))
	if Fold(Sum(sum, full)) != 0xffff {
		t.Error("transport checksum does not validate end to end")
	}
}

func TestTransportChecksum4ValidatesEndToEnd(t *testing.T) {
	src, dst := V4(10, 0, 0, 1), V4(10, 0, 0, 2)
	hdr := make([]byte, 20)
	payload := buf.Pattern(11, 9)
	ck := TransportChecksum4(src, dst, ProtoTCP, hdr, payload)
	full := append(append([]byte{}, hdr...), payload.Data()...)
	binary.BigEndian.PutUint16(full[16:], ck)
	sum := PseudoSum4(src, dst, ProtoTCP, len(full))
	if Fold(Sum(sum, full)) != 0xffff {
		t.Error("ipv4 transport checksum does not validate end to end")
	}
}

func TestRouteTables(t *testing.T) {
	t6 := NewTable6()
	t6.Add(NodeAddr6(0), 7)
	if got, err := t6.Lookup(NodeAddr6(0)); err != nil || got != 7 {
		t.Errorf("Lookup = %d, %v", got, err)
	}
	if _, err := t6.Lookup(NodeAddr6(9)); err == nil {
		t.Error("missing route resolved")
	}
	t6.Add(NodeAddr6(0), 8)
	if got, _ := t6.Lookup(NodeAddr6(0)); got != 8 {
		t.Error("overwrite did not take")
	}
	if t6.Len() != 1 {
		t.Errorf("Len = %d", t6.Len())
	}

	t4 := NewTable4()
	t4.Add(NodeAddr4(1), 3)
	if got, err := t4.Lookup(NodeAddr4(1)); err != nil || got != 3 {
		t.Errorf("Lookup4 = %d, %v", got, err)
	}
	if _, err := t4.Lookup(NodeAddr4(5)); err == nil {
		t.Error("missing v4 route resolved")
	}
	if t4.Len() != 1 {
		t.Errorf("Len4 = %d", t4.Len())
	}
}
