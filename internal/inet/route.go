package inet

import "errors"

// The QPIP prototype resolved addresses with "a static table that maps IPv6
// addresses to switch routes" (paper §4.1). Table6 and Table4 are those
// static tables: they map inter-network addresses to fabric attachment
// identifiers. The fabric layer turns an attachment identifier into an
// actual source route or switch port.

// ErrNoRoute reports an address with no table entry. It is a fixed
// sentinel rather than an address-bearing fmt.Errorf because Lookup sits
// on the per-packet transmit path and must not allocate.
var ErrNoRoute = errors.New("inet: no route to destination")

// Table6 is a static IPv6 address resolution table.
type Table6 struct {
	m map[Addr6]int
}

// NewTable6 returns an empty table.
func NewTable6() *Table6 { return &Table6{m: make(map[Addr6]int)} }

// Add binds addr to a fabric attachment. Re-adding an address overwrites
// the previous binding.
func (t *Table6) Add(addr Addr6, attachment int) { t.m[addr] = attachment }

// Lookup resolves addr to its attachment.
func (t *Table6) Lookup(addr Addr6) (int, error) {
	a, ok := t.m[addr]
	if !ok {
		return 0, ErrNoRoute
	}
	return a, nil
}

// Len reports the number of entries.
func (t *Table6) Len() int { return len(t.m) }

// Table4 is a static IPv4 address resolution table used by the host-based
// baseline stacks (their ARP equivalent, pre-populated as on a quiescent
// benchmark LAN).
type Table4 struct {
	m map[Addr4]int
}

// NewTable4 returns an empty table.
func NewTable4() *Table4 { return &Table4{m: make(map[Addr4]int)} }

// Add binds addr to a fabric attachment.
func (t *Table4) Add(addr Addr4, attachment int) { t.m[addr] = attachment }

// Lookup resolves addr to its attachment.
func (t *Table4) Lookup(addr Addr4) (int, error) {
	a, ok := t.m[addr]
	if !ok {
		return 0, ErrNoRoute
	}
	return a, nil
}

// Len reports the number of entries.
func (t *Table4) Len() int { return len(t.m) }
