package gige_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/gige"
	"repro/internal/hostos"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/wire"
)

func pair(t *testing.T) (*sim.Engine, [2]*hostos.Kernel, [2]*gige.Device) {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.Config{
		Name:         "eth",
		Bandwidth:    params.GigEBandwidth,
		MTU:          params.MTUEthernet,
		LinkOverhead: params.EthernetOverhead,
		HopLatency:   params.GigESwitchLatency,
		PropDelay:    params.CableLatency,
	})
	var ks [2]*hostos.Kernel
	var ds [2]*gige.Device
	for i := 0; i < 2; i++ {
		bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
		ks[i] = hostos.NewKernel(eng, "host", inet.NodeAddr4(i), nil, bus)
		ds[i] = gige.New(eng, ks[i], fab, gige.Config{Name: "eth0"})
	}
	return eng, ks, ds
}

func TestDeviceCountsAndDelivers(t *testing.T) {
	eng, ks, ds := pair(t)
	pkt := &wire.Packet{
		IsV4: true,
		IPHdr: inet.Marshal4(&inet.Header4{
			TotalLen: uint16(inet.IPv4HeaderLen),
			TTL:      64,
			Protocol: 0xfd,
			Src:      inet.NodeAddr4(0),
			Dst:      inet.NodeAddr4(1),
		}),
	}
	ds[0].Transmit(pkt, ds[1].Attachment())
	eng.Run()
	tx, _, _ := ds[0].Stats()
	_, rx, _ := ds[1].Stats()
	if tx != 1 || rx != 1 {
		t.Fatalf("tx=%d rx=%d", tx, rx)
	}
	// The kernel saw it as a softirq even though the protocol is unknown.
	if ks[1].Stats().SoftIRQs != 1 {
		t.Fatalf("receiver softirqs = %d", ks[1].Stats().SoftIRQs)
	}
	if ks[1].Stats().DroppedNoPort != 1 {
		t.Fatalf("unknown protocol not counted as drop")
	}
}

func TestDeviceMTUDefaults(t *testing.T) {
	_, _, ds := pair(t)
	if ds[0].MTU() != params.MTUEthernet {
		t.Errorf("MTU = %d", ds[0].MTU())
	}
	if ds[0].Name() != "eth0" {
		t.Errorf("Name = %q", ds[0].Name())
	}
}
