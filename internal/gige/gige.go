// Package gige models the Intel Pro1000 Gigabit Ethernet server adapter
// of the paper's testbed (§4.2): a conventional DMA ring NIC. All
// protocol work stays on the host; the device contributes descriptor DMA,
// wire serialization and interrupts (with coalescing).
package gige

import (
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parameterizes an adapter.
type Config struct {
	Name string
	// MTU of the interface (1500 standard, 9000 jumbo).
	MTU int
	// CoalescePkts / CoalesceDelay configure interrupt moderation.
	CoalescePkts  int
	CoalesceDelay sim.Time
}

// Device is one Ethernet adapter bound to a kernel and a fabric.
type Device struct {
	cfg Config
	eng *sim.Engine
	k   *hostos.Kernel
	bus *hw.PCIBus
	fab *fabric.Fabric
	att int
	rx  *hostos.RxCoalescer

	txPkts, rxPkts uint64
	txBytes        uint64
}

// New attaches an adapter to fab and binds it to kernel k.
func New(eng *sim.Engine, k *hostos.Kernel, fab *fabric.Fabric, cfg Config) *Device {
	if cfg.MTU <= 0 {
		cfg.MTU = params.MTUEthernet
	}
	if cfg.CoalescePkts == 0 {
		cfg.CoalescePkts = params.GigEIntCoalescePkts
	}
	if cfg.CoalesceDelay == 0 {
		cfg.CoalesceDelay = params.GigEIntCoalesceDelay
	}
	d := &Device{cfg: cfg, eng: eng, k: k, bus: k.Bus(), fab: fab}
	d.att = fab.AttachOn(eng, d.receive)
	d.rx = hostos.NewRxCoalescer(k, cfg.Name, cfg.CoalescePkts, cfg.CoalesceDelay)
	return d
}

// IRQ exposes the receive interrupt line (pacing knob, coalescing-factor
// counters).
func (d *Device) IRQ() *hw.IRQLine { return d.rx.Line() }

// Name implements hostos.NetDevice.
func (d *Device) Name() string { return d.cfg.Name }

// MTU implements hostos.NetDevice.
func (d *Device) MTU() int { return d.cfg.MTU }

// Attachment reports the device's fabric attachment id.
func (d *Device) Attachment() int { return d.att }

// Stats reports (txPkts, rxPkts, txBytes).
func (d *Device) Stats() (tx, rx, txBytes uint64) { return d.txPkts, d.rxPkts, d.txBytes }

// Transmit implements hostos.NetDevice: DMA the frame from host memory,
// then serialize onto the wire.
func (d *Device) Transmit(pkt *wire.Packet, dstAtt int) {
	d.txPkts++
	d.txBytes += uint64(pkt.Len())
	d.bus.DMA(pkt.Len(), d.cfg.Name+".txdma", func() {
		d.fab.Send(fabric.NewFrame(d.att, dstAtt, pkt.Len()+params.EthernetOverhead, pkt), nil)
	})
}

// receive is the fabric delivery handler: DMA into the host ring, then
// enqueue on the unified rx coalescer (which raises the paced interrupt
// and reaps in its ISR).
func (d *Device) receive(f *fabric.Frame) {
	pkt, ok := f.Payload.(*wire.Packet)
	if !ok {
		return
	}
	d.rxPkts++
	d.bus.DMA(pkt.Len(), d.cfg.Name+".rxdma", func() {
		d.rx.Enqueue(pkt)
	})
}
