// Package hw models the host-adapter hardware path of the paper's testbed:
// the shared 64-bit/33 MHz PCI bus with its DMA engines, the LANai's
// doorbell FIFO ("writes to a region of PCI address space are stored in a
// FIFO in the interface SRAM", paper §4.1), and interrupt delivery with
// coalescing for the conventional adapters.
package hw

import (
	"fmt"

	"repro/internal/sim"
)

// batched selects the host↔NIC boundary mode. In batched mode (the
// default) the host posts vectored doorbells, the firmware drains whole
// FIFOs per activation, and completion wakes route through IRQLine
// coalescing. Per-token mode preserves the original one-token/one-wake
// boundary for equivalence testing and perf comparison. With a coalescing
// delay of 0 the two modes are timing-identical by construction.
var batched = true

// SetBatchedBoundary switches the boundary mode process-wide. Call it
// before building a cluster; flipping it mid-simulation is undefined.
func SetBatchedBoundary(on bool) { batched = on }

// BatchedBoundary reports the current boundary mode.
func BatchedBoundary() bool { return batched }

// PCIBus is the shared I/O bus. Every DMA transfer and programmed-I/O
// write serializes through it, so concurrent DMA engines contend here —
// the physical reality that bounded the prototype's large-MTU throughput.
type PCIBus struct {
	bus       *sim.Server
	bandwidth float64 // bytes/sec
	setup     sim.Time
	pioWrite  sim.Time

	transfers uint64
	bytes     uint64
}

// NewPCIBus returns a bus with the given burst bandwidth, per-transfer DMA
// setup cost and programmed-I/O write latency.
func NewPCIBus(eng *sim.Engine, name string, bandwidth float64, setup, pioWrite sim.Time) *PCIBus {
	if bandwidth <= 0 {
		panic("hw: PCI bandwidth must be positive")
	}
	return &PCIBus{
		bus:       sim.NewServer(eng, name),
		bandwidth: bandwidth,
		setup:     setup,
		pioWrite:  pioWrite,
	}
}

// DMA moves n bytes across the bus and runs done at completion. Direction
// does not matter for occupancy: PCI is half duplex.
func (p *PCIBus) DMA(n int, what string, done func()) {
	if n < 0 {
		panic(fmt.Sprintf("hw: negative DMA length %d", n))
	}
	p.transfers++
	p.bytes += uint64(n)
	d := p.setup + sim.Time(float64(n)*1e9/p.bandwidth)
	p.bus.Do(d, what, done)
}

// Burst moves n bytes with no per-transfer setup charge — the issuing
// firmware stage's fixed cost already covers descriptor programming.
func (p *PCIBus) Burst(n int, what string, done func()) {
	p.BurstAt(n, p.bandwidth, what, done)
}

// BurstAt moves n bytes at the initiating DMA engine's effective rate
// (capped by the bus). The bus is held for the whole burst: a slow master
// occupies the bus at its own pace, as PCI works.
func (p *PCIBus) BurstAt(n int, rate float64, what string, done func()) {
	if n < 0 {
		panic(fmt.Sprintf("hw: negative DMA length %d", n))
	}
	if rate <= 0 || rate > p.bandwidth {
		rate = p.bandwidth
	}
	p.transfers++
	p.bytes += uint64(n)
	p.bus.Do(sim.Time(float64(n)*1e9/rate), what, done)
}

// PIOWrite performs one posted programmed-I/O write (a doorbell ring).
func (p *PCIBus) PIOWrite(what string, done func()) {
	p.bus.Do(p.pioWrite, what, done)
}

// Utilization reports the bus busy fraction since time zero.
func (p *PCIBus) Utilization() float64 { return p.bus.Utilization() }

// Stats reports (transfers, bytes) moved by DMA.
func (p *PCIBus) Stats() (transfers, bytes uint64) { return p.transfers, p.bytes }

// Doorbell is the adapter's hardware doorbell FIFO. Host-side PIO writes
// enqueue tokens; the firmware's doorbell FSM drains them. A full FIFO
// drops the ring — the driver layer must size queues to prevent that, and
// the counter makes such bugs visible.
type Doorbell struct {
	// fifo drains through head so the steady-state ring/pop cycle reuses
	// one backing array.
	fifo     []uint64
	head     int
	capacity int
	// OnRing, when set, is invoked (in simulation context) whenever a
	// token lands in an empty FIFO — the firmware's wakeup edge.
	OnRing func()
	// OnDrop, when set, is invoked for every ring lost to a full FIFO,
	// letting the owning adapter surface backpressure in its counters.
	OnDrop func()

	rings, drops uint64
}

// NewDoorbell returns a FIFO of the given capacity.
func NewDoorbell(capacity int) *Doorbell {
	if capacity <= 0 {
		panic("hw: doorbell capacity must be positive")
	}
	return &Doorbell{capacity: capacity}
}

// Ring enqueues a token (already across the bus). It reports false and
// counts a drop when the FIFO is full.
func (d *Doorbell) Ring(token uint64) bool {
	if d.Len() >= d.capacity {
		d.drops++
		if d.OnDrop != nil {
			d.OnDrop()
		}
		return false
	}
	d.rings++
	wasEmpty := d.Len() == 0
	d.fifo = append(d.fifo, token)
	if wasEmpty && d.OnRing != nil {
		d.OnRing()
	}
	return true
}

// Pop dequeues the oldest token.
func (d *Doorbell) Pop() (uint64, bool) {
	if d.head >= len(d.fifo) {
		return 0, false
	}
	t := d.fifo[d.head]
	d.head++
	if d.head == len(d.fifo) {
		d.fifo, d.head = d.fifo[:0], 0
	}
	return t, true
}

// PopN drains up to len(dst) tokens into dst in FIFO order and reports
// how many it moved — the firmware's vectored ring-drain. One PopN per
// FSM activation replaces a loop of Pops without changing ordering.
func (d *Doorbell) PopN(dst []uint64) int {
	n := copy(dst, d.fifo[d.head:])
	d.head += n
	if d.head == len(d.fifo) {
		d.fifo, d.head = d.fifo[:0], 0
	}
	return n
}

// Len reports queued tokens.
func (d *Doorbell) Len() int { return len(d.fifo) - d.head }

// Drops reports rings lost to a full FIFO.
func (d *Doorbell) Drops() uint64 { return d.drops }

// IRQLine delivers interrupts to a host CPU with interrupt throttling.
// It is adapter-agnostic: the conventional NICs (Pro1000, Myrinet) pace
// their rx-ring interrupts through it, and the QPIP NIC routes CQ
// completion events through one line per CQ. An idle line interrupts
// immediately (no added latency for a lone event — what Figure 3's RTTs
// see), while under load interrupts are paced at CoalesceDelay intervals
// or CoalescePkts events, whichever comes first, dividing the
// per-interrupt cost across events (what Figure 4's utilization sees).
// CoalesceDelay is the pacing knob the `-exp irq` ablation sweeps.
type IRQLine struct {
	eng *sim.Engine
	// ISR is the host's interrupt service routine; it receives the number
	// of events being acknowledged.
	ISR func(events int)
	// CoalescePkts of 0 or 1 disables count-based coalescing.
	CoalescePkts  int
	CoalesceDelay sim.Time

	pending   int
	timer     *sim.Event
	lastFire  sim.Time
	everFired bool
	fired     uint64
	events    uint64
	// timerFn is the coalesce-timer callback, bound once at construction
	// so arming the throttle on the hot receive path does not allocate.
	timerFn func()
}

// NewIRQLine returns a line bound to eng.
func NewIRQLine(eng *sim.Engine, isr func(events int)) *IRQLine {
	l := &IRQLine{eng: eng, ISR: isr}
	l.timerFn = func() {
		l.timer = nil
		if l.pending > 0 {
			l.fire()
		}
	}
	return l
}

// SetCoalesce reconfigures the pacing knobs. pkts < 1 disables
// count-based coalescing; delay 0 makes every Raise fire immediately.
func (l *IRQLine) SetCoalesce(pkts int, delay sim.Time) {
	l.CoalescePkts = pkts
	l.CoalesceDelay = delay
}

// Pending reports events raised but not yet delivered to the ISR.
func (l *IRQLine) Pending() int { return l.pending }

// Raise records one event, possibly triggering the ISR now or arming the
// throttle timer.
func (l *IRQLine) Raise() {
	l.pending++
	l.events++
	threshold := l.CoalescePkts
	if threshold < 1 {
		threshold = 1
	}
	if l.pending >= threshold || l.CoalesceDelay == 0 {
		l.fire()
		return
	}
	now := l.eng.Now()
	if l.everFired && now-l.lastFire >= l.CoalesceDelay {
		// Line has been idle past the throttle interval: no added latency.
		l.fire()
		return
	}
	if l.timer == nil {
		wait := l.CoalesceDelay
		if l.everFired {
			wait = l.lastFire + l.CoalesceDelay - now
		}
		l.timer = l.eng.After(wait, "irq.coalesce", l.timerFn)
	}
}

func (l *IRQLine) fire() {
	if l.timer != nil {
		l.timer.Cancel()
		l.timer = nil
	}
	n := l.pending
	l.pending = 0
	l.fired++
	l.lastFire = l.eng.Now()
	l.everFired = true
	if l.ISR != nil {
		l.ISR(n)
	}
}

// Fired reports delivered interrupts; Events reports raised events. Their
// ratio is the achieved coalescing factor.
func (l *IRQLine) Fired() uint64 { return l.fired }

// Events reports the total number of Raise calls.
func (l *IRQLine) Events() uint64 { return l.events }
