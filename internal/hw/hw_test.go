package hw

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

func bus(eng *sim.Engine) *PCIBus {
	return NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
}

func TestDMATiming(t *testing.T) {
	eng := sim.NewEngine()
	p := bus(eng)
	var done sim.Time
	p.DMA(16384, "payload", func() { done = eng.Now() })
	eng.Run()
	bw := float64(params.PCIBandwidth)
	want := params.PCIDMASetup + sim.Time(16384*1e9/bw)
	if done != want {
		t.Errorf("DMA finished at %v, want %v", done, want)
	}
	tr, by := p.Stats()
	if tr != 1 || by != 16384 {
		t.Errorf("stats = %d transfers, %d bytes", tr, by)
	}
}

func TestDMAContention(t *testing.T) {
	// Two engines sharing the bus: transfers serialize.
	eng := sim.NewEngine()
	p := bus(eng)
	var t1, t2 sim.Time
	p.DMA(8192, "a", func() { t1 = eng.Now() })
	p.DMA(8192, "b", func() { t2 = eng.Now() })
	eng.Run()
	if t2 != 2*t1 {
		t.Errorf("second DMA at %v, want %v (serialized)", t2, 2*t1)
	}
}

func TestDMAZeroLengthOnlySetup(t *testing.T) {
	eng := sim.NewEngine()
	p := bus(eng)
	var done sim.Time
	p.DMA(0, "desc", func() { done = eng.Now() })
	eng.Run()
	if done != params.PCIDMASetup {
		t.Errorf("zero-length DMA took %v", done)
	}
}

func TestDMANegativePanics(t *testing.T) {
	eng := sim.NewEngine()
	p := bus(eng)
	defer func() {
		if recover() == nil {
			t.Error("negative DMA accepted")
		}
	}()
	p.DMA(-1, "bad", nil)
}

func TestPIOWrite(t *testing.T) {
	eng := sim.NewEngine()
	p := bus(eng)
	var done sim.Time
	p.PIOWrite("doorbell", func() { done = eng.Now() })
	eng.Run()
	if done != params.PCIWriteLatency {
		t.Errorf("PIO write took %v", done)
	}
}

func TestDoorbellFIFOOrder(t *testing.T) {
	d := NewDoorbell(8)
	for i := uint64(0); i < 5; i++ {
		if !d.Ring(i) {
			t.Fatalf("ring %d rejected", i)
		}
	}
	for i := uint64(0); i < 5; i++ {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Error("pop from empty FIFO succeeded")
	}
}

func TestDoorbellOverflowDrops(t *testing.T) {
	d := NewDoorbell(2)
	d.Ring(1)
	d.Ring(2)
	if d.Ring(3) {
		t.Error("overflow ring accepted")
	}
	if d.Drops() != 1 {
		t.Errorf("drops = %d", d.Drops())
	}
	if d.Len() != 2 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestDoorbellOnRingEdgeTriggered(t *testing.T) {
	d := NewDoorbell(8)
	wakeups := 0
	d.OnRing = func() { wakeups++ }
	d.Ring(1)
	d.Ring(2) // FIFO non-empty: no new wakeup
	if wakeups != 1 {
		t.Fatalf("wakeups = %d after two rings, want 1", wakeups)
	}
	d.Pop()
	d.Pop()
	d.Ring(3)
	if wakeups != 2 {
		t.Fatalf("wakeups = %d after drain and re-ring, want 2", wakeups)
	}
}

func TestDoorbellPopNDrainsInOrder(t *testing.T) {
	d := NewDoorbell(8)
	for i := uint64(0); i < 5; i++ {
		d.Ring(i)
	}
	var dst [3]uint64
	if n := d.PopN(dst[:]); n != 3 || dst[0] != 0 || dst[1] != 1 || dst[2] != 2 {
		t.Fatalf("PopN = %d, dst = %v", n, dst)
	}
	if d.Len() != 2 {
		t.Fatalf("Len after partial drain = %d", d.Len())
	}
	if n := d.PopN(dst[:]); n != 2 || dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("second PopN = %d, dst = %v", n, dst)
	}
	if n := d.PopN(dst[:]); n != 0 {
		t.Fatalf("PopN on empty FIFO = %d", n)
	}
	// Drained FIFO reuses its backing array, same as Pop.
	d.Ring(9)
	v, ok := d.Pop()
	if !ok || v != 9 {
		t.Fatalf("Pop after PopN drain = %d, %v", v, ok)
	}
}

func TestDoorbellOnDropHook(t *testing.T) {
	d := NewDoorbell(1)
	drops := 0
	d.OnDrop = func() { drops++ }
	d.Ring(1)
	d.Ring(2)
	d.Ring(3)
	if drops != 2 || d.Drops() != 2 {
		t.Errorf("OnDrop ran %d times, Drops = %d; want 2, 2", drops, d.Drops())
	}
}

func TestIRQSetCoalesce(t *testing.T) {
	eng := sim.NewEngine()
	var got []int
	l := NewIRQLine(eng, func(n int) { got = append(got, n) })
	l.SetCoalesce(4, 100*sim.Microsecond)
	l.Raise()
	l.Raise()
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", l.Pending())
	}
	l.Raise()
	l.Raise()
	if l.Pending() != 0 {
		t.Fatalf("Pending after fire = %d, want 0", l.Pending())
	}
	eng.Run()
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("ISR calls = %v, want [4]", got)
	}
}

func TestIRQImmediateWithoutCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	var got []int
	l := NewIRQLine(eng, func(n int) { got = append(got, n) })
	l.Raise()
	l.Raise()
	eng.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Errorf("ISR calls = %v, want [1 1]", got)
	}
}

func TestIRQCountCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	var got []int
	l := NewIRQLine(eng, func(n int) { got = append(got, n) })
	l.CoalescePkts = 4
	l.CoalesceDelay = 100 * sim.Microsecond
	for i := 0; i < 8; i++ {
		l.Raise()
	}
	eng.Run()
	if len(got) < 2 || got[0] != 4 || got[1] != 4 {
		t.Errorf("ISR calls = %v, want [4 4]", got)
	}
	if l.Fired() != 2 || l.Events() != 8 {
		t.Errorf("fired=%d events=%d", l.Fired(), l.Events())
	}
}

func TestIRQTimerFlushesPartialBatch(t *testing.T) {
	eng := sim.NewEngine()
	var got []int
	var at sim.Time
	l := NewIRQLine(eng, func(n int) { got = append(got, n); at = eng.Now() })
	l.CoalescePkts = 8
	l.CoalesceDelay = 70 * sim.Microsecond
	l.Raise()
	l.Raise()
	eng.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("ISR calls = %v, want [2]", got)
	}
	if at != 70*sim.Microsecond {
		t.Errorf("timer flush at %v, want 70us", at)
	}
}

func TestIRQTimerCancelledWhenCountHit(t *testing.T) {
	eng := sim.NewEngine()
	calls := 0
	l := NewIRQLine(eng, func(n int) { calls++ })
	l.CoalescePkts = 2
	l.CoalesceDelay = 70 * sim.Microsecond
	l.Raise()
	l.Raise() // hits count: fires, cancels timer
	eng.Run()
	if calls != 1 {
		t.Errorf("ISR ran %d times, want 1 (timer should be cancelled)", calls)
	}
}
