package udp

import (
	"testing"
	"testing/quick"

	"repro/internal/buf"
	"repro/internal/inet"
)

func TestMarshal6ParseRoundTrip(t *testing.T) {
	src, dst := inet.NodeAddr6(0), inet.NodeAddr6(1)
	payload := buf.Pattern(100, 1)
	b := Marshal6(src, dst, 5000, 80, payload)
	h, plen, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != 5000 || h.DstPort != 80 {
		t.Errorf("ports = %d->%d", h.SrcPort, h.DstPort)
	}
	if plen != 100 {
		t.Errorf("payload length = %d", plen)
	}
	if err := Verify6(src, dst, b, payload); err != nil {
		t.Errorf("Verify6: %v", err)
	}
}

func TestVerify6DetectsCorruption(t *testing.T) {
	src, dst := inet.NodeAddr6(0), inet.NodeAddr6(1)
	payload := buf.Pattern(64, 2)
	b := Marshal6(src, dst, 1, 2, payload)
	b[0] ^= 0x01
	if err := Verify6(src, dst, b, payload); err == nil {
		t.Error("corrupted header passed checksum")
	}
	// Corrupted payload.
	b2 := Marshal6(src, dst, 1, 2, payload)
	bad := buf.Pattern(64, 3)
	if err := Verify6(src, dst, b2, bad); err == nil {
		t.Error("corrupted payload passed checksum")
	}
	// Wrong pseudo-header (misdelivered datagram).
	if err := Verify6(src, inet.NodeAddr6(2), b2, payload); err == nil {
		t.Error("wrong destination passed checksum")
	}
}

func TestMarshal6VirtualPayloadChecksumsMatchReal(t *testing.T) {
	src, dst := inet.NodeAddr6(0), inet.NodeAddr6(1)
	virt := Marshal6(src, dst, 9, 10, buf.Virtual(500))
	real := Marshal6(src, dst, 9, 10, buf.Bytes(make([]byte, 500)))
	for i := range virt {
		if virt[i] != real[i] {
			t.Fatal("virtual payload produced different header bytes than real zeros")
		}
	}
	if err := Verify6(src, dst, virt, buf.Virtual(500)); err != nil {
		t.Errorf("Verify6 virtual: %v", err)
	}
}

func TestMarshal4Verify4(t *testing.T) {
	src, dst := inet.NodeAddr4(0), inet.NodeAddr4(1)
	payload := buf.Pattern(33, 4)
	b := Marshal4(src, dst, 1234, 4321, payload)
	if err := Verify4(src, dst, b, payload); err != nil {
		t.Errorf("Verify4: %v", err)
	}
	b[1] ^= 0xff
	if err := Verify4(src, dst, b, payload); err == nil {
		t.Error("corruption passed")
	}
}

func TestVerify4ZeroChecksumMeansUnchecked(t *testing.T) {
	src, dst := inet.NodeAddr4(0), inet.NodeAddr4(1)
	b := Marshal4(src, dst, 1, 2, buf.Empty)
	b[6], b[7] = 0, 0 // sender did not compute a checksum
	if err := Verify4(src, dst, b, buf.Empty); err != nil {
		t.Errorf("zero checksum rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse([]byte{1, 2, 3}); err == nil {
		t.Error("short datagram accepted")
	}
	b := Marshal6(inet.NodeAddr6(0), inet.NodeAddr6(1), 1, 2, buf.Empty)
	b[4], b[5] = 0, 3 // length < 8
	if _, _, err := Parse(b); err == nil {
		t.Error("bad length accepted")
	}
}

func TestChecksumNeverZeroOnWire(t *testing.T) {
	// Search a few payloads; regardless of content the emitted checksum
	// field must never be zero (RFC 768 / RFC 2460 rule).
	f := func(payload []byte, sp, dp uint16) bool {
		b := Marshal6(inet.NodeAddr6(0), inet.NodeAddr6(1), sp, dp, buf.Bytes(payload))
		return b[6] != 0 || b[7] != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortSpaceBindLookup(t *testing.T) {
	ps := NewPortSpace[string]()
	port, err := ps.Bind(80, "web")
	if err != nil || port != 80 {
		t.Fatalf("Bind(80) = %d, %v", port, err)
	}
	if _, err := ps.Bind(80, "dup"); err == nil {
		t.Error("duplicate bind accepted")
	}
	if ep, ok := ps.Lookup(80); !ok || ep != "web" {
		t.Errorf("Lookup(80) = %q, %v", ep, ok)
	}
	ps.Unbind(80)
	if _, ok := ps.Lookup(80); ok {
		t.Error("lookup after unbind succeeded")
	}
}

func TestPortSpaceEphemeral(t *testing.T) {
	ps := NewPortSpace[int]()
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		p, err := ps.Bind(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if p < 49152 {
			t.Fatalf("ephemeral port %d below dynamic range", p)
		}
		if seen[p] {
			t.Fatalf("ephemeral port %d reused while bound", p)
		}
		seen[p] = true
	}
	if ps.Len() != 100 {
		t.Errorf("Len = %d", ps.Len())
	}
}

func TestPortSpaceEphemeralSkipsTaken(t *testing.T) {
	ps := NewPortSpace[int]()
	if _, err := ps.Bind(49152, 0); err != nil {
		t.Fatal(err)
	}
	p, err := ps.Bind(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p == 49152 {
		t.Error("ephemeral allocation returned a taken port")
	}
}
