package udp

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/inet"
)

// FuzzParse feeds arbitrary bytes to the UDP header parser: never panic,
// and any accepted header's claimed payload length must be non-negative.
func FuzzParse(f *testing.F) {
	valid := Marshal6(inet.NodeAddr6(0), inet.NodeAddr6(1), 4660, 7000, buf.Pattern(32, 1))
	f.Add(valid)
	f.Add(valid[:7]) // truncated
	f.Add(valid[:0])
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 0}) // length field 3 < header size
	f.Fuzz(func(t *testing.T, b []byte) {
		h, paylen, err := Parse(b)
		if err != nil {
			return
		}
		if paylen < 0 {
			t.Fatalf("accepted header claims negative payload: %d", paylen)
		}
		if int(h.Length) != paylen+HeaderLen {
			t.Fatalf("length accounting: %d != %d+%d", h.Length, paylen, HeaderLen)
		}
	})
}

// FuzzVerify4 checks the IPv4-side checksum verifier tolerates arbitrary
// header bytes (it indexes into the checksum field) with any payload size.
func FuzzVerify4(f *testing.F) {
	pay := buf.Pattern(16, 2)
	valid := Marshal4(inet.NodeAddr4(0), inet.NodeAddr4(1), 4660, 7000, pay)
	f.Add(valid, 16)
	f.Add(valid[:7], 16) // truncated header
	f.Add(valid[:0], 0)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 4) // zero checksum: "not computed"
	f.Fuzz(func(t *testing.T, hdr []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		_ = Verify4(inet.NodeAddr4(0), inet.NodeAddr4(1), hdr, buf.Pattern(n, 3))
	})
}
