// Package udp implements the User Datagram Protocol header and port
// demultiplexing used by both the QPIP NIC firmware (unreliable QP delivery
// mode, paper §3) and the host-based baseline stack. "The UDP protocol is
// fully functional. Unreliable QP messages are encapsulated directly in UDP
// datagrams" (paper §4.1) — there is no extra framing layer.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/buf"
	"repro/internal/inet"
)

// HeaderLen is the fixed UDP header size.
const HeaderLen = 8

// Header is a parsed UDP header.
type Header struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
	Checksum         uint16
}

// Datagram couples a header with its payload.
type Datagram struct {
	Header  Header
	Payload buf.Buf
}

// marshalRawInto serializes the header with the given checksum field into
// b, which must hold at least HeaderLen bytes.
func marshalRawInto(h *Header, ck uint16, b []byte) []byte {
	b = b[:HeaderLen]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], h.Length)
	binary.BigEndian.PutUint16(b[6:], ck)
	return b
}

// Marshal6 serializes a datagram for IPv6 carriage, computing the mandatory
// transport checksum (RFC 2460 requires UDP checksums under IPv6; a computed
// zero is transmitted as 0xffff).
func Marshal6(src, dst inet.Addr6, srcPort, dstPort uint16, payload buf.Buf) []byte {
	return Marshal6Into(src, dst, srcPort, dstPort, payload, make([]byte, HeaderLen))
}

// Marshal6Into is Marshal6 writing into caller-provided scratch b; the
// header is marshaled once and the checksum patched in place.
func Marshal6Into(src, dst inet.Addr6, srcPort, dstPort uint16, payload buf.Buf, b []byte) []byte {
	h := Header{SrcPort: srcPort, DstPort: dstPort, Length: uint16(HeaderLen + payload.Len())}
	b = marshalRawInto(&h, 0, b)
	ck := inet.TransportChecksum6(src, dst, inet.ProtoUDP, b, payload)
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(b[6:], ck)
	return b
}

// Marshal4 serializes a datagram for IPv4 carriage.
func Marshal4(src, dst inet.Addr4, srcPort, dstPort uint16, payload buf.Buf) []byte {
	return Marshal4Into(src, dst, srcPort, dstPort, payload, make([]byte, HeaderLen))
}

// Marshal4Into is Marshal4 writing into caller-provided scratch b.
func Marshal4Into(src, dst inet.Addr4, srcPort, dstPort uint16, payload buf.Buf, b []byte) []byte {
	h := Header{SrcPort: srcPort, DstPort: dstPort, Length: uint16(HeaderLen + payload.Len())}
	b = marshalRawInto(&h, 0, b)
	ck := inet.TransportChecksum4(src, dst, inet.ProtoUDP, b, payload)
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(b[6:], ck)
	return b
}

// Parse errors.
var (
	ErrTruncated   = errors.New("udp: truncated datagram")
	ErrBadLength   = errors.New("udp: bad length field")
	ErrBadChecksum = errors.New("udp: bad checksum")
)

// Parse decodes a UDP header from b and returns it along with the number of
// payload bytes the length field claims. Checksum verification is separate
// (Verify6/Verify4) because offloaded NICs may verify in hardware.
func Parse(b []byte) (Header, int, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, 0, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Length = binary.BigEndian.Uint16(b[4:])
	h.Checksum = binary.BigEndian.Uint16(b[6:])
	if int(h.Length) < HeaderLen {
		return h, 0, ErrBadLength
	}
	return h, int(h.Length) - HeaderLen, nil
}

// Verify6 checks the transport checksum of a datagram received over IPv6.
func Verify6(src, dst inet.Addr6, hdr []byte, payload buf.Buf) error {
	sum := inet.PseudoSum6(src, dst, inet.ProtoUDP, len(hdr)+payload.Len())
	sum = inet.Sum(sum, hdr)
	sum = inet.SumBuf(sum, payload)
	if inet.Fold(sum) != 0xffff {
		return ErrBadChecksum
	}
	return nil
}

// Verify4 checks the transport checksum of a datagram received over IPv4.
// An all-zero checksum field means "not computed" under IPv4 and passes.
func Verify4(src, dst inet.Addr4, hdr []byte, payload buf.Buf) error {
	if len(hdr) < HeaderLen {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(hdr))
	}
	if binary.BigEndian.Uint16(hdr[6:]) == 0 {
		return nil
	}
	sum := inet.PseudoSum4(src, dst, inet.ProtoUDP, len(hdr)+payload.Len())
	sum = inet.Sum(sum, hdr)
	sum = inet.SumBuf(sum, payload)
	if inet.Fold(sum) != 0xffff {
		return ErrBadChecksum
	}
	return nil
}

// PortSpace allocates and demultiplexes UDP ports for one stack instance.
// The value type E is whatever endpoint object the owner demuxes to (a QP
// in the NIC firmware, a socket in the host stack).
type PortSpace[E any] struct {
	bound     map[uint16]E
	ephemeral uint16
}

// NewPortSpace returns an empty port space. Ephemeral allocation starts at
// 49152, the IANA dynamic range.
func NewPortSpace[E any]() *PortSpace[E] {
	return &PortSpace[E]{bound: make(map[uint16]E), ephemeral: 49152}
}

// Bind claims a specific port. Port 0 requests an ephemeral port. The bound
// port is returned.
func (p *PortSpace[E]) Bind(port uint16, ep E) (uint16, error) {
	if port == 0 {
		for i := 0; i < 1<<16; i++ {
			cand := p.ephemeral
			p.ephemeral++
			if p.ephemeral == 0 {
				p.ephemeral = 49152
			}
			if _, taken := p.bound[cand]; !taken && cand != 0 {
				port = cand
				break
			}
		}
		if port == 0 {
			return 0, errors.New("udp: ephemeral ports exhausted")
		}
	} else if _, taken := p.bound[port]; taken {
		return 0, fmt.Errorf("udp: port %d in use", port)
	}
	p.bound[port] = ep
	return port, nil
}

// Lookup demultiplexes a destination port to its endpoint.
func (p *PortSpace[E]) Lookup(port uint16) (E, bool) {
	ep, ok := p.bound[port]
	return ep, ok
}

// Unbind releases a port.
func (p *PortSpace[E]) Unbind(port uint16) { delete(p.bound, port) }

// Reset releases every binding and restarts ephemeral allocation from the
// power-on value (adapter crash/reboot).
func (p *PortSpace[E]) Reset() {
	p.bound = make(map[uint16]E)
	p.ephemeral = 49152
}

// Len reports the number of bound ports.
func (p *PortSpace[E]) Len() int { return len(p.bound) }
