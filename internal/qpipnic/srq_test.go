package qpipnic

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// srqPair builds an SRQ on the server NIC and parks nQPs server QPs
// attached to it on one listener, returning matching client QPs.
func srqPair(t *testing.T, c *cluster, srq *verbs.SRQ, port uint16, nQPs int) (clis, srvs []*verbs.QP, cliR, srvR *verbs.CQ) {
	t.Helper()
	srvS := verbs.NewCQ(c.nics[1], 4096)
	srvR = verbs.NewCQ(c.nics[1], 4096)
	cliS := verbs.NewCQ(c.nics[0], 4096)
	cliR = verbs.NewCQ(c.nics[0], 4096)
	lst, err := c.nics[1].Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nQPs; i++ {
		srv, err := verbs.NewQP(c.nics[1], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: srvS, RecvCQ: srvR, SendDepth: 64, SRQ: srq})
		if err != nil {
			t.Fatal(err)
		}
		if err := lst.Post(srv); err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, srv)
		cli, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: cliS, RecvCQ: cliR, SendDepth: 64, RecvDepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		clis = append(clis, cli)
	}
	return clis, srvs, cliR, srvR
}

// TestSRQDeliversAcrossQPs drives two connections into one shared pool
// and checks every message lands exactly once with pool accounting
// consistent.
func TestSRQDeliversAcrossQPs(t *testing.T) {
	c := newCluster(t, nil)
	srq, err := verbs.NewSRQ(c.nics[1], verbs.SRQConfig{Depth: 64})
	if err != nil {
		t.Fatal(err)
	}
	clis, _, _, srvR := srqPair(t, c, srq, 7000, 2)
	const msgs = 4
	got := map[uint32]int{}
	c.eng.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			if err := srq.PostRecv(p, verbs.RecvWR{ID: uint64(100 + i), Capacity: 4096}); err != nil {
				t.Errorf("SRQ PostRecv: %v", err)
			}
		}
		for i := 0; i < 2*msgs; i++ {
			comp := srvR.Wait(p)
			if comp.Status != verbs.StatusSuccess {
				t.Errorf("recv completion %d: %v", i, comp.Status)
			}
			got[comp.QPN]++
		}
	})
	for ci, cli := range clis {
		cli := cli
		c.eng.Spawn("client", func(p *sim.Proc) {
			if err := cli.Connect(p, inet.NodeAddr6(1), 7000); err != nil {
				t.Errorf("client %d connect: %v", ci, err)
				return
			}
			for m := 0; m < msgs; m++ {
				if err := cli.PostSend(p, verbs.SendWR{ID: uint64(m), Payload: buf.Virtual(1024)}); err != nil {
					t.Errorf("client %d send %d: %v", ci, m, err)
				}
			}
		})
	}
	c.eng.Run()
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 2*msgs || len(got) != 2 {
		t.Fatalf("received %d messages over %d QPs, want %d over 2", total, len(got), 2*msgs)
	}
	if srq.Claims() != 2*msgs {
		t.Errorf("SRQ claims = %d, want %d", srq.Claims(), 2*msgs)
	}
	if srq.Posted() != 16-2*msgs {
		t.Errorf("pool left = %d, want %d", srq.Posted(), 16-2*msgs)
	}
	if fp := c.nics[1].SRAMFootprint(); fp <= 0 {
		t.Errorf("SRAMFootprint = %d", fp)
	}
}

// TestSRQBackpressureRepost starves the shared pool so concurrent senders
// overcommit it (records stash in SRAM, RNR), then reposts via the armed
// limit event and checks the stalled connections drain.
func TestSRQBackpressureRepost(t *testing.T) {
	c := newCluster(t, nil)
	srq, err := verbs.NewSRQ(c.nics[1], verbs.SRQConfig{Depth: 64, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	clis, _, _, srvR := srqPair(t, c, srq, 7000, 2)
	const msgs = 3 // per client; pool starts with only 2 buffers
	done := 0
	c.eng.Spawn("reposter", func(p *sim.Proc) {
		for done < 2*msgs {
			srq.WaitLimit(p)
			if _, err := srq.PostRecvN(p, []verbs.RecvWR{{ID: 900, Capacity: 4096}, {ID: 901, Capacity: 4096}}); err != nil {
				t.Errorf("repost: %v", err)
				return
			}
			if err := srq.ArmLimit(1); err != nil {
				t.Errorf("re-arm: %v", err)
				return
			}
		}
	})
	c.eng.Spawn("server", func(p *sim.Proc) {
		srq.PostRecv(p, verbs.RecvWR{ID: 1, Capacity: 4096})
		srq.PostRecv(p, verbs.RecvWR{ID: 2, Capacity: 4096})
		for done < 2*msgs {
			comp := srvR.Wait(p)
			if comp.Status != verbs.StatusSuccess {
				t.Errorf("recv: %v", comp.Status)
			}
			done++
		}
	})
	for ci, cli := range clis {
		cli := cli
		c.eng.Spawn("client", func(p *sim.Proc) {
			if err := cli.Connect(p, inet.NodeAddr6(1), 7000); err != nil {
				t.Errorf("client %d connect: %v", ci, err)
				return
			}
			for m := 0; m < msgs; m++ {
				if err := cli.PostSend(p, verbs.SendWR{ID: uint64(m), Payload: buf.Virtual(1024)}); err != nil {
					t.Errorf("client %d send %d: %v", ci, m, err)
				}
			}
		})
	}
	c.eng.Run()
	if done != 2*msgs {
		t.Fatalf("delivered %d, want %d", done, 2*msgs)
	}
	if srq.LimitEvents() == 0 {
		t.Error("limit event never fired under starvation")
	}
}

// TestCreateQPExhaustionTyped pins the typed capacity error: occupancy in
// the message, both sentinels matched, and the qp.exhausted counter.
func TestCreateQPExhaustionTyped(t *testing.T) {
	c := newCluster(t, func(i int, cfg *Config) { cfg.MaxQPs = 4 })
	cq := verbs.NewCQ(c.nics[0], 16)
	for i := 0; i < 4; i++ {
		if _, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: cq, RecvCQ: cq}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: cq, RecvCQ: cq})
	if !errors.Is(err, verbs.ErrQPExhausted) {
		t.Fatalf("err = %v, want ErrQPExhausted", err)
	}
	if !errors.Is(err, verbs.ErrNoResources) {
		t.Error("typed error no longer matches ErrNoResources")
	}
	if !strings.Contains(err.Error(), "4/4") {
		t.Errorf("message %q lacks occupancy", err.Error())
	}
	if got := c.nics[0].Net.Get("qp.exhausted"); got != 1 {
		t.Errorf("qp.exhausted = %d, want 1", got)
	}
	if got := c.nics[0].Net.Get("mgmt.qp-refused"); got != 1 {
		t.Errorf("mgmt.qp-refused = %d, want 1", got)
	}
}

// TestQPNRecyclingUnderChurn creates and destroys QPs in a loop: the
// state table and QPN space must not grow with cumulative churn, and
// recycled QPNs must resolve to the new owner.
func TestQPNRecyclingUnderChurn(t *testing.T) {
	c := newCluster(t, nil)
	cq := verbs.NewCQ(c.nics[0], 16)
	firstQPNs := map[uint32]bool{}
	var lastQPN uint32
	for round := 0; round < 50; round++ {
		qp, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: cq, RecvCQ: cq})
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			firstQPNs[qp.QPN] = true
		} else if !firstQPNs[qp.QPN] {
			t.Fatalf("round %d allocated fresh QPN %d instead of recycling", round, qp.QPN)
		}
		lastQPN = qp.QPN
		qp.Close()
	}
	if got := c.nics[0].Net.Get("qpn.recycled"); got != 49 {
		t.Errorf("qpn.recycled = %d, want 49", got)
	}
	if c.nics[0].LiveQPs() != 0 {
		t.Errorf("LiveQPs = %d after churn", c.nics[0].LiveQPs())
	}
	// The recycled QPN maps to its newest owner.
	qp, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: cq, RecvCQ: cq})
	if err != nil {
		t.Fatal(err)
	}
	if qp.QPN != lastQPN {
		t.Errorf("QPN = %d, want recycled %d", qp.QPN, lastQPN)
	}
}

// TestSRQSurvivesNICCrash: the shared pool is host memory — an adapter
// crash fails the attached QPs and wipes the waiter bookkeeping, but the
// posted WRs remain claimable after restart and re-admission.
func TestSRQSurvivesNICCrash(t *testing.T) {
	c := newCluster(t, nil)
	srq, err := verbs.NewSRQ(c.nics[1], verbs.SRQConfig{Depth: 64})
	if err != nil {
		t.Fatal(err)
	}
	clis, srvs, _, srvR := srqPair(t, c, srq, 7000, 1)
	c.eng.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			srq.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 4096})
		}
		srvR.Wait(p)
		c.nics[1].Crash()
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		if err := cliConnect(p, clis[0]); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		clis[0].PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Virtual(1024)})
	})
	c.eng.Run()
	if srvs[0].State() != verbs.QPError {
		t.Fatalf("server QP state = %v after crash", srvs[0].State())
	}
	if srq.Posted() != 7 {
		t.Errorf("pool after crash = %d, want 7 (host memory survives)", srq.Posted())
	}
	// Restart and re-admit: the QP reattaches to the same pool.
	c.nics[1].Restart()
	c.eng.Spawn("recover", func(p *sim.Proc) {
		if err := srvs[0].ModifyQP(p, verbs.QPReset); err != nil {
			t.Errorf("reset after restart: %v", err)
		}
	})
	c.eng.Run()
	if got := c.nics[1].LiveQPs(); got != 1 {
		t.Errorf("LiveQPs after re-admission = %d, want 1", got)
	}
}

func cliConnect(p *sim.Proc, qp *verbs.QP) error {
	return qp.Connect(p, inet.NodeAddr6(1), 7000)
}

// TestGracefulCloseReapsConnState churns established connections through
// graceful close and checks the demux and port tables return to baseline
// on both adapters — before the reap path, tcpConns and the client's
// ephemeral-port reservations grew forever.
func TestGracefulCloseReapsConnState(t *testing.T) {
	c := newCluster(t, nil)
	lst, err := c.nics[1].Listen(7000)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for round := 0; round < rounds; round++ {
		srvCQ := verbs.NewCQ(c.nics[1], 16)
		cliCQ := verbs.NewCQ(c.nics[0], 16)
		srv, err := verbs.NewQP(c.nics[1], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: srvCQ, RecvCQ: srvCQ, SendDepth: 4, RecvDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: cliCQ, RecvCQ: cliCQ, SendDepth: 4, RecvDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := lst.Post(srv); err != nil {
			t.Fatal(err)
		}
		c.eng.Spawn("server", func(p *sim.Proc) {
			if err := srv.WaitEstablished(p); err != nil {
				t.Errorf("round %d establish: %v", round, err)
				return
			}
			srv.PostRecv(p, verbs.RecvWR{ID: 1, Capacity: 4096})
			srvCQ.Wait(p)
			srv.Close()
		})
		c.eng.Spawn("client", func(p *sim.Proc) {
			if err := cliConnect(p, cli); err != nil {
				t.Errorf("round %d connect: %v", round, err)
				return
			}
			cli.PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Virtual(1024)})
			cliCQ.Wait(p)
			cli.Close()
		})
		c.eng.Run()
	}
	if got := c.nics[0].LiveTCPConns(); got != 0 {
		t.Errorf("client tcpConns = %d after churn, want 0", got)
	}
	if got := c.nics[1].LiveTCPConns(); got != 0 {
		t.Errorf("server tcpConns = %d after churn, want 0", got)
	}
	if got := len(c.nics[0].tcpPorts); got != 0 {
		t.Errorf("client tcpPorts = %d after churn, want 0 (ephemeral reservations leaked)", got)
	}
	// The listener's own reservation must survive its children.
	if got := len(c.nics[1].tcpPorts); got != 1 {
		t.Errorf("server tcpPorts = %d after churn, want 1 (the listener)", got)
	}
	if got := c.nics[0].LiveQPs(); got != 0 {
		t.Errorf("client LiveQPs = %d after churn", got)
	}
}
