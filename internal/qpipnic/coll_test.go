package qpipnic

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/verbs"
)

// collCluster is an n-node QPIP testbed for the collective engine,
// optionally on a multi-hop topology.
type collCluster struct {
	eng   *sim.Engine
	fab   *fabric.Fabric
	hosts []*sim.CPU
	nics  []*NIC
	addrs []inet.Addr6
}

func newCollCluster(t *testing.T, n int, spec topo.Spec) *collCluster {
	t.Helper()
	eng := sim.NewEngine()
	cfg := fabric.Config{
		Name:         "myri",
		Bandwidth:    params.MyrinetBandwidth,
		LinkOverhead: params.MyrinetHeaderBytes,
		CutThrough:   true,
		HopLatency:   params.MyrinetHopLatency,
		PropDelay:    params.CableLatency,
	}
	if spec.Kind != topo.None {
		cfg.Topo = topo.Build(spec, n)
	}
	fab := fabric.New(eng, cfg)
	routes := inet.NewTable6()
	c := &collCluster{eng: eng, fab: fab}
	for i := 0; i < n; i++ {
		host := sim.NewCPU(eng, "host", params.HostClockHz)
		bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
		nic := New(eng, fab, Config{
			Name:    "nic",
			Addr:    inet.NodeAddr6(i),
			MTU:     params.MTUQPIP,
			HostCPU: host,
			Bus:     bus,
			Routes:  routes,
		})
		routes.Add(inet.NodeAddr6(i), nic.Attachment())
		c.hosts = append(c.hosts, host)
		c.nics = append(c.nics, nic)
		c.addrs = append(c.addrs, inet.NodeAddr6(i))
	}
	return c
}

// join builds one CollQ + CQ per rank for group 1.
func (c *collCluster) join(t *testing.T) (qs []*verbs.CollQ, cqs []*verbs.CQ) {
	t.Helper()
	for i := range c.nics {
		cq := verbs.NewCQ(c.nics[i], 64)
		q, err := verbs.NewCollQ(c.nics[i], 1, i, c.addrs, cq)
		if err != nil {
			t.Fatalf("rank %d NewCollQ: %v", i, err)
		}
		qs = append(qs, q)
		cqs = append(cqs, cq)
	}
	return qs, cqs
}

func TestCollBarrierGatesOnLastArrival(t *testing.T) {
	const n = 8
	c := newCollCluster(t, n, topo.Spec{})
	qs, cqs := c.join(t)
	postAt := make([]sim.Time, n)
	doneAt := make([]sim.Time, n)
	for i := 0; i < n; i++ {
		i := i
		c.eng.Spawn("rank", func(p *sim.Proc) {
			// Stagger the posts so the barrier actually gates: the last
			// rank arrives 350 us after the first.
			p.Sleep(sim.Time(i) * 50 * sim.Microsecond)
			postAt[i] = p.Now()
			if err := qs[i].PostBarrier(p, uint64(i)); err != nil {
				t.Errorf("rank %d PostBarrier: %v", i, err)
				return
			}
			comp := cqs[i].Wait(p)
			doneAt[i] = p.Now()
			if comp.Op != verbs.OpBarrier || comp.Status != verbs.StatusSuccess || comp.WRID != uint64(i) {
				t.Errorf("rank %d completion %+v", i, comp)
			}
		})
	}
	c.eng.Run()
	var lastPost, firstDone sim.Time
	for i := 0; i < n; i++ {
		if postAt[i] > lastPost {
			lastPost = postAt[i]
		}
		if doneAt[i] == 0 {
			t.Fatalf("rank %d never completed", i)
		}
		if i == 0 || doneAt[i] < firstDone {
			firstDone = doneAt[i]
		}
	}
	if firstDone < lastPost {
		t.Errorf("barrier released at %v before last arrival posted at %v", firstDone, lastPost)
	}
}

func TestCollBcastDeliversRootVector(t *testing.T) {
	const n = 7
	const root = 2
	want := []uint64{11, 22, 33, 44}
	c := newCollCluster(t, n, topo.Spec{})
	qs, cqs := c.join(t)
	got := make([][]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		c.eng.Spawn("rank", func(p *sim.Proc) {
			var vec []uint64
			if i == root {
				vec = want
			}
			if err := qs[i].PostBcast(p, uint64(i), root, vec); err != nil {
				t.Errorf("rank %d PostBcast: %v", i, err)
				return
			}
			comp := cqs[i].Wait(p)
			if comp.Op != verbs.OpBcast || comp.Status != verbs.StatusSuccess {
				t.Errorf("rank %d completion %+v", i, comp)
			}
			got[i] = verbs.UnmarshalVec(comp.Payload)
		})
	}
	c.eng.Run()
	for i := 0; i < n; i++ {
		if len(got[i]) != len(want) {
			t.Fatalf("rank %d got %v, want %v", i, got[i], want)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Errorf("rank %d word %d = %d, want %d", i, j, got[i][j], want[j])
			}
		}
	}
}

// allreduceRun posts one allreduce of vlen words on every rank and
// returns each rank's result. Rank r contributes vec[j] = r*1000 + j.
func allreduceRun(t *testing.T, c *collCluster, vlen int) [][]uint64 {
	t.Helper()
	n := len(c.nics)
	qs, cqs := c.join(t)
	got := make([][]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		c.eng.Spawn("rank", func(p *sim.Proc) {
			vec := make([]uint64, vlen)
			for j := range vec {
				vec[j] = uint64(i*1000 + j)
			}
			if err := qs[i].PostAllreduce(p, uint64(i), vec); err != nil {
				t.Errorf("rank %d PostAllreduce: %v", i, err)
				return
			}
			comp := cqs[i].Wait(p)
			if comp.Op != verbs.OpAllreduce || comp.Status != verbs.StatusSuccess {
				t.Errorf("rank %d completion %+v", i, comp)
			}
			got[i] = verbs.UnmarshalVec(comp.Payload)
		})
	}
	c.eng.Run()
	return got
}

func checkAllreduce(t *testing.T, got [][]uint64, n, vlen int) {
	t.Helper()
	for j := 0; j < vlen; j++ {
		var want uint64
		for r := 0; r < n; r++ {
			want += uint64(r*1000 + j)
		}
		for r := 0; r < n; r++ {
			if len(got[r]) != vlen {
				t.Fatalf("rank %d result length %d, want %d", r, len(got[r]), vlen)
			}
			if got[r][j] != want {
				t.Errorf("rank %d word %d = %d, want %d", r, j, got[r][j], want)
			}
		}
	}
}

func TestCollAllreduceSum(t *testing.T) {
	// 5 ranks, 7 words: the vector does not divide evenly into chunks.
	c := newCollCluster(t, 5, topo.Spec{})
	got := allreduceRun(t, c, 7)
	checkAllreduce(t, got, 5, 7)
}

func TestCollAllreduceOnRingTopology(t *testing.T) {
	// The ring schedule on an actual ring fabric: each step's message is
	// a physical one-hop neighbor transfer.
	c := newCollCluster(t, 6, topo.Spec{Kind: topo.Ring})
	got := allreduceRun(t, c, 12)
	checkAllreduce(t, got, 6, 12)
}

func TestCollReduceScatterChunk(t *testing.T) {
	const n, vlen = 4, 8 // clen = 2
	c := newCollCluster(t, n, topo.Spec{})
	qs, cqs := c.join(t)
	got := make([][]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		c.eng.Spawn("rank", func(p *sim.Proc) {
			vec := make([]uint64, vlen)
			for j := range vec {
				vec[j] = uint64(i*1000 + j)
			}
			if err := qs[i].PostReduceScatter(p, uint64(i), vec); err != nil {
				t.Errorf("rank %d PostReduceScatter: %v", i, err)
				return
			}
			comp := cqs[i].Wait(p)
			got[i] = verbs.UnmarshalVec(comp.Payload)
		})
	}
	c.eng.Run()
	clen := vlen / n
	for r := 0; r < n; r++ {
		ci := (r + 1) % n
		if len(got[r]) != clen {
			t.Fatalf("rank %d chunk length %d, want %d", r, len(got[r]), clen)
		}
		for k := 0; k < clen; k++ {
			j := ci*clen + k
			var want uint64
			for s := 0; s < n; s++ {
				want += uint64(s*1000 + j)
			}
			if got[r][k] != want {
				t.Errorf("rank %d chunk word %d = %d, want %d", r, k, got[r][k], want)
			}
		}
	}
}

func TestCollSingleRankCompletesImmediately(t *testing.T) {
	c := newCollCluster(t, 1, topo.Spec{})
	qs, cqs := c.join(t)
	var comps []verbs.Completion
	c.eng.Spawn("rank", func(p *sim.Proc) {
		for id, post := range []func() error{
			func() error { return qs[0].PostBarrier(p, 0) },
			func() error { return qs[0].PostBcast(p, 1, 0, []uint64{9}) },
			func() error { return qs[0].PostAllreduce(p, 2, []uint64{5, 6}) },
		} {
			if err := post(); err != nil {
				t.Errorf("post %d: %v", id, err)
				return
			}
			comps = append(comps, cqs[0].Wait(p))
		}
	})
	c.eng.Run()
	if len(comps) != 3 {
		t.Fatalf("completed %d ops, want 3", len(comps))
	}
	if v := verbs.UnmarshalVec(comps[2].Payload); len(v) != 2 || v[0] != 5 || v[1] != 6 {
		t.Errorf("single-rank allreduce result %v, want [5 6]", v)
	}
}

// Duplicate every frame in flight: the collective handlers are
// idempotent, so results and completion counts are unchanged.
func TestCollDuplicateFramesHarmless(t *testing.T) {
	const n, vlen = 4, 6
	c := newCollCluster(t, n, topo.Spec{})
	c.fab.Fault = func(fr *fabric.Frame, cnt uint64, now sim.Time) fabric.FaultDecision {
		return fabric.FaultDecision{Duplicate: true}
	}
	got := allreduceRun(t, c, vlen)
	checkAllreduce(t, got, n, vlen)
	var dups uint64
	for _, nic := range c.nics {
		dups += nic.Net.Get("coll.dup-drop")
	}
	if dups == 0 {
		t.Error("no duplicate frames were dropped — fault injection did not engage")
	}
}

// Host CPU stays out of the collective's critical path: each rank's host
// pays one post plus one completion interrupt, regardless of group size.
func TestCollZeroHostWorkBetweenPostAndCompletion(t *testing.T) {
	const n = 16
	c := newCollCluster(t, n, topo.Spec{})
	qs, cqs := c.join(t)
	for i := 0; i < n; i++ {
		i := i
		c.eng.Spawn("rank", func(p *sim.Proc) {
			if err := qs[i].PostBarrier(p, 1); err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			cqs[i].Wait(p)
		})
	}
	c.eng.Run()
	// Budget per host: join (free), post (VerbsPostSendUS), the ISR
	// (HostIRQUS) and the waiter wake (VerbsWakeupUS) — ~9 us. A host
	// that participated in forwarding would burn far more.
	budget := params.US(params.VerbsPostSendUS + params.HostIRQUS + params.VerbsWakeupUS + 2)
	for i, h := range c.hosts {
		if busy := h.BusyTotal(); busy > budget {
			t.Errorf("host %d CPU busy %v, want <= %v (no host work between post and completion)", i, busy, budget)
		}
	}
}

// A crash mid-collective flushes the posted-but-incomplete operation.
func TestCollCrashFlushesPostedOp(t *testing.T) {
	c := newCollCluster(t, 2, topo.Spec{})
	qs, cqs := c.join(t)
	var comp verbs.Completion
	c.eng.Spawn("rank0", func(p *sim.Proc) {
		// Rank 1 never posts, so the barrier can only end by flush.
		if err := qs[0].PostBarrier(p, 77); err != nil {
			t.Errorf("PostBarrier: %v", err)
			return
		}
		comp = cqs[0].Wait(p)
	})
	c.eng.Spawn("fault", func(p *sim.Proc) {
		p.Sleep(1 * sim.Millisecond)
		c.nics[0].Crash()
	})
	c.eng.Run()
	if comp.WRID != 77 || comp.Status != verbs.StatusFlushed || comp.Op != verbs.OpBarrier {
		t.Errorf("flush completion %+v, want WRID 77 flushed barrier", comp)
	}
	// Posting after the crash is refused until restart.
	var postErr error
	c.eng.Spawn("rank0b", func(p *sim.Proc) { postErr = qs[0].PostBarrier(p, 78) })
	c.eng.Run()
	if postErr == nil {
		t.Error("post on crashed adapter succeeded")
	}
}
