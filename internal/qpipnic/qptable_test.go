package qpipnic

import (
	"math/rand"
	"testing"

	"repro/internal/verbs"
)

// TestQPTableModel drives the adapter QP table against a reference map
// with a seeded random workload: inserts across the whole QPN space
// (including attachment-offset and near-wraparound values), deletes,
// lookups of both live and dead QPNs, and occasional crash resets. Every
// step checks the table agrees with the model exactly.
func TestQPTableModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	table := newQPTable()
	model := map[uint32]*qpState{}

	// QPN pool mixing realistic attachment<<16|counter values with the
	// extremes of the space, so index hashing and probe wrap are hit.
	pool := make([]uint32, 0, 512)
	for att := 0; att < 4; att++ {
		for i := 0; i < 120; i++ {
			pool = append(pool, uint32(att)<<16|uint32(16+i))
		}
	}
	pool = append(pool, 0, 1, 0xFFFF, 0x10000, 0xFFFF0010, 0xFFFFFFFF)

	check := func(step int) {
		t.Helper()
		if table.len() != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, table.len(), len(model))
		}
		live := table.liveQPNs(nil)
		if len(live) != len(model) {
			t.Fatalf("step %d: liveQPNs %d entries, model %d", step, len(live), len(model))
		}
		for i, qpn := range live {
			if i > 0 && live[i-1] >= qpn {
				t.Fatalf("step %d: liveQPNs not strictly ascending at %d: %v", step, i, live)
			}
			if _, ok := model[qpn]; !ok {
				t.Fatalf("step %d: liveQPNs reports dead QPN %d", step, qpn)
			}
		}
	}

	for step := 0; step < 20000; step++ {
		qpn := pool[rng.Intn(len(pool))]
		switch op := rng.Intn(100); {
		case op < 45: // put (if not live)
			if _, ok := model[qpn]; !ok {
				qs := &qpState{}
				table.put(qpn, qs)
				model[qpn] = qs
			}
		case op < 75: // del
			table.del(qpn)
			delete(model, qpn)
		case op < 99: // get
			got := table.get(qpn)
			if want := model[qpn]; got != want {
				t.Fatalf("step %d: get(%d) = %p, want %p", step, qpn, got, want)
			}
		default: // crash reset
			table.reset()
			model = map[uint32]*qpState{}
		}
		if step%251 == 0 {
			check(step)
		}
	}
	check(20000)
}

// TestQPTableRecycleNeverAliases checks the free-list invariant directly:
// recycling a dense slot for a new QPN must not leave the old QPN
// resolvable, and the new QPN must resolve to its own state — a stale
// index entry aliasing a recycled slot would hand one connection's TCB to
// another QP.
func TestQPTableRecycleNeverAliases(t *testing.T) {
	table := newQPTable()
	old := &qpState{}
	table.put(100, old)
	table.del(100)
	fresh := &qpState{}
	table.put(200, fresh) // recycles slot 0
	if got := table.get(100); got != nil {
		t.Fatalf("deleted QPN 100 still resolves (%p) after its slot was recycled", got)
	}
	if got := table.get(200); got != fresh {
		t.Fatalf("get(200) = %p, want the freshly put state %p", got, fresh)
	}

	// Same probe chain: two QPNs that collide, delete the first, reuse.
	table.reset()
	a, b := uint32(7), uint32(7+qpTableMinSize) // may or may not collide; exercise anyway
	sa, sb := &qpState{}, &qpState{}
	table.put(a, sa)
	table.put(b, sb)
	table.del(a)
	if got := table.get(b); got != sb {
		t.Fatalf("get(%d) broken by deleting colliding predecessor", b)
	}
	sa2 := &qpState{}
	table.put(a, sa2)
	if got := table.get(a); got != sa2 {
		t.Fatalf("re-put of %d resolves to %p, want %p", a, got, sa2)
	}
}

// TestQPTableChurnBounded runs exhaust/reap cycles: fill the table far
// past its initial size, drain it, and repeat. The index must keep
// resizing correctly under tombstone pressure, and repeated same-size
// cycles must not grow the probe array without bound (the tombstone
// rebuild, not perpetual doubling, absorbs churn).
func TestQPTableChurnBounded(t *testing.T) {
	table := newQPTable()
	const n = 4096
	var slotsAfterFirst int
	for cycle := 0; cycle < 6; cycle++ {
		for i := uint32(0); i < n; i++ {
			table.put(i, &qpState{})
		}
		if table.len() != n {
			t.Fatalf("cycle %d: len %d after fill, want %d", cycle, table.len(), n)
		}
		for i := uint32(0); i < n; i++ {
			table.del(i)
		}
		if table.len() != 0 {
			t.Fatalf("cycle %d: len %d after drain, want 0", cycle, table.len())
		}
		if cycle == 0 {
			slotsAfterFirst = table.slots()
		} else if table.slots() > 2*slotsAfterFirst {
			t.Fatalf("cycle %d: index grew to %d slots (first cycle ended at %d) — churn is leaking index space",
				cycle, table.slots(), slotsAfterFirst)
		}
	}
}

// TestAllocQPNRecycle checks the device-level QPN allocator through the
// verbs API: destroyed QPNs recycle LIFO so churn does not grow the
// number space, a live QPN is never handed out twice across exhaust/reap
// cycles, and a crash wipes the free list so a rebooted adapter never
// reissues a pre-crash QPN.
func TestAllocQPNRecycle(t *testing.T) {
	c := newCluster(t, nil)
	n := c.nics[0]
	scq := verbs.NewCQ(n, 1024)
	rcq := verbs.NewCQ(n, 1024)
	mk := func() *verbs.QP {
		t.Helper()
		qp, err := verbs.NewQP(n, verbs.QPConfig{Transport: verbs.Unreliable, SendCQ: scq, RecvCQ: rcq, SendDepth: 4, RecvDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		return qp
	}

	live := map[uint32]bool{}
	var qps []*verbs.QP
	for i := 0; i < 32; i++ {
		qp := mk()
		if live[qp.QPN] {
			t.Fatalf("AllocQPN reissued live QPN %d", qp.QPN)
		}
		live[qp.QPN] = true
		qps = append(qps, qp)
	}

	// Reap the even-index QPs in creation order; LIFO recycling must
	// replay their QPNs in reverse destruction order.
	var reaped []uint32
	for i := 0; i < len(qps); i += 2 {
		n.DestroyQP(qps[i])
		delete(live, qps[i].QPN)
		reaped = append(reaped, qps[i].QPN)
	}
	for i := len(reaped) - 1; i >= 0; i-- {
		qp := mk()
		if qp.QPN != reaped[i] {
			t.Fatalf("recycle order: got QPN %d, want %d (LIFO)", qp.QPN, reaped[i])
		}
		if live[qp.QPN] {
			t.Fatalf("AllocQPN reissued live QPN %d", qp.QPN)
		}
		live[qp.QPN] = true
	}
	// Free list drained: the next QPN is fresh, not a live one.
	if qp := mk(); live[qp.QPN] {
		t.Fatalf("allocator reissued live QPN %d after draining the free list", qp.QPN)
	}

	// Crash the adapter mid-churn with QPNs sitting on the free list;
	// after restart the allocator must continue from the high-water
	// counter, never reissuing anything issued before the crash.
	victim := mk()
	n.DestroyQP(victim)
	n.Crash()
	n.Restart()
	live[victim.QPN] = true // pre-crash QPN: must NOT come back
	for i := 0; i < 8; i++ {
		qp := mk()
		if live[qp.QPN] {
			t.Fatalf("post-restart AllocQPN reissued pre-crash QPN %d", qp.QPN)
		}
		live[qp.QPN] = true
	}
}
