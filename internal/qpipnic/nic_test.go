package qpipnic

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// cluster is a two-node QPIP testbed: Myrinet fabric, one host CPU and
// PCI bus per node, one QPIP adapter per node.
type cluster struct {
	eng   *sim.Engine
	fab   *fabric.Fabric
	hosts [2]*sim.CPU
	nics  [2]*NIC
}

func newCluster(t *testing.T, tweak func(i int, cfg *Config)) *cluster {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.Config{
		Name:         "myri",
		Bandwidth:    params.MyrinetBandwidth,
		LinkOverhead: params.MyrinetHeaderBytes,
		CutThrough:   true,
		HopLatency:   params.MyrinetHopLatency,
		PropDelay:    params.CableLatency,
	})
	routes := inet.NewTable6()
	c := &cluster{eng: eng, fab: fab}
	for i := 0; i < 2; i++ {
		c.hosts[i] = sim.NewCPU(eng, "host", params.HostClockHz)
		bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
		cfg := Config{
			Name:    "nic",
			Addr:    inet.NodeAddr6(i),
			MTU:     params.MTUQPIP,
			HostCPU: c.hosts[i],
			Bus:     bus,
			Routes:  routes,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		c.nics[i] = New(eng, fab, cfg)
		routes.Add(cfg.Addr, c.nics[i].Attachment())
	}
	return c
}

// rcPair establishes a reliable QP pair: node 0 is the client, node 1 the
// server listening on port.
func (c *cluster) rcPair(t *testing.T, port uint16, depth int) (cli, srv *verbs.QP, scq, rcq [2]*verbs.CQ) {
	t.Helper()
	for i := 0; i < 2; i++ {
		scq[i] = verbs.NewCQ(c.nics[i], 1024)
		rcq[i] = verbs.NewCQ(c.nics[i], 1024)
	}
	var err error
	srv, err = verbs.NewQP(c.nics[1], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: scq[1], RecvCQ: rcq[1], SendDepth: depth, RecvDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	lst, err := c.nics[1].Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Post(srv); err != nil {
		t.Fatal(err)
	}
	cli, err = verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: scq[0], RecvCQ: rcq[0], SendDepth: depth, RecvDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	return cli, srv, scq, rcq
}

func TestConnectEstablishes(t *testing.T) {
	c := newCluster(t, nil)
	cli, srv, _, _ := c.rcPair(t, 7000, 16)
	var cliErr error
	c.eng.Spawn("client", func(p *sim.Proc) {
		cliErr = cli.Connect(p, inet.NodeAddr6(1), 7000)
	})
	c.eng.Run()
	if cliErr != nil {
		t.Fatalf("Connect: %v", cliErr)
	}
	if cli.State() != verbs.QPEstablished || srv.State() != verbs.QPEstablished {
		t.Fatalf("states: cli=%v srv=%v", cli.State(), srv.State())
	}
	if srv.RemoteAddr != inet.NodeAddr6(0) {
		t.Errorf("server learned remote %v", srv.RemoteAddr)
	}
}

func TestConnectNoRouteFails(t *testing.T) {
	c := newCluster(t, nil)
	cq := verbs.NewCQ(c.nics[0], 16)
	qp, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Reliable, SendCQ: cq, RecvCQ: cq})
	if err != nil {
		t.Fatal(err)
	}
	var connErr error
	c.eng.Spawn("client", func(p *sim.Proc) {
		connErr = qp.Connect(p, inet.NodeAddr6(9), 7000)
	})
	c.eng.Run()
	if connErr == nil {
		t.Fatal("connect to unrouted address succeeded")
	}
}

func TestListenPortBusy(t *testing.T) {
	c := newCluster(t, nil)
	if _, err := c.nics[1].Listen(7000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.nics[1].Listen(7000); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestSendReceiveRecords(t *testing.T) {
	c := newCluster(t, nil)
	cli, srv, scq, rcq := c.rcPair(t, 7000, 64)
	msgs := []buf.Buf{buf.Pattern(1, 1), buf.Pattern(1000, 2), buf.Pattern(16000, 3)}

	var got []verbs.Completion
	c.eng.Spawn("server", func(p *sim.Proc) {
		for i := range msgs {
			if err := srv.PostRecv(p, verbs.RecvWR{ID: uint64(100 + i), Capacity: 16 * 1024}); err != nil {
				t.Errorf("PostRecv: %v", err)
			}
		}
		for range msgs {
			got = append(got, rcq[1].Wait(p))
		}
	})
	sendDone := 0
	c.eng.Spawn("client", func(p *sim.Proc) {
		if err := cli.Connect(p, inet.NodeAddr6(1), 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for i, m := range msgs {
			if err := cli.PostSend(p, verbs.SendWR{ID: uint64(i), Payload: m}); err != nil {
				t.Errorf("PostSend: %v", err)
			}
		}
		for range msgs {
			comp := scq[0].Wait(p)
			if comp.Status != verbs.StatusSuccess {
				t.Errorf("send completion status %v", comp.Status)
			}
			if comp.WRID != uint64(sendDone) {
				t.Errorf("send completion order: got %d want %d", comp.WRID, sendDone)
			}
			sendDone++
		}
	})
	c.eng.Run()
	if len(got) != len(msgs) {
		t.Fatalf("received %d records, want %d", len(got), len(msgs))
	}
	for i, comp := range got {
		if comp.Status != verbs.StatusSuccess {
			t.Errorf("recv %d status %v", i, comp.Status)
		}
		if comp.WRID != uint64(100+i) {
			t.Errorf("recv %d consumed WR %d, want %d (in order)", i, comp.WRID, 100+i)
		}
		if !buf.Equal(comp.Payload, msgs[i]) {
			t.Errorf("recv %d payload corrupted", i)
		}
	}
	if sendDone != len(msgs) {
		t.Errorf("sender completed %d sends", sendDone)
	}
}

func TestSendBeforeRecvPostedWaits(t *testing.T) {
	c := newCluster(t, nil)
	cli, srv, scq, rcq := c.rcPair(t, 7000, 16)
	var recvAt, postAt sim.Time
	c.eng.Spawn("client", func(p *sim.Proc) {
		if err := cli.Connect(p, inet.NodeAddr6(1), 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		if err := cli.PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Pattern(4096, 7)}); err != nil {
			t.Errorf("PostSend: %v", err)
		}
		comp := scq[0].Wait(p)
		if comp.Status != verbs.StatusSuccess {
			t.Errorf("send status %v", comp.Status)
		}
	})
	c.eng.Spawn("server", func(p *sim.Proc) {
		// Delay posting: with no posted receive buffer the TCP window is
		// closed and no data may arrive (paper §5.1's dynamic window).
		p.Sleep(2 * sim.Millisecond)
		postAt = p.Now()
		if err := srv.PostRecv(p, verbs.RecvWR{ID: 2, Capacity: 8192}); err != nil {
			t.Errorf("PostRecv: %v", err)
		}
		comp := rcq[1].Wait(p)
		recvAt = p.Now()
		if !buf.Equal(comp.Payload, buf.Pattern(4096, 7)) {
			t.Error("payload corrupted")
		}
	})
	c.eng.Run()
	if recvAt < postAt {
		t.Fatalf("record delivered at %v before WR posted at %v", recvAt, postAt)
	}
	if c.nics[1].Stats().StashedRecords != 0 {
		t.Errorf("record was stashed (%d): window should have held it at the sender",
			c.nics[1].Stats().StashedRecords)
	}
}

func TestUDPSendReceive(t *testing.T) {
	c := newCluster(t, nil)
	cqs := verbs.NewCQ(c.nics[0], 64)
	cqr := verbs.NewCQ(c.nics[1], 64)
	sender, err := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Unreliable, SendCQ: cqs, RecvCQ: cqs})
	if err != nil {
		t.Fatal(err)
	}
	recvr, err := verbs.NewQP(c.nics[1], verbs.QPConfig{Transport: verbs.Unreliable, SendCQ: cqr, RecvCQ: cqr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.BindUDP(5001); err != nil {
		t.Fatal(err)
	}
	if _, err := recvr.BindUDP(5002); err != nil {
		t.Fatal(err)
	}
	payload := buf.Pattern(999, 4)
	var comp verbs.Completion
	c.eng.Spawn("recv", func(p *sim.Proc) {
		if err := recvr.PostRecv(p, verbs.RecvWR{ID: 9, Capacity: 2048}); err != nil {
			t.Errorf("PostRecv: %v", err)
		}
		comp = cqr.Wait(p)
	})
	c.eng.Spawn("send", func(p *sim.Proc) {
		err := sender.PostSend(p, verbs.SendWR{
			ID: 8, Payload: payload,
			RemoteAddr: inet.NodeAddr6(1), RemotePort: 5002,
		})
		if err != nil {
			t.Errorf("PostSend: %v", err)
		}
		sc := cqs.Wait(p)
		if sc.Status != verbs.StatusSuccess || sc.WRID != 8 {
			t.Errorf("send completion %+v", sc)
		}
	})
	c.eng.Run()
	if !buf.Equal(comp.Payload, payload) {
		t.Error("datagram corrupted")
	}
	if comp.RemoteAddr != inet.NodeAddr6(0) || comp.RemotePort != 5001 {
		t.Errorf("source identification: %v:%d", comp.RemoteAddr, comp.RemotePort)
	}
}

func TestUDPNoWRDrops(t *testing.T) {
	c := newCluster(t, nil)
	cqs := verbs.NewCQ(c.nics[0], 64)
	cqr := verbs.NewCQ(c.nics[1], 64)
	sender, _ := verbs.NewQP(c.nics[0], verbs.QPConfig{Transport: verbs.Unreliable, SendCQ: cqs, RecvCQ: cqs})
	recvr, _ := verbs.NewQP(c.nics[1], verbs.QPConfig{Transport: verbs.Unreliable, SendCQ: cqr, RecvCQ: cqr})
	sender.BindUDP(5001)
	recvr.BindUDP(5002)
	c.eng.Spawn("send", func(p *sim.Proc) {
		sender.PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Virtual(100), RemoteAddr: inet.NodeAddr6(1), RemotePort: 5002})
		cqs.Wait(p) // UDP send completes regardless
	})
	c.eng.Run()
	if c.nics[1].Stats().NoWRDrops != 1 {
		t.Errorf("NoWRDrops = %d, want 1", c.nics[1].Stats().NoWRDrops)
	}
	if cqr.Len() != 0 {
		t.Error("completion appeared without a posted WR")
	}
}

func TestMessageTooBigRejected(t *testing.T) {
	c := newCluster(t, nil)
	cli, _, _, _ := c.rcPair(t, 7000, 16)
	var postErr error
	c.eng.Spawn("client", func(p *sim.Proc) {
		if err := cli.Connect(p, inet.NodeAddr6(1), 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		postErr = cli.PostSend(p, verbs.SendWR{ID: 1, Payload: buf.Virtual(c.nics[0].MaxMessage() + 1)})
	})
	c.eng.Run()
	if postErr == nil {
		t.Fatal("oversized message accepted")
	}
}

// pingPong measures the application-to-application round trip for a
// 1-byte message, as Figure 3 defines RTT.
func pingPong(t *testing.T, c *cluster, iters int) sim.Time {
	t.Helper()
	cli, srv, _, rcq := c.rcPair(t, 7000, 64)
	var total sim.Time
	serverReady := false
	c.eng.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < iters+1; i++ {
			if err := srv.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64}); err != nil {
				t.Errorf("srv PostRecv: %v", err)
			}
		}
		serverReady = true
		for i := 0; i < iters; i++ {
			rcq[1].Wait(p)
			if err := srv.PostSend(p, verbs.SendWR{ID: uint64(i), Payload: buf.Virtual(1)}); err != nil {
				t.Errorf("srv PostSend: %v", err)
			}
		}
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		if err := cli.Connect(p, inet.NodeAddr6(1), 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for !serverReady {
			p.Sleep(10 * sim.Microsecond)
		}
		for i := 0; i < iters+1; i++ {
			if err := cli.PostRecv(p, verbs.RecvWR{ID: uint64(i), Capacity: 64}); err != nil {
				t.Errorf("cli PostRecv: %v", err)
			}
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := cli.PostSend(p, verbs.SendWR{ID: uint64(i), Payload: buf.Virtual(1)}); err != nil {
				t.Errorf("cli PostSend: %v", err)
			}
			rcq[0].Wait(p)
		}
		total = p.Now() - start
	})
	c.eng.Run()
	return sim.Time(int64(total) / int64(iters))
}

func TestTCPRTTInPaperRange(t *testing.T) {
	c := newCluster(t, nil)
	rtt := pingPong(t, c, 20)
	// Figure 3 neighborhood: QPIP TCP RTT ~90-115 us depending on
	// checksum placement. Accept a generous band; exact values are the
	// bench harness's job.
	if rtt < 60*sim.Microsecond || rtt > 160*sim.Microsecond {
		t.Errorf("TCP 1-byte RTT = %v, expected ~90-120 us", rtt)
	}
	if c.nics[0].Stats().Retransmissions != 0 {
		t.Errorf("retransmissions on a lossless fabric: %d", c.nics[0].Stats().Retransmissions)
	}
}

func TestFirmwareChecksumSlowsRTT(t *testing.T) {
	fast := pingPong(t, newCluster(t, nil), 10)
	slowC := newCluster(t, func(i int, cfg *Config) { cfg.Checksum = ChecksumFirmware })
	slow := pingPong(t, slowC, 10)
	if slow <= fast {
		t.Errorf("firmware checksum RTT %v not slower than emulated hw %v", slow, fast)
	}
}

func TestOccupancyStagesNearTable2(t *testing.T) {
	c := newCluster(t, nil)
	pingPong(t, c, 20)
	tx := c.nics[0].TxData
	cases := []struct {
		stage string
		want  float64
	}{
		{"Doorbell Process", params.TxDoorbellProcUS},
		{"Schedule", params.TxScheduleUS},
		{"Get WR", params.TxGetWRUS},
		{"Build TCP Hdr", params.TxBuildTCPHdrUS},
		{"Build IP Hdr", params.TxBuildIPHdrUS},
		{"Send", params.TxSendUS},
		{"Update", params.TxUpdateUS},
	}
	for _, cse := range cases {
		got := tx.Mean(cse.stage)
		if got < cse.want*0.95 || got > cse.want*1.3 {
			t.Errorf("Tx %q mean = %.2f us, want ~%.2f", cse.stage, got, cse.want)
		}
	}
	// Get Data includes the (tiny) 1-byte DMA.
	if got := tx.Mean("Get Data"); got < params.TxGetDataUS*0.95 || got > params.TxGetDataUS+1.0 {
		t.Errorf("Tx Get Data mean = %.2f us", got)
	}
	rxAck := c.nics[0].RxAck // client receives pure acks? server sends data back; client rx has data too
	_ = rxAck
	rx := c.nics[1].RxData
	if got := rx.Mean("TCP Parse"); got < params.RxTCPParseDataUS*0.95 || got > params.RxTCPParseDataUS*1.1 {
		t.Errorf("Rx TCP Parse (data) mean = %.2f us, want ~%.1f", got, params.RxTCPParseDataUS)
	}
}

func TestBulkThroughputAndHostUtilization(t *testing.T) {
	c := newCluster(t, nil)
	cli, srv, scq, rcq := c.rcPair(t, 7000, 128)
	const msgSize = 16000
	const totalBytes = 4 << 20
	nMsgs := totalBytes / msgSize
	var start, end sim.Time
	c.eng.Spawn("server", func(p *sim.Proc) {
		posted := 0
		for posted < nMsgs && posted < 100 {
			srv.PostRecv(p, verbs.RecvWR{ID: uint64(posted), Capacity: msgSize})
			posted++
		}
		for got := 0; got < nMsgs; got++ {
			rcq[1].Wait(p)
			if posted < nMsgs {
				srv.PostRecv(p, verbs.RecvWR{ID: uint64(posted), Capacity: msgSize})
				posted++
			}
		}
		end = p.Now()
	})
	c.eng.Spawn("client", func(p *sim.Proc) {
		if err := cli.Connect(p, inet.NodeAddr6(1), 7000); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		start = p.Now()
		inFlight := 0
		sent := 0
		for sent < nMsgs {
			for inFlight < 64 && sent < nMsgs {
				if err := cli.PostSend(p, verbs.SendWR{ID: uint64(sent), Payload: buf.Virtual(msgSize)}); err != nil {
					t.Errorf("PostSend: %v", err)
					return
				}
				sent++
				inFlight++
			}
			scq[0].Wait(p)
			inFlight--
		}
		for inFlight > 0 {
			scq[0].Wait(p)
			inFlight--
		}
	})
	c.eng.Run()
	dur := (end - start).Seconds()
	mbps := float64(totalBytes) / 1e6 / dur
	// Paper Figure 4: 75.6 MB/s at 16 KB native MTU with <1% host CPU.
	if mbps < 50 || mbps > 110 {
		t.Errorf("bulk throughput %.1f MB/s, expected ~60-90", mbps)
	}
	util := c.hosts[0].Utilization()
	if util > 0.05 {
		t.Errorf("sender host CPU utilization %.2f%%, expected ~<1%%", util*100)
	}
	t.Logf("bulk: %.1f MB/s, host util %.2f%%, nic util %.1f%%",
		mbps, util*100, c.nics[0].CPU().Utilization()*100)
}
