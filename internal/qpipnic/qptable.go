package qpipnic

import "sort"

// qpTable is the adapter's QP state table: hashed QPN lookup over a dense
// entry store with free-slot recycling. The seed's flat Go map worked at
// hundreds of QPs but hid the SRAM story the paper cares about — the table
// is a fixed-layout structure in adapter memory (an open-addressing index
// of QPN→slot plus a dense array of per-QP state), so lookup cost and
// footprint are explicit and per-slot accounting is exact. Iteration is
// never over hash order: callers that enumerate (crash teardown,
// diagnostics) go through liveQPNs, which returns sorted QPNs — the
// maporder determinism rule, enforced structurally.
type qpTable struct {
	// index is the open-addressing probe array: 0 = empty, -1 = tombstone,
	// otherwise slot+1 into entries. Its length is a power of two.
	index []int32
	mask  uint32
	// entries is the dense state store; freed slots recycle LIFO.
	entries []qpEntry
	free    []int32
	count   int
	tombs   int
}

type qpEntry struct {
	qpn uint32
	qs  *qpState
}

const qpTableMinSize = 64

// hashQPN mixes the QPN (attachment id in the high bits, small counter in
// the low bits) so sequential allocations spread across the index.
func hashQPN(qpn uint32) uint32 {
	h := qpn * 0x9e3779b1
	h ^= h >> 16
	return h
}

func newQPTable() *qpTable {
	t := &qpTable{}
	t.index = make([]int32, qpTableMinSize)
	t.mask = qpTableMinSize - 1
	return t
}

// get resolves a QPN to its state entry, or nil.
//
//qpip:hotpath
func (t *qpTable) get(qpn uint32) *qpState {
	h := hashQPN(qpn) & t.mask
	for {
		v := t.index[h]
		if v == 0 {
			return nil
		}
		if v > 0 && t.entries[v-1].qpn == qpn {
			return t.entries[v-1].qs
		}
		h = (h + 1) & t.mask
	}
}

// put inserts a new entry. QPNs are unique by construction (AllocQPN), so
// put never replaces.
func (t *qpTable) put(qpn uint32, qs *qpState) {
	if (t.count+t.tombs+1)*4 >= len(t.index)*3 {
		t.rehash(len(t.index) * 2)
	}
	var slot int32
	if k := len(t.free); k > 0 {
		slot = t.free[k-1]
		t.free = t.free[:k-1]
		t.entries[slot] = qpEntry{qpn: qpn, qs: qs}
	} else {
		slot = int32(len(t.entries))
		t.entries = append(t.entries, qpEntry{qpn: qpn, qs: qs})
	}
	t.insertIndex(qpn, slot)
	t.count++
}

func (t *qpTable) insertIndex(qpn uint32, slot int32) {
	h := hashQPN(qpn) & t.mask
	for {
		v := t.index[h]
		if v <= 0 {
			if v == -1 {
				t.tombs--
			}
			t.index[h] = slot + 1
			return
		}
		h = (h + 1) & t.mask
	}
}

// del removes a QPN, recycling its dense slot.
func (t *qpTable) del(qpn uint32) {
	h := hashQPN(qpn) & t.mask
	for {
		v := t.index[h]
		if v == 0 {
			return
		}
		if v > 0 && t.entries[v-1].qpn == qpn {
			slot := v - 1
			t.index[h] = -1
			t.tombs++
			t.entries[slot] = qpEntry{}
			t.free = append(t.free, slot)
			t.count--
			// A tomb-heavy index probes long even at low occupancy;
			// rebuild in place once tombstones dominate.
			if t.tombs*2 >= len(t.index) {
				t.rehash(len(t.index))
			}
			return
		}
		h = (h + 1) & t.mask
	}
}

func (t *qpTable) rehash(size int) {
	for size*4 < (t.count+1)*6 {
		size *= 2
	}
	t.index = make([]int32, size)
	t.mask = uint32(size - 1)
	t.tombs = 0
	for slot, e := range t.entries {
		if e.qs != nil {
			t.insertIndex(e.qpn, int32(slot))
		}
	}
}

// len reports live entries.
func (t *qpTable) len() int { return t.count }

// reset wipes the table (adapter crash: SRAM contents are gone).
func (t *qpTable) reset() {
	t.index = make([]int32, qpTableMinSize)
	t.mask = qpTableMinSize - 1
	t.entries = t.entries[:0]
	t.free = t.free[:0]
	t.count = 0
	t.tombs = 0
}

// liveQPNs appends the live QPNs to dst in ascending order — the only
// enumeration the table offers, so iteration order can never depend on
// hash layout.
func (t *qpTable) liveQPNs(dst []uint32) []uint32 {
	for _, e := range t.entries {
		if e.qs != nil {
			dst = append(dst, e.qpn)
		}
	}
	// entries is creation/recycle order; sort for the deterministic
	// contract.
	sortQPNs(dst)
	return dst
}

// slotBytes reports the index footprint in SRAM slots (occupied or not:
// the probe array is allocated storage).
func (t *qpTable) slots() int { return len(t.index) }

func sortQPNs(a []uint32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
