package qpipnic

// The collective engine (DESIGN §15): barrier, broadcast and ring
// reductions executed entirely by adapter firmware. The host's single
// doorbell (verbs.CollQ.Post*) hands the WR to the adapter; from there
// every gather, release, forward and combine step runs on the 133 MHz
// firmware processor and the fabric, with the host touched exactly once
// more — the completion interrupt. This is the natural endpoint of the
// paper's offload argument: once the whole transport lives on the NIC,
// multi-party communication patterns can too, removing per-hop host
// wakeups from the critical path.
//
// Schedules:
//
//   - barrier: a binomial tree rooted at rank 0 (parent (r-1)/2, children
//     2r+1, 2r+2). ARRIVE messages flow up once a rank has posted and
//     heard from both children; the root then floods RELEASE down, and
//     each rank completes on release (the root on its own gather).
//   - bcast: the same tree rotated so the WR's root is rank 0; DATA
//     flows down, each rank forwards on first receipt and completes once
//     it both holds the data and has posted.
//   - allreduce: the standard ring schedule — size-1 reduce-scatter
//     steps (at step s rank r sends chunk (r-s) mod size and combines
//     arriving chunk (r-s-1) mod size), then size-1 allgather steps
//     (sends (r+1-s') mod size, stores (r-s') mod size).
//     reduce-scatter runs only the first phase.
//
// Determinism and fault tolerance: operations pair by a per-group
// sequence number (posting order, the collective calling convention), so
// messages arriving before the local post wait in SRAM — ARRIVE/DATA
// apply immediately to op state, ring steps park in a per-step stash and
// are consumed strictly in step order. Every handler is idempotent
// (fabric fault injection may duplicate frames): arrivals are flags,
// data/release are first-wins, stale ring steps are dropped. Drops are
// NOT tolerated — there is no collective retransmit layer — so chaos
// plans over collectives are restricted to delay and duplication.
// Op state is keyed by sequence and never iterated (maporder), and never
// deleted: a late duplicate of a finished op must find the done flag, not
// a fresh zero-state op.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// Collective message kinds.
const (
	collArrive  uint8 = iota // barrier gather, child -> parent
	collRelease              // barrier release, parent -> child
	collData                 // bcast payload, parent -> child
	collRing                 // ring reduction step, rank r -> r+1
)

// collMsg is one collective wire message, carried as a fabric payload
// (demultiplexed in receiveFrame ahead of the inter-network stack).
type collMsg struct {
	group uint16
	seq   uint32 // per-group op sequence (posting order)
	kind  uint8
	root  int // bcast tree rotation (collData)
	step  int // ring step index (collRing)
	from  int // sender rank
	vec   []uint64
}

// collWireBytes is the on-wire size of a collective message: a 16-byte
// control header, 8 bytes per payload word, and the Myrinet route/CRC
// framing every packet carries.
func collWireBytes(words int) int {
	return 16 + 8*words + params.MyrinetHeaderBytes
}

// collGroup is the adapter-resident state of one group membership.
type collGroup struct {
	id      uint16
	rank    int
	cq      *verbs.CQ
	atts    []int // fabric attachment per rank
	nextSeq uint32
	ops     map[uint32]*collOp // keyed access only, never iterated
}

func (g *collGroup) size() int { return len(g.atts) }

// collOp is one collective operation's FSM state. Created on first touch
// (local post or first message), retained forever so duplicate frames of
// a finished op hit the done flag.
type collOp struct {
	seq    uint32
	posted bool
	done   bool
	wr     verbs.CollWR

	// Barrier tree state.
	arrived [2]bool // per-child ARRIVE flags
	upSent  bool

	// Bcast state.
	hasData bool
	data    []uint64

	// Ring state.
	vec      []uint64 // working vector, zero-padded to size*clen words
	vlen     int      // original vector length
	clen     int      // chunk length in words
	nextStep int
	stash    map[int][]uint64 // step -> parked chunk; keyed access only
}

func (g *collGroup) op(seq uint32) *collOp {
	o := g.ops[seq]
	if o == nil {
		o = &collOp{seq: seq, stash: make(map[int][]uint64)}
		g.ops[seq] = o
	}
	return o
}

func collMod(a, n int) int { return ((a % n) + n) % n }

// collChildren reports rank r's children in the tree rotated so root is
// rank 0 (virtual rank vr = (r-root) mod size, children 2vr+1, 2vr+2).
func collChildren(r, root, size int) []int {
	vr := collMod(r-root, size)
	var out []int
	for _, vc := range []int{2*vr + 1, 2*vr + 2} {
		if vc < size {
			out = append(out, collMod(vc+root, size))
		}
	}
	return out
}

// collParent reports rank r's parent in the rotated tree; r == root has
// none (returns -1).
func collParent(r, root, size int) int {
	vr := collMod(r-root, size)
	if vr == 0 {
		return -1
	}
	return collMod((vr-1)/2+root, size)
}

// collChildIndex maps a child rank back to its 0/1 slot under parent r.
func collChildIndex(r, child, root, size int) int {
	for i, c := range collChildren(r, root, size) {
		if c == child {
			return i
		}
	}
	return -1
}

// ---- verbs.CollDevice implementation (management + doorbell FSM). ----

// JoinColl implements verbs.CollDevice: register this adapter as one
// rank. Routes are resolved once here, so the datapath FSM never touches
// the address table. Re-joining a group id replaces the membership (the
// post-crash recovery path).
func (n *NIC) JoinColl(group uint16, rank int, members []inet.Addr6, cq *verbs.CQ) error {
	if n.down {
		return verbs.ErrNICDown
	}
	n.mgmtCost()
	atts := make([]int, len(members))
	for i, addr := range members {
		att, err := n.cfg.Routes.Lookup(addr)
		if err != nil {
			return fmt.Errorf("%w: collective member %d (%v)", verbs.ErrNoRoute, i, addr)
		}
		atts[i] = att
	}
	n.collGroups[group] = &collGroup{
		id:   group,
		rank: rank,
		cq:   cq,
		atts: atts,
		ops:  make(map[uint32]*collOp),
	}
	return nil
}

// PostColl implements verbs.CollDevice: one PIO doorbell write carries
// the WR notification across the bus; the firmware picks the WR up on
// the other side. The sequence number is claimed synchronously (it is
// the WR's position in this rank's posting order).
func (n *NIC) PostColl(group uint16, wr verbs.CollWR) error {
	if n.down {
		return verbs.ErrNICDown
	}
	g := n.collGroups[group]
	if g == nil {
		return errors.New("qpipnic: collective group not joined")
	}
	switch wr.Op {
	case verbs.OpBarrier, verbs.OpBcast, verbs.OpAllreduce, verbs.OpReduceScatter:
	default:
		return fmt.Errorf("%w: op %d is not a collective", verbs.ErrNotSupported, wr.Op)
	}
	seq := g.nextSeq
	g.nextSeq++
	n.cfg.Bus.PIOWrite("doorbell", func() {
		if n.down || n.collGroups[group] != g {
			return // crashed (or re-joined) while the write was in flight
		}
		n.collStage("coll.post", params.US(params.CollPostUS), func() {
			n.collPost(g, seq, wr)
		})
	})
	return nil
}

// collStage charges the firmware processor one collective FSM stage and
// records it in the Coll occupancy table.
func (n *NIC) collStage(name string, d sim.Time, fn func()) {
	n.Coll.Add(name, d)
	n.cpu.Do(d, name, fn)
}

// collPost consumes a collective WR on the firmware side.
func (n *NIC) collPost(g *collGroup, seq uint32, wr verbs.CollWR) {
	op := g.op(seq)
	if op.posted || op.done {
		return
	}
	op.posted = true
	op.wr = wr
	size := g.size()
	switch wr.Op {
	case verbs.OpBarrier:
		if size == 1 {
			n.collComplete(g, op, nil)
			return
		}
		n.collBarrierCheck(g, op)
	case verbs.OpBcast:
		if size == 1 || g.rank == wr.Root {
			op.hasData, op.data = true, wr.Vec
			for _, c := range collChildren(g.rank, wr.Root, size) {
				n.collSend(g, c, &collMsg{group: g.id, seq: seq, kind: collData,
					root: wr.Root, from: g.rank, vec: wr.Vec})
			}
			n.collComplete(g, op, wr.Vec)
			return
		}
		if op.hasData {
			// The tree delivered before we posted; forwarding already
			// happened on arrival.
			n.collComplete(g, op, op.data)
		}
	case verbs.OpAllreduce, verbs.OpReduceScatter:
		op.vlen = len(wr.Vec)
		if size == 1 {
			n.collComplete(g, op, wr.Vec)
			return
		}
		op.clen = (op.vlen + size - 1) / size
		if op.clen == 0 {
			op.clen = 1
		}
		op.vec = make([]uint64, size*op.clen)
		copy(op.vec, wr.Vec)
		n.collRingSend(g, op, 0)
		n.collRingDrain(g, op)
	}
}

// ---- receive FSM extension. ----

// receiveColl handles a collective frame (called from receiveFrame; the
// adapter is known to be up). One FSM step is charged per message; ring
// combines add the per-word reduce cost.
func (n *NIC) receiveColl(m *collMsg) {
	g := n.collGroups[m.group]
	if g == nil {
		n.Net.Add("coll.unknown-group", 1)
		return
	}
	d := params.US(params.CollStepUS)
	if m.kind == collRing {
		d += params.NICCycles(params.CollReduceCyclesPerWord * float64(len(m.vec)))
	}
	n.collStage("coll.step", d, func() {
		if n.down || n.collGroups[m.group] != g {
			return
		}
		n.collDispatch(g, g.op(m.seq), m)
	})
}

func (n *NIC) collDispatch(g *collGroup, op *collOp, m *collMsg) {
	switch m.kind {
	case collArrive:
		i := collChildIndex(g.rank, m.from, 0, g.size())
		if i < 0 || op.arrived[i] {
			n.Net.Add("coll.dup-drop", 1)
			return
		}
		op.arrived[i] = true
		n.collBarrierCheck(g, op)
	case collRelease:
		n.collBarrierRelease(g, op)
	case collData:
		if op.hasData {
			n.Net.Add("coll.dup-drop", 1)
			return
		}
		op.hasData, op.data = true, m.vec
		// Forward down the tree immediately — offload means the data
		// keeps moving whether or not this rank's host posted yet.
		for _, c := range collChildren(g.rank, m.root, g.size()) {
			n.collSend(g, c, &collMsg{group: g.id, seq: m.seq, kind: collData,
				root: m.root, from: g.rank, vec: m.vec})
		}
		if op.posted {
			n.collComplete(g, op, op.data)
		}
	case collRing:
		if op.done || m.step < op.nextStep {
			n.Net.Add("coll.dup-drop", 1)
			return
		}
		if _, dup := op.stash[m.step]; dup {
			n.Net.Add("coll.dup-drop", 1)
			return
		}
		op.stash[m.step] = m.vec
		if op.posted {
			n.collRingDrain(g, op)
		}
	}
}

// ---- barrier. ----

// collBarrierCheck sends this rank's ARRIVE up (or, at the root, starts
// the release wave) once the local post and both children's arrivals are
// in. upSent makes re-checks from duplicate arrivals harmless.
func (n *NIC) collBarrierCheck(g *collGroup, op *collOp) {
	if op.upSent || !op.posted {
		return
	}
	for i := range collChildren(g.rank, 0, g.size()) {
		if !op.arrived[i] {
			return
		}
	}
	op.upSent = true
	if p := collParent(g.rank, 0, g.size()); p >= 0 {
		n.collSend(g, p, &collMsg{group: g.id, seq: op.seq, kind: collArrive, from: g.rank})
		return
	}
	n.collBarrierRelease(g, op)
}

// collBarrierRelease floods RELEASE down the tree and completes the local
// barrier; first-wins via the done flag.
func (n *NIC) collBarrierRelease(g *collGroup, op *collOp) {
	if op.done {
		n.Net.Add("coll.dup-drop", 1)
		return
	}
	for _, c := range collChildren(g.rank, 0, g.size()) {
		n.collSend(g, c, &collMsg{group: g.id, seq: op.seq, kind: collRelease, from: g.rank})
	}
	n.collComplete(g, op, nil)
}

// ---- ring reduction. ----

// collRingSteps is the schedule length: both phases for allreduce, the
// reduce-scatter phase alone for OpReduceScatter.
func collRingSteps(op verbs.Op, size int) int {
	if op == verbs.OpAllreduce {
		return 2 * (size - 1)
	}
	return size - 1
}

// collRingChunkOut is the chunk index rank r transmits at step s.
func collRingChunkOut(r, s, size int) int {
	if s < size-1 {
		return collMod(r-s, size) // reduce-scatter phase
	}
	return collMod(r+1-(s-(size-1)), size) // allgather phase
}

// collRingSend emits rank r's step-s message to its ring successor.
func (n *NIC) collRingSend(g *collGroup, op *collOp, s int) {
	ci := collRingChunkOut(g.rank, s, g.size())
	chunk := append([]uint64(nil), op.vec[ci*op.clen:(ci+1)*op.clen]...)
	n.collSend(g, collMod(g.rank+1, g.size()),
		&collMsg{group: g.id, seq: op.seq, kind: collRing, step: s, from: g.rank, vec: chunk})
}

// collRingDrain consumes parked steps strictly in order: combine (or
// store) the arriving chunk, emit the next step's message, repeat until
// the stash runs dry or the schedule completes.
func (n *NIC) collRingDrain(g *collGroup, op *collOp) {
	size := g.size()
	total := collRingSteps(op.wr.Op, size)
	for {
		chunk, ok := op.stash[op.nextStep]
		if !ok {
			return
		}
		delete(op.stash, op.nextStep)
		s := op.nextStep
		if s < size-1 {
			ci := collMod(g.rank-s-1, size)
			dst := op.vec[ci*op.clen : (ci+1)*op.clen]
			for i, w := range chunk {
				dst[i] += w
			}
		} else {
			ci := collMod(g.rank-(s-(size-1)), size)
			copy(op.vec[ci*op.clen:(ci+1)*op.clen], chunk)
		}
		op.nextStep++
		if op.nextStep < total {
			n.collRingSend(g, op, op.nextStep)
			continue
		}
		if op.wr.Op == verbs.OpAllreduce {
			n.collComplete(g, op, op.vec[:op.vlen])
		} else {
			ci := collMod(g.rank+1, size)
			n.collComplete(g, op, op.vec[ci*op.clen:(ci+1)*op.clen])
		}
		return
	}
}

// ---- completion and transmit. ----

// collComplete finishes the local operation: one host notification
// through the lightweight interrupt path carries the completion (and
// result vector) to the bound CQ. The done flag also fences duplicate
// frames of a finished op.
func (n *NIC) collComplete(g *collGroup, op *collOp, result []uint64) {
	if op.done {
		return
	}
	op.done = true
	n.Net.Add("coll.complete", 1)
	comp := verbs.Completion{
		QPN:     0x80000000 | uint32(g.id),
		WRID:    op.wr.ID,
		Op:      op.wr.Op,
		Status:  verbs.StatusSuccess,
		ByteLen: 8 * len(result),
		Payload: verbs.MarshalVec(result),
	}
	cq := g.cq
	n.notifyHost(func() { cq.Push(comp) })
}

// collSend injects one collective message into the fabric. The firmware
// already charged the stage that built it; the frame serializes on the
// adapter's link like any other transmit.
func (n *NIC) collSend(g *collGroup, to int, m *collMsg) {
	n.Net.Add("coll.msgs", 1)
	n.fab.Send(fabric.NewFrame(n.att, g.atts[to], collWireBytes(len(m.vec)), m), nil)
}

// crashColl wipes the collective engine's SRAM state on adapter crash:
// undone posted operations flush to their CQs (group ids ascending,
// sequences ascending — deterministic like the QP flush order), then the
// group table empties. Hosts re-join groups after Restart.
func (n *NIC) crashColl() {
	gids := make([]int, 0, len(n.collGroups))
	for gid := range n.collGroups {
		gids = append(gids, int(gid))
	}
	sort.Ints(gids)
	for _, gid := range gids {
		g := n.collGroups[uint16(gid)]
		for seq := uint32(0); seq < g.nextSeq; seq++ {
			op := g.ops[seq]
			if op == nil || !op.posted || op.done {
				continue
			}
			op.done = true
			comp := verbs.Completion{
				QPN:    0x80000000 | uint32(g.id),
				WRID:   op.wr.ID,
				Op:     op.wr.Op,
				Status: verbs.StatusFlushed,
			}
			cq := g.cq
			n.notifyHost(func() { cq.Push(comp) })
		}
	}
	n.collGroups = make(map[uint16]*collGroup)
}
