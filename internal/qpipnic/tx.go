package qpipnic

import (
	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/udp"
	"repro/internal/verbs"
	"repro/internal/wire"
)

// This file is the schedule/transmit FSM (paper §3.1, Figure 2 left): a
// single scheduler loop that services one work item at a time — fetch WR,
// fetch data, build TCP/UDP and IP headers, inject, update state. The
// prototype's loop did not overlap the network send DMA with the next
// item, which is what bounds its large-MTU throughput; Config.PipelinedTX
// flips that for the ablation bench.

// step is one stage of a firmware chain; it must call next exactly once.
type step func(next func())

// chain runs steps sequentially, then done (which may be nil).
func chain(steps []step, done func()) {
	i := 0
	var run func()
	run = func() {
		if i >= len(steps) {
			if done != nil {
				done()
			}
			return
		}
		s := steps[i]
		i++
		s(run)
	}
	run()
}

// cpuStage charges the firmware CPU for a fixed-cost stage and records it.
func (n *NIC) cpuStage(set *trace.Stages, name string, us float64) step {
	return func(next func()) {
		d := params.US(us)
		set.Add(name, d)
		n.cpu.Do(d, name, next)
	}
}

// dmaStage moves payload across the PCI bus after a fixed CPU setup cost.
// The recorded stage time is the stage's own service time (CPU + DMA
// transfer), excluding queueing behind unrelated bus traffic — the
// quantity the paper's per-stage cycle counts correspond to.
func (n *NIC) dmaStage(set *trace.Stages, name string, us float64, bytes int) step {
	return func(next func()) {
		dma := sim.Time(float64(bytes) * 1e9 / params.LANaiDMABandwidth)
		set.Add(name, params.US(us)+dma)
		n.cpu.Do(params.US(us), name, func() {
			n.cfg.Bus.BurstAt(bytes, params.LANaiDMABandwidth, name+".dma", next)
		})
	}
}

// checksumStage charges the firmware checksum loop when the adapter runs
// in firmware-checksum mode.
func (n *NIC) checksumStage(set *trace.Stages, bytes int) step {
	return func(next func()) {
		if n.cfg.Checksum != ChecksumFirmware {
			next()
			return
		}
		d := params.NICCycles(params.FirmwareChecksumCyclesPerByte * float64(bytes))
		set.Add("Checksum (fw)", d)
		n.cpu.Do(d, "fw-checksum", next)
	}
}

// txWork is one scheduler queue entry.
type txWork struct {
	qs *qpState
	// seg, when non-nil, is a ready TCP segment (ack, window-opened data,
	// retransmission). Otherwise the work item consumes one posted WR.
	seg *tcp.Segment
}

// enqueueTx adds work and kicks the scheduler.
func (n *NIC) enqueueTx(w txWork) {
	n.txQ = append(n.txQ, w)
	n.kickTx()
}

// kickTx runs the scheduler if idle.
func (n *NIC) kickTx() {
	if n.txBusy || len(n.txQ) == 0 {
		return
	}
	n.txBusy = true
	w := n.txQ[0]
	n.txQ = n.txQ[1:]
	n.runTxWork(w, func() {
		n.txBusy = false
		n.kickTx()
	})
}

// onDoorbell is the doorbell FSM wakeup: drain the FIFO, mark QPs.
func (n *NIC) onDoorbell() {
	for {
		tok, ok := n.db.Pop()
		if !ok {
			return
		}
		qs := n.qps[uint32(tok)]
		if qs == nil {
			continue
		}
		qs.pendingWRs++
		n.enqueueTx(txWork{qs: qs})
	}
}

// runTxWork executes one scheduler item.
func (n *NIC) runTxWork(w txWork, done func()) {
	if w.seg != nil {
		n.sendSegment(w.qs, w.seg, done)
		return
	}
	n.consumeSendWR(w.qs, done)
}

// consumeSendWR processes one posted send WR: Doorbell Process, Schedule,
// Get WR, then hand the message to the transport.
func (n *NIC) consumeSendWR(qs *qpState, done func()) {
	if qs.pendingWRs <= 0 || n.qps[qs.qp.QPN] == nil {
		done()
		return
	}
	qs.pendingWRs--
	set := n.TxData
	chain([]step{
		n.cpuStage(set, "Doorbell Process", params.TxDoorbellProcUS),
		n.cpuStage(set, "Schedule", params.TxScheduleUS),
		n.cpuStage(set, "Get WR", params.TxGetWRUS),
	}, func() {
		wr, ok := qs.qp.TakeSendWR()
		if !ok {
			done()
			return
		}
		if qs.conn != nil {
			n.sendTCPMessage(qs, wr, done)
		} else {
			n.sendUDPMessage(qs, wr, done)
		}
	})
}

// sendTCPMessage feeds one message into the TCB; segments the window
// admits transmit inline.
func (n *NIC) sendTCPMessage(qs *qpState, wr verbs.SendWR, done func()) {
	now := int64(n.eng.Now())
	qs.sendIDs = append(qs.sendIDs, wr.ID)
	acts, err := qs.conn.Send(wr.Payload, now)
	if err != nil {
		qs.sendIDs = qs.sendIDs[:len(qs.sendIDs)-1]
		qs.qp.CompleteSend(wr.ID, verbs.StatusRemoteError, 0)
		done()
		return
	}
	n.syncTimer(qs)
	n.handleActionsChain(qs, acts, done)
}

// sendUDPMessage transmits one unreliable datagram. "As soon as a UDP
// message is sent, the associated send WR is marked as complete"
// (paper §3).
func (n *NIC) sendUDPMessage(qs *qpState, wr verbs.SendWR, done func()) {
	att, err := n.cfg.Routes.Lookup(wr.RemoteAddr)
	if err != nil {
		n.stats.NoRouteDrops++
		qs.qp.CompleteSend(wr.ID, verbs.StatusRemoteError, 0)
		done()
		return
	}
	set := n.TxData
	n.stats.UDPSends++
	l4 := udp.Marshal6(n.cfg.Addr, wr.RemoteAddr, qs.localPort, wr.RemotePort, wr.Payload)
	pkt := &wire.Packet{
		IPHdr: inet.Marshal6(&inet.Header6{
			PayloadLength: uint16(len(l4) + wr.Payload.Len()),
			NextHeader:    inet.ProtoUDP,
			HopLimit:      inet.DefaultHopLimit,
			Src:           n.cfg.Addr,
			Dst:           wr.RemoteAddr,
		}),
		L4Hdr:   l4,
		Payload: wr.Payload,
	}
	chain([]step{
		n.dmaStage(set, "Get Data", params.TxGetDataUS, wr.Payload.Len()),
		n.cpuStage(set, "Build UDP Hdr", params.TxBuildUDPHdrUS),
		n.cpuStage(set, "Build IP Hdr", params.TxBuildIPHdrUS),
		n.mediaXmt(set, att, pkt),
		n.cpuStage(set, "Update", params.TxUpdateUS),
	}, func() {
		qs.qp.CompleteSend(wr.ID, verbs.StatusSuccess, wr.Payload.Len())
		done()
	})
}

// sendSegment transmits one ready TCP segment (scheduler path for acks,
// retransmissions and window-opened data).
func (n *NIC) sendSegment(qs *qpState, seg *tcp.Segment, done func()) {
	isData := seg.Payload.Len() > 0
	set := n.TxAck
	if isData {
		set = n.TxData
		n.stats.DataSends++
	} else {
		n.stats.AckSends++
	}

	// Build the real headers. The transmit-side transport checksum is
	// computed by the DMA engine hardware (paper §4.1), so it costs the
	// firmware nothing here.
	l4 := seg.MarshalHeader()
	tcp.SetChecksum(l4, inet.TransportChecksum6(n.cfg.Addr, qs.remoteAddr, inet.ProtoTCP, l4, seg.Payload))
	pkt := &wire.Packet{
		IPHdr: inet.Marshal6(&inet.Header6{
			PayloadLength: uint16(len(l4) + seg.Payload.Len()),
			NextHeader:    inet.ProtoTCP,
			HopLimit:      inet.DefaultHopLimit,
			Src:           n.cfg.Addr,
			Dst:           qs.remoteAddr,
		}),
		L4Hdr:   l4,
		Payload: seg.Payload,
	}

	steps := []step{
		n.cpuStage(set, "Doorbell Process", params.TxDoorbellProcUS),
		n.cpuStage(set, "Schedule", params.TxScheduleUS),
	}
	if isData {
		steps = append(steps, n.dmaStage(set, "Get Data", params.TxGetDataUS, seg.Payload.Len()))
	}
	steps = append(steps,
		n.cpuStage(set, "Build TCP Hdr", params.TxBuildTCPHdrUS),
		n.cpuStage(set, "Build IP Hdr", params.TxBuildIPHdrUS),
		n.mediaXmt(set, qs.remoteAtt, pkt),
		n.cpuStage(set, "Update", params.TxUpdateUS),
	)
	chain(steps, done)
}

// mediaXmt injects a packet into the fabric. The Send stage cost covers
// programming the network send engine; unless PipelinedTX is set the
// scheduler then waits for the engine to finish serializing — the
// prototype's behaviour.
func (n *NIC) mediaXmt(set *trace.Stages, att int, pkt *wire.Packet) step {
	return func(next func()) {
		d := params.US(params.TxSendUS)
		set.Add("Send", d)
		n.cpu.Do(d, "Send", func() {
			frame := &fabric.Frame{
				Src:      n.att,
				Dst:      att,
				WireSize: pkt.Len() + params.MyrinetHeaderBytes,
				Payload:  pkt,
			}
			if n.cfg.PipelinedTX {
				n.fab.Send(frame, nil)
				next()
			} else {
				n.fab.Send(frame, next)
			}
		})
	}
}

// ---- TCB action plumbing. ----

// handleActions processes TCB outputs in engine context without a
// surrounding chain (timers, management).
func (n *NIC) handleActions(qs *qpState, acts tcp.Actions, done func()) {
	n.handleActionsChain(qs, acts, done)
}

// handleActionsChain processes TCB outputs: data/ack segments go to the
// transmit scheduler; completions and deliveries charge the receive-side
// stages inline, then done runs.
func (n *NIC) handleActionsChain(qs *qpState, acts tcp.Actions, done func()) {
	// Segments to the scheduler.
	for _, seg := range acts.Segments {
		n.enqueueTx(txWork{qs: qs, seg: seg})
	}
	var steps []step
	// Send completions: "This WR completes when all the data for that
	// message is acknowledged by the destination" (paper §3).
	for i := 0; i < acts.AckedRecords; i++ {
		steps = append(steps, n.completeSendStep(qs))
	}
	// Delivered records enter the SRAM stash *now*, synchronously, so the
	// TCB's delivery order is pinned before any chained stage runs —
	// concurrent receive chains must not transpose records. The chained
	// step then drains the stash into posted receive WRs.
	if len(acts.Delivered) > 0 {
		for _, rec := range acts.Delivered {
			qs.stash = append(qs.stash, stashedRec{payload: rec})
		}
		steps = append(steps, func(next func()) {
			n.drainStash(qs, func() {
				if len(qs.stash) > 0 {
					n.stats.StashedRecords++
				}
				next()
			})
		})
	}
	if acts.Established {
		est := qs
		steps = append(steps, func(next func()) {
			n.notifyHost(func() {
				est.qp.SetEstablished(est.localPort, est.remotePort, est.remoteAddr)
			})
			next()
		})
	}
	if acts.Reset {
		steps = append(steps, func(next func()) {
			n.Net.Add("conn.reset", 1)
			n.failQP(qs, verbs.ErrConnRefused, verbs.StatusRemoteError)
			next()
		})
	}
	if acts.RetryExceeded {
		// The retry budget is spent: the QP transitions to the error
		// state and outstanding WRs flush asynchronously with
		// StatusRetryExceeded (tentpole behaviour, DESIGN §8).
		steps = append(steps, func(next func()) {
			n.Net.Add("conn.retry-exceeded", 1)
			n.failQP(qs, verbs.ErrRetryExceeded, verbs.StatusRetryExceeded)
			next()
		})
	}
	if acts.PeerClosed {
		steps = append(steps, func(next func()) {
			qs.peerClosed = true
			n.notifyHost(func() { qs.qp.Flush() })
			next()
		})
	}
	if len(steps) == 0 {
		if done != nil {
			done()
		}
		return
	}
	chain(steps, done)
}

// completeSendStep charges the ACK-side update cost (Table 3: "Update
// (WR and QP State)" = 9 us) and posts the completion.
func (n *NIC) completeSendStep(qs *qpState) step {
	return func(next func()) {
		d := params.US(params.RxUpdateAckUS)
		n.RxAck.Add("Update", d)
		n.cpu.Do(d, "Update", func() {
			// DMA the completion token into the host CQ.
			n.cfg.Bus.Burst(32, "cq.token", func() {
				if len(qs.sendIDs) > 0 {
					id := qs.sendIDs[0]
					qs.sendIDs = qs.sendIDs[1:]
					qs.qp.CompleteSend(id, verbs.StatusSuccess, 0)
				}
				next()
			})
		})
	}
}

// placeRecord runs the Get WR / Put Data / Update chain for one record.
func (n *NIC) placeRecord(qs *qpState, wr verbs.RecvWR, rec buf.Buf, raddr inet.Addr6, rport uint16, next func()) {
	set := n.RxData
	status := verbs.StatusSuccess
	if rec.Len() > wr.Capacity {
		status = verbs.StatusLenError
	}
	chain([]step{
		n.cpuStage(set, "Get WR", params.RxGetWRUS),
		n.dmaStage(set, "Put Data", params.RxPutDataUS, rec.Len()),
		n.cpuStage(set, "Update", params.RxUpdateDataUS),
	}, func() {
		n.cfg.Bus.Burst(32, "cq.token", func() {
			comp := verbs.Completion{
				WRID:       wr.ID,
				Status:     status,
				ByteLen:    rec.Len(),
				Payload:    rec,
				RemoteAddr: raddr,
				RemotePort: rport,
			}
			if status == verbs.StatusLenError {
				comp.Payload = buf.Empty
				comp.ByteLen = 0
			}
			qs.qp.CompleteRecv(comp)
			n.updateWindow(qs)
			if next != nil {
				next()
			}
		})
	})
}

// drainStash delivers SRAM-stashed records into newly posted WRs.
func (n *NIC) drainStash(qs *qpState, done func()) {
	if len(qs.stash) == 0 {
		done()
		return
	}
	wr, ok := qs.qp.TakeRecvWR()
	if !ok {
		done()
		return
	}
	rec := qs.stash[0]
	qs.stash = qs.stash[1:]
	n.placeRecord(qs, wr, rec.payload, qs.remoteAddr, qs.remotePort, func() {
		n.drainStash(qs, done)
	})
}

// syncTimer keeps one engine timer aligned with the TCB's earliest
// deadline — the transmit FSM "monitors for timeout/retransmit events
// pending on a QP" (paper §3.1).
func (n *NIC) syncTimer(qs *qpState) {
	if qs.timer != nil {
		qs.timer.Cancel()
		qs.timer = nil
	}
	if qs.conn == nil {
		return
	}
	deadline, ok := qs.conn.NextTimeout()
	if !ok {
		return
	}
	at := sim.Time(deadline)
	if at < n.eng.Now() {
		at = n.eng.Now()
	}
	qs.timer = n.eng.At(at, "qpip.tcp.timer", func() {
		qs.timer = nil
		now := int64(n.eng.Now())
		acts := qs.conn.OnTimer(now)
		for _, seg := range acts.Segments {
			// Count only real retransmissions, not timer-driven pure acks
			// (delayed acks, window probes).
			if seg.Payload.Len() > 0 || seg.Flags.Has(tcp.SYN) || seg.Flags.Has(tcp.FIN) {
				n.stats.Retransmissions++
				n.Net.Add("tx.retransmit", 1)
			}
		}
		n.handleActions(qs, acts, nil)
		n.syncTimer(qs)
	})
}
