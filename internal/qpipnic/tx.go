package qpipnic

import (
	"repro/internal/buf"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
	"repro/internal/verbs"
	"repro/internal/wire"
)

// This file is the schedule/transmit FSM (paper §3.1, Figure 2 left): a
// single scheduler loop that services one work item at a time — fetch WR,
// fetch data, build TCP/UDP and IP headers, inject, update state. The
// prototype's loop did not overlap the network send DMA with the next
// item, which is what bounds its large-MTU throughput; Config.PipelinedTX
// flips that for the ablation bench. Stage sequences execute on the pooled
// chain runners in chain.go.

// txWork is one scheduler queue entry.
type txWork struct {
	qs *qpState
	// seg, when non-nil, is a ready TCP segment (ack, window-opened data,
	// retransmission). Otherwise the work item consumes one posted WR.
	seg *tcp.Segment
	// amortized marks the second and later WRs of one vectored doorbell
	// token: the Doorbell Process stage was already paid by the first WR,
	// so these run the shorter txWRBatch template.
	amortized bool
}

// enqueueTx adds work and kicks the scheduler.
//
//qpip:hotpath
func (n *NIC) enqueueTx(w txWork) {
	n.txQ = append(n.txQ, w)
	n.kickTx()
}

// kickTx runs the scheduler if idle. The queue drains through a head index
// so steady-state traffic reuses one backing array instead of re-slicing
// (and re-growing) per work item.
//
//qpip:hotpath
func (n *NIC) kickTx() {
	if n.txBusy || n.txQHead >= len(n.txQ) {
		return
	}
	n.txBusy = true
	w := n.txQ[n.txQHead]
	n.txQ[n.txQHead] = txWork{}
	n.txQHead++
	if n.txQHead == len(n.txQ) {
		n.txQ, n.txQHead = n.txQ[:0], 0
	}
	n.runTxWork(w, n.txDoneFn)
}

// onDoorbell is the doorbell FSM wakeup: drain the whole FIFO in one
// activation and mark QPs. In batched mode the drain is vectored (PopN
// into the scratch buffer, tokens may carry a WR count); per-token mode
// keeps the original one-Pop loop. For count-1 tokens the two paths
// enqueue identical work in identical order.
//
//qpip:hotpath
func (n *NIC) onDoorbell() {
	if n.down {
		// A crashed adapter's FIFO logic is halted: rings land nowhere.
		for {
			if k := n.db.PopN(n.dbScratch[:]); k == 0 {
				return
			}
		}
	}
	if !hw.BatchedBoundary() {
		for {
			tok, ok := n.db.Pop()
			if !ok {
				return
			}
			qs := n.qps.get(uint32(tok))
			if qs == nil {
				continue
			}
			qs.pendingWRs++
			n.enqueueTx(txWork{qs: qs})
		}
	}
	for {
		k := n.db.PopN(n.dbScratch[:])
		if k == 0 {
			return
		}
		for _, tok := range n.dbScratch[:k] {
			qs := n.qps.get(uint32(tok))
			if qs == nil {
				continue
			}
			cnt := int(tok >> 32)
			if cnt == 0 {
				cnt = 1
			}
			qs.pendingWRs += cnt
			// First WR of the token pays the full Doorbell Process stage;
			// the rest of the train amortizes it.
			n.enqueueTx(txWork{qs: qs})
			for j := 1; j < cnt; j++ {
				n.enqueueTx(txWork{qs: qs, amortized: true})
			}
		}
	}
}

// runTxWork executes one scheduler item.
//
//qpip:hotpath
func (n *NIC) runTxWork(w txWork, done func()) {
	if w.seg != nil {
		n.sendSegment(w.qs, w.seg, done)
		return
	}
	n.consumeSendWR(w.qs, w.amortized, done)
}

// consumeSendWR processes one posted send WR: Doorbell Process (skipped
// for the amortized tail of a vectored token), Schedule, Get WR, then
// hand the message to the transport (the stTxWR stage).
//
//qpip:hotpath
func (n *NIC) consumeSendWR(qs *qpState, amortized bool, done func()) {
	if qs.pendingWRs <= 0 || n.qps.get(qs.qp.QPN) == nil {
		done()
		return
	}
	qs.pendingWRs--
	cr := n.getChain(done)
	if amortized {
		cr.use(n.txWRBatch[:])
	} else {
		cr.use(n.txWR[:])
	}
	cr.qs = qs
	cr.run()
}

// sendTCPMessage feeds one message into the TCB; segments the window
// admits transmit inline.
//
//qpip:hotpath
func (n *NIC) sendTCPMessage(qs *qpState, wr verbs.SendWR, done func()) {
	now := int64(n.eng.Now())
	qs.pushSendID(wr.ID)
	acts, err := qs.conn.Send(wr.Payload, now)
	if err != nil {
		qs.popLastSendID()
		qs.qp.CompleteSend(wr.ID, verbs.StatusRemoteError, 0)
		done()
		return
	}
	n.syncTimer(qs)
	n.handleActionsChain(qs, acts, done)
}

// sendUDPMessage transmits one unreliable datagram. "As soon as a UDP
// message is sent, the associated send WR is marked as complete"
// (paper §3).
//
//qpip:hotpath
func (n *NIC) sendUDPMessage(qs *qpState, wr verbs.SendWR, done func()) {
	att, err := n.cfg.Routes.Lookup(wr.RemoteAddr)
	if err != nil {
		n.stats.NoRouteDrops++
		qs.qp.CompleteSend(wr.ID, verbs.StatusRemoteError, 0)
		done()
		return
	}
	n.stats.UDPSends++
	pkt := wire.Get()
	l4 := udp.Marshal6Into(n.cfg.Addr, wr.RemoteAddr, qs.localPort, wr.RemotePort, wr.Payload, pkt.L4Scratch())
	pkt.IPHdr = inet.Marshal6Into(&inet.Header6{
		PayloadLength: uint16(len(l4) + wr.Payload.Len()),
		NextHeader:    inet.ProtoUDP,
		HopLimit:      inet.DefaultHopLimit,
		Src:           n.cfg.Addr,
		Dst:           wr.RemoteAddr,
	}, pkt.IPScratch())
	pkt.L4Hdr = l4
	pkt.Payload = wr.Payload
	pkt.Epoch = n.bootEpoch
	cr := n.getChain(done)
	cr.use(n.udpSend[:])
	cr.qs = qs
	cr.pkt = pkt
	cr.att = att
	cr.bytes = wr.Payload.Len()
	cr.wrID = wr.ID
	cr.run()
}

// sendSegment transmits one ready TCP segment (scheduler path for acks,
// retransmissions and window-opened data).
//
//qpip:hotpath
func (n *NIC) sendSegment(qs *qpState, seg *tcp.Segment, done func()) {
	isData := seg.Payload.Len() > 0
	if isData {
		n.stats.DataSends++
	} else {
		n.stats.AckSends++
	}

	// Build the real headers. The transmit-side transport checksum is
	// computed by the DMA engine hardware (paper §4.1), so it costs the
	// firmware nothing here.
	pkt := wire.Get()
	l4 := seg.MarshalHeaderInto(pkt.L4Scratch())
	tcp.SetChecksum(l4, inet.TransportChecksum6(n.cfg.Addr, qs.remoteAddr, inet.ProtoTCP, l4, seg.Payload))
	pkt.IPHdr = inet.Marshal6Into(&inet.Header6{
		PayloadLength: uint16(len(l4) + seg.Payload.Len()),
		NextHeader:    inet.ProtoTCP,
		HopLimit:      inet.DefaultHopLimit,
		Src:           n.cfg.Addr,
		Dst:           qs.remoteAddr,
	}, pkt.IPScratch())
	pkt.L4Hdr = l4
	pkt.Payload = seg.Payload
	pkt.Epoch = n.bootEpoch

	cr := n.getChain(done)
	if isData {
		cr.use(n.segData[:])
	} else {
		cr.use(n.segAck[:])
	}
	cr.pkt = pkt
	cr.att = qs.remoteAtt
	cr.bytes = seg.Payload.Len()
	// The header bytes and payload handle now live in pkt; the segment
	// itself is dead and can go back to its pool before the chain runs.
	seg.Release()
	cr.run()
}

// ---- TCB action plumbing. ----

// handleActions processes TCB outputs in engine context without a
// surrounding chain (timers, management).
func (n *NIC) handleActions(qs *qpState, acts tcp.Actions, done func()) {
	n.handleActionsChain(qs, acts, done)
}

// handleActionsChain processes TCB outputs: data/ack segments go to the
// transmit scheduler; completions and deliveries charge the receive-side
// stages inline, then done runs.
func (n *NIC) handleActionsChain(qs *qpState, acts tcp.Actions, done func()) {
	// Segments to the scheduler.
	for _, seg := range acts.Segments {
		n.enqueueTx(txWork{qs: qs, seg: seg})
	}
	if acts.Closed {
		// The TCB reached CLOSED (both directions done): drop it and
		// unlink the demux/port table entries immediately — connection
		// churn must not grow SRAM-resident tables. Any final segment was
		// enqueued above with its routing fields captured in the txWork.
		if qs.timer != nil {
			qs.timer.Cancel()
			qs.timer = nil
		}
		qs.conn = nil
		n.reapConn(qs)
	}
	if acts.AckedRecords == 0 && len(acts.Delivered) == 0 &&
		!acts.Established && !acts.Reset && !acts.RetryExceeded && !acts.PeerClosed {
		if done != nil {
			done()
		}
		return
	}
	cr := n.getChain(done)
	cr.qs = qs
	// Send completions: "This WR completes when all the data for that
	// message is acknowledged by the destination" (paper §3).
	if acts.AckedRecords > 0 {
		cr.completions = acts.AckedRecords
		cr.push(stage{kind: stComplete})
	}
	// Delivered records enter the SRAM stash *now*, synchronously, so the
	// TCB's delivery order is pinned before any chained stage runs —
	// concurrent receive chains must not transpose records. The stash
	// stage then drains into posted receive WRs.
	if len(acts.Delivered) > 0 {
		for _, rec := range acts.Delivered {
			qs.pushStash(rec)
		}
		cr.push(stage{kind: stStash})
		cr.push(stage{kind: stStashTally})
	}
	if acts.Established {
		//lint:qpip-allow hotprop connection establishment happens once per QP lifetime
		cr.push(stage{kind: stCustom, fn: func(next func()) {
			n.notifyHost(func() {
				qs.qp.SetEstablished(qs.localPort, qs.remotePort, qs.remoteAddr)
			})
			next()
		}})
	}
	if acts.Reset {
		//lint:qpip-allow hotprop connection reset is a rare failure event, not datapath work
		cr.push(stage{kind: stCustom, fn: func(next func()) {
			n.Net.Add("conn.reset", 1)
			n.failQP(qs, verbs.ErrConnRefused, verbs.StatusRemoteError)
			next()
		}})
	}
	if acts.RetryExceeded {
		// The retry budget is spent: the QP transitions to the error
		// state and outstanding WRs flush asynchronously with
		// StatusRetryExceeded (tentpole behaviour, DESIGN §8).
		//lint:qpip-allow hotprop retry exhaustion is a terminal failure event, not datapath work
		cr.push(stage{kind: stCustom, fn: func(next func()) {
			n.Net.Add("conn.retry-exceeded", 1)
			n.failQP(qs, verbs.ErrRetryExceeded, verbs.StatusRetryExceeded)
			next()
		}})
	}
	if acts.PeerClosed {
		//lint:qpip-allow hotprop peer close happens once per connection teardown
		cr.push(stage{kind: stCustom, fn: func(next func()) {
			qs.peerClosed = true
			n.notifyHost(func() { qs.qp.Flush() })
			next()
		}})
	}
	cr.run()
}

// placeRecord runs the Get WR / Put Data / Update chain for one record.
//
//qpip:hotpath
func (n *NIC) placeRecord(qs *qpState, wr verbs.RecvWR, rec buf.Buf, raddr inet.Addr6, rport uint16, next func()) {
	status := verbs.StatusSuccess
	if rec.Len() > wr.Capacity {
		status = verbs.StatusLenError
	}
	cr := n.getChain(next)
	cr.use(n.place[:])
	cr.qs = qs
	cr.wr = wr
	cr.rec = rec
	cr.raddr = raddr
	cr.rport = rport
	cr.status = status
	cr.bytes = rec.Len()
	cr.run()
}

// drainStashAndUpdate delivers SRAM-stashed records into newly posted WRs,
// then re-advertises the receive window (the RecvPosted path).
//
//qpip:hotpath
func (n *NIC) drainStashAndUpdate(qs *qpState) {
	cr := n.getChain(nil)
	cr.qs = qs
	cr.push(stage{kind: stStash})
	cr.push(stage{kind: stUpdateWindow})
	cr.run()
}

// syncTimer keeps one engine timer aligned with the TCB's earliest
// deadline — the transmit FSM "monitors for timeout/retransmit events
// pending on a QP" (paper §3.1).
//
//qpip:hotpath
func (n *NIC) syncTimer(qs *qpState) {
	if qs.timer != nil {
		qs.timer.Cancel()
		qs.timer = nil
	}
	if qs.conn == nil {
		return
	}
	deadline, ok := qs.conn.NextTimeout()
	if !ok {
		return
	}
	at := sim.Time(deadline)
	if at < n.eng.Now() {
		at = n.eng.Now()
	}
	qs.timer = n.eng.At(at, "qpip.tcp.timer", qs.timerFn)
}

// onQPTimer is the timer callback body; qs.timerFn binds it once at QP
// creation so re-arming the timer never allocates.
//
//qpip:hotpath
func (n *NIC) onQPTimer(qs *qpState) {
	qs.timer = nil
	now := int64(n.eng.Now())
	acts := qs.conn.OnTimer(now)
	for _, seg := range acts.Segments {
		// Count only real retransmissions, not timer-driven pure acks
		// (delayed acks, window probes).
		if seg.Payload.Len() > 0 || seg.Flags.Has(tcp.SYN) || seg.Flags.Has(tcp.FIN) {
			n.stats.Retransmissions++
			n.Net.Add("tx.retransmit", 1)
		}
	}
	n.handleActions(qs, acts, nil)
	n.syncTimer(qs)
}
