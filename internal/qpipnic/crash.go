package qpipnic

import (
	"repro/internal/verbs"
)

// This file implements adapter crash and restart — the fault layer's
// node-reboot scenario (DESIGN §13). A crash wipes everything resident in
// adapter SRAM: the QP/TCB state table, the doorbell FIFO, the transmit
// scheduler queue, listener and port tables. Host memory survives (QP and
// CQ structures, posted WR queues), so the host observes the crash as
// every QP failing with ErrNICDown and can recycle QPs through
// ModifyQP(QPReset) once the adapter reboots.
//
// In-flight firmware events that were already scheduled (a chain runner
// mid-stage, a completion-token DMA) complete against the orphaned
// qpState entries: their send-ID and stash queues are emptied here, so
// the continuations run out of work and fall through. That mirrors
// hardware, where a DMA the bridge already accepted still lands in host
// memory after the NIC's processor halts.

// Down reports whether the adapter is crashed (between Crash and Restart).
func (n *NIC) Down() bool { return n.down }

// BootEpoch reports the adapter's current boot generation (starts at 1,
// increments on every Restart).
func (n *NIC) BootEpoch() uint32 { return n.bootEpoch }

// Crash halts the adapter mid-run, wiping NIC-resident state. Every live
// QP fails with ErrNICDown: consumed-but-unacked send WRs complete with
// StatusFlushed through the host notification path (the driver's
// device-dead interrupt), then the QP flushes. Failure order is sorted by
// QPN so two runs of the same seed observe identical completion
// sequences. Idempotent while already down.
func (n *NIC) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.Net.Add("nic.crash", 1)

	qpns := n.qps.liveQPNs(make([]uint32, 0, n.qps.len()))
	for _, qpn := range qpns {
		qs := n.qps.get(qpn)
		if qs.timer != nil {
			qs.timer.Cancel()
			qs.timer = nil
		}
		qs.conn = nil // the TCB is gone; stale timers/chains find no work
		ids := qs.sendIDs[qs.sendHead:]
		qs.sendIDs, qs.sendHead = nil, 0
		qs.stash, qs.stashHead = nil, 0
		qs.stashBytes = 0
		qs.pendingWRs = 0
		qp := qs.qp
		n.notifyHost(func() {
			for _, id := range ids {
				qp.CompleteSend(id, verbs.StatusFlushed, 0)
			}
			qp.SetFailed(verbs.ErrNICDown, verbs.StatusFlushed)
		})
	}

	// The collective engine's group table is SRAM too: undone posted
	// operations flush to their CQs, then the groups vanish.
	n.crashColl()

	// Wipe the SRAM tables. The qpState entries stay reachable from
	// in-flight chain runners but are unlinked from every table. The QPN
	// free list is SRAM too: wiping it keeps pre-crash QPNs retired
	// forever, which the epoch fencing relies on. Host-resident SRQ pools
	// survive; only the adapter-side waiter lists vanish.
	n.qps.reset()
	n.qpnFree = n.qpnFree[:0]
	n.crashSRQs()
	n.tcpConns = make(map[tcpKey]*qpState)
	n.listeners = make(map[uint16]*verbs.Listener)
	n.tcpPorts = make(map[uint16]bool)
	n.udpPorts.Reset()

	// Drop the transmit scheduler queue (segments return to their pool)
	// and drain the doorbell FIFO.
	for i := n.txQHead; i < len(n.txQ); i++ {
		if seg := n.txQ[i].seg; seg != nil {
			seg.Release()
		}
		n.txQ[i] = txWork{}
	}
	n.txQ, n.txQHead = n.txQ[:0], 0
	for {
		if k := n.db.PopN(n.dbScratch[:]); k == 0 {
			break
		}
	}
}

// Restart reboots a crashed adapter with a fresh boot epoch. The state
// table is empty — hosts re-admit QPs via ModifyQP(QPReset) and re-run
// Listen/Connect. Ephemeral port and ISS generators restart from their
// power-on values, so a restarted node is indistinguishable from a fresh
// one except for the epoch stamped on its frames.
func (n *NIC) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.bootEpoch++
	n.nextEphem = 49152
	n.issCount = 0
	n.Net.Add("nic.restart", 1)
}
